/**
 * @file
 * mbavf_lint — model-invariant checker for MB-AVF intermediate
 * artifacts.
 *
 * Validates the inputs the AVF math is computed from, without
 * running any of the AVF math itself:
 *
 * - lifetime lint: segments sorted, disjoint, non-empty, within the
 *   trace horizon, aceMask ⊆ readMask;
 * - event-stream lint: replay of the cache fill/read/write/evict
 *   trace against a residency state machine;
 * - geometry lint: every fault-mode x layout x protection-scheme
 *   combination checked for out-of-array fault groups, interleave
 *   factors that do not divide the row width, and protection domains
 *   that straddle interleave boundaries.
 *
 * Modes:
 *   mbavf_lint --workload=NAME [--scale=N]   instrument a synthetic
 *       run and lint its lifetimes, event streams, and geometry
 *   mbavf_lint --lifetimes=FILE [--horizon=N]  lint a serialized
 *       store (plain or horizon-prefixed, as written by
 *       `mbavf --save-lifetimes`); malformed files are rejected
 *       with a message, never a crash
 *   mbavf_lint --geometry-only               lint geometry combos only
 *
 * --arena additionally flattens each linted store into the sweep
 * kernel's LifetimeArena and checks the arena against its source:
 * offsets contiguous-monotone, per-word segments sorted and
 * disjoint, and an exact store <-> arena round trip.
 *
 * --arena=FILE instead lints an arena persisted by
 * `mbavf --arena-out` (core/arena_io.hh): the loader's byte-level
 * rejections surface as `arena.file` (exit 2, unusable input), and a
 * file that maps cleanly gets the structure-only layout lint — there
 * is no source store to round-trip against.
 *
 * Exit codes: 0 = clean (warnings allowed), 1 = lint errors,
 * 2 = unusable input (bad file, bad arguments).
 *
 * --seed-corruption=overlap|read-before-fill|straddle|stale-arena|
 * arena-file deliberately corrupts the analyzed artifact first; the
 * regression suite uses it to pin each diagnostic and its exit code.
 * stale-arena (requires --arena) mutates the store after the arena
 * snapshot is built, so the round-trip check must fire. arena-file
 * (requires --arena=FILE) lints a magic-smashed copy of the file,
 * which the loader must reject.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <string_view>

#include "check/arena_lint.hh"
#include "check/event_lint.hh"
#include "check/geometry_lint.hh"
#include "check/lifetime_lint.hh"
#include "check/report.hh"
#include "common/args.hh"
#include "core/arena_io.hh"
#include "core/lifetime_io.hh"
#include "inject/journal.hh"
#include "obs/build_info.hh"
#include "serve/cache.hh"
#include "serve/queue.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

void
usage()
{
    std::cout <<
        "usage: mbavf_lint --workload=NAME [options]\n"
        "       mbavf_lint --lifetimes=FILE [--horizon=N]\n"
        "       mbavf_lint --journal=FILE\n"
        "       mbavf_lint --queue-journal=FILE\n"
        "       mbavf_lint --cache=DIR\n"
        "       mbavf_lint --arena=FILE\n"
        "       mbavf_lint --geometry-only\n\n"
        "options:\n"
        "  --scale=N            workload problem-size multiplier\n"
        "  --modes=M            geometry lint covers 1x1..Mx1 (4)\n"
        "  --arena              also lint the flattened LifetimeArena\n"
        "                       of every linted store\n"
        "  --arena=FILE         lint an arena file written by\n"
        "                       `mbavf --arena-out` (layout checks\n"
        "                       only; loader rejections are\n"
        "                       arena.file, exit 2)\n"
        "  --max-findings=N     stored findings per code (16)\n"
        "  --seed-corruption=K  corrupt the artifact first; K is\n"
        "                       overlap | read-before-fill | straddle\n"
        "                       | stale-arena (needs --arena)\n"
        "                       | arena-file (needs --arena=FILE)\n"
        "  --version            print build info and exit\n"
        "\n--journal validates a campaign checkpoint (inject/journal):\n"
        "header fields, contiguous trial indices, outcome names,\n"
        "per-outcome diagnostic codes, and per-trial seeds.\n"
        "\n--queue-journal validates an mbavf_serve queue journal\n"
        "(serve/queue): header binding, record grammar, shard ranges,\n"
        "and duplicate shard entries.\n"
        "\n--cache audits an mbavf_serve result cache directory: every\n"
        "entry must be a manifest envelope whose cache.key matches its\n"
        "file name and which carries a result section.\n"
        "\nexit codes: 0 clean, 1 lint errors, 2 unusable input\n";
}

/**
 * Decorator reproducing the bug class the geometry lint hunts: one
 * cell's domain is remapped to its physical neighbor's, so a domain
 * straddles an interleave boundary.
 */
class StraddledArray : public PhysicalArray
{
  public:
    explicit StraddledArray(const PhysicalArray &inner) : inner_(inner)
    {}

    std::uint64_t rows() const override { return inner_.rows(); }
    std::uint64_t cols() const override { return inner_.cols(); }

    PhysBit
    at(std::uint64_t row, std::uint64_t col) const override
    {
        PhysBit bit = inner_.at(row, col);
        if (row == 0 && col == 1)
            bit.domain = inner_.at(0, 0).domain;
        return bit;
    }

  private:
    const PhysicalArray &inner_;
};

/** Append an overlapping segment to the first non-empty word. */
bool
seedOverlap(LifetimeStore &store)
{
    for (const auto &[id, container] : store.containers()) {
        for (std::size_t w = 0; w < container.words.size(); ++w) {
            if (container.words[w].empty())
                continue;
            WordLifetime &word = store.container(id).words[w];
            const LifeSegment &last = word.segments().back();
            word.appendUnchecked({last.begin, last.end + 1,
                                  last.aceMask, last.readMask});
            return true;
        }
    }
    return false;
}

/** Geometry lint over both cache levels and the register file. */
void
lintGeometry(const GpuConfig &config, unsigned max_mode,
             CheckReport &report)
{
    ComboLintConfig combos;
    combos.cacheLabel = "l1";
    combos.cacheGeom = {config.l1.sets, config.l1.ways,
                        config.l1.lineBytes};
    combos.regGeom = config.regs;
    combos.maxMode = max_mode;
    lintGeometryCombos(combos, report);

    ComboLintConfig l2_combos;
    l2_combos.cacheLabel = "l2";
    l2_combos.cacheGeom = {config.l2.sets, config.l2.ways,
                           config.l2.lineBytes};
    l2_combos.regGeom = config.regs;
    l2_combos.maxMode = max_mode;
    // Register-file combos were covered above; an empty scheme list
    // still lints the cache arrays and fault-mode placement.
    lintGeometryCombos(l2_combos, report);
}

/**
 * Flatten @p store into an arena snapshot and lint it against the
 * store. With @p stale_after, the store is corrupted after the
 * snapshot is built — the round-trip check must then fire.
 */
bool
lintArenaOf(LifetimeStore &store, const std::string &label,
            bool stale_after, CheckReport &report)
{
    LifetimeArena arena(store);
    if (stale_after && !seedOverlap(store))
        return false;
    std::cout << "linted arena of " << label << ": "
              << arena.numWords() << " word(s), "
              << arena.numSegments() << " segment(s)\n";
    lintLifetimeArena(arena, store, report);
    return true;
}

int
finish(const CheckReport &report)
{
    report.print(std::cout);
    return report.errorCount() ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    args.requireKnown({
        "help", "workload", "lifetimes", "horizon", "journal",
        "queue-journal", "cache", "geometry-only", "arena", "scale",
        "modes", "max-findings", "seed-corruption", "version",
    });
    if (args.getBool("help")) {
        usage();
        return 0;
    }
    if (args.getBool("version")) {
        std::cout << obs::versionLine("mbavf_lint") << "\n";
        return 0;
    }

    const std::string journal_path = args.getString("journal", "");
    if (!journal_path.empty()) {
        CheckReport report;
        report.setPerCodeLimit(static_cast<std::size_t>(
            args.getInt("max-findings", 16)));
        lintCampaignJournal(journal_path, report);
        // An unreadable or headerless file is unusable input, not a
        // lint finding about a valid journal.
        if (report.has("journal.io") || report.has("journal.header")) {
            report.print(std::cout);
            return 2;
        }
        std::cout << "linted journal " << journal_path << "\n";
        return finish(report);
    }

    const std::string queue_path = args.getString("queue-journal", "");
    if (!queue_path.empty()) {
        CheckReport report;
        report.setPerCodeLimit(static_cast<std::size_t>(
            args.getInt("max-findings", 16)));
        serve::lintQueueJournal(queue_path, report);
        // An unreadable file or a broken header leaves nothing to
        // lint — that is unusable input, not a finding.
        if (report.has("serve.queue.io") ||
            report.has("serve.queue.header")) {
            report.print(std::cout);
            return 2;
        }
        std::cout << "linted queue journal " << queue_path << "\n";
        return finish(report);
    }

    // Bare --cache parses as "1"; a directory path audits the
    // mbavf_serve result cache stored there.
    const std::string cache_dir = args.getString("cache", "");
    if (!cache_dir.empty() && cache_dir != "1") {
        CheckReport report;
        report.setPerCodeLimit(static_cast<std::size_t>(
            args.getInt("max-findings", 16)));
        const std::size_t entries =
            serve::lintResultCache(cache_dir, report);
        if (report.has("cache.io")) {
            report.print(std::cout);
            return 2;
        }
        std::cout << "linted cache " << cache_dir << ": " << entries
                  << " entry(ies)\n";
        return finish(report);
    }

    const std::string corruption =
        args.getString("seed-corruption", "");
    if (!corruption.empty() && corruption != "overlap" &&
        corruption != "read-before-fill" &&
        corruption != "straddle" && corruption != "stale-arena" &&
        corruption != "arena-file") {
        std::cerr << "mbavf_lint: unknown corruption '" << corruption
                  << "'\n";
        return 2;
    }
    // Bare --arena parses as the value "1" (legacy store-companion
    // mode); any other value names an arena file to lint on its own.
    const std::string arena_value = args.getString("arena", "");
    const std::string arena_file =
        arena_value == "1" ? "" : arena_value;
    const bool lint_arena = arena_file.empty() && args.getBool("arena");
    if (corruption == "stale-arena" && !lint_arena) {
        std::cerr << "mbavf_lint: --seed-corruption=stale-arena "
                     "needs --arena\n";
        return 2;
    }
    if (corruption == "arena-file" && arena_file.empty()) {
        std::cerr << "mbavf_lint: --seed-corruption=arena-file "
                     "needs --arena=FILE\n";
        return 2;
    }
    const unsigned max_mode =
        static_cast<unsigned>(args.getInt("modes", 4));

    CheckReport report;
    report.setPerCodeLimit(
        static_cast<std::size_t>(args.getInt("max-findings", 16)));

    if (!arena_file.empty()) {
        std::string load_path = arena_file;
        if (corruption == "arena-file") {
            // Lint a magic-smashed copy; the original stays usable
            // for the rest of the regression chain.
            std::ifstream is(arena_file, std::ios::binary);
            if (!is) {
                std::cerr << "mbavf_lint: cannot open '" << arena_file
                          << "'\n";
                return 2;
            }
            std::string bytes(
                (std::istreambuf_iterator<char>(is)),
                std::istreambuf_iterator<char>());
            for (std::size_t i = 0; i < bytes.size() && i < 8; ++i)
                bytes[i] ^= static_cast<char>(0xff);
            load_path = arena_file + ".corrupt";
            std::ofstream os(load_path, std::ios::binary);
            os.write(bytes.data(),
                     static_cast<std::streamsize>(bytes.size()));
            if (!os.flush()) {
                std::cerr << "mbavf_lint: cannot write '" << load_path
                          << "'\n";
                return 2;
            }
        }
        std::string error;
        std::optional<LifetimeArena> arena =
            tryLoadArena(load_path, error);
        if (corruption == "arena-file")
            std::remove(load_path.c_str());
        if (!arena) {
            // A file the loader rejects is unusable input, framed
            // with the same code the loader's validation uses.
            report.error("arena.file", load_path, error);
            report.print(std::cout);
            return 2;
        }
        std::cout << "linted arena file " << arena_file << ": "
                  << arena->numWords() << " word(s), "
                  << arena->numSegments() << " segment(s)\n";
        lintArenaStructure(*arena, report);
        return finish(report);
    }

    const std::string lifetimes_path =
        args.getString("lifetimes", "");
    if (!lifetimes_path.empty()) {
        std::ifstream is(lifetimes_path, std::ios::binary);
        if (!is) {
            std::cerr << "mbavf_lint: cannot open '" << lifetimes_path
                      << "'\n";
            return 2;
        }
        // `mbavf --save-lifetimes` prefixes the store with a horizon
        // word; detect plain stores by the magic at offset 0.
        char head[8] = {};
        is.read(head, sizeof(head));
        if (!is) {
            std::cerr << "mbavf_lint: '" << lifetimes_path
                      << "' is too short to be a lifetime store\n";
            return 2;
        }
        Cycle horizon = 0;
        if (std::string_view(head, 8) == "MBAVFLT1") {
            is.seekg(0);
        } else {
            std::memcpy(&horizon, head, sizeof(horizon));
        }
        if (args.has("horizon")) {
            horizon =
                static_cast<Cycle>(args.getInt("horizon", 0));
        }

        std::string error;
        std::optional<LifetimeStore> store =
            tryLoadLifetimeStore(is, error);
        if (!store) {
            std::cerr << "mbavf_lint: cannot load '" << lifetimes_path
                      << "': " << error << "\n";
            return 2;
        }
        if (corruption == "overlap")
            seedOverlap(*store);

        LifetimeLintOptions opts;
        opts.horizon = horizon;
        lintLifetimeStore(*store, opts, report);
        std::cout << "linted " << store->numContainers()
                  << " container(s) from " << lifetimes_path << "\n";
        if (lint_arena &&
            !lintArenaOf(*store, lifetimes_path,
                         corruption == "stale-arena", report)) {
            std::cerr << "mbavf_lint: no lifetime to corrupt\n";
            return 2;
        }
        return finish(report);
    }

    const std::string workload = args.getString("workload", "");
    if (workload.empty() || args.getBool("geometry-only")) {
        if (args.getBool("geometry-only")) {
            GpuConfig config;
            if (corruption == "straddle") {
                CacheGeometry geom{config.l1.sets, config.l1.ways,
                                   config.l1.lineBytes};
                auto array = makeCacheArray(
                    geom, CacheInterleave::WayPhysical, 2);
                StraddledArray bad(*array);
                GeometryLintOptions opts;
                opts.interleave = 2;
                opts.containerBits = geom.lineBits();
                lintPhysicalArray(bad, opts, "l1 way x2 (corrupt)",
                                  report);
            }
            lintGeometry(config, max_mode, report);
            return finish(report);
        }
        usage();
        return 2;
    }

    AceRunOptions options;
    options.scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    options.measureL2 = true;

    CacheTraceRecorder l1_recorder({options.config.l1.sets,
                                    options.config.l1.ways,
                                    options.config.l1.lineBytes});
    CacheTraceRecorder l2_recorder({options.config.l2.sets,
                                    options.config.l2.ways,
                                    options.config.l2.lineBytes});
    options.l1Tap = &l1_recorder;
    options.l2Tap = &l2_recorder;

    std::cout << "simulating '" << workload << "' ...\n";
    AceRun run = runAceAnalysis(workload, options);

    if (corruption == "overlap" && !seedOverlap(run.l1)) {
        std::cerr << "mbavf_lint: no lifetime to corrupt\n";
        return 2;
    }
    if (corruption == "read-before-fill") {
        // A read of a slot the replay has never seen filled.
        CacheEvent bogus;
        bogus.kind = CacheEvent::Kind::Read;
        bogus.set = 0;
        bogus.way = 0;
        bogus.addr = 0;
        bogus.size = 1;
        bogus.time = 0;
        auto &events = l1_recorder.trace().events;
        events.insert(events.begin(), bogus);
    }

    // Lifetime lint. The end-of-run flush pushes L1 write-backs into
    // the L2, whose fills complete at horizon + DRAM latency; the L2
    // store's lifetimes legitimately extend that far.
    LifetimeLintOptions l1_opts;
    l1_opts.horizon = run.horizon;
    lintLifetimeStore(run.l1, l1_opts, report);
    lintLifetimeStore(run.vgpr, l1_opts, report);
    LifetimeLintOptions l2_opts;
    l2_opts.horizon = run.horizon + options.config.dramLatency;
    lintLifetimeStore(run.l2, l2_opts, report);

    // Arena lint: the flattened snapshot the multi-mode sweep kernel
    // actually reads must mirror each store exactly.
    if (lint_arena) {
        if (!lintArenaOf(run.l1, "l1", corruption == "stale-arena",
                         report)) {
            std::cerr << "mbavf_lint: no lifetime to corrupt\n";
            return 2;
        }
        lintArenaOf(run.vgpr, "vgpr", false, report);
        lintArenaOf(run.l2, "l2", false, report);
    }

    // Event-stream lint.
    lintCacheEvents(l1_recorder.trace(), report);
    lintCacheEvents(l2_recorder.trace(), report);

    // Geometry lint, with the seeded straddle when requested.
    if (corruption == "straddle") {
        CacheGeometry geom{options.config.l1.sets,
                           options.config.l1.ways,
                           options.config.l1.lineBytes};
        auto array =
            makeCacheArray(geom, CacheInterleave::WayPhysical, 2);
        StraddledArray bad(*array);
        GeometryLintOptions gopts;
        gopts.interleave = 2;
        gopts.containerBits = geom.lineBits();
        lintPhysicalArray(bad, gopts, "l1 way x2 (corrupt)", report);
    }
    lintGeometry(options.config, max_mode, report);

    std::cout << "linted l1 " << run.l1.numContainers()
              << " / l2 " << run.l2.numContainers()
              << " / vgpr " << run.vgpr.numContainers()
              << " container(s), " << l1_recorder.trace().events.size()
              << " + " << l2_recorder.trace().events.size()
              << " cache event(s), horizon " << run.horizon << "\n";
    return finish(report);
}
