/**
 * @file
 * mbavf_analyze — dataflow static analysis and per-instruction
 * MB-AVF attribution for one instrumented run.
 *
 *   mbavf_analyze --workload=NAME [options]
 *
 * Three layers, all reported through stable dotted finding codes:
 *
 * 1. Program-flow lint over the run's dataflow trace and raw
 *    register event logs: flow.dead-def, flow.masked-output,
 *    flow.overwrite, flow.uninit-read (analyze/passes.hh).
 * 2. Protection-coverage lint over the chosen structure's layout:
 *    domain.uncovered, domain.mode-undetectable.
 * 3. Per-instruction MB-AVF attribution (analyze/attribution.hh):
 *    every non-unACE group-cycle of the chosen fault mode is charged
 *    to the static instruction whose write produced the data at
 *    risk, and the conservation checker asserts the per-instruction
 *    integer sums equal the reference computeMbAvf() totals exactly
 *    — bit-for-bit at any --threads. A conservation violation
 *    reports as attr.conservation.
 *
 * Exit codes: 0 = clean, 1 = usage error or unusable input,
 * 2 = findings. (Deliberate deviation from mbavf_lint, which exits
 * 1 on findings: scripts driving both tools can tell "the program /
 * configuration is suspect" apart from "the invocation is broken"
 * without parsing output.)
 *
 * --seed-corruption=dead-def|masked-output|overwrite|uninit-read|
 * uncovered|mode-undetectable|conservation injects one synthetic
 * defect before the matching pass; the regression suite pins each
 * diagnostic code and the exit status. The injected artifacts are
 * marked with kernel id 0x7777 so they can never collide with real
 * instruction tags.
 *
 * --manifest writes a run manifest whose "attribution" section is
 * schema-versioned and deterministic (bit-identical at any
 * --threads); mbavf_report --rank pretty-prints it, and the generic
 * --diff / --merge modes compare and collect it.
 */

#include <iostream>
#include <memory>
#include <string>

#include "analyze/attribution.hh"
#include "analyze/passes.hh"
#include "check/report.hh"
#include "common/args.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "core/layout.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "obs/build_info.hh"
#include "obs/manifest.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

/** Schema version of the manifest "attribution" section. */
constexpr std::uint64_t attributionSchemaVersion = 1;

/** Kernel id of artifacts injected by --seed-corruption. */
constexpr unsigned seededKernel = 0x7777;

void
usage()
{
    std::cout <<
        "usage: mbavf_analyze --workload=NAME [options]\n\n"
        "options:\n"
        "  --structure=l1|l2|vgpr   structure to attribute (vgpr)\n"
        "  --scheme=NAME            none|parity|secded|dected|crc\n"
        "                           (secded)\n"
        "  --style=NAME             logical|way|index | intra|inter\n"
        "  --interleave=N           interleave factor (2)\n"
        "  --mode=M                 attribute fault mode Mx1 (4)\n"
        "  --cover-modes=M          check modes 2x1..Mx1 for\n"
        "                           domain.mode-undetectable (4)\n"
        "  --top=N                  ranked attribution rows to print\n"
        "                           and record (10)\n"
        "  --threads=N              sweep threads; attribution and\n"
        "                           conservation are bit-identical\n"
        "                           at any setting (1)\n"
        "  --scale=N                workload problem-size multiplier\n"
        "  --shield-due             DUE detection shields SDC\n"
        "  --max-findings=N         stored findings per code (16)\n"
        "  --manifest=FILE          write a JSON run manifest with\n"
        "                           the attribution section\n"
        "  --seed-corruption=K      inject one synthetic defect; K is\n"
        "                           dead-def | masked-output |\n"
        "                           overwrite | uninit-read |\n"
        "                           uncovered | mode-undetectable |\n"
        "                           conservation\n"
        "  --version                print build info and exit\n\n"
        "exit codes: 0 clean, 1 usage/unusable input, 2 findings\n";
}

/** Corruption decorator: every bit loses its protection domain. */
class UncoveredArray : public PhysicalArray
{
  public:
    explicit UncoveredArray(const PhysicalArray &inner)
        : inner_(inner)
    {}

    std::uint64_t rows() const override { return inner_.rows(); }
    std::uint64_t cols() const override { return inner_.cols(); }

    PhysBit
    at(std::uint64_t row, std::uint64_t col) const override
    {
        PhysBit bit = inner_.at(row, col);
        bit.domain = invalidDomain;
        return bit;
    }

  private:
    const PhysicalArray &inner_;
};

obs::JsonValue
cyclesJson(const std::array<Cycle, 3> &cycles)
{
    obs::JsonValue v = obs::JsonValue::object();
    v.set("sdc", obs::JsonValue(cycles[0]));
    v.set("true_due", obs::JsonValue(cycles[1]));
    v.set("false_due", obs::JsonValue(cycles[2]));
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    args.requireKnown({
        "help", "version", "workload", "structure", "scheme", "style",
        "interleave", "mode", "cover-modes", "top", "threads", "scale",
        "shield-due", "max-findings", "manifest", "seed-corruption",
    });
    if (args.getBool("help")) {
        usage();
        return 0;
    }
    if (args.getBool("version")) {
        std::cout << obs::versionLine("mbavf_analyze") << "\n";
        return 0;
    }

    const std::string workload = args.getString("workload", "");
    if (workload.empty()) {
        usage();
        return 1;
    }
    const std::string corruption =
        args.getString("seed-corruption", "");
    if (!corruption.empty() && corruption != "dead-def" &&
        corruption != "masked-output" && corruption != "overwrite" &&
        corruption != "uninit-read" && corruption != "uncovered" &&
        corruption != "mode-undetectable" &&
        corruption != "conservation") {
        std::cerr << "mbavf_analyze: unknown corruption '"
                  << corruption << "'\n";
        return 1;
    }

    const std::string structure =
        args.getString("structure", "vgpr");
    const std::string scheme_name =
        args.getString("scheme", "secded");
    const std::string style = args.getString(
        "style", structure == "vgpr" ? "inter" : "way");
    const unsigned interleave =
        static_cast<unsigned>(args.getInt("interleave", 2));
    const unsigned mode_size =
        static_cast<unsigned>(args.getInt("mode", 4));
    const unsigned cover_modes =
        static_cast<unsigned>(args.getInt("cover-modes", 4));
    const unsigned top =
        static_cast<unsigned>(args.getInt("top", 10));
    unsigned num_threads = 1;
    if (args.has("threads")) {
        num_threads =
            static_cast<unsigned>(args.getInt("threads", 1));
        setParallelThreads(num_threads == 0 ? 0 : num_threads);
    }

    const std::string manifest_path = args.getString("manifest", "");
    obs::Manifest manifest("mbavf_analyze");

    AceRunOptions options;
    options.scale = static_cast<unsigned>(args.getInt("scale", 1));
    options.measureL2 = structure == "l2";
    ProgramCapture capture;
    options.capture = &capture;

    std::cout << "analyzing '" << workload << "' ...\n";
    AceRun run = runAceAnalysis(workload, options);

    CheckReport report;
    report.setPerCodeLimit(
        static_cast<std::size_t>(args.getInt("max-findings", 16)));

    // --- Layer 1: program-flow passes --------------------------------
    if (corruption == "dead-def") {
        // A tagged value nothing ever consumes.
        capture.dataflow.record({}, makeInstrTag(seededKernel, 1));
    }
    if (corruption == "masked-output") {
        // A tagged value whose only consumer attaches relevance 0:
        // consumed, yet fully logic-masked.
        const DefId victim = capture.dataflow.record(
            {}, makeInstrTag(seededKernel, 2));
        const SrcUse masked_use[] = {{victim, 0, false}};
        const DefId consumer = capture.dataflow.record(
            masked_use, makeInstrTag(seededKernel, 3));
        // The consumer itself reaches program output, so only the
        // masked victim is defective — not the whole chain.
        capture.dataflow.markOutput(consumer);
    }
    if (corruption == "overwrite") {
        // Back-to-back register writes with no intervening read.
        WordEventLog &log = capture.vgprEvents[0xDEAD0000ull];
        log.write(0, 0xFFFFFFFFull, makeInstrTag(seededKernel, 4));
        log.write(1, 0xFFFFFFFFull, makeInstrTag(seededKernel, 5));
    }
    if (corruption == "uninit-read") {
        // A register consumed before its first tracked write.
        WordEventLog &log = capture.vgprEvents[0xDEAD0001ull];
        log.read(0, 0xFFFFFFFFull, noDef);
        log.write(1, 0xFFFFFFFFull, makeInstrTag(seededKernel, 6));
    }
    {
        Liveness liveness(capture.dataflow);
        analyze::lintDataflow(capture.dataflow, liveness, report);
        analyze::lintRegisterEvents(capture.vgprEvents,
                                    capture.dataflow, report);
    }

    // --- Layer 2: protection-coverage passes -------------------------
    LifetimeStore &life = structure == "l1" ? run.l1
        : structure == "l2"                 ? run.l2
                                            : run.vgpr;
    if (structure != "l1" && structure != "l2" &&
        structure != "vgpr") {
        fatal("unknown structure '", structure, "'");
    }

    std::unique_ptr<PhysicalArray> array;
    if (structure == "vgpr") {
        RegInterleave ri = style == "intra"
            ? RegInterleave::IntraThread
            : RegInterleave::InterThread;
        if (style != "intra" && style != "inter")
            fatal("vgpr style must be intra|inter");
        array = makeRegFileArray(options.config.regs, ri, interleave);
    } else {
        const CacheParams &cp = structure == "l2"
            ? options.config.l2
            : options.config.l1;
        CacheGeometry geom{cp.sets, cp.ways, cp.lineBytes};
        array = makeCacheArray(geom, parseCacheInterleave(style),
                               interleave);
    }

    auto scheme = makeScheme(scheme_name);
    analyze::DomainLintOptions domain_opts;
    domain_opts.coverModes = cover_modes;
    if (corruption == "uncovered") {
        UncoveredArray bad(*array);
        analyze::lintDomainCoverage(bad, life, *scheme, domain_opts,
                                    report);
    } else if (corruption == "mode-undetectable") {
        // Parity over an interleaved layout misses every even flip
        // count; modes >= interleave + 1 land two flips in one
        // domain and must be reported.
        auto parity = makeScheme("parity");
        analyze::lintDomainCoverage(*array, life, *parity,
                                    domain_opts, report);
    } else {
        analyze::lintDomainCoverage(*array, life, *scheme,
                                    domain_opts, report);
    }

    // --- Layer 3: attribution + conservation -------------------------
    MbAvfOptions opt;
    opt.horizon = run.horizon;
    opt.numThreads = num_threads;
    opt.dueShieldsSdc = args.getBool("shield-due") ||
        (structure == "vgpr" && style == "inter");
    const FaultMode mode = FaultMode::mx1(mode_size);

    MbAvfResult reference =
        computeMbAvf(*array, life, *scheme, mode, opt);
    analyze::AttributionResult attr =
        analyze::attributeMbAvf(*array, life, *scheme, mode, opt);

    if (corruption == "conservation") {
        // One stray cycle breaks the partition; the checker must see
        // it and the run must fail.
        if (attr.perTag.empty()) {
            analyze::TagContribution stray;
            stray.tag = makeInstrTag(seededKernel, 7);
            attr.perTag.push_back(stray);
        }
        attr.perTag.front().cycles[analyze::attrSdc] += 1;
    }
    const std::string violation =
        analyze::checkConservation(attr, reference);
    if (!violation.empty()) {
        report.error("attr.conservation",
                     structure + " " + scheme->name() + " " +
                         std::to_string(mode_size) + "x1",
                     violation);
    }

    // --- Report ------------------------------------------------------
    std::cout << "\n" << structure << ", " << scheme->name() << ", "
              << style << " x" << interleave << ", mode "
              << mode_size << "x1, horizon " << run.horizon << "\n";
    std::cout << "attributed cycles: SDC "
              << attr.cycles[analyze::attrSdc] << ", trueDUE "
              << attr.cycles[analyze::attrTrueDue] << ", falseDUE "
              << attr.cycles[analyze::attrFalseDue] << " over "
              << attr.numGroups << " group(s)"
              << (violation.empty() ? " (conserved)" : "") << "\n\n";

    // Ranked per-instruction table: top contributors by total
    // charged group-cycles, ties broken by ascending tag so the
    // ranking is stable.
    std::vector<analyze::TagContribution> ranked = attr.perTag;
    std::sort(ranked.begin(), ranked.end(),
              [](const analyze::TagContribution &a,
                 const analyze::TagContribution &b) {
                  if (a.total() != b.total())
                      return a.total() > b.total();
                  return a.tag < b.tag;
              });
    if (ranked.size() > top)
        ranked.resize(top);

    Table table({"instruction", "SDC", "trueDUE", "falseDUE",
                 "share"});
    for (const analyze::TagContribution &c : ranked) {
        table.beginRow()
            .cell(analyze::tagWhere(c.tag))
            .cell(std::to_string(c.cycles[analyze::attrSdc]))
            .cell(std::to_string(c.cycles[analyze::attrTrueDue]))
            .cell(std::to_string(c.cycles[analyze::attrFalseDue]))
            .cell(attr.share(c), 4);
    }
    table.printText(std::cout);

    const auto kernels = analyze::rollupByKernel(attr);
    std::cout << "\nper-kernel:";
    for (const analyze::KernelContribution &k : kernels) {
        std::cout << "  kernel "
                  << (k.kernel == analyze::KernelContribution::noKernel
                          ? std::string("untracked")
                          : std::to_string(k.kernel))
                  << " = " << k.total();
    }
    std::cout << "\n\n";

    if (!manifest_path.empty()) {
        obs::JsonValue run_section = obs::JsonValue::object();
        run_section.set("workload", workload);
        run_section.set("structure", structure);
        run_section.set("scheme", scheme_name);
        run_section.set("style", style);
        run_section.set("interleave",
                        obs::JsonValue(std::uint64_t(interleave)));
        run_section.set("mode",
                        std::to_string(mode_size) + "x1");
        run_section.set("cover_modes",
                        obs::JsonValue(std::uint64_t(cover_modes)));
        run_section.set("horizon",
                        obs::JsonValue(std::uint64_t(run.horizon)));
        manifest.set("run", std::move(run_section));

        obs::JsonValue attribution = obs::JsonValue::object();
        attribution.set(
            "schema_version",
            obs::JsonValue(attributionSchemaVersion));
        attribution.set("num_groups",
                        obs::JsonValue(attr.numGroups));
        attribution.set("cycles", cyclesJson(attr.cycles));
        attribution.set("conserved",
                        obs::JsonValue(violation.empty()));
        obs::JsonValue top_rows = obs::JsonValue::array();
        for (const analyze::TagContribution &c : ranked) {
            obs::JsonValue row = obs::JsonValue::object();
            if (c.tag == noInstrTag) {
                row.set("untracked", obs::JsonValue(true));
            } else {
                row.set("kernel", obs::JsonValue(
                                      std::uint64_t(tagKernel(c.tag))));
                row.set("pc",
                        obs::JsonValue(std::uint64_t(tagPc(c.tag))));
            }
            row.set("cycles", cyclesJson(c.cycles));
            row.set("share", obs::JsonValue(attr.share(c)));
            top_rows.push(std::move(row));
        }
        attribution.set("top", std::move(top_rows));
        obs::JsonValue kernel_rows = obs::JsonValue::array();
        for (const analyze::KernelContribution &k : kernels) {
            obs::JsonValue row = obs::JsonValue::object();
            if (k.kernel == analyze::KernelContribution::noKernel) {
                row.set("untracked", obs::JsonValue(true));
            } else {
                row.set("kernel",
                        obs::JsonValue(std::uint64_t(k.kernel)));
            }
            row.set("cycles", cyclesJson(k.cycles));
            kernel_rows.push(std::move(row));
        }
        attribution.set("kernels", std::move(kernel_rows));
        manifest.set("attribution", std::move(attribution));

        obs::JsonValue analysis = obs::JsonValue::object();
        analysis.set("findings",
                     obs::JsonValue(
                         std::uint64_t(report.totalCount())));
        analysis.set("errors",
                     obs::JsonValue(
                         std::uint64_t(report.errorCount())));
        manifest.set("analyze", std::move(analysis));

        manifest.setEnv();
        std::string error;
        if (!manifest.write(manifest_path, error))
            fatal("cannot write manifest: ", error);
        inform("wrote manifest to ", manifest_path);
    }

    report.print(std::cout);
    return report.errorCount() ? 2 : 0;
}
