#!/usr/bin/env bash
# Kill-matrix harness for the crash-consistency contracts.
#
# Runs a workload straight through to produce reference artifacts,
# then re-runs it under a matrix of randomized SIGKILLs — each kill
# lands at a random point mid-run and is followed by a resume — and
# finally checks that the resumed artifacts are bit-for-bit identical
# to the uninterrupted run's, and that the relevant lints pass them
# clean. Two modes share the harness:
#
#   campaign    the injection-campaign checkpoint journal
#               (DESIGN.md section 10): compares the journal itself.
#   serve       the analysis service (DESIGN.md section 15): compares
#               the merged manifest and the queue journal, resuming at
#               a different worker count than the kills ran with.
#   stratified  the stratified campaign (DESIGN.md section 16): the
#               CLI v2 checkpoint journal under kills, then a
#               stratified serve job whose merged manifest (combined
#               estimator included) must come out byte-identical
#               across kills, resume, and a different worker count.
#
# Usage: ci_kill_matrix.sh <build-dir> campaign|serve|stratified [kills]
set -euo pipefail

usage="usage: ci_kill_matrix.sh <build-dir> campaign|serve|stratified [kills]"
build="${1:?$usage}"
mode="${2:?$usage}"
kills="${3:-3}"

mbavf="$build/tools/mbavf"
serve="$build/tools/mbavf_serve"
lint="$build/tools/mbavf_lint"

workload="${MBAVF_SMOKE_WORKLOAD:-recursive_gaussian}"
trials="${MBAVF_SMOKE_TRIALS:-8000}"
seed="${MBAVF_SMOKE_SEED:-5}"
# Upper bound (in deciseconds) on the random delay before each kill.
kill_spread="${MBAVF_SMOKE_KILL_SPREAD:-30}"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Sleep a random duration in (0, kill_spread] deciseconds.
random_nap() {
    local ds=$(( (RANDOM % kill_spread) + 1 ))
    sleep "$(printf '%d.%d' $((ds / 10)) $((ds % 10)))"
}

# kill_matrix <launch-fn> <resume-fn> <progress-fn>
# Launches via <launch-fn> (first round) / <resume-fn> (later
# rounds), kills at a random point, and reports progress after each
# round. A round that finishes before its kill lands ends the matrix
# (everything is already done); at least one kill must land mid-run
# or the crash-consistency check below would be vacuous.
# The launch/resume functions must exec the binary so $! is the
# process under test, not a wrapper subshell — otherwise the SIGKILL
# hits the wrapper and leaves an orphan racing the resume.
kill_matrix() {
    local launch="$1" resume="$2" progress="$3"
    local round landed=0
    for round in $(seq 1 "$kills"); do
        if [ "$round" -eq 1 ]; then "$launch" & else "$resume" & fi
        local pid=$!
        random_nap
        if ! kill -KILL "$pid" 2>/dev/null; then
            wait "$pid" || true
            echo "round $round: finished before the kill landed"
            break
        fi
        wait "$pid" || true
        landed=$((landed + 1))
        echo "round $round: killed mid-run ($("$progress") done)"
    done
    if [ "$landed" -eq 0 ]; then
        echo "error: no kill landed mid-run; the resume check is" \
             "vacuous — raise MBAVF_SMOKE_TRIALS" >&2
        return 1
    fi
    return 0
}

case "$mode" in
campaign)
    run_campaign() {
        "$mbavf" --campaign --workload="$workload" \
            --trials="$trials" --seed="$seed" --kind=register \
            --checkpoint="$1" --checkpoint-every=64 \
            --threads="$2" "${@:3}"
    }

    echo "== campaign straight run (2 threads) =="
    run_campaign "$work/straight.journal" 2

    echo "== campaign kill matrix ($kills kills) =="
    launch() {
        exec "$mbavf" --campaign --workload="$workload" \
            --trials="$trials" --seed="$seed" --kind=register \
            --checkpoint="$work/resumed.journal" \
            --checkpoint-every=64 --threads=2
    }
    resume() {
        exec "$mbavf" --campaign --workload="$workload" \
            --trials="$trials" --seed="$seed" --kind=register \
            --checkpoint="$work/resumed.journal" \
            --checkpoint-every=64 --threads=2 --resume
    }
    progress() {
        local n
        n=$(grep -cv '^mbavf-journal' "$work/resumed.journal" \
                2>/dev/null) || true
        echo "${n:-0}"
    }
    kill_matrix launch resume progress

    echo "== final resume (8 threads) =="
    run_campaign "$work/resumed.journal" 8 --resume

    echo "== compare journals =="
    cmp "$work/straight.journal" "$work/resumed.journal"

    echo "== lint resumed journal =="
    "$lint" --journal="$work/resumed.journal"
    ;;

serve)
    # A spec slow enough that kills land mid-run: the campaign
    # shards dominate the wall clock.
    spec="${MBAVF_SMOKE_SPEC:-$work/kill_matrix_spec.json}"
    if [ ! -f "$spec" ]; then
        cat > "$spec" <<SPEC
{
  "jobs": [
    {"type": "sweep", "workload": "histogram", "modes": 4},
    {"type": "campaign", "workload": "$workload",
     "trials": $trials, "seed": $seed, "shard_trials": 500}
  ]
}
SPEC
    fi

    run_serve() {
        "$serve" --spec="$spec" --state="$1" --manifest="$2" \
            --workers="$3" --threads=2 "${@:4}"
    }

    echo "== serve straight run (2 workers) =="
    run_serve "$work/straight" "$work/straight.json" 2

    echo "== serve kill matrix ($kills kills) =="
    launch() {
        exec "$serve" --spec="$spec" --state="$work/resumed" \
            --manifest="$work/resumed.json" --workers=2 --threads=2
    }
    resume() {
        exec "$serve" --spec="$spec" --state="$work/resumed" \
            --manifest="$work/resumed.json" --workers=2 --threads=2 \
            --resume
    }
    progress() {
        local n
        n=$(grep -c ' done ' "$work/resumed/queue.journal" \
                2>/dev/null) || true
        echo "${n:-0}"
    }
    kill_matrix launch resume progress
    # Kills can orphan in-flight shard workers; let them drain so
    # they cannot race the final resume's result files.
    sleep 2

    echo "== final resume (4 workers) =="
    run_serve "$work/resumed" "$work/resumed.json" 4 --resume

    echo "== compare manifests =="
    cmp "$work/straight.json" "$work/resumed.json"

    echo "== compare queue journals =="
    cmp "$work/straight/queue.journal" "$work/resumed/queue.journal"

    echo "== lint resumed queue journal =="
    "$lint" --queue-journal="$work/resumed/queue.journal"
    ;;

stratified)
    budget="${MBAVF_SMOKE_BUDGET:-$trials}"

    run_stratified() {
        "$mbavf" --campaign --stratify --workload="$workload" \
            --budget="$budget" --seed="$seed" \
            --checkpoint="$1" --checkpoint-every=64 \
            --threads="$2" "${@:3}"
    }

    echo "== stratified straight run (2 threads) =="
    run_stratified "$work/straight.journal" 2

    echo "== stratified kill matrix ($kills kills) =="
    launch() {
        exec "$mbavf" --campaign --stratify \
            --workload="$workload" --budget="$budget" \
            --seed="$seed" --checkpoint="$work/resumed.journal" \
            --checkpoint-every=64 --threads=2
    }
    resume() {
        exec "$mbavf" --campaign --stratify \
            --workload="$workload" --budget="$budget" \
            --seed="$seed" --checkpoint="$work/resumed.journal" \
            --checkpoint-every=64 --threads=2 --resume
    }
    progress() {
        local n
        n=$(grep -cv '^mbavf-journal' "$work/resumed.journal" \
                2>/dev/null) || true
        echo "${n:-0}"
    }
    kill_matrix launch resume progress

    echo "== final resume (8 threads) =="
    run_stratified "$work/resumed.journal" 8 --resume

    echo "== compare journals =="
    cmp "$work/straight.journal" "$work/resumed.journal"

    echo "== lint resumed journal =="
    "$lint" --journal="$work/resumed.journal"

    # The serve side: a stratified campaign job sharded over the
    # pick sequence must merge to a byte-identical manifest across
    # kills, resume, and a different worker count.
    spec="$work/stratified_spec.json"
    cat > "$spec" <<SPEC
{
  "jobs": [
    {"type": "campaign", "workload": "$workload",
     "trials": 100, "seed": $seed, "stratify": true,
     "budget": $budget, "shard_trials": 500}
  ]
}
SPEC

    run_serve() {
        "$serve" --spec="$spec" --state="$1" --manifest="$2" \
            --workers="$3" --threads=2 "${@:4}"
    }

    echo "== stratified serve straight run (2 workers) =="
    run_serve "$work/sstraight" "$work/sstraight.json" 2

    echo "== stratified serve kill matrix ($kills kills) =="
    launch() {
        exec "$serve" --spec="$spec" --state="$work/sresumed" \
            --manifest="$work/sresumed.json" --workers=2 --threads=2
    }
    resume() {
        exec "$serve" --spec="$spec" --state="$work/sresumed" \
            --manifest="$work/sresumed.json" --workers=2 --threads=2 \
            --resume
    }
    progress() {
        local n
        n=$(grep -c ' done ' "$work/sresumed/queue.journal" \
                2>/dev/null) || true
        echo "${n:-0}"
    }
    kill_matrix launch resume progress
    sleep 2

    echo "== final resume (4 workers) =="
    run_serve "$work/sresumed" "$work/sresumed.json" 4 --resume

    echo "== compare merged manifests =="
    cmp "$work/sstraight.json" "$work/sresumed.json"

    echo "== compare queue journals =="
    cmp "$work/sstraight/queue.journal" \
        "$work/sresumed/queue.journal"

    echo "== lint resumed queue journal =="
    "$lint" --queue-journal="$work/sresumed/queue.journal"
    ;;

*)
    echo "error: unknown mode '$mode' (campaign|serve|stratified)" >&2
    exit 2
    ;;
esac

echo "kill matrix ($mode): OK"
