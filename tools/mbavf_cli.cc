/**
 * @file
 * mbavf — command-line driver for MB-AVF analysis.
 *
 * Runs a workload on the APU model (or loads previously saved
 * lifetimes), then reports single- and multi-bit AVFs and SER for a
 * chosen structure, protection scheme, and interleaving.
 *
 *   mbavf --workload=minife --structure=l1 --scheme=parity \
 *         --style=way --interleave=2 --modes=4 [--windows=8]
 *         [--total-fit=100] [--save-lifetimes=F] [--load-lifetimes=F]
 *
 * Structures: l1 | l2 | vgpr.
 * Schemes: none | parity | secded | dected | crc.
 * Styles: logical | way | index (caches); intra | inter (vgpr).
 *
 * --save-lifetimes writes the structure's ACE lifetimes (plus the
 * horizon) so later invocations with --load-lifetimes can sweep
 * designs without re-simulating. --arena-out goes one step further
 * and persists the flattened LifetimeArena the sweep kernel actually
 * reads (DESIGN.md Section 13); --arena-in maps such a file back and
 * sweeps it directly, skipping both simulation and flattening.
 */

#include <fstream>
#include <iostream>
#include <optional>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "core/arena_io.hh"
#include "core/lifetime_arena.hh"
#include "core/lifetime_io.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "core/sweep.hh"
#include "inject/campaign.hh"
#include "inject/journal.hh"
#include "inject/stratified.hh"
#include "obs/adapters.hh"
#include "obs/build_info.hh"
#include "obs/heartbeat.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

void
usage()
{
    std::cout <<
        "usage: mbavf --workload=NAME [options]\n"
        "       mbavf --load-lifetimes=FILE [options]\n"
        "       mbavf --campaign --workload=NAME [options]\n\n"
        "options:\n"
        "  --structure=l1|l2|vgpr   structure to analyze (l1)\n"
        "  --scheme=NAME            none|parity|secded|dected|crc\n"
        "  --style=NAME             logical|way|index | intra|inter\n"
        "  --interleave=N           interleave factor (2)\n"
        "  --modes=M                analyze 1x1..Mx1 (8)\n"
        "  --windows=N              AVF-over-time windows (0)\n"
        "  --threads=N              worker threads; 0 = all hardware\n"
        "                           threads (default MBAVF_THREADS\n"
        "                           or all); results are identical\n"
        "                           at any thread count\n"
        "  --total-fit=F            raw structure fault rate (100)\n"
        "  --scale=N                workload problem-size multiplier\n"
        "  --shield-due             DUE detection shields SDC\n"
        "  --save-lifetimes=FILE    persist lifetimes + horizon\n"
        "  --load-lifetimes=FILE    reuse persisted lifetimes\n"
        "  --arena-out=FILE         persist the structure's flattened\n"
        "                           sweep arena (mmap-able binary,\n"
        "                           DESIGN.md Section 13)\n"
        "  --arena-in=FILE          map a saved arena and sweep it\n"
        "                           directly (no store, no flatten;\n"
        "                           results identical at any\n"
        "                           --threads)\n"
        "  --list-workloads         print workload names\n"
        "  --manifest=FILE          write a JSON run manifest; its\n"
        "                           numbers (outside phases/env) are\n"
        "                           bit-identical at any --threads\n"
        "  --trace-out=FILE         write a Chrome trace_event JSON\n"
        "                           timeline (chrome://tracing,\n"
        "                           Perfetto)\n"
        "  --version                print build info and exit\n\n"
        "campaign options (--campaign):\n"
        "  --trials=N               injection trials (1000)\n"
        "  --seed=S                 campaign base seed (1); trial t\n"
        "                           draws from splitMix64(S, t)\n"
        "  --kind=register|memory   injection target (register)\n"
        "  --watchdog=M             hang budgets = M x golden run\n"
        "                           (8; 0 disables the watchdog)\n"
        "  --protect=NAME           protection scheme for DUE\n"
        "                           classification (none)\n"
        "  --protect-domain=BITS    protection domain width (8)\n"
        "  --checkpoint=FILE        journal progress to FILE\n"
        "  --checkpoint-every=K     flush every K trials (64)\n"
        "  --resume                 continue FILE's campaign; the\n"
        "                           final tallies are bit-identical\n"
        "                           to an uninterrupted run\n"
        "  --heartbeat              progress lines on stderr every\n"
        "                           --checkpoint-every trials\n\n"
        "stratified campaign options (--campaign --stratify):\n"
        "  --stratify               two-level estimation: partition\n"
        "                           the fault space by ACE analysis,\n"
        "                           skip provably-Masked strata, and\n"
        "                           importance-sample the rest\n"
        "                           (register kind only)\n"
        "  --stratify-windows=N     trigger windows (8)\n"
        "  --stratify-classes=N     site-class cap (64)\n"
        "  --budget=N               injected-trial budget (--trials)\n"
        "  --target-ci=W            spend the smallest budget whose\n"
        "                           predicted SDC CI width is <= W\n"
        "                           (capped by --budget)\n";
}

/** All options both CLI modes accept, for typo rejection. */
void
checkOptions(const Args &args)
{
    args.requireKnown({
        "help", "list-workloads", "workload", "structure", "scheme",
        "style", "interleave", "modes", "windows", "threads",
        "total-fit", "scale", "shield-due", "save-lifetimes",
        "load-lifetimes", "arena-out", "arena-in", "campaign",
        "trials", "seed", "kind",
        "watchdog", "protect", "protect-domain", "checkpoint",
        "checkpoint-every", "resume", "heartbeat", "manifest",
        "trace-out", "version", "stratify", "stratify-windows",
        "stratify-classes", "budget", "target-ci",
    });
}

/**
 * Enable the obs sinks the run asked for. Flipping the flags before
 * the measured work means the hot-path instrumentation (metrics,
 * phases, trace slices) actually records; with neither flag passed
 * everything stays at its one-relaxed-load disabled cost.
 */
void
enableObsSinks(const std::string &manifest_path,
               const std::string &trace_path)
{
    if (!manifest_path.empty()) {
        obs::setMetricsEnabled(true);
        obs::setTimingEnabled(true);
    }
    if (!trace_path.empty())
        obs::setTracingEnabled(true);
}

/** Flush --manifest / --trace-out files after the measured work. */
void
writeObsOutputs(obs::Manifest *manifest,
                const std::string &manifest_path,
                const std::string &trace_path)
{
    if (manifest && !manifest_path.empty()) {
        manifest->captureObservations();
        manifest->setEnv();
        std::string error;
        if (!manifest->write(manifest_path, error))
            fatal("cannot write manifest: ", error);
        inform("wrote manifest to ", manifest_path);
    }
    if (!trace_path.empty()) {
        std::string error;
        if (!obs::writeChromeTrace(trace_path, error))
            fatal("cannot write trace: ", error);
        inform("wrote trace to ", trace_path);
    }
}

/**
 * The --campaign --stratify mode: two-level estimation. Level one
 * (inject/stratified.hh) partitions the fault space and prices the
 * allocation; level two injects the picks and folds per-stratum
 * tallies into the combined estimator. Checkpoints use version 2
 * journals keyed by the partition hash.
 */
int
runStratifiedCampaignCli(const Args &args)
{
    const std::string workload = args.getString("workload", "");
    if (workload.empty()) {
        usage();
        return 1;
    }
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const std::uint64_t base_seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    TrialKind kind = TrialKind::Register;
    if (!parseTrialKind(args.getString("kind", "register"), kind))
        fatal("unknown --kind (register|memory)");
    if (kind != TrialKind::Register)
        fatal("--stratify supports --kind=register only");
    const std::string checkpoint = args.getString("checkpoint", "");
    const bool resume = args.getBool("resume");
    if (resume && checkpoint.empty())
        fatal("--resume requires --checkpoint=FILE");
    if (!resume && !checkpoint.empty() &&
        static_cast<bool>(std::ifstream(checkpoint))) {
        fatal("checkpoint '", checkpoint,
              "' already exists; use --resume to continue it or "
              "remove it first");
    }
    const std::uint64_t every = static_cast<std::uint64_t>(
        args.getInt("checkpoint-every", 64));
    const std::string manifest_path = args.getString("manifest", "");
    const std::string trace_path = args.getString("trace-out", "");
    enableObsSinks(manifest_path, trace_path);

    StratifyOptions opts;
    opts.windows =
        static_cast<unsigned>(args.getInt("stratify-windows", 8));
    opts.maxClasses =
        static_cast<unsigned>(args.getInt("stratify-classes", 64));

    std::cout << "stratified campaign: " << workload << " x" << scale
              << ", seed " << base_seed << ", " << opts.windows
              << " windows, <= " << opts.maxClasses
              << " site classes\n";

    Campaign campaign(workload, scale, GpuConfig{});
    campaign.setWatchdogMultiplier(args.getDouble("watchdog", 8.0));
    const std::string protect = args.getString("protect", "none");
    if (protect != "none") {
        campaign.setProtection(
            protect,
            static_cast<unsigned>(args.getInt("protect-domain", 8)));
    }
    const Stratification strat =
        Stratification::build(campaign, opts);

    bool sampleable = false;
    for (const Stratum &st : strat.strata())
        sampleable = sampleable || (!st.skipped && st.weight > 0.0);

    // The budget is a pure function of the partition and the flags,
    // so shards and resumes re-derive it identically.
    std::uint64_t budget = static_cast<std::uint64_t>(args.getInt(
        "budget", args.getInt("trials", 1000)));
    if (args.has("target-ci")) {
        budget = strat.budgetForTargetCi(
            args.getDouble("target-ci", 0.0), budget);
    }
    if (!sampleable)
        budget = 0;

    std::cout << "partition " << std::hex << strat.hash() << std::dec
              << ": " << strat.strata().size() << " strata, "
              << formatFixed(100.0 * strat.skippedWeight(), 2)
              << "% of the fault space provably Masked; budget "
              << budget << " injected trials\n";

    JournalHeader header;
    header.workload = workload;
    header.scale = scale;
    header.kind = kind;
    header.baseSeed = base_seed;
    header.trials = budget;
    header.version = 2;
    header.strataHash = strat.hash();

    std::vector<JournalRecord> completed;
    if (resume && static_cast<bool>(std::ifstream(checkpoint))) {
        CampaignJournal journal;
        std::string error;
        if (!CampaignJournal::load(checkpoint, journal, error))
            fatal("cannot resume: ", error);
        if (!(journal.header == header)) {
            fatal("checkpoint '", checkpoint,
                  "' records a different stratified campaign (check "
                  "workload/scale/seed/budget and the partition "
                  "hash)");
        }
        completed = std::move(journal.records);
    }
    if (completed.size() > budget)
        fatal("checkpoint has more trials than the budget ", budget);
    if (!completed.empty()) {
        std::cout << "resuming after " << completed.size()
                  << " completed trials\n";
    }

    const std::size_t first = completed.size();
    const std::size_t remaining =
        static_cast<std::size_t>(budget) - first;
    const std::vector<Stratification::Pick> picks =
        strat.picks(first, remaining);

    std::vector<std::string> outcome_labels;
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        outcome_labels.emplace_back(
            injectOutcomeName(static_cast<InjectOutcome>(i)));
    }
    obs::Heartbeat heartbeat(
        outcome_labels, budget, every,
        args.getBool("heartbeat") ? &std::cerr : nullptr);
    if (!completed.empty()) {
        std::vector<std::uint64_t> primed(numInjectOutcomes, 0);
        for (const JournalRecord &record : completed)
            ++primed[static_cast<std::size_t>(record.result.outcome)];
        heartbeat.prime(primed);
    }

    // Per-stratum tallies feed the combined estimator; the flat
    // tally keeps the familiar outcome/code table.
    std::vector<StratumTally> tallies(strat.strata().size());
    CampaignTally tally;
    const auto deposit = [&](std::uint32_t stratum,
                             const TrialResult &result) {
        if (stratum >= tallies.size())
            fatal("journal stratum ", stratum,
                  " outside the partition");
        ++tallies[stratum].trials;
        ++tallies[stratum]
              .counts[static_cast<std::size_t>(result.outcome)];
        tally.add(result);
    };

    for (const JournalRecord &record : completed)
        deposit(record.stratum, record.result);

    std::vector<TrialResult> results(remaining);
    if (!checkpoint.empty()) {
        JournalWriter writer(checkpoint, header, every,
                             std::move(completed));
        runTasks(remaining, [&](std::size_t i) {
            const Stratification::Pick &pick = picks[i];
            results[i] =
                campaign.runOne(strat.trialSpec(pick, base_seed));
            writer.record(first + i,
                          strat.pickSeed(pick, base_seed),
                          pick.stratum, results[i]);
            heartbeat.record(
                static_cast<std::size_t>(results[i].outcome));
        });
        writer.finish();
    } else {
        runTasks(remaining, [&](std::size_t i) {
            results[i] = campaign.runOne(
                strat.trialSpec(picks[i], base_seed));
            heartbeat.record(
                static_cast<std::size_t>(results[i].outcome));
        });
    }
    heartbeat.finish();
    for (std::size_t i = 0; i < remaining; ++i)
        deposit(picks[i].stratum, results[i]);

    std::cout << "\n";
    Table table({"outcome", "injected", "combined rate", "95% CI"});
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        const InjectOutcome outcome = static_cast<InjectOutcome>(i);
        const WilsonInterval rate =
            strat.combinedInterval(tallies, outcome);
        std::string ci;
        ci += '[';
        ci += formatFixed(rate.low, 5);
        ci += ", ";
        ci += formatFixed(rate.high, 5);
        ci += ']';
        table.beginRow()
            .cell(injectOutcomeName(outcome))
            .cell(std::to_string(tally.count(outcome)))
            .cell(rate.point, 5)
            .cell(ci);
    }
    table.printText(std::cout);

    const WilsonInterval sdc =
        strat.combinedInterval(tallies, InjectOutcome::Sdc);
    const std::uint64_t injected = tally.total();
    const std::uint64_t effective =
        injected == 0
            ? 0
            : effectiveUniformTrials(sdc.high - sdc.low, sdc.point);
    std::cout << "\ninjected " << injected << " trials; the SDC "
              << "interval is worth " << effective
              << " uniform trials ("
              << formatFixed(injected == 0
                                 ? 0.0
                                 : static_cast<double>(effective) /
                                       static_cast<double>(injected),
                             2)
              << "x)\n";

    if (!tally.codeCounts.empty()) {
        std::cout << "\ndiagnostic codes:\n";
        for (const auto &[code, count] : tally.codeCounts)
            std::cout << "  " << code << "  " << count << "\n";
    }

    obs::Manifest manifest("mbavf --campaign --stratify");
    if (!manifest_path.empty()) {
        obs::JsonValue run = obs::JsonValue::object();
        run.set("workload", workload);
        run.set("scale", obs::JsonValue(std::uint64_t(scale)));
        run.set("trials", obs::JsonValue(budget));
        run.set("seed", obs::JsonValue(base_seed));
        run.set("kind", std::string(trialKindName(kind)));
        run.set("protect", protect);
        run.set("resumed_trials",
                obs::JsonValue(std::uint64_t(first)));
        run.set("stratify", obs::JsonValue(true));
        run.set("stratify_windows",
                obs::JsonValue(std::uint64_t(opts.windows)));
        run.set("stratify_classes",
                obs::JsonValue(std::uint64_t(opts.maxClasses)));
        manifest.set("run", std::move(run));
        manifest.set("campaign", obs::tallyJson(tally));
        manifest.set("strata",
                     obs::strataJson(strat, tallies, budget));
    }
    writeObsOutputs(&manifest, manifest_path, trace_path);
    return 0;
}

/** The --campaign mode: injection trials with checkpoint/resume. */
int
runCampaignCli(const Args &args)
{
    if (args.has("budget") || args.has("target-ci") ||
        args.has("stratify-windows") || args.has("stratify-classes"))
        fatal("--budget/--target-ci/--stratify-* require --stratify");
    const std::string workload = args.getString("workload", "");
    if (workload.empty()) {
        usage();
        return 1;
    }
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));
    const std::uint64_t trials =
        static_cast<std::uint64_t>(args.getInt("trials", 1000));
    const std::uint64_t base_seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    TrialKind kind = TrialKind::Register;
    if (!parseTrialKind(args.getString("kind", "register"), kind))
        fatal("unknown --kind (register|memory)");
    const std::string checkpoint = args.getString("checkpoint", "");
    const bool resume = args.getBool("resume");
    if (resume && checkpoint.empty())
        fatal("--resume requires --checkpoint=FILE");
    const std::uint64_t every = static_cast<std::uint64_t>(
        args.getInt("checkpoint-every", 64));
    const std::string manifest_path = args.getString("manifest", "");
    const std::string trace_path = args.getString("trace-out", "");
    enableObsSinks(manifest_path, trace_path);

    JournalHeader header;
    header.workload = workload;
    header.scale = scale;
    header.kind = kind;
    header.baseSeed = base_seed;
    header.trials = trials;

    // Recover completed trials before paying for the golden run.
    std::vector<JournalRecord> completed;
    if (!checkpoint.empty()) {
        const bool exists =
            static_cast<bool>(std::ifstream(checkpoint));
        if (resume) {
            if (exists) {
                CampaignJournal journal;
                std::string error;
                if (!CampaignJournal::load(checkpoint, journal,
                                           error))
                    fatal("cannot resume: ", error);
                if (!(journal.header == header)) {
                    fatal("checkpoint '", checkpoint,
                          "' records a different campaign (check "
                          "workload/scale/kind/seed/trials)");
                }
                completed = std::move(journal.records);
            }
            // No file yet: a resume of a campaign that never
            // started is just a fresh start.
        } else if (exists) {
            fatal("checkpoint '", checkpoint,
                  "' already exists; use --resume to continue it "
                  "or remove it first");
        }
    }
    if (completed.size() > trials)
        fatal("checkpoint has more trials than --trials=", trials);

    std::cout << "campaign: " << workload << " x" << scale << ", "
              << trials << " " << trialKindName(kind)
              << " trials, seed " << base_seed << "\n";
    if (!completed.empty()) {
        std::cout << "resuming after " << completed.size()
                  << " completed trials\n";
    }

    Campaign campaign(workload, scale, GpuConfig{});
    campaign.setWatchdogMultiplier(args.getDouble("watchdog", 8.0));
    const std::string protect = args.getString("protect", "none");
    if (protect != "none") {
        campaign.setProtection(
            protect,
            static_cast<unsigned>(args.getInt("protect-domain", 8)));
    }

    const std::size_t first = completed.size();
    const std::size_t remaining =
        static_cast<std::size_t>(trials) - first;

    // Heartbeat lines land on the same boundaries the journal
    // flushes at, so every line corresponds to a recoverable state.
    std::vector<std::string> outcome_labels;
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        outcome_labels.emplace_back(
            injectOutcomeName(static_cast<InjectOutcome>(i)));
    }
    obs::Heartbeat heartbeat(
        outcome_labels, trials, every,
        args.getBool("heartbeat") ? &std::cerr : nullptr);
    if (!completed.empty()) {
        std::vector<std::uint64_t> primed(numInjectOutcomes, 0);
        for (const JournalRecord &record : completed)
            ++primed[static_cast<std::size_t>(record.result.outcome)];
        heartbeat.prime(primed);
    }

    CampaignTally tally;
    if (!checkpoint.empty()) {
        JournalWriter writer(checkpoint, header, every,
                             std::move(completed));
        campaign.runTrialsDetailed(
            first, remaining, base_seed, kind,
            [&writer, &heartbeat](std::size_t t,
                                  const TrialResult &result) {
                writer.record(t, result);
                heartbeat.record(
                    static_cast<std::size_t>(result.outcome));
            });
        writer.finish();
        tally = writer.journal().tally();
    } else {
        for (const JournalRecord &record : completed)
            tally.add(record.result);
        for (const TrialResult &result : campaign.runTrialsDetailed(
                 first, remaining, base_seed, kind,
                 [&heartbeat](std::size_t, const TrialResult &r) {
                     heartbeat.record(
                         static_cast<std::size_t>(r.outcome));
                 }))
            tally.add(result);
    }
    heartbeat.finish();

    std::cout << "\n";
    Table table({"outcome", "count", "rate", "95% CI"});
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        const InjectOutcome outcome =
            static_cast<InjectOutcome>(i);
        const WilsonInterval rate = tally.rate(outcome);
        std::string ci;
        ci += '[';
        ci += formatFixed(rate.low, 5);
        ci += ", ";
        ci += formatFixed(rate.high, 5);
        ci += ']';
        table.beginRow()
            .cell(injectOutcomeName(outcome))
            .cell(std::to_string(tally.count(outcome)))
            .cell(rate.point, 5)
            .cell(ci);
    }
    table.printText(std::cout);

    if (!tally.codeCounts.empty()) {
        std::cout << "\ndiagnostic codes:\n";
        for (const auto &[code, count] : tally.codeCounts)
            std::cout << "  " << code << "  " << count << "\n";
    }

    obs::Manifest manifest("mbavf --campaign");
    if (!manifest_path.empty()) {
        obs::JsonValue run = obs::JsonValue::object();
        run.set("workload", workload);
        run.set("scale", obs::JsonValue(std::uint64_t(scale)));
        run.set("trials", obs::JsonValue(trials));
        run.set("seed", obs::JsonValue(base_seed));
        run.set("kind", std::string(trialKindName(kind)));
        run.set("protect", protect);
        run.set("resumed_trials",
                obs::JsonValue(std::uint64_t(first)));
        manifest.set("run", std::move(run));
        manifest.set("campaign", obs::tallyJson(tally));
    }
    writeObsOutputs(&manifest, manifest_path, trace_path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    checkOptions(args);
    if (args.getBool("help")) {
        usage();
        return 0;
    }
    if (args.getBool("version")) {
        std::cout << obs::versionLine("mbavf") << "\n";
        return 0;
    }
    if (args.getBool("list-workloads")) {
        for (const std::string &name : workloadNames())
            std::cout << name << "\n";
        return 0;
    }

    const std::string structure = args.getString("structure", "l1");
    const std::string scheme_name = args.getString("scheme", "parity");
    const std::string style = args.getString(
        "style", structure == "vgpr" ? "inter" : "way");
    const unsigned interleave =
        static_cast<unsigned>(args.getInt("interleave", 2));
    const unsigned max_mode =
        static_cast<unsigned>(args.getInt("modes", 8));
    const unsigned windows =
        static_cast<unsigned>(args.getInt("windows", 0));
    const double total_fit = args.getDouble("total-fit", 100.0);

    // 0 = all hardware threads; unset = MBAVF_THREADS or hardware.
    unsigned num_threads = 0;
    if (args.has("threads")) {
        num_threads =
            static_cast<unsigned>(args.getInt("threads", 0));
        setParallelThreads(num_threads == 0 ? 0 : num_threads);
    }

    if (args.getBool("campaign")) {
        return args.getBool("stratify")
                   ? runStratifiedCampaignCli(args)
                   : runCampaignCli(args);
    }

    const std::string manifest_path = args.getString("manifest", "");
    const std::string trace_path = args.getString("trace-out", "");
    enableObsSinks(manifest_path, trace_path);
    obs::Manifest manifest("mbavf");

    GpuConfig config;
    LifetimeStore life(8, 64);
    Cycle horizon = 0;

    const std::string load_path = args.getString("load-lifetimes", "");
    const std::string save_path = args.getString("save-lifetimes", "");
    const std::string arena_out = args.getString("arena-out", "");
    const std::string arena_in = args.getString("arena-in", "");

    // An arena file has no backing store, so every store-producing
    // or store-consuming option is incoherent next to --arena-in.
    std::optional<LifetimeArena> arena;
    if (!arena_in.empty()) {
        if (!load_path.empty() || args.has("workload"))
            fatal("--arena-in replaces --workload/--load-lifetimes");
        if (!save_path.empty() || !arena_out.empty()) {
            fatal("--save-lifetimes/--arena-out need a lifetime "
                  "store; --arena-in provides none");
        }
        std::string error;
        arena = tryLoadArena(arena_in, error, &horizon);
        if (!arena)
            fatal("cannot load arena '", arena_in, "': ", error);
        if (horizon == 0) {
            fatal("arena '", arena_in, "' records no producer "
                  "horizon; re-save it with --arena-out");
        }
        std::cout << "mapped arena from " << arena_in << " ("
                  << arena->numWords() << " word(s), "
                  << arena->numSegments() << " segment(s), horizon "
                  << horizon << ")\n";
    } else if (!load_path.empty()) {
        std::ifstream is(load_path, std::ios::binary);
        if (!is)
            fatal("cannot open '", load_path, "'");
        // The file carries the horizon ahead of the store.
        std::uint64_t h = 0;
        is.read(reinterpret_cast<char *>(&h), sizeof(h));
        if (!is)
            fatal("truncated lifetime file");
        horizon = h;
        life = loadLifetimeStore(is);
        std::cout << "loaded lifetimes from " << load_path
                  << " (horizon " << horizon << ")\n";
    } else {
        const std::string workload = args.getString("workload", "");
        if (workload.empty()) {
            usage();
            return 1;
        }
        const unsigned scale =
            static_cast<unsigned>(args.getInt("scale", 1));
        std::cout << "simulating '" << workload << "' ...\n";
        AceRun run = runAceAnalysis(workload, scale, config,
                                    structure == "l2");
        horizon = run.horizon;
        if (!manifest_path.empty()) {
            obs::JsonValue caches = obs::JsonValue::object();
            caches.set("l1", obs::cacheStatsJson(run.l1Stats));
            caches.set("l2", obs::cacheStatsJson(run.l2Stats));
            manifest.set("cache", std::move(caches));
        }
        if (structure == "l1")
            life = std::move(run.l1);
        else if (structure == "l2")
            life = std::move(run.l2);
        else if (structure == "vgpr")
            life = std::move(run.vgpr);
        else
            fatal("unknown structure '", structure, "'");
    }

    if (!save_path.empty()) {
        std::ofstream os(save_path, std::ios::binary);
        if (!os)
            fatal("cannot open '", save_path, "' for writing");
        std::uint64_t h = horizon;
        os.write(reinterpret_cast<const char *>(&h), sizeof(h));
        saveLifetimeStore(life, os);
        std::cout << "saved lifetimes to " << save_path << "\n";
    }
    if (!arena_out.empty()) {
        // Stream straight from the store: byte-identical to the
        // in-memory snapshot path without holding both copies.
        streamArenaFromStore(life, arena_out, horizon);
        std::cout << "saved arena to " << arena_out << "\n";
    }

    // Guard against pairing saved lifetimes with the wrong
    // structure: VGPR stores are 32-bit words, cache stores 8-bit.
    const unsigned word_width =
        arena ? arena->wordWidth() : life.wordWidth();
    unsigned expected_width = structure == "vgpr" ? 32 : 8;
    if (word_width != expected_width) {
        fatal("lifetime word width ", word_width,
              " does not match structure '", structure, "'");
    }

    // Build the physical array.
    std::unique_ptr<PhysicalArray> array;
    if (structure == "vgpr") {
        RegInterleave ri = style == "intra"
            ? RegInterleave::IntraThread
            : RegInterleave::InterThread;
        if (style != "intra" && style != "inter")
            fatal("vgpr style must be intra|inter");
        array = makeRegFileArray(config.regs, ri, interleave);
    } else {
        const CacheParams &cp =
            structure == "l2" ? config.l2 : config.l1;
        CacheGeometry geom{cp.sets, cp.ways, cp.lineBytes};
        array = makeCacheArray(geom, parseCacheInterleave(style),
                               interleave);
    }

    auto scheme = makeScheme(scheme_name);
    MbAvfOptions opt;
    opt.horizon = horizon;
    opt.numWindows = windows;
    opt.numThreads = num_threads;
    opt.dueShieldsSdc = args.getBool("shield-due") ||
        (structure == "vgpr" && style == "inter");

    std::cout << "\n" << structure << ", " << scheme->name() << ", "
              << style << " x" << interleave << ", horizon "
              << horizon << "\n\n";

    ModeSweep sweep = arena
        ? sweepModesArena(*array, *arena, *scheme, opt, max_mode)
        : sweepModes(*array, life, *scheme, opt, max_mode);

    Table table({"mode", "SDC AVF", "trueDUE AVF", "falseDUE AVF",
                 "total"});
    for (unsigned m = 1; m <= max_mode; ++m) {
        const AvfFractions &avf = sweep.avf(m);
        table.beginRow()
            .cell(std::to_string(m) + "x1")
            .cell(avf.sdc, 5)
            .cell(avf.trueDue, 5)
            .cell(avf.falseDue, 5)
            .cell(avf.total(), 5);
    }
    table.printText(std::cout);

    auto fits = caseStudyFaultRates(total_fit);
    StructureSer ser = sweepSer(sweep, fits);
    std::cout << "\nSER @ " << total_fit << " FIT raw:  SDC "
              << formatFixed(ser.sdc, 4) << "  DUE "
              << formatFixed(ser.due(), 4) << "  (check bits: +"
              << formatFixed(100.0 * scheme->areaOverhead(
                                 structure == "vgpr"
                                     ? config.regs.regBits
                                     : config.l1.lineBytes * 8),
                             1)
              << "% area)\n";

    if (windows) {
        std::cout << "\nAVF over time ("
                  << std::to_string(windows) << " windows, mode "
                  << max_mode << "x1):\n";
        const MbAvfResult &last = sweep.results[max_mode - 1];
        Table wt({"window", "SDC", "DUE"});
        for (unsigned w = 0; w < windows; ++w) {
            wt.beginRow()
                .cell(std::to_string(w))
                .cell(last.windows[w].sdc, 4)
                .cell(last.windows[w].due(), 4);
        }
        wt.printText(std::cout);
    }

    if (!manifest_path.empty()) {
        obs::JsonValue run = obs::JsonValue::object();
        run.set("workload", args.getString("workload", ""));
        run.set("structure", structure);
        run.set("scheme", scheme_name);
        run.set("style", style);
        run.set("interleave",
                obs::JsonValue(std::uint64_t(interleave)));
        run.set("modes", obs::JsonValue(std::uint64_t(max_mode)));
        run.set("windows", obs::JsonValue(std::uint64_t(windows)));
        run.set("horizon", obs::JsonValue(std::uint64_t(horizon)));
        run.set("total_fit", obs::JsonValue(total_fit));
        run.set("shield_due", obs::JsonValue(opt.dueShieldsSdc));
        manifest.set("run", std::move(run));
        manifest.set("avf", obs::modeSweepJson(sweep));
        manifest.set("ser", obs::serJson(ser));
    }
    writeObsOutputs(&manifest, manifest_path, trace_path);
    return 0;
}
