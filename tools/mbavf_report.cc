/**
 * @file
 * mbavf_report — inspect, compare, and merge run manifests.
 *
 *   mbavf_report FILE                     pretty-print one manifest
 *   mbavf_report --rank FILE [--top=N]    ranked attribution table
 *   mbavf_report --strata FILE [--top=N]  stratified-campaign view
 *   mbavf_report --diff REF CAND [opts]   compare two manifests
 *   mbavf_report --merge=DIR --out=FILE   bench manifests -> trajectory
 *   mbavf_report --check-trace=FILE       validate a Chrome trace
 *
 * --rank renders the "attribution" section an mbavf_analyze manifest
 * carries (schema_version 1): the per-instruction MB-AVF table ranked
 * by attributed group-cycles, the per-kernel rollup, and whether the
 * conservation check held. The generic --diff / --merge modes already
 * cover the section; --rank is the human-readable view.
 *
 * --strata renders the "strata" section a stratified campaign
 * (mbavf --campaign --stratify, or a stratified mbavf_serve job)
 * emits: the partition identity, the per-stratum allocation ranked by
 * injected trials, the skipped (provably-Masked) weight, and the
 * combined estimator with its effective-trials multiplier.
 *
 * --diff compares a reference run against a candidate and exits 0
 * when they agree, 1 on drift (an AVF/result number moved beyond
 * --avf-tol, a campaign rate's Wilson CI became disjoint from the
 * reference's, or with --perf-tol a phase slowed beyond the
 * threshold), and 2 on structural mismatch or unusable input. The
 * "phases" and "env" sections are perf/context data and never count
 * as structural drift; --structure-only restricts the result
 * comparison to key sets and value types, which is how CI guards the
 * manifest schema against a checked-in golden file without pinning
 * any measured value. --structure-only composes with --perf-tol:
 * phase timings are still tolerance-gated, so a main-branch golden
 * can hold both the schema and the performance floor.
 *
 * --merge collects every BENCH_*.json (or *.json) manifest in a
 * directory into one name-sorted trajectory document for plotting
 * perf/AVF history across commits. Two files carrying the same run
 * (identical deterministic content — everything outside "phases" and
 * "env") merge once: the lexically-first name is kept and each
 * duplicate is reported with a warning, so a double-copied bench
 * result cannot double-count in a trajectory plot.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/build_info.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/report.hh"

using namespace mbavf;

namespace
{

void
usage()
{
    std::cout <<
        "usage: mbavf_report FILE\n"
        "       mbavf_report --rank FILE [--top=N]\n"
        "       mbavf_report --strata FILE [--top=N]\n"
        "       mbavf_report --diff REF CAND [options]\n"
        "       mbavf_report --merge=DIR --out=FILE\n"
        "       mbavf_report --check-trace=FILE\n\n"
        "rank/strata options:\n"
        "  --top=N              show only the top N rows\n"
        "                       (default: every row)\n\n"
        "diff options:\n"
        "  --avf-tol=T          relative tolerance for result\n"
        "                       numbers (0 = bit-exact)\n"
        "  --perf-tol=T         flag phases slower/faster than T\n"
        "                       relative (default: ignore timing)\n"
        "  --structure-only     compare key sets and types only\n"
        "                       (golden-manifest schema guard)\n\n"
        "other options:\n"
        "  --out=FILE           trajectory output for --merge\n"
        "  --version            print build info and exit\n\n"
        "exit codes: 0 match/success, 1 drift, 2 structural\n"
        "mismatch or unusable input\n";
}

/** Load + envelope-validate, exiting 2 on anything unusable. */
obs::JsonValue
loadManifestOrDie(const std::string &path)
{
    obs::JsonValue doc;
    std::string error;
    if (!obs::Manifest::load(path, doc, error)) {
        std::cerr << "mbavf_report: " << error << "\n";
        std::exit(2);
    }
    return doc;
}

int
runDiff(const std::string &ref_path, const std::string &cand_path,
        const Args &args)
{
    obs::DiffOptions options;
    options.structureOnly = args.getBool("structure-only");
    options.avfTol = args.getDouble("avf-tol", 0.0);
    options.perfTol = args.getDouble("perf-tol", -1.0);

    obs::JsonValue ref = loadManifestOrDie(ref_path);
    obs::JsonValue cand = loadManifestOrDie(cand_path);

    obs::DiffResult result = obs::diffManifests(ref, cand, options);
    for (const std::string &note : result.notes)
        std::cout << note << "\n";
    if (result.clean()) {
        std::cout << "manifests match\n";
        return 0;
    }
    std::cout << result.notes.size() << " difference"
              << (result.notes.size() == 1 ? "" : "s") << "\n";
    return result.structuralMismatch ? 2 : 1;
}

int
runMerge(const std::string &dir, const std::string &out_path)
{
    namespace fs = std::filesystem;
    if (out_path.empty())
        fatal("--merge requires --out=FILE");
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        fatal("cannot read directory '", dir, "': ", ec.message());

    std::vector<std::pair<std::string, obs::JsonValue>> manifests;
    for (const fs::directory_entry &entry : it) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".json") {
            continue;
        }
        obs::JsonValue doc;
        std::string error;
        if (!obs::Manifest::load(entry.path().string(), doc,
                                 error)) {
            // A trace or trajectory file sharing the directory is
            // expected; only actual manifests merge.
            warn("skipping ", entry.path().string(), ": ", error);
            continue;
        }
        manifests.emplace_back(entry.path().stem().string(),
                               std::move(doc));
    }
    if (manifests.empty())
        fatal("no manifests found in '", dir, "'");

    const std::size_t count = manifests.size();
    std::vector<std::string> dropped;
    obs::JsonValue trajectory =
        obs::mergeManifests(std::move(manifests), &dropped);
    for (const std::string &note : dropped)
        warn("duplicate manifest: ", note);
    std::ofstream os(out_path, std::ios::binary);
    if (!os)
        fatal("cannot open '", out_path, "' for writing");
    os << trajectory.dump(1) << "\n";
    if (!os.flush())
        fatal("write to '", out_path, "' failed");
    std::cout << "merged " << (count - dropped.size())
              << " manifests into " << out_path;
    if (!dropped.empty())
        std::cout << " (" << dropped.size() << " duplicates dropped)";
    std::cout << "\n";
    return 0;
}

/**
 * Pretty-print the attribution section of an mbavf_analyze manifest:
 * the ranked per-instruction table, the per-kernel rollup, and the
 * conservation verdict. Exits 2 when the file carries no attribution
 * section (it is some other tool's manifest).
 */
int
runRank(const std::string &path, const Args &args)
{
    const obs::JsonValue doc = loadManifestOrDie(path);
    const obs::JsonValue *attr = doc.find("attribution");
    if (!attr || !attr->isObject()) {
        std::cerr << "mbavf_report: " << path
                  << ": no attribution section (not an "
                     "mbavf_analyze manifest?)\n";
        return 2;
    }

    if (const obs::JsonValue *run = doc.find("run");
        run && run->isObject()) {
        auto field = [&](const char *key) -> std::string {
            const obs::JsonValue *v = run->find(key);
            return v && v->isString() ? v->asString() : "?";
        };
        std::cout << "attribution for '" << field("workload")
                  << "' " << field("structure") << " "
                  << field("scheme") << " mode " << field("mode")
                  << "\n";
    }

    auto cycleOf = [](const obs::JsonValue *cycles,
                      const char *key) -> std::uint64_t {
        const obs::JsonValue *v =
            cycles ? cycles->find(key) : nullptr;
        return v && v->isNumber() ? v->asUint() : 0;
    };

    const obs::JsonValue *top = attr->find("top");
    if (!top || !top->isArray()) {
        std::cerr << "mbavf_report: " << path
                  << ": attribution section has no top array\n";
        return 2;
    }
    const std::uint64_t limit = static_cast<std::uint64_t>(
        args.getInt("top", std::int64_t(top->items().size())));

    Table table({"rank", "kernel", "pc", "SDC", "trueDUE",
                 "falseDUE", "share"});
    std::uint64_t rank = 0;
    for (const obs::JsonValue &row : top->items()) {
        if (rank >= limit)
            break;
        ++rank;
        const obs::JsonValue *kernel = row.find("kernel");
        const obs::JsonValue *pc = row.find("pc");
        const obs::JsonValue *cycles = row.find("cycles");
        const obs::JsonValue *share = row.find("share");
        table.beginRow()
            .cell(rank)
            .cell(kernel && kernel->isNumber()
                      ? std::to_string(kernel->asUint())
                      : std::string("-"))
            .cell(pc && pc->isNumber() ? std::to_string(pc->asUint())
                                       : std::string("-"))
            .cell(cycleOf(cycles, "sdc"))
            .cell(cycleOf(cycles, "true_due"))
            .cell(cycleOf(cycles, "false_due"))
            .cell(share && share->isNumber() ? share->asDouble()
                                             : 0.0,
                  4);
    }
    table.printText(std::cout);

    if (const obs::JsonValue *kernels = attr->find("kernels");
        kernels && kernels->isArray()) {
        std::cout << "\nper-kernel:";
        for (const obs::JsonValue &row : kernels->items()) {
            const obs::JsonValue *kernel = row.find("kernel");
            const obs::JsonValue *cycles = row.find("cycles");
            const std::uint64_t total = cycleOf(cycles, "sdc") +
                                        cycleOf(cycles, "true_due") +
                                        cycleOf(cycles, "false_due");
            std::cout << "  kernel "
                      << (kernel && kernel->isNumber()
                              ? std::to_string(kernel->asUint())
                              : std::string("-"))
                      << " = " << total;
        }
        std::cout << "\n";
    }

    const obs::JsonValue *conserved = attr->find("conserved");
    if (conserved && conserved->isBool()) {
        std::cout << (conserved->asBool()
                          ? "conservation: held\n"
                          : "conservation: VIOLATED\n");
        return conserved->asBool() ? 0 : 1;
    }
    return 0;
}

/**
 * Pretty-print the strata section of a stratified-campaign manifest:
 * partition summary, combined estimator, and the allocation table
 * ranked by injected trials. Exits 2 when the file carries no strata
 * section.
 */
int
runStrata(const std::string &path, const Args &args)
{
    const obs::JsonValue doc = loadManifestOrDie(path);

    // The mbavf CLI writes "strata" at top level; a serve manifest
    // nests it per job under "results". Show the first one found.
    const obs::JsonValue *strata = doc.find("strata");
    if (!strata) {
        if (const obs::JsonValue *results = doc.find("results");
            results && results->isArray()) {
            for (const obs::JsonValue &entry : results->items()) {
                if ((strata = entry.find("strata")))
                    break;
            }
        }
    }
    if (!strata || !strata->isObject()) {
        std::cerr << "mbavf_report: " << path
                  << ": no strata section (not a stratified "
                     "campaign manifest?)\n";
        return 2;
    }

    auto num = [&](const char *key) -> double {
        const obs::JsonValue *v = strata->find(key);
        return v && v->isNumber() ? v->asDouble() : 0.0;
    };
    auto uint = [&](const char *key) -> std::uint64_t {
        const obs::JsonValue *v = strata->find(key);
        return v && v->isNumber() ? v->asUint() : 0;
    };

    std::cout << "stratified campaign: " << uint("classes")
              << " classes x " << uint("windows") << " windows\n"
              << "  partition hash    " << std::hex << uint("hash")
              << std::dec << "\n"
              << "  provably Masked   " << 100.0 * num("skipped_weight")
              << "% of fault space (skipped exactly)\n"
              << "  injected          " << uint("injected") << " / "
              << uint("budget") << " budget\n"
              << "  effective trials  " << uint("effective_trials")
              << " uniform-equivalent (" << num("multiplier")
              << "x per injection)\n";

    if (const obs::JsonValue *combined = strata->find("combined");
        combined && combined->isObject()) {
        std::cout << "combined estimator:\n";
        for (const auto &[name, value] : combined->members()) {
            const obs::JsonValue *rate = value.find("rate");
            const obs::JsonValue *low = value.find("ci_low");
            const obs::JsonValue *high = value.find("ci_high");
            if (!rate || !low || !high)
                continue;
            std::cout << "  " << name << " = " << rate->asDouble()
                      << "  [" << low->asDouble() << ", "
                      << high->asDouble() << "]\n";
        }
    }

    const obs::JsonValue *table_in = strata->find("table");
    if (!table_in || !table_in->isArray())
        return 0;

    std::vector<const obs::JsonValue *> rows;
    for (const obs::JsonValue &row : table_in->items())
        rows.push_back(&row);
    auto trialsOf = [](const obs::JsonValue *row) -> std::uint64_t {
        const obs::JsonValue *t = row->find("trials");
        return t && t->isNumber() ? t->asUint() : 0;
    };
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const obs::JsonValue *a,
                         const obs::JsonValue *b) {
                         return trialsOf(a) > trialsOf(b);
                     });
    const std::uint64_t limit = static_cast<std::uint64_t>(
        args.getInt("top", std::int64_t(rows.size())));

    Table table({"class", "window", "weight", "predicted", "trials",
                 "sdc", "note"});
    std::uint64_t shown = 0;
    std::uint64_t skipped_strata = 0;
    for (const obs::JsonValue *row : rows) {
        const obs::JsonValue *skipped = row->find("skipped");
        if (skipped && skipped->asBool()) {
            ++skipped_strata;
            continue;
        }
        if (shown >= limit)
            continue;
        ++shown;
        auto field = [&](const char *key) -> double {
            const obs::JsonValue *v = row->find(key);
            return v && v->isNumber() ? v->asDouble() : 0.0;
        };
        const obs::JsonValue *sdc = row->find("sdc");
        const obs::JsonValue *sdc_rate =
            sdc ? sdc->find("rate") : nullptr;
        table.beginRow()
            .cell(static_cast<std::uint64_t>(field("class")))
            .cell(static_cast<std::uint64_t>(field("window")))
            .cell(field("weight"), 6)
            .cell(field("predicted"), 4)
            .cell(trialsOf(row))
            .cell(sdc_rate ? sdc_rate->asDouble() : 0.0, 4)
            .cell(trialsOf(row) == 0 ? std::string("unsampled")
                                     : std::string(""));
    }
    table.printText(std::cout);
    std::cout << skipped_strata
              << " strata skipped (provably Masked)\n";
    return 0;
}

/** Minimal Chrome-trace shape check: the format Perfetto ingests. */
int
runCheckTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::cerr << "mbavf_report: cannot open '" << path << "'\n";
        return 2;
    }
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    obs::JsonValue doc;
    std::string error;
    if (!obs::JsonValue::parse(text, doc, error)) {
        std::cerr << "mbavf_report: " << path << ": " << error
                  << "\n";
        return 2;
    }
    const obs::JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::cerr << "mbavf_report: " << path
                  << ": no traceEvents array\n";
        return 2;
    }
    std::size_t slices = 0;
    for (const obs::JsonValue &event : events->items()) {
        const obs::JsonValue *ph = event.find("ph");
        if (!ph || !ph->isString()) {
            std::cerr << "mbavf_report: " << path
                      << ": event without ph\n";
            return 2;
        }
        if (ph->asString() == "X") {
            if (!event.find("name") || !event.find("ts") ||
                !event.find("dur") || !event.find("pid") ||
                !event.find("tid")) {
                std::cerr << "mbavf_report: " << path
                          << ": incomplete X event\n";
                return 2;
            }
            ++slices;
        }
    }
    std::cout << path << ": " << events->items().size()
              << " events, " << slices << " slices\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, Args::Positional::Allow);
    args.requireKnown({
        "help", "version", "diff", "merge", "out", "check-trace",
        "avf-tol", "perf-tol", "structure-only", "rank", "strata",
        "top",
    });
    if (args.getBool("help")) {
        usage();
        return 0;
    }
    if (args.getBool("version")) {
        std::cout << obs::versionLine("mbavf_report") << "\n";
        return 0;
    }

    const std::string merge_dir = args.getString("merge", "");
    if (!merge_dir.empty())
        return runMerge(merge_dir, args.getString("out", ""));

    const std::string trace = args.getString("check-trace", "");
    if (!trace.empty())
        return runCheckTrace(trace);

    const std::vector<std::string> &files = args.positional();
    if (args.getBool("rank")) {
        if (files.size() != 1) {
            usage();
            return 2;
        }
        return runRank(files[0], args);
    }
    if (args.getBool("strata")) {
        if (files.size() != 1) {
            usage();
            return 2;
        }
        return runStrata(files[0], args);
    }
    if (args.getBool("diff")) {
        if (files.size() != 2) {
            usage();
            return 2;
        }
        return runDiff(files[0], files[1], args);
    }
    if (files.size() != 1) {
        usage();
        return 2;
    }
    obs::printManifest(loadManifestOrDie(files[0]), std::cout);
    return 0;
}
