/**
 * @file
 * mbavf_serve — fault-isolated analysis service.
 *
 *   mbavf_serve --spec=JOBS.json --state=DIR [options]
 *   mbavf_serve --spec=JOBS.json --state=DIR --resume [options]
 *   mbavf_serve --spec=JOBS.json --cache=DIR --cache-verify[=F]
 *
 * Reads a job-spec file (sweeps and campaigns over workload x
 * layout x scheme configurations), shards the jobs, and runs every
 * shard in a forked worker process under a wall-clock watchdog. A
 * crashing or hanging shard is retried with exponential backoff and
 * quarantined after --max-attempts failures; the run still
 * completes, with the quarantined shards listed in the merged
 * manifest's "degraded" section.
 *
 * Progress is journaled crash-safely to <state>/queue.journal:
 * after kill -9 at any instant, rerunning with --resume recomputes
 * only the unfinished shards and the final merged manifest is
 * bit-identical to an uninterrupted run's, at any --workers and any
 * --threads. With --cache=DIR, finished shard results are published
 * to a content-addressed cache; a rerun of the same spec performs
 * zero sweeps. --cache-verify recomputes a sampled fraction of the
 * cached entries in fresh workers and fails on any staleness.
 *
 * Exit codes: 0 clean, 1 degraded (quarantined shards), 2 failed
 * (unusable spec/state/cache). See DESIGN.md Section 15.
 */

#include <unistd.h>

#include <iostream>
#include <string>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/build_info.hh"
#include "serve/supervisor.hh"

using namespace mbavf;

namespace
{

void
usage()
{
    std::cout <<
        "usage: mbavf_serve --spec=JOBS.json --state=DIR [options]\n"
        "       mbavf_serve --spec=JOBS.json --cache=DIR"
        " --cache-verify[=F]\n\n"
        "options:\n"
        "  --workers=N          concurrent worker processes (1)\n"
        "  --threads=T          sweep/campaign threads per worker\n"
        "                       (0 = all hardware; results are\n"
        "                       identical at any setting)\n"
        "  --cache=DIR          content-addressed result cache\n"
        "  --manifest=FILE      merged manifest (deterministic:\n"
        "                       bit-identical across kill/resume,\n"
        "                       --workers, --threads)\n"
        "  --metrics-out=FILE   run accounting JSON (wall-clock\n"
        "                       data; never deterministic)\n"
        "  --resume             continue <state>/queue.journal\n"
        "  --shard-timeout=S    per-shard wall-clock budget in\n"
        "                       seconds (0 disables the watchdog)\n"
        "  --max-attempts=N     failures before quarantine (3)\n"
        "  --backoff=S          retry backoff base in seconds\n"
        "                       (0.05; doubles per attempt, plus\n"
        "                       deterministic jitter)\n"
        "  --heartbeat          shard progress lines on stderr\n"
        "  --cache-verify[=F]   re-run fraction F (default 1.0) of\n"
        "                       cached shards and compare\n"
        "  --version            print build info and exit\n\n"
        "exit codes: 0 clean, 1 degraded (quarantined shards),\n"
        "2 failed\n";
}

/** This binary's path, for worker re-exec. */
std::string
selfExePath(const char *argv0)
{
    char buffer[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
    if (n > 0) {
        buffer[n] = '\0';
        return buffer;
    }
    return argv0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    args.requireKnown({
        "help", "version", "spec", "state", "cache", "manifest",
        "metrics-out", "workers", "threads", "resume",
        "shard-timeout", "max-attempts", "backoff", "heartbeat",
        "cache-verify", "worker", "shard", "out",
    });
    if (args.getBool("help")) {
        usage();
        return 0;
    }
    if (args.getBool("version")) {
        std::cout << obs::versionLine("mbavf_serve") << "\n";
        return 0;
    }

    const std::string spec_path = args.getString("spec", "");
    if (spec_path.empty()) {
        usage();
        return 2;
    }

    if (args.has("threads")) {
        const unsigned threads = static_cast<unsigned>(
            args.getIntInRange("threads", 0, 0, 4096));
        setParallelThreads(threads);
    }

    // Internal: one forked shard execution (see serve/supervisor.hh).
    if (args.getBool("worker")) {
        const std::string out = args.getString("out", "");
        if (!args.has("shard") || out.empty())
            fatal("--worker needs --shard=N and --out=FILE");
        return serve::runWorker(
            spec_path,
            static_cast<std::uint64_t>(args.getInt("shard", 0)),
            out);
    }

    serve::ServeOptions options;
    options.specPath = spec_path;
    options.stateDir = args.getString("state", "");
    options.cacheDir = args.getString("cache", "");
    options.manifestPath = args.getString("manifest", "");
    options.metricsPath = args.getString("metrics-out", "");
    options.workers = static_cast<unsigned>(
        args.getIntInRange("workers", 1, 1, 1024));
    options.threadsPerWorker = static_cast<unsigned>(
        args.getIntInRange("threads", 0, 0, 4096));
    options.shardTimeoutSeconds =
        args.getDouble("shard-timeout", 0.0);
    options.maxAttempts = static_cast<unsigned>(
        args.getIntInRange("max-attempts", 3, 1, 1000));
    options.backoffBaseSeconds = args.getDouble("backoff", 0.05);
    options.resume = args.getBool("resume");
    options.heartbeat = args.getBool("heartbeat");
    options.workerExe = selfExePath(argv[0]);

    if (args.has("cache-verify")) {
        // Bare --cache-verify stores "1": verify everything.
        const double fraction =
            args.getDouble("cache-verify", 1.0);
        if (fraction <= 0.0 || fraction > 1.0)
            fatal("--cache-verify fraction must be in (0, 1]");
        return serve::verifyCache(options, fraction);
    }

    if (options.stateDir.empty()) {
        usage();
        return 2;
    }
    return serve::runService(options).exitCode;
}
