#!/usr/bin/env bash
# Kill-and-resume smoke test for the campaign checkpoint journal.
#
# Kept as the historical entry point; the actual harness is the
# generic kill matrix (ci_kill_matrix.sh), which runs the same
# contract — SIGKILL mid-run, resume, bit-identical journal — for
# both the campaign checkpoint and the analysis service.
#
# Usage: ci_campaign_resume.sh <build-dir>
set -euo pipefail
build="${1:?usage: ci_campaign_resume.sh <build-dir>}"
exec "$(dirname "$0")/ci_kill_matrix.sh" "$build" campaign
