#!/usr/bin/env bash
# Kill-and-resume smoke test for the campaign checkpoint journal.
#
# Runs an injection campaign twice: once straight through, and once
# SIGKILLed mid-run and then resumed with a different thread count.
# The two journals must be bit-for-bit identical, and the journal
# lint must pass the resumed file clean. This is the crash-consistency
# contract of DESIGN.md section 10 exercised against a real kill, not
# a simulated truncation.
#
# Usage: ci_campaign_resume.sh <build-dir>
set -euo pipefail

build="${1:?usage: ci_campaign_resume.sh <build-dir>}"
mbavf="$build/tools/mbavf"
lint="$build/tools/mbavf_lint"

workload="${MBAVF_SMOKE_WORKLOAD:-recursive_gaussian}"
trials="${MBAVF_SMOKE_TRIALS:-8000}"
seed="${MBAVF_SMOKE_SEED:-5}"
kill_after="${MBAVF_SMOKE_KILL_AFTER:-3}"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

run_campaign() {
    "$mbavf" --campaign --workload="$workload" --trials="$trials" \
        --seed="$seed" --kind=register --checkpoint="$1" \
        --checkpoint-every=64 --threads="$2" "${@:3}"
}

echo "== straight run (2 threads) =="
run_campaign "$work/straight.journal" 2

echo "== interrupted run: SIGKILL after ${kill_after}s =="
# Background the binary directly (not the shell function): $! must
# be the campaign process itself, or the SIGKILL hits a wrapper
# subshell and leaves an orphaned campaign racing the resume below.
"$mbavf" --campaign --workload="$workload" --trials="$trials" \
    --seed="$seed" --kind=register \
    --checkpoint="$work/resumed.journal" \
    --checkpoint-every=64 --threads=2 &
pid=$!
sleep "$kill_after"
if ! kill -KILL "$pid" 2>/dev/null; then
    echo "error: campaign finished before the kill landed;" \
         "raise MBAVF_SMOKE_TRIALS" >&2
    exit 1
fi
wait "$pid" || true

# The kill must have landed mid-run, or the resume below is vacuous.
partial=$(grep -cv '^mbavf-journal' "$work/resumed.journal")
echo "records at kill: $partial / $trials"
if [ "$partial" -ge "$trials" ]; then
    echo "error: journal already complete at kill time;" \
         "raise MBAVF_SMOKE_TRIALS" >&2
    exit 1
fi

echo "== resume (8 threads) =="
run_campaign "$work/resumed.journal" 8 --resume

echo "== compare journals =="
cmp "$work/straight.journal" "$work/resumed.journal"

echo "== lint resumed journal =="
"$lint" --journal="$work/resumed.journal"

echo "kill-and-resume smoke: OK"
