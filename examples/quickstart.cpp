/**
 * @file
 * Quickstart: measure single- and multi-bit AVFs of a GPU L1 cache.
 *
 * Runs one workload on the APU model with ACE instrumentation, then
 * computes the single-bit AVF and the 2x1/4x1 spatial multi-bit AVFs
 * of the L1 data array under parity with three interleaving styles.
 *
 *   ./quickstart [--workload=minife] [--scale=1]
 */

#include <iostream>

#include "common/args.hh"
#include "common/table.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    args.requireKnown({"workload", "scale"});
    const std::string workload = args.getString("workload", "minife");
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));

    std::cout << "mbavf quickstart: ACE analysis of '" << workload
              << "' (scale " << scale << ")\n";

    AceRun run = runAceAnalysis(workload, scale);
    std::cout << "  horizon: " << run.horizon << " cycles\n"
              << "  L1: " << run.l1Stats.hits << " hits, "
              << run.l1Stats.misses << " misses\n"
              << "  dataflow: " << run.numDefs << " defs, "
              << run.numDeadDefs << " dynamically dead\n\n";

    CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                       run.config.l1.lineBytes};
    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = run.horizon;

    Table table({"interleave", "SB DUE", "2x1 DUE", "2x1 SDC",
                 "4x1 DUE", "4x1 SDC"});
    for (auto style : {CacheInterleave::Logical,
                       CacheInterleave::WayPhysical,
                       CacheInterleave::IndexPhysical}) {
        auto array = makeCacheArray(geom, style, 2);
        MbAvfResult sb = computeSbAvf(*array, run.l1, parity, opt);
        MbAvfResult mb2 = computeMbAvf(*array, run.l1, parity,
                                       FaultMode::mx1(2), opt);
        MbAvfResult mb4 = computeMbAvf(*array, run.l1, parity,
                                       FaultMode::mx1(4), opt);
        table.beginRow()
            .cell(cacheInterleaveName(style) + " x2")
            .cell(sb.avf.due(), 4)
            .cell(mb2.avf.due(), 4)
            .cell(mb2.avf.sdc, 4)
            .cell(mb4.avf.due(), 4)
            .cell(mb4.avf.sdc, 4);
    }
    table.printText(std::cout);

    std::cout << "\nMB-AVF grows with fault-mode size, and logical\n"
                 "interleaving (higher ACE locality) stays closest to\n"
                 "the single-bit AVF — the paper's Figure 4/6 trends.\n";
    return 0;
}
