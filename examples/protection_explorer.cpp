/**
 * @file
 * Protection-design exploration: the architect's workflow the paper
 * motivates.
 *
 * Given a workload, sweeps protection schemes (parity, SEC-DED,
 * DEC-TED) and interleave factors for the L1 data array, computes
 * per-fault-mode MB-AVFs, folds them with the Table III raw rates
 * into SDC and DUE soft error rates (Eq. 3), and prints a design
 * table with check-bit area overheads — exactly the power/area vs
 * reliability trade-off discussion of the paper's introduction.
 *
 *   ./protection_explorer [--workload=srad] [--scale=1]
 */

#include <iostream>

#include "common/args.hh"
#include "common/table.hh"
#include "core/fault_rates.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "core/ser.hh"
#include "core/sweep.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    args.requireKnown({"workload", "scale"});
    const std::string workload = args.getString("workload", "srad");
    const unsigned scale =
        static_cast<unsigned>(args.getInt("scale", 1));

    std::cout << "Protection design exploration for '" << workload
              << "' (L1 data array, 100 FIT raw)\n\n";

    AceRun run = runAceAnalysis(workload, scale);
    CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                       run.config.l1.lineBytes};
    MbAvfOptions opt;
    opt.horizon = run.horizon;

    Table table({"scheme", "interleave", "SDC SER", "DUE SER",
                 "check bits/line", "area"});

    for (const char *scheme_name : {"parity", "secded", "dected"}) {
        auto scheme = makeScheme(scheme_name);
        for (unsigned ileave : {1u, 2u, 4u}) {
            auto array = makeCacheArray(
                geom, CacheInterleave::WayPhysical, ileave);

            StructureSer ser = computeStructureSer(
                *array, run.l1, *scheme, opt, 100.0);

            // Logical check words shrink with interleaving; the
            // check-bit count is per line (one word per line for
            // physical styles).
            unsigned data_bits = geom.lineBits();
            unsigned check = scheme->checkBits(data_bits);
            table.beginRow()
                .cell(scheme->name())
                .cell("x" + std::to_string(ileave) + " way-phys")
                .cell(ser.sdc, 4)
                .cell(ser.due(), 4)
                .cell(std::uint64_t(check))
                .cell(formatFixed(
                          100.0 * scheme->areaOverhead(data_bits), 2) +
                      "%");
        }
    }
    table.printText(std::cout);

    std::cout << "\nReading the table: interleaving converts SDC "
                 "into DUE (or corrections) by\nsplitting a strike "
                 "across more check words; stronger codes cost check "
                 "bits.\nPick the cheapest row that meets the SDC "
                 "target - the paper's Section VIII\nmethodology.\n";
    return 0;
}
