/**
 * @file
 * Fault-injection vs ACE-analysis cross-validation (the paper's
 * Section VII-A methodology on a single workload).
 *
 * Runs a random single-bit injection campaign into the VGPR and
 * compares the measured SDC probability against the unprotected SDC
 * AVF predicted by ACE analysis. ACE analysis is conservative, so
 * the prediction should upper-bound the measured rate while staying
 * the same order of magnitude.
 *
 *   ./injection_study [--workload=dct] [--n=1500]
 */

#include <cmath>
#include <iostream>

#include "common/args.hh"
#include "common/table.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "inject/campaign.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    args.requireKnown({"workload", "n", "seed"});
    const std::string workload =
        args.getString("workload", "dct");
    const unsigned n = static_cast<unsigned>(args.getInt("n", 1500));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1234));

    std::cout << "Injection vs ACE analysis, VGPR of '" << workload
              << "'\n\n";

    // ACE-analysis prediction: unprotected single-bit SDC AVF.
    AceRun run = runAceAnalysis(workload);
    NoProtection none;
    MbAvfOptions opt;
    opt.horizon = run.horizon;
    auto array = makeRegFileArray(run.config.regs,
                                  RegInterleave::IntraThread, 1);
    double predicted = computeSbAvf(*array, run.vgpr, none, opt)
                           .avf.sdc;

    // Injection campaign measurement: n independent trials executed
    // concurrently on the shared pool, trial t seeded from
    // splitMix64(seed, t) so the study is reproducible at any
    // thread count.
    Campaign campaign(workload, 1, run.config);
    std::vector<InjectOutcome> outcomes =
        campaign.runTrials(n, seed, TrialKind::Register);
    unsigned sdc = 0;
    for (InjectOutcome outcome : outcomes)
        sdc += outcome == InjectOutcome::Sdc;
    double measured = static_cast<double>(sdc) / n;

    Table table({"quantity", "value"});
    table.beginRow().cell("ACE-predicted SDC AVF").cell(predicted, 4);
    table.beginRow()
        .cell("measured SDC rate (" + std::to_string(n) +
              " injections)")
        .cell(measured, 4);
    table.beginRow()
        .cell("injections causing SDC")
        .cell(std::uint64_t(sdc));
    table.printText(std::cout);

    std::cout << "\nACE analysis proves state unACE and assumes the "
                 "rest is ACE, so the\nprediction upper-bounds the "
                 "injection measurement (paper Section II-B).\n";
    // Allow three binomial standard deviations of sampling noise on
    // top of the bound so small-n smoke runs don't flag spuriously.
    double margin =
        3.0 * std::sqrt(predicted * (1.0 - predicted) / n);
    if (measured > predicted + margin) {
        std::cout << "WARNING: measured rate exceeds the ACE bound; "
                     "this should not happen.\n";
        return 1;
    }
    return 0;
}
