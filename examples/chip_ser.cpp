/**
 * @file
 * Chip-level soft-error-rate rollup (paper Section IV-E: "By summing
 * SER_H over all structures we can calculate the overall soft error
 * rate of a chip from all single- and multi-bit transient faults").
 *
 * Measures per-mode MB-AVFs for the three big SRAM structures of the
 * APU model — the per-CU L1 data arrays, the shared L2, and the
 * per-CU vector register files — under a chosen protection design,
 * scales Ibe-derived per-mode fault rates by each structure's size,
 * and prints the chip SER budget.
 *
 *   ./chip_ser [--workload=minife] [--fit-per-mbit=1000]
 */

#include <iostream>

#include "common/args.hh"
#include "common/table.hh"
#include "core/fault_rates.hh"
#include "core/mbavf.hh"
#include "core/protection.hh"
#include "core/ser.hh"
#include "core/sweep.hh"
#include "workloads/ace_runner.hh"

using namespace mbavf;

namespace
{

/** Per-mode SER of one structure (Eq. 3) via the sweep API. */
StructureSer
structureSer(const PhysicalArray &array, const LifetimeStore &life,
             const ProtectionScheme &scheme, Cycle horizon,
             double raw_fit, bool due_shields_sdc = false)
{
    MbAvfOptions opt;
    opt.horizon = horizon;
    opt.dueShieldsSdc = due_shields_sdc;
    return computeStructureSer(array, life, scheme, opt, raw_fit);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    args.requireKnown({"workload", "fit-per-mbit"});
    const std::string workload = args.getString("workload", "minife");
    const double fit_per_mbit =
        args.getDouble("fit-per-mbit", 1000.0);

    std::cout << "Chip SER rollup for '" << workload
              << "' at " << fit_per_mbit << " FIT/Mbit (22nm mode "
              << "mix)\n\nDesign: L1 parity x2 logical, L2 SEC-DED "
              << "x2 way-physical, VGPR parity tx4\n\n";

    AceRun run = runAceAnalysis(workload, 1, GpuConfig{},
                                /*measure_l2=*/true);
    const GpuConfig &cfg = run.config;

    auto mbits = [](double bits) { return bits / (1024 * 1024); };

    // L1: per CU, parity with x2 logical interleaving.
    CacheGeometry l1_geom{cfg.l1.sets, cfg.l1.ways, cfg.l1.lineBytes};
    double l1_bits =
        double(l1_geom.numLines()) * l1_geom.lineBits();
    auto l1_array =
        makeCacheArray(l1_geom, CacheInterleave::Logical, 2);
    ParityScheme parity;
    StructureSer l1_ser = structureSer(*l1_array, run.l1, parity,
                                       run.horizon,
                                       fit_per_mbit * mbits(l1_bits));

    // L2: shared, SEC-DED with x2 way-physical interleaving.
    CacheGeometry l2_geom{cfg.l2.sets, cfg.l2.ways, cfg.l2.lineBytes};
    double l2_bits =
        double(l2_geom.numLines()) * l2_geom.lineBits();
    auto l2_array =
        makeCacheArray(l2_geom, CacheInterleave::WayPhysical, 2);
    SecDedScheme secded;
    StructureSer l2_ser = structureSer(*l2_array, run.l2, secded,
                                       run.horizon,
                                       fit_per_mbit * mbits(l2_bits));

    // VGPR: per CU, parity with x4 inter-thread interleaving (the
    // paper's case-study winner).
    double vgpr_bits = double(cfg.regs.numContainers()) *
        cfg.regs.regBits;
    auto vgpr_array = makeRegFileArray(
        cfg.regs, RegInterleave::InterThread, 4);
    StructureSer vgpr_ser = structureSer(
        *vgpr_array, run.vgpr, parity, run.horizon,
        fit_per_mbit * mbits(vgpr_bits), /*due_shields_sdc=*/true);

    Table table({"structure", "copies", "Kbits", "raw FIT",
                 "SDC FIT", "DUE FIT"});
    auto add_row = [&](const std::string &name, unsigned copies,
                       double bits, const StructureSer &ser) {
        table.beginRow()
            .cell(name)
            .cell(std::uint64_t(copies))
            .cell(bits / 1024, 0)
            .cell(copies * fit_per_mbit * mbits(bits), 2)
            .cell(copies * ser.sdc, 4)
            .cell(copies * ser.due(), 4);
    };
    add_row("L1 (parity log-x2)", cfg.numCus, l1_bits, l1_ser);
    add_row("L2 (SEC-DED way-x2)", 1, l2_bits, l2_ser);
    add_row("VGPR (parity tx4)", cfg.numCus, vgpr_bits, vgpr_ser);

    double chip_sdc = cfg.numCus * (l1_ser.sdc + vgpr_ser.sdc) +
        l2_ser.sdc;
    double chip_due = cfg.numCus * (l1_ser.due() + vgpr_ser.due()) +
        l2_ser.due();
    table.beginRow()
        .cell("chip total")
        .cell("")
        .cell("")
        .cell("")
        .cell(chip_sdc, 4)
        .cell(chip_due, 4);
    table.printText(std::cout);

    std::cout << "\nPer-CU structures assume symmetric load "
                 "(round-robin wave dispatch); AVFs are\nmeasured on "
                 "CU0. The SER budget is dominated by whichever "
                 "structure pairs\nhigh residency with weak "
                 "protection - the analysis the paper's Eq. 3 "
                 "enables.\n";
    return 0;
}
