/**
 * @file
 * Tests for the supervisor's retry backoff: exponential growth,
 * deterministic jitter (same spec/shard/attempt always waits the
 * same time, so scheduling is reproducible), bounded jitter span,
 * and saturation of the exponent for absurd attempt counts.
 */

#include <gtest/gtest.h>

#include "serve/supervisor.hh"

namespace mbavf::serve
{
namespace
{

constexpr std::uint64_t kSpec = 0x9e3779b97f4a7c15ull;

TEST(BackoffTest, IsDeterministicPerSpecShardAttempt)
{
    for (unsigned attempt = 1; attempt <= 5; ++attempt) {
        EXPECT_EQ(backoffDelayMs(0.1, attempt, kSpec, 3),
                  backoffDelayMs(0.1, attempt, kSpec, 3));
    }
    // Different shards draw different jitter with high probability
    // somewhere in a small window of attempts.
    bool differs = false;
    for (unsigned attempt = 1; attempt <= 8 && !differs; ++attempt) {
        differs = backoffDelayMs(0.1, attempt, kSpec, 3) !=
                  backoffDelayMs(0.1, attempt, kSpec, 4);
    }
    EXPECT_TRUE(differs);
}

TEST(BackoffTest, GrowsExponentiallyWithBoundedJitter)
{
    for (unsigned attempt = 1; attempt <= 10; ++attempt) {
        const std::uint64_t base =
            static_cast<std::uint64_t>(100.0 * (1ull << (attempt - 1)));
        const std::uint64_t delay =
            backoffDelayMs(0.1, attempt, kSpec, 0);
        EXPECT_GE(delay, base);
        // Jitter adds at most a quarter of the deterministic delay.
        EXPECT_LE(delay, base + base / 4 + 1);
    }
}

TEST(BackoffTest, SaturatesForLargeAttemptCounts)
{
    // The exponent is clamped at 2^20; attempt 64 must not overflow
    // into a zero or tiny delay. (The jitter draw still depends on
    // the attempt number, so compare against the clamped base.)
    const std::uint64_t base = 100ull * (1ull << 20);
    const std::uint64_t huge = backoffDelayMs(0.1, 64, kSpec, 0);
    EXPECT_GE(huge, base);
    EXPECT_LE(huge, base + base / 4 + 1);
}

TEST(BackoffTest, ZeroBaseStaysUsable)
{
    // A zero base disables waiting but the jitter span (delay/4 + 1)
    // still keeps the result bounded.
    EXPECT_LE(backoffDelayMs(0.0, 1, kSpec, 0), 1u);
    EXPECT_LE(backoffDelayMs(-1.0, 3, kSpec, 0), 1u);
}

} // namespace
} // namespace mbavf::serve
