/**
 * @file
 * Tests for shard execution: a sweep shard yields the avf/ser
 * sections, and a campaign sharded into trial ranges merges to the
 * exact tally of the unsharded run — the invariant that makes any
 * sharding (and any kill/resume split) produce identical manifests.
 */

#include <gtest/gtest.h>

#include "serve/shard.hh"
#include "serve/spec.hh"

namespace mbavf::serve
{
namespace
{

JobConfig
campaignJob()
{
    JobConfig job;
    job.type = JobType::Campaign;
    job.workload = "histogram";
    job.trials = 40;
    job.seed = 5;
    return job;
}

ShardSpec
range(std::uint64_t first, std::uint64_t n)
{
    ShardSpec shard;
    shard.firstTrial = first;
    shard.numTrials = n;
    return shard;
}

TEST(ShardTest, SweepShardYieldsAvfAndSer)
{
    JobConfig job;
    job.type = JobType::Sweep;
    job.workload = "histogram";
    job.modes = 2;

    obs::JsonValue result;
    std::string error;
    ASSERT_TRUE(runShard(job, ShardSpec{}, result, error)) << error;
    EXPECT_NE(result.find("avf"), nullptr);
    EXPECT_NE(result.find("ser"), nullptr);
}

TEST(ShardTest, ShardedCampaignMergesToTheUnshardedTally)
{
    const JobConfig job = campaignJob();
    std::string error;

    obs::JsonValue whole;
    ASSERT_TRUE(runShard(job, range(0, 40), whole, error)) << error;

    obs::JsonValue first, second;
    ASSERT_TRUE(runShard(job, range(0, 25), first, error)) << error;
    ASSERT_TRUE(runShard(job, range(25, 15), second, error))
        << error;

    const obs::JsonValue merged_whole = mergeCampaignShards({whole});
    const obs::JsonValue merged_split =
        mergeCampaignShards({first, second});
    EXPECT_EQ(merged_whole.dump(), merged_split.dump());

    // Shard order must not matter either: counts are sums.
    const obs::JsonValue merged_swapped =
        mergeCampaignShards({second, first});
    EXPECT_EQ(merged_split.dump(), merged_swapped.dump());
}

TEST(ShardTest, BadConfigurationFailsWithAMessage)
{
    JobConfig job;
    job.type = JobType::Sweep;
    job.workload = "histogram";
    job.structure = "l9";
    obs::JsonValue result;
    std::string error;
    EXPECT_FALSE(runShard(job, ShardSpec{}, result, error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace mbavf::serve
