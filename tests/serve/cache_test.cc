/**
 * @file
 * Tests for the content-addressed result cache: publish + lookup
 * round-trip, miss/hit/reject accounting, lint-on-load rejection of
 * corrupt or colliding entries, key sensitivity to the shard
 * configuration, and the cache audit's stable finding codes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/journal_io.hh"
#include "serve/cache.hh"
#include "serve/spec.hh"

namespace mbavf::serve
{
namespace
{

std::string
tempDir(const char *name)
{
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

JobConfig
sampleJob()
{
    JobConfig job;
    job.type = JobType::Campaign;
    job.workload = "histogram";
    job.trials = 40;
    return job;
}

ShardSpec
sampleShard(std::uint64_t first = 0)
{
    ShardSpec shard;
    shard.firstTrial = first;
    shard.numTrials = 20;
    return shard;
}

obs::JsonValue
sampleResult()
{
    obs::JsonValue result = obs::JsonValue::object();
    result.set("type", "campaign");
    result.set("trials", obs::JsonValue(std::uint64_t(20)));
    return result;
}

TEST(ResultCacheTest, DisabledCacheAlwaysMisses)
{
    ResultCache cache("");
    EXPECT_FALSE(cache.enabled());
    obs::JsonValue result;
    std::string diagnostic;
    EXPECT_FALSE(cache.lookup(1, "x", result, diagnostic));
    std::string error;
    EXPECT_TRUE(cache.publish(1, "x", sampleResult(), error));
    EXPECT_EQ(cache.stats().published, 0u);
}

TEST(ResultCacheTest, PublishThenLookupRoundTrips)
{
    ResultCache cache(tempDir("cache_roundtrip"));
    const JobConfig job = sampleJob();
    const ShardSpec shard = sampleShard();
    std::uint64_t key = 0;
    std::string error;
    ASSERT_TRUE(ResultCache::shardKey(job, shard, key, error))
        << error;
    const std::string canonical = shard.canonical(job);

    obs::JsonValue result;
    std::string diagnostic;
    EXPECT_FALSE(cache.lookup(key, canonical, result, diagnostic));
    EXPECT_TRUE(diagnostic.empty());
    EXPECT_EQ(cache.stats().misses, 1u);

    ASSERT_TRUE(cache.publish(key, canonical, sampleResult(), error))
        << error;
    EXPECT_EQ(cache.stats().published, 1u);

    ASSERT_TRUE(cache.lookup(key, canonical, result, diagnostic))
        << diagnostic;
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(result.dump(), sampleResult().dump());
}

TEST(ResultCacheTest, KeyCoversTheShardRange)
{
    const JobConfig job = sampleJob();
    std::uint64_t a = 0, b = 0;
    std::string error;
    ASSERT_TRUE(ResultCache::shardKey(job, sampleShard(0), a, error));
    ASSERT_TRUE(
        ResultCache::shardKey(job, sampleShard(20), b, error));
    EXPECT_NE(a, b);

    JobConfig other = job;
    other.seed = 2;
    std::uint64_t c = 0;
    ASSERT_TRUE(
        ResultCache::shardKey(other, sampleShard(0), c, error));
    EXPECT_NE(a, c);
}

TEST(ResultCacheTest, CanonicalMismatchIsALoudMiss)
{
    // A 64-bit key collision (or a hand-edited entry) must never be
    // served as the wrong shard's result.
    ResultCache cache(tempDir("cache_collision"));
    const JobConfig job = sampleJob();
    const ShardSpec shard = sampleShard();
    std::uint64_t key = 0;
    std::string error;
    ASSERT_TRUE(ResultCache::shardKey(job, shard, key, error));
    ASSERT_TRUE(cache.publish(key, shard.canonical(job),
                              sampleResult(), error))
        << error;

    obs::JsonValue result;
    std::string diagnostic;
    EXPECT_FALSE(
        cache.lookup(key, "some other canonical", result,
                     diagnostic));
    EXPECT_NE(diagnostic.find("collision"), std::string::npos);
    EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(ResultCacheTest, CorruptEntryIsARejectedMiss)
{
    ResultCache cache(tempDir("cache_corrupt"));
    std::string error;
    ASSERT_TRUE(
        cache.publish(7, "canon", sampleResult(), error))
        << error;
    {
        std::ofstream os(cache.entryPath(7),
                         std::ios::binary | std::ios::trunc);
        os << "{ not json";
    }
    obs::JsonValue result;
    std::string diagnostic;
    EXPECT_FALSE(cache.lookup(7, "canon", result, diagnostic));
    EXPECT_FALSE(diagnostic.empty());
    EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(ResultCacheTest, LintFlagsBrokenEntries)
{
    CheckReport io;
    EXPECT_EQ(lintResultCache("/nonexistent/cache", io), 0u);
    EXPECT_TRUE(io.has("cache.io"));

    const std::string dir = tempDir("cache_lint");
    ResultCache cache(dir);
    std::string error;
    ASSERT_TRUE(cache.publish(1, "canon-a", sampleResult(), error));
    ASSERT_TRUE(cache.publish(2, "canon-b", sampleResult(), error));

    CheckReport clean;
    EXPECT_EQ(lintResultCache(dir, clean), 2u);
    EXPECT_EQ(clean.errorCount(), 0u);

    // An entry whose name disagrees with its recorded key.
    std::filesystem::rename(cache.entryPath(1),
                            dir + "/" + hex64(9) + ".json");
    // An entry that is not a manifest at all.
    {
        std::ofstream os(dir + "/deadbeef.json",
                         std::ios::binary | std::ios::trunc);
        os << "not json";
    }
    CheckReport findings;
    EXPECT_EQ(lintResultCache(dir, findings), 3u);
    EXPECT_TRUE(findings.has("cache.entry.name"));
    EXPECT_TRUE(findings.has("cache.entry.envelope"));
}

} // namespace
} // namespace mbavf::serve
