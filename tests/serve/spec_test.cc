/**
 * @file
 * Tests for the service job spec: parsing and validation, the
 * canonical identity (stable across JSON formatting), sharding of
 * campaigns into contiguous trial ranges, and the spec hash.
 */

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "serve/spec.hh"

namespace mbavf::serve
{
namespace
{

JobSpec
parseSpec(const std::string &text)
{
    obs::JsonValue doc;
    std::string error;
    EXPECT_TRUE(obs::JsonValue::parse(text, doc, error)) << error;
    JobSpec spec;
    EXPECT_TRUE(JobSpec::parse(doc, spec, error)) << error;
    return spec;
}

std::string
parseError(const std::string &text)
{
    obs::JsonValue doc;
    std::string error;
    EXPECT_TRUE(obs::JsonValue::parse(text, doc, error)) << error;
    JobSpec spec;
    EXPECT_FALSE(JobSpec::parse(doc, spec, error));
    return error;
}

TEST(ServeSpec, ParsesSweepAndCampaignJobs)
{
    const JobSpec spec = parseSpec(R"({"jobs": [
        {"type": "sweep", "workload": "histogram", "modes": 4},
        {"type": "campaign", "workload": "histogram",
         "trials": 60, "seed": 11, "kind": "memory",
         "shard_trials": 20}
    ]})");
    ASSERT_EQ(spec.jobs.size(), 2u);
    EXPECT_EQ(spec.jobs[0].type, JobType::Sweep);
    EXPECT_EQ(spec.jobs[0].modes, 4u);
    EXPECT_EQ(spec.jobs[1].type, JobType::Campaign);
    EXPECT_EQ(spec.jobs[1].trials, 60u);
    EXPECT_EQ(spec.jobs[1].shardTrials, 20u);
    EXPECT_EQ(spec.jobs[1].kind, "memory");
}

TEST(ServeSpec, RejectsMalformedJobs)
{
    EXPECT_NE(parseError(R"({"jobs": []})").find("no jobs"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"jobs": [{"type": "bogus"}]})")
                  .find("sweep"),
              std::string::npos);
    // A sweep needs exactly one input: workload or arena.
    EXPECT_NE(parseError(R"({"jobs": [{"type": "sweep"}]})")
                  .find("workload/arena"),
              std::string::npos);
    EXPECT_NE(
        parseError(R"({"jobs": [{"type": "sweep",
            "workload": "histogram", "arena": "a.bin"}]})")
            .find("workload/arena"),
        std::string::npos);
    EXPECT_NE(parseError(R"({"jobs": [{"type": "campaign"}]})")
                  .find("needs a workload"),
              std::string::npos);
    EXPECT_NE(
        parseError(R"({"jobs": [{"type": "campaign",
            "workload": "histogram", "fault": "wedge"}]})")
            .find("fault"),
        std::string::npos);
    EXPECT_NE(
        parseError(R"({"jobs": [{"type": "sweep",
            "workload": "histogram", "modes": "four"}]})")
            .find("modes"),
        std::string::npos);
}

TEST(ServeSpec, CanonicalIsStableAcrossFormatting)
{
    const JobSpec a = parseSpec(R"({"jobs": [
        {"type": "sweep", "workload": "histogram", "modes": 4}
    ]})");
    // Same job, different field order, explicit defaults.
    const JobSpec b = parseSpec(R"({ "jobs" : [ {
        "modes": 4, "scale": 1, "workload": "histogram",
        "type": "sweep", "scheme": "parity"} ] })");
    EXPECT_EQ(a.jobs[0].canonical(), b.jobs[0].canonical());

    std::uint64_t hash_a = 0, hash_b = 0;
    std::string error;
    ASSERT_TRUE(a.hash(hash_a, error)) << error;
    ASSERT_TRUE(b.hash(hash_b, error)) << error;
    EXPECT_EQ(hash_a, hash_b);
}

TEST(ServeSpec, CanonicalDistinguishesJobs)
{
    const JobSpec spec = parseSpec(R"({"jobs": [
        {"type": "sweep", "workload": "histogram", "modes": 4},
        {"type": "sweep", "workload": "histogram", "modes": 8}
    ]})");
    EXPECT_NE(spec.jobs[0].canonical(), spec.jobs[1].canonical());
}

TEST(ServeSpec, StyleDefaultsFollowStructure)
{
    const JobSpec spec = parseSpec(R"({"jobs": [
        {"type": "sweep", "workload": "histogram"},
        {"type": "sweep", "workload": "histogram",
         "structure": "vgpr"},
        {"type": "sweep", "workload": "histogram",
         "structure": "vgpr", "style": "intra"}
    ]})");
    EXPECT_EQ(spec.jobs[0].effectiveStyle(), "way");
    EXPECT_EQ(spec.jobs[1].effectiveStyle(), "inter");
    EXPECT_EQ(spec.jobs[2].effectiveStyle(), "intra");
}

TEST(ServeSpec, ShardsCampaignsIntoContiguousRanges)
{
    const JobSpec spec = parseSpec(R"({"jobs": [
        {"type": "sweep", "workload": "histogram", "modes": 4},
        {"type": "campaign", "workload": "histogram",
         "trials": 50, "shard_trials": 20}
    ]})");
    const std::vector<ShardSpec> shards = shardJobs(spec);
    ASSERT_EQ(shards.size(), 4u);
    EXPECT_EQ(shards[0].job, 0u);
    EXPECT_EQ(shards[0].numTrials, 0u);
    EXPECT_EQ(shards[1].firstTrial, 0u);
    EXPECT_EQ(shards[1].numTrials, 20u);
    EXPECT_EQ(shards[2].firstTrial, 20u);
    EXPECT_EQ(shards[2].numTrials, 20u);
    // The tail shard takes the remainder.
    EXPECT_EQ(shards[3].firstTrial, 40u);
    EXPECT_EQ(shards[3].numTrials, 10u);
}

TEST(ServeSpec, UnshardedCampaignIsOneShard)
{
    const JobSpec spec = parseSpec(R"({"jobs": [
        {"type": "campaign", "workload": "histogram",
         "trials": 50}
    ]})");
    const std::vector<ShardSpec> shards = shardJobs(spec);
    ASSERT_EQ(shards.size(), 1u);
    EXPECT_EQ(shards[0].firstTrial, 0u);
    EXPECT_EQ(shards[0].numTrials, 50u);
}

TEST(ServeSpec, ShardCanonicalCarriesTheTrialRange)
{
    const JobSpec spec = parseSpec(R"({"jobs": [
        {"type": "campaign", "workload": "histogram",
         "trials": 40, "shard_trials": 20}
    ]})");
    const std::vector<ShardSpec> shards = shardJobs(spec);
    ASSERT_EQ(shards.size(), 2u);
    const std::string first =
        shards[0].canonical(spec.jobs[0]);
    const std::string second =
        shards[1].canonical(spec.jobs[0]);
    EXPECT_NE(first, second);
    EXPECT_NE(first.find("first=0 n=20"), std::string::npos);
    EXPECT_NE(second.find("first=20 n=20"), std::string::npos);
}

} // namespace
} // namespace mbavf::serve
