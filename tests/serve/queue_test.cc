/**
 * @file
 * Tests for the service queue journal: sorted insert + lookup,
 * save/load round-trip, spec binding in the header, rejection of
 * malformed or inconsistent records, truncated-final-line drop, and
 * the lint's stable finding codes.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "serve/queue.hh"

namespace mbavf::serve
{
namespace
{

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
    ASSERT_TRUE(os.flush());
}

QueueJournal
sampleJournal()
{
    QueueJournal journal;
    journal.specHash = 0x0123456789abcdefull;
    journal.numShards = 5;

    QueueRecord done;
    done.shard = 3;
    done.state = ShardState::Done;
    done.source = "run";
    journal.add(done);

    QueueRecord cached;
    cached.shard = 0;
    cached.state = ShardState::Done;
    cached.source = "cache";
    journal.add(cached);

    QueueRecord bad;
    bad.shard = 2;
    bad.state = ShardState::Quarantined;
    bad.attempts = 3;
    bad.code = "serve.crash";
    journal.add(bad);
    return journal;
}

TEST(QueueJournalTest, AddKeepsRecordsSortedAndFindable)
{
    const QueueJournal journal = sampleJournal();
    ASSERT_EQ(journal.records.size(), 3u);
    EXPECT_EQ(journal.records[0].shard, 0u);
    EXPECT_EQ(journal.records[1].shard, 2u);
    EXPECT_EQ(journal.records[2].shard, 3u);

    ASSERT_NE(journal.find(2), nullptr);
    EXPECT_EQ(journal.find(2)->code, "serve.crash");
    EXPECT_EQ(journal.find(1), nullptr);
    EXPECT_EQ(journal.find(4), nullptr);
}

TEST(QueueJournalTest, SaveLoadRoundTrips)
{
    const std::string path = tempPath("queue_roundtrip.journal");
    const QueueJournal journal = sampleJournal();
    std::string error;
    ASSERT_TRUE(journal.save(path, error)) << error;

    QueueJournal loaded;
    ASSERT_TRUE(QueueJournal::load(path, loaded, error)) << error;
    EXPECT_EQ(loaded.specHash, journal.specHash);
    EXPECT_EQ(loaded.numShards, journal.numShards);
    ASSERT_EQ(loaded.records.size(), 3u);
    EXPECT_EQ(loaded.records[0].source, "cache");
    EXPECT_EQ(loaded.records[1].state, ShardState::Quarantined);
    EXPECT_EQ(loaded.records[1].attempts, 3u);
    EXPECT_EQ(loaded.records[1].code, "serve.crash");
    EXPECT_EQ(loaded.records[2].source, "run");
}

TEST(QueueJournalTest, TruncatedFinalLineIsDropped)
{
    // A kill -9 mid-write leaves a final line without its newline;
    // the loader must treat it as absent, never as a record.
    const std::string path = tempPath("queue_truncated.journal");
    writeText(path,
              "mbavf-queue v1 spec=0123456789abcdef shards=5\n"
              "0 done run\n"
              "2 quarantined 3 serve.cr");
    QueueJournal loaded;
    std::string error;
    ASSERT_TRUE(QueueJournal::load(path, loaded, error)) << error;
    ASSERT_EQ(loaded.records.size(), 1u);
    EXPECT_EQ(loaded.records[0].shard, 0u);
}

TEST(QueueJournalTest, RejectsBadInputs)
{
    const std::string path = tempPath("queue_bad.journal");
    QueueJournal loaded;
    std::string error;

    EXPECT_FALSE(
        QueueJournal::load("/nonexistent/q.journal", loaded, error));

    writeText(path, "not-a-queue v1 spec=0 shards=5\n");
    EXPECT_FALSE(QueueJournal::load(path, loaded, error));
    EXPECT_NE(error.find("header"), std::string::npos);

    // Spec hash must be exactly 16 lowercase hex digits.
    writeText(path, "mbavf-queue v1 spec=123 shards=5\n");
    EXPECT_FALSE(QueueJournal::load(path, loaded, error));

    writeText(path,
              "mbavf-queue v1 spec=0123456789abcdef shards=5\n"
              "0 done elsewhere\n");
    EXPECT_FALSE(QueueJournal::load(path, loaded, error));

    writeText(path,
              "mbavf-queue v1 spec=0123456789abcdef shards=5\n"
              "1 quarantined 0 serve.crash\n");
    EXPECT_FALSE(QueueJournal::load(path, loaded, error));

    writeText(path,
              "mbavf-queue v1 spec=0123456789abcdef shards=5\n"
              "9 done run\n");
    EXPECT_FALSE(QueueJournal::load(path, loaded, error));
    EXPECT_NE(error.find("out of range"), std::string::npos);

    writeText(path,
              "mbavf-queue v1 spec=0123456789abcdef shards=5\n"
              "1 done run\n"
              "1 done cache\n");
    EXPECT_FALSE(QueueJournal::load(path, loaded, error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(QueueJournalTest, LintReportsStableCodes)
{
    const std::string path = tempPath("queue_lint.journal");

    CheckReport io;
    lintQueueJournal("/nonexistent/q.journal", io);
    EXPECT_TRUE(io.has("serve.queue.io"));

    CheckReport header;
    writeText(path, "bogus\n");
    lintQueueJournal(path, header);
    EXPECT_TRUE(header.has("serve.queue.header"));

    // Record-level findings accumulate instead of aborting the lint.
    CheckReport findings;
    writeText(path,
              "mbavf-queue v1 spec=0123456789abcdef shards=5\n"
              "0 done run\n"
              "0 done cache\n"
              "7 done run\n"
              "1 exploded\n");
    lintQueueJournal(path, findings);
    EXPECT_TRUE(findings.has("serve.queue.dup"));
    EXPECT_TRUE(findings.has("serve.queue.range"));
    EXPECT_TRUE(findings.has("serve.queue.record"));
    EXPECT_EQ(findings.errorCount(), 3u);

    CheckReport clean;
    std::string error;
    ASSERT_TRUE(sampleJournal().save(path, error)) << error;
    lintQueueJournal(path, clean);
    EXPECT_EQ(clean.errorCount(), 0u);
}

} // namespace
} // namespace mbavf::serve
