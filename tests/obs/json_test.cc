/**
 * @file
 * JsonValue writer/parser tests: deterministic output, exact number
 * round-trips, strict error handling, and the truncation fuzz the
 * manifest loader's robustness rests on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "obs/json.hh"

using namespace mbavf;
using obs::JsonValue;

namespace
{

JsonValue
sampleDoc()
{
    JsonValue doc = JsonValue::object();
    doc.set("null", JsonValue());
    doc.set("true", JsonValue(true));
    doc.set("false", JsonValue(false));
    doc.set("uint", JsonValue(std::uint64_t(18446744073709551615u)));
    doc.set("int", JsonValue(std::int64_t(-42)));
    doc.set("double", JsonValue(0.1234567890123456789));
    doc.set("whole_double", JsonValue(3.0));
    doc.set("string", JsonValue("quote \" slash \\ tab \t end"));
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(1));
    arr.push(JsonValue("two"));
    arr.push(JsonValue::object());
    doc.set("array", std::move(arr));
    JsonValue nested = JsonValue::object();
    nested.set("k", JsonValue(2.5e-300));
    doc.set("object", std::move(nested));
    return doc;
}

JsonValue
parseOk(const std::string &text)
{
    JsonValue out;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(text, out, error)) << error;
    return out;
}

} // namespace

TEST(JsonTest, DumpParseRoundTripIsIdentity)
{
    JsonValue doc = sampleDoc();
    for (int indent : {0, 1, 4}) {
        std::string text = doc.dump(indent);
        JsonValue again = parseOk(text);
        EXPECT_TRUE(doc == again) << text;
        // The re-dump must be byte-identical: numbers keep their
        // lexical class and shortest representation.
        EXPECT_EQ(text, again.dump(indent));
    }
}

TEST(JsonTest, NumbersPreserveLexicalClass)
{
    JsonValue doc = parseOk("[1, -1, 1.0, 1e3, -0.5]");
    ASSERT_EQ(doc.items().size(), 5u);
    EXPECT_EQ(doc.items()[0].kind(), JsonValue::Kind::Uint);
    EXPECT_EQ(doc.items()[1].kind(), JsonValue::Kind::Int);
    EXPECT_EQ(doc.items()[2].kind(), JsonValue::Kind::Double);
    EXPECT_EQ(doc.items()[3].kind(), JsonValue::Kind::Double);
    EXPECT_EQ(doc.items()[4].kind(), JsonValue::Kind::Double);
    // A whole-valued double prints with ".0" so it re-parses as a
    // double, not an integer.
    EXPECT_EQ(JsonValue(3.0).dump(), "3.0");
    EXPECT_EQ(parseOk("3.0").dump(), "3.0");
}

TEST(JsonTest, ExtremeDoublesRoundTrip)
{
    for (double v : {std::numeric_limits<double>::max(),
                     std::numeric_limits<double>::min(),
                     std::numeric_limits<double>::denorm_min(),
                     -1.7976931348623157e308, 0.0}) {
        JsonValue orig(v);
        JsonValue again = parseOk(orig.dump());
        EXPECT_EQ(orig.dump(), again.dump()) << v;
    }
}

TEST(JsonTest, StringEscapes)
{
    JsonValue doc =
        parseOk("\"a\\n\\t\\\"\\\\\\u0041\\u00e9\\u20ac\"");
    EXPECT_EQ(doc.asString(), "a\n\t\"\\A\xc3\xa9\xe2\x82\xac");
    // Control characters dump escaped and survive a round trip.
    JsonValue ctl(std::string("\x01\x1f"));
    EXPECT_EQ(parseOk(ctl.dump()).asString(), ctl.asString());
}

TEST(JsonTest, ObjectOrderPreservedAndEqualityUnordered)
{
    JsonValue a = parseOk("{\"z\": 1, \"a\": 2}");
    EXPECT_EQ(a.dump(), "{\"z\":1,\"a\":2}");
    JsonValue b = parseOk("{\"a\": 2, \"z\": 1}");
    EXPECT_TRUE(a == b);
    JsonValue c = parseOk("{\"a\": 2, \"z\": 3}");
    EXPECT_FALSE(a == c);
}

TEST(JsonTest, CrossClassNumericEquality)
{
    EXPECT_TRUE(parseOk("1") == parseOk("1.0"));
    EXPECT_FALSE(parseOk("1") == parseOk("2"));
    EXPECT_TRUE(parseOk("-3") == parseOk("-3.0"));
}

TEST(JsonTest, RejectsMalformed)
{
    const char *bad[] = {
        "",        " ",       "{",        "}",       "[1,]",
        "{\"a\"}", "{\"a\":}", "01",      "+1",      "1.",
        ".5",      "1e",      "tru",      "nul",     "\"\\x\"",
        "\"unterminated", "[1] 2", "{\"a\": 1,}", "\"\\u12\"",
        "nan",     "inf",
    };
    for (const char *text : bad) {
        JsonValue out;
        std::string error;
        EXPECT_FALSE(JsonValue::parse(text, out, error))
            << "accepted: " << text;
        EXPECT_FALSE(error.empty());
    }
}

TEST(JsonTest, ErrorsCarryByteOffsets)
{
    JsonValue out;
    std::string error;
    ASSERT_FALSE(JsonValue::parse("[1, 2, x]", out, error));
    EXPECT_NE(error.find("7"), std::string::npos) << error;
}

TEST(JsonTest, DepthLimit)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    JsonValue out;
    std::string error;
    EXPECT_FALSE(JsonValue::parse(deep, out, error));

    std::string ok(50, '[');
    ok += std::string(50, ']');
    EXPECT_TRUE(JsonValue::parse(ok, out, error)) << error;
}

/** Every proper prefix of a valid document must fail to parse. */
TEST(JsonTest, TruncationAtEveryByteFails)
{
    const std::string text = sampleDoc().dump(1);
    ASSERT_GT(text.size(), 100u);
    for (std::size_t len = 0; len < text.size(); ++len) {
        JsonValue out;
        std::string error;
        EXPECT_FALSE(JsonValue::parse(
            std::string_view(text).substr(0, len), out, error))
            << "prefix of length " << len << " parsed: "
            << text.substr(0, len);
    }
    JsonValue out;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(text, out, error)) << error;
}

/**
 * Same fuzz on the compact form, whose prefixes exercise different
 * boundaries (no whitespace between tokens).
 */
TEST(JsonTest, CompactTruncationAtEveryByteFails)
{
    const std::string text = sampleDoc().dump(0);
    for (std::size_t len = 0; len < text.size(); ++len) {
        JsonValue out;
        std::string error;
        EXPECT_FALSE(JsonValue::parse(
            std::string_view(text).substr(0, len), out, error));
    }
}
