/**
 * @file
 * MetricsRegistry tests: handle semantics, the disabled-flag no-op
 * contract, and the determinism claim the manifest diff depends on —
 * a snapshot is bit-identical whether increments came from one
 * thread or N racing pool workers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "obs/metrics.hh"

using namespace mbavf;

namespace
{

/** Enable metrics for one test and restore the default after. */
struct MetricsOn
{
    MetricsOn() { obs::setMetricsEnabled(true); }
    ~MetricsOn()
    {
        obs::setMetricsEnabled(false);
        obs::MetricsRegistry::global().reset();
    }
};

std::uint64_t
counterValue(const obs::MetricsSnapshot &snap, const std::string &name)
{
    for (const auto &[n, v] : snap.counters)
        if (n == name)
            return v;
    ADD_FAILURE() << "no counter " << name;
    return 0;
}

} // namespace

TEST(MetricsTest, CounterAccumulates)
{
    MetricsOn on;
    obs::Counter c =
        obs::MetricsRegistry::global().counter("test.counter");
    c.add();
    c.add(41);
    auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "test.counter"), 42u);
}

TEST(MetricsTest, DisabledIsNoOp)
{
    obs::setMetricsEnabled(false);
    obs::Counter c =
        obs::MetricsRegistry::global().counter("test.disabled");
    obs::Gauge g =
        obs::MetricsRegistry::global().gauge("test.disabled_gauge");
    obs::Histogram h = obs::MetricsRegistry::global().histogram(
        "test.disabled_hist", {10});
    c.add(100);
    g.set(7);
    h.observe(3);

    MetricsOn on; // enables, but nothing was recorded while disabled
    auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "test.disabled"), 0u);
    for (const auto &[n, v] : snap.gauges) {
        if (n == "test.disabled_gauge") {
            EXPECT_EQ(v, 0);
        }
    }
    for (const auto &hd : snap.histograms) {
        if (hd.name == "test.disabled_hist") {
            EXPECT_EQ(hd.total(), 0u);
        }
    }
}

TEST(MetricsTest, DefaultConstructedHandlesAreSafe)
{
    MetricsOn on;
    obs::Counter c;
    obs::Gauge g;
    obs::Histogram h;
    c.add();
    g.set(1);
    h.observe(1);
    // No crash is the assertion.
}

TEST(MetricsTest, RegistrationDedupes)
{
    MetricsOn on;
    obs::Counter a =
        obs::MetricsRegistry::global().counter("test.dedup");
    obs::Counter b =
        obs::MetricsRegistry::global().counter("test.dedup");
    a.add(1);
    b.add(2);
    auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "test.dedup"), 3u);
    std::size_t seen = 0;
    for (const auto &[n, v] : snap.counters)
        if (n == "test.dedup")
            ++seen;
    EXPECT_EQ(seen, 1u);
}

TEST(MetricsTest, HistogramBucketsByUpperBound)
{
    MetricsOn on;
    obs::Histogram h = obs::MetricsRegistry::global().histogram(
        "test.hist", {1, 8, 64});
    // bucket 0: v <= 1, bucket 1: v <= 8, bucket 2: v <= 64,
    // bucket 3: overflow.
    for (std::uint64_t v : {0u, 1u, 2u, 8u, 9u, 64u, 65u, 1000u})
        h.observe(v);
    auto snap = obs::MetricsRegistry::global().snapshot();
    bool found = false;
    for (const auto &hd : snap.histograms) {
        if (hd.name != "test.hist")
            continue;
        found = true;
        ASSERT_EQ(hd.bounds, (std::vector<std::uint64_t>{1, 8, 64}));
        ASSERT_EQ(hd.counts.size(), 4u);
        EXPECT_EQ(hd.counts[0], 2u); // 0, 1
        EXPECT_EQ(hd.counts[1], 2u); // 2, 8
        EXPECT_EQ(hd.counts[2], 2u); // 9, 64
        EXPECT_EQ(hd.counts[3], 2u); // 65, 1000
        EXPECT_EQ(hd.total(), 8u);
    }
    EXPECT_TRUE(found);
}

TEST(MetricsTest, SnapshotSortedByName)
{
    MetricsOn on;
    obs::MetricsRegistry::global().counter("test.zzz").add();
    obs::MetricsRegistry::global().counter("test.aaa").add();
    obs::MetricsRegistry::global().counter("test.mmm").add();
    auto snap = obs::MetricsRegistry::global().snapshot();
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
}

TEST(MetricsTest, ResetZeroesButKeepsHandlesValid)
{
    MetricsOn on;
    obs::Counter c =
        obs::MetricsRegistry::global().counter("test.reset");
    c.add(5);
    obs::MetricsRegistry::global().reset();
    auto snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "test.reset"), 0u);
    c.add(3); // handle still usable after reset
    snap = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "test.reset"), 3u);
}

/**
 * The determinism contract: the exported JSON is byte-identical
 * whether the same logical increments ran on 1 thread or raced
 * across a pool of N — sums are commutative and the snapshot is
 * name-sorted.
 */
TEST(MetricsTest, SnapshotBitIdenticalAcrossThreadCounts)
{
    constexpr std::size_t tasks = 64;
    constexpr std::uint64_t perTask = 1000;

    auto run = [&](unsigned threads) {
        obs::MetricsRegistry::global().reset();
        setParallelThreads(threads);
        obs::Counter c =
            obs::MetricsRegistry::global().counter("test.parallel");
        obs::Histogram h =
            obs::MetricsRegistry::global().histogram(
                "test.parallel_hist", {4, 16, 256});
        runTasks(tasks, [&](std::size_t t) {
            for (std::uint64_t i = 0; i < perTask; ++i) {
                c.add();
                h.observe((t * perTask + i) % 512);
            }
        });
        return obs::MetricsRegistry::global().snapshot().json().dump(
            1);
    };

    MetricsOn on;
    const std::string serial = run(1);
    for (unsigned threads : {2u, 4u, 8u})
        EXPECT_EQ(serial, run(threads)) << threads << " threads";
    setParallelThreads(1);

    // Sanity: the totals are what the loop wrote.
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::JsonValue::parse(serial, doc, error)) << error;
    const obs::JsonValue *counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    const obs::JsonValue *total = counters->find("test.parallel");
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->asUint(), tasks * perTask);
}
