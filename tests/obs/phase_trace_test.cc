/**
 * @file
 * Phase timer and Chrome trace collector tests: enable-flag gating,
 * phase accumulation, and the trace export format Perfetto loads.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"

using namespace mbavf;

namespace
{

struct ObsClean
{
    ObsClean() { reset(); }
    ~ObsClean() { reset(); }

    static void
    reset()
    {
        obs::setTimingEnabled(false);
        obs::setTracingEnabled(false);
        obs::resetPhases();
        obs::resetTrace();
    }
};

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

} // namespace

TEST(PhaseTest, DisabledRecordsNothing)
{
    ObsClean clean;
    {
        obs::ObsTimer timer("test.timer");
        obs::ObsPhase phase("test.phase");
    }
    EXPECT_TRUE(obs::phaseStats().empty());
    EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST(PhaseTest, TimerAccumulatesUnderName)
{
    ObsClean clean;
    obs::setTimingEnabled(true);
    for (int i = 0; i < 3; ++i)
        obs::ObsTimer timer("test.timer");
    auto stats = obs::phaseStats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].first, "test.timer");
    EXPECT_EQ(stats[0].second.count, 3u);
    EXPECT_GE(stats[0].second.seconds, 0.0);
}

TEST(PhaseTest, StatsSortedByName)
{
    ObsClean clean;
    obs::setTimingEnabled(true);
    obs::recordPhase("zz.last", 0.1);
    obs::recordPhase("aa.first", 0.2);
    obs::recordPhase("mm.mid", 0.3);
    auto stats = obs::phaseStats();
    ASSERT_EQ(stats.size(), 3u);
    EXPECT_EQ(stats[0].first, "aa.first");
    EXPECT_EQ(stats[1].first, "mm.mid");
    EXPECT_EQ(stats[2].first, "zz.last");
}

TEST(PhaseTest, ObsPhaseFeedsBothSinks)
{
    ObsClean clean;
    obs::setTimingEnabled(true);
    obs::setTracingEnabled(true);
    {
        obs::ObsPhase phase("test.both");
    }
    auto stats = obs::phaseStats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].first, "test.both");
    EXPECT_EQ(obs::traceEventCount(), 1u);
}

TEST(PhaseTest, ResetClearsTable)
{
    ObsClean clean;
    obs::setTimingEnabled(true);
    obs::recordPhase("test.reset", 1.0);
    ASSERT_FALSE(obs::phaseStats().empty());
    obs::resetPhases();
    EXPECT_TRUE(obs::phaseStats().empty());
}

TEST(TraceTest, ScopeRecordsWhenEnabled)
{
    ObsClean clean;
    obs::setTracingEnabled(true);
    {
        obs::TraceScope a("test.a");
        obs::TraceScope b("test.b");
    }
    EXPECT_EQ(obs::traceEventCount(), 2u);
    obs::resetTrace();
    EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST(TraceTest, WriteChromeTraceIsLoadableJson)
{
    ObsClean clean;
    obs::setTracingEnabled(true);
    {
        obs::TraceScope outer("test.outer");
        obs::TraceScope inner("test.inner");
    }
    const std::string path = tempPath("trace_test.json");
    std::string error;
    ASSERT_TRUE(obs::writeChromeTrace(path, error)) << error;

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    obs::JsonValue doc;
    ASSERT_TRUE(obs::JsonValue::parse(buf.str(), doc, error)) << error;

    const obs::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::size_t slices = 0, meta = 0;
    for (const obs::JsonValue &ev : events->items()) {
        const obs::JsonValue *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->asString() == "X") {
            ++slices;
            EXPECT_NE(ev.find("name"), nullptr);
            EXPECT_NE(ev.find("ts"), nullptr);
            EXPECT_NE(ev.find("dur"), nullptr);
            EXPECT_NE(ev.find("pid"), nullptr);
            EXPECT_NE(ev.find("tid"), nullptr);
            const obs::JsonValue *dur = ev.find("dur");
            EXPECT_GE(dur->asDouble(), 0.0);
        } else if (ph->asString() == "M") {
            ++meta;
            const obs::JsonValue *name = ev.find("name");
            ASSERT_NE(name, nullptr);
            EXPECT_EQ(name->asString(), "thread_name");
        }
    }
    EXPECT_EQ(slices, 2u);
    EXPECT_GE(meta, 1u); // one thread_name per track used
    std::remove(path.c_str());
}

TEST(TraceTest, WriteFailsOnBadPath)
{
    ObsClean clean;
    std::string error;
    EXPECT_FALSE(obs::writeChromeTrace(
        "/nonexistent-dir-xyzzy/trace.json", error));
    EXPECT_FALSE(error.empty());
}
