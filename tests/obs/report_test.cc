/**
 * @file
 * diffManifests / mergeManifests tests: the drift-vs-structure
 * split, rate objects compared by Wilson-interval overlap, the
 * phases/env perf carve-out, and structure-only mode CI uses
 * against golden manifests.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "obs/report.hh"

using namespace mbavf;
using obs::JsonValue;

namespace
{

JsonValue
parse(const std::string &text)
{
    JsonValue out;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(text, out, error)) << error;
    return out;
}

/** A minimal manifest-shaped document for diffing. */
JsonValue
baseManifest()
{
    return parse(R"({
        "schema": "mbavf-manifest",
        "version": 1,
        "tool": "test",
        "run": {"workload": "histogram", "seed": 7, "avf": 0.125},
        "campaign": {
            "sdc": {"count": 10, "rate": 0.1,
                    "ci_low": 0.05, "ci_high": 0.18}
        },
        "phases": [{"name": "p", "seconds": 1.0, "count": 1}],
        "env": {"threads": 1}
    })");
}

std::string
joinNotes(const obs::DiffResult &result)
{
    std::string all;
    for (const std::string &note : result.notes)
        all += note + "\n";
    return all;
}

} // namespace

TEST(ReportTest, IdenticalManifestsAreClean)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    obs::DiffResult result = obs::diffManifests(a, b, {});
    EXPECT_TRUE(result.clean()) << joinNotes(result);
    EXPECT_TRUE(result.notes.empty());
}

TEST(ReportTest, ValueDriftIsReported)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("run")->set("seed", JsonValue(99));
    obs::DiffResult result = obs::diffManifests(a, b, {});
    EXPECT_TRUE(result.drifted);
    EXPECT_FALSE(result.structuralMismatch);
    EXPECT_NE(joinNotes(result).find("seed"), std::string::npos)
        << joinNotes(result);
}

TEST(ReportTest, AvfTolAbsorbsSmallDrift)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("run")->set("avf", JsonValue(0.1250001));

    obs::DiffResult exact = obs::diffManifests(a, b, {});
    EXPECT_TRUE(exact.drifted);

    obs::DiffOptions loose;
    loose.avfTol = 1e-3;
    EXPECT_TRUE(obs::diffManifests(a, b, loose).clean());

    // But the tolerance is relative, so a big move still drifts.
    b.find("run")->set("avf", JsonValue(0.5));
    EXPECT_TRUE(obs::diffManifests(a, b, loose).drifted);
}

TEST(ReportTest, MissingKeyIsStructural)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("run")->set("extra", JsonValue(1));
    obs::DiffResult result = obs::diffManifests(a, b, {});
    EXPECT_TRUE(result.structuralMismatch);
}

TEST(ReportTest, TypeChangeIsStructural)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("run")->set("workload", JsonValue(3));
    obs::DiffResult result = obs::diffManifests(a, b, {});
    EXPECT_TRUE(result.structuralMismatch);
}

TEST(ReportTest, OverlappingRateCIsAreClean)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    // Different point estimate, overlapping intervals: statistically
    // compatible resamples, not drift.
    b.find("campaign")->set("sdc", parse(
        R"({"count": 14, "rate": 0.14,
            "ci_low": 0.08, "ci_high": 0.23})"));
    obs::DiffResult result = obs::diffManifests(a, b, {});
    EXPECT_TRUE(result.clean()) << joinNotes(result);
}

TEST(ReportTest, DisjointRateCIsDrift)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("campaign")->set("sdc", parse(
        R"({"count": 40, "rate": 0.4,
            "ci_low": 0.3, "ci_high": 0.51})"));
    obs::DiffResult result = obs::diffManifests(a, b, {});
    EXPECT_TRUE(result.drifted);
    EXPECT_FALSE(result.structuralMismatch);
}

TEST(ReportTest, ZeroWeightRateIsCompatibleWithAnyInterval)
{
    // A skipped stratum emits its rate object as exactly-0 with
    // weight 0 — a placeholder, not a measurement. It must be
    // compatible with any interval the other side measured, in both
    // directions, or a stratification change would read as rate
    // drift.
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    a.find("campaign")->set("sdc", parse(
        R"({"rate": 0.0, "ci_low": 0.0, "ci_high": 0.0,
            "weight": 0.0})"));
    b.find("campaign")->set("sdc", parse(
        R"({"rate": 0.4, "ci_low": 0.3, "ci_high": 0.51,
            "weight": 0.0})"));
    obs::DiffResult result = obs::diffManifests(a, b, {});
    EXPECT_TRUE(result.clean()) << joinNotes(result);
    result = obs::diffManifests(b, a, {});
    EXPECT_TRUE(result.clean()) << joinNotes(result);
}

TEST(ReportTest, WeightedZeroRateStillDrifts)
{
    // Weight > 0 means the rate was measured; exact 0 against a
    // disjoint interval is real drift, not a skipped-stratum
    // placeholder.
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    a.find("campaign")->set("sdc", parse(
        R"({"rate": 0.0, "ci_low": 0.0, "ci_high": 0.01,
            "weight": 0.25})"));
    b.find("campaign")->set("sdc", parse(
        R"({"rate": 0.4, "ci_low": 0.3, "ci_high": 0.51,
            "weight": 0.25})"));
    obs::DiffResult result = obs::diffManifests(a, b, {});
    EXPECT_TRUE(result.drifted);
}

TEST(ReportTest, PhasesAndEnvIgnoredByDefault)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("phases")->items()[0].set("seconds", JsonValue(50.0));
    b.find("env")->set("threads", JsonValue(8));
    obs::DiffResult result = obs::diffManifests(a, b, {});
    EXPECT_TRUE(result.clean()) << joinNotes(result);
}

TEST(ReportTest, PerfTolFlagsPhaseDrift)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("phases")->items()[0].set("seconds", JsonValue(50.0));

    obs::DiffOptions perf;
    perf.perfTol = 0.5; // allow 50% relative wobble
    obs::DiffResult result = obs::diffManifests(a, b, perf);
    EXPECT_TRUE(result.drifted) << joinNotes(result);

    // Within tolerance: 1.0 vs 1.2 at 50%.
    b.find("phases")->items()[0].set("seconds", JsonValue(1.2));
    EXPECT_TRUE(obs::diffManifests(a, b, perf).clean());
}

TEST(ReportTest, StructureOnlyIgnoresValues)
{
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("run")->set("seed", JsonValue(99));
    b.find("run")->set("avf", JsonValue(0.9));
    b.find("campaign")->set("sdc", parse(
        R"({"count": 40, "rate": 0.4,
            "ci_low": 0.3, "ci_high": 0.51})"));
    obs::DiffOptions shape;
    shape.structureOnly = true;
    obs::DiffResult result = obs::diffManifests(a, b, shape);
    EXPECT_TRUE(result.clean()) << joinNotes(result);
}

TEST(ReportTest, StructureOnlyCatchesShapeChanges)
{
    obs::DiffOptions shape;
    shape.structureOnly = true;

    JsonValue a = baseManifest();
    JsonValue missing = baseManifest();
    // Removing a key: rebuild "run" without "avf".
    missing.set("run", parse(
        R"({"workload": "histogram", "seed": 7})"));
    EXPECT_TRUE(
        obs::diffManifests(a, missing, shape).structuralMismatch);

    JsonValue retyped = baseManifest();
    retyped.find("run")->set("seed", JsonValue("seven"));
    EXPECT_TRUE(
        obs::diffManifests(a, retyped, shape).structuralMismatch);
}

TEST(ReportTest, StructureOnlyComposesWithPerfTol)
{
    // CI's main-branch gate: schema guard plus a perf floor in one
    // diff. Values outside /phases stay unchecked, but a phase that
    // slows beyond the tolerance still fails.
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("run")->set("avf", JsonValue(0.9));
    b.find("phases")->items()[0].set("seconds", JsonValue(50.0));

    obs::DiffOptions gate;
    gate.structureOnly = true;
    gate.perfTol = 0.5;
    obs::DiffResult result = obs::diffManifests(a, b, gate);
    EXPECT_TRUE(result.drifted) << joinNotes(result);
    EXPECT_FALSE(result.structuralMismatch) << joinNotes(result);
    EXPECT_NE(joinNotes(result).find("perf:"), std::string::npos)
        << joinNotes(result);

    // Within tolerance the combined gate is clean again.
    b.find("phases")->items()[0].set("seconds", JsonValue(1.2));
    EXPECT_TRUE(obs::diffManifests(a, b, gate).clean());
}

TEST(ReportTest, MergeSortsByName)
{
    auto distinct = [](int seed) {
        JsonValue m = baseManifest();
        m.find("run")->set("seed", JsonValue(seed));
        return m;
    };
    std::vector<std::pair<std::string, JsonValue>> inputs;
    inputs.emplace_back("zeta", distinct(1));
    inputs.emplace_back("alpha", distinct(2));
    inputs.emplace_back("mid", distinct(3));
    JsonValue traj = obs::mergeManifests(std::move(inputs));

    const JsonValue *schema = traj.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), "mbavf-trajectory");

    const JsonValue *entries = traj.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->items().size(), 3u);
    EXPECT_EQ(entries->items()[0].find("name")->asString(), "alpha");
    EXPECT_EQ(entries->items()[1].find("name")->asString(), "mid");
    EXPECT_EQ(entries->items()[2].find("name")->asString(), "zeta");
    EXPECT_NE(entries->items()[0].find("manifest"), nullptr);
}

TEST(ReportTest, MergeDropsDuplicateRuns)
{
    // Two copies of the same run differing only in phases/env (the
    // volatile sections) are one run measured twice: the trajectory
    // keeps the lexically-first name and reports the other.
    JsonValue original = baseManifest();
    JsonValue recopied = baseManifest();
    recopied.find("phases")->items()[0].set("seconds",
                                            JsonValue(9.0));
    recopied.find("env")->set("threads", JsonValue(8));

    std::vector<std::pair<std::string, JsonValue>> inputs;
    inputs.emplace_back("BENCH_b_copy", std::move(recopied));
    inputs.emplace_back("BENCH_a", std::move(original));
    std::vector<std::string> dropped;
    JsonValue traj = obs::mergeManifests(std::move(inputs), &dropped);

    const JsonValue *entries = traj.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->items().size(), 1u);
    EXPECT_EQ(entries->items()[0].find("name")->asString(),
              "BENCH_a");
    ASSERT_EQ(dropped.size(), 1u);
    EXPECT_NE(dropped[0].find("kept BENCH_a"), std::string::npos)
        << dropped[0];
    EXPECT_NE(dropped[0].find("dropped BENCH_b_copy"),
              std::string::npos)
        << dropped[0];
}

TEST(ReportTest, MergeKeepsDistinctRuns)
{
    // A genuinely different result (any deterministic field) is not
    // a duplicate, however similar the rest looks.
    JsonValue a = baseManifest();
    JsonValue b = baseManifest();
    b.find("run")->set("avf", JsonValue(0.25));

    std::vector<std::pair<std::string, JsonValue>> inputs;
    inputs.emplace_back("BENCH_a", std::move(a));
    inputs.emplace_back("BENCH_b", std::move(b));
    std::vector<std::string> dropped;
    JsonValue traj = obs::mergeManifests(std::move(inputs), &dropped);

    ASSERT_EQ(traj.find("entries")->items().size(), 2u);
    EXPECT_TRUE(dropped.empty());
}

TEST(ReportTest, PrintManifestMentionsSections)
{
    std::ostringstream os;
    obs::printManifest(baseManifest(), os);
    const std::string text = os.str();
    EXPECT_NE(text.find("manifest from test"), std::string::npos)
        << text;
    EXPECT_NE(text.find("run"), std::string::npos);
    EXPECT_NE(text.find("histogram"), std::string::npos);
}
