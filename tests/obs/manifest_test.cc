/**
 * @file
 * Manifest tests: envelope construction, write→load round trip, the
 * loader's envelope validation, and the truncation-at-every-byte
 * fuzz — a partially written or cut-off manifest file must never
 * load successfully.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"

using namespace mbavf;

namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    out << text;
}

} // namespace

TEST(ManifestTest, EnvelopeIsPopulated)
{
    obs::Manifest manifest("test-tool");
    const obs::JsonValue &root = manifest.root();

    const obs::JsonValue *schema = root.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), obs::manifestSchema);

    const obs::JsonValue *version = root.find("version");
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->asUint(), obs::manifestVersion);

    const obs::JsonValue *tool = root.find("tool");
    ASSERT_NE(tool, nullptr);
    EXPECT_EQ(tool->asString(), "test-tool");

    const obs::JsonValue *build = root.find("build");
    ASSERT_NE(build, nullptr);
    for (const char *key :
         {"git", "compiler", "build_type", "flags"}) {
        EXPECT_NE(build->find(key), nullptr) << key;
    }
}

TEST(ManifestTest, WriteLoadRoundTrip)
{
    obs::Manifest manifest("test-tool");
    obs::JsonValue run = obs::JsonValue::object();
    run.set("workload", obs::JsonValue("histogram"));
    run.set("seed", obs::JsonValue(std::uint64_t(7)));
    run.set("avf", obs::JsonValue(0.123456789012345));
    manifest.set("run", std::move(run));

    const std::string path = tempPath("manifest_rt.json");
    std::string error;
    ASSERT_TRUE(manifest.write(path, error)) << error;

    obs::JsonValue loaded;
    ASSERT_TRUE(obs::Manifest::load(path, loaded, error)) << error;
    EXPECT_TRUE(loaded == manifest.root());

    // Pretty-printed with a trailing newline.
    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');

    // The temporary used for atomic replacement must be gone.
    std::size_t leftovers = 0;
    for (const auto &entry : std::filesystem::directory_iterator(
             testing::TempDir())) {
        const std::string name = entry.path().filename().string();
        if (name.find("manifest_rt") != std::string::npos &&
            name != "manifest_rt.json") {
            ++leftovers;
        }
    }
    EXPECT_EQ(leftovers, 0u);
    std::remove(path.c_str());
}

TEST(ManifestTest, WriteReplacesExistingFile)
{
    const std::string path = tempPath("manifest_replace.json");
    spit(path, "old garbage");
    obs::Manifest manifest("test-tool");
    std::string error;
    ASSERT_TRUE(manifest.write(path, error)) << error;
    obs::JsonValue loaded;
    EXPECT_TRUE(obs::Manifest::load(path, loaded, error)) << error;
    std::remove(path.c_str());
}

TEST(ManifestTest, LoadRejectsMissingFile)
{
    obs::JsonValue out;
    std::string error;
    EXPECT_FALSE(obs::Manifest::load(
        tempPath("no_such_manifest.json"), out, error));
    EXPECT_FALSE(error.empty());
}

TEST(ManifestTest, LoadRejectsBadSchema)
{
    const std::string path = tempPath("manifest_bad_schema.json");
    spit(path, "{\"schema\": \"not-a-manifest\", \"version\": 1}");
    obs::JsonValue out;
    std::string error;
    EXPECT_FALSE(obs::Manifest::load(path, out, error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(ManifestTest, LoadRejectsFutureVersion)
{
    const std::string path = tempPath("manifest_bad_version.json");
    spit(path,
         "{\"schema\": \"mbavf-manifest\", \"version\": 999}");
    obs::JsonValue out;
    std::string error;
    EXPECT_FALSE(obs::Manifest::load(path, out, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(ManifestTest, LoadRejectsNonObject)
{
    const std::string path = tempPath("manifest_array.json");
    spit(path, "[1, 2, 3]");
    obs::JsonValue out;
    std::string error;
    EXPECT_FALSE(obs::Manifest::load(path, out, error));
    std::remove(path.c_str());
}

/**
 * Truncation fuzz: write a real manifest, then for every proper
 * prefix length rewrite the file cut off at that byte — load must
 * fail at every length. This is the guarantee that a consumer
 * racing a non-atomic writer (or reading a disk-full casualty)
 * can't mistake a fragment for a run record.
 */
TEST(ManifestTest, TruncationAtEveryByteFailsToLoad)
{
    obs::Manifest manifest("test-tool");
    obs::JsonValue run = obs::JsonValue::object();
    run.set("workload", obs::JsonValue("histogram"));
    run.set("trials", obs::JsonValue(std::uint64_t(48)));
    manifest.set("run", std::move(run));

    const std::string path = tempPath("manifest_fuzz.json");
    std::string error;
    ASSERT_TRUE(manifest.write(path, error)) << error;
    const std::string text = slurp(path);
    ASSERT_GT(text.size(), 100u);

    // The last byte is the trailing newline; the prefix without it
    // is still a complete document, so the fuzz stops one short.
    ASSERT_EQ(text.back(), '\n');
    const std::string cut = tempPath("manifest_fuzz_cut.json");
    for (std::size_t len = 0; len + 1 < text.size(); ++len) {
        spit(cut, text.substr(0, len));
        obs::JsonValue out;
        std::string err;
        EXPECT_FALSE(obs::Manifest::load(cut, out, err))
            << "prefix of length " << len << " loaded";
    }
    obs::JsonValue out;
    ASSERT_TRUE(obs::Manifest::load(path, out, error)) << error;
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(ManifestTest, CaptureObservationsAndEnvSections)
{
    obs::setMetricsEnabled(true);
    obs::setTimingEnabled(true);
    obs::MetricsRegistry::global().reset();
    obs::resetPhases();

    obs::MetricsRegistry::global().counter("test.manifest").add(9);
    obs::recordPhase("test.capture", 0.25);

    obs::Manifest manifest("test-tool");
    manifest.captureObservations();
    obs::JsonValue extra = obs::JsonValue::object();
    extra.set("note", obs::JsonValue("hello"));
    manifest.setEnv(std::move(extra));

    obs::setMetricsEnabled(false);
    obs::setTimingEnabled(false);
    obs::MetricsRegistry::global().reset();
    obs::resetPhases();

    const obs::JsonValue &root = manifest.root();
    const obs::JsonValue *phases = root.find("phases");
    ASSERT_NE(phases, nullptr);
    ASSERT_TRUE(phases->isArray());
    bool saw_phase = false;
    for (const obs::JsonValue &p : phases->items()) {
        const obs::JsonValue *name = p.find("name");
        ASSERT_NE(name, nullptr);
        if (name->asString() == "test.capture") {
            saw_phase = true;
            EXPECT_DOUBLE_EQ(p.find("seconds")->asDouble(), 0.25);
            EXPECT_EQ(p.find("count")->asUint(), 1u);
        }
    }
    EXPECT_TRUE(saw_phase);

    const obs::JsonValue *metrics = root.find("metrics");
    ASSERT_NE(metrics, nullptr);
    const obs::JsonValue *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    const obs::JsonValue *c = counters->find("test.manifest");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->asUint(), 9u);

    const obs::JsonValue *env = root.find("env");
    ASSERT_NE(env, nullptr);
    EXPECT_NE(env->find("threads"), nullptr);
    const obs::JsonValue *note = env->find("note");
    ASSERT_NE(note, nullptr);
    EXPECT_EQ(note->asString(), "hello");
}
