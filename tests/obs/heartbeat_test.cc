/**
 * @file
 * Heartbeat tests: emission exactly on checkpoint-interval
 * boundaries, the resume (prime) coherence contract — cumulative
 * counts include the journaled prefix while rate/ETA cover only the
 * trials this process ran — and thread-safety of record().
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/heartbeat.hh"

using namespace mbavf;

namespace
{

const std::vector<std::string> kLabels = {"masked", "sdc", "due"};

std::size_t
countLines(const std::string &text)
{
    std::size_t n = 0;
    for (char c : text)
        if (c == '\n')
            ++n;
    return n;
}

} // namespace

TEST(HeartbeatTest, EmitsExactlyOnIntervalBoundaries)
{
    std::ostringstream os;
    obs::Heartbeat hb(kLabels, 48, 16, &os);
    for (int i = 0; i < 48; ++i)
        hb.record(0);
    // 48 trials at interval 16: lines at 16, 32, 48.
    EXPECT_EQ(hb.linesEmitted(), 3u);
    EXPECT_EQ(countLines(os.str()), 3u);
    // The final trial landed on a boundary; finish() adds nothing.
    hb.finish();
    EXPECT_EQ(hb.linesEmitted(), 3u);
}

TEST(HeartbeatTest, FinishEmitsOffBoundaryFinalLine)
{
    std::ostringstream os;
    obs::Heartbeat hb(kLabels, 50, 16, &os);
    for (int i = 0; i < 50; ++i)
        hb.record(i % kLabels.size());
    EXPECT_EQ(hb.linesEmitted(), 3u); // 16, 32, 48
    hb.finish();
    EXPECT_EQ(hb.linesEmitted(), 4u); // plus the 50/50 line
    EXPECT_NE(os.str().find("50/50"), std::string::npos) << os.str();
}

TEST(HeartbeatTest, LineFormat)
{
    std::ostringstream os;
    obs::Heartbeat hb(kLabels, 16, 16, &os);
    hb.setClock([] { return 2.0; });
    for (int i = 0; i < 16; ++i)
        hb.record(i < 10 ? 0 : 1); // 10 masked, 6 sdc
    const std::string line = os.str();
    EXPECT_NE(line.find("[heartbeat]"), std::string::npos) << line;
    EXPECT_NE(line.find("16/16"), std::string::npos) << line;
    EXPECT_NE(line.find("100.0%"), std::string::npos) << line;
    EXPECT_NE(line.find("masked=10"), std::string::npos) << line;
    EXPECT_NE(line.find("sdc=6"), std::string::npos) << line;
    EXPECT_NE(line.find("due=0"), std::string::npos) << line;
    // 16 trials in 2 fake seconds.
    EXPECT_NE(line.find("8.0 trials/s"), std::string::npos) << line;
}

TEST(HeartbeatTest, NullSinkKeepsTallies)
{
    obs::Heartbeat hb(kLabels, 8, 4, nullptr);
    for (int i = 0; i < 8; ++i)
        hb.record(2);
    hb.finish();
    EXPECT_EQ(hb.linesEmitted(), 0u);
    EXPECT_EQ(hb.completed(), 8u);
    EXPECT_EQ(hb.counts(), (std::vector<std::uint64_t>{0, 0, 8}));
}

TEST(HeartbeatTest, ZeroIntervalDisablesHeartbeats)
{
    std::ostringstream os;
    obs::Heartbeat hb(kLabels, 8, 0, &os);
    for (int i = 0; i < 8; ++i)
        hb.record(0);
    hb.finish();
    EXPECT_EQ(hb.linesEmitted(), 0u);
    EXPECT_TRUE(os.str().empty());
    // Tallies still accumulate for the final campaign summary.
    EXPECT_EQ(hb.completed(), 8u);
}

/**
 * Resume coherence: priming folds the journaled prefix into the
 * cumulative counts (so percentages and tallies match the final
 * campaign tally) while the rate only measures trials this process
 * ran with the wall time it actually spent.
 */
TEST(HeartbeatTest, PrimeFoldsPrefixIntoCountsButNotRate)
{
    std::ostringstream os;
    obs::Heartbeat hb(kLabels, 48, 16, &os);
    hb.setClock([] { return 4.0; });
    // 32 journaled trials: 20 masked, 12 sdc.
    hb.prime({20, 12, 0});
    EXPECT_EQ(hb.completed(), 32u);
    // No heartbeat for the primed prefix — this process did nothing
    // yet.
    EXPECT_EQ(hb.linesEmitted(), 0u);

    for (int i = 0; i < 16; ++i)
        hb.record(0);
    EXPECT_EQ(hb.completed(), 48u);
    EXPECT_EQ(hb.counts(), (std::vector<std::uint64_t>{36, 12, 0}));
    ASSERT_EQ(hb.linesEmitted(), 1u);

    const std::string line = os.str();
    // Cumulative view: 48/48 incl. prefix.
    EXPECT_NE(line.find("48/48"), std::string::npos) << line;
    EXPECT_NE(line.find("masked=36"), std::string::npos) << line;
    EXPECT_NE(line.find("sdc=12"), std::string::npos) << line;
    // Rate view: 16 ran trials over 4 fake seconds, not 48 / 4.
    EXPECT_NE(line.find("4.0 trials/s"), std::string::npos) << line;
}

TEST(HeartbeatTest, PrimedBoundaryAlignmentMatchesJournal)
{
    // Journal flushed at 16; we resume and the next boundary is 32 —
    // crossing it after 16 more local trials emits exactly one line.
    std::ostringstream os;
    obs::Heartbeat hb(kLabels, 40, 16, &os);
    hb.prime({16, 0, 0});
    for (int i = 0; i < 15; ++i)
        hb.record(0);
    EXPECT_EQ(hb.linesEmitted(), 0u);
    hb.record(0); // completes trial 32
    EXPECT_EQ(hb.linesEmitted(), 1u);
    EXPECT_NE(os.str().find("32/40"), std::string::npos) << os.str();
}

TEST(HeartbeatTest, RecordIsThreadSafe)
{
    obs::Heartbeat hb(kLabels, 4000, 1000, nullptr);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&hb, t] {
            for (int i = 0; i < 1000; ++i)
                hb.record(static_cast<std::size_t>(t) %
                          kLabels.size());
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(hb.completed(), 4000u);
    std::uint64_t sum = 0;
    for (std::uint64_t c : hb.counts())
        sum += c;
    EXPECT_EQ(sum, 4000u);
}
