/**
 * @file
 * Tests for the persistent arena format (core/arena_io.hh): exact
 * round trips, streamed-vs-snapshot byte identity, sweep bit-identity
 * off a mapped file at multiple thread counts, and strict loader
 * rejection of truncated or header-corrupted files.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/arena_io.hh"
#include "core/lifetime_arena.hh"
#include "core/protection.hh"
#include "core/sweep.hh"

namespace mbavf
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "arena_io_" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(is)) << path;
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(static_cast<bool>(os.flush())) << path;
}

/** 8-bit words, 4 words per container, varied shapes and gaps. */
LifetimeStore
randomStore(std::uint64_t seed, unsigned num_containers = 64)
{
    Rng rng(seed);
    LifetimeStore store(8, 4);
    for (unsigned c = 0; c < num_containers; ++c) {
        if (rng.chance(0.2))
            continue; // absent container
        ContainerLifetime &container = store.container(c);
        for (unsigned w = 0; w < 4; ++w) {
            if (rng.chance(0.4))
                continue; // empty word
            Cycle t = rng.below(50);
            const unsigned segs = 1 + rng.below(5);
            for (unsigned s = 0; s < segs; ++s) {
                Cycle e = t + 1 + rng.below(40);
                const std::uint64_t read = rng.next() & 0xFF;
                const InstrTag tag = rng.chance(0.25)
                    ? noInstrTag
                    : makeInstrTag((unsigned)rng.below(4),
                                   (unsigned)rng.below(100));
                container.words[w].append(
                    {t, e, read & (rng.next() & 0xFF), read, tag});
                t = e + 1 + rng.below(15);
            }
        }
    }
    return store;
}

/** Structural equality of two arenas, column by column. */
void
expectArenasEqual(const LifetimeArena &a, const LifetimeArena &b)
{
    ASSERT_EQ(a.wordWidth(), b.wordWidth());
    ASSERT_EQ(a.wordsPerContainer(), b.wordsPerContainer());
    ASSERT_EQ(a.numWords(), b.numWords());
    ASSERT_EQ(a.numSegments(), b.numSegments());
    ASSERT_EQ(a.numContainers(), b.numContainers());
    for (std::uint32_t w = 0; w < a.numWords(); ++w) {
        EXPECT_EQ(a.offset(w), b.offset(w));
        EXPECT_EQ(a.count(w), b.count(w));
        EXPECT_EQ(a.wordContainer(w), b.wordContainer(w));
        EXPECT_EQ(a.wordIndex(w), b.wordIndex(w));
        EXPECT_EQ(a.findWord(a.wordContainer(w), a.wordIndex(w)),
                  b.findWord(a.wordContainer(w), a.wordIndex(w)));
    }
    for (std::size_t s = 0; s < a.numSegments(); ++s) {
        EXPECT_EQ(a.begins()[s], b.begins()[s]);
        EXPECT_EQ(a.ends()[s], b.ends()[s]);
        EXPECT_EQ(a.masks()[s].ace, b.masks()[s].ace);
        EXPECT_EQ(a.masks()[s].read, b.masks()[s].read);
    }
    ASSERT_EQ(a.tagged(), b.tagged());
    if (a.tagged()) {
        for (std::size_t s = 0; s < a.numSegments(); ++s)
            EXPECT_EQ(a.tags()[s], b.tags()[s]);
    }
}

/** One container per row; container bits = 8 x 4 = 32 columns. */
class GridArray : public PhysicalArray
{
  public:
    explicit GridArray(std::uint64_t rows) : rows_(rows) {}

    std::uint64_t rows() const override { return rows_; }
    std::uint64_t cols() const override { return 32; }

    PhysBit
    at(std::uint64_t row, std::uint64_t col) const override
    {
        return {row, static_cast<unsigned>(col),
                (row * 32 + col) / 8};
    }

  private:
    std::uint64_t rows_;
};

bool
sameSweep(const ModeSweep &a, const ModeSweep &b)
{
    if (a.results.size() != b.results.size())
        return false;
    for (std::size_t m = 0; m < a.results.size(); ++m) {
        const MbAvfResult &x = a.results[m];
        const MbAvfResult &y = b.results[m];
        if (x.avf.sdc != y.avf.sdc || x.avf.trueDue != y.avf.trueDue ||
            x.avf.falseDue != y.avf.falseDue ||
            x.numGroups != y.numGroups ||
            x.windows.size() != y.windows.size()) {
            return false;
        }
        for (std::size_t w = 0; w < x.windows.size(); ++w) {
            if (x.windows[w].sdc != y.windows[w].sdc ||
                x.windows[w].trueDue != y.windows[w].trueDue ||
                x.windows[w].falseDue != y.windows[w].falseDue) {
                return false;
            }
        }
    }
    return true;
}

TEST(ArenaIo, RoundTripPreservesEveryColumn)
{
    LifetimeStore store = randomStore(7);
    LifetimeArena built(store);
    const std::string path = tempPath("roundtrip.bin");
    saveArena(built, path, 12345);

    std::string error;
    Cycle horizon = 0;
    std::optional<LifetimeArena> loaded =
        tryLoadArena(path, error, &horizon);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(horizon, 12345u);
    expectArenasEqual(built, *loaded);

    // The mapped arena answers lookups exactly like the built one,
    // including misses.
    for (std::uint64_t c = 0; c < 70; ++c) {
        for (unsigned w = 0; w < 5; ++w) {
            EXPECT_EQ(loaded->findWord(c, w), built.findWord(c, w))
                << c << ":" << w;
        }
    }
    std::remove(path.c_str());
}

TEST(ArenaIo, UntaggedVersion1FileStillLoads)
{
    // Readers must keep accepting pre-tag (version 1) arenas: strip
    // the trailing tag column off a fresh file, rewind the header's
    // version and size fields, and every other column must load
    // bit-identically — just with tagged() == false.
    LifetimeStore store = randomStore(9);
    LifetimeArena built(store);
    const std::string path = tempPath("v1.bin");
    saveArena(built, path, 777);
    std::string bytes = readFile(path);
    std::remove(path.c_str());

    auto read_u64 = [&](std::size_t at) {
        std::uint64_t v = 0;
        std::memcpy(&v, bytes.data() + at, sizeof(v));
        return v;
    };
    const std::uint64_t num_segments = read_u64(32);
    const std::uint64_t num_handles = read_u64(48);
    ASSERT_GT(num_segments, 0u);

    // The tag column is the last section; the file ends exactly
    // numSegments * sizeof(InstrTag) bytes after its 64-byte-aligned
    // start. Version 1 ends at the unaligned end of the handle
    // table, which sits (num_handles * 4) % 64 bytes past the last
    // 64-byte boundary at or below the tag column's start.
    const std::uint64_t tag_start =
        bytes.size() - num_segments * sizeof(InstrTag);
    ASSERT_EQ(tag_start % 64, 0u);
    const std::uint64_t overhang = num_handles * 4 % 64;
    const std::uint64_t handles_end =
        tag_start - (64 - overhang) % 64;
    const std::uint32_t v1 = 1;
    std::memcpy(bytes.data() + 8, &v1, sizeof(v1));
    bytes.resize(handles_end);
    const std::uint64_t v1_size = bytes.size();
    std::memcpy(bytes.data() + 64, &v1_size, sizeof(v1_size));

    const std::string v1_path = tempPath("v1_cut.bin");
    writeFile(v1_path, bytes);
    std::string error;
    Cycle horizon = 0;
    std::optional<LifetimeArena> loaded =
        tryLoadArena(v1_path, error, &horizon);
    std::remove(v1_path.c_str());
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(horizon, 777u);
    EXPECT_FALSE(loaded->tagged());
    EXPECT_EQ(loaded->tags(), nullptr);
    ASSERT_EQ(loaded->numSegments(), built.numSegments());
    for (std::size_t s = 0; s < built.numSegments(); ++s) {
        EXPECT_EQ(loaded->begins()[s], built.begins()[s]);
        EXPECT_EQ(loaded->ends()[s], built.ends()[s]);
        EXPECT_EQ(loaded->masks()[s].ace, built.masks()[s].ace);
        EXPECT_EQ(loaded->masks()[s].read, built.masks()[s].read);
    }
}

TEST(ArenaIo, StreamedFileIsByteIdenticalToSnapshot)
{
    LifetimeStore store = randomStore(21);
    const std::string direct = tempPath("direct.bin");
    const std::string streamed = tempPath("streamed.bin");
    saveArena(LifetimeArena(store), direct, 99);
    streamArenaFromStore(store, streamed, 99);

    EXPECT_EQ(readFile(direct), readFile(streamed));
    std::remove(direct.c_str());
    std::remove(streamed.c_str());
}

TEST(ArenaIo, MappedSweepIsBitIdenticalAtAnyThreadCount)
{
    LifetimeStore store = randomStore(3, 32);
    GridArray array(32);
    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = 400;
    opt.numWindows = 4;
    opt.numThreads = 1;
    ModeSweep direct = sweepModes(array, store, parity, opt, 6);

    const std::string path = tempPath("sweep.bin");
    streamArenaFromStore(store, path, opt.horizon);
    std::string error;
    std::optional<LifetimeArena> loaded = tryLoadArena(path, error);
    ASSERT_TRUE(loaded.has_value()) << error;
    std::remove(path.c_str());

    ModeSweep t1 = sweepModesArena(array, *loaded, parity, opt, 6);
    EXPECT_TRUE(sameSweep(direct, t1));
    opt.numThreads = 4;
    ModeSweep t4 = sweepModesArena(array, *loaded, parity, opt, 6);
    EXPECT_TRUE(sameSweep(direct, t4));
    // The scalar kernel must agree off the mapped columns too.
    opt.scalarKernel = true;
    ModeSweep scalar = sweepModesArena(array, *loaded, parity, opt, 6);
    EXPECT_TRUE(sameSweep(direct, scalar));
}

TEST(ArenaIo, EmptyStoreRoundTrips)
{
    LifetimeStore store(8, 4);
    const std::string path = tempPath("empty.bin");
    saveArena(LifetimeArena(store), path, 0);
    std::string error;
    Cycle horizon = 77;
    std::optional<LifetimeArena> loaded =
        tryLoadArena(path, error, &horizon);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(horizon, 0u);
    EXPECT_EQ(loaded->numWords(), 0u);
    EXPECT_EQ(loaded->numSegments(), 0u);
    EXPECT_EQ(loaded->findWord(0, 0), LifetimeArena::noWord);
    std::remove(path.c_str());
}

TEST(ArenaIo, EveryTruncationIsRejected)
{
    // A small store keeps the file — and the loop — small while
    // still exercising every section boundary.
    LifetimeStore store = randomStore(11, 8);
    const std::string path = tempPath("trunc_src.bin");
    saveArena(LifetimeArena(store), path, 5);
    const std::string bytes = readFile(path);
    std::remove(path.c_str());
    ASSERT_GT(bytes.size(), sizeof(std::uint64_t) * 16);

    const std::string cut = tempPath("trunc.bin");
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        writeFile(cut, bytes.substr(0, len));
        std::string error;
        std::optional<LifetimeArena> loaded =
            tryLoadArena(cut, error);
        EXPECT_FALSE(loaded.has_value())
            << "accepted a file truncated to " << len << " of "
            << bytes.size() << " bytes";
        EXPECT_FALSE(error.empty());
    }
    std::remove(cut.c_str());
}

TEST(ArenaIo, CorruptHeaderFieldsAreRejected)
{
    LifetimeStore store = randomStore(13, 8);
    const std::string path = tempPath("corrupt_src.bin");
    saveArena(LifetimeArena(store), path, 5);
    const std::string bytes = readFile(path);
    std::remove(path.c_str());

    // (offset, patch bytes) per header field; offsets follow the
    // fixed 128-byte header layout in arena_io.cc.
    struct Patch
    {
        const char *label;
        std::size_t offset;
        std::vector<unsigned char> value;
    };
    const std::vector<Patch> patches = {
        {"magic", 0, {'X'}},
        {"version", 8, {9, 0, 0, 0}},
        // The marker reads 04 03 02 01 on disk little-endian; the
        // byte-swapped image a foreign writer would produce is the
        // reverse.
        {"byte order", 12, {1, 2, 3, 4}},
        {"word width", 16, {65, 0, 0, 0}},
        {"words per container", 20, {0xff, 0xff, 0xff, 0xff}},
        {"word count", 24, {0xfe, 0xff, 0xff, 0xff}},
        {"segment count", 32, {0xff, 0xff, 0xff, 0xff}},
        {"file size", 64, {1}},
    };
    const std::string cut = tempPath("corrupt.bin");
    for (const Patch &patch : patches) {
        std::string corrupt = bytes;
        for (std::size_t i = 0; i < patch.value.size(); ++i) {
            corrupt[patch.offset + i] =
                static_cast<char>(patch.value[i]);
        }
        writeFile(cut, corrupt);
        std::string error;
        std::optional<LifetimeArena> loaded =
            tryLoadArena(cut, error);
        EXPECT_FALSE(loaded.has_value())
            << "accepted a corrupt " << patch.label;
        EXPECT_FALSE(error.empty()) << patch.label;
    }
    std::remove(cut.c_str());
}

TEST(ArenaIo, MalformedSegmentColumnsAreRejected)
{
    // Two segments in one word; corrupting the begin column so the
    // chain runs backwards or out of order must be rejected at load
    // time: the sweep kernels subtract end - begin unchecked, so a
    // wrapped run length would otherwise report garbage AVF with no
    // diagnostic.
    LifetimeStore store(8, 1);
    WordLifetime &word = store.container(0).words[0];
    word.append({5, 10, 0x1, 0x1});
    word.append({20, 30, 0x3, 0x3});
    const std::string path = tempPath("segorder_src.bin");
    saveArena(LifetimeArena(store), path, 40);
    const std::string bytes = readFile(path);
    std::remove(path.c_str());

    // The segBegin column is the first section after the 128-byte
    // header, one 8-byte little-endian Cycle per segment.
    struct Patch
    {
        const char *label;
        std::size_t offset;
        unsigned char value;
    };
    const Patch patches[] = {
        // begin[0] high byte: begin far past end -> backwards.
        {"backwards segment", 128 + 7, 0xff},
        // begin[1] low byte: 20 -> 0, before end[0] -> unsorted.
        {"unsorted chain", 128 + 8, 0},
    };
    const std::string cut = tempPath("segorder.bin");
    for (const Patch &patch : patches) {
        std::string corrupt = bytes;
        corrupt[patch.offset] = static_cast<char>(patch.value);
        writeFile(cut, corrupt);
        std::string error;
        std::optional<LifetimeArena> loaded =
            tryLoadArena(cut, error);
        EXPECT_FALSE(loaded.has_value())
            << "accepted a " << patch.label;
        EXPECT_NE(error.find("segment"), std::string::npos)
            << patch.label << ": " << error;
    }
    std::remove(cut.c_str());
}

TEST(ArenaIo, OutOfRangeHandleIsRejected)
{
    // Smash every byte of the trailing handle section to 0x7f: each
    // handle becomes 0x7f7f7f7f, far beyond the word count but not
    // noWord, which the cross-index validation must catch.
    LifetimeStore store = randomStore(17, 8);
    const std::string path = tempPath("handle_src.bin");
    saveArena(LifetimeArena(store), path, 5);
    std::string bytes = readFile(path);
    std::remove(path.c_str());
    // The version-2 tag column (numSegments * 4 bytes, no trailing
    // padding) ends the file; the handle table sits just before it
    // plus up to 63 alignment bytes. Smashing the 64 bytes ahead of
    // the tag column is guaranteed to hit at least one real handle.
    std::uint64_t num_segments = 0;
    std::memcpy(&num_segments, bytes.data() + 32,
                sizeof(num_segments));
    const std::size_t tag_start = bytes.size() - num_segments * 4;
    for (std::size_t i = tag_start - 64; i < tag_start; ++i)
        bytes[i] = 0x7f;

    const std::string cut = tempPath("handle.bin");
    writeFile(cut, bytes);
    std::string error;
    std::optional<LifetimeArena> loaded = tryLoadArena(cut, error);
    EXPECT_FALSE(loaded.has_value());
    EXPECT_NE(error.find("handle"), std::string::npos) << error;
    std::remove(cut.c_str());
}

} // namespace
} // namespace mbavf
