/**
 * @file
 * Tests for the fault-rate tables (Tables I, III) and the SER
 * calculator (Eq. 3).
 */

#include <gtest/gtest.h>

#include "core/fault_rates.hh"
#include "core/ser.hh"

namespace mbavf
{
namespace
{

TEST(FaultRates, NodesSumToHundredPercent)
{
    for (const NodeFaultRatios &node : ibeFaultRatios()) {
        double sum = 0;
        for (double p : node.percent)
            sum += p;
        EXPECT_NEAR(sum, 100.0, 1e-9) << node.designRuleNm << "nm";
    }
}

TEST(FaultRates, MultiBitShareGrowsWithScaling)
{
    double prev = 0;
    for (const NodeFaultRatios &node : ibeFaultRatios()) {
        EXPECT_GT(node.multiBitPercent(), prev);
        prev = node.multiBitPercent();
    }
}

TEST(FaultRates, PaperQuotedNumbers)
{
    // "Multi-bit faults are 3.9% of all faults in 22nm" and "less
    // than 0.6% of faults affected more than one bit" at 180nm.
    EXPECT_NEAR(ibeFaultRatiosFor(22).multiBitPercent(), 3.9, 1e-9);
    EXPECT_LT(ibeFaultRatiosFor(180).multiBitPercent(), 0.6);
}

TEST(FaultRates, WidthDistributionDecays)
{
    const NodeFaultRatios &node = ibeFaultRatiosFor(22);
    for (unsigned m = 1; m + 1 < maxTabulatedMode - 1; ++m)
        EXPECT_GE(node.percent[m], node.percent[m + 1]) << m;
}

TEST(FaultRates, UnknownNodeIsFatal)
{
    EXPECT_DEATH((void)ibeFaultRatiosFor(7), "no Ibe fault ratios");
}

TEST(FaultRates, CaseStudyRatesSumToTotal)
{
    auto rates = caseStudyFaultRates(100.0);
    double sum = 0;
    for (double r : rates)
        sum += r;
    EXPECT_NEAR(sum, 100.0, 1e-9);
    EXPECT_NEAR(rates[0], 96.1, 1e-9);
}

TEST(FaultRates, CaseStudyScalesLinearly)
{
    auto a = caseStudyFaultRates(100.0);
    auto b = caseStudyFaultRates(250.0);
    for (unsigned m = 0; m < maxTabulatedMode; ++m)
        EXPECT_NEAR(b[m], 2.5 * a[m], 1e-9);
}

TEST(Ser, SumsPerModeContributions)
{
    std::vector<ModeSer> modes;
    ModeSer a;
    a.modeBits = 1;
    a.fit = 96.0;
    a.avf = {0.01, 0.02, 0.005};
    ModeSer b;
    b.modeBits = 2;
    b.fit = 4.0;
    b.avf = {0.5, 0.1, 0.0};
    modes = {a, b};

    StructureSer total = sumSer(modes);
    EXPECT_NEAR(total.sdc, 96 * 0.01 + 4 * 0.5, 1e-12);
    EXPECT_NEAR(total.trueDue, 96 * 0.02 + 4 * 0.1, 1e-12);
    EXPECT_NEAR(total.falseDue, 96 * 0.005, 1e-12);
    EXPECT_NEAR(total.due(), total.trueDue + total.falseDue, 1e-12);
    EXPECT_NEAR(total.total(),
                total.sdc + total.trueDue + total.falseDue, 1e-12);
}

TEST(Ser, ModeSerAccessors)
{
    ModeSer m;
    m.fit = 10.0;
    m.avf = {0.1, 0.2, 0.3};
    EXPECT_NEAR(m.sdcSer(), 1.0, 1e-12);
    EXPECT_NEAR(m.dueSer(), 5.0, 1e-12);
    EXPECT_NEAR(m.totalSer(), 6.0, 1e-12);
}

} // namespace
} // namespace mbavf
