/**
 * @file
 * Tests for fault modes and fault-group enumeration.
 */

#include <gtest/gtest.h>

#include "core/fault_mode.hh"

namespace mbavf
{
namespace
{

TEST(FaultMode, Mx1Basics)
{
    FaultMode m = FaultMode::mx1(3);
    EXPECT_EQ(m.name(), "3x1");
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m.maxDRow(), 0);
    EXPECT_EQ(m.maxDCol(), 2);
}

TEST(FaultMode, Figure1Example)
{
    // Paper Figure 1: a 2x1 mode has 3 unique fault groups in a 4x1
    // SRAM array (B0..B3).
    FaultMode m = FaultMode::mx1(2);
    EXPECT_EQ(m.numGroups(1, 4), 3u);
}

TEST(FaultMode, SingleBitGroupCount)
{
    FaultMode m = FaultMode::mx1(1);
    EXPECT_EQ(m.numGroups(8, 16), 128u);
}

TEST(FaultMode, GroupCountShrinksWithWidth)
{
    for (unsigned w = 1; w <= 8; ++w) {
        FaultMode m = FaultMode::mx1(w);
        EXPECT_EQ(m.numGroups(2, 32), 2u * (32 - w + 1));
    }
}

TEST(FaultMode, NoGroupsWhenTooLarge)
{
    FaultMode m = FaultMode::mx1(8);
    EXPECT_EQ(m.numGroups(4, 7), 0u);
}

TEST(FaultMode, RectMode)
{
    FaultMode m = FaultMode::rect(2, 2);
    EXPECT_EQ(m.size(), 4u);
    EXPECT_EQ(m.maxDRow(), 1);
    EXPECT_EQ(m.maxDCol(), 1);
    EXPECT_EQ(m.numGroups(3, 3), 4u);
}

TEST(FaultMode, NormalizesOffsets)
{
    FaultMode m("diag", {{2, 5}, {1, 4}});
    EXPECT_EQ(m.offsets()[0].dRow, 0);
    EXPECT_EQ(m.offsets()[0].dCol, 0);
    EXPECT_EQ(m.offsets()[1].dRow, 1);
    EXPECT_EQ(m.offsets()[1].dCol, 1);
}

TEST(FaultMode, DeduplicatesOffsets)
{
    FaultMode m("dup", {{0, 0}, {0, 1}, {0, 0}});
    EXPECT_EQ(m.size(), 2u);
}

TEST(FaultMode, ArbitraryNonContiguous)
{
    // An L-shaped pattern is accepted and spans its bounding box.
    FaultMode m("L", {{0, 0}, {1, 0}, {1, 1}});
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m.numGroups(4, 4), 9u);
}

} // namespace
} // namespace mbavf
