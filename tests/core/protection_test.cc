/**
 * @file
 * Tests for protection schemes: fault actions and check-bit costs
 * (the paper's quoted overheads).
 */

#include <gtest/gtest.h>

#include "core/protection.hh"

namespace mbavf
{
namespace
{

TEST(Protection, NoProtectionNeverDetects)
{
    NoProtection p;
    EXPECT_EQ(p.action(0), FaultAction::Corrected);
    for (unsigned n = 1; n <= 8; ++n)
        EXPECT_EQ(p.action(n), FaultAction::Undetected);
    EXPECT_EQ(p.checkBits(64), 0u);
}

TEST(Protection, ParityDetectsOddMissesEven)
{
    ParityScheme p;
    EXPECT_EQ(p.action(0), FaultAction::Corrected);
    for (unsigned n = 1; n <= 9; n += 2)
        EXPECT_EQ(p.action(n), FaultAction::Detected) << n;
    for (unsigned n = 2; n <= 8; n += 2)
        EXPECT_EQ(p.action(n), FaultAction::Undetected) << n;
}

TEST(Protection, SecDedLadder)
{
    SecDedScheme p;
    EXPECT_EQ(p.action(0), FaultAction::Corrected);
    EXPECT_EQ(p.action(1), FaultAction::Corrected);
    EXPECT_EQ(p.action(2), FaultAction::Detected);
    for (unsigned n = 3; n <= 8; ++n)
        EXPECT_EQ(p.action(n), FaultAction::Undetected) << n;
}

TEST(Protection, DecTedLadder)
{
    DecTedScheme p;
    EXPECT_EQ(p.action(1), FaultAction::Corrected);
    EXPECT_EQ(p.action(2), FaultAction::Corrected);
    EXPECT_EQ(p.action(3), FaultAction::Detected);
    EXPECT_EQ(p.action(4), FaultAction::Undetected);
}

TEST(Protection, CrcDetectsEverything)
{
    CrcDetectScheme p;
    for (unsigned n = 1; n <= 8; ++n)
        EXPECT_EQ(p.action(n), FaultAction::Detected) << n;
}

TEST(Protection, PaperCheckBitCosts)
{
    // Introduction: DEC-TED on a 128-bit word needs 17 check bits
    // (13%) vs 9 (7%) for SEC-DED.
    SecDedScheme secded;
    DecTedScheme dected;
    EXPECT_EQ(secded.checkBits(128), 9u);
    EXPECT_EQ(dected.checkBits(128), 17u);
    EXPECT_NEAR(secded.areaOverhead(128), 0.07, 0.01);
    EXPECT_NEAR(dected.areaOverhead(128), 0.13, 0.01);

    // Section VIII: per-32-bit-register protection costs 21.9%
    // (SEC-DED) vs 3.1% (parity).
    ParityScheme parity;
    EXPECT_EQ(secded.checkBits(32), 7u);
    EXPECT_NEAR(secded.areaOverhead(32), 0.219, 0.001);
    EXPECT_NEAR(parity.areaOverhead(32), 0.031, 0.001);
}

TEST(Protection, FactoryByName)
{
    EXPECT_EQ(makeScheme("none")->name(), "none");
    EXPECT_EQ(makeScheme("parity")->name(), "parity");
    EXPECT_EQ(makeScheme("secded")->name(), "SEC-DED");
    EXPECT_EQ(makeScheme("dected")->name(), "DEC-TED");
    EXPECT_EQ(makeScheme("crc")->name(), "CRC");
}

} // namespace
} // namespace mbavf
