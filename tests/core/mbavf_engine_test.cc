/**
 * @file
 * Tests for the MB-AVF engine on synthetic lifetimes: the paper's
 * first-principles bounds (Section IV-D), protection-domain overlap
 * classification (Sections V, VII), group precedence, and the
 * windowed time series.
 */

#include <gtest/gtest.h>

#include "core/mbavf.hh"

namespace mbavf
{
namespace
{

/**
 * A one-row array of N bits, each bit its own 1-bit container so
 * tests can give every bit an independent lifetime; every
 * @p domain_bits consecutive bits form one protection domain.
 */
class FlatArray : public PhysicalArray
{
  public:
    FlatArray(std::uint64_t bits, unsigned domain_bits)
        : bits_(bits), domainBits_(domain_bits)
    {}

    std::uint64_t rows() const override { return 1; }
    std::uint64_t cols() const override { return bits_; }

    PhysBit
    at(std::uint64_t, std::uint64_t col) const override
    {
        PhysBit b;
        b.container = col;
        b.bitInContainer = 0;
        b.domain = col / domainBits_;
        return b;
    }

  private:
    std::uint64_t bits_;
    unsigned domainBits_;
};

/** Append one homogeneous segment to a bit's lifetime. */
void
addSegment(LifetimeStore &store, std::uint64_t bit, Cycle begin,
           Cycle end, AceClass cls)
{
    auto &word = store.container(bit).words[0];
    LifeSegment seg{begin, end, 0, 0};
    if (cls == AceClass::AceLive) {
        seg.aceMask = 1;
        seg.readMask = 1;
    } else if (cls == AceClass::ReadDead) {
        seg.readMask = 1;
    }
    word.append(seg);
}

MbAvfOptions
opts(Cycle horizon)
{
    MbAvfOptions o;
    o.horizon = horizon;
    return o;
}

TEST(MbAvfEngine, AllBitsAceGivesEqualSbAndMbAvf)
{
    // Section IV-D: if all bits of a group are ACE in the same
    // cycles, MB-AVF == SB-AVF (both 100% over the window).
    constexpr unsigned m = 4;
    FlatArray array(8, 8);
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < 8; ++b)
        addSegment(store, b, 0, 100, AceClass::AceLive);

    ParityScheme parity;
    MbAvfResult sb = computeSbAvf(array, store, parity, opts(100));
    MbAvfResult mb =
        computeMbAvf(array, store, parity, FaultMode::mx1(m),
                     opts(100));
    EXPECT_DOUBLE_EQ(sb.avf.total(), 1.0);
    EXPECT_DOUBLE_EQ(mb.avf.total(), 1.0);
}

TEST(MbAvfEngine, DisjointAceTimesGiveMTimesSbAvf)
{
    // Section IV-D: if exactly one of the M bits is ACE in each
    // cycle, MB-AVF = M x SB-AVF.
    constexpr unsigned m = 4;
    FlatArray array(m, 8);
    LifetimeStore store(1, 1);
    // Bit i ACE during [25i, 25(i+1)): each bit 25% SB-AVF.
    for (std::uint64_t b = 0; b < m; ++b)
        addSegment(store, b, 25 * b, 25 * (b + 1), AceClass::AceLive);

    ParityScheme parity;
    MbAvfResult sb = computeSbAvf(array, store, parity, opts(100));
    MbAvfResult mb = computeMbAvf(array, store, parity,
                                  FaultMode::mx1(m), opts(100));
    EXPECT_DOUBLE_EQ(sb.avf.total(), 0.25);
    EXPECT_DOUBLE_EQ(mb.avf.total(), 1.0);
    EXPECT_DOUBLE_EQ(mb.avf.total() / sb.avf.total(), double(m));
}

TEST(MbAvfEngine, MbAvfBoundedBySbAvfTimesM)
{
    // Property: 1x <= MB-AVF / SB-AVF <= Mx for any lifetime mix.
    for (unsigned m : {2u, 3u, 4u, 8u}) {
        FlatArray array(16, 8);
        LifetimeStore store(1, 1);
        // A staggered mix of overlapping segments.
        for (std::uint64_t b = 0; b < 16; ++b) {
            addSegment(store, b, b * 3, b * 3 + 20,
                       AceClass::AceLive);
            addSegment(store, b, 60 + (b % 4) * 5, 70 + (b % 4) * 5,
                       AceClass::AceLive);
        }
        ParityScheme parity;
        MbAvfResult sb = computeSbAvf(array, store, parity, opts(100));
        MbAvfResult mb = computeMbAvf(array, store, parity,
                                      FaultMode::mx1(m), opts(100));
        ASSERT_GT(sb.avf.total(), 0.0);
        double ratio = mb.avf.total() / sb.avf.total();
        EXPECT_GE(ratio, 1.0 - 1e-9) << "m=" << m;
        EXPECT_LE(ratio, double(m) + 1e-9) << "m=" << m;
    }
}

TEST(MbAvfEngine, MbAvfMonotonicInFaultModeSize)
{
    // Section VI-C: larger fault modes have larger (or equal)
    // MB-AVF, because a larger group is more likely to contain an
    // ACE bit. (Holds per anchor; group-count edge effects are
    // negligible here.)
    FlatArray array(64, 64);
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < 64; b += 3)
        addSegment(store, b, (b * 7) % 50, (b * 7) % 50 + 30,
                   AceClass::AceLive);
    ParityScheme parity;
    double prev = 0.0;
    for (unsigned m = 1; m <= 8; ++m) {
        MbAvfResult r = computeMbAvf(array, store, parity,
                                     FaultMode::mx1(m), opts(100));
        EXPECT_GE(r.avf.total(), prev - 1e-9) << "m=" << m;
        prev = r.avf.total();
    }
}

TEST(MbAvfEngine, CorrectionEliminatesAvf)
{
    // SEC-DED corrects single-bit faults: SB-AVF must be zero.
    FlatArray array(8, 8);
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < 8; ++b)
        addSegment(store, b, 0, 100, AceClass::AceLive);
    SecDedScheme secded;
    MbAvfResult sb = computeSbAvf(array, store, secded, opts(100));
    EXPECT_DOUBLE_EQ(sb.avf.total(), 0.0);
}

TEST(MbAvfEngine, Figure3SecDedOverlapSplit)
{
    // Paper Figure 3: a 3x1 fault across two SEC-DED domains splits
    // 2+1. The 2-bit region is detected (DUE); the 1-bit region is
    // corrected. Group is DUE-ACE when the 2-bit region is ACE.
    FlatArray array(16, 8); // domains = containers = bytes
    LifetimeStore store(1, 1);
    // Bits 6,7 in domain 0; bit 8 in domain 1.
    addSegment(store, 6, 0, 50, AceClass::AceLive);
    addSegment(store, 7, 0, 50, AceClass::AceLive);
    addSegment(store, 8, 0, 100, AceClass::AceLive);

    SecDedScheme secded;
    // Anchor the 3x1 at column 6: covers bits 6,7,8.
    // Over the full array the only ACE group-time comes from groups
    // whose 2-bit overlap region is ACE.
    MbAvfResult mb = computeMbAvf(array, store, secded,
                                  FaultMode::mx1(3), opts(100));
    // Groups: anchors 0..13 (14 groups). Group at anchor 6 splits
    // {6,7} | {8}: detected region ACE for 50 cycles -> trueDUE.
    // Anchor 5 covers {5,6,7}: whole 3-bit region in domain 0 ->
    // undetected, ACE 50 cycles -> SDC. Anchor 7 covers {7}|{8,9}:
    // region {7} corrected, {8,9} detected with bit 8 ACE 100 -> DUE.
    // Anchor 4 covers {4,5,6}|: single domain undetected, ACE 50.
    // Anchor 8 covers {8,9,10}: undetected, ACE 100 -> SDC.
    double denom = 14.0 * 100.0;
    EXPECT_NEAR(mb.avf.trueDue, (50.0 + 100.0) / denom, 1e-12);
    EXPECT_NEAR(mb.avf.sdc, (50.0 + 50.0 + 100.0) / denom, 1e-12);
}

TEST(MbAvfEngine, Figure7ParityOverlapSplit)
{
    // Paper Figure 7: a 3x1 fault over two parity domains splits
    // 2+1. The 2-bit region is undetected (SDC if ACE); the 1-bit
    // region is detected (DUE if ACE). SDC takes precedence when
    // both are ACE.
    FlatArray array(16, 8);
    LifetimeStore store(1, 1);
    // B0, B1 in PD0 ACE during [0, 40); B2 in PD1 ACE during [0, 80).
    addSegment(store, 6, 0, 40, AceClass::AceLive);
    addSegment(store, 7, 0, 40, AceClass::AceLive);
    addSegment(store, 8, 0, 80, AceClass::AceLive);

    ParityScheme parity;
    MbAvfResult mb = computeMbAvf(array, store, parity,
                                  FaultMode::mx1(3), opts(100));
    // Anchor 6 = {6,7}|{8}: [0,40) SDC (precedence over the DUE of
    // PD1), [40,80) trueDUE (only bit 8 ACE, detected).
    // Anchor 4 = {4,5,6}: one domain, 3 flips -> detected: [0,40)
    // trueDUE. Anchor 5 = {5,6,7}: detected: [0,40) trueDUE.
    // Anchor 7 = {7}|{8,9}: {7} detected ACE [0,40) -> trueDUE;
    // {8,9} undetected ACE [0,80) -> SDC wins [0,80).
    // Anchor 8 = {8,9,10}: detected ACE [0,80) -> trueDUE.
    double denom = 14.0 * 100.0;
    EXPECT_NEAR(mb.avf.sdc, (40.0 + 80.0) / denom, 1e-12);
    EXPECT_NEAR(mb.avf.trueDue,
                (40.0 + 40.0 + 40.0 + 80.0) / denom, 1e-12);
}

TEST(MbAvfEngine, ParityUndetectedEvenFaultsBecomeSdc)
{
    // A 2x1 fault entirely inside one parity domain is undetected:
    // ACE time becomes SDC, not DUE.
    FlatArray array(8, 8);
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < 8; ++b)
        addSegment(store, b, 0, 10, AceClass::AceLive);
    ParityScheme parity;
    MbAvfResult mb = computeMbAvf(array, store, parity,
                                  FaultMode::mx1(2), opts(10));
    EXPECT_DOUBLE_EQ(mb.avf.sdc, 1.0);
    EXPECT_DOUBLE_EQ(mb.avf.due(), 0.0);
}

TEST(MbAvfEngine, ReadDeadDetectedIsFalseDue)
{
    FlatArray array(8, 8);
    LifetimeStore store(1, 1);
    addSegment(store, 0, 0, 40, AceClass::ReadDead);
    ParityScheme parity;
    MbAvfResult sb = computeSbAvf(array, store, parity, opts(100));
    // One of 8 bits, ReadDead 40 of 100 cycles.
    EXPECT_NEAR(sb.avf.falseDue, 0.4 / 8, 1e-12);
    EXPECT_DOUBLE_EQ(sb.avf.sdc, 0.0);
    EXPECT_DOUBLE_EQ(sb.avf.trueDue, 0.0);

    // Undetected (no protection): dead data never becomes an error.
    NoProtection none;
    MbAvfResult sb2 = computeSbAvf(array, store, none, opts(100));
    EXPECT_DOUBLE_EQ(sb2.avf.total(), 0.0);
}

TEST(MbAvfEngine, SdcTakesPrecedenceOverDueByDefault)
{
    // Section VII-B: a group with one SDC region and one DUE region
    // is SDC-ACE in cache mode.
    FlatArray array(16, 2); // 2-bit parity domains
    LifetimeStore store(1, 1);
    // 3x1 at anchor 0: bits {0,1} in domain 0 (2 flips: undetected),
    // bit {2} in domain 1 (1 flip: detected).
    addSegment(store, 0, 0, 10, AceClass::AceLive);
    addSegment(store, 2, 0, 10, AceClass::AceLive);

    ParityScheme parity;
    MbAvfOptions o = opts(10);
    MbAvfResult mb = computeMbAvf(array, store, parity,
                                  FaultMode::mx1(3), o);
    // Only anchor 0 has ACE time among 14 anchors... anchors 1,2
    // also touch bits 0-4. Focus on totals: SDC time must dominate
    // where both classes coexist (anchor 0).
    EXPECT_GT(mb.avf.sdc, 0.0);

    // With dueShieldsSdc (inter-thread VGPR reads), the same group
    // becomes DUE instead.
    o.dueShieldsSdc = true;
    MbAvfResult shielded = computeMbAvf(array, store, parity,
                                        FaultMode::mx1(3), o);
    EXPECT_LT(shielded.avf.sdc, mb.avf.sdc);
    EXPECT_GT(shielded.avf.trueDue, mb.avf.trueDue);
}

TEST(MbAvfEngine, WindowedAvfAveragesToTotal)
{
    FlatArray array(32, 8);
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < 32; b += 2)
        addSegment(store, b, b, 3 * b + 7, AceClass::AceLive);

    ParityScheme parity;
    MbAvfOptions o = opts(96);
    o.numWindows = 8;
    MbAvfResult mb = computeMbAvf(array, store, parity,
                                  FaultMode::mx1(2), o);
    ASSERT_EQ(mb.windows.size(), 8u);
    double sum_sdc = 0, sum_tdue = 0, sum_fdue = 0;
    for (const AvfFractions &w : mb.windows) {
        sum_sdc += w.sdc;
        sum_tdue += w.trueDue;
        sum_fdue += w.falseDue;
    }
    EXPECT_NEAR(sum_sdc / 8, mb.avf.sdc, 1e-9);
    EXPECT_NEAR(sum_tdue / 8, mb.avf.trueDue, 1e-9);
    EXPECT_NEAR(sum_fdue / 8, mb.avf.falseDue, 1e-9);
}

TEST(MbAvfEngine, UntouchedStructureHasZeroAvf)
{
    FlatArray array(64, 8);
    LifetimeStore store(1, 1);
    ParityScheme parity;
    MbAvfResult mb = computeMbAvf(array, store, parity,
                                  FaultMode::mx1(4), opts(1000));
    EXPECT_DOUBLE_EQ(mb.avf.total(), 0.0);
    EXPECT_EQ(mb.numGroups, 61u);
}

TEST(MbAvfEngine, HorizonClampsSegments)
{
    FlatArray array(8, 8);
    LifetimeStore store(1, 1);
    addSegment(store, 0, 0, 1000, AceClass::AceLive);
    ParityScheme parity;
    MbAvfResult sb = computeSbAvf(array, store, parity, opts(100));
    EXPECT_NEAR(sb.avf.total(), 1.0 / 8, 1e-12);
}

TEST(MbAvfEngine, ModeTallerThanArrayHasNoGroups)
{
    // A footprint taller than the array admits no anchor at all;
    // the engine must return zero groups (and must not let
    // `rows - span_r + 1` underflow), not crash or report garbage.
    FlatArray array(8, 8); // 1 row
    LifetimeStore store(1, 1);
    addSegment(store, 0, 0, 100, AceClass::AceLive);
    ParityScheme parity;
    MbAvfResult mb = computeMbAvf(array, store, parity,
                                  FaultMode::rect(4, 1), opts(100));
    EXPECT_EQ(mb.numGroups, 0u);
    EXPECT_DOUBLE_EQ(mb.avf.total(), 0.0);
}

TEST(MbAvfEngine, ModeWiderThanArrayHasNoGroups)
{
    FlatArray array(4, 4); // 1 row x 4 cols
    LifetimeStore store(1, 1);
    addSegment(store, 0, 0, 100, AceClass::AceLive);
    ParityScheme parity;
    MbAvfResult mb = computeMbAvf(array, store, parity,
                                  FaultMode::mx1(8), opts(100));
    EXPECT_EQ(mb.numGroups, 0u);
    EXPECT_DOUBLE_EQ(mb.avf.total(), 0.0);
}

} // namespace
} // namespace mbavf
