/**
 * @file
 * Differential fuzz of the single-pass multi-mode sweep kernel
 * against the per-mode reference path (MbAvfOptions::referenceKernel).
 *
 * Random lifetime stores over random physical layouts, swept under
 * every protection scheme at varied horizons and window counts, must
 * produce bit-identical AVF fractions, per-window series, group
 * counts, and SER folds — serially and on the thread pool. Seeds are
 * fixed (splitMix64 streams), so any failure is exactly reproducible.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "core/layout.hh"
#include "core/sweep.hh"

namespace mbavf
{
namespace
{

/** One-row array of 1-bit containers with a tunable domain width. */
class FlatArray : public PhysicalArray
{
  public:
    FlatArray(std::uint64_t bits, unsigned domain_bits)
        : bits_(bits), domainBits_(domain_bits)
    {}

    std::uint64_t rows() const override { return 1; }
    std::uint64_t cols() const override { return bits_; }

    PhysBit
    at(std::uint64_t, std::uint64_t col) const override
    {
        return {col, 0, col / domainBits_};
    }

  private:
    std::uint64_t bits_;
    unsigned domainBits_;
};

/**
 * Random store: some containers absent, some words empty, segment
 * chains with gaps that may extend past the sweep horizon, random
 * ACE/read masks (ACE kept a subset of read, per the lint contract).
 */
LifetimeStore
randomStore(Rng &rng, unsigned word_width,
            unsigned words_per_container,
            std::uint64_t num_containers, Cycle span)
{
    LifetimeStore store(word_width, words_per_container);
    const std::uint64_t width_mask =
        word_width >= 64 ? ~0ull : ((1ull << word_width) - 1);
    for (std::uint64_t c = 0; c < num_containers; ++c) {
        if (!rng.chance(0.8))
            continue;
        ContainerLifetime &container = store.container(c);
        for (unsigned w = 0; w < words_per_container; ++w) {
            if (!rng.chance(0.7))
                continue;
            Cycle t = rng.below(span / 2 + 1);
            const unsigned n = 1 + (unsigned)rng.below(5);
            for (unsigned s = 0; s < n; ++s) {
                const Cycle begin = t + rng.below(span / 4 + 1);
                const Cycle end = begin + 1 + rng.below(span / 3 + 1);
                const std::uint64_t read = rng.next() & width_mask;
                const std::uint64_t ace = rng.next() & read;
                container.words[w].append({begin, end, ace, read});
                t = end;
            }
        }
    }
    return store;
}

/**
 * Bit-exact equality, except both-NaN counts as equal: a zero-width
 * window (horizon < numWindows) divides 0 cycles by 0 on both paths.
 */
void
expectSameDouble(double a, double b, const std::string &at)
{
    if (std::isnan(a) && std::isnan(b))
        return;
    EXPECT_EQ(a, b) << at;
}

void
expectIdentical(const ModeSweep &ref, const ModeSweep &got,
                const std::string &label)
{
    ASSERT_EQ(ref.results.size(), got.results.size()) << label;
    for (std::size_t m = 0; m < ref.results.size(); ++m) {
        const MbAvfResult &a = ref.results[m];
        const MbAvfResult &b = got.results[m];
        const std::string at = label + " mode " + std::to_string(m + 1);
        EXPECT_EQ(a.numGroups, b.numGroups) << at;
        EXPECT_EQ(a.horizon, b.horizon) << at;
        expectSameDouble(a.avf.sdc, b.avf.sdc, at);
        expectSameDouble(a.avf.trueDue, b.avf.trueDue, at);
        expectSameDouble(a.avf.falseDue, b.avf.falseDue, at);
        ASSERT_EQ(a.windows.size(), b.windows.size()) << at;
        for (std::size_t w = 0; w < a.windows.size(); ++w) {
            const std::string win = at + " window " + std::to_string(w);
            expectSameDouble(a.windows[w].sdc, b.windows[w].sdc, win);
            expectSameDouble(a.windows[w].trueDue,
                             b.windows[w].trueDue, win);
            expectSameDouble(a.windows[w].falseDue,
                             b.windows[w].falseDue, win);
        }
    }
    auto fits = caseStudyFaultRates(100.0);
    const StructureSer sa = sweepSer(ref, fits);
    const StructureSer sb = sweepSer(got, fits);
    expectSameDouble(sa.sdc, sb.sdc, label);
    expectSameDouble(sa.trueDue, sb.trueDue, label);
    expectSameDouble(sa.falseDue, sb.falseDue, label);
}

/**
 * Sweep @p array / @p store through a random scheme, horizon, window
 * count, and combine rule, with the reference path and the arena
 * kernel — dispatched (AVX2 where available) and pinned scalar — at
 * 1 and 4 threads; all paths must agree exactly. @p forced_max_mode
 * of 0 draws a random mode count in [1, 8]; wide-mode callers pass
 * an explicit value up to 64.
 */
void
runTrial(const PhysicalArray &array, const LifetimeStore &store,
         Rng &rng, const std::string &label,
         unsigned forced_max_mode = 0)
{
    static const char *const kSchemes[] = {"none", "parity", "secded",
                                           "dected", "crc"};
    static const unsigned kWindows[] = {0, 1, 3, 8};
    const std::unique_ptr<ProtectionScheme> scheme =
        makeScheme(kSchemes[rng.below(5)]);
    MbAvfOptions opt;
    opt.horizon = 1 + rng.below(200);
    opt.numWindows = kWindows[rng.below(4)];
    opt.dueShieldsSdc = rng.chance(0.5);
    const unsigned max_mode = forced_max_mode
                                  ? forced_max_mode
                                  : 1 + (unsigned)rng.below(8);
    const std::string at = label + " (" + scheme->name() + " N=" +
                           std::to_string(opt.horizon) + " W=" +
                           std::to_string(opt.numWindows) + " M=" +
                           std::to_string(max_mode) + ")";

    MbAvfOptions ref_opt = opt;
    ref_opt.referenceKernel = true;
    const ModeSweep ref =
        sweepModes(array, store, *scheme, ref_opt, max_mode);

    expectIdentical(ref, sweepModes(array, store, *scheme, opt,
                                    max_mode),
                    at + " serial");

    MbAvfOptions scalar = opt;
    scalar.scalarKernel = true;
    expectIdentical(ref, sweepModes(array, store, *scheme, scalar,
                                    max_mode),
                    at + " scalar");

    MbAvfOptions pooled = opt;
    pooled.numThreads = 4;
    expectIdentical(ref, sweepModes(array, store, *scheme, pooled,
                                    max_mode),
                    at + " pooled");
}

TEST(SweepKernelFuzz, CacheLayouts)
{
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(splitMix64(0x5eedcafe, seed));
        CacheGeometry geom;
        geom.sets = 4u << rng.below(2);
        geom.ways = 2u << rng.below(2);
        geom.lineBytes = 2u << rng.below(2);
        static const CacheInterleave kStyles[] = {
            CacheInterleave::Logical, CacheInterleave::WayPhysical,
            CacheInterleave::IndexPhysical};
        const CacheInterleave style = kStyles[rng.below(3)];
        // 1 or 2 divides every sets/ways/lineBits choice above.
        const unsigned factor = 1u << rng.below(2);
        auto array = makeCacheArray(geom, style, factor);
        LifetimeStore store = randomStore(
            rng, 8, geom.lineBytes, geom.numLines(), 120);
        runTrial(*array, store, rng,
                 "cache " + cacheInterleaveName(style) + " seed " +
                     std::to_string(seed));
    }
}

TEST(SweepKernelFuzz, RegFileLayouts)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        Rng rng(splitMix64(0x2e9f11e, seed));
        RegFileGeometry geom;
        geom.numRegs = 4;
        geom.numLanes = 4;
        geom.numSlots = 2;
        const RegInterleave style = rng.chance(0.5)
                                        ? RegInterleave::IntraThread
                                        : RegInterleave::InterThread;
        const unsigned factor = 1 + (unsigned)rng.below(2);
        auto array = makeRegFileArray(geom, style, factor);
        LifetimeStore store =
            randomStore(rng, 32, 1, geom.numContainers(), 120);
        runTrial(*array, store, rng,
                 "regfile seed " + std::to_string(seed));
    }
}

TEST(SweepKernelFuzz, NarrowArrays)
{
    // cols in [1, 6] with max_mode up to 8: modes wider than the
    // array must agree on the zero-group result, and 1-bit words
    // exercise the narrowest mask path.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(splitMix64(0xf1a7, seed));
        const std::uint64_t bits = 1 + rng.below(6);
        const unsigned domain_bits = 1 + (unsigned)rng.below(3);
        FlatArray array(bits, domain_bits);
        LifetimeStore store = randomStore(rng, 1, 1, bits, 60);
        runTrial(array, store, rng,
                 "flat " + std::to_string(bits) + "b seed " +
                     std::to_string(seed));
    }
}

TEST(SweepKernelFuzz, WideModes)
{
    // max_mode in [9, 64]: multi-block vector lanes, blocksMax_
    // strides, lane padding past the last mode, and — with 1-bit
    // domains putting one region per column in the anchor window —
    // the >8-region setups whose lossy anchor signature must never
    // be trusted (a stale match here once swallowed the dead ->
    // live -> dead close and silently diverged from the scalar
    // kernel).
    static const unsigned kModes[] = {9, 16, 17, 33, 64};
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(splitMix64(0x71de60de, seed));
        const unsigned max_mode = kModes[rng.below(5)];
        const std::uint64_t bits = max_mode + rng.below(24);
        const unsigned domain_bits = 1 + (unsigned)rng.below(2);
        FlatArray array(bits, domain_bits);
        LifetimeStore store = randomStore(rng, 1, 1, bits, 120);
        runTrial(array, store, rng,
                 "wide M=" + std::to_string(max_mode) + " " +
                     std::to_string(bits) + "b seed " +
                     std::to_string(seed),
                 max_mode);
    }
}

TEST(SweepKernelFuzz, ExtremeHorizons)
{
    // Lifetimes and horizons pushed against the top of the Cycle
    // range: window-boundary, projected-transition, and run-length
    // arithmetic must not wrap (satAdd in the event builders,
    // __int128 window bounds in the accumulator, and the kernel's
    // rule that closes at or past the horizon never materialize).
    constexpr Cycle kMax = ~Cycle(0);
    FlatArray array(6, 2);
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < 6; ++b) {
        WordLifetime &word = store.container(b).words[0];
        word.append({0, 5, 1, 1});
        word.append({kMax / 2, kMax / 2 + 9, 1, 1});
        word.append({kMax - 40, kMax - 2 + (b % 3), 1, 1});
    }
    const std::unique_ptr<ProtectionScheme> scheme =
        makeScheme("parity");
    for (const Cycle horizon : {kMax, kMax - 1, kMax - 30}) {
        for (const unsigned windows : {0u, 3u}) {
            MbAvfOptions opt;
            opt.horizon = horizon;
            opt.numWindows = windows;
            MbAvfOptions ref_opt = opt;
            ref_opt.referenceKernel = true;
            const ModeSweep ref =
                sweepModes(array, store, *scheme, ref_opt, 8);
            const std::string at =
                "extreme horizon " +
                std::to_string(kMax - horizon) + " below max, W=" +
                std::to_string(windows);
            expectIdentical(ref,
                            sweepModes(array, store, *scheme, opt, 8),
                            at);
            MbAvfOptions scalar = opt;
            scalar.scalarKernel = true;
            expectIdentical(ref,
                            sweepModes(array, store, *scheme, scalar,
                                       8),
                            at + " scalar");
            MbAvfOptions pooled = opt;
            pooled.numThreads = 4;
            expectIdentical(ref,
                            sweepModes(array, store, *scheme, pooled,
                                       8),
                            at + " pooled");
        }
    }
}

TEST(SweepKernelFuzz, TinyHorizonManyWindows)
{
    // More windows than cycles: several window boundaries coincide,
    // the degenerate case of the cached-bounds window lookup.
    Rng rng(splitMix64(0xbeef, 1));
    FlatArray array(6, 2);
    LifetimeStore store = randomStore(rng, 1, 1, 6, 8);
    const std::unique_ptr<ProtectionScheme> scheme =
        makeScheme("parity");
    MbAvfOptions opt;
    opt.horizon = 5;
    opt.numWindows = 8;
    MbAvfOptions ref_opt = opt;
    ref_opt.referenceKernel = true;
    expectIdentical(sweepModes(array, store, *scheme, ref_opt, 8),
                    sweepModes(array, store, *scheme, opt, 8),
                    "tiny horizon");
}

} // namespace
} // namespace mbavf
