/**
 * @file
 * Tests for physical layouts and interleaving styles.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/layout.hh"

namespace mbavf
{
namespace
{

/** Every (container, bit) pair must appear exactly once. */
void
expectBijective(const PhysicalArray &array, std::uint64_t containers,
                unsigned bits_per_container)
{
    std::set<std::pair<std::uint64_t, std::uint32_t>> seen;
    for (std::uint64_t r = 0; r < array.rows(); ++r) {
        for (std::uint64_t c = 0; c < array.cols(); ++c) {
            PhysBit b = array.at(r, c);
            EXPECT_LT(b.container, containers);
            EXPECT_LT(b.bitInContainer, bits_per_container);
            auto inserted =
                seen.insert({b.container, b.bitInContainer});
            EXPECT_TRUE(inserted.second)
                << "duplicate at row " << r << " col " << c;
        }
    }
    EXPECT_EQ(seen.size(), containers * bits_per_container);
}

CacheGeometry
smallCache()
{
    return CacheGeometry{8, 4, 16}; // 8 sets, 4 ways, 16B lines
}

TEST(CacheLayout, LogicalBijective)
{
    auto a = makeCacheArray(smallCache(), CacheInterleave::Logical, 2);
    expectBijective(*a, 32, 128);
}

TEST(CacheLayout, WayPhysicalBijective)
{
    auto a =
        makeCacheArray(smallCache(), CacheInterleave::WayPhysical, 2);
    expectBijective(*a, 32, 128);
}

TEST(CacheLayout, IndexPhysicalBijective)
{
    auto a =
        makeCacheArray(smallCache(), CacheInterleave::IndexPhysical, 4);
    expectBijective(*a, 32, 128);
}

TEST(CacheLayout, TotalBitsInvariant)
{
    CacheGeometry g = smallCache();
    std::uint64_t expect =
        std::uint64_t(g.numLines()) * g.lineBits();
    for (auto style : {CacheInterleave::Logical,
                       CacheInterleave::WayPhysical,
                       CacheInterleave::IndexPhysical}) {
        for (unsigned i : {1u, 2u, 4u}) {
            auto a = makeCacheArray(g, style, i);
            EXPECT_EQ(a->totalBits(), expect);
        }
    }
}

TEST(CacheLayout, LogicalAdjacentBitsSameLineDifferentDomains)
{
    auto a = makeCacheArray(smallCache(), CacheInterleave::Logical, 2);
    for (std::uint64_t c = 0; c + 1 < a->cols(); ++c) {
        PhysBit b0 = a->at(3, c);
        PhysBit b1 = a->at(3, c + 1);
        EXPECT_EQ(b0.container, b1.container);
        EXPECT_NE(b0.domain, b1.domain);
    }
}

TEST(CacheLayout, WayPhysicalAdjacentBitsDifferentWays)
{
    CacheGeometry g = smallCache();
    auto a = makeCacheArray(g, CacheInterleave::WayPhysical, 2);
    for (std::uint64_t c = 0; c + 1 < a->cols(); ++c) {
        PhysBit b0 = a->at(0, c);
        PhysBit b1 = a->at(0, c + 1);
        EXPECT_NE(b0.container, b1.container);
        // Same set: containers are set-major.
        EXPECT_EQ(b0.container / g.ways, b1.container / g.ways);
        EXPECT_NE(b0.domain, b1.domain);
    }
}

TEST(CacheLayout, IndexPhysicalAdjacentBitsAdjacentSets)
{
    CacheGeometry g = smallCache();
    auto a = makeCacheArray(g, CacheInterleave::IndexPhysical, 2);
    PhysBit b0 = a->at(0, 0);
    PhysBit b1 = a->at(0, 1);
    unsigned set0 = static_cast<unsigned>(b0.container / g.ways);
    unsigned set1 = static_cast<unsigned>(b1.container / g.ways);
    unsigned way0 = static_cast<unsigned>(b0.container % g.ways);
    unsigned way1 = static_cast<unsigned>(b1.container % g.ways);
    EXPECT_EQ(way0, way1);
    EXPECT_EQ(set1, set0 + 1);
}

TEST(CacheLayout, InterleaveOneStylesCoincide)
{
    CacheGeometry g = smallCache();
    auto logical = makeCacheArray(g, CacheInterleave::Logical, 1);
    auto way = makeCacheArray(g, CacheInterleave::WayPhysical, 1);
    ASSERT_EQ(logical->rows(), way->rows());
    ASSERT_EQ(logical->cols(), way->cols());
    for (std::uint64_t r = 0; r < logical->rows(); ++r) {
        for (std::uint64_t c = 0; c < logical->cols(); c += 7) {
            PhysBit a = logical->at(r, c);
            PhysBit b = way->at(r, c);
            EXPECT_EQ(a.container, b.container);
            EXPECT_EQ(a.bitInContainer, b.bitInContainer);
        }
    }
}

TEST(CacheLayout, ColumnCountScalesWithInterleave)
{
    CacheGeometry g = smallCache();
    auto x2 = makeCacheArray(g, CacheInterleave::WayPhysical, 2);
    auto x4 = makeCacheArray(g, CacheInterleave::WayPhysical, 4);
    EXPECT_EQ(x2->cols(), std::uint64_t(g.lineBits()) * 2);
    EXPECT_EQ(x4->cols(), std::uint64_t(g.lineBits()) * 4);
}

RegFileGeometry
smallRegs()
{
    return RegFileGeometry{8, 16, 2, 32};
}

TEST(RegLayout, IntraThreadBijective)
{
    auto a =
        makeRegFileArray(smallRegs(), RegInterleave::IntraThread, 2);
    expectBijective(*a, smallRegs().numContainers(), 32);
}

TEST(RegLayout, InterThreadBijective)
{
    auto a =
        makeRegFileArray(smallRegs(), RegInterleave::InterThread, 4);
    expectBijective(*a, smallRegs().numContainers(), 32);
}

TEST(RegLayout, IntraThreadAdjacencyIsSameLane)
{
    RegFileGeometry g = smallRegs();
    auto a = makeRegFileArray(g, RegInterleave::IntraThread, 2);
    // Adjacent columns: same lane, different registers.
    PhysBit b0 = a->at(0, 0);
    PhysBit b1 = a->at(0, 1);
    unsigned lane0 = static_cast<unsigned>(b0.container % g.numLanes);
    unsigned lane1 = static_cast<unsigned>(b1.container % g.numLanes);
    EXPECT_EQ(lane0, lane1);
    EXPECT_NE(b0.container, b1.container);
}

TEST(RegLayout, InterThreadAdjacencyIsSameRegister)
{
    RegFileGeometry g = smallRegs();
    auto a = makeRegFileArray(g, RegInterleave::InterThread, 2);
    PhysBit b0 = a->at(0, 0);
    PhysBit b1 = a->at(0, 1);
    unsigned lane0 = static_cast<unsigned>(b0.container % g.numLanes);
    unsigned lane1 = static_cast<unsigned>(b1.container % g.numLanes);
    EXPECT_EQ(lane1, lane0 + 1);
    EXPECT_EQ(b0.container / g.numLanes, b1.container / g.numLanes);
}

TEST(RegLayout, EveryRegisterIsItsOwnDomain)
{
    RegFileGeometry g = smallRegs();
    auto a = makeRegFileArray(g, RegInterleave::InterThread, 2);
    for (std::uint64_t r = 0; r < a->rows(); r += 3) {
        for (std::uint64_t c = 0; c < a->cols(); c += 5) {
            PhysBit b = a->at(r, c);
            EXPECT_EQ(b.domain, b.container);
        }
    }
}

} // namespace
} // namespace mbavf
