/**
 * @file
 * Property test: the MB-AVF engine against a brute-force oracle.
 *
 * The oracle classifies every (group, cycle) pair independently by
 * direct per-bit classAt() queries and explicit region logic; the
 * engine's swept totals must match exactly on randomized lifetimes,
 * layouts, schemes, and fault modes.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "core/mbavf.hh"

namespace mbavf
{
namespace
{

/** Random flat array: 1 row of bits, 1-bit containers. */
class FlatArray : public PhysicalArray
{
  public:
    FlatArray(std::uint64_t bits, unsigned domain_bits)
        : bits_(bits), domainBits_(domain_bits)
    {}

    std::uint64_t rows() const override { return 1; }
    std::uint64_t cols() const override { return bits_; }

    PhysBit
    at(std::uint64_t, std::uint64_t col) const override
    {
        return {col, 0, col / domainBits_};
    }

  private:
    std::uint64_t bits_;
    unsigned domainBits_;
};

AceClass
bitClassAt(const LifetimeStore &store, std::uint64_t bit, Cycle t)
{
    unsigned bit_in_word;
    const WordLifetime *w = store.findBit(bit, 0, bit_in_word);
    return w ? w->classAt(bit_in_word, t) : AceClass::Unace;
}

/** Direct evaluation of the model definition for one group-cycle. */
Outcome
oracleOutcome(const FlatArray &array, const LifetimeStore &store,
              const ProtectionScheme &scheme, const FaultMode &mode,
              std::uint64_t anchor, Cycle t, bool due_shields_sdc)
{
    // Regions by domain.
    std::map<DomainId, std::vector<std::uint64_t>> regions;
    for (const PatternOffset &o : mode.offsets()) {
        PhysBit b = array.at(0, anchor + o.dCol);
        regions[b.domain].push_back(b.container);
    }
    bool has_sdc = false, has_tdue = false, has_fdue = false;
    for (const auto &[domain, bits] : regions) {
        FaultAction action =
            scheme.action(static_cast<unsigned>(bits.size()));
        bool live = false, read = false;
        for (std::uint64_t b : bits) {
            AceClass c = bitClassAt(store, b, t);
            live |= c == AceClass::AceLive;
            read |= c != AceClass::Unace;
        }
        switch (action) {
          case FaultAction::Corrected:
            break;
          case FaultAction::Detected:
            if (live)
                has_tdue = true;
            else if (read)
                has_fdue = true;
            break;
          case FaultAction::Undetected:
            if (live)
                has_sdc = true;
            break;
        }
    }
    if (has_sdc && has_tdue && due_shields_sdc)
        return Outcome::TrueDue;
    if (has_sdc)
        return Outcome::Sdc;
    if (has_tdue)
        return Outcome::TrueDue;
    if (has_fdue)
        return Outcome::FalseDue;
    return Outcome::Unace;
}

class MbAvfOracleTest : public ::testing::TestWithParam<int>
{
};

TEST_P(MbAvfOracleTest, EngineMatchesBruteForce)
{
    Rng rng(GetParam() * 104729 + 17);
    const std::uint64_t bits = 24;
    // Deliberately not divisible by the window count to exercise
    // the exact integer window boundaries.
    const Cycle horizon = 59;
    const unsigned domain_bits = 1u << rng.below(3); // 1, 2, or 4
    const unsigned mode_bits =
        1 + static_cast<unsigned>(rng.below(6));
    const bool shields = rng.chance(0.5);

    FlatArray array(bits, domain_bits);
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < bits; ++b) {
        if (rng.chance(0.25))
            continue; // untouched bit
        auto &word = store.container(b).words[0];
        Cycle t = rng.below(10);
        while (t < horizon) {
            Cycle e = t + 1 + rng.below(15);
            LifeSegment seg{t, e, 0, 0};
            double roll = rng.uniform();
            if (roll < 0.4) {
                seg.aceMask = seg.readMask = 1;
            } else if (roll < 0.7) {
                seg.readMask = 1;
            }
            word.append(seg);
            t = e + rng.below(8);
        }
    }

    std::unique_ptr<ProtectionScheme> scheme;
    switch (rng.below(3)) {
      case 0: scheme = makeScheme("parity"); break;
      case 1: scheme = makeScheme("secded"); break;
      default: scheme = makeScheme("none"); break;
    }

    FaultMode mode = FaultMode::mx1(mode_bits);
    constexpr unsigned num_windows = 4;
    MbAvfOptions opt;
    opt.horizon = horizon;
    opt.dueShieldsSdc = shields;
    opt.numWindows = num_windows;
    MbAvfResult engine =
        computeMbAvf(array, store, *scheme, mode, opt);

    // Brute force over every (group, cycle), whole-run and windowed.
    std::uint64_t sdc = 0, tdue = 0, fdue = 0;
    std::uint64_t win_counts[num_windows][3] = {};
    std::uint64_t groups = mode.numGroups(1, bits);
    // Window w covers [w*H/W, (w+1)*H/W) with integer (floor)
    // boundaries — the engine's partition.
    auto bound = [&](unsigned w) {
        return static_cast<Cycle>(horizon * w / num_windows);
    };
    auto window_of = [&](Cycle t) {
        unsigned w = 0;
        while (w + 1 < num_windows && bound(w + 1) <= t)
            ++w;
        return w;
    };
    for (std::uint64_t g = 0; g < groups; ++g) {
        for (Cycle t = 0; t < horizon; ++t) {
            unsigned w = window_of(t);
            switch (oracleOutcome(array, store, *scheme, mode, g, t,
                                  shields)) {
              case Outcome::Sdc:
                ++sdc;
                ++win_counts[w][0];
                break;
              case Outcome::TrueDue:
                ++tdue;
                ++win_counts[w][1];
                break;
              case Outcome::FalseDue:
                ++fdue;
                ++win_counts[w][2];
                break;
              case Outcome::Unace:
                break;
            }
        }
    }
    const double denom =
        static_cast<double>(groups) * static_cast<double>(horizon);
    EXPECT_NEAR(engine.avf.sdc, sdc / denom, 1e-12);
    EXPECT_NEAR(engine.avf.trueDue, tdue / denom, 1e-12);
    EXPECT_NEAR(engine.avf.falseDue, fdue / denom, 1e-12);

    ASSERT_EQ(engine.windows.size(), num_windows);
    for (unsigned w = 0; w < num_windows; ++w) {
        const double win_denom =
            static_cast<double>(bound(w + 1) - bound(w)) * groups;
        EXPECT_NEAR(engine.windows[w].sdc,
                    win_counts[w][0] / win_denom, 1e-12)
            << "window " << w;
        EXPECT_NEAR(engine.windows[w].trueDue,
                    win_counts[w][1] / win_denom, 1e-12)
            << "window " << w;
        EXPECT_NEAR(engine.windows[w].falseDue,
                    win_counts[w][2] / win_denom, 1e-12)
            << "window " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(Random, MbAvfOracleTest,
                         ::testing::Range(0, 24));

/** Multi-row patterns against brute force on a small grid. */
TEST(MbAvfOracle2D, RectAndLShapeMatchBruteForce)
{
    // 6 rows x 10 cols grid; each bit its own container; domains
    // group 2 adjacent columns within a row.
    class GridArray : public PhysicalArray
    {
      public:
        std::uint64_t rows() const override { return 6; }
        std::uint64_t cols() const override { return 10; }
        PhysBit
        at(std::uint64_t row, std::uint64_t col) const override
        {
            std::uint64_t bit = row * 10 + col;
            return {bit, 0, row * 5 + col / 2};
        }
    } grid;

    Rng rng(404);
    const Cycle horizon = 40;
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < 60; ++b) {
        if (rng.chance(0.3))
            continue;
        Cycle t = rng.below(10);
        while (t < horizon) {
            Cycle e = t + 1 + rng.below(12);
            LifeSegment seg{t, e, 0, 0};
            if (rng.chance(0.5)) {
                seg.aceMask = seg.readMask = 1;
            } else {
                seg.readMask = 1;
            }
            store.container(b).words[0].append(seg);
            t = e + rng.below(6);
        }
    }

    ParityScheme parity;
    const std::vector<FaultMode> modes = {
        FaultMode::rect(2, 2),
        FaultMode("L", {{0, 0}, {1, 0}, {1, 1}}),
        FaultMode("col3", {{0, 0}, {1, 0}, {2, 0}}),
    };
    for (const FaultMode &mode : modes) {
        MbAvfOptions opt;
        opt.horizon = horizon;
        MbAvfResult engine =
            computeMbAvf(grid, store, parity, mode, opt);

        std::uint64_t sdc = 0, tdue = 0, fdue = 0;
        std::uint64_t span_r = mode.maxDRow() + 1;
        std::uint64_t span_c = mode.maxDCol() + 1;
        std::uint64_t groups = 0;
        for (std::uint64_t r = 0; r + span_r <= 6; ++r) {
            for (std::uint64_t c = 0; c + span_c <= 10; ++c) {
                ++groups;
                for (Cycle t = 0; t < horizon; ++t) {
                    // Direct region classification.
                    std::map<DomainId, std::pair<bool, bool>> regions;
                    for (const PatternOffset &o : mode.offsets()) {
                        PhysBit b =
                            grid.at(r + o.dRow, c + o.dCol);
                        AceClass cls =
                            bitClassAt(store, b.container, t);
                        auto &[live, read] = regions[b.domain];
                        live |= cls == AceClass::AceLive;
                        read |= cls != AceClass::Unace;
                    }
                    std::map<DomainId, unsigned> sizes;
                    for (const PatternOffset &o : mode.offsets())
                        ++sizes[grid.at(r + o.dRow, c + o.dCol)
                                    .domain];
                    bool s = false, td = false, fd = false;
                    for (const auto &[dom, lr] : regions) {
                        switch (parity.action(sizes[dom])) {
                          case FaultAction::Corrected:
                            break;
                          case FaultAction::Detected:
                            if (lr.first)
                                td = true;
                            else if (lr.second)
                                fd = true;
                            break;
                          case FaultAction::Undetected:
                            if (lr.first)
                                s = true;
                            break;
                        }
                    }
                    if (s)
                        ++sdc;
                    else if (td)
                        ++tdue;
                    else if (fd)
                        ++fdue;
                }
            }
        }
        ASSERT_EQ(engine.numGroups, groups) << mode.name();
        const double denom = static_cast<double>(groups) * horizon;
        EXPECT_NEAR(engine.avf.sdc, sdc / denom, 1e-12)
            << mode.name();
        EXPECT_NEAR(engine.avf.trueDue, tdue / denom, 1e-12)
            << mode.name();
        EXPECT_NEAR(engine.avf.falseDue, fdue / denom, 1e-12)
            << mode.name();
    }
}

TEST(MbAvfThreading, ParallelSweepIsBitExact)
{
    Rng rng(20260704);
    const std::uint64_t bits = 512;
    FlatArray array(bits, 4);
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < bits; ++b) {
        if (rng.chance(0.3))
            continue;
        auto &word = store.container(b).words[0];
        Cycle t = rng.below(50);
        for (int s = 0; s < 10; ++s) {
            Cycle e = t + 1 + rng.below(40);
            word.append({t, e, rng.chance(0.5) ? 1u : 0u, 1});
            t = e + 1 + rng.below(20);
        }
    }

    // A multi-row view: reinterpret as 8 rows x 64 cols by wrapping.
    class GridArray : public PhysicalArray
    {
      public:
        std::uint64_t rows() const override { return 8; }
        std::uint64_t cols() const override { return 64; }
        PhysBit
        at(std::uint64_t row, std::uint64_t col) const override
        {
            std::uint64_t bit = row * 64 + col;
            return {bit, 0, bit / 4};
        }
    } grid;

    ParityScheme parity;
    MbAvfOptions serial;
    serial.horizon = 400;
    serial.numWindows = 5;
    serial.numThreads = 1;
    MbAvfOptions parallel = serial;
    parallel.numThreads = 4;

    for (unsigned m : {1u, 3u, 8u}) {
        MbAvfResult a = computeMbAvf(grid, store, parity,
                                     FaultMode::mx1(m), serial);
        MbAvfResult b = computeMbAvf(grid, store, parity,
                                     FaultMode::mx1(m), parallel);
        EXPECT_EQ(a.avf.sdc, b.avf.sdc) << m;
        EXPECT_EQ(a.avf.trueDue, b.avf.trueDue) << m;
        EXPECT_EQ(a.avf.falseDue, b.avf.falseDue) << m;
        ASSERT_EQ(a.windows.size(), b.windows.size());
        for (std::size_t w = 0; w < a.windows.size(); ++w) {
            EXPECT_EQ(a.windows[w].sdc, b.windows[w].sdc);
            EXPECT_EQ(a.windows[w].trueDue, b.windows[w].trueDue);
        }
    }
}

} // namespace
} // namespace mbavf
