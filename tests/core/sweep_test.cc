/**
 * @file
 * Tests for the mode-sweep and SER convenience API.
 */

#include <gtest/gtest.h>

#include "core/sweep.hh"

namespace mbavf
{
namespace
{

/** One-row array of 1-bit containers grouped into 8-bit domains. */
class FlatArray : public PhysicalArray
{
  public:
    explicit FlatArray(std::uint64_t bits) : bits_(bits) {}

    std::uint64_t rows() const override { return 1; }
    std::uint64_t cols() const override { return bits_; }

    PhysBit
    at(std::uint64_t, std::uint64_t col) const override
    {
        return {col, 0, col / 8};
    }

  private:
    std::uint64_t bits_;
};

LifetimeStore
allAceStore(std::uint64_t bits, Cycle horizon)
{
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < bits; ++b) {
        store.container(b).words[0].append(
            {0, horizon, 1, 1});
    }
    return store;
}

TEST(Sweep, SweepsAllModes)
{
    FlatArray array(32);
    LifetimeStore store = allAceStore(32, 100);
    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = 100;

    ModeSweep sweep = sweepModes(array, store, parity, opt);
    ASSERT_EQ(sweep.results.size(), maxTabulatedMode);
    // Fully-ACE structure: odd modes detected (DUE 1.0), even modes
    // undetected within one domain... mode 2 inside an 8-bit domain
    // is 2 flips -> undetected -> SDC.
    EXPECT_DOUBLE_EQ(sweep.avf(1).due(), 1.0);
    EXPECT_GT(sweep.avf(2).sdc, 0.9);
}

TEST(Sweep, SerFoldsRates)
{
    FlatArray array(32);
    LifetimeStore store = allAceStore(32, 100);
    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = 100;

    ModeSweep sweep = sweepModes(array, store, parity, opt, 2);
    std::array<double, 2> fits = {90.0, 10.0};
    StructureSer ser = sweepSer(sweep, fits);
    EXPECT_NEAR(ser.due(), 90.0 * sweep.avf(1).due() +
                               10.0 * sweep.avf(2).due(),
                1e-9);
    EXPECT_NEAR(ser.sdc, 10.0 * sweep.avf(2).sdc, 1e-9);
}

TEST(Sweep, OneCallSerMatchesManual)
{
    FlatArray array(32);
    LifetimeStore store = allAceStore(32, 100);
    SecDedScheme secded;
    MbAvfOptions opt;
    opt.horizon = 100;

    StructureSer one =
        computeStructureSer(array, store, secded, opt, 100.0);
    ModeSweep sweep = sweepModes(array, store, secded, opt);
    auto fits = caseStudyFaultRates(100.0);
    StructureSer manual = sweepSer(sweep, fits);
    EXPECT_DOUBLE_EQ(one.sdc, manual.sdc);
    EXPECT_DOUBLE_EQ(one.trueDue, manual.trueDue);
    EXPECT_DOUBLE_EQ(one.falseDue, manual.falseDue);
}

TEST(Sweep, ParallelSweepIsBitIdenticalToSerial)
{
    // A mixed store (some bits dead, varied segment shapes) swept
    // serially and on the shared pool must agree exactly — AVF
    // fractions and the per-window series.
    FlatArray array(64);
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < 64; b += 3) {
        store.container(b).words[0].append(
            {b, 60 + b, (b % 2) ? 1u : 0u, 1});
    }
    ParityScheme parity;
    MbAvfOptions serial;
    serial.horizon = 128;
    serial.numWindows = 4;
    serial.numThreads = 1;
    MbAvfOptions parallel = serial;
    parallel.numThreads = 4;

    ModeSweep a = sweepModes(array, store, parity, serial);
    ModeSweep b = sweepModes(array, store, parity, parallel);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t m = 0; m < a.results.size(); ++m) {
        EXPECT_EQ(a.results[m].avf.sdc, b.results[m].avf.sdc) << m;
        EXPECT_EQ(a.results[m].avf.trueDue, b.results[m].avf.trueDue)
            << m;
        EXPECT_EQ(a.results[m].avf.falseDue,
                  b.results[m].avf.falseDue)
            << m;
        ASSERT_EQ(a.results[m].windows.size(),
                  b.results[m].windows.size());
        for (std::size_t w = 0; w < a.results[m].windows.size();
             ++w) {
            EXPECT_EQ(a.results[m].windows[w].sdc,
                      b.results[m].windows[w].sdc);
            EXPECT_EQ(a.results[m].windows[w].trueDue,
                      b.results[m].windows[w].trueDue);
            EXPECT_EQ(a.results[m].windows[w].falseDue,
                      b.results[m].windows[w].falseDue);
        }
    }

    auto fits = caseStudyFaultRates(100.0);
    StructureSer sa = sweepSer(a, fits);
    StructureSer sb = sweepSer(b, fits);
    EXPECT_EQ(sa.sdc, sb.sdc);
    EXPECT_EQ(sa.trueDue, sb.trueDue);
    EXPECT_EQ(sa.falseDue, sb.falseDue);
}

TEST(Sweep, SerScalesWithTotalFit)
{
    FlatArray array(32);
    LifetimeStore store = allAceStore(32, 100);
    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = 100;

    StructureSer a =
        computeStructureSer(array, store, parity, opt, 100.0);
    StructureSer b =
        computeStructureSer(array, store, parity, opt, 300.0);
    EXPECT_NEAR(b.total(), 3.0 * a.total(), 1e-9);
}

} // namespace
} // namespace mbavf
