/**
 * @file
 * LifetimeArena snapshot tests: handle lookup parity with the source
 * store, (offset, count) tiling of the flat segment arrays, and
 * deterministic (container, word) layout order.
 */

#include <gtest/gtest.h>

#include <utility>

#include "core/lifetime.hh"
#include "core/lifetime_arena.hh"

namespace mbavf
{
namespace
{

/** Empty words, an untouched container, and varied segment shapes. */
LifetimeStore
mixedStore()
{
    LifetimeStore store(8, 4);
    for (unsigned w = 0; w < 4; ++w) {
        store.container(5).words[w].append({w, 10 + w, 0x0f, 0x0f});
        store.container(5).words[w].append({20, 30, 0x01, 0x03});
    }
    store.container(3).words[2].append({5, 9, 0x80, 0x80});
    store.container(7); // touched, but every word left empty
    return store;
}

TEST(LifetimeArena, CountsOnlyNonEmptyWords)
{
    LifetimeStore store = mixedStore();
    LifetimeArena arena(store);
    EXPECT_EQ(arena.wordWidth(), 8u);
    EXPECT_EQ(arena.wordsPerContainer(), 4u);
    EXPECT_EQ(arena.numWords(), 5u);
    EXPECT_EQ(arena.numSegments(), 9u);
}

TEST(LifetimeArena, FindParityWithStore)
{
    LifetimeStore store = mixedStore();
    LifetimeArena arena(store);

    // Every addressable bit, including absent containers and empty
    // words, resolves the same way through both lookups.
    for (std::uint64_t c = 0; c < 10; ++c) {
        for (unsigned b = 0; b < store.containerBits(); ++b) {
            unsigned store_bit = 0;
            unsigned arena_bit = 0;
            const WordLifetime *word = store.findBit(c, b, store_bit);
            const std::uint32_t handle =
                arena.findBit(c, b, arena_bit);
            EXPECT_EQ(arena_bit, store_bit) << c << ":" << b;
            if (!word || word->empty()) {
                EXPECT_EQ(handle, LifetimeArena::noWord)
                    << c << ":" << b;
                continue;
            }
            ASSERT_NE(handle, LifetimeArena::noWord)
                << c << ":" << b;
            EXPECT_EQ(arena.wordContainer(handle), c);
            EXPECT_EQ(arena.wordIndex(handle), b / 8);
        }
    }
}

TEST(LifetimeArena, OffsetsTileTheSegmentArrays)
{
    LifetimeStore store = mixedStore();
    LifetimeArena arena(store);

    std::uint32_t expect_offset = 0;
    for (std::uint32_t w = 0; w < arena.numWords(); ++w) {
        EXPECT_EQ(arena.offset(w), expect_offset);
        const WordLifetime *word =
            store.find(arena.wordContainer(w), arena.wordIndex(w));
        ASSERT_NE(word, nullptr);
        ASSERT_EQ(arena.count(w), word->segments().size());
        for (std::uint32_t s = 0; s < arena.count(w); ++s) {
            const LifeSegment &seg = word->segments()[s];
            const std::uint32_t slot = arena.offset(w) + s;
            EXPECT_EQ(arena.begins()[slot], seg.begin);
            EXPECT_EQ(arena.ends()[slot], seg.end);
            EXPECT_EQ(arena.masks()[slot].ace, seg.aceMask);
            EXPECT_EQ(arena.masks()[slot].read, seg.readMask);
        }
        expect_offset += arena.count(w);
    }
    EXPECT_EQ(expect_offset, arena.numSegments());
}

TEST(LifetimeArena, LayoutIsDeterministicAndOrdered)
{
    LifetimeStore store = mixedStore();
    LifetimeArena a(store);
    LifetimeArena b(store);

    ASSERT_EQ(a.numWords(), b.numWords());
    std::pair<std::uint64_t, unsigned> prev{0, 0};
    for (std::uint32_t w = 0; w < a.numWords(); ++w) {
        EXPECT_EQ(a.wordContainer(w), b.wordContainer(w));
        EXPECT_EQ(a.wordIndex(w), b.wordIndex(w));
        // Handles ascend in (container id, word index) order, so the
        // layout is a pure function of the store contents.
        std::pair<std::uint64_t, unsigned> cur{a.wordContainer(w),
                                               a.wordIndex(w)};
        if (w > 0) {
            EXPECT_LT(prev, cur);
        }
        prev = cur;
    }
}

// Regression: out-of-range queries must answer noWord, never index
// the handle block (or divide by zero) — an interleaved layout can
// legitimately address a word index at the container width, and a
// disk loader hands out default-constructed arenas on its error
// paths.
TEST(LifetimeArena, OutOfRangeLookupsAnswerNoWord)
{
    LifetimeStore store = mixedStore();
    LifetimeArena arena(store);

    // Word index at and beyond the configured width, on a container
    // that exists (its handle block has exactly width slots).
    EXPECT_EQ(arena.findWord(5, 4), LifetimeArena::noWord);
    EXPECT_EQ(arena.findWord(5, 1000), LifetimeArena::noWord);
    // Absent container.
    EXPECT_EQ(arena.findWord(999, 0), LifetimeArena::noWord);
    // findBit at the first bit past the container: maps to word
    // index wordsPerContainer(), which has no handle slot.
    unsigned bit = 42;
    EXPECT_EQ(arena.findBit(5, 4 * 8, bit), LifetimeArena::noWord);
    EXPECT_EQ(bit, 0u);
}

TEST(LifetimeArena, DefaultConstructedArenaIsEmpty)
{
    LifetimeArena arena;
    EXPECT_EQ(arena.wordWidth(), 0u);
    EXPECT_EQ(arena.numWords(), 0u);
    EXPECT_EQ(arena.numSegments(), 0u);
    EXPECT_EQ(arena.numContainers(), 0u);
    // findBit on a zero-width arena must not divide by zero.
    unsigned bit = 42;
    EXPECT_EQ(arena.findBit(0, 0, bit), LifetimeArena::noWord);
    EXPECT_EQ(bit, 0u);
    EXPECT_EQ(arena.findWord(0, 0), LifetimeArena::noWord);
    EXPECT_EQ(arena.handleBlock(0), nullptr);
}

} // namespace
} // namespace mbavf
