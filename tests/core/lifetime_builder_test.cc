/**
 * @file
 * Tests for the backward lifetime builder: event semantics of
 * writes, live/dead reads, liveness resolution, and bit-exact
 * relevance refinement.
 */

#include <gtest/gtest.h>

#include "core/lifetime_builder.hh"

namespace mbavf
{
namespace
{

LivenessResolver
alwaysLive()
{
    return [](DefId) { return ~std::uint64_t(0); };
}

LivenessResolver
alwaysDead()
{
    return [](DefId) { return std::uint64_t(0); };
}

TEST(LifetimeBuilder, EmptyLogIsEmpty)
{
    WordEventLog log;
    WordLifetime lt = buildWordLifetime(log, 100, 8, alwaysLive());
    EXPECT_TRUE(lt.empty());
}

TEST(LifetimeBuilder, WriteThenLiveRead)
{
    WordEventLog log;
    log.write(10, 0xFF);
    log.read(40, 0xFF, noDef);
    WordLifetime lt = buildWordLifetime(log, 100, 8, alwaysLive());

    // Before the write: a fault is erased -> Unace.
    EXPECT_EQ(lt.classAt(0, 5), AceClass::Unace);
    // Between write and read: consumed live -> AceLive.
    EXPECT_EQ(lt.classAt(0, 10), AceClass::AceLive);
    EXPECT_EQ(lt.classAt(0, 39), AceClass::AceLive);
    // After the last read: Unace.
    EXPECT_EQ(lt.classAt(0, 40), AceClass::Unace);
    EXPECT_EQ(lt.aceCycles(0, 100), 30u);
}

TEST(LifetimeBuilder, DeadReadIsReadDead)
{
    WordEventLog log;
    log.write(0, 0xFF);
    log.read(20, 0xFF, /*def=*/7);
    WordLifetime lt = buildWordLifetime(log, 50, 8, alwaysDead());
    EXPECT_EQ(lt.classAt(3, 10), AceClass::ReadDead);
    EXPECT_EQ(lt.readDeadCycles(3, 50), 20u);
    EXPECT_EQ(lt.aceCycles(3, 50), 0u);
}

TEST(LifetimeBuilder, OverwriteEndsAceTime)
{
    WordEventLog log;
    log.write(0, 0xFF);
    log.read(10, 0xFF, noDef);
    log.write(30, 0xFF);
    log.read(60, 0xFF, noDef);
    WordLifetime lt = buildWordLifetime(log, 80, 8, alwaysLive());
    EXPECT_EQ(lt.classAt(0, 5), AceClass::AceLive);
    // Between last read and overwrite: Unace.
    EXPECT_EQ(lt.classAt(0, 15), AceClass::Unace);
    EXPECT_EQ(lt.classAt(0, 45), AceClass::AceLive);
    EXPECT_EQ(lt.aceCycles(0, 80), 10u + 30u);
}

TEST(LifetimeBuilder, PartialWriteOnlyClearsMaskedBits)
{
    WordEventLog log;
    log.write(0, 0xFF);
    log.write(10, 0x0F); // overwrite low nibble only
    log.read(30, 0xFF, noDef);
    WordLifetime lt = buildWordLifetime(log, 40, 8, alwaysLive());
    // High bits: ACE from 0; low bits: ACE only from 10.
    EXPECT_EQ(lt.classAt(7, 5), AceClass::AceLive);
    EXPECT_EQ(lt.classAt(0, 5), AceClass::Unace);
    EXPECT_EQ(lt.classAt(0, 15), AceClass::AceLive);
}

TEST(LifetimeBuilder, UnconsumedBitsOfReadWordAreReadDead)
{
    WordEventLog log;
    log.write(0, 0xFF);
    log.read(20, 0x01, noDef); // only bit 0 consumed
    WordLifetime lt = buildWordLifetime(log, 30, 8, alwaysLive());
    EXPECT_EQ(lt.classAt(0, 10), AceClass::AceLive);
    // Bits 1..7 are read out with the word but not consumed.
    EXPECT_EQ(lt.classAt(5, 10), AceClass::ReadDead);
}

TEST(LifetimeBuilder, ExactReadRefinesByConsumerRelevance)
{
    WordEventLog log;
    log.write(0, 0xFF);
    log.readExact(16, 0xFF, /*def=*/3, /*rel_shift=*/0);
    // Consumer only cares about bits 0-3.
    LivenessResolver live = [](DefId d) {
        return d == 3 ? std::uint64_t(0x0F) : 0;
    };
    WordLifetime lt = buildWordLifetime(log, 20, 8, live);
    EXPECT_EQ(lt.classAt(2, 8), AceClass::AceLive);
    EXPECT_EQ(lt.classAt(6, 8), AceClass::ReadDead);
}

TEST(LifetimeBuilder, ExactReadAppliesRelShift)
{
    // This word holds byte 2 of a 32-bit value: its bits are value
    // bits 16-23, so resolver relevance must be shifted by 16.
    WordEventLog log;
    log.write(0, 0xFF);
    log.readExact(10, 0xFF, /*def=*/9, /*rel_shift=*/16);
    LivenessResolver live = [](DefId) {
        return std::uint64_t(0x00FF0000); // value bits 16-23 matter
    };
    WordLifetime lt = buildWordLifetime(log, 12, 8, live);
    EXPECT_EQ(lt.classAt(0, 5), AceClass::AceLive);
    EXPECT_EQ(lt.classAt(7, 5), AceClass::AceLive);

    LivenessResolver other = [](DefId) {
        return std::uint64_t(0x000000FF); // low byte matters instead
    };
    WordLifetime lt2 = buildWordLifetime(log, 12, 8, other);
    EXPECT_EQ(lt2.classAt(0, 5), AceClass::ReadDead);
}

TEST(LifetimeBuilder, NonExactReadIsAllOrNothing)
{
    WordEventLog log;
    log.write(0, 0xFF);
    log.read(10, 0xF0, /*def=*/5);
    LivenessResolver live = [](DefId) {
        return std::uint64_t(1); // any nonzero relevance = live
    };
    WordLifetime lt = buildWordLifetime(log, 12, 8, live);
    EXPECT_EQ(lt.classAt(7, 5), AceClass::AceLive);
    EXPECT_EQ(lt.classAt(0, 5), AceClass::ReadDead);
}

TEST(LifetimeBuilder, TailAfterLastEventIsUnace)
{
    WordEventLog log;
    log.write(0, 0xFF);
    log.read(10, 0xFF, noDef);
    WordLifetime lt = buildWordLifetime(log, 100, 8, alwaysLive());
    EXPECT_EQ(lt.classAt(0, 50), AceClass::Unace);
    EXPECT_EQ(lt.classAt(0, 99), AceClass::Unace);
}

TEST(LifetimeBuilder, SameCycleWriteThenRead)
{
    // A miss fill and its consuming read land on the same cycle;
    // the fault before the fill must be erased.
    WordEventLog log;
    log.write(10, 0xFF);
    log.read(10, 0xFF, noDef);
    log.read(20, 0xFF, noDef);
    WordLifetime lt = buildWordLifetime(log, 30, 8, alwaysLive());
    EXPECT_EQ(lt.classAt(0, 5), AceClass::Unace);
    EXPECT_EQ(lt.classAt(0, 15), AceClass::AceLive);
}

TEST(LifetimeBuilder, MultipleReadsExtendAceTime)
{
    WordEventLog log;
    log.write(0, 0xFF);
    log.read(10, 0xFF, noDef);
    log.read(50, 0xFF, /*def=*/4);
    // Second read dead: ACE until first read, ReadDead between.
    WordLifetime lt = buildWordLifetime(log, 60, 8, alwaysDead());
    EXPECT_EQ(lt.classAt(0, 5), AceClass::AceLive);
    EXPECT_EQ(lt.classAt(0, 30), AceClass::ReadDead);
}

TEST(LifetimeBuilder, SegmentsCarryTheirProducersTag)
{
    // Two writes by different instructions: every segment between a
    // write and the next carries exactly that write's tag, and the
    // pre-first-write stretch stays untracked.
    WordEventLog log;
    const InstrTag t1 = makeInstrTag(0, 3);
    const InstrTag t2 = makeInstrTag(1, 8);
    log.read(5, 0xFF, noDef); // pre-write garbage, still read
    log.write(10, 0xFF, t1);
    log.read(20, 0xFF, noDef);
    log.write(30, 0xFF, t2);
    log.read(45, 0xFF, noDef);
    WordLifetime lt = buildWordLifetime(log, 60, 8, alwaysLive());

    for (const LifeSegment &seg : lt.segments()) {
        if (seg.end <= 10) {
            EXPECT_EQ(seg.tag, noInstrTag)
                << "[" << seg.begin << "," << seg.end << ")";
        } else if (seg.end <= 30) {
            EXPECT_EQ(seg.tag, t1)
                << "[" << seg.begin << "," << seg.end << ")";
        } else {
            EXPECT_EQ(seg.tag, t2)
                << "[" << seg.begin << "," << seg.end << ")";
        }
    }
}

TEST(LifetimeBuilder, UntaggedWritesYieldUntaggedSegments)
{
    WordEventLog log;
    log.write(0, 0xFF);
    log.read(10, 0xFF, noDef);
    WordLifetime lt = buildWordLifetime(log, 20, 8, alwaysLive());
    ASSERT_FALSE(lt.empty());
    for (const LifeSegment &seg : lt.segments())
        EXPECT_EQ(seg.tag, noInstrTag);
}

TEST(LifetimeBuilder, OutOfOrderEventsPanic)
{
    WordEventLog log;
    log.write(10, 0xFF);
    log.write(5, 0xFF);
    EXPECT_DEATH(buildWordLifetime(log, 20, 8, alwaysLive()),
                 "out of time order");
}

} // namespace
} // namespace mbavf
