/**
 * @file
 * Round-trip tests for LifetimeStore serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "core/lifetime_io.hh"

namespace mbavf
{
namespace
{

bool
storesEqual(const LifetimeStore &a, const LifetimeStore &b)
{
    if (a.wordWidth() != b.wordWidth() ||
        a.wordsPerContainer() != b.wordsPerContainer() ||
        a.numContainers() != b.numContainers()) {
        return false;
    }
    for (const auto &[id, container] : a.containers()) {
        for (unsigned w = 0; w < a.wordsPerContainer(); ++w) {
            const WordLifetime *wa = &container.words[w];
            const WordLifetime *wb = b.find(id, w);
            if (wa->empty()) {
                if (wb != nullptr)
                    return false;
                continue;
            }
            if (!wb || wa->segments().size() != wb->segments().size())
                return false;
            for (std::size_t s = 0; s < wa->segments().size(); ++s) {
                const LifeSegment &x = wa->segments()[s];
                const LifeSegment &y = wb->segments()[s];
                if (x.begin != y.begin || x.end != y.end ||
                    x.aceMask != y.aceMask ||
                    x.readMask != y.readMask) {
                    return false;
                }
            }
        }
    }
    return true;
}

LifetimeStore
randomStore(std::uint64_t seed)
{
    Rng rng(seed);
    LifetimeStore store(8, 16);
    for (int c = 0; c < 20; ++c) {
        // Unique container ids: re-selecting a container would
        // append segments out of time order.
        std::uint64_t id = std::uint64_t(c) * 50 + rng.below(50);
        ContainerLifetime &container = store.container(id);
        for (unsigned w = 0; w < 16; ++w) {
            if (rng.chance(0.5))
                continue;
            Cycle t = rng.below(20);
            int segs = 1 + static_cast<int>(rng.below(6));
            for (int s = 0; s < segs; ++s) {
                Cycle e = t + 1 + rng.below(30);
                container.words[w].append(
                    {t, e, rng.next() & 0xFF, 0xFF});
                t = e + 1 + rng.below(10);
            }
        }
    }
    return store;
}

TEST(LifetimeIo, RoundTripEmpty)
{
    LifetimeStore store(8, 4);
    std::stringstream buf;
    saveLifetimeStore(store, buf);
    LifetimeStore loaded = loadLifetimeStore(buf);
    EXPECT_TRUE(storesEqual(store, loaded));
    EXPECT_EQ(loaded.wordWidth(), 8u);
    EXPECT_EQ(loaded.wordsPerContainer(), 4u);
}

TEST(LifetimeIo, RoundTripRandom)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        LifetimeStore store = randomStore(seed);
        std::stringstream buf;
        saveLifetimeStore(store, buf);
        LifetimeStore loaded = loadLifetimeStore(buf);
        EXPECT_TRUE(storesEqual(store, loaded)) << "seed " << seed;
    }
}

TEST(LifetimeIo, BadMagicIsFatal)
{
    std::stringstream buf;
    buf << "NOTMAGIC-and-some-junk";
    EXPECT_DEATH((void)loadLifetimeStore(buf), "bad magic");
}

TEST(LifetimeIo, TruncatedInputIsFatal)
{
    LifetimeStore store = randomStore(9);
    std::stringstream buf;
    saveLifetimeStore(store, buf);
    std::string bytes = buf.str();
    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    EXPECT_DEATH((void)loadLifetimeStore(cut), "truncated");
}

TEST(LifetimeIo, FileRoundTrip)
{
    LifetimeStore store = randomStore(42);
    std::string path = ::testing::TempDir() + "/mbavf_lt_test.bin";
    saveLifetimeStore(store, path);
    LifetimeStore loaded = loadLifetimeStore(path);
    EXPECT_TRUE(storesEqual(store, loaded));
}

TEST(LifetimeIo, TryLoadRoundTrip)
{
    LifetimeStore store = randomStore(7);
    std::stringstream buf;
    saveLifetimeStore(store, buf);
    std::string error;
    std::optional<LifetimeStore> loaded =
        tryLoadLifetimeStore(buf, error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(storesEqual(store, *loaded));
}

TEST(LifetimeIo, TryLoadRejectsBadMagic)
{
    std::stringstream buf;
    buf << "NOTMAGIC-and-some-junk";
    std::string error;
    EXPECT_FALSE(tryLoadLifetimeStore(buf, error).has_value());
    EXPECT_NE(error.find("bad magic"), std::string::npos);
}

TEST(LifetimeIo, TryLoadRejectsEveryTruncationPoint)
{
    // tryLoadLifetimeStore must reject a cut at ANY byte offset with
    // a message, never crash or hand back a half-read store.
    LifetimeStore store = randomStore(11);
    std::stringstream buf;
    saveLifetimeStore(store, buf);
    const std::string bytes = buf.str();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        std::stringstream is(bytes.substr(0, cut));
        std::string error;
        EXPECT_FALSE(tryLoadLifetimeStore(is, error).has_value())
            << "cut at " << cut;
        EXPECT_FALSE(error.empty()) << "cut at " << cut;
    }
}

TEST(LifetimeIo, TryLoadRejectsImplausibleHeader)
{
    // word_width outside [1, 64].
    {
        std::stringstream buf;
        LifetimeStore store(8, 4);
        saveLifetimeStore(store, buf);
        std::string bytes = buf.str();
        bytes[8] = 65; // word_width little-endian low byte
        std::stringstream is(bytes);
        std::string error;
        EXPECT_FALSE(tryLoadLifetimeStore(is, error).has_value());
        EXPECT_NE(error.find("word width"), std::string::npos);
    }
    // words-per-container demanding a huge allocation.
    {
        std::stringstream buf;
        LifetimeStore store(8, 4);
        saveLifetimeStore(store, buf);
        std::string bytes = buf.str();
        bytes[15] = '\x7f'; // words_per high byte -> ~2 billion
        std::stringstream is(bytes);
        std::string error;
        EXPECT_FALSE(tryLoadLifetimeStore(is, error).has_value());
        EXPECT_NE(error.find("words-per-container"),
                  std::string::npos);
    }
}

TEST(LifetimeIo, TryLoadKeepsMalformedSegmentsVerbatim)
{
    // Corrupt one segment into a backwards interval: the tolerant
    // loader must hand it to the caller for linting, while the
    // trusting loader must reject the same bytes.
    LifetimeStore store(8, 1);
    store.container(3).words[0].append({10, 20, 0x1, 0x1});
    std::stringstream buf;
    saveLifetimeStore(store, buf);
    std::string bytes = buf.str();
    // Layout: 8 magic + 4 + 4 + 8 header + 8 id + 4 segcount, then
    // begin (u64) at offset 36; swap begin/end by patching begin=30.
    bytes[36] = 30;
    {
        std::stringstream is(bytes);
        std::string error;
        std::optional<LifetimeStore> loaded =
            tryLoadLifetimeStore(is, error);
        ASSERT_TRUE(loaded.has_value()) << error;
        const WordLifetime *word = loaded->find(3, 0);
        ASSERT_NE(word, nullptr);
        ASSERT_EQ(word->segments().size(), 1u);
        EXPECT_EQ(word->segments()[0].begin, 30u);
        EXPECT_EQ(word->segments()[0].end, 20u);
    }
    {
        std::stringstream is(bytes);
        EXPECT_DEATH((void)loadLifetimeStore(is), "corrupt segments");
    }
}

} // namespace
} // namespace mbavf
