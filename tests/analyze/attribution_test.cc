/**
 * @file
 * Tests of the per-instruction MB-AVF attribution engine: the charge
 * rule on hand-built stores, the kernel rollup, the conservation
 * checker's violation detection, and a differential fuzz asserting
 * that attribution conserves computeMbAvf()'s raw integer totals
 * bit-for-bit over random layouts, schemes, and modes — serially and
 * on the thread pool.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "analyze/attribution.hh"
#include "common/rng.hh"
#include "core/layout.hh"
#include "core/mbavf.hh"

namespace mbavf
{
namespace
{

using analyze::AttributionResult;
using analyze::attrFalseDue;
using analyze::attrSdc;
using analyze::attrTrueDue;
using analyze::KernelContribution;
using analyze::TagContribution;

/** One-row array of 1-bit containers with a tunable domain width. */
class FlatArray : public PhysicalArray
{
  public:
    FlatArray(std::uint64_t bits, unsigned domain_bits)
        : bits_(bits), domainBits_(domain_bits)
    {}

    std::uint64_t rows() const override { return 1; }
    std::uint64_t cols() const override { return bits_; }

    PhysBit
    at(std::uint64_t, std::uint64_t col) const override
    {
        return {col, 0, col / domainBits_};
    }

  private:
    std::uint64_t bits_;
    unsigned domainBits_;
};

/**
 * Random store with tagged segments: the tag pool mixes real
 * instruction tags with noInstrTag so untracked data is always part
 * of the partition under test.
 */
LifetimeStore
randomTaggedStore(Rng &rng, unsigned word_width,
                  unsigned words_per_container,
                  std::uint64_t num_containers, Cycle span)
{
    LifetimeStore store(word_width, words_per_container);
    const std::uint64_t width_mask =
        word_width >= 64 ? ~0ull : ((1ull << word_width) - 1);
    for (std::uint64_t c = 0; c < num_containers; ++c) {
        if (!rng.chance(0.8))
            continue;
        ContainerLifetime &container = store.container(c);
        for (unsigned w = 0; w < words_per_container; ++w) {
            if (!rng.chance(0.7))
                continue;
            Cycle t = rng.below(span / 2 + 1);
            const unsigned n = 1 + (unsigned)rng.below(5);
            for (unsigned s = 0; s < n; ++s) {
                const Cycle begin = t + rng.below(span / 4 + 1);
                const Cycle end = begin + 1 + rng.below(span / 3 + 1);
                const std::uint64_t read = rng.next() & width_mask;
                const std::uint64_t ace = rng.next() & read;
                const InstrTag tag = rng.chance(0.2)
                    ? noInstrTag
                    : makeInstrTag((unsigned)rng.below(3),
                                   (unsigned)rng.below(24));
                container.words[w].append({begin, end, ace, read, tag});
                t = end;
            }
        }
    }
    return store;
}

/** Column sums of an attribution's perTag rows. */
std::array<Cycle, 3>
resum(const AttributionResult &attr)
{
    std::array<Cycle, 3> sums = {0, 0, 0};
    for (const TagContribution &c : attr.perTag)
        for (unsigned i = 0; i < 3; ++i)
            sums[i] += c.cycles[i];
    return sums;
}

TEST(Attribution, SdcChargesDefiningInstruction)
{
    // Two bits in one parity domain, mode 2x1: an even flip count is
    // undetected, so the ACE time of bit 0's only segment is pure SDC
    // and must be charged — whole — to that segment's tag.
    FlatArray array(2, 2);
    LifetimeStore store(1, 1);
    const InstrTag tag = makeInstrTag(2, 9);
    store.container(0).words[0].append({0, 10, 1, 1, tag});

    MbAvfOptions opt;
    opt.horizon = 20;
    const FaultMode mode = FaultMode::mx1(2);
    const auto scheme = makeScheme("parity");
    const AttributionResult attr =
        analyze::attributeMbAvf(array, store, *scheme, mode, opt);

    ASSERT_EQ(attr.perTag.size(), 1u);
    EXPECT_EQ(attr.perTag[0].tag, tag);
    EXPECT_EQ(attr.perTag[0].cycles[attrSdc], 10u);
    EXPECT_EQ(attr.perTag[0].cycles[attrTrueDue], 0u);
    EXPECT_EQ(attr.perTag[0].cycles[attrFalseDue], 0u);
    EXPECT_EQ(attr.numGroups, 1u);
    EXPECT_DOUBLE_EQ(attr.share(attr.perTag[0]), 1.0);

    const MbAvfResult ref =
        computeMbAvf(array, store, *scheme, mode, opt);
    EXPECT_EQ(analyze::checkConservation(attr, ref), "");
}

TEST(Attribution, TrueDueChargesAceLiveMember)
{
    // One flip under parity is detected; ACE-live time becomes true
    // DUE charged to the live segment's producer.
    FlatArray array(1, 1);
    LifetimeStore store(1, 1);
    const InstrTag tag = makeInstrTag(0, 4);
    store.container(0).words[0].append({5, 12, 1, 1, tag});

    MbAvfOptions opt;
    opt.horizon = 20;
    const auto scheme = makeScheme("parity");
    const AttributionResult attr = analyze::attributeMbAvf(
        array, store, *scheme, FaultMode::mx1(1), opt);

    ASSERT_EQ(attr.perTag.size(), 1u);
    EXPECT_EQ(attr.perTag[0].tag, tag);
    EXPECT_EQ(attr.perTag[0].cycles[attrTrueDue], 7u);
    EXPECT_EQ(attr.perTag[0].cycles[attrSdc], 0u);
}

TEST(Attribution, FalseDueChargesReadDeadMember)
{
    // Read-but-dead time in a detected region is false DUE: the
    // detection fires on data that could never matter. The charge
    // still lands on the instruction that produced the dead data.
    FlatArray array(1, 1);
    LifetimeStore store(1, 1);
    const InstrTag tag = makeInstrTag(1, 30);
    store.container(0).words[0].append({0, 8, 0, 1, tag});

    MbAvfOptions opt;
    opt.horizon = 16;
    const auto scheme = makeScheme("parity");
    const AttributionResult attr = analyze::attributeMbAvf(
        array, store, *scheme, FaultMode::mx1(1), opt);

    ASSERT_EQ(attr.perTag.size(), 1u);
    EXPECT_EQ(attr.perTag[0].tag, tag);
    EXPECT_EQ(attr.perTag[0].cycles[attrFalseDue], 8u);
    EXPECT_EQ(attr.perTag[0].total(), 8u);
}

TEST(Attribution, UntaggedSegmentChargesNoInstrTag)
{
    FlatArray array(1, 1);
    LifetimeStore store(1, 1);
    store.container(0).words[0].append({0, 6, 1, 1});

    MbAvfOptions opt;
    opt.horizon = 10;
    const auto scheme = makeScheme("parity");
    const AttributionResult attr = analyze::attributeMbAvf(
        array, store, *scheme, FaultMode::mx1(1), opt);

    ASSERT_EQ(attr.perTag.size(), 1u);
    EXPECT_EQ(attr.perTag[0].tag, noInstrTag);
    EXPECT_EQ(attr.perTag[0].cycles[attrTrueDue], 6u);
}

TEST(Attribution, PerTagRowsAreSortedByTag)
{
    FlatArray array(4, 1);
    LifetimeStore store(1, 1);
    store.container(0).words[0].append(
        {0, 5, 1, 1, makeInstrTag(1, 2)});
    store.container(1).words[0].append(
        {0, 5, 1, 1, makeInstrTag(0, 7)});
    store.container(2).words[0].append({0, 5, 1, 1});
    store.container(3).words[0].append(
        {0, 5, 1, 1, makeInstrTag(0, 3)});

    MbAvfOptions opt;
    opt.horizon = 8;
    const auto scheme = makeScheme("parity");
    const AttributionResult attr = analyze::attributeMbAvf(
        array, store, *scheme, FaultMode::mx1(1), opt);

    ASSERT_EQ(attr.perTag.size(), 4u);
    for (std::size_t i = 1; i < attr.perTag.size(); ++i)
        EXPECT_LT(attr.perTag[i - 1].tag, attr.perTag[i].tag);
    EXPECT_EQ(attr.perTag.back().tag, noInstrTag);
}

TEST(Attribution, RollupGroupsByKernel)
{
    AttributionResult attr;
    attr.perTag.push_back({makeInstrTag(0, 1), {1, 2, 3}});
    attr.perTag.push_back({makeInstrTag(0, 9), {4, 0, 0}});
    attr.perTag.push_back({makeInstrTag(5, 2), {0, 8, 0}});
    attr.perTag.push_back({noInstrTag, {0, 0, 16}});

    const std::vector<KernelContribution> kernels =
        analyze::rollupByKernel(attr);
    ASSERT_EQ(kernels.size(), 3u);
    EXPECT_EQ(kernels[0].kernel, 0u);
    EXPECT_EQ(kernels[0].total(), 10u);
    EXPECT_EQ(kernels[1].kernel, 5u);
    EXPECT_EQ(kernels[1].total(), 8u);
    EXPECT_EQ(kernels[2].kernel, KernelContribution::noKernel);
    EXPECT_EQ(kernels[2].total(), 16u);
}

TEST(Attribution, ConservationCheckerDetectsDrift)
{
    FlatArray array(2, 2);
    LifetimeStore store(1, 1);
    store.container(0).words[0].append(
        {0, 10, 1, 1, makeInstrTag(0, 0)});

    MbAvfOptions opt;
    opt.horizon = 20;
    const FaultMode mode = FaultMode::mx1(2);
    const auto scheme = makeScheme("parity");
    AttributionResult attr =
        analyze::attributeMbAvf(array, store, *scheme, mode, opt);
    const MbAvfResult ref =
        computeMbAvf(array, store, *scheme, mode, opt);
    ASSERT_EQ(analyze::checkConservation(attr, ref), "");

    // A lost group-cycle in a per-tag row trips the internal resum.
    AttributionResult leaky = attr;
    leaky.perTag[0].cycles[attrSdc] -= 1;
    EXPECT_NE(analyze::checkConservation(leaky, ref), "");

    // A drifted column total trips the reference comparison.
    AttributionResult drifted = attr;
    drifted.cycles[attrSdc] += 1;
    drifted.perTag[0].cycles[attrSdc] += 1;
    EXPECT_NE(analyze::checkConservation(drifted, ref), "");

    // Mismatched run geometry is a violation even with equal sums.
    AttributionResult wrong_groups = attr;
    wrong_groups.numGroups += 1;
    EXPECT_NE(analyze::checkConservation(wrong_groups, ref), "");

    AttributionResult wrong_horizon = attr;
    wrong_horizon.horizon += 1;
    EXPECT_NE(analyze::checkConservation(wrong_horizon, ref), "");
}

/**
 * Differential fuzz: attribution over random layout x scheme x mode
 * combinations must conserve computeMbAvf()'s raw integer totals
 * exactly, and the full perTag table must be bit-identical at 1 and
 * 4 threads.
 */
void
conservationTrial(const PhysicalArray &array,
                  const LifetimeStore &store, Rng &rng,
                  const std::string &label)
{
    static const char *const kSchemes[] = {"none", "parity", "secded",
                                           "dected", "crc"};
    const std::unique_ptr<ProtectionScheme> scheme =
        makeScheme(kSchemes[rng.below(5)]);
    MbAvfOptions opt;
    opt.horizon = 1 + rng.below(200);
    opt.dueShieldsSdc = rng.chance(0.5);
    const unsigned m = 1 + (unsigned)rng.below(6);
    const FaultMode mode = FaultMode::mx1(m);
    const std::string at = label + " (" + scheme->name() + " N=" +
                           std::to_string(opt.horizon) + " M=" +
                           std::to_string(m) + ")";

    const MbAvfResult ref =
        computeMbAvf(array, store, *scheme, mode, opt);
    const AttributionResult serial =
        analyze::attributeMbAvf(array, store, *scheme, mode, opt);
    EXPECT_EQ(analyze::checkConservation(serial, ref), "") << at;
    EXPECT_EQ(resum(serial), serial.cycles) << at;

    MbAvfOptions pooled = opt;
    pooled.numThreads = 4;
    const AttributionResult threaded =
        analyze::attributeMbAvf(array, store, *scheme, mode, pooled);
    EXPECT_EQ(analyze::checkConservation(threaded, ref), "")
        << at << " pooled";
    ASSERT_EQ(serial.perTag.size(), threaded.perTag.size()) << at;
    for (std::size_t i = 0; i < serial.perTag.size(); ++i) {
        EXPECT_EQ(serial.perTag[i].tag, threaded.perTag[i].tag) << at;
        EXPECT_EQ(serial.perTag[i].cycles, threaded.perTag[i].cycles)
            << at;
    }
}

TEST(Attribution, ConservationFuzzCacheLayouts)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        Rng rng(splitMix64(0xa77b, seed));
        CacheGeometry geom;
        geom.sets = 4u << rng.below(2);
        geom.ways = 2u << rng.below(2);
        geom.lineBytes = 2u << rng.below(2);
        static const CacheInterleave kStyles[] = {
            CacheInterleave::Logical, CacheInterleave::WayPhysical,
            CacheInterleave::IndexPhysical};
        const CacheInterleave style = kStyles[rng.below(3)];
        const unsigned factor = 1u << rng.below(2);
        auto array = makeCacheArray(geom, style, factor);
        LifetimeStore store = randomTaggedStore(
            rng, 8, geom.lineBytes, geom.numLines(), 120);
        conservationTrial(*array, store, rng,
                          "cache " + cacheInterleaveName(style) +
                              " seed " + std::to_string(seed));
    }
}

TEST(Attribution, ConservationFuzzRegFileLayouts)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        Rng rng(splitMix64(0xa77c, seed));
        RegFileGeometry geom;
        geom.numRegs = 4;
        geom.numLanes = 4;
        geom.numSlots = 2;
        const RegInterleave style = rng.chance(0.5)
                                        ? RegInterleave::IntraThread
                                        : RegInterleave::InterThread;
        const unsigned factor = 1 + (unsigned)rng.below(2);
        auto array = makeRegFileArray(geom, style, factor);
        LifetimeStore store =
            randomTaggedStore(rng, 32, 1, geom.numContainers(), 120);
        conservationTrial(*array, store, rng,
                          "regfile seed " + std::to_string(seed));
    }
}

TEST(Attribution, ConservationFuzzNarrowArrays)
{
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(splitMix64(0xa77d, seed));
        const std::uint64_t bits = 1 + rng.below(6);
        const unsigned domain_bits = 1 + (unsigned)rng.below(3);
        FlatArray array(bits, domain_bits);
        LifetimeStore store = randomTaggedStore(rng, 1, 1, bits, 60);
        conservationTrial(array, store, rng,
                          "flat " + std::to_string(bits) + "b seed " +
                              std::to_string(seed));
    }
}

} // namespace
} // namespace mbavf
