/**
 * @file
 * Unit tests for the program-flow and protection-coverage lint
 * passes: each stable finding code fires on a minimal synthetic
 * defect and stays silent on the matching near-miss (one healthy
 * dynamic instance, an intervening read, a partial overwrite, a
 * scheme that makes no protection claim, a cover budget below the
 * vulnerable mode).
 */

#include <gtest/gtest.h>

#include <array>
#include <unordered_map>

#include "analyze/passes.hh"
#include "core/layout.hh"

namespace mbavf
{
namespace
{

DefId
defTagged(DataflowLog &log, InstrTag tag)
{
    return log.record({}, tag);
}

DefId
useTagged(DataflowLog &log, DefId src, std::uint32_t rel,
          InstrTag tag)
{
    std::array<SrcUse, 1> s{SrcUse{src, rel, false}};
    return log.record(s, tag);
}

TEST(AnalyzePasses, DeadDefFires)
{
    DataflowLog log;
    defTagged(log, makeInstrTag(1, 5));
    Liveness live(log);
    CheckReport report;
    analyze::lintDataflow(log, live, report);
    EXPECT_EQ(report.countOf("flow.dead-def"), 1u);
}

TEST(AnalyzePasses, DeadDefSparedByOneConsumedInstance)
{
    // Two dynamic instances of the same static instruction; one is
    // consumed, so the instruction is not unconditionally dead.
    DataflowLog log;
    const InstrTag tag = makeInstrTag(1, 5);
    defTagged(log, tag);
    DefId second = defTagged(log, tag);
    DefId user = useTagged(log, second, ~0u, makeInstrTag(1, 6));
    log.markOutput(user);
    Liveness live(log);
    CheckReport report;
    analyze::lintDataflow(log, live, report);
    EXPECT_FALSE(report.has("flow.dead-def"));
}

TEST(AnalyzePasses, AnchorsAreNeverFlagged)
{
    // Untagged defs are synthetic anchors (addresses, fills), not
    // instructions; a dead anchor is not a program defect.
    DataflowLog log;
    log.record({});
    Liveness live(log);
    CheckReport report;
    analyze::lintDataflow(log, live, report);
    EXPECT_EQ(report.errorCount(), 0u);
}

TEST(AnalyzePasses, MaskedOutputFires)
{
    // The victim is consumed, but its only consumer attaches
    // relevance 0: no produced bit can reach program output.
    DataflowLog log;
    const InstrTag tag = makeInstrTag(0, 11);
    DefId victim = defTagged(log, tag);
    DefId user = useTagged(log, victim, 0, makeInstrTag(0, 12));
    log.markOutput(user);
    Liveness live(log);
    CheckReport report;
    analyze::lintDataflow(log, live, report);
    EXPECT_EQ(report.countOf("flow.masked-output"), 1u);
    EXPECT_FALSE(report.has("flow.dead-def"));
}

TEST(AnalyzePasses, MaskedOutputSparedByOneRelevantUse)
{
    DataflowLog log;
    const InstrTag tag = makeInstrTag(0, 11);
    DefId a = defTagged(log, tag);
    DefId masked = useTagged(log, a, 0, makeInstrTag(0, 12));
    log.markOutput(masked);
    DefId b = defTagged(log, tag);
    DefId live_use = useTagged(log, b, 0xFF, makeInstrTag(0, 13));
    log.markOutput(live_use);
    Liveness live(log);
    CheckReport report;
    analyze::lintDataflow(log, live, report);
    EXPECT_FALSE(report.has("flow.masked-output"));
}

TEST(AnalyzePasses, OverwriteFires)
{
    DataflowLog dataflow;
    std::unordered_map<std::uint64_t, WordEventLog> logs;
    const InstrTag tag = makeInstrTag(2, 3);
    logs[7].write(0, 0xFF, tag);
    logs[7].write(5, 0xFF, makeInstrTag(2, 4));
    CheckReport report;
    analyze::lintRegisterEvents(logs, dataflow, report);
    EXPECT_EQ(report.countOf("flow.overwrite"), 1u);
}

TEST(AnalyzePasses, OverwriteSparedByInterveningRead)
{
    DataflowLog dataflow;
    DefId reader = dataflow.record({});
    dataflow.markOutput(reader);
    std::unordered_map<std::uint64_t, WordEventLog> logs;
    logs[7].write(0, 0xFF, makeInstrTag(2, 3));
    logs[7].read(2, 0xFF, reader);
    logs[7].write(5, 0xFF, makeInstrTag(2, 4));
    CheckReport report;
    analyze::lintRegisterEvents(logs, dataflow, report);
    EXPECT_FALSE(report.has("flow.overwrite"));
}

TEST(AnalyzePasses, OverwriteSparedByPartialOverwrite)
{
    // The second write covers only half the first one's bits; the
    // surviving half may still be read later.
    DataflowLog dataflow;
    std::unordered_map<std::uint64_t, WordEventLog> logs;
    logs[7].write(0, 0xFF, makeInstrTag(2, 3));
    logs[7].write(5, 0x0F, makeInstrTag(2, 4));
    CheckReport report;
    analyze::lintRegisterEvents(logs, dataflow, report);
    EXPECT_FALSE(report.has("flow.overwrite"));
}

TEST(AnalyzePasses, UninitReadFires)
{
    DataflowLog dataflow;
    DefId reader = dataflow.record({}, makeInstrTag(3, 8));
    std::unordered_map<std::uint64_t, WordEventLog> logs;
    logs[9].read(1, 0xFF, reader);
    logs[9].write(4, 0xFF, makeInstrTag(3, 9));
    CheckReport report;
    analyze::lintRegisterEvents(logs, dataflow, report);
    EXPECT_EQ(report.countOf("flow.uninit-read"), 1u);
}

TEST(AnalyzePasses, UninitReadSparedAfterFirstWrite)
{
    DataflowLog dataflow;
    DefId reader = dataflow.record({}, makeInstrTag(3, 8));
    std::unordered_map<std::uint64_t, WordEventLog> logs;
    logs[9].write(0, 0xFF, makeInstrTag(3, 9));
    logs[9].read(1, 0xFF, reader);
    CheckReport report;
    analyze::lintRegisterEvents(logs, dataflow, report);
    EXPECT_FALSE(report.has("flow.uninit-read"));
}

/** Array whose first column belongs to no protection domain. */
class HoleyArray : public PhysicalArray
{
  public:
    explicit HoleyArray(std::uint64_t bits) : bits_(bits) {}

    std::uint64_t rows() const override { return 1; }
    std::uint64_t cols() const override { return bits_; }

    PhysBit
    at(std::uint64_t, std::uint64_t col) const override
    {
        return {col, 0, col == 0 ? invalidDomain : DomainId(0)};
    }

  private:
    std::uint64_t bits_;
};

/** One-row array of 1-bit containers, domain_bits wide domains. */
class FlatArray : public PhysicalArray
{
  public:
    FlatArray(std::uint64_t bits, unsigned domain_bits)
        : bits_(bits), domainBits_(domain_bits)
    {}

    std::uint64_t rows() const override { return 1; }
    std::uint64_t cols() const override { return bits_; }

    PhysBit
    at(std::uint64_t, std::uint64_t col) const override
    {
        return {col, 0, col / domainBits_};
    }

  private:
    std::uint64_t bits_;
    unsigned domainBits_;
};

LifetimeStore
aceStore(std::uint64_t bits)
{
    LifetimeStore store(1, 1);
    for (std::uint64_t b = 0; b < bits; ++b)
        store.container(b).words[0].append({0, 10, 1, 1});
    return store;
}

TEST(AnalyzePasses, UncoveredFires)
{
    HoleyArray array(2);
    LifetimeStore store = aceStore(2);
    const auto scheme = makeScheme("secded");
    CheckReport report;
    analyze::lintDomainCoverage(array, store, *scheme, {}, report);
    EXPECT_EQ(report.countOf("domain.uncovered"), 1u);
}

TEST(AnalyzePasses, UncoveredNeedsAceTime)
{
    HoleyArray array(2);
    LifetimeStore store(1, 1);
    // Read-only (never ACE) data outside every domain is harmless.
    store.container(0).words[0].append({0, 10, 0, 1});
    store.container(1).words[0].append({0, 10, 1, 1});
    const auto scheme = makeScheme("secded");
    CheckReport report;
    analyze::lintDomainCoverage(array, store, *scheme, {}, report);
    EXPECT_FALSE(report.has("domain.uncovered"));
}

TEST(AnalyzePasses, NoProtectionClaimSkipsDomainPasses)
{
    // scheme "none" never detects anything: there is no coverage to
    // have gaps in, so neither domain code may fire.
    HoleyArray array(2);
    LifetimeStore store = aceStore(2);
    const auto scheme = makeScheme("none");
    CheckReport report;
    analyze::lintDomainCoverage(array, store, *scheme, {}, report);
    EXPECT_EQ(report.errorCount(), 0u);
}

TEST(AnalyzePasses, ModeUndetectableFires)
{
    // Two adjacent bits share one parity domain: a 2x1 fault puts an
    // even flip count into it, which parity cannot detect.
    FlatArray array(4, 2);
    LifetimeStore store = aceStore(4);
    const auto scheme = makeScheme("parity");
    CheckReport report;
    analyze::lintDomainCoverage(array, store, *scheme, {}, report);
    EXPECT_GE(report.countOf("domain.mode-undetectable"), 1u);
}

TEST(AnalyzePasses, ModeUndetectableDedupesPerModeAndCount)
{
    // Every anchor of the 4-bit row repeats the same (mode, flips)
    // hole; the pass reports each distinct pair once.
    FlatArray array(4, 2);
    LifetimeStore store = aceStore(4);
    const auto scheme = makeScheme("parity");
    analyze::DomainLintOptions opt;
    opt.coverModes = 2;
    CheckReport report;
    analyze::lintDomainCoverage(array, store, *scheme, opt, report);
    EXPECT_EQ(report.countOf("domain.mode-undetectable"), 1u);
}

TEST(AnalyzePasses, ModeUndetectableRespectsCoverBudget)
{
    // SEC-DED detects 2 flips and corrects 1; with 3-bit domains the
    // first undetectable pattern needs mode 3, so a cover budget of 2
    // must stay clean and a budget of 3 must fire.
    FlatArray array(6, 3);
    LifetimeStore store = aceStore(6);
    const auto scheme = makeScheme("secded");
    analyze::DomainLintOptions narrow;
    narrow.coverModes = 2;
    CheckReport clean;
    analyze::lintDomainCoverage(array, store, *scheme, narrow, clean);
    EXPECT_EQ(clean.errorCount(), 0u);

    analyze::DomainLintOptions wide;
    wide.coverModes = 3;
    CheckReport report;
    analyze::lintDomainCoverage(array, store, *scheme, wide, report);
    EXPECT_EQ(report.countOf("domain.mode-undetectable"), 1u);
}

} // namespace
} // namespace mbavf
