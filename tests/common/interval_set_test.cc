/**
 * @file
 * Unit and property tests for IntervalSet.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/interval_set.hh"
#include "common/rng.hh"

namespace mbavf
{
namespace
{

TEST(IntervalSet, EmptyByDefault)
{
    IntervalSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.totalLength(), 0u);
    EXPECT_FALSE(s.contains(0));
}

TEST(IntervalSet, AddIgnoresEmptyIntervals)
{
    IntervalSet s;
    s.add(5, 5);
    s.add(7, 3);
    EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, AddCoalescesAdjacent)
{
    IntervalSet s;
    s.add(0, 10);
    s.add(10, 20);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.totalLength(), 20u);
}

TEST(IntervalSet, AddCoalescesOverlap)
{
    IntervalSet s;
    s.add(0, 10);
    s.add(5, 15);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.totalLength(), 15u);
}

TEST(IntervalSet, AddKeepsDisjoint)
{
    IntervalSet s;
    s.add(0, 5);
    s.add(10, 15);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.totalLength(), 10u);
}

TEST(IntervalSet, OutOfOrderInsertBridges)
{
    IntervalSet s;
    s.add(10, 15);
    s.add(0, 5);
    s.add(4, 11);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.totalLength(), 15u);
}

TEST(IntervalSet, Contains)
{
    IntervalSet s;
    s.add(3, 7);
    EXPECT_FALSE(s.contains(2));
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(6));
    EXPECT_FALSE(s.contains(7));
}

TEST(IntervalSet, ConstructorNormalizes)
{
    IntervalSet s({{10, 20}, {0, 5}, {4, 12}, {30, 30}});
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.totalLength(), 20u);
}

TEST(IntervalSet, UnionBasic)
{
    IntervalSet a;
    a.add(0, 5);
    IntervalSet b;
    b.add(3, 8);
    IntervalSet u = a.unionWith(b);
    EXPECT_EQ(u.totalLength(), 8u);
}

TEST(IntervalSet, IntersectBasic)
{
    IntervalSet a;
    a.add(0, 5);
    a.add(10, 20);
    IntervalSet b;
    b.add(3, 12);
    IntervalSet i = a.intersect(b);
    EXPECT_EQ(i.totalLength(), 4u); // [3,5) + [10,12)
}

TEST(IntervalSet, SubtractBasic)
{
    IntervalSet a;
    a.add(0, 10);
    IntervalSet b;
    b.add(3, 5);
    b.add(8, 20);
    IntervalSet d = a.subtract(b);
    EXPECT_EQ(d.totalLength(), 6u); // [0,3) + [5,8)
    EXPECT_TRUE(d.contains(0));
    EXPECT_FALSE(d.contains(3));
    EXPECT_TRUE(d.contains(5));
    EXPECT_FALSE(d.contains(9));
}

TEST(IntervalSet, ClampWindow)
{
    IntervalSet a;
    a.add(0, 100);
    IntervalSet c = a.clamp(40, 60);
    EXPECT_EQ(c.totalLength(), 20u);
}

TEST(IntervalSet, OverlapLength)
{
    IntervalSet a;
    a.add(0, 5);
    a.add(10, 20);
    EXPECT_EQ(a.overlapLength(3, 12), 4u);
    EXPECT_EQ(a.overlapLength(20, 30), 0u);
    EXPECT_EQ(a.overlapLength(7, 7), 0u);
}

/** Property: set algebra matches a brute-force cycle set. */
class IntervalSetPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(IntervalSetPropertyTest, MatchesBruteForce)
{
    Rng rng(GetParam() * 7919 + 13);
    constexpr Cycle domain = 200;

    auto random_set = [&](IntervalSet &s, std::set<Cycle> &ref) {
        for (int i = 0; i < 12; ++i) {
            Cycle b = rng.below(domain);
            Cycle e = b + rng.below(20);
            s.add(b, e);
            for (Cycle c = b; c < e; ++c)
                ref.insert(c);
        }
    };

    IntervalSet a, b;
    std::set<Cycle> ra, rb;
    random_set(a, ra);
    random_set(b, rb);

    // Internal invariant: sorted, disjoint, non-adjacent.
    for (std::size_t i = 1; i < a.intervals().size(); ++i) {
        EXPECT_GT(a.intervals()[i].begin, a.intervals()[i - 1].end);
    }

    IntervalSet u = a.unionWith(b);
    IntervalSet x = a.intersect(b);
    IntervalSet d = a.subtract(b);

    for (Cycle c = 0; c < domain + 30; ++c) {
        bool in_a = ra.count(c) != 0;
        bool in_b = rb.count(c) != 0;
        EXPECT_EQ(a.contains(c), in_a) << "cycle " << c;
        EXPECT_EQ(u.contains(c), in_a || in_b) << "cycle " << c;
        EXPECT_EQ(x.contains(c), in_a && in_b) << "cycle " << c;
        EXPECT_EQ(d.contains(c), in_a && !in_b) << "cycle " << c;
    }
    EXPECT_EQ(a.totalLength(), ra.size());
}

INSTANTIATE_TEST_SUITE_P(Random, IntervalSetPropertyTest,
                         ::testing::Range(0, 20));

} // namespace
} // namespace mbavf
