/**
 * @file
 * Tests for the shared parallel execution layer: task coverage,
 * thread-count-independent chunking, ordered deterministic
 * reduction, and nested submission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"

namespace mbavf
{
namespace
{

TEST(Parallel, PoolHasAtLeastOneThread)
{
    EXPECT_GE(parallelThreads(), 1u);
}

TEST(Parallel, EnsureGrowsButNeverShrinks)
{
    setParallelThreads(2);
    EXPECT_EQ(parallelThreads(), 2u);
    EXPECT_EQ(ensureParallelThreads(4), 4u);
    EXPECT_EQ(ensureParallelThreads(2), 4u);
    EXPECT_EQ(ensureParallelThreads(0), 4u);
    setParallelThreads(0); // back to the default for other tests
}

TEST(Parallel, RunTasksCoversEveryIndexOnce)
{
    setParallelThreads(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    runTasks(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, RunTasksZeroIsNoop)
{
    runTasks(0, [&](std::size_t) { FAIL(); });
}

TEST(Parallel, ParallelForChunksAreThreadCountIndependent)
{
    // The same (range, grain) must produce the same chunk set no
    // matter how wide the pool is.
    auto chunksAt = [](unsigned threads) {
        setParallelThreads(threads);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks(
            100);
        std::atomic<std::size_t> count{0};
        parallelFor(7, 93, 10,
                    [&](std::uint64_t lo, std::uint64_t hi) {
                        chunks[(lo - 7) / 10] = {lo, hi};
                        ++count;
                    });
        chunks.resize(count.load());
        return chunks;
    };
    auto serial = chunksAt(1);
    auto wide = chunksAt(8);
    ASSERT_EQ(serial.size(), 9u); // ceil(86 / 10)
    EXPECT_EQ(serial, wide);
    EXPECT_EQ(serial.front(), (std::pair<std::uint64_t,
                                         std::uint64_t>{7, 17}));
    EXPECT_EQ(serial.back(), (std::pair<std::uint64_t,
                                        std::uint64_t>{87, 93}));
    setParallelThreads(0);
}

TEST(Parallel, ParallelForCoversRangeExactlyOnce)
{
    setParallelThreads(4);
    std::vector<std::atomic<int>> hits(5000);
    parallelFor(0, hits.size(), 37,
                [&](std::uint64_t lo, std::uint64_t hi) {
                    for (std::uint64_t i = lo; i < hi; ++i)
                        ++hits[i];
                });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, MapReduceIsOrderedAndDeterministic)
{
    // String concatenation is order-sensitive: any out-of-order
    // merge is caught immediately.
    auto concatAt = [](unsigned threads) {
        setParallelThreads(threads);
        return mapReduce(
            std::uint64_t(0), std::uint64_t(64), std::uint64_t(5),
            std::string(),
            [](std::uint64_t lo, std::uint64_t hi) {
                std::string s;
                for (std::uint64_t i = lo; i < hi; ++i)
                    s += std::to_string(i) + ",";
                return s;
            },
            [](std::string &into, std::string &&part) {
                into += part;
            });
    };
    std::string expected;
    for (unsigned i = 0; i < 64; ++i)
        expected += std::to_string(i) + ",";
    EXPECT_EQ(concatAt(1), expected);
    EXPECT_EQ(concatAt(3), expected);
    EXPECT_EQ(concatAt(8), expected);
    setParallelThreads(0);
}

TEST(Parallel, MapReduceEmptyRangeReturnsInit)
{
    int r = mapReduce(
        std::uint64_t(5), std::uint64_t(5), std::uint64_t(1), 42,
        [](std::uint64_t, std::uint64_t) { return 0; },
        [](int &into, int &&part) { into += part; });
    EXPECT_EQ(r, 42);
}

TEST(Parallel, NestedSubmissionCompletes)
{
    // A pool task fanning out its own subtasks (the sweepModes /
    // computeMbAvf shape) must not deadlock or drop work.
    setParallelThreads(4);
    std::atomic<std::uint64_t> sum{0};
    runTasks(8, [&](std::size_t outer) {
        parallelFor(0, 100, 9, [&](std::uint64_t lo, std::uint64_t hi) {
            for (std::uint64_t i = lo; i < hi; ++i)
                sum += outer * 100 + i;
        });
    });
    // sum over outer in [0,8) of (outer*100*100 + 4950)
    std::uint64_t expected = 0;
    for (std::uint64_t outer = 0; outer < 8; ++outer)
        expected += outer * 100 * 100 + 4950;
    EXPECT_EQ(sum.load(), expected);
    setParallelThreads(0);
}

TEST(Parallel, SplitMix64TrialSeedsAreStableAndDistinct)
{
    // Per-trial seed derivation contract: pure function of
    // (base, index), distinct across neighboring indices.
    EXPECT_EQ(splitMix64(7, 3), splitMix64(7, 3));
    EXPECT_NE(splitMix64(7, 3), splitMix64(7, 4));
    EXPECT_NE(splitMix64(7, 3), splitMix64(8, 3));
}

} // namespace
} // namespace mbavf
