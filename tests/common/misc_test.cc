/**
 * @file
 * Tests for the small common utilities: bits, rng, stats, table,
 * args.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/args.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace mbavf
{
namespace
{

TEST(Bits, PopCount)
{
    EXPECT_EQ(popCount(0), 0);
    EXPECT_EQ(popCount(0xFF), 8);
    EXPECT_EQ(popCount(~std::uint64_t(0)), 64);
}

TEST(Bits, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(63));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(63), 5u);
    EXPECT_EQ(floorLog2(64), 6u);
}

TEST(Bits, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(8), 0xFFu);
    EXPECT_EQ(lowMask(64), ~std::uint64_t(0));
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stats, MeanMinMax)
{
    RunningStats s;
    s.add(1);
    s.add(2);
    s.add(3);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(Stats, Geomean)
{
    RunningStats s;
    s.add(1);
    s.add(4);
    EXPECT_DOUBLE_EQ(s.geomean(), 2.0);
}

TEST(Stats, GeomeanWithZeroIsZero)
{
    RunningStats s;
    s.add(0);
    s.add(4);
    EXPECT_DOUBLE_EQ(s.geomean(), 0.0);
}

TEST(Table, TextAndCsv)
{
    Table t({"a", "b"});
    t.beginRow().cell("x").cell(1.5, 1);
    t.beginRow().cell("y").cell(std::uint64_t(7));
    EXPECT_EQ(t.numRows(), 2u);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "a,b\nx,1.5\ny,7\n");

    std::ostringstream text;
    t.printText(text);
    EXPECT_NE(text.str().find("x"), std::string::npos);
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "row width");
}

TEST(Args, ParsesKeyValueAndFlags)
{
    const char *argv[] = {"prog", "--n=42", "--name=minife",
                          "--flag", "--rate=2.5"};
    Args args(5, const_cast<char **>(argv));
    EXPECT_EQ(args.getInt("n", 0), 42);
    EXPECT_EQ(args.getString("name", ""), "minife");
    EXPECT_TRUE(args.getBool("flag"));
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0), 2.5);
    EXPECT_EQ(args.getInt("missing", 9), 9);
    EXPECT_FALSE(args.has("missing"));
}

TEST(Args, FalseValues)
{
    const char *argv[] = {"prog", "--a=0", "--b=false"};
    Args args(3, const_cast<char **>(argv));
    EXPECT_FALSE(args.getBool("a", true));
    EXPECT_FALSE(args.getBool("b", true));
}

} // namespace
} // namespace mbavf
