/**
 * @file
 * Tests for common/stats: the Wilson score interval used for
 * campaign outcome rates, and the streaming accumulators.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace mbavf
{
namespace
{

TEST(WilsonInterval, ZeroTrialsIsVacuous)
{
    WilsonInterval w = wilsonInterval(0, 0);
    EXPECT_DOUBLE_EQ(w.point, 0.0);
    EXPECT_DOUBLE_EQ(w.low, 0.0);
    EXPECT_DOUBLE_EQ(w.high, 1.0);
}

TEST(WilsonInterval, IsTotalAndFiniteEverywhere)
{
    // The zero-trial tally (a fully-degraded or just-resumed
    // campaign) and the k > n corruption case must both come back as
    // three finite numbers in [0, 1] — a NaN here would flow
    // straight into a manifest as invalid JSON.
    const WilsonInterval cases[] = {
        wilsonInterval(0, 0),
        wilsonInterval(7, 0),
        wilsonInterval(10, 3), // k > n clamps to k = n
        wilsonInterval(~std::uint64_t(0), 1),
    };
    for (const WilsonInterval &w : cases) {
        EXPECT_TRUE(std::isfinite(w.point));
        EXPECT_TRUE(std::isfinite(w.low));
        EXPECT_TRUE(std::isfinite(w.high));
        EXPECT_GE(w.low, 0.0);
        EXPECT_LE(w.high, 1.0);
        EXPECT_LE(w.low, w.high);
    }
    EXPECT_DOUBLE_EQ(wilsonInterval(10, 3).point, 1.0);
}

TEST(WilsonInterval, BoundsBracketThePointEstimate)
{
    WilsonInterval w = wilsonInterval(30, 100);
    EXPECT_DOUBLE_EQ(w.point, 0.3);
    EXPECT_LT(w.low, 0.3);
    EXPECT_GT(w.high, 0.3);
    EXPECT_GE(w.low, 0.0);
    EXPECT_LE(w.high, 1.0);
}

TEST(WilsonInterval, StaysInsideUnitIntervalAtExtremes)
{
    // k = 0 and k = n are exactly the rare-outcome regimes the
    // normal approximation breaks in.
    WilsonInterval none = wilsonInterval(0, 1000);
    EXPECT_DOUBLE_EQ(none.point, 0.0);
    EXPECT_DOUBLE_EQ(none.low, 0.0);
    EXPECT_GT(none.high, 0.0);
    EXPECT_LT(none.high, 0.01);

    WilsonInterval all = wilsonInterval(1000, 1000);
    EXPECT_DOUBLE_EQ(all.point, 1.0);
    EXPECT_DOUBLE_EQ(all.high, 1.0);
    EXPECT_LT(all.low, 1.0);
    EXPECT_GT(all.low, 0.99);
}

TEST(WilsonInterval, NarrowsWithSampleSize)
{
    WilsonInterval small = wilsonInterval(5, 50);
    WilsonInterval large = wilsonInterval(500, 5000);
    EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(WilsonInterval, WidensWithConfidence)
{
    WilsonInterval z95 = wilsonInterval(10, 100, 1.96);
    WilsonInterval z99 = wilsonInterval(10, 100, 2.576);
    EXPECT_GT(z99.high - z99.low, z95.high - z95.low);
}

TEST(RunningStats, TracksMeanMinMax)
{
    RunningStats s;
    s.add(2.0);
    s.add(8.0);
    s.add(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

} // namespace
} // namespace mbavf
