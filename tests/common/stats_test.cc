/**
 * @file
 * Tests for common/stats: the Wilson score interval used for
 * campaign outcome rates, and the streaming accumulators.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace mbavf
{
namespace
{

TEST(WilsonInterval, ZeroTrialsIsVacuous)
{
    WilsonInterval w = wilsonInterval(0, 0);
    EXPECT_DOUBLE_EQ(w.point, 0.0);
    EXPECT_DOUBLE_EQ(w.low, 0.0);
    EXPECT_DOUBLE_EQ(w.high, 1.0);
}

TEST(WilsonInterval, IsTotalAndFiniteEverywhere)
{
    // The zero-trial tally (a fully-degraded or just-resumed
    // campaign) and the k > n corruption case must both come back as
    // three finite numbers in [0, 1] — a NaN here would flow
    // straight into a manifest as invalid JSON.
    const WilsonInterval cases[] = {
        wilsonInterval(0, 0),
        wilsonInterval(7, 0),
        wilsonInterval(10, 3), // k > n clamps to k = n
        wilsonInterval(~std::uint64_t(0), 1),
    };
    for (const WilsonInterval &w : cases) {
        EXPECT_TRUE(std::isfinite(w.point));
        EXPECT_TRUE(std::isfinite(w.low));
        EXPECT_TRUE(std::isfinite(w.high));
        EXPECT_GE(w.low, 0.0);
        EXPECT_LE(w.high, 1.0);
        EXPECT_LE(w.low, w.high);
    }
    EXPECT_DOUBLE_EQ(wilsonInterval(10, 3).point, 1.0);
}

TEST(WilsonInterval, BoundsBracketThePointEstimate)
{
    WilsonInterval w = wilsonInterval(30, 100);
    EXPECT_DOUBLE_EQ(w.point, 0.3);
    EXPECT_LT(w.low, 0.3);
    EXPECT_GT(w.high, 0.3);
    EXPECT_GE(w.low, 0.0);
    EXPECT_LE(w.high, 1.0);
}

TEST(WilsonInterval, StaysInsideUnitIntervalAtExtremes)
{
    // k = 0 and k = n are exactly the rare-outcome regimes the
    // normal approximation breaks in.
    WilsonInterval none = wilsonInterval(0, 1000);
    EXPECT_DOUBLE_EQ(none.point, 0.0);
    EXPECT_DOUBLE_EQ(none.low, 0.0);
    EXPECT_GT(none.high, 0.0);
    EXPECT_LT(none.high, 0.01);

    WilsonInterval all = wilsonInterval(1000, 1000);
    EXPECT_DOUBLE_EQ(all.point, 1.0);
    EXPECT_DOUBLE_EQ(all.high, 1.0);
    EXPECT_LT(all.low, 1.0);
    EXPECT_GT(all.low, 0.99);
}

TEST(WilsonInterval, NarrowsWithSampleSize)
{
    WilsonInterval small = wilsonInterval(5, 50);
    WilsonInterval large = wilsonInterval(500, 5000);
    EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(WilsonInterval, WidensWithConfidence)
{
    WilsonInterval z95 = wilsonInterval(10, 100, 1.96);
    WilsonInterval z99 = wilsonInterval(10, 100, 2.576);
    EXPECT_GT(z99.high - z99.low, z95.high - z95.low);
}

TEST(StratifiedInterval, EmptyStrataListIsVacuous)
{
    const WilsonInterval w = stratifiedInterval({});
    EXPECT_DOUBLE_EQ(w.point, 0.0);
    EXPECT_DOUBLE_EQ(w.low, 0.0);
    EXPECT_DOUBLE_EQ(w.high, 1.0);
}

TEST(StratifiedInterval, ZeroWeightStratumContributesNothing)
{
    // A skipped stratum whose window covers no instructions has
    // weight 0; whatever junk its counters hold must not leak in.
    std::vector<StratumStat> strata;
    strata.push_back({0.5, 10, 100, false, 0.0});
    const WilsonInterval base = stratifiedInterval(strata);
    strata.push_back({0.0, 99, 99, false, 0.0});
    strata.push_back({0.0, 0, 0, true, 1.0});
    const WilsonInterval with = stratifiedInterval(strata);
    EXPECT_DOUBLE_EQ(base.point, with.point);
    EXPECT_DOUBLE_EQ(base.low, with.low);
    EXPECT_DOUBLE_EQ(base.high, with.high);
}

TEST(StratifiedInterval, AllStrataSkippedIsExact)
{
    // Everything provably Masked: the SDC estimate is exactly 0
    // (and the Masked estimate exactly 1) at zero width, with zero
    // injections.
    std::vector<StratumStat> sdc;
    sdc.push_back({0.7, 0, 0, true, 0.0});
    sdc.push_back({0.3, 0, 0, true, 0.0});
    const WilsonInterval none = stratifiedInterval(sdc);
    EXPECT_DOUBLE_EQ(none.point, 0.0);
    EXPECT_DOUBLE_EQ(none.low, 0.0);
    EXPECT_DOUBLE_EQ(none.high, 0.0);

    std::vector<StratumStat> masked;
    masked.push_back({0.7, 0, 0, true, 1.0});
    masked.push_back({0.3, 0, 0, true, 1.0});
    const WilsonInterval all = stratifiedInterval(masked);
    EXPECT_DOUBLE_EQ(all.point, 1.0);
    EXPECT_DOUBLE_EQ(all.low, 1.0);
    EXPECT_DOUBLE_EQ(all.high, 1.0);
}

TEST(StratifiedInterval, CertainStratumHasZeroVariance)
{
    // A certain stratum narrows the interval relative to sampling
    // the same weight: only the sampled share carries width.
    std::vector<StratumStat> certain;
    certain.push_back({0.9, 0, 0, true, 0.0});
    certain.push_back({0.1, 5, 50, false, 0.0});
    std::vector<StratumStat> sampled;
    sampled.push_back({0.9, 0, 50, false, 0.0});
    sampled.push_back({0.1, 5, 50, false, 0.0});
    const WilsonInterval a = stratifiedInterval(certain);
    const WilsonInterval b = stratifiedInterval(sampled);
    EXPECT_LT(a.high - a.low, b.high - b.low);
}

TEST(StratifiedInterval, UnsampledStratumIsVacouslyWide)
{
    // An unskipped stratum with zero trials contributes the vacuous
    // [0, 1] Wilson interval — half-width 0.5 around the point,
    // clamped into [0, 1]: ignorance, not certainty.
    std::vector<StratumStat> strata;
    strata.push_back({1.0, 0, 0, false, 0.0});
    const WilsonInterval w = stratifiedInterval(strata);
    EXPECT_DOUBLE_EQ(w.point, 0.0);
    EXPECT_DOUBLE_EQ(w.low, 0.0);
    EXPECT_DOUBLE_EQ(w.high, 0.5);
}

TEST(StratifiedInterval, SingleTrialStrataStayTotal)
{
    // Hundreds of one-trial strata is exactly the small-budget
    // regime; the result must stay finite, ordered, and inside
    // [0, 1], and must not inherit the Wilson center bias (the
    // interval brackets the point estimate).
    std::vector<StratumStat> strata;
    for (int i = 0; i < 200; ++i)
        strata.push_back({1.0 / 200.0, i % 7 == 0 ? 1u : 0u, 1,
                          false, 0.0});
    const WilsonInterval w = stratifiedInterval(strata);
    EXPECT_TRUE(std::isfinite(w.point));
    EXPECT_TRUE(std::isfinite(w.low));
    EXPECT_TRUE(std::isfinite(w.high));
    EXPECT_LE(w.low, w.point);
    EXPECT_LE(w.point, w.high);
    EXPECT_GE(w.low, 0.0);
    EXPECT_LE(w.high, 1.0);
    // 29 of 200 single-trial strata hit.
    EXPECT_NEAR(w.point, 29.0 / 200.0, 1e-12);
}

TEST(StratifiedInterval, SkippedMassShrinksTheInterval)
{
    // The two-level payoff: proving 90% of the space Masked leaves
    // only 10% of the weight carrying sampling width.
    std::vector<StratumStat> stratified;
    stratified.push_back({0.9, 0, 0, true, 0.0});
    stratified.push_back({0.1, 3, 100, false, 0.0});
    const WilsonInterval strat = stratifiedInterval(stratified);
    const WilsonInterval uniform = wilsonInterval(3, 100);
    EXPECT_LT(strat.high - strat.low,
              0.2 * (uniform.high - uniform.low));
}

TEST(EffectiveUniformTrials, ZeroWidthHitsTheCap)
{
    EXPECT_EQ(effectiveUniformTrials(0.0, 0.0, 1.96, 1 << 20),
              std::uint64_t(1) << 20);
}

TEST(EffectiveUniformTrials, RoundTripsAUniformCampaign)
{
    // A uniform campaign's own width should be worth about its own
    // trial count (k-rounding makes it approximate).
    const WilsonInterval w = wilsonInterval(50, 1000);
    const std::uint64_t n =
        effectiveUniformTrials(w.high - w.low, w.point);
    EXPECT_GE(n, 900u);
    EXPECT_LE(n, 1100u);
}

TEST(EffectiveUniformTrials, NarrowerWidthNeedsMoreTrials)
{
    const std::uint64_t wide = effectiveUniformTrials(0.01, 0.05);
    const std::uint64_t narrow = effectiveUniformTrials(0.001, 0.05);
    EXPECT_GT(narrow, wide);
}

TEST(RunningStats, TracksMeanMinMax)
{
    RunningStats s;
    s.add(2.0);
    s.add(8.0);
    s.add(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

} // namespace
} // namespace mbavf
