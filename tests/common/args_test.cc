/**
 * @file
 * Tests for the command-line parser: typed accessors plus the
 * hardened failure modes -- positional arguments, duplicated
 * options, and unknown options (with nearest-match suggestions) are
 * hard errors, not silent no-ops.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/args.hh"

namespace mbavf
{
namespace
{

/** Build Args from a token list (argv[0] supplied). */
Args
makeArgs(std::vector<std::string> tokens)
{
    std::vector<char *> argv;
    static std::string prog = "prog";
    argv.push_back(prog.data());
    for (std::string &token : tokens)
        argv.push_back(token.data());
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, TypedAccessors)
{
    Args args = makeArgs({"--workload=histogram", "--trials=500",
                          "--watchdog=2.5", "--resume"});
    EXPECT_TRUE(args.has("workload"));
    EXPECT_FALSE(args.has("seed"));
    EXPECT_EQ(args.getString("workload", ""), "histogram");
    EXPECT_EQ(args.getString("missing", "fallback"), "fallback");
    EXPECT_EQ(args.getInt("trials", 0), 500);
    EXPECT_EQ(args.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("watchdog", 0.0), 2.5);
    EXPECT_TRUE(args.getBool("resume"));
    EXPECT_FALSE(args.getBool("campaign"));
}

TEST(Args, BoolRejectsExplicitFalse)
{
    Args args = makeArgs({"--resume=0", "--campaign=false"});
    EXPECT_FALSE(args.getBool("resume"));
    EXPECT_FALSE(args.getBool("campaign"));
}

TEST(ArgsDeathTest, PositionalArgumentIsFatal)
{
    EXPECT_EXIT(makeArgs({"histogram"}),
                ::testing::ExitedWithCode(1), "positional argument");
}

TEST(ArgsDeathTest, DuplicateOptionIsFatal)
{
    EXPECT_EXIT(makeArgs({"--seed=1", "--seed=2"}),
                ::testing::ExitedWithCode(1),
                "given more than once");
}

TEST(ArgsDeathTest, EmptyOptionNameIsFatal)
{
    EXPECT_EXIT(makeArgs({"--=5"}), ::testing::ExitedWithCode(1),
                "malformed option");
}

TEST(Args, IntParsingAcceptsTheFullStrictGrammar)
{
    Args args = makeArgs({"--trials=0x10", "--seed=-3", "--big=42"});
    EXPECT_EQ(args.getInt("trials", 0), 16); // base prefix honoured
    EXPECT_EQ(args.getInt("seed", 0), -3);
    EXPECT_EQ(args.getIntInRange("big", 0, 1, 100), 42);
    EXPECT_EQ(args.getIntInRange("missing", 7, 1, 100), 7);
}

TEST(ArgsDeathTest, IntWithTrailingGarbageIsFatal)
{
    // "500x" silently read as 500 is how a typo becomes a
    // thousand-trial campaign; the parser must consume every byte.
    Args args = makeArgs({"--trials=500x"});
    EXPECT_EXIT(args.getInt("trials", 0),
                ::testing::ExitedWithCode(1), "is not an integer");
}

TEST(ArgsDeathTest, IntOverflowIsFatal)
{
    Args args = makeArgs({"--seed=99999999999999999999999"});
    EXPECT_EXIT(args.getInt("seed", 0),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(ArgsDeathTest, IntOutsideRangeIsFatal)
{
    Args args = makeArgs({"--workers=0"});
    EXPECT_EXIT(args.getIntInRange("workers", 1, 1, 256),
                ::testing::ExitedWithCode(1),
                "outside \\[1, 256\\]");
}

TEST(ArgsDeathTest, DoubleWithTrailingGarbageIsFatal)
{
    Args args = makeArgs({"--watchdog=2.5s"});
    EXPECT_EXIT(args.getDouble("watchdog", 0.0),
                ::testing::ExitedWithCode(1), "is not a number");
}

TEST(Args, RequireKnownAcceptsKnownOptions)
{
    Args args = makeArgs({"--trials=10", "--seed=3"});
    args.requireKnown({"trials", "seed", "workload"});
}

TEST(ArgsDeathTest, UnknownOptionSuggestsNearestMatch)
{
    Args args = makeArgs({"--trails=10"});
    EXPECT_EXIT(args.requireKnown({"trials", "seed", "workload"}),
                ::testing::ExitedWithCode(1),
                "did you mean --trials");
}

TEST(ArgsDeathTest, UnknownOptionWithoutNearMatchPointsAtHelp)
{
    Args args = makeArgs({"--frobnicate=10"});
    EXPECT_EXIT(args.requireKnown({"trials", "seed"}),
                ::testing::ExitedWithCode(1), "see --help");
}

} // namespace
} // namespace mbavf
