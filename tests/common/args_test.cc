/**
 * @file
 * Tests for the command-line parser: typed accessors plus the
 * hardened failure modes -- positional arguments, duplicated
 * options, and unknown options (with nearest-match suggestions) are
 * hard errors, not silent no-ops.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/args.hh"

namespace mbavf
{
namespace
{

/** Build Args from a token list (argv[0] supplied). */
Args
makeArgs(std::vector<std::string> tokens)
{
    std::vector<char *> argv;
    static std::string prog = "prog";
    argv.push_back(prog.data());
    for (std::string &token : tokens)
        argv.push_back(token.data());
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, TypedAccessors)
{
    Args args = makeArgs({"--workload=histogram", "--trials=500",
                          "--watchdog=2.5", "--resume"});
    EXPECT_TRUE(args.has("workload"));
    EXPECT_FALSE(args.has("seed"));
    EXPECT_EQ(args.getString("workload", ""), "histogram");
    EXPECT_EQ(args.getString("missing", "fallback"), "fallback");
    EXPECT_EQ(args.getInt("trials", 0), 500);
    EXPECT_EQ(args.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("watchdog", 0.0), 2.5);
    EXPECT_TRUE(args.getBool("resume"));
    EXPECT_FALSE(args.getBool("campaign"));
}

TEST(Args, BoolRejectsExplicitFalse)
{
    Args args = makeArgs({"--resume=0", "--campaign=false"});
    EXPECT_FALSE(args.getBool("resume"));
    EXPECT_FALSE(args.getBool("campaign"));
}

TEST(ArgsDeathTest, PositionalArgumentIsFatal)
{
    EXPECT_EXIT(makeArgs({"histogram"}),
                ::testing::ExitedWithCode(1), "positional argument");
}

TEST(ArgsDeathTest, DuplicateOptionIsFatal)
{
    EXPECT_EXIT(makeArgs({"--seed=1", "--seed=2"}),
                ::testing::ExitedWithCode(1),
                "given more than once");
}

TEST(ArgsDeathTest, EmptyOptionNameIsFatal)
{
    EXPECT_EXIT(makeArgs({"--=5"}), ::testing::ExitedWithCode(1),
                "malformed option");
}

TEST(Args, RequireKnownAcceptsKnownOptions)
{
    Args args = makeArgs({"--trials=10", "--seed=3"});
    args.requireKnown({"trials", "seed", "workload"});
}

TEST(ArgsDeathTest, UnknownOptionSuggestsNearestMatch)
{
    Args args = makeArgs({"--trails=10"});
    EXPECT_EXIT(args.requireKnown({"trials", "seed", "workload"}),
                ::testing::ExitedWithCode(1),
                "did you mean --trials");
}

TEST(ArgsDeathTest, UnknownOptionWithoutNearMatchPointsAtHelp)
{
    Args args = makeArgs({"--frobnicate=10"});
    EXPECT_EXIT(args.requireKnown({"trials", "seed"}),
                ::testing::ExitedWithCode(1), "see --help");
}

} // namespace
} // namespace mbavf
