/**
 * @file
 * Tests for the cycle engine: clock and deterministic event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hh"
#include "sim/event_queue.hh"

namespace mbavf
{
namespace
{

TEST(Clock, AdvanceAndAdvanceTo)
{
    Clock c;
    EXPECT_EQ(c.now(), 0u);
    c.advance(5);
    EXPECT_EQ(c.now(), 5u);
    c.advanceTo(3); // never goes backward
    EXPECT_EQ(c.now(), 5u);
    c.advanceTo(9);
    EXPECT_EQ(c.now(), 9u);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Cycle) { order.push_back(3); });
    q.schedule(10, [&](Cycle) { order.push_back(1); });
    q.schedule(20, [&](Cycle) { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&, i](Cycle) { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsBeforeBoundary)
{
    EventQueue q;
    std::vector<Cycle> fired;
    q.schedule(5, [&](Cycle t) { fired.push_back(t); });
    q.schedule(10, [&](Cycle t) { fired.push_back(t); });
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<Cycle>{5}));
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.nextTime(), 10u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<Cycle> fired;
    q.schedule(1, [&](Cycle t) {
        fired.push_back(t);
        q.schedule(t + 1, [&](Cycle t2) { fired.push_back(t2); });
    });
    q.runAll();
    EXPECT_EQ(fired, (std::vector<Cycle>{1, 2}));
}

} // namespace
} // namespace mbavf
