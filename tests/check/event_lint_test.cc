/**
 * @file
 * Tests of the cache event-stream replay lint, both on synthetic
 * event lists and on a recorder attached to the real cache model.
 */

#include <gtest/gtest.h>

#include "check/event_lint.hh"
#include "mem/cache.hh"

namespace mbavf
{
namespace
{

CacheGeometry
smallGeom()
{
    return {4, 2, 64};
}

CacheEvent
fill(unsigned set, unsigned way, Cycle t)
{
    CacheEvent e;
    e.kind = CacheEvent::Kind::Fill;
    e.set = set;
    e.way = way;
    e.time = t;
    return e;
}

CacheEvent
read(unsigned set, unsigned way, Addr addr, unsigned size, Cycle t)
{
    CacheEvent e;
    e.kind = CacheEvent::Kind::Read;
    e.set = set;
    e.way = way;
    e.addr = addr;
    e.size = size;
    e.time = t;
    return e;
}

CacheEvent
evict(unsigned set, unsigned way, Cycle t,
      std::uint64_t dirty_bytes = 0)
{
    CacheEvent e;
    e.kind = CacheEvent::Kind::Evict;
    e.set = set;
    e.way = way;
    e.dirtyBytes = dirty_bytes;
    e.time = t;
    return e;
}

TEST(EventLint, CleanSequence)
{
    CacheEventTrace trace{smallGeom(), {}};
    trace.events = {fill(0, 0, 10), read(0, 0, 0, 4, 12),
                    evict(0, 0, 20), fill(0, 0, 220)};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_TRUE(report.clean());
}

TEST(EventLint, FlagsReadBeforeFill)
{
    CacheEventTrace trace{smallGeom(), {read(0, 0, 0, 4, 5)}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_TRUE(report.has("event.read-before-fill"));
}

TEST(EventLint, FlagsWriteBeforeFill)
{
    CacheEvent w = read(1, 0, 64, 4, 5);
    w.kind = CacheEvent::Kind::Write;
    CacheEventTrace trace{smallGeom(), {w}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_TRUE(report.has("event.write-before-fill"));
}

TEST(EventLint, FlagsDoubleEvictAndEvictWithoutFill)
{
    CacheEventTrace trace{smallGeom(),
                          {evict(0, 0, 5), fill(0, 0, 10),
                           evict(0, 0, 20), evict(0, 0, 30)}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_EQ(report.countOf("event.evict-without-fill"), 1u);
    EXPECT_EQ(report.countOf("event.double-evict"), 1u);
}

TEST(EventLint, FlagsFillWhileResident)
{
    CacheEventTrace trace{smallGeom(), {fill(0, 0, 10), fill(0, 0, 20)}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_TRUE(report.has("event.fill-while-resident"));
}

TEST(EventLint, FlagsBadSlot)
{
    CacheEventTrace trace{smallGeom(), {fill(4, 0, 1), fill(0, 2, 1)}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_EQ(report.countOf("event.bad-slot"), 2u);
}

TEST(EventLint, FlagsAccessSpillingPastLine)
{
    CacheEventTrace trace{smallGeom(),
                          {fill(0, 0, 1), read(0, 0, 60, 8, 2)}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_TRUE(report.has("event.access-too-wide"));
}

TEST(EventLint, FlagsDirtyMaskWiderThanLine)
{
    CacheGeometry geom{4, 2, 8}; // 8-byte lines -> 8-bit dirty mask
    CacheEventTrace trace{geom,
                          {fill(0, 0, 1), evict(0, 0, 5, 0x100)}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_TRUE(report.has("event.mask-too-wide"));
}

TEST(EventLint, FlagsBackwardsEvictClock)
{
    CacheEventTrace trace{smallGeom(),
                          {fill(0, 0, 1), evict(0, 0, 50),
                           fill(0, 0, 60), evict(0, 0, 40)}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_TRUE(report.has("event.time-order"));
}

TEST(EventLint, FlagsFillBeforeItsEviction)
{
    CacheEventTrace trace{smallGeom(),
                          {fill(0, 0, 1), evict(0, 0, 50),
                           fill(0, 0, 40)}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_TRUE(report.has("event.time-order"));
}

TEST(EventLint, AccessTimesMayPrecedeFillDataReadyTime)
{
    // A missing access is stamped at data-ready; hits serviced in the
    // same cycles carry earlier request times. Legal.
    CacheEventTrace trace{smallGeom(),
                          {fill(0, 0, 240), read(0, 0, 0, 4, 240),
                           read(0, 0, 4, 4, 20), read(0, 0, 8, 4, 21)}};
    CheckReport report;
    lintCacheEvents(trace, report);
    EXPECT_TRUE(report.clean());
}

TEST(EventLint, RealCacheTraceIsClean)
{
    // Drive the actual write-back cache over a recorder and verify
    // the replay accepts what the model emits, including evictions
    // forced by way conflicts and an end-of-run flush.
    Dram dram(100);
    CacheParams params{"l1", 4, 2, 64, 2};
    Cache cache(params, dram);
    CacheTraceRecorder recorder({params.sets, params.ways,
                                 params.lineBytes});
    cache.setListener(&recorder);

    Cycle now = 0;
    for (unsigned pass = 0; pass < 3; ++pass) {
        for (Addr addr = 0; addr < 64 * 64; addr += 32) {
            MemRequest req;
            req.addr = addr;
            req.size = 4;
            req.cmd = pass == 1 ? MemCmd::Write : MemCmd::Read;
            now = cache.access(req, now) + 1;
        }
    }
    cache.flush(now);

    EXPECT_FALSE(recorder.trace().events.empty());
    CheckReport report;
    lintCacheEvents(recorder.trace(), report);
    EXPECT_TRUE(report.clean()) << "real trace must replay clean";
}

} // namespace
} // namespace mbavf
