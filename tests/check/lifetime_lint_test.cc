/**
 * @file
 * Tests of the lifetime lint pass and the CheckReport accumulator.
 */

#include <gtest/gtest.h>

#include "check/lifetime_lint.hh"
#include "check/report.hh"
#include "core/lifetime.hh"

namespace mbavf
{
namespace
{

WordLifetime
makeWord(std::initializer_list<LifeSegment> segs)
{
    WordLifetime word;
    for (const LifeSegment &seg : segs)
        word.appendUnchecked(seg);
    return word;
}

TEST(LifetimeLint, CleanWordHasNoFindings)
{
    WordLifetime word = makeWord({{0, 10, 0x0f, 0xff},
                                  {10, 20, 0x01, 0x01},
                                  {25, 40, 0x00, 0xf0}});
    CheckReport report;
    lintWordLifetime(word, 8, {}, "w", report);
    EXPECT_TRUE(report.clean());
}

TEST(LifetimeLint, FlagsBackwardsSegment)
{
    WordLifetime word = makeWord({{20, 10, 0, 0}});
    CheckReport report;
    lintWordLifetime(word, 8, {}, "w", report);
    EXPECT_TRUE(report.has("lifetime.backwards"));
}

TEST(LifetimeLint, FlagsEmptySegment)
{
    WordLifetime word = makeWord({{10, 10, 0, 0}});
    CheckReport report;
    lintWordLifetime(word, 8, {}, "w", report);
    EXPECT_TRUE(report.has("lifetime.empty-segment"));
}

TEST(LifetimeLint, FlagsOverlap)
{
    WordLifetime word = makeWord({{0, 10, 0, 1}, {5, 15, 0, 1}});
    CheckReport report;
    lintWordLifetime(word, 8, {}, "w", report);
    EXPECT_EQ(report.countOf("lifetime.overlap"), 1u);
    EXPECT_FALSE(report.has("lifetime.unsorted"));
}

TEST(LifetimeLint, FlagsUnsorted)
{
    WordLifetime word = makeWord({{10, 20, 0, 1}, {0, 5, 0, 1}});
    CheckReport report;
    lintWordLifetime(word, 8, {}, "w", report);
    EXPECT_TRUE(report.has("lifetime.unsorted"));
}

TEST(LifetimeLint, FlagsHorizonOnlyWhenConfigured)
{
    WordLifetime word = makeWord({{0, 100, 0, 1}});
    CheckReport no_horizon_report;
    lintWordLifetime(word, 8, {}, "w", no_horizon_report);
    EXPECT_TRUE(no_horizon_report.clean());

    LifetimeLintOptions opts;
    opts.horizon = 50;
    CheckReport report;
    lintWordLifetime(word, 8, opts, "w", report);
    EXPECT_TRUE(report.has("lifetime.horizon"));
}

TEST(LifetimeLint, FlagsMaskWiderThanWord)
{
    WordLifetime word = makeWord({{0, 10, 0, 0x100}});
    CheckReport report;
    lintWordLifetime(word, 8, {}, "w", report);
    EXPECT_TRUE(report.has("lifetime.mask-width"));
}

TEST(LifetimeLint, FlagsAceBitsOutsideReadMask)
{
    WordLifetime word = makeWord({{0, 10, 0x03, 0x01}});
    CheckReport report;
    lintWordLifetime(word, 8, {}, "w", report);
    EXPECT_TRUE(report.has("lifetime.ace-not-read"));

    LifetimeLintOptions opts;
    opts.requireAceSubsetRead = false;
    CheckReport relaxed;
    lintWordLifetime(word, 8, opts, "w", relaxed);
    EXPECT_TRUE(relaxed.clean());
}

TEST(LifetimeLint, StoreFlagsWordCountMismatch)
{
    LifetimeStore store(8, 4);
    store.container(7).words.resize(2);
    CheckReport report;
    lintLifetimeStore(store, {}, report);
    EXPECT_TRUE(report.has("lifetime.word-count"));
}

TEST(LifetimeLint, StoreLintsEveryWord)
{
    LifetimeStore store(8, 2);
    ContainerLifetime &c = store.container(0);
    c.words.resize(2);
    c.words[0].appendUnchecked({0, 10, 0, 1});
    c.words[1].appendUnchecked({5, 15, 0, 1});
    c.words[1].appendUnchecked({10, 20, 0, 1});
    c.words[1].appendUnchecked({25, 30, 0, 1});
    CheckReport report;
    lintLifetimeStore(store, {}, report);
    EXPECT_EQ(report.countOf("lifetime.overlap"), 1u);
    EXPECT_EQ(report.errorCount(), 1u);
}

TEST(CheckReport, PerCodeCapStoresFirstButCountsAll)
{
    CheckReport report;
    report.setPerCodeLimit(3);
    for (int i = 0; i < 10; ++i)
        report.error("x.y", "loc", "msg");
    EXPECT_EQ(report.findings().size(), 3u);
    EXPECT_EQ(report.countOf("x.y"), 10u);
    EXPECT_EQ(report.totalCount(), 10u);
}

TEST(CheckReport, SeparatesWarningsFromErrors)
{
    CheckReport report;
    report.warning("a.b", "loc", "msg");
    report.error("c.d", "loc", "msg");
    EXPECT_EQ(report.warningCount(), 1u);
    EXPECT_EQ(report.errorCount(), 1u);
    EXPECT_FALSE(report.clean());
}

} // namespace
} // namespace mbavf
