/**
 * @file
 * Tests of the MBAVF_CHECK runtime hook and the hardened
 * WordLifetime::append preconditions.
 *
 * append() regressions run in every build type: accepting a
 * backwards or overlapping segment in a release build is exactly the
 * silent-corruption bug the lint subsystem exists to catch. The
 * MBAVF_CHECK death tests only run when the build defines
 * MBAVF_RUNTIME_CHECKS (-DMBAVF_CHECKS=ON).
 */

#include <gtest/gtest.h>

#include "common/check.hh"
#include "core/lifetime.hh"

namespace mbavf
{
namespace
{

TEST(WordLifetimeAppend, RejectsBackwardsSegmentInEveryBuild)
{
    WordLifetime word;
    EXPECT_DEATH(word.append({20, 10, 0, 0}), "backwards");
}

TEST(WordLifetimeAppend, RejectsOverlappingSegmentInEveryBuild)
{
    WordLifetime word;
    // Release builds panic "out of order"; checks-on builds trip the
    // MBAVF_CHECK first, which reports the overlapping interval.
    word.append({0, 10, 0x1, 0x1});
    EXPECT_DEATH(word.append({5, 15, 0x1, 0x1}),
                 "out of order|overlaps current end");
}

TEST(WordLifetimeAppend, DropsEmptySegment)
{
    WordLifetime word;
    word.append({10, 10, 0x1, 0x1});
    EXPECT_TRUE(word.empty());
}

TEST(WordLifetimeAppend, AcceptsTouchingSegments)
{
    WordLifetime word;
    word.append({0, 10, 0x1, 0x1});
    word.append({10, 20, 0x2, 0x2});
    ASSERT_EQ(word.segments().size(), 2u);
}

TEST(WordLifetimeAppend, UncheckedBypassesValidation)
{
    // The lint/deserialization escape hatch must materialize
    // malformed data verbatim so the lint passes can inspect it.
    WordLifetime word;
    word.appendUnchecked({20, 10, 0, 0});
    word.appendUnchecked({5, 15, 0, 0});
    EXPECT_EQ(word.segments().size(), 2u);
}

TEST(RuntimeCheck, PassingCheckIsSilent)
{
    MBAVF_CHECK(1 + 1 == 2, "arithmetic still works");
    SUCCEED();
}

TEST(RuntimeCheck, ConditionNotEvaluatedWhenDisabled)
{
    int evaluations = 0;
    auto probe = [&]() {
        ++evaluations;
        return true;
    };
    MBAVF_CHECK(probe(), "side effect probe");
    if (runtimeChecksEnabled())
        EXPECT_EQ(evaluations, 1);
    else
        EXPECT_EQ(evaluations, 0);
}

#ifdef MBAVF_RUNTIME_CHECKS
TEST(RuntimeCheck, FailingCheckAbortsWithLocation)
{
    EXPECT_DEATH(MBAVF_CHECK(false, "must not hold"),
                 "runtime_check_test.*false.*must not hold");
}

TEST(RuntimeCheck, FailingCheckWithoutMessageAborts)
{
    EXPECT_DEATH(MBAVF_CHECK(2 < 1), "2 < 1");
}
#endif

} // namespace
} // namespace mbavf
