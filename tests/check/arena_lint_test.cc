/**
 * @file
 * Arena lint tests: a faithful snapshot is clean; malformed source
 * segments and post-build store mutations are flagged.
 */

#include <gtest/gtest.h>

#include "check/arena_lint.hh"
#include "check/report.hh"
#include "core/lifetime.hh"
#include "core/lifetime_arena.hh"

namespace mbavf
{
namespace
{

LifetimeStore
smallStore()
{
    LifetimeStore store(8, 2);
    store.container(1).words[0].append({0, 10, 0x0f, 0x0f});
    store.container(1).words[1].append({5, 9, 0x01, 0x03});
    store.container(4).words[0].append({2, 6, 0x80, 0x80});
    return store;
}

TEST(ArenaLint, FaithfulSnapshotIsClean)
{
    LifetimeStore store = smallStore();
    LifetimeArena arena(store);
    CheckReport report;
    lintLifetimeArena(arena, store, report);
    EXPECT_TRUE(report.clean());
}

TEST(ArenaLint, FlagsMalformedSourceSegments)
{
    LifetimeStore store = smallStore();
    // Overlap smuggled in through the unchecked (lint/deserialize)
    // path lands in the arena verbatim and breaks its ordering
    // invariant.
    store.container(4).words[0].appendUnchecked({4, 12, 0x01, 0x01});
    LifetimeArena arena(store);
    CheckReport report;
    lintLifetimeArena(arena, store, report);
    EXPECT_TRUE(report.has("arena.segment-order"));
}

TEST(ArenaLint, FlagsStoreMutatedAfterBuild)
{
    LifetimeStore store = smallStore();
    LifetimeArena arena(store);
    // Extending an existing word desynchronizes its segment list.
    store.container(4).words[0].append({20, 30, 0x01, 0x01});
    CheckReport report;
    lintLifetimeArena(arena, store, report);
    EXPECT_TRUE(report.has("arena.stale-word"));
}

TEST(ArenaLint, FlagsWordAddedAfterBuild)
{
    LifetimeStore store = smallStore();
    LifetimeArena arena(store);
    // A word populated after the snapshot is invisible to the arena.
    store.container(9).words[1].append({0, 4, 0x01, 0x01});
    CheckReport report;
    lintLifetimeArena(arena, store, report);
    EXPECT_TRUE(report.has("arena.missing-word"));
}

TEST(ArenaLint, FlagsConfigMismatch)
{
    LifetimeStore store = smallStore();
    LifetimeArena arena(store);
    LifetimeStore other(16, 2);
    CheckReport report;
    lintLifetimeArena(arena, other, report);
    EXPECT_TRUE(report.has("arena.config"));
}

} // namespace
} // namespace mbavf
