/**
 * @file
 * Tests of the geometry lint passes: physical-array domain contract,
 * fault-mode placement arithmetic, protection-scheme sanity, and the
 * exhaustive combo sweep against the real layout factories.
 */

#include <gtest/gtest.h>

#include "check/geometry_lint.hh"

namespace mbavf
{
namespace
{

/**
 * Synthetic array: rows x cols grid where each domain owns
 * `interleave` cells of one row at stride `interleave`, i.e. the
 * canonical correctly-interleaved layout.
 */
class GridArray : public PhysicalArray
{
  public:
    GridArray(std::uint64_t rows, std::uint64_t cols,
              unsigned interleave)
        : rows_(rows), cols_(cols), ileave_(interleave)
    {}

    std::uint64_t rows() const override { return rows_; }
    std::uint64_t cols() const override { return cols_; }

    PhysBit
    at(std::uint64_t row, std::uint64_t col) const override
    {
        PhysBit bit;
        bit.container = row;
        bit.bitInContainer = static_cast<std::uint32_t>(col);
        bit.domain = row * ileave_ + col % ileave_;
        return bit;
    }

  private:
    std::uint64_t rows_, cols_;
    unsigned ileave_;
};

/** Wrapper overriding a single cell's resolution. */
class PatchedArray : public PhysicalArray
{
  public:
    PatchedArray(const PhysicalArray &inner, std::uint64_t row,
                 std::uint64_t col, PhysBit bit)
        : inner_(inner), row_(row), col_(col), bit_(bit)
    {}

    std::uint64_t rows() const override { return inner_.rows(); }
    std::uint64_t cols() const override { return inner_.cols(); }

    PhysBit
    at(std::uint64_t row, std::uint64_t col) const override
    {
        if (row == row_ && col == col_)
            return bit_;
        return inner_.at(row, col);
    }

  private:
    const PhysicalArray &inner_;
    std::uint64_t row_, col_;
    PhysBit bit_;
};

TEST(GeometryLint, CleanInterleavedArray)
{
    GridArray array(4, 16, 4);
    GeometryLintOptions opts;
    opts.interleave = 4;
    opts.containerBits = 16;
    CheckReport report;
    lintPhysicalArray(array, opts, "grid", report);
    EXPECT_TRUE(report.clean());
}

TEST(GeometryLint, FlagsEmptyArray)
{
    GridArray array(0, 16, 1);
    CheckReport report;
    lintPhysicalArray(array, {}, "grid", report);
    EXPECT_TRUE(report.has("geometry.empty-array"));
}

TEST(GeometryLint, FlagsInterleaveNotDividingRowWidth)
{
    GridArray array(2, 10, 4);
    GeometryLintOptions opts;
    opts.interleave = 4;
    CheckReport report;
    lintPhysicalArray(array, opts, "grid", report);
    EXPECT_TRUE(report.has("geometry.interleave-row-width"));
}

TEST(GeometryLint, FlagsDomainStraddle)
{
    GridArray grid(2, 16, 4);
    // Remap one cell into its neighbor's domain: that domain now owns
    // two adjacent columns, defeating the interleave.
    PhysBit bad = grid.at(0, 0);
    bad.bitInContainer = 1;
    PatchedArray array(grid, 0, 1, bad);
    GeometryLintOptions opts;
    opts.interleave = 4;
    CheckReport report;
    lintPhysicalArray(array, opts, "grid", report);
    EXPECT_TRUE(report.has("geometry.domain-straddle"));
}

TEST(GeometryLint, FlagsInvalidDomain)
{
    GridArray grid(2, 8, 2);
    PhysBit bad = grid.at(1, 3);
    bad.domain = invalidDomain;
    PatchedArray array(grid, 1, 3, bad);
    GeometryLintOptions opts;
    opts.interleave = 2;
    CheckReport report;
    lintPhysicalArray(array, opts, "grid", report);
    EXPECT_TRUE(report.has("geometry.invalid-domain"));
    // ... and the missing cell unbalances its domain.
    EXPECT_TRUE(report.has("geometry.domain-size-mismatch"));
}

TEST(GeometryLint, FlagsBitOutsideContainer)
{
    GridArray grid(2, 8, 1);
    PhysBit bad = grid.at(0, 0);
    bad.bitInContainer = 99;
    PatchedArray array(grid, 0, 0, bad);
    GeometryLintOptions opts;
    opts.containerBits = 8;
    CheckReport report;
    lintPhysicalArray(array, opts, "grid", report);
    EXPECT_TRUE(report.has("geometry.bit-out-of-container"));
}

TEST(GeometryLint, FlagsDomainSplitAcrossRows)
{
    GridArray grid(2, 8, 2);
    PhysBit bad = grid.at(1, 0);
    bad.domain = grid.at(0, 0).domain;
    PatchedArray array(grid, 1, 0, bad);
    GeometryLintOptions opts;
    opts.interleave = 2;
    CheckReport report;
    lintPhysicalArray(array, opts, "grid", report);
    EXPECT_TRUE(report.has("geometry.domain-split-rows"));
}

TEST(GeometryLint, RealLayoutFactoriesAreClean)
{
    CacheGeometry geom{16, 4, 64};
    for (CacheInterleave style :
         {CacheInterleave::Logical, CacheInterleave::WayPhysical,
          CacheInterleave::IndexPhysical}) {
        for (unsigned ileave : {1u, 2u, 4u}) {
            auto array = makeCacheArray(geom, style, ileave);
            GeometryLintOptions opts;
            opts.interleave = ileave;
            opts.containerBits = geom.lineBits();
            CheckReport report;
            lintPhysicalArray(*array, opts,
                              cacheInterleaveName(style), report);
            EXPECT_TRUE(report.clean())
                << cacheInterleaveName(style) << " x" << ileave;
        }
    }
}

TEST(GeometryLint, ModePlacementArithmeticIsConsistent)
{
    GridArray array(8, 32, 1);
    CheckReport report;
    for (unsigned m = 1; m <= 8; ++m)
        lintFaultModePlacement(FaultMode::mx1(m), array, "grid",
                               report);
    lintFaultModePlacement(FaultMode::rect(2, 2), array, "grid",
                           report);
    EXPECT_TRUE(report.clean());
}

TEST(GeometryLint, WarnsWhenModeIsLargerThanArray)
{
    GridArray array(1, 4, 1);
    CheckReport report;
    lintFaultModePlacement(FaultMode::mx1(8), array, "grid", report);
    EXPECT_TRUE(report.has("geometry.mode-no-groups"));
    EXPECT_EQ(report.errorCount(), 0u);
}

TEST(GeometryLint, FlagsEmptyProtectionDomain)
{
    auto scheme = makeScheme("secded");
    CheckReport report;
    lintProtectionScheme(*scheme, 0, "combo", report);
    EXPECT_TRUE(report.has("geometry.scheme-domain"));
}

TEST(GeometryLint, RealSchemesAreClean)
{
    CheckReport report;
    for (const char *name : {"none", "parity", "secded", "dected",
                             "crc"}) {
        auto scheme = makeScheme(name);
        lintProtectionScheme(*scheme, 512, name, report);
    }
    EXPECT_TRUE(report.clean());
}

TEST(GeometryLint, ComboSweepOverRealModelIsClean)
{
    ComboLintConfig config;
    config.cacheGeom = {16, 4, 64};
    config.regGeom = {32, 64, 4, 32};
    CheckReport report;
    lintGeometryCombos(config, report);
    EXPECT_TRUE(report.clean());
}

TEST(GeometryLint, ComboSweepReportsNonDividingInterleave)
{
    ComboLintConfig config;
    config.cacheGeom = {16, 4, 64};
    config.regGeom = {32, 64, 4, 32};
    config.interleaves = {3}; // divides neither ways, sets, nor bits
    CheckReport report;
    lintGeometryCombos(config, report);
    EXPECT_TRUE(report.has("geometry.interleave-divide"));
}

} // namespace
} // namespace mbavf
