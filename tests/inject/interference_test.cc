/**
 * @file
 * Tests for the ACE-interference study driver (inject/interference),
 * which had no dedicated coverage: invariants of the counters,
 * determinism across thread counts, and the non-SDC definition of
 * interference (a multi-bit group that crashes or hangs interferes
 * with the single-bit SDC prediction just as masking does).
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "inject/campaign.hh"
#include "inject/interference.hh"

namespace mbavf
{
namespace
{

GpuConfig
cfg()
{
    return GpuConfig{};
}

TEST(Interference, CountersAreConsistent)
{
    InterferenceStats s =
        runInterferenceStudy("recursive_gaussian", 1, cfg(), 40, 3);
    EXPECT_EQ(s.workload, "recursive_gaussian");
    EXPECT_EQ(s.singleInjections, 40u);
    EXPECT_LE(s.sdcAceBits, 40u);
    for (unsigned m = 0; m < 3; ++m) {
        EXPECT_EQ(s.groupsTested[m], s.sdcAceBits);
        EXPECT_LE(s.interference[m], s.groupsTested[m]);
    }
}

TEST(Interference, DeterministicAcrossThreadCounts)
{
    setParallelThreads(1);
    InterferenceStats serial =
        runInterferenceStudy("matrix_transpose", 1, cfg(), 50, 9);
    setParallelThreads(4);
    InterferenceStats pooled =
        runInterferenceStudy("matrix_transpose", 1, cfg(), 50, 9);
    setParallelThreads(0);

    EXPECT_EQ(serial.sdcAceBits, pooled.sdcAceBits);
    EXPECT_EQ(serial.groupsTested, pooled.groupsTested);
    EXPECT_EQ(serial.interference, pooled.interference);
}

TEST(Interference, ZeroInjectionsYieldZeroGroups)
{
    InterferenceStats s =
        runInterferenceStudy("histogram", 1, cfg(), 0, 1);
    EXPECT_EQ(s.singleInjections, 0u);
    EXPECT_EQ(s.sdcAceBits, 0u);
    for (unsigned m = 0; m < 3; ++m) {
        EXPECT_EQ(s.groupsTested[m], 0u);
        EXPECT_EQ(s.interference[m], 0u);
    }
}

TEST(Interference, NonSdcOutcomeCountsAsInterference)
{
    // The study's phase 2 counts any non-SDC group outcome as
    // interference, matching its documentation. A trial-contained
    // Crash is non-SDC: widening a single-bit SDC flip into a group
    // that drives an address register out of range must therefore
    // count, not abort the study. This pins the definition by
    // construction: a campaign whose multi-bit outcome distribution
    // includes Crash still produces interference <= groupsTested and
    // completes the study.
    InterferenceStats s =
        runInterferenceStudy("recursive_gaussian", 1, cfg(), 250, 11);
    for (unsigned m = 0; m < 3; ++m)
        EXPECT_LE(s.interference[m], s.groupsTested[m]);
    // The study must have found at least one SDC bit for the
    // assertion above to be non-vacuous.
    EXPECT_GT(s.sdcAceBits, 0u);
}

} // namespace
} // namespace mbavf
