/**
 * @file
 * Tests for the campaign checkpoint journal: round-trip, the
 * incremental writer's contiguous-prefix invariant, resume
 * bit-identity, the journal lint, and a truncation fuzz mirroring
 * the lifetime_io one: a journal cut at EVERY byte offset must
 * either load as an exact prefix of the original (safe replay) or
 * be rejected -- never load wrong data.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hh"
#include "common/trap.hh"
#include "inject/campaign.hh"
#include "inject/journal.hh"

namespace mbavf
{
namespace
{

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

JournalHeader
sampleHeader()
{
    JournalHeader h;
    h.workload = "histogram";
    h.scale = 2;
    h.kind = TrialKind::Register;
    h.baseSeed = 99;
    h.trials = 50;
    return h;
}

JournalRecord
makeRecord(const JournalHeader &h, std::uint64_t index,
           InjectOutcome outcome, std::string code = "")
{
    JournalRecord r;
    r.index = index;
    r.seed = splitMix64(h.baseSeed, index);
    r.result.outcome = outcome;
    r.result.code = std::move(code);
    return r;
}

CampaignJournal
sampleJournal(std::size_t n)
{
    CampaignJournal j;
    j.header = sampleHeader();
    for (std::size_t i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0:
            j.records.push_back(
                makeRecord(j.header, i, InjectOutcome::Masked));
            break;
          case 1:
            j.records.push_back(
                makeRecord(j.header, i, InjectOutcome::Sdc));
            break;
          case 2:
            j.records.push_back(makeRecord(
                j.header, i, InjectOutcome::Crash, trapcode::memOob));
            break;
          default:
            j.records.push_back(
                makeRecord(j.header, i, InjectOutcome::Hang,
                           trapcode::watchdogInstrs));
            break;
        }
    }
    return j;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

TEST(Journal, SaveLoadRoundTrip)
{
    const std::string path = tempPath("journal_roundtrip.txt");
    CampaignJournal journal = sampleJournal(9);
    std::string error;
    ASSERT_TRUE(journal.save(path, error)) << error;

    CampaignJournal loaded;
    ASSERT_TRUE(CampaignJournal::load(path, loaded, error)) << error;
    EXPECT_TRUE(loaded.header == journal.header);
    ASSERT_EQ(loaded.records.size(), journal.records.size());
    for (std::size_t i = 0; i < loaded.records.size(); ++i)
        EXPECT_EQ(loaded.records[i], journal.records[i]);
    std::remove(path.c_str());
}

TEST(Journal, TallyMatchesRecords)
{
    CampaignJournal journal = sampleJournal(8);
    CampaignTally tally = journal.tally();
    EXPECT_EQ(tally.total(), 8u);
    EXPECT_EQ(tally.count(InjectOutcome::Masked), 2u);
    EXPECT_EQ(tally.count(InjectOutcome::Sdc), 2u);
    EXPECT_EQ(tally.count(InjectOutcome::Crash), 2u);
    EXPECT_EQ(tally.count(InjectOutcome::Hang), 2u);
    EXPECT_EQ(tally.codeCounts.at(trapcode::memOob), 2u);
}

TEST(Journal, TruncationAtEveryByteRejectsOrReplaysPrefix)
{
    const std::string path = tempPath("journal_truncate.txt");
    CampaignJournal journal = sampleJournal(12);
    std::string error;
    ASSERT_TRUE(journal.save(path, error)) << error;
    const std::string bytes = fileBytes(path);
    ASSERT_FALSE(bytes.empty());

    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
        writeBytes(path, bytes.substr(0, cut));
        CampaignJournal loaded;
        std::string err;
        if (!CampaignJournal::load(path, loaded, err))
            continue; // rejected: fine
        // Accepted: must be the true header and an exact record
        // prefix -- anything else would resume the wrong campaign.
        EXPECT_TRUE(loaded.header == journal.header)
            << "cut at byte " << cut;
        ASSERT_LE(loaded.records.size(), journal.records.size());
        for (std::size_t i = 0; i < loaded.records.size(); ++i) {
            EXPECT_EQ(loaded.records[i], journal.records[i])
                << "cut at byte " << cut << " record " << i;
        }
    }
    std::remove(path.c_str());
}

TEST(Journal, LoadRejectsCorruptedLines)
{
    const std::string path = tempPath("journal_corrupt.txt");
    CampaignJournal journal = sampleJournal(4);
    std::string error;
    ASSERT_TRUE(journal.save(path, error)) << error;
    std::string bytes = fileBytes(path);

    CampaignJournal loaded;
    // Break a complete (newline-terminated) record line.
    writeBytes(path, [&] {
        std::string bad = bytes;
        bad.replace(bad.find("masked"), 6, "junked");
        return bad;
    }());
    EXPECT_FALSE(CampaignJournal::load(path, loaded, error));

    // Out-of-order indices.
    writeBytes(path, [&] {
        std::string bad = bytes;
        bad.replace(bad.find("\n2 "), 3, "\n7 ");
        return bad;
    }());
    EXPECT_FALSE(CampaignJournal::load(path, loaded, error));

    // Wrong magic.
    writeBytes(path, "mbavf-journal v9 workload=h scale=1 "
                     "kind=register seed=1 trials=1\n");
    EXPECT_FALSE(CampaignJournal::load(path, loaded, error));

    std::remove(path.c_str());
}

TEST(Journal, WriterKeepsContiguousPrefixOnDisk)
{
    const std::string path = tempPath("journal_writer.txt");
    std::remove(path.c_str());
    JournalHeader header = sampleHeader();
    header.trials = 5;
    JournalWriter writer(path, header, 1);

    const TrialResult masked{InjectOutcome::Masked, ""};
    // Trial 2 completes first: nothing contiguous yet, but the
    // flush interval of 1 means any prefix growth hits the disk.
    writer.record(2, masked);
    writer.record(0, masked);
    CampaignJournal snap;
    std::string error;
    ASSERT_TRUE(CampaignJournal::load(path, snap, error)) << error;
    EXPECT_EQ(snap.records.size(), 1u); // only trial 0 is contiguous

    writer.record(1, masked); // unlocks 0-2
    ASSERT_TRUE(CampaignJournal::load(path, snap, error)) << error;
    EXPECT_EQ(snap.records.size(), 3u);

    writer.record(4, masked);
    writer.record(3, masked);
    writer.finish();
    ASSERT_TRUE(CampaignJournal::load(path, snap, error)) << error;
    EXPECT_EQ(snap.records.size(), 5u);
    EXPECT_EQ(snap.tally().count(InjectOutcome::Masked), 5u);
    std::remove(path.c_str());
}

TEST(Journal, WriterResumesFromCompletedPrefix)
{
    const std::string path = tempPath("journal_resume.txt");
    std::remove(path.c_str());
    JournalHeader header = sampleHeader();
    header.trials = 4;

    CampaignJournal first;
    first.header = header;
    first.records.push_back(
        makeRecord(header, 0, InjectOutcome::Sdc));
    first.records.push_back(makeRecord(
        header, 1, InjectOutcome::Crash, trapcode::memAlign));

    JournalWriter writer(path, header, 1, first.records);
    writer.record(2, {InjectOutcome::Masked, ""});
    writer.record(3, {InjectOutcome::Masked, ""});
    writer.finish();

    CampaignJournal loaded;
    std::string error;
    ASSERT_TRUE(CampaignJournal::load(path, loaded, error)) << error;
    ASSERT_EQ(loaded.records.size(), 4u);
    EXPECT_EQ(loaded.records[1].result.code, trapcode::memAlign);
    EXPECT_EQ(loaded.records[3].result.outcome,
              InjectOutcome::Masked);
    std::remove(path.c_str());
}

TEST(Journal, LintAcceptsValidJournal)
{
    const std::string path = tempPath("journal_lint_ok.txt");
    CampaignJournal journal = sampleJournal(10);
    journal.records.push_back(makeRecord(journal.header, 10,
                                         InjectOutcome::Due,
                                         "due.parity"));
    std::string error;
    ASSERT_TRUE(journal.save(path, error)) << error;
    CheckReport report;
    lintCampaignJournal(path, report);
    EXPECT_TRUE(report.clean());
    std::remove(path.c_str());
}

TEST(Journal, LintFlagsSemanticCorruption)
{
    const std::string path = tempPath("journal_lint_bad.txt");
    JournalHeader h = sampleHeader();
    CampaignJournal journal;
    journal.header = h;
    journal.records.push_back(
        makeRecord(h, 0, InjectOutcome::Masked));
    std::string error;
    ASSERT_TRUE(journal.save(path, error)) << error;
    std::string bytes = fileBytes(path);

    // Seed tampering.
    {
        CampaignJournal bad = journal;
        bad.records[0].seed ^= 1;
        ASSERT_TRUE(bad.save(path, error)) << error;
        CheckReport report;
        lintCampaignJournal(path, report);
        EXPECT_TRUE(report.has("journal.seed"));
    }
    // Index gap.
    {
        CampaignJournal bad = journal;
        bad.records[0] = makeRecord(h, 3, InjectOutcome::Masked);
        ASSERT_TRUE(bad.save(path, error)) << error;
        CheckReport report;
        lintCampaignJournal(path, report);
        EXPECT_TRUE(report.has("journal.index"));
    }
    // A crash must carry a known non-watchdog trap code...
    {
        CampaignJournal bad = journal;
        bad.records[0] = makeRecord(h, 0, InjectOutcome::Crash,
                                    "trap.nonsense");
        ASSERT_TRUE(bad.save(path, error)) << error;
        CheckReport report;
        lintCampaignJournal(path, report);
        EXPECT_TRUE(report.has("journal.code"));
    }
    // ... a hang a watchdog code ...
    {
        CampaignJournal bad = journal;
        bad.records[0] = makeRecord(h, 0, InjectOutcome::Hang,
                                    trapcode::memOob);
        ASSERT_TRUE(bad.save(path, error)) << error;
        CheckReport report;
        lintCampaignJournal(path, report);
        EXPECT_TRUE(report.has("journal.code"));
    }
    // ... and a masked trial none at all.
    {
        CampaignJournal bad = journal;
        bad.records[0].result.code = "trap.mem.oob";
        ASSERT_TRUE(bad.save(path, error)) << error;
        CheckReport report;
        lintCampaignJournal(path, report);
        EXPECT_TRUE(report.has("journal.code"));
    }
    // Malformed record line.
    {
        writeBytes(path, bytes + "one two\n");
        CheckReport report;
        lintCampaignJournal(path, report);
        EXPECT_TRUE(report.has("journal.record"));
    }
    std::remove(path.c_str());
}

TEST(Journal, ResumedCampaignIsBitIdenticalToStraightRun)
{
    // The end-to-end resume property at the library level: run a
    // campaign journaled to completion, then replay its first half
    // as a resume seed and run the rest -- the two journals must be
    // byte-identical on disk.
    const std::string straight = tempPath("journal_straight.txt");
    const std::string resumed = tempPath("journal_resumed.txt");
    std::remove(straight.c_str());
    std::remove(resumed.c_str());

    Campaign campaign("histogram", 1, GpuConfig{});
    JournalHeader header;
    header.workload = "histogram";
    header.scale = 1;
    header.kind = TrialKind::Memory;
    header.baseSeed = 5;
    header.trials = 24;

    {
        JournalWriter writer(straight, header, 4);
        campaign.runTrialsDetailed(
            0, 24, 5, TrialKind::Memory,
            [&](std::size_t t, const TrialResult &r) {
                writer.record(t, r);
            });
        writer.finish();
    }
    CampaignJournal full;
    std::string error;
    ASSERT_TRUE(CampaignJournal::load(straight, full, error))
        << error;

    std::vector<JournalRecord> half(full.records.begin(),
                                    full.records.begin() + 12);
    {
        JournalWriter writer(resumed, header, 4, std::move(half));
        campaign.runTrialsDetailed(
            12, 12, 5, TrialKind::Memory,
            [&](std::size_t t, const TrialResult &r) {
                writer.record(t, r);
            });
        writer.finish();
    }
    EXPECT_EQ(fileBytes(straight), fileBytes(resumed));
    std::remove(straight.c_str());
    std::remove(resumed.c_str());
}

} // namespace
} // namespace mbavf
