/**
 * @file
 * Tests for the fault-injection campaign and the ACE-interference
 * study driver.
 */

#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "common/bits.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/trap.hh"
#include "inject/campaign.hh"
#include "inject/interference.hh"
#include "obs/adapters.hh"

namespace mbavf
{
namespace
{

GpuConfig
cfg()
{
    return GpuConfig{};
}

TEST(Campaign, GoldenRunsOnce)
{
    Campaign c("histogram", 1, cfg());
    EXPECT_GT(c.goldenInstrs(), 0u);
}

TEST(Campaign, NoFlipIsMasked)
{
    Campaign c("histogram", 1, cfg());
    EXPECT_EQ(c.inject(std::vector<RegInjection>{}),
              InjectOutcome::Masked);
}

TEST(Campaign, UnusedRegisterFlipIsMasked)
{
    Campaign c("histogram", 1, cfg());
    RegInjection inj;
    inj.cu = 0;
    inj.slot = 0;
    inj.reg = 31; // kernels never touch r31
    inj.lane = 0;
    inj.bitMask = 0xFFFFFFFF;
    inj.triggerInstr = c.goldenInstrs() / 2;
    EXPECT_EQ(c.inject(inj), InjectOutcome::Masked);
}

TEST(Campaign, TargetedInjectionCausesSdc)
{
    // recursive_gaussian keeps its IIR accumulator in r3 for the
    // whole row loop; flipping it mid-loop must corrupt the output.
    // Its 3 waves run sequentially (CU0, CU1, CU2), so a trigger in
    // the first sixth of the instruction stream lands inside CU0's
    // wave.
    Campaign c("recursive_gaussian", 1, cfg());
    RegInjection inj;
    inj.cu = 0;
    inj.slot = 0;
    inj.reg = 3;
    inj.lane = 5;
    inj.bitMask = 0x4;
    inj.triggerInstr = c.goldenInstrs() / 6;
    EXPECT_EQ(c.inject(inj), InjectOutcome::Sdc);
}

TEST(Campaign, SamplerStaysInBounds)
{
    Campaign c("histogram", 1, cfg());
    Rng rng(5);
    GpuConfig config = cfg();
    for (int i = 0; i < 200; ++i) {
        RegInjection inj = c.sampleSingleBit(rng);
        EXPECT_LT(inj.cu, config.numCus);
        EXPECT_LT(inj.slot, config.regs.numSlots);
        EXPECT_LT(inj.reg, config.regs.numRegs);
        EXPECT_LT(inj.lane, config.regs.numLanes);
        EXPECT_NE(inj.bitMask, 0u);
        EXPECT_EQ(popCount(inj.bitMask), 1);
        EXPECT_LT(inj.triggerInstr, c.goldenInstrs());
    }
}

TEST(Campaign, InjectionIsRepeatable)
{
    Campaign c("dct", 1, cfg());
    Rng rng(17);
    RegInjection inj = c.sampleSingleBit(rng);
    InjectOutcome a = c.inject(inj);
    InjectOutcome b = c.inject(inj);
    EXPECT_EQ(a, b);
}

TEST(Campaign, MemInjectionIntoOutputIsSdc)
{
    // Flipping a bit of an output-buffer byte after the last write
    // must show up in the comparison.
    Campaign c("histogram", 1, cfg());
    MemInjection inj;
    // The bins buffer follows the 4096-word data buffer; bin counts
    // are small, so bit 0 of a low count byte flips the output.
    inj.addr = 4096 * 4; // first bin counter
    inj.bitMask = 0x1;
    inj.triggerInstr = c.goldenInstrs() - 1;
    EXPECT_EQ(c.injectMem(inj), InjectOutcome::Sdc);
}

TEST(Campaign, MemInjectionIntoDeadInputIsMasked)
{
    // Flipping input data after the last kernel has consumed it has
    // no effect on the output.
    Campaign c("matrix_transpose", 1, cfg());
    MemInjection inj;
    inj.addr = 0; // input matrix byte
    inj.bitMask = 0x80;
    inj.triggerInstr = c.goldenInstrs() - 1;
    EXPECT_EQ(c.injectMem(inj), InjectOutcome::Masked);
}

TEST(Campaign, MemInjectionEarlyIntoInputIsSdc)
{
    Campaign c("matrix_transpose", 1, cfg());
    MemInjection inj;
    inj.addr = 0;
    inj.bitMask = 0x80;
    inj.triggerInstr = 0; // before any lane reads it
    EXPECT_EQ(c.injectMem(inj), InjectOutcome::Sdc);
}

TEST(Campaign, MemSamplerStaysInFootprint)
{
    Campaign c("histogram", 1, cfg());
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        MemInjection inj = c.sampleMemBit(rng);
        EXPECT_LT(inj.addr, (4096u + 64u) * 4u + 64u);
        EXPECT_NE(inj.bitMask, 0);
    }
}

TEST(Campaign, SamplerTargetsOnlyCusWithWaves)
{
    // recursive_gaussian launches 3 waves; with more CUs than waves
    // the tail CUs execute nothing, and sampling them would deflate
    // the measured SDC probability. The sampler must stay within the
    // CUs that actually received waves.
    GpuConfig config = cfg();
    config.numCus = 8;
    Campaign c("recursive_gaussian", 1, config);
    EXPECT_EQ(c.cusUsed(), 3u);
    Rng rng(11);
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(c.sampleSingleBit(rng).cu, 3u);
}

TEST(Campaign, RunTrialsBitIdenticalAcrossThreadCounts)
{
    Campaign c("histogram", 1, cfg());
    setParallelThreads(1);
    std::vector<InjectOutcome> serial_reg =
        c.runTrials(12, 99, TrialKind::Register);
    std::vector<InjectOutcome> serial_mem =
        c.runTrials(8, 7, TrialKind::Memory);
    setParallelThreads(4);
    std::vector<InjectOutcome> pool_reg =
        c.runTrials(12, 99, TrialKind::Register);
    std::vector<InjectOutcome> pool_mem =
        c.runTrials(8, 7, TrialKind::Memory);
    EXPECT_EQ(serial_reg, pool_reg);
    EXPECT_EQ(serial_mem, pool_mem);
    setParallelThreads(0);
}

TEST(Campaign, TrialReproducesInIsolation)
{
    // Any trial t of a batch is reproducible alone from
    // (base_seed, t): per-trial seeds are splitMix64(base, t), not a
    // shared RNG stream.
    Campaign c("histogram", 1, cfg());
    std::vector<InjectOutcome> all =
        c.runTrials(8, 21, TrialKind::Register);
    Rng rng(splitMix64(21, 5));
    RegInjection site = c.sampleSingleBit(rng);
    EXPECT_EQ(c.inject(site), all[5]);
}

TEST(Campaign, RunBatchPreservesSpecOrder)
{
    Campaign c("histogram", 1, cfg());
    // Spec 0 is a guaranteed-masked flip (r31 is never touched);
    // spec 1 corrupts an output bin directly.
    TrialSpec masked;
    RegInjection reg;
    reg.reg = 31;
    reg.bitMask = 0xFFFFFFFF;
    reg.triggerInstr = c.goldenInstrs() / 2;
    masked.regFlips.push_back(reg);

    TrialSpec sdc;
    MemInjection mem;
    mem.addr = 4096 * 4; // first bin counter
    mem.bitMask = 0x1;
    mem.triggerInstr = c.goldenInstrs() - 1;
    sdc.memFlips.push_back(mem);

    std::vector<InjectOutcome> out = c.runBatch({masked, sdc});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], InjectOutcome::Masked);
    EXPECT_EQ(out[1], InjectOutcome::Sdc);
}

TEST(Campaign, AddressFlipCausesCrashNotAbort)
{
    // histogram computes addresses into r5 (rTmp); flipping its top
    // bit between the address computation and the load drives the
    // access out of the 4 MiB memory. The trial must classify Crash
    // with the oob trap code -- and never abort the process.
    Campaign c("histogram", 1, cfg());
    std::vector<TrialSpec> specs;
    for (std::uint64_t t = 0; t < 10; ++t) {
        RegInjection inj;
        inj.cu = 0;
        inj.slot = 0;
        inj.reg = 5;
        inj.lane = 0;
        inj.bitMask = 0x80000000u;
        inj.triggerInstr = t;
        specs.push_back(TrialSpec{{inj}, {}});
    }
    std::vector<TrialResult> results = c.runBatchDetailed(specs);
    ASSERT_EQ(results.size(), specs.size());
    unsigned crashes = 0;
    for (const TrialResult &r : results) {
        if (r.outcome == InjectOutcome::Crash) {
            ++crashes;
            EXPECT_EQ(r.code, trapcode::memOob);
        }
    }
    EXPECT_GT(crashes, 0u);
}

TEST(Campaign, UnalignedAddressFlipCausesCrash)
{
    Campaign c("histogram", 1, cfg());
    std::vector<TrialSpec> specs;
    for (std::uint64_t t = 0; t < 10; ++t) {
        RegInjection inj;
        inj.reg = 5;
        inj.bitMask = 0x1; // odd address
        inj.triggerInstr = t;
        specs.push_back(TrialSpec{{inj}, {}});
    }
    unsigned align_crashes = 0;
    for (const TrialResult &r : c.runBatchDetailed(specs)) {
        if (r.outcome == InjectOutcome::Crash &&
            r.code == trapcode::memAlign) {
            ++align_crashes;
        }
    }
    EXPECT_GT(align_crashes, 0u);
}

TEST(Campaign, SubGoldenBudgetClassifiesHang)
{
    // A budget below the golden run is the deterministic stand-in
    // for corrupted control flow that never terminates.
    Campaign c("histogram", 1, cfg());
    c.setWatchdogBudgets(c.goldenInstrs() / 2, 0);
    TrialResult r = c.runOne(TrialSpec{});
    EXPECT_EQ(r.outcome, InjectOutcome::Hang);
    EXPECT_EQ(r.code, trapcode::watchdogInstrs);

    c.setWatchdogBudgets(0, c.goldenCycles() / 2);
    r = c.runOne(TrialSpec{});
    EXPECT_EQ(r.outcome, InjectOutcome::Hang);
    EXPECT_EQ(r.code, trapcode::watchdogCycles);
}

TEST(Campaign, DefaultBudgetsPassCleanTrials)
{
    Campaign c("histogram", 1, cfg());
    EXPECT_GT(c.goldenCycles(), 0u);
    TrialResult r = c.runOne(TrialSpec{});
    EXPECT_EQ(r.outcome, InjectOutcome::Masked);
    EXPECT_TRUE(r.code.empty());
}

TEST(Campaign, ProtectionClassifiesDueAndCorrects)
{
    // The recursive_gaussian r3 flip is a known SDC. Parity over an
    // 8-bit domain detects the single flip (Due); SEC-DED corrects
    // it, so the trial executes clean (Masked); no protection lets
    // it through (Sdc).
    Campaign c("recursive_gaussian", 1, cfg());
    RegInjection inj;
    inj.cu = 0;
    inj.slot = 0;
    inj.reg = 3;
    inj.lane = 5;
    inj.bitMask = 0x4;
    inj.triggerInstr = c.goldenInstrs() / 6;
    const TrialSpec spec{{inj}, {}};

    EXPECT_EQ(c.runOne(spec).outcome, InjectOutcome::Sdc);

    c.setProtection("parity", 8);
    TrialResult due = c.runOne(spec);
    EXPECT_EQ(due.outcome, InjectOutcome::Due);
    EXPECT_EQ(due.code, "due.parity");

    c.setProtection("secded", 8);
    EXPECT_EQ(c.runOne(spec).outcome, InjectOutcome::Masked);

    c.setProtection("none", 0);
    EXPECT_EQ(c.runOne(spec).outcome, InjectOutcome::Sdc);
}

TEST(Campaign, SecdedDetectsDoubleFlipInOneDomain)
{
    Campaign c("recursive_gaussian", 1, cfg());
    c.setProtection("secded", 8);
    RegInjection inj;
    inj.reg = 3;
    inj.lane = 5;
    inj.bitMask = 0x6; // two flips, bits 1-2: same 8-bit domain
    inj.triggerInstr = c.goldenInstrs() / 6;
    TrialResult r = c.runOne(TrialSpec{{inj}, {}});
    EXPECT_EQ(r.outcome, InjectOutcome::Due);
    EXPECT_EQ(r.code, "due.secded");
}

TEST(Campaign, CrashedTrialDoesNotAbortSiblings)
{
    // One crashing spec in a batch: the siblings must still run and
    // classify normally.
    Campaign c("histogram", 1, cfg());
    RegInjection crash;
    crash.reg = 5;
    crash.bitMask = 0x80000000u;
    crash.triggerInstr = 4;

    RegInjection masked;
    masked.reg = 31;
    masked.bitMask = 0xFFFFFFFF;
    masked.triggerInstr = c.goldenInstrs() / 2;

    std::vector<TrialSpec> specs;
    for (int i = 0; i < 6; ++i) {
        specs.push_back(i == 2 ? TrialSpec{{crash}, {}}
                               : TrialSpec{{masked}, {}});
    }
    std::vector<TrialResult> results = c.runBatchDetailed(specs);
    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i != 2) {
            EXPECT_EQ(results[i].outcome, InjectOutcome::Masked);
        }
    }
}

TEST(Campaign, RunTrialsDetailedSplitsReproduceFullRun)
{
    // Resume correctness at the API level: [0, 20) in one call must
    // equal [0, 8) + [8, 20) run separately, at any thread count.
    Campaign c("recursive_gaussian", 1, cfg());
    std::vector<TrialResult> whole =
        c.runTrialsDetailed(0, 20, 42, TrialKind::Register);
    setParallelThreads(3);
    std::vector<TrialResult> head =
        c.runTrialsDetailed(0, 8, 42, TrialKind::Register);
    std::vector<TrialResult> tail =
        c.runTrialsDetailed(8, 12, 42, TrialKind::Register);
    setParallelThreads(0);
    ASSERT_EQ(head.size() + tail.size(), whole.size());
    for (std::size_t i = 0; i < head.size(); ++i)
        EXPECT_EQ(head[i], whole[i]);
    for (std::size_t i = 0; i < tail.size(); ++i)
        EXPECT_EQ(tail[i], whole[8 + i]);
}

TEST(Campaign, OnTrialObserverSeesAbsoluteIndices)
{
    Campaign c("histogram", 1, cfg());
    std::mutex mutex;
    std::map<std::size_t, TrialResult> seen;
    std::vector<TrialResult> results = c.runTrialsDetailed(
        5, 7, 13, TrialKind::Memory,
        [&](std::size_t t, const TrialResult &r) {
            std::lock_guard<std::mutex> guard(mutex);
            seen[t] = r;
        });
    ASSERT_EQ(seen.size(), 7u);
    for (const auto &[t, r] : seen) {
        ASSERT_GE(t, 5u);
        ASSERT_LT(t, 12u);
        EXPECT_EQ(r, results[t - 5]);
    }
}

TEST(Campaign, TallyCountsAndRates)
{
    CampaignTally tally;
    tally.add({InjectOutcome::Masked, ""});
    tally.add({InjectOutcome::Masked, ""});
    tally.add({InjectOutcome::Crash, "trap.mem.oob"});
    tally.add({InjectOutcome::Hang, "trap.watchdog.instrs"});
    EXPECT_EQ(tally.total(), 4u);
    EXPECT_EQ(tally.count(InjectOutcome::Masked), 2u);
    EXPECT_EQ(tally.codeCounts.at("trap.mem.oob"), 1u);
    WilsonInterval rate = tally.rate(InjectOutcome::Masked);
    EXPECT_DOUBLE_EQ(rate.point, 0.5);
    EXPECT_LT(rate.low, 0.5);
    EXPECT_GT(rate.high, 0.5);
}

TEST(Campaign, ZeroTrialTallyEmitsNoNanIntoManifests)
{
    // A fully-degraded serve job or a freshly-created campaign can
    // render a tally with zero trials; the rates must come out as
    // the vacuous [0, 1], and the manifest JSON section built from
    // it must round-trip through the strict parser (which rejects
    // the "nan"/"inf" tokens a division by zero would print).
    CampaignTally tally;
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        const WilsonInterval rate =
            tally.rate(static_cast<InjectOutcome>(i));
        EXPECT_DOUBLE_EQ(rate.point, 0.0);
        EXPECT_DOUBLE_EQ(rate.low, 0.0);
        EXPECT_DOUBLE_EQ(rate.high, 1.0);
    }
    const obs::JsonValue section = obs::tallyJson(tally);
    const std::string text = section.dump();
    EXPECT_EQ(text.find("nan"), std::string::npos) << text;
    EXPECT_EQ(text.find("inf"), std::string::npos) << text;
    obs::JsonValue reparsed;
    std::string error;
    EXPECT_TRUE(obs::JsonValue::parse(text, reparsed, error))
        << error;
}

TEST(Campaign, OutcomeNamesRoundTrip)
{
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        const InjectOutcome o = static_cast<InjectOutcome>(i);
        InjectOutcome parsed;
        ASSERT_TRUE(parseInjectOutcome(injectOutcomeName(o), parsed));
        EXPECT_EQ(parsed, o);
    }
    InjectOutcome scratch;
    EXPECT_FALSE(parseInjectOutcome("exploded", scratch));
    TrialKind kind;
    ASSERT_TRUE(parseTrialKind("memory", kind));
    EXPECT_EQ(kind, TrialKind::Memory);
    EXPECT_FALSE(parseTrialKind("disk", kind));
}

TEST(Interference, StudyRunsAndCounts)
{
    InterferenceStats s =
        runInterferenceStudy("matrix_transpose", 1, cfg(), 60, 7);
    EXPECT_EQ(s.singleInjections, 60u);
    // Every SDC bit produces exactly one group per mode.
    for (unsigned m = 0; m < 3; ++m) {
        EXPECT_EQ(s.groupsTested[m], s.sdcAceBits);
        EXPECT_LE(s.interference[m], s.groupsTested[m]);
    }
}

} // namespace
} // namespace mbavf
