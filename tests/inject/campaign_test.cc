/**
 * @file
 * Tests for the fault-injection campaign and the ACE-interference
 * study driver.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/rng.hh"
#include "inject/campaign.hh"
#include "inject/interference.hh"

namespace mbavf
{
namespace
{

GpuConfig
cfg()
{
    return GpuConfig{};
}

TEST(Campaign, GoldenRunsOnce)
{
    Campaign c("histogram", 1, cfg());
    EXPECT_GT(c.goldenInstrs(), 0u);
}

TEST(Campaign, NoFlipIsMasked)
{
    Campaign c("histogram", 1, cfg());
    EXPECT_EQ(c.inject(std::vector<RegInjection>{}),
              InjectOutcome::Masked);
}

TEST(Campaign, UnusedRegisterFlipIsMasked)
{
    Campaign c("histogram", 1, cfg());
    RegInjection inj;
    inj.cu = 0;
    inj.slot = 0;
    inj.reg = 31; // kernels never touch r31
    inj.lane = 0;
    inj.bitMask = 0xFFFFFFFF;
    inj.triggerInstr = c.goldenInstrs() / 2;
    EXPECT_EQ(c.inject(inj), InjectOutcome::Masked);
}

TEST(Campaign, TargetedInjectionCausesSdc)
{
    // recursive_gaussian keeps its IIR accumulator in r3 for the
    // whole row loop; flipping it mid-loop must corrupt the output.
    // Its 3 waves run sequentially (CU0, CU1, CU2), so a trigger in
    // the first sixth of the instruction stream lands inside CU0's
    // wave.
    Campaign c("recursive_gaussian", 1, cfg());
    RegInjection inj;
    inj.cu = 0;
    inj.slot = 0;
    inj.reg = 3;
    inj.lane = 5;
    inj.bitMask = 0x4;
    inj.triggerInstr = c.goldenInstrs() / 6;
    EXPECT_EQ(c.inject(inj), InjectOutcome::Sdc);
}

TEST(Campaign, SamplerStaysInBounds)
{
    Campaign c("histogram", 1, cfg());
    Rng rng(5);
    GpuConfig config = cfg();
    for (int i = 0; i < 200; ++i) {
        RegInjection inj = c.sampleSingleBit(rng);
        EXPECT_LT(inj.cu, config.numCus);
        EXPECT_LT(inj.slot, config.regs.numSlots);
        EXPECT_LT(inj.reg, config.regs.numRegs);
        EXPECT_LT(inj.lane, config.regs.numLanes);
        EXPECT_NE(inj.bitMask, 0u);
        EXPECT_EQ(popCount(inj.bitMask), 1);
        EXPECT_LT(inj.triggerInstr, c.goldenInstrs());
    }
}

TEST(Campaign, InjectionIsRepeatable)
{
    Campaign c("dct", 1, cfg());
    Rng rng(17);
    RegInjection inj = c.sampleSingleBit(rng);
    InjectOutcome a = c.inject(inj);
    InjectOutcome b = c.inject(inj);
    EXPECT_EQ(a, b);
}

TEST(Campaign, MemInjectionIntoOutputIsSdc)
{
    // Flipping a bit of an output-buffer byte after the last write
    // must show up in the comparison.
    Campaign c("histogram", 1, cfg());
    MemInjection inj;
    // The bins buffer follows the 4096-word data buffer; bin counts
    // are small, so bit 0 of a low count byte flips the output.
    inj.addr = 4096 * 4; // first bin counter
    inj.bitMask = 0x1;
    inj.triggerInstr = c.goldenInstrs() - 1;
    EXPECT_EQ(c.injectMem(inj), InjectOutcome::Sdc);
}

TEST(Campaign, MemInjectionIntoDeadInputIsMasked)
{
    // Flipping input data after the last kernel has consumed it has
    // no effect on the output.
    Campaign c("matrix_transpose", 1, cfg());
    MemInjection inj;
    inj.addr = 0; // input matrix byte
    inj.bitMask = 0x80;
    inj.triggerInstr = c.goldenInstrs() - 1;
    EXPECT_EQ(c.injectMem(inj), InjectOutcome::Masked);
}

TEST(Campaign, MemInjectionEarlyIntoInputIsSdc)
{
    Campaign c("matrix_transpose", 1, cfg());
    MemInjection inj;
    inj.addr = 0;
    inj.bitMask = 0x80;
    inj.triggerInstr = 0; // before any lane reads it
    EXPECT_EQ(c.injectMem(inj), InjectOutcome::Sdc);
}

TEST(Campaign, MemSamplerStaysInFootprint)
{
    Campaign c("histogram", 1, cfg());
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        MemInjection inj = c.sampleMemBit(rng);
        EXPECT_LT(inj.addr, (4096u + 64u) * 4u + 64u);
        EXPECT_NE(inj.bitMask, 0);
    }
}

TEST(Interference, StudyRunsAndCounts)
{
    InterferenceStats s =
        runInterferenceStudy("matrix_transpose", 1, cfg(), 60, 7);
    EXPECT_EQ(s.singleInjections, 60u);
    // Every SDC bit produces exactly one group per mode.
    for (unsigned m = 0; m < 3; ++m) {
        EXPECT_EQ(s.groupsTested[m], s.sdcAceBits);
        EXPECT_LE(s.interference[m], s.groupsTested[m]);
    }
}

} // namespace
} // namespace mbavf
