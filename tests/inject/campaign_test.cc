/**
 * @file
 * Tests for the fault-injection campaign and the ACE-interference
 * study driver.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "inject/campaign.hh"
#include "inject/interference.hh"

namespace mbavf
{
namespace
{

GpuConfig
cfg()
{
    return GpuConfig{};
}

TEST(Campaign, GoldenRunsOnce)
{
    Campaign c("histogram", 1, cfg());
    EXPECT_GT(c.goldenInstrs(), 0u);
}

TEST(Campaign, NoFlipIsMasked)
{
    Campaign c("histogram", 1, cfg());
    EXPECT_EQ(c.inject(std::vector<RegInjection>{}),
              InjectOutcome::Masked);
}

TEST(Campaign, UnusedRegisterFlipIsMasked)
{
    Campaign c("histogram", 1, cfg());
    RegInjection inj;
    inj.cu = 0;
    inj.slot = 0;
    inj.reg = 31; // kernels never touch r31
    inj.lane = 0;
    inj.bitMask = 0xFFFFFFFF;
    inj.triggerInstr = c.goldenInstrs() / 2;
    EXPECT_EQ(c.inject(inj), InjectOutcome::Masked);
}

TEST(Campaign, TargetedInjectionCausesSdc)
{
    // recursive_gaussian keeps its IIR accumulator in r3 for the
    // whole row loop; flipping it mid-loop must corrupt the output.
    // Its 3 waves run sequentially (CU0, CU1, CU2), so a trigger in
    // the first sixth of the instruction stream lands inside CU0's
    // wave.
    Campaign c("recursive_gaussian", 1, cfg());
    RegInjection inj;
    inj.cu = 0;
    inj.slot = 0;
    inj.reg = 3;
    inj.lane = 5;
    inj.bitMask = 0x4;
    inj.triggerInstr = c.goldenInstrs() / 6;
    EXPECT_EQ(c.inject(inj), InjectOutcome::Sdc);
}

TEST(Campaign, SamplerStaysInBounds)
{
    Campaign c("histogram", 1, cfg());
    Rng rng(5);
    GpuConfig config = cfg();
    for (int i = 0; i < 200; ++i) {
        RegInjection inj = c.sampleSingleBit(rng);
        EXPECT_LT(inj.cu, config.numCus);
        EXPECT_LT(inj.slot, config.regs.numSlots);
        EXPECT_LT(inj.reg, config.regs.numRegs);
        EXPECT_LT(inj.lane, config.regs.numLanes);
        EXPECT_NE(inj.bitMask, 0u);
        EXPECT_EQ(popCount(inj.bitMask), 1);
        EXPECT_LT(inj.triggerInstr, c.goldenInstrs());
    }
}

TEST(Campaign, InjectionIsRepeatable)
{
    Campaign c("dct", 1, cfg());
    Rng rng(17);
    RegInjection inj = c.sampleSingleBit(rng);
    InjectOutcome a = c.inject(inj);
    InjectOutcome b = c.inject(inj);
    EXPECT_EQ(a, b);
}

TEST(Campaign, MemInjectionIntoOutputIsSdc)
{
    // Flipping a bit of an output-buffer byte after the last write
    // must show up in the comparison.
    Campaign c("histogram", 1, cfg());
    MemInjection inj;
    // The bins buffer follows the 4096-word data buffer; bin counts
    // are small, so bit 0 of a low count byte flips the output.
    inj.addr = 4096 * 4; // first bin counter
    inj.bitMask = 0x1;
    inj.triggerInstr = c.goldenInstrs() - 1;
    EXPECT_EQ(c.injectMem(inj), InjectOutcome::Sdc);
}

TEST(Campaign, MemInjectionIntoDeadInputIsMasked)
{
    // Flipping input data after the last kernel has consumed it has
    // no effect on the output.
    Campaign c("matrix_transpose", 1, cfg());
    MemInjection inj;
    inj.addr = 0; // input matrix byte
    inj.bitMask = 0x80;
    inj.triggerInstr = c.goldenInstrs() - 1;
    EXPECT_EQ(c.injectMem(inj), InjectOutcome::Masked);
}

TEST(Campaign, MemInjectionEarlyIntoInputIsSdc)
{
    Campaign c("matrix_transpose", 1, cfg());
    MemInjection inj;
    inj.addr = 0;
    inj.bitMask = 0x80;
    inj.triggerInstr = 0; // before any lane reads it
    EXPECT_EQ(c.injectMem(inj), InjectOutcome::Sdc);
}

TEST(Campaign, MemSamplerStaysInFootprint)
{
    Campaign c("histogram", 1, cfg());
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        MemInjection inj = c.sampleMemBit(rng);
        EXPECT_LT(inj.addr, (4096u + 64u) * 4u + 64u);
        EXPECT_NE(inj.bitMask, 0);
    }
}

TEST(Campaign, SamplerTargetsOnlyCusWithWaves)
{
    // recursive_gaussian launches 3 waves; with more CUs than waves
    // the tail CUs execute nothing, and sampling them would deflate
    // the measured SDC probability. The sampler must stay within the
    // CUs that actually received waves.
    GpuConfig config = cfg();
    config.numCus = 8;
    Campaign c("recursive_gaussian", 1, config);
    EXPECT_EQ(c.cusUsed(), 3u);
    Rng rng(11);
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(c.sampleSingleBit(rng).cu, 3u);
}

TEST(Campaign, RunTrialsBitIdenticalAcrossThreadCounts)
{
    Campaign c("histogram", 1, cfg());
    setParallelThreads(1);
    std::vector<InjectOutcome> serial_reg =
        c.runTrials(12, 99, TrialKind::Register);
    std::vector<InjectOutcome> serial_mem =
        c.runTrials(8, 7, TrialKind::Memory);
    setParallelThreads(4);
    std::vector<InjectOutcome> pool_reg =
        c.runTrials(12, 99, TrialKind::Register);
    std::vector<InjectOutcome> pool_mem =
        c.runTrials(8, 7, TrialKind::Memory);
    EXPECT_EQ(serial_reg, pool_reg);
    EXPECT_EQ(serial_mem, pool_mem);
    setParallelThreads(0);
}

TEST(Campaign, TrialReproducesInIsolation)
{
    // Any trial t of a batch is reproducible alone from
    // (base_seed, t): per-trial seeds are splitMix64(base, t), not a
    // shared RNG stream.
    Campaign c("histogram", 1, cfg());
    std::vector<InjectOutcome> all =
        c.runTrials(8, 21, TrialKind::Register);
    Rng rng(splitMix64(21, 5));
    RegInjection site = c.sampleSingleBit(rng);
    EXPECT_EQ(c.inject(site), all[5]);
}

TEST(Campaign, RunBatchPreservesSpecOrder)
{
    Campaign c("histogram", 1, cfg());
    // Spec 0 is a guaranteed-masked flip (r31 is never touched);
    // spec 1 corrupts an output bin directly.
    TrialSpec masked;
    RegInjection reg;
    reg.reg = 31;
    reg.bitMask = 0xFFFFFFFF;
    reg.triggerInstr = c.goldenInstrs() / 2;
    masked.regFlips.push_back(reg);

    TrialSpec sdc;
    MemInjection mem;
    mem.addr = 4096 * 4; // first bin counter
    mem.bitMask = 0x1;
    mem.triggerInstr = c.goldenInstrs() - 1;
    sdc.memFlips.push_back(mem);

    std::vector<InjectOutcome> out = c.runBatch({masked, sdc});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], InjectOutcome::Masked);
    EXPECT_EQ(out[1], InjectOutcome::Sdc);
}

TEST(Interference, StudyRunsAndCounts)
{
    InterferenceStats s =
        runInterferenceStudy("matrix_transpose", 1, cfg(), 60, 7);
    EXPECT_EQ(s.singleInjections, 60u);
    // Every SDC bit produces exactly one group per mode.
    for (unsigned m = 0; m < 3; ++m) {
        EXPECT_EQ(s.groupsTested[m], s.sdcAceBits);
        EXPECT_LE(s.interference[m], s.groupsTested[m]);
    }
}

} // namespace
} // namespace mbavf
