/**
 * @file
 * Tests for the two-level stratified campaign (inject/stratified.hh):
 * partition soundness, the deterministic pick sequence, per-pick
 * trial reproducibility, thread-count bit-identity over a sweep of
 * stratification shapes, and the v2 journal round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "inject/campaign.hh"
#include "inject/journal.hh"
#include "inject/stratified.hh"

namespace mbavf
{
namespace
{

Campaign &
sharedCampaign()
{
    static Campaign campaign("histogram", 1, GpuConfig{});
    return campaign;
}

const Stratification &
sharedStratification()
{
    static Stratification strat =
        Stratification::build(sharedCampaign(), StratifyOptions{});
    return strat;
}

TEST(Stratified, PartitionWeightsCoverTheFaultSpace)
{
    const Stratification &strat = sharedStratification();
    double total = 0.0;
    double skipped = 0.0;
    for (const Stratum &st : strat.strata()) {
        EXPECT_GE(st.weight, 0.0);
        EXPECT_GE(st.predicted, 0.0);
        EXPECT_LE(st.predicted, 1.0);
        total += st.weight;
        if (st.skipped)
            skipped += st.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_NEAR(skipped, strat.skippedWeight(), 1e-12);
    // The whole point: a meaningful share of the space is provably
    // Masked on every workload we ship.
    EXPECT_GT(strat.skippedWeight(), 0.1);
    EXPECT_LT(strat.skippedWeight(), 1.0);
}

TEST(Stratified, PickSequenceIsPrefixMonotone)
{
    const Stratification &strat = sharedStratification();
    const auto all = strat.picks(0, 300);
    ASSERT_EQ(all.size(), 300u);
    // Any contiguous split replays the same picks — the property
    // sharding and resume lean on.
    for (std::uint64_t cut : {1u, 7u, 64u, 299u}) {
        const auto head = strat.picks(0, cut);
        const auto tail = strat.picks(cut, 300 - cut);
        ASSERT_EQ(head.size() + tail.size(), all.size());
        for (std::size_t i = 0; i < head.size(); ++i) {
            EXPECT_EQ(head[i].stratum, all[i].stratum);
            EXPECT_EQ(head[i].occurrence, all[i].occurrence);
        }
        for (std::size_t i = 0; i < tail.size(); ++i) {
            EXPECT_EQ(tail[i].stratum, all[cut + i].stratum);
            EXPECT_EQ(tail[i].occurrence, all[cut + i].occurrence);
        }
    }
}

TEST(Stratified, PicksNeverLandOnSkippedStrata)
{
    const Stratification &strat = sharedStratification();
    std::vector<std::uint64_t> occurrence(strat.strata().size(), 0);
    for (const Stratification::Pick &pick : strat.picks(0, 500)) {
        ASSERT_LT(pick.stratum, strat.strata().size());
        EXPECT_FALSE(strat.strata()[pick.stratum].skipped);
        // Occurrences count up densely per stratum.
        EXPECT_EQ(pick.occurrence, occurrence[pick.stratum]);
        ++occurrence[pick.stratum];
    }
}

TEST(Stratified, AllocationMatchesThePickSequence)
{
    const Stratification &strat = sharedStratification();
    const auto alloc = strat.allocation(200);
    std::vector<std::uint64_t> counted(strat.strata().size(), 0);
    for (const Stratification::Pick &pick : strat.picks(0, 200))
        ++counted[pick.stratum];
    EXPECT_EQ(alloc, counted);
}

TEST(Stratified, TrialSpecIsReproduciblePerPick)
{
    const Stratification &strat = sharedStratification();
    for (const Stratification::Pick &pick : strat.picks(0, 50)) {
        const TrialSpec a = strat.trialSpec(pick, 42);
        const TrialSpec b = strat.trialSpec(pick, 42);
        ASSERT_EQ(a.regFlips.size(), 1u);
        ASSERT_EQ(b.regFlips.size(), 1u);
        const RegInjection &x = a.regFlips[0];
        const RegInjection &y = b.regFlips[0];
        EXPECT_EQ(x.cu, y.cu);
        EXPECT_EQ(x.slot, y.slot);
        EXPECT_EQ(x.reg, y.reg);
        EXPECT_EQ(x.lane, y.lane);
        EXPECT_EQ(x.bitMask, y.bitMask);
        EXPECT_EQ(x.triggerInstr, y.triggerInstr);
        // The trigger lands inside the pick's window.
        const Stratum &st = strat.strata()[pick.stratum];
        const auto &bounds = strat.windowBounds();
        EXPECT_GE(x.triggerInstr, bounds[st.window]);
        EXPECT_LT(x.triggerInstr, bounds[st.window + 1]);
    }
}

TEST(Stratified, BudgetForTargetCiIsMonotone)
{
    const Stratification &strat = sharedStratification();
    const std::uint64_t loose = strat.budgetForTargetCi(0.2, 5000);
    const std::uint64_t tight = strat.budgetForTargetCi(0.02, 5000);
    EXPECT_LE(loose, tight);
    EXPECT_LE(tight, 5000u);
    // No target: the cap comes straight back.
    EXPECT_EQ(strat.budgetForTargetCi(0.0, 123), 123u);
}

TEST(Stratified, ThreadCountBitIdentityOverStratificationSweep)
{
    // The differential the CI gate leans on: for a sweep of
    // stratification shapes (seeded, so the sweep is reproducible),
    // running the same pick range at 1 thread and at 4 threads must
    // produce identical per-trial outcomes.
    Campaign &campaign = sharedCampaign();
    Rng rng(20260808);
    for (int round = 0; round < 3; ++round) {
        StratifyOptions options;
        options.windows =
            static_cast<unsigned>(1 + rng.below(12));
        options.maxClasses =
            static_cast<unsigned>(2 + rng.below(40));
        const Stratification strat =
            Stratification::build(campaign, options);
        const std::uint64_t seed = rng.next();
        const auto picks = strat.picks(0, 60);

        auto outcomes = [&](unsigned threads) {
            setParallelThreads(threads);
            std::vector<TrialResult> results(picks.size());
            runTasks(picks.size(), [&](std::size_t i) {
                results[i] = campaign.runOne(
                    strat.trialSpec(picks[i], seed));
            });
            return results;
        };
        const auto one = outcomes(1);
        const auto four = outcomes(4);
        ASSERT_EQ(one.size(), four.size());
        for (std::size_t i = 0; i < one.size(); ++i) {
            EXPECT_EQ(one[i].outcome, four[i].outcome)
                << "round " << round << " trial " << i;
            EXPECT_EQ(one[i].code, four[i].code);
        }
    }
}

TEST(Stratified, PartitionHashIsStableAndShapeSensitive)
{
    Campaign &campaign = sharedCampaign();
    const Stratification a =
        Stratification::build(campaign, StratifyOptions{});
    const Stratification b =
        Stratification::build(campaign, StratifyOptions{});
    EXPECT_EQ(a.hash(), b.hash());
    StratifyOptions other;
    other.windows = 4;
    const Stratification c = Stratification::build(campaign, other);
    EXPECT_NE(a.hash(), c.hash());
}

TEST(Stratified, JournalV2RoundTripsStrataFields)
{
    const std::string path = "stratified_journal_test.tmp";
    std::remove(path.c_str());

    JournalHeader header;
    header.workload = "histogram";
    header.scale = 1;
    header.kind = TrialKind::Register;
    header.baseSeed = 9;
    header.trials = 3;
    header.version = 2;
    header.strataHash = 0xdeadbeefcafef00dull;

    CampaignJournal journal;
    journal.header = header;
    for (std::uint64_t i = 0; i < 3; ++i) {
        JournalRecord record;
        record.index = i;
        record.seed = 1000 + i;
        record.stratum = static_cast<std::uint32_t>(7 * i);
        record.result.outcome = InjectOutcome::Masked;
        journal.records.push_back(record);
    }
    std::string error;
    ASSERT_TRUE(journal.save(path, error)) << error;

    CampaignJournal loaded;
    ASSERT_TRUE(CampaignJournal::load(path, loaded, error)) << error;
    EXPECT_TRUE(loaded.header == header);
    ASSERT_EQ(loaded.records.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(loaded.records[i] == journal.records[i]);
        EXPECT_EQ(loaded.records[i].stratum,
                  static_cast<std::uint32_t>(7 * i));
    }
    std::remove(path.c_str());
}

TEST(Stratified, CombinedIntervalFoldsSkippedMassExactly)
{
    const Stratification &strat = sharedStratification();
    std::vector<StratumTally> tallies(strat.strata().size());
    // No sampling at all: the Masked point is exactly the skipped
    // weight (certain strata contribute their rate, unsampled ones
    // 0), and the SDC upper bound cannot exceed the sampled weight —
    // the skipped mass is settled without a single injection.
    const WilsonInterval masked =
        strat.combinedInterval(tallies, InjectOutcome::Masked);
    EXPECT_NEAR(masked.point, strat.skippedWeight(), 1e-9);
    EXPECT_GT(masked.high, strat.skippedWeight() - 1e-12);
    const WilsonInterval sdc =
        strat.combinedInterval(tallies, InjectOutcome::Sdc);
    EXPECT_DOUBLE_EQ(sdc.point, 0.0);
    EXPECT_LE(sdc.high, 1.0 - strat.skippedWeight() + 1e-12);
}

} // namespace
} // namespace mbavf
