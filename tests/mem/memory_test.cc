/**
 * @file
 * Tests for MainMemory and the program-order reference index.
 */

#include <gtest/gtest.h>

#include "common/trap.hh"
#include "mem/memory.hh"
#include "mem/ref_index.hh"

namespace mbavf
{
namespace
{

TEST(MainMemory, ReadWriteRoundTrip)
{
    MainMemory mem(1024);
    mem.write32(16, 0xDEADBEEF);
    EXPECT_EQ(mem.read32(16), 0xDEADBEEFu);
    EXPECT_EQ(mem.read8(16), 0xEFu); // little-endian
    EXPECT_EQ(mem.read8(19), 0xDEu);
}

TEST(MainMemory, AllocAligns)
{
    MainMemory mem(4096);
    Addr a = mem.alloc(10, 64);
    Addr b = mem.alloc(10, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
}

TEST(MainMemory, AllocExhaustionIsFatal)
{
    MainMemory mem(128);
    EXPECT_DEATH(mem.alloc(1024), "exhausted");
}

TEST(MainMemory, OutOfRangeTraps)
{
    MainMemory mem(16);
    try {
        mem.read32(14);
        FAIL() << "out-of-range read did not trap";
    } catch (const SimTrap &trap) {
        EXPECT_EQ(trap.code(), trapcode::memOob);
        EXPECT_NE(std::string(trap.what()).find("out of range"),
                  std::string::npos);
    }
}

TEST(MainMemory, OriginsLazyAndDefault)
{
    MainMemory mem(256);
    EXPECT_EQ(mem.origin(0).def, noDef);
    mem.hostWrite32(0, 5); // noDef origin: stays lazy
    EXPECT_EQ(mem.origin(0).def, noDef);
    mem.setOrigin(8, 4, 42);
    EXPECT_EQ(mem.origin(8).def, 42u);
    EXPECT_EQ(mem.origin(9).byteIdx, 1);
    EXPECT_EQ(mem.origin(0).def, noDef);
}

TEST(RefIndex, FirstAfterFindsLoad)
{
    MemRefIndex idx;
    idx.addStore(100, 4, 10);
    idx.addLoad(100, 4, 50, 7);
    const ByteRef *r = idx.firstAfter(101, 20);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->isLoad);
    EXPECT_EQ(r->def, 7u);
    EXPECT_EQ(r->relShift, 8);
}

TEST(RefIndex, InclusiveAtTime)
{
    MemRefIndex idx;
    idx.addLoad(100, 4, 50, 7);
    const ByteRef *r = idx.firstAfter(100, 50);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->time, 50u);
}

TEST(RefIndex, NoFutureReference)
{
    MemRefIndex idx;
    idx.addLoad(100, 4, 50, 7);
    EXPECT_EQ(idx.firstAfter(100, 51), nullptr);
    EXPECT_EQ(idx.firstAfter(999, 0), nullptr);
}

TEST(RefIndex, StoreShadowsLaterLoad)
{
    MemRefIndex idx;
    idx.addStore(100, 4, 20);
    idx.addLoad(100, 4, 60, 9);
    const ByteRef *r = idx.firstAfter(100, 10);
    ASSERT_NE(r, nullptr);
    EXPECT_FALSE(r->isLoad); // the store comes first
}

} // namespace
} // namespace mbavf
