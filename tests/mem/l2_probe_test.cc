/**
 * @file
 * Tests for lower-level-cache (L2) probing: fill reads resolved
 * against the program-order reference index.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/cache_probe.hh"
#include "mem/ref_index.hh"
#include "workloads/ace_runner.hh"

namespace mbavf
{
namespace
{

class L2ProbeTest : public ::testing::Test
{
  protected:
    L2ProbeTest()
        : geom_{8, 4, 16}, dram_(50),
          l2_(CacheParams{"l2", 8, 4, 16, 5}, dram_),
          l1_(CacheParams{"l1", 2, 2, 16, 1}, l2_),
          probe_(geom_, refs_)
    {
        probe_.setResolveReadsViaRefIndex(true);
        l2_.setListener(&probe_);
    }

    LivenessResolver
    liveAll()
    {
        return [](DefId) { return ~std::uint64_t(0); };
    }

    CacheGeometry geom_;
    Dram dram_;
    Cache l2_;
    Cache l1_;
    MemRefIndex refs_;
    CacheAvfProbe probe_;
};

TEST_F(L2ProbeTest, FillConsumedByLiveProgramLoadIsAce)
{
    // Program load at t=0 (recorded in the ref index) misses L1 and
    // L2; a later re-fetch after L1 eviction re-reads the L2 copy.
    refs_.addLoad(0x00, 4, 0, noDef);
    l1_.access({0x00, 4, MemCmd::Read, noDef}, 0);
    // Evict from L1 (L1 set 0 fits 2 lines).
    l1_.access({0x40, 4, MemCmd::Read, noDef}, 100);
    l1_.access({0x80, 4, MemCmd::Read, noDef}, 200);
    // Program loads 0x00 again at t=300: L2 supplies the fill.
    refs_.addLoad(0x00, 4, 300, noDef);
    l1_.access({0x00, 4, MemCmd::Read, noDef}, 300);

    LifetimeStore store = probe_.finalize(1000, liveAll());
    // The L2 copy of 0x00 is ACE between its install at ~50 and the
    // second fill it serves at 300 (L2 set 0, some way).
    bool ace_found = false;
    for (unsigned way = 0; way < 4; ++way) {
        const WordLifetime *w = store.find(way, 0);
        if (w && w->classAt(0, 150) == AceClass::AceLive)
            ace_found = true;
    }
    EXPECT_TRUE(ace_found);
}

TEST_F(L2ProbeTest, FillNeverReusedIsNotAceAfterLastService)
{
    refs_.addLoad(0x00, 4, 0, noDef);
    l1_.access({0x00, 4, MemCmd::Read, noDef}, 0);
    LifetimeStore store = probe_.finalize(1000, liveAll());
    // After serving the only fill, the L2 copy's future is empty.
    for (unsigned way = 0; way < 4; ++way) {
        const WordLifetime *w = store.find(way, 0);
        if (!w)
            continue;
        EXPECT_NE(w->classAt(0, 500), AceClass::AceLive);
    }
}

TEST_F(L2ProbeTest, FillForDeadLoadIsNotAce)
{
    // The program's next use of the data is a dead load.
    refs_.addLoad(0x00, 4, 0, /*def=*/7);
    l1_.access({0x00, 4, MemCmd::Read, noDef}, 0);
    l1_.access({0x40, 4, MemCmd::Read, noDef}, 100);
    l1_.access({0x80, 4, MemCmd::Read, noDef}, 200);
    refs_.addLoad(0x00, 4, 300, /*def=*/7);
    l1_.access({0x00, 4, MemCmd::Read, noDef}, 300);

    LivenessResolver dead = [](DefId) { return std::uint64_t(0); };
    LifetimeStore store = probe_.finalize(1000, dead);
    for (unsigned way = 0; way < 4; ++way) {
        const WordLifetime *w = store.find(way, 0);
        if (!w)
            continue;
        EXPECT_EQ(w->aceCycles(0, 1000), 0u);
    }
}

TEST(L2AceRun, EndToEndProducesL2Lifetimes)
{
    AceRun run =
        runAceAnalysis("histogram", 1, GpuConfig{}, true);
    EXPECT_GT(run.l2.numContainers(), 0u);

    // L2 data was touched; at least one bit should carry ACE time
    // (write-backs of live output data, refills, etc.).
    Cycle total_ace = 0;
    for (const auto &[id, c] : run.l2.containers()) {
        for (const WordLifetime &w : c.words)
            total_ace += w.aceCycles(0, run.horizon);
    }
    EXPECT_GT(total_ace, 0u);
}

TEST(L2AceRun, DisabledByDefault)
{
    AceRun run = runAceAnalysis("histogram");
    EXPECT_EQ(run.l2.numContainers(), 0u);
}

} // namespace
} // namespace mbavf
