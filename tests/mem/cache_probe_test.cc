/**
 * @file
 * Integration tests for CacheAvfProbe: cache events in, per-bit ACE
 * lifetimes out, including dirty write-back fate resolution.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/cache_probe.hh"
#include "mem/ref_index.hh"

namespace mbavf
{
namespace
{

class ProbeTest : public ::testing::Test
{
  protected:
    ProbeTest()
        : geom_{2, 2, 16}, dram_(10),
          cache_(CacheParams{"t", 2, 2, 16, 1}, dram_),
          probe_(geom_, refs_)
    {
        cache_.setListener(&probe_);
    }

    LivenessResolver
    liveAll()
    {
        return [](DefId) { return ~std::uint64_t(0); };
    }

    CacheGeometry geom_;
    Dram dram_;
    Cache cache_;
    MemRefIndex refs_;
    CacheAvfProbe probe_;
};

TEST_F(ProbeTest, FillReadMakesAceWindow)
{
    // Miss at t=0 fills at t=10 and reads bytes 0-3.
    cache_.access({0x00, 4, MemCmd::Read, noDef}, 0);
    // Re-read at t=50.
    cache_.access({0x00, 4, MemCmd::Read, noDef}, 50);
    LifetimeStore store = probe_.finalize(100, liveAll());

    // Line slot: set 0, way 0 -> container 0.
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->classAt(0, 20), AceClass::AceLive);
    EXPECT_EQ(w->classAt(0, 60), AceClass::Unace);
    // Byte 8 is filled but never consumed: it is read out with the
    // line (whole-domain reads) so it is ReadDead until the last
    // line read.
    const WordLifetime *w8 = store.find(0, 8);
    ASSERT_NE(w8, nullptr);
    EXPECT_EQ(w8->classAt(0, 20), AceClass::ReadDead);
}

TEST_F(ProbeTest, DeadLoadGivesReadDead)
{
    cache_.access({0x00, 4, MemCmd::Read, /*def=*/3}, 0);
    cache_.access({0x00, 4, MemCmd::Read, /*def=*/3}, 50);
    LivenessResolver dead = [](DefId) { return std::uint64_t(0); };
    LifetimeStore store = probe_.finalize(100, dead);
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->classAt(0, 20), AceClass::ReadDead);
}

TEST_F(ProbeTest, DirtyEvictionWithLiveFutureUseIsAce)
{
    // Write line 0x00 dirty; program will load it again at t=500.
    cache_.access({0x00, 4, MemCmd::Write, noDef}, 0);
    refs_.addLoad(0x00, 4, 500, noDef);
    // Conflict-evict it (set 0: 0x00, 0x40, 0x80).
    cache_.access({0x40, 4, MemCmd::Read, noDef}, 100);
    cache_.access({0x80, 4, MemCmd::Read, noDef}, 200);
    LifetimeStore store = probe_.finalize(1000, liveAll());
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    // Dirty data is ACE from the write until the write-back.
    EXPECT_EQ(w->classAt(0, 50), AceClass::AceLive);
    EXPECT_EQ(w->classAt(0, 150), AceClass::AceLive);
}

TEST_F(ProbeTest, DirtyEvictionWithoutFutureUseIsReadDead)
{
    cache_.access({0x00, 4, MemCmd::Write, noDef}, 0);
    // No future reference recorded: the write-back still reads the
    // array, so the dirty bytes are false-DUE candidates.
    cache_.access({0x40, 4, MemCmd::Read, noDef}, 100);
    cache_.access({0x80, 4, MemCmd::Read, noDef}, 200);
    LifetimeStore store = probe_.finalize(1000, liveAll());
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->classAt(0, 50), AceClass::ReadDead);
}

TEST_F(ProbeTest, DirtyEvictionOverwrittenInMemoryIsReadDead)
{
    cache_.access({0x00, 4, MemCmd::Write, noDef}, 0);
    refs_.addStore(0x00, 4, 400); // overwritten before any load
    cache_.access({0x40, 4, MemCmd::Read, noDef}, 100);
    cache_.access({0x80, 4, MemCmd::Read, noDef}, 200);
    LifetimeStore store = probe_.finalize(1000, liveAll());
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->classAt(0, 50), AceClass::ReadDead);
}

TEST_F(ProbeTest, CleanEvictionIsUnace)
{
    cache_.access({0x00, 4, MemCmd::Read, noDef}, 0);
    cache_.access({0x40, 4, MemCmd::Read, noDef}, 100);
    cache_.access({0x80, 4, MemCmd::Read, noDef}, 200);
    LifetimeStore store = probe_.finalize(1000, liveAll());
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    // ACE only between fill and its consuming read (same cycle
    // here), then dead; the clean eviction adds no read.
    EXPECT_EQ(w->classAt(0, 50), AceClass::Unace);
    EXPECT_EQ(w->classAt(0, 150), AceClass::Unace);
}

TEST_F(ProbeTest, NewGenerationAfterEvictionIsIndependent)
{
    cache_.access({0x00, 4, MemCmd::Read, noDef}, 0);
    cache_.access({0x40, 4, MemCmd::Read, noDef}, 100);
    cache_.access({0x80, 4, MemCmd::Read, noDef}, 200); // 0x00 out
    // 0x00 evicted; slot (0,0) now hosts... way assignment: LRU
    // means 0x80 replaced the LRU line. Touch 0x00 again and read
    // it twice so its new generation has ACE time.
    cache_.access({0x00, 4, MemCmd::Read, noDef}, 300);
    cache_.access({0x00, 4, MemCmd::Read, noDef}, 400);
    LifetimeStore store = probe_.finalize(1000, liveAll());
    // Some slot in set 0 carries ACE time in [310, 400).
    bool found = false;
    for (unsigned way = 0; way < 2; ++way) {
        const WordLifetime *w = store.find(way, 0);
        if (w && w->classAt(0, 350) == AceClass::AceLive)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST_F(ProbeTest, UntouchedSlotsAbsent)
{
    cache_.access({0x00, 4, MemCmd::Read, noDef}, 0);
    LifetimeStore store = probe_.finalize(100, liveAll());
    EXPECT_EQ(store.find(3, 0), nullptr); // set 1 way 1 never used
}

TEST_F(ProbeTest, PartialWriteKeepsOtherBytesAce)
{
    cache_.access({0x00, 8, MemCmd::Read, noDef}, 0);
    cache_.access({0x00, 4, MemCmd::Write, noDef}, 50);
    cache_.access({0x00, 8, MemCmd::Read, noDef}, 100);
    LifetimeStore store = probe_.finalize(200, liveAll());
    // Byte 4: ACE from fill through the read at 100.
    const WordLifetime *w4 = store.find(0, 4);
    ASSERT_NE(w4, nullptr);
    EXPECT_EQ(w4->classAt(0, 70), AceClass::AceLive);
    // Byte 0: rewritten at 50 with no intervening read, so its old
    // value is Unace after the fill-read; the new value is AceLive
    // until the read at 100.
    const WordLifetime *w0 = store.find(0, 0);
    ASSERT_NE(w0, nullptr);
    EXPECT_EQ(w0->classAt(0, 70), AceClass::AceLive);
    EXPECT_EQ(w0->classAt(0, 30), AceClass::Unace);
}

} // namespace
} // namespace mbavf
