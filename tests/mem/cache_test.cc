/**
 * @file
 * Tests for the cache timing model: hits/misses, LRU, write-back
 * behaviour, listener events, and flush.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/trap.hh"
#include "mem/cache.hh"

namespace mbavf
{
namespace
{

struct EventRecorder : public CacheListener
{
    struct Ev
    {
        char kind; // F, R, W, E
        unsigned set, way;
        Addr addr;
        std::uint64_t dirty;
        Cycle t;
    };
    std::vector<Ev> events;

    void
    onFill(unsigned set, unsigned way, Addr a, Cycle t) override
    {
        events.push_back({'F', set, way, a, 0, t});
    }
    void
    onRead(unsigned set, unsigned way, Addr a, unsigned, Cycle t,
           DefId) override
    {
        events.push_back({'R', set, way, a, 0, t});
    }
    void
    onWrite(unsigned set, unsigned way, Addr a, unsigned, Cycle t,
            InstrTag) override
    {
        events.push_back({'W', set, way, a, 0, t});
    }
    void
    onEvict(unsigned set, unsigned way, Addr a, std::uint64_t dirty,
            Cycle t) override
    {
        events.push_back({'E', set, way, a, dirty, t});
    }
};

CacheParams
tinyCache()
{
    // 2 sets x 2 ways x 16B lines, 1-cycle hit.
    return CacheParams{"t", 2, 2, 16, 1};
}

TEST(Cache, MissThenHit)
{
    Dram dram(100);
    Cache cache(tinyCache(), dram);
    MemRequest req{0x40, 4, MemCmd::Read, noDef};
    Cycle t1 = cache.access(req, 0);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(t1, 101u); // fill at 100 + hit latency 1

    Cycle t2 = cache.access(req, t1);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(t2, t1 + 1);
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Dram dram(10);
    Cache cache(tinyCache(), dram);
    EXPECT_FALSE(cache.probe(0x40));
    cache.access({0x40, 4, MemCmd::Read, noDef}, 0);
    EXPECT_TRUE(cache.probe(0x40));
    EXPECT_TRUE(cache.probe(0x4C)); // same line
    EXPECT_FALSE(cache.probe(0x80));
}

TEST(Cache, LruEviction)
{
    Dram dram(10);
    Cache cache(tinyCache(), dram);
    // Three lines mapping to set 0 (16B lines, 2 sets: set =
    // (addr/16) % 2 -> addresses 0x00, 0x40, 0x80 hit set 0).
    cache.access({0x00, 4, MemCmd::Read, noDef}, 0);
    cache.access({0x40, 4, MemCmd::Read, noDef}, 50);
    cache.access({0x00, 4, MemCmd::Read, noDef}, 100); // touch 0x00
    cache.access({0x80, 4, MemCmd::Read, noDef}, 150); // evict 0x40
    EXPECT_TRUE(cache.probe(0x00));
    EXPECT_FALSE(cache.probe(0x40));
    EXPECT_TRUE(cache.probe(0x80));
}

TEST(Cache, WritebackOnlyWhenDirty)
{
    Dram dram(10);
    Cache cache(tinyCache(), dram);
    cache.access({0x00, 4, MemCmd::Read, noDef}, 0);
    cache.access({0x40, 4, MemCmd::Write, noDef}, 10);
    // Evict both by filling two more set-0 lines.
    cache.access({0x80, 4, MemCmd::Read, noDef}, 20);
    cache.access({0xC0, 4, MemCmd::Read, noDef}, 30);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, DirtyByteMaskTracksWrites)
{
    Dram dram(10);
    Cache cache(tinyCache(), dram);
    EventRecorder rec;
    cache.setListener(&rec);
    cache.access({0x04, 4, MemCmd::Write, noDef}, 0);
    cache.flush(100);
    ASSERT_FALSE(rec.events.empty());
    const auto &ev = rec.events.back();
    EXPECT_EQ(ev.kind, 'E');
    EXPECT_EQ(ev.dirty, std::uint64_t(0xF) << 4);
}

TEST(Cache, ListenerEventOrderOnMiss)
{
    Dram dram(10);
    Cache cache(tinyCache(), dram);
    EventRecorder rec;
    cache.setListener(&rec);
    cache.access({0x00, 4, MemCmd::Read, noDef}, 0);
    ASSERT_EQ(rec.events.size(), 2u);
    EXPECT_EQ(rec.events[0].kind, 'F');
    EXPECT_EQ(rec.events[1].kind, 'R');
    EXPECT_EQ(rec.events[0].t, rec.events[1].t);
}

TEST(Cache, EvictBeforeFillOnConflict)
{
    Dram dram(10);
    Cache cache(tinyCache(), dram);
    EventRecorder rec;
    cache.setListener(&rec);
    cache.access({0x00, 4, MemCmd::Write, noDef}, 0);
    cache.access({0x40, 4, MemCmd::Read, noDef}, 10);
    cache.access({0x80, 4, MemCmd::Read, noDef}, 20); // evicts 0x00
    bool saw_evict = false;
    for (const auto &ev : rec.events) {
        if (ev.kind == 'E') {
            saw_evict = true;
            EXPECT_EQ(ev.addr, 0x00u);
            EXPECT_NE(ev.dirty, 0u);
        }
    }
    EXPECT_TRUE(saw_evict);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Dram dram(10);
    Cache cache(tinyCache(), dram);
    cache.access({0x00, 4, MemCmd::Write, noDef}, 0);
    cache.access({0x10, 4, MemCmd::Read, noDef}, 5);
    cache.flush(50);
    EXPECT_FALSE(cache.probe(0x00));
    EXPECT_FALSE(cache.probe(0x10));
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, MissRateStat)
{
    Dram dram(10);
    Cache cache(tinyCache(), dram);
    cache.access({0x00, 4, MemCmd::Read, noDef}, 0);
    cache.access({0x00, 4, MemCmd::Read, noDef}, 20);
    cache.access({0x04, 4, MemCmd::Read, noDef}, 40);
    EXPECT_NEAR(cache.stats().missRate(), 1.0 / 3, 1e-12);
}

TEST(Cache, CrossLineRequestTraps)
{
    Dram dram(10);
    Cache cache(tinyCache(), dram);
    try {
        cache.access({0x0E, 4, MemCmd::Read, noDef}, 0);
        FAIL() << "line-straddling access did not trap";
    } catch (const SimTrap &trap) {
        EXPECT_EQ(trap.code(), trapcode::cacheStraddle);
    }
}

TEST(Cache, TwoLevelHierarchy)
{
    Dram dram(100);
    Cache l2(CacheParams{"l2", 8, 2, 16, 10}, dram);
    Cache l1(CacheParams{"l1", 2, 2, 16, 1}, l2);
    // L1 miss, L2 miss -> DRAM.
    Cycle t1 = l1.access({0x00, 4, MemCmd::Read, noDef}, 0);
    EXPECT_EQ(t1, 100 + 10 + 1u);
    // L1 conflict evicts, but L2 still hits.
    l1.access({0x40, 4, MemCmd::Read, noDef}, t1);
    l1.access({0x80, 4, MemCmd::Read, noDef}, t1 + 200);
    Cycle t2 = l1.access({0x00, 4, MemCmd::Read, noDef}, 1000);
    EXPECT_EQ(t2, 1000 + 10 + 1u); // L2 hit latency only
}

} // namespace
} // namespace mbavf
