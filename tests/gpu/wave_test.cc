/**
 * @file
 * Functional tests for the GPU model: Wave op semantics, divergence,
 * memory operations, timing monotonicity, and fault injection hooks.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/trap.hh"
#include "gpu/gpu.hh"
#include "gpu/wave.hh"

namespace mbavf
{
namespace
{

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.numCus = 2;
    cfg.memBytes = 1 << 20;
    return cfg;
}

TEST(Wave, AluOpsComputeExpectedValues)
{
    Gpu gpu(smallGpu());
    gpu.launch(
        [](Wave &w) {
            w.movi(0, 10);
            w.movi(1, 3);
            w.add(2, 0, 1);
            w.sub(3, 0, 1);
            w.mul(4, 0, 1);
            w.mad(5, 0, 1, 2);
            w.andi(6, 0, 0x2);
            w.shli(7, 1, 2);
            w.shri(8, 0, 1);
            w.xor_(9, 0, 1);
            w.minu(10, 0, 1);
            w.maxu(11, 0, 1);
            EXPECT_EQ(w.peek(2, 0), 13u);
            EXPECT_EQ(w.peek(3, 5), 7u);
            EXPECT_EQ(w.peek(4, 63), 30u);
            EXPECT_EQ(w.peek(5, 1), 43u);
            EXPECT_EQ(w.peek(6, 0), 2u);
            EXPECT_EQ(w.peek(7, 0), 12u);
            EXPECT_EQ(w.peek(8, 0), 5u);
            EXPECT_EQ(w.peek(9, 0), 9u);
            EXPECT_EQ(w.peek(10, 0), 3u);
            EXPECT_EQ(w.peek(11, 0), 10u);
        },
        1);
    gpu.finish();
}

TEST(Wave, GlobalIdPerLaneAndWave)
{
    Gpu gpu(smallGpu());
    gpu.launch(
        [](Wave &w) {
            w.globalId(0);
            EXPECT_EQ(w.peek(0, 0), w.waveId() * 64u);
            EXPECT_EQ(w.peek(0, 63), w.waveId() * 64u + 63);
        },
        3);
    gpu.finish();
}

TEST(Wave, CompareAndSelect)
{
    Gpu gpu(smallGpu());
    gpu.launch(
        [](Wave &w) {
            w.laneIdx(0);
            w.cmpLtui(1, 0, 32);  // 1 for lanes 0-31
            w.movi(2, 111);
            w.movi(3, 222);
            w.select(4, 1, 2, 3);
            EXPECT_EQ(w.peek(4, 5), 111u);
            EXPECT_EQ(w.peek(4, 40), 222u);
        },
        1);
    gpu.finish();
}

TEST(Wave, DivergenceMasksLanes)
{
    Gpu gpu(smallGpu());
    gpu.launch(
        [](Wave &w) {
            w.laneIdx(0);
            w.movi(1, 0);
            w.cmpLtui(2, 0, 16);
            w.pushExecNonzero(2);
            w.movi(1, 7); // only lanes 0-15
            w.popExec();
            w.pushExecZero(2);
            w.movi(1, 9); // lanes 16-63
            w.popExec();
            EXPECT_EQ(w.peek(1, 3), 7u);
            EXPECT_EQ(w.peek(1, 20), 9u);
        },
        1);
    gpu.finish();
}

TEST(Wave, NestedDivergence)
{
    Gpu gpu(smallGpu());
    gpu.launch(
        [](Wave &w) {
            w.laneIdx(0);
            w.movi(1, 0);
            w.cmpLtui(2, 0, 32);
            w.pushExecNonzero(2);
            w.cmpLtui(3, 0, 8);
            w.pushExecNonzero(3);
            w.movi(1, 5); // lanes 0-7
            w.popExec();
            w.popExec();
            EXPECT_EQ(w.peek(1, 4), 5u);
            EXPECT_EQ(w.peek(1, 12), 0u);
            EXPECT_EQ(w.peek(1, 40), 0u);
        },
        1);
    gpu.finish();
}

TEST(Wave, LoadStoreRoundTrip)
{
    Gpu gpu(smallGpu());
    Addr buf = gpu.alloc(64 * 4);
    Addr out = gpu.alloc(64 * 4);
    for (unsigned i = 0; i < 64; ++i)
        gpu.mem().hostWrite32(buf + i * 4, i * 11);
    gpu.launch(
        [&](Wave &w) {
            w.laneIdx(0);
            w.muli(1, 0, 4);
            w.addi(1, 1, static_cast<std::uint32_t>(buf));
            w.load(2, 1);
            w.addi(2, 2, 1);
            w.muli(3, 0, 4);
            w.addi(3, 3, static_cast<std::uint32_t>(out));
            w.storeOut(3, 2);
        },
        1);
    gpu.finish();
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(gpu.mem().read32(out + i * 4), i * 11 + 1);
}

TEST(Wave, TimingAdvancesMonotonically)
{
    Gpu gpu(smallGpu());
    Cycle before = gpu.clock().now();
    gpu.launch(
        [](Wave &w) {
            w.movi(0, 1);
            Cycle t1 = w.endTime();
            w.movi(1, 2);
            EXPECT_GT(w.endTime(), t1);
        },
        2);
    EXPECT_GT(gpu.clock().now(), before);
}

TEST(Wave, MemoryLatencyChargesTime)
{
    Gpu gpu(smallGpu());
    Addr buf = gpu.alloc(64 * 4);
    Cycle alu_only = 0, with_mem = 0;
    {
        Gpu g2(smallGpu());
        g2.launch([](Wave &w) { w.movi(0, 1); }, 1);
        alu_only = g2.clock().now();
    }
    gpu.launch(
        [&](Wave &w) {
            w.movi(0, static_cast<std::uint32_t>(buf));
            w.load(1, 0);
        },
        1);
    with_mem = gpu.clock().now();
    EXPECT_GT(with_mem, alu_only);
}

TEST(Wave, WavesSpreadAcrossCusAndSlots)
{
    Gpu gpu(smallGpu());
    std::vector<std::pair<unsigned, unsigned>> seen;
    gpu.launch(
        [&](Wave &w) {
            seen.emplace_back(w.cu(), w.slot());
            w.movi(0, 1);
        },
        8);
    gpu.finish();
    ASSERT_EQ(seen.size(), 8u);
    EXPECT_EQ(seen[0], (std::pair<unsigned, unsigned>{0, 0}));
    EXPECT_EQ(seen[1], (std::pair<unsigned, unsigned>{1, 0}));
    EXPECT_EQ(seen[2], (std::pair<unsigned, unsigned>{0, 1}));
    EXPECT_EQ(seen[3], (std::pair<unsigned, unsigned>{1, 1}));
}

TEST(Gpu, InjectionFlipsRegisterAtTrigger)
{
    // Without injection r0 stays 8; with a flip of bit 1 armed just
    // before the second instruction, the consuming add sees 10.
    auto run = [](bool inject) {
        Gpu gpu(smallGpu());
        std::uint32_t result = 0;
        if (inject) {
            RegInjection inj;
            inj.cu = 0;
            inj.slot = 0;
            inj.reg = 0;
            inj.lane = 2;
            inj.bitMask = 0x2;
            inj.triggerInstr = 1;
            gpu.armInjections({inj});
        }
        gpu.launch(
            [&](Wave &w) {
                w.movi(0, 8);      // instr 0
                w.addi(1, 0, 0);   // instr 1: reads r0 post-flip
                result = w.peek(1, 2);
            },
            1);
        return result;
    };
    EXPECT_EQ(run(false), 8u);
    EXPECT_EQ(run(true), 10u);
}

TEST(Gpu, InjectionIntoUnusedRegisterIsMasked)
{
    auto run = [](bool inject) {
        Gpu gpu(smallGpu());
        std::uint32_t result = 0;
        if (inject) {
            RegInjection inj;
            inj.reg = 17; // never read
            inj.lane = 0;
            inj.bitMask = 0xFFFF;
            inj.triggerInstr = 0;
            gpu.armInjections({inj});
        }
        gpu.launch(
            [&](Wave &w) {
                w.movi(0, 4);
                w.addi(1, 0, 1);
                result = w.peek(1, 0);
            },
            1);
        return result;
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(Gpu, FinishFlushesAndFreezesHorizon)
{
    Gpu gpu(smallGpu());
    Addr buf = gpu.alloc(64 * 4);
    gpu.launch(
        [&](Wave &w) {
            w.laneIdx(0);
            w.muli(1, 0, 4);
            w.addi(1, 1, static_cast<std::uint32_t>(buf));
            w.store(1, 0);
        },
        1);
    gpu.finish();
    EXPECT_GT(gpu.horizon(), 0u);
    EXPECT_EQ(gpu.l1(0).stats().writebacks, 4u); // 4 lines of 64B
}

TEST(Gpu, StatsDumpIsCoherent)
{
    Gpu gpu(smallGpu());
    Addr buf = gpu.alloc(64 * 4);
    gpu.launch(
        [&](Wave &w) {
            w.laneIdx(0);
            w.muli(1, 0, 4);
            w.addi(1, 1, static_cast<std::uint32_t>(buf));
            w.load(2, 1);
            w.store(1, 2);
        },
        2);
    gpu.finish();

    std::ostringstream os;
    gpu.printStats(os);
    std::string text = os.str();
    EXPECT_NE(text.find("sim.cycles"), std::string::npos);
    EXPECT_NE(text.find("l1[0].hits"), std::string::npos);
    EXPECT_NE(text.find("dram.accesses"), std::string::npos);
    // Instruction count: 2 waves x 5 instructions.
    EXPECT_NE(text.find("sim.instructions      10"),
              std::string::npos);
}

TEST(Gpu, OutOfRangeAddressTraps)
{
    Gpu gpu(smallGpu());
    gpu.setTracking(false);
    try {
        gpu.launch(
            [](Wave &w) {
                w.movi(0, 0xFFFFFFF0u); // far out of range
                w.load(1, 0);
            },
            1);
        FAIL() << "out-of-range load did not trap";
    } catch (const SimTrap &trap) {
        EXPECT_EQ(trap.code(), trapcode::memOob);
    }
}

TEST(Gpu, UnalignedAddressTraps)
{
    Gpu gpu(smallGpu());
    gpu.setTracking(false);
    try {
        gpu.launch(
            [](Wave &w) {
                w.movi(0, 2); // 4-byte access at a 2-byte offset
                w.store(0, 0);
            },
            1);
        FAIL() << "unaligned store did not trap";
    } catch (const SimTrap &trap) {
        EXPECT_EQ(trap.code(), trapcode::memAlign);
    }
}

TEST(Gpu, WatchdogInstructionBudgetTraps)
{
    Gpu gpu(smallGpu());
    gpu.setTracking(false);
    gpu.setWatchdog(4, 0);
    try {
        gpu.launch(
            [](Wave &w) {
                for (int i = 0; i < 100; ++i)
                    w.addi(0, 0, 1);
            },
            1);
        FAIL() << "instruction budget did not trap";
    } catch (const SimTrap &trap) {
        EXPECT_EQ(trap.code(), trapcode::watchdogInstrs);
        EXPECT_TRUE(isWatchdogTrapCode(trap.code()));
    }
}

TEST(Gpu, WatchdogCycleBudgetTraps)
{
    Gpu gpu(smallGpu());
    gpu.setTracking(false);
    gpu.setWatchdog(0, 2);
    try {
        gpu.launch(
            [](Wave &w) {
                for (int i = 0; i < 100; ++i)
                    w.addi(0, 0, 1);
            },
            1);
        FAIL() << "cycle budget did not trap";
    } catch (const SimTrap &trap) {
        EXPECT_EQ(trap.code(), trapcode::watchdogCycles);
    }
}

TEST(Gpu, WatchdogDisabledByDefault)
{
    Gpu gpu(smallGpu());
    gpu.setTracking(false);
    gpu.launch(
        [](Wave &w) {
            for (int i = 0; i < 100; ++i)
                w.addi(0, 0, 1);
        },
        1);
    gpu.finish();
    EXPECT_EQ(gpu.instrCount(), 100u);
}

} // namespace
} // namespace mbavf
