/**
 * @file
 * Tests for the VGPR probe: register events to lifetimes, including
 * logic masking through the dataflow resolver.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "gpu/regfile_probe.hh"
#include "gpu/wave.hh"
#include "trace/dataflow.hh"

namespace mbavf
{
namespace
{

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.numCus = 1;
    cfg.memBytes = 1 << 20;
    return cfg;
}

struct Harness
{
    Harness() : gpu(smallGpu()), probe(gpu.config().regs)
    {
        gpu.regFile(0).setListener(&probe);
    }

    LifetimeStore
    finalize()
    {
        gpu.finish();
        Liveness live(gpu.dataflow());
        return probe.finalize(
            gpu.horizon(), [&live](DefId d) {
                return static_cast<std::uint64_t>(live.relevance(d));
            });
    }

    Gpu gpu;
    RegFileAvfProbe probe;
};

TEST(RegFileProbe, ValueFeedingOutputIsAce)
{
    Harness h;
    Addr out = h.gpu.alloc(64 * 4);
    h.gpu.launch(
        [&](Wave &w) {
            w.movi(0, 5);            // r0 written
            w.movi(1, 1);            // spacer
            w.laneIdx(2);
            w.muli(2, 2, 4);
            w.addi(2, 2, static_cast<std::uint32_t>(out));
            w.storeOut(2, 0);        // r0 consumed -> output
        },
        1);
    LifetimeStore store = h.finalize();

    // r0 lane 0: container id regId(slot 0, reg 0, lane 0) = 0.
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    // There must be a nonempty AceLive window on bit 0.
    EXPECT_GT(w->aceCycles(0, h.gpu.horizon()), 0u);
}

TEST(RegFileProbe, OverwrittenValueIsUnace)
{
    Harness h;
    h.gpu.launch(
        [&](Wave &w) {
            w.movi(0, 5);
            w.movi(1, 1);
            w.movi(0, 6); // overwrite r0 without reading it
            w.addi(2, 0, 0);
        },
        1);
    LifetimeStore store = h.finalize();
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    // r2 is never consumed so even the second value is dead; the
    // first value must have zero ACE time.
    EXPECT_EQ(w->aceCycles(0, h.gpu.horizon()), 0u);
}

TEST(RegFileProbe, LogicMaskingLimitsAceBits)
{
    Harness h;
    Addr out = h.gpu.alloc(64 * 4);
    h.gpu.launch(
        [&](Wave &w) {
            w.movi(0, 0xFFFF);
            w.andi(1, 0, 0x0F);      // only low nibble of r0 matters
            w.laneIdx(2);
            w.muli(2, 2, 4);
            w.addi(2, 2, static_cast<std::uint32_t>(out));
            w.storeOut(2, 1);
        },
        1);
    LifetimeStore store = h.finalize();
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    Cycle horizon = h.gpu.horizon();
    EXPECT_GT(w->aceCycles(0, horizon), 0u);  // bit 0 relevant
    EXPECT_EQ(w->aceCycles(8, horizon), 0u);  // bit 8 masked
    // Masked bits are still read out of the array: false-DUE time.
    EXPECT_GT(w->readDeadCycles(8, horizon), 0u);
}

TEST(RegFileProbe, DeadChainRegistersAreReadDead)
{
    Harness h;
    h.gpu.launch(
        [&](Wave &w) {
            w.movi(0, 5);
            w.addi(1, 0, 1); // r1 never used further
        },
        1);
    LifetimeStore store = h.finalize();
    const WordLifetime *w = store.find(0, 0);
    ASSERT_NE(w, nullptr);
    Cycle horizon = h.gpu.horizon();
    EXPECT_EQ(w->aceCycles(0, horizon), 0u);
    EXPECT_GT(w->readDeadCycles(0, horizon), 0u);
}

TEST(RegFileProbe, QuarterWaveTimestamps)
{
    // Lane 0 and lane 63 of the same op must be one quarter-wave
    // cadence apart (3 cycles at 16 lanes/cycle over 64 lanes).
    Gpu gpu(smallGpu());
    RegFileAvfProbe probe(gpu.config().regs);

    struct Recorder : RegFileListener
    {
        std::vector<std::pair<std::uint64_t, Cycle>> writes;
        void
        onRegWrite(std::uint64_t c, Cycle t, InstrTag) override
        {
            writes.emplace_back(c, t);
        }
        void
        onRegRead(std::uint64_t, Cycle, std::uint32_t, DefId,
                  bool) override
        {}
    } rec;
    gpu.regFile(0).setListener(&rec);
    gpu.launch([](Wave &w) { w.movi(0, 1); }, 1);

    ASSERT_EQ(rec.writes.size(), 64u);
    EXPECT_EQ(rec.writes[63].second - rec.writes[0].second, 3u);
}

} // namespace
} // namespace mbavf
