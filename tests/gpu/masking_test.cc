/**
 * @file
 * Value-aware logic-masking tests: the per-op relevance rules
 * (AND/OR by the other operand's bits, MUL by zero, select's
 * untaken operand) must show up in the VGPR lifetimes.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"
#include "gpu/regfile_probe.hh"
#include "gpu/wave.hh"
#include "trace/dataflow.hh"

namespace mbavf
{
namespace
{

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.numCus = 1;
    cfg.memBytes = 1 << 20;
    return cfg;
}

/** Runs a kernel, returns CU0 VGPR lifetimes. */
struct Harness
{
    Harness() : gpu(smallGpu()), probe(gpu.config().regs)
    {
        gpu.regFile(0).setListener(&probe);
        out = gpu.alloc(64 * 4);
    }

    void
    run(const std::function<void(Wave &)> &kernel)
    {
        gpu.launch(kernel, 1);
        gpu.finish();
        Liveness live(gpu.dataflow());
        store = probe.finalize(
            gpu.horizon(), [l = std::move(live)](DefId d) {
                return static_cast<std::uint64_t>(l.relevance(d));
            });
    }

    /** Emit value in @p reg to the output buffer. */
    void
    emit(Wave &w, unsigned reg, unsigned addr_tmp)
    {
        w.laneIdx(addr_tmp);
        w.muli(addr_tmp, addr_tmp, 4);
        w.addi(addr_tmp, addr_tmp, static_cast<std::uint32_t>(out));
        w.storeOut(addr_tmp, reg);
    }

    const WordLifetime *
    reg(unsigned r, unsigned lane = 0)
    {
        return store.find(gpu.config().regs.regId(0, r, lane), 0);
    }

    Gpu gpu;
    RegFileAvfProbe probe;
    Addr out = 0;
    LifetimeStore store{32, 1};
};

TEST(Masking, AndByRegisterMasksOtherOperand)
{
    Harness h;
    h.run([&](Wave &w) {
        w.movi(0, 0xFFFF); // the value under test
        w.movi(1, 0x00F0); // the mask operand
        w.and_(2, 0, 1);
        h.emit(w, 2, 5);
    });
    Cycle horizon = h.gpu.horizon();
    const WordLifetime *r0 = h.reg(0);
    ASSERT_NE(r0, nullptr);
    // Only bits 4-7 of r0 can affect the AND result.
    EXPECT_GT(r0->aceCycles(5, horizon), 0u);
    EXPECT_EQ(r0->aceCycles(0, horizon), 0u);
    EXPECT_EQ(r0->aceCycles(12, horizon), 0u);
    // Masked bits are still array reads (false-DUE candidates).
    EXPECT_GT(r0->readDeadCycles(0, horizon), 0u);
}

TEST(Masking, OrByOnesMasksOtherOperand)
{
    Harness h;
    h.run([&](Wave &w) {
        w.movi(0, 0x1234);
        w.movi(1, 0x00FF); // forces low byte to 1
        w.or_(2, 0, 1);
        h.emit(w, 2, 5);
    });
    Cycle horizon = h.gpu.horizon();
    const WordLifetime *r0 = h.reg(0);
    ASSERT_NE(r0, nullptr);
    // Low byte of r0 cannot matter; bit 8 can.
    EXPECT_EQ(r0->aceCycles(3, horizon), 0u);
    EXPECT_GT(r0->aceCycles(9, horizon), 0u);
}

TEST(Masking, MulByZeroKillsOperand)
{
    Harness h;
    h.run([&](Wave &w) {
        w.movi(0, 0x1234);
        w.movi(1, 0); // zero multiplier
        w.mul(2, 0, 1);
        h.emit(w, 2, 5);
    });
    Cycle horizon = h.gpu.horizon();
    const WordLifetime *r0 = h.reg(0);
    ASSERT_NE(r0, nullptr);
    for (unsigned b : {0u, 7u, 31u})
        EXPECT_EQ(r0->aceCycles(b, horizon), 0u) << b;
}

TEST(Masking, MulByNonzeroKeepsOperand)
{
    Harness h;
    h.run([&](Wave &w) {
        w.movi(0, 0x1234);
        w.movi(1, 3);
        w.mul(2, 0, 1);
        h.emit(w, 2, 5);
    });
    EXPECT_GT(h.reg(0)->aceCycles(0, h.gpu.horizon()), 0u);
}

TEST(Masking, SelectUntakenOperandIsDead)
{
    Harness h;
    h.run([&](Wave &w) {
        w.movi(0, 1);      // pred: always take a
        w.movi(1, 0xAAAA); // a (taken)
        w.movi(2, 0x5555); // b (untaken)
        w.select(3, 0, 1, 2);
        h.emit(w, 3, 5);
    });
    Cycle horizon = h.gpu.horizon();
    const WordLifetime *taken = h.reg(1);
    const WordLifetime *untaken = h.reg(2);
    ASSERT_NE(taken, nullptr);
    ASSERT_NE(untaken, nullptr);
    EXPECT_GT(taken->aceCycles(1, horizon), 0u);
    EXPECT_EQ(untaken->aceCycles(0, horizon), 0u);
    // The untaken operand is still read out of the register file.
    EXPECT_GT(untaken->readDeadCycles(0, horizon), 0u);
}

TEST(Masking, ShiftLimitsSurvivingBits)
{
    Harness h;
    h.run([&](Wave &w) {
        w.movi(0, 0xFFFFFFFF);
        w.shri(1, 0, 24); // only bits 24-31 survive
        h.emit(w, 1, 5);
    });
    Cycle horizon = h.gpu.horizon();
    const WordLifetime *r0 = h.reg(0);
    ASSERT_NE(r0, nullptr);
    EXPECT_EQ(r0->aceCycles(0, horizon), 0u);
    EXPECT_GT(r0->aceCycles(30, horizon), 0u);
}

TEST(Masking, TransitiveBitwiseChainComposesMasks)
{
    // r0 -AND 0xFF-> r1 -AND 0x0F-> r2 -> output: only bits 0-3 of
    // r0 matter (transitive per-bit masking through bitwise ops).
    Harness h;
    h.run([&](Wave &w) {
        w.movi(0, 0xFFFFFFFF);
        w.andi(1, 0, 0xFF);
        w.andi(2, 1, 0x0F);
        h.emit(w, 2, 5);
    });
    Cycle horizon = h.gpu.horizon();
    const WordLifetime *r0 = h.reg(0);
    ASSERT_NE(r0, nullptr);
    EXPECT_GT(r0->aceCycles(2, horizon), 0u);
    EXPECT_EQ(r0->aceCycles(6, horizon), 0u);
    EXPECT_EQ(r0->aceCycles(16, horizon), 0u);
}

TEST(Masking, InactiveLanesProduceNoEvents)
{
    Harness h;
    h.run([&](Wave &w) {
        w.laneIdx(0);
        w.cmpLtui(1, 0, 4); // only lanes 0-3 active
        w.pushExecNonzero(1);
        w.movi(2, 7);
        w.popExec();
    });
    // Lane 10's r2 was never written: absent from the store.
    EXPECT_EQ(h.reg(2, 10), nullptr);
    EXPECT_NE(h.reg(2, 2), nullptr);
}

} // namespace
} // namespace mbavf
