/**
 * @file
 * Tests for the dataflow trace and the backward liveness/relevance
 * analysis (transitive dynamic-dead detection, logic masking).
 */

#include <gtest/gtest.h>

#include <array>

#include "trace/dataflow.hh"

namespace mbavf
{
namespace
{

DefId
def0(DataflowLog &log)
{
    return log.record({});
}

DefId
use(DataflowLog &log, DefId src, std::uint32_t rel, bool positional)
{
    std::array<SrcUse, 1> s{SrcUse{src, rel, positional}};
    return log.record(s);
}

TEST(Dataflow, UnusedDefIsDead)
{
    DataflowLog log;
    DefId a = def0(log);
    Liveness live(log);
    EXPECT_FALSE(live.live(a));
    EXPECT_EQ(live.numDead(), 1u);
}

TEST(Dataflow, OutputIsLive)
{
    DataflowLog log;
    DefId a = def0(log);
    log.markOutput(a, 0xFF);
    Liveness live(log);
    EXPECT_TRUE(live.live(a));
    EXPECT_EQ(live.relevance(a), 0xFFu);
}

TEST(Dataflow, LivenessPropagatesThroughChain)
{
    DataflowLog log;
    DefId a = def0(log);
    DefId b = use(log, a, ~0u, false);
    DefId c = use(log, b, ~0u, false);
    log.markOutput(c);
    Liveness live(log);
    EXPECT_TRUE(live.live(a));
    EXPECT_TRUE(live.live(b));
}

TEST(Dataflow, TransitiveDeadChain)
{
    // a -> b -> c, c never used: the whole chain is dead
    // (first-level and transitive dynamic-dead instructions).
    DataflowLog log;
    DefId a = def0(log);
    DefId b = use(log, a, ~0u, false);
    DefId c = use(log, b, ~0u, false);
    (void)c;
    Liveness live(log);
    EXPECT_FALSE(live.live(a));
    EXPECT_FALSE(live.live(b));
    EXPECT_FALSE(live.live(c));
    EXPECT_EQ(live.numDead(), 3u);
}

TEST(Dataflow, PositionalRelevanceComposesThroughBitwiseChain)
{
    // a --(AND 0x0F)--> b --> output with mask 0x03:
    // only bits 0-1 of a matter.
    DataflowLog log;
    DefId a = def0(log);
    DefId b = use(log, a, 0x0F, true);
    log.markOutput(b, 0x03);
    Liveness live(log);
    EXPECT_EQ(live.relevance(b), 0x03u);
    EXPECT_EQ(live.relevance(a), 0x03u);
}

TEST(Dataflow, NonPositionalUseSpreadsFullRelevance)
{
    // An arithmetic consumer makes all declared source bits relevant
    // as soon as it is live at all.
    DataflowLog log;
    DefId a = def0(log);
    DefId b = use(log, a, 0xF0, false);
    log.markOutput(b, 0x01);
    Liveness live(log);
    EXPECT_EQ(live.relevance(a), 0xF0u);
}

TEST(Dataflow, RelevanceUnionsOverUses)
{
    DataflowLog log;
    DefId a = def0(log);
    DefId u1 = use(log, a, 0x0F, true);
    DefId u2 = use(log, a, 0xF0, true);
    log.markOutput(u1, 0x0F);
    log.markOutput(u2, 0xF0);
    Liveness live(log);
    EXPECT_EQ(live.relevance(a), 0xFFu);
}

TEST(Dataflow, DeadBranchContributesNothing)
{
    DataflowLog log;
    DefId a = def0(log);
    DefId dead = use(log, a, 0xFF00, true);
    (void)dead;
    DefId alive = use(log, a, 0x00FF, true);
    log.markOutput(alive, 0xFF);
    Liveness live(log);
    EXPECT_EQ(live.relevance(a), 0x00FFu);
}

TEST(Dataflow, MultipleSources)
{
    DataflowLog log;
    DefId a = def0(log);
    DefId b = def0(log);
    std::array<SrcUse, 2> srcs{SrcUse{a, 0x0F, true},
                               SrcUse{b, 0xF0, true}};
    DefId c = log.record(srcs);
    log.markOutput(c);
    Liveness live(log);
    EXPECT_EQ(live.relevance(a), 0x0Fu);
    EXPECT_EQ(live.relevance(b), 0xF0u);
}

TEST(Dataflow, ZeroRelevanceNonPositionalSourceStaysDead)
{
    // b consumes a but declares no relevant bits (e.g. AND with a
    // constant 0): even with b reaching output, a is logic-masked
    // everywhere and must stay dead.
    DataflowLog log;
    DefId a = def0(log);
    DefId b = use(log, a, 0, false);
    log.markOutput(b);
    Liveness live(log);
    EXPECT_TRUE(live.live(b));
    EXPECT_FALSE(live.live(a));
    EXPECT_EQ(live.relevance(a), 0u);
    EXPECT_EQ(live.numDead(), 1u);
}

TEST(Dataflow, ZeroRelevancePositionalSourceStaysDead)
{
    DataflowLog log;
    DefId a = def0(log);
    DefId b = use(log, a, 0, true);
    log.markOutput(b, 0xFF);
    Liveness live(log);
    EXPECT_FALSE(live.live(a));
    EXPECT_EQ(live.relevance(a), 0u);
}

TEST(Dataflow, ZeroRelevanceSourceBesideLiveSource)
{
    // One masked source must not inherit liveness from a sibling
    // source of the same consumer.
    DataflowLog log;
    DefId a = def0(log);
    DefId b = def0(log);
    std::array<SrcUse, 2> srcs{SrcUse{a, 0, false},
                               SrcUse{b, ~0u, false}};
    DefId c = log.record(srcs);
    log.markOutput(c);
    Liveness live(log);
    EXPECT_FALSE(live.live(a));
    EXPECT_TRUE(live.live(b));
}

TEST(Dataflow, ZeroMaskOutputStaysDead)
{
    // Declaring a def as output with an empty mask marks nothing.
    DataflowLog log;
    DefId a = def0(log);
    log.markOutput(a, 0);
    Liveness live(log);
    EXPECT_FALSE(live.live(a));
    EXPECT_EQ(log.outputMask(a), 0u);
}

TEST(Dataflow, DefTagRoundTrips)
{
    DataflowLog log;
    const InstrTag tag = makeInstrTag(3, 17);
    DefId a = log.record({}, tag);
    DefId b = def0(log);
    EXPECT_EQ(log.defTag(a), tag);
    EXPECT_EQ(tagKernel(log.defTag(a)), 3u);
    EXPECT_EQ(tagPc(log.defTag(a)), 17u);
    EXPECT_EQ(log.defTag(b), noInstrTag);
    EXPECT_EQ(log.defTag(999), noInstrTag);
}

TEST(Dataflow, ForwardReferencePanics)
{
    DataflowLog log;
    std::array<SrcUse, 1> srcs{SrcUse{5, ~0u, false}};
    EXPECT_DEATH(log.record(srcs), "forward");
}

TEST(Dataflow, ClearResets)
{
    DataflowLog log;
    def0(log);
    log.clear();
    EXPECT_EQ(log.size(), 0u);
}

TEST(Dataflow, UnknownDefRelevanceIsZero)
{
    DataflowLog log;
    Liveness live(log);
    EXPECT_EQ(live.relevance(42), 0u);
    EXPECT_FALSE(live.live(noDef));
}

} // namespace
} // namespace mbavf
