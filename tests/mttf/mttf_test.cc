/**
 * @file
 * Tests for the temporal/spatial MTTF models (Figure 2 substrate).
 */

#include <gtest/gtest.h>

#include "mttf/mttf.hh"

namespace mbavf
{
namespace
{

MttfParams
base()
{
    MttfParams p;
    p.fitPerBit = 1e-6;
    p.lifetimeHours = 100.0 * 24 * 365;
    p.smbfFraction = 0.001;
    return p;
}

TEST(Mttf, SmbfScalesInverselyWithRate)
{
    MttfParams p = base();
    double m1 = smbfMttfHours(p);
    p.fitPerBit *= 10;
    double m2 = smbfMttfHours(p);
    EXPECT_NEAR(m1 / m2, 10.0, 1e-9);
}

TEST(Mttf, TmbfScalesInverselyWithRateSquared)
{
    MttfParams p = base();
    double m1 = tmbfMttfHours(p);
    p.fitPerBit *= 10;
    double m2 = tmbfMttfHours(p);
    EXPECT_NEAR(m1 / m2, 100.0, 1e-6);
}

TEST(Mttf, ShorterLifetimeRaisesTmbfMttf)
{
    MttfParams p = base();
    double long_life = tmbfMttfHours(p);
    p.lifetimeHours /= 1000;
    double short_life = tmbfMttfHours(p);
    EXPECT_NEAR(short_life / long_life, 1000.0, 1e-6);
}

TEST(Mttf, HigherSmbfFractionLowersMttf)
{
    MttfParams p = base();
    double m01 = smbfMttfHours(p);
    p.smbfFraction = 0.05;
    double m5 = smbfMttfHours(p);
    // The paper: a 5% sMBF rate costs ~2 orders of magnitude vs 0.1%.
    EXPECT_NEAR(m01 / m5, 50.0, 1e-9);
}

TEST(Mttf, PaperShapeSmbfDominatesAtRealisticRates)
{
    // At realistic raw rates and a 100-year lifetime, spatial-MBF
    // MTTF is orders of magnitude below temporal-MBF MTTF.
    MttfParams p = base();
    for (double fit : {1e-8, 1e-7, 1e-6}) {
        p.fitPerBit = fit;
        EXPECT_LT(smbfMttfHours(p), tmbfMttfHours(p) * 1e-4)
            << "fit " << fit;
    }
}

TEST(Mttf, InfiniteLifetimeStillFavorsSmbf)
{
    // "sMBF MTTF is lower than tMBF MTTF even when assuming infinite
    // cache lifetimes" at realistic rates.
    MttfParams p = base();
    for (double fit : {1e-8, 1e-7, 1e-6, 1e-5}) {
        p.fitPerBit = fit;
        EXPECT_LT(smbfMttfHours(p), tmbfMttfInfiniteHours(p))
            << "fit " << fit;
    }
}

TEST(Mttf, InvalidParamsAreFatal)
{
    MttfParams p = base();
    p.fitPerBit = 0;
    EXPECT_DEATH((void)tmbfMttfHours(p), "non-positive");
    EXPECT_DEATH((void)smbfMttfHours(p), "non-positive");
}

} // namespace
} // namespace mbavf
