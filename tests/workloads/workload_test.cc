/**
 * @file
 * Workload-level tests: registry integrity, deterministic golden
 * outputs, functional correctness of representative kernels, and
 * the end-to-end ACE runner.
 */

#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "workloads/ace_runner.hh"
#include "workloads/workload.hh"

namespace mbavf
{
namespace
{

TEST(WorkloadRegistry, AllNamesConstruct)
{
    for (const std::string &name : workloadNames()) {
        auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), name);
    }
    EXPECT_EQ(workloadNames().size(), 19u);
    EXPECT_EQ(appSdkWorkloadNames().size(), 9u);
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)makeWorkload("nonesuch"), "unknown workload");
}

std::vector<std::uint8_t>
goldenBytes(const std::string &name)
{
    Gpu gpu(GpuConfig{});
    gpu.setTracking(false);
    auto w = makeWorkload(name);
    w->run(gpu);
    gpu.finish();
    std::vector<std::uint8_t> bytes;
    for (const auto &r : w->outputs()) {
        for (std::uint64_t i = 0; i < r.bytes; ++i)
            bytes.push_back(gpu.mem().read8(r.addr + i));
    }
    return bytes;
}

class WorkloadDeterminism : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadDeterminism, GoldenOutputIsDeterministic)
{
    auto a = goldenBytes(GetParam());
    auto b = goldenBytes(GetParam());
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadDeterminism,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadFunctional, HistogramCountsSumToN)
{
    Gpu gpu(GpuConfig{});
    gpu.setTracking(false);
    auto w = makeWorkload("histogram");
    w->run(gpu);
    gpu.finish();
    ASSERT_EQ(w->outputs().size(), 1u);
    const auto &out = w->outputs()[0];
    std::uint64_t sum = 0;
    for (unsigned b = 0; b < 64; ++b)
        sum += gpu.mem().read32(out.addr + b * 4);
    // Same-wave same-bin updates lose counts deterministically (no
    // atomics in the model), so the sum is at most n.
    EXPECT_GT(sum, 0u);
    EXPECT_LE(sum, 4096u);
}

TEST(WorkloadFunctional, MatrixTransposeIsExact)
{
    Gpu gpu(GpuConfig{});
    gpu.setTracking(false);
    auto w = makeWorkload("matrix_transpose");
    w->run(gpu);
    gpu.finish();
    // Output range starts right after the 64x64 input (allocation
    // order: in then out).
    const auto &out = w->outputs()[0];
    Addr in = out.addr - 64 * 64 * 4;
    for (unsigned i = 0; i < 64; i += 7) {
        for (unsigned j = 0; j < 64; j += 5) {
            EXPECT_EQ(gpu.mem().read32(out.addr + (i * 64 + j) * 4),
                      gpu.mem().read32(in + (j * 64 + i) * 4));
        }
    }
}

TEST(WorkloadFunctional, ScanIsInclusivePrefixSum)
{
    Gpu gpu(GpuConfig{});
    gpu.setTracking(false);
    auto w = makeWorkload("scan_large_arrays");
    w->run(gpu);
    gpu.finish();
    const auto &out = w->outputs()[0];
    // Input buffer precedes the two ping-pong buffers; allocation
    // order is a (input+workspace), b. The final result lives in one
    // of them; validate the scan property instead: the sequence is
    // non-decreasing and the first element is unchanged mod small
    // values. Strongest cheap check: differences are non-negative.
    std::uint32_t prev = gpu.mem().read32(out.addr);
    for (unsigned i = 1; i < 2048; ++i) {
        std::uint32_t cur = gpu.mem().read32(out.addr + i * 4);
        EXPECT_GE(cur, prev) << "at " << i;
        prev = cur;
    }
}

TEST(WorkloadFunctional, PrefixSumMatchesScan)
{
    // prefix_sum (divergent) and a host-computed reference agree.
    Gpu gpu(GpuConfig{});
    gpu.setTracking(false);
    auto w = makeWorkload("prefix_sum");
    w->run(gpu);
    gpu.finish();
    const auto &out = w->outputs()[0];
    // Reconstruct the input from the scan output: in[i] =
    // out[i] - out[i-1] must be within the generator's mask.
    std::uint32_t prev = 0;
    for (unsigned i = 0; i < 1024; ++i) {
        std::uint32_t cur = gpu.mem().read32(out.addr + i * 4);
        EXPECT_LE(cur - prev, 0xFFu) << "at " << i;
        prev = cur;
    }
}

TEST(WorkloadFunctional, BfsLevelsAreBounded)
{
    Gpu gpu(GpuConfig{});
    gpu.setTracking(false);
    auto w = makeWorkload("bfs");
    w->run(gpu);
    gpu.finish();
    const auto &out = w->outputs()[0];
    // Source is level 0; reached nodes have levels 1..6; the rest
    // stay at the INF sentinel. The local graph guarantees spread.
    EXPECT_EQ(gpu.mem().read32(out.addr), 0u);
    unsigned reached = 0;
    for (unsigned i = 0; i < 448; ++i) {
        std::uint32_t lvl = gpu.mem().read32(out.addr + i * 4);
        EXPECT_TRUE(lvl <= 6 || lvl == 0xFFFF) << i;
        if (lvl <= 6)
            ++reached;
    }
    EXPECT_GT(reached, 20u);
    EXPECT_LT(reached, 448u); // and some nodes stay unreached
}

TEST(WorkloadFunctional, KmeansAssignmentsInRange)
{
    Gpu gpu(GpuConfig{});
    gpu.setTracking(false);
    auto w = makeWorkload("kmeans");
    w->run(gpu);
    gpu.finish();
    const auto &out = w->outputs()[0];
    std::array<unsigned, 8> used{};
    for (unsigned i = 0; i < 1536; ++i) {
        std::uint32_t c = gpu.mem().read32(out.addr + i * 4);
        ASSERT_LT(c, 8u) << i;
        ++used[c];
    }
    // Random uniform points must spread over several clusters.
    unsigned nonempty = 0;
    for (unsigned u : used)
        nonempty += u > 0;
    EXPECT_GE(nonempty, 4u);
}

TEST(WorkloadFunctional, NwScoresAreMonotoneAlongEdges)
{
    Gpu gpu(GpuConfig{});
    gpu.setTracking(false);
    auto w = makeWorkload("nw");
    w->run(gpu);
    gpu.finish();
    const auto &out = w->outputs()[0];
    // Min-cost DP with non-negative costs: boundary row is the gap
    // ramp and all interior cells are finite and bounded by the
    // worst all-gaps path.
    const unsigned stride = 57;
    for (unsigned i = 1; i <= 56; ++i) {
        std::uint32_t v =
            gpu.mem().read32(out.addr + (i * stride + i) * 4);
        EXPECT_LE(v, 2u * 56u * 15u + 112u) << i;
    }
}

TEST(AceRunner, ProducesLifetimesAndStats)
{
    AceRun run = runAceAnalysis("histogram");
    EXPECT_GT(run.horizon, 0u);
    EXPECT_GT(run.l1.numContainers(), 0u);
    EXPECT_GT(run.vgpr.numContainers(), 0u);
    EXPECT_GT(run.l1Stats.hits + run.l1Stats.misses, 0u);
    EXPECT_GT(run.numDefs, 0u);
}

TEST(AceRunner, ScaleGrowsWork)
{
    AceRun one = runAceAnalysis("matrix_transpose", 1);
    AceRun two = runAceAnalysis("matrix_transpose", 2);
    EXPECT_GT(two.horizon, one.horizon);
}

} // namespace
} // namespace mbavf
