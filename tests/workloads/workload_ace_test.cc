/**
 * @file
 * Workload ACE-characteristic tests: each synthetic stand-in must
 * exhibit the property the paper's corresponding benchmark is used
 * for (dead data in comd, divergence in prefix_sum, phases in
 * minife, ...), since the figure reproductions depend on them.
 */

#include <gtest/gtest.h>

#include "core/mbavf.hh"
#include "core/protection.hh"
#include "workloads/ace_runner.hh"

namespace mbavf
{
namespace
{

MbAvfResult
l1Avf(const AceRun &run, unsigned mode_bits, unsigned windows = 0)
{
    CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                       run.config.l1.lineBytes};
    auto array = makeCacheArray(geom, CacheInterleave::WayPhysical, 2);
    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = run.horizon;
    opt.numWindows = windows;
    return computeMbAvf(*array, run.l1, parity,
                        FaultMode::mx1(mode_bits), opt);
}

TEST(WorkloadAce, ComdHasSubstantialDeadData)
{
    AceRun run = runAceAnalysis("comd");
    // The cutoff test discards far neighbours: >5% dead defs.
    EXPECT_GT(static_cast<double>(run.numDeadDefs) / run.numDefs,
              0.05);
}

TEST(WorkloadAce, ComdHasFalseDue)
{
    AceRun run = runAceAnalysis("comd");
    MbAvfResult sb = l1Avf(run, 1);
    EXPECT_GT(sb.avf.falseDue, 0.01);
    // And a meaningful share of total DUE (the paper's Figure 10).
    EXPECT_GT(sb.avf.falseDue / sb.avf.due(), 0.1);
}

TEST(WorkloadAce, MinifeHasPhases)
{
    AceRun run = runAceAnalysis("minife");
    MbAvfResult sb = l1Avf(run, 1, 8);
    double lo = 1.0, hi = 0.0;
    for (const AvfFractions &w : sb.windows) {
        lo = std::min(lo, w.due());
        hi = std::max(hi, w.due());
    }
    // AVF must move substantially across phases.
    EXPECT_GT(hi, 1.5 * lo);
}

TEST(WorkloadAce, EveryWorkloadHasNonzeroL1Avf)
{
    for (const std::string &name : workloadNames()) {
        AceRun run = runAceAnalysis(name);
        MbAvfResult sb = l1Avf(run, 1);
        EXPECT_GT(sb.avf.total(), 0.0) << name;
        EXPECT_LT(sb.avf.total(), 1.0) << name;
    }
}

TEST(WorkloadAce, MbAvfWithinFirstPrinciplesBand)
{
    // The central invariant on real (not synthetic) lifetimes.
    for (const char *name : {"minife", "srad", "fast_walsh",
                             "matmul"}) {
        AceRun run = runAceAnalysis(name);
        MbAvfResult sb = l1Avf(run, 1);
        MbAvfResult mb = l1Avf(run, 2);
        ASSERT_GT(sb.avf.total(), 0.0) << name;
        double ratio = mb.avf.total() / sb.avf.total();
        EXPECT_GE(ratio, 1.0 - 1e-9) << name;
        EXPECT_LE(ratio, 2.0 + 1e-9) << name;
    }
}

TEST(WorkloadAce, VgprAvfIsSmallButNonzero)
{
    AceRun run = runAceAnalysis("matmul");
    auto array = makeRegFileArray(run.config.regs,
                                  RegInterleave::IntraThread, 1);
    NoProtection none;
    MbAvfOptions opt;
    opt.horizon = run.horizon;
    MbAvfResult sb = computeSbAvf(*array, run.vgpr, none, opt);
    EXPECT_GT(sb.avf.sdc, 0.0);
    EXPECT_LT(sb.avf.sdc, 0.3); // registers are mostly short-lived
}

TEST(WorkloadAce, InterThreadShieldingConvertsSdcToDue)
{
    // The Section VIII mechanism on real VGPR lifetimes.
    AceRun run = runAceAnalysis("dct");
    auto array = makeRegFileArray(run.config.regs,
                                  RegInterleave::InterThread, 2);
    ParityScheme parity;
    MbAvfOptions opt;
    opt.horizon = run.horizon;
    MbAvfResult plain = computeMbAvf(*array, run.vgpr, parity,
                                     FaultMode::mx1(2), opt);
    opt.dueShieldsSdc = true;
    MbAvfResult shielded = computeMbAvf(*array, run.vgpr, parity,
                                        FaultMode::mx1(2), opt);
    EXPECT_LE(shielded.avf.sdc, plain.avf.sdc);
    EXPECT_GE(shielded.avf.trueDue, plain.avf.trueDue);
    // Total vulnerability is conserved: shielding reclassifies.
    EXPECT_NEAR(shielded.avf.total(), plain.avf.total(), 1e-9);
}

TEST(WorkloadAce, LogicalInterleavingIsAtTheFloor)
{
    // Same-line check words: 2x1 MB-AVF == SB-AVF to within noise
    // for every workload (maximum ACE locality).
    for (const char *name : {"srad", "histogram"}) {
        AceRun run = runAceAnalysis(name);
        CacheGeometry geom{run.config.l1.sets, run.config.l1.ways,
                           run.config.l1.lineBytes};
        auto array =
            makeCacheArray(geom, CacheInterleave::Logical, 2);
        ParityScheme parity;
        MbAvfOptions opt;
        opt.horizon = run.horizon;
        double sb = computeSbAvf(*array, run.l1, parity, opt)
                        .avf.due();
        double mb = computeMbAvf(*array, run.l1, parity,
                                 FaultMode::mx1(2), opt)
                        .avf.due();
        EXPECT_NEAR(mb / sb, 1.0, 0.02) << name;
    }
}

} // namespace
} // namespace mbavf
