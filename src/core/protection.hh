/**
 * @file
 * Error protection schemes and their interaction with multi-bit
 * faults (paper Section V-A).
 *
 * A protection domain is the region of data covered by a single
 * element of the scheme (one parity or ECC word). A scheme defines
 * what happens when a fault of n flipped bits lands inside one
 * domain: corrected, detected (DUE), or undetected (SDC-capable).
 */

#ifndef MBAVF_CORE_PROTECTION_HH
#define MBAVF_CORE_PROTECTION_HH

#include <cstdint>
#include <memory>
#include <string>

namespace mbavf
{

/** The action a protection domain takes upon observing a fault. */
enum class FaultAction : std::uint8_t
{
    Corrected,
    Detected,
    Undetected,
};

/**
 * Abstract protection scheme: maps the number of flipped bits within
 * one protection domain to the domain's reaction, and reports its
 * check-bit area overhead for a given data-word size.
 */
class ProtectionScheme
{
  public:
    virtual ~ProtectionScheme() = default;

    /** Scheme name for reports. */
    virtual std::string name() const = 0;

    /** Reaction to @p flipped_bits simultaneous flips in one domain. */
    virtual FaultAction action(unsigned flipped_bits) const = 0;

    /** Check bits required to protect @p data_bits. */
    virtual unsigned checkBits(unsigned data_bits) const = 0;

    /** Fractional area overhead: checkBits / dataBits. */
    double
    areaOverhead(unsigned data_bits) const
    {
        return static_cast<double>(checkBits(data_bits)) / data_bits;
    }
};

/** No protection: every fault is undetected. */
class NoProtection : public ProtectionScheme
{
  public:
    std::string name() const override { return "none"; }
    FaultAction
    action(unsigned flipped_bits) const override
    {
        return flipped_bits == 0 ? FaultAction::Corrected
                                 : FaultAction::Undetected;
    }
    unsigned checkBits(unsigned) const override { return 0; }
};

/**
 * Even parity over the domain: detects any odd number of flips,
 * misses any even number.
 */
class ParityScheme : public ProtectionScheme
{
  public:
    std::string name() const override { return "parity"; }
    FaultAction
    action(unsigned flipped_bits) const override
    {
        if (flipped_bits == 0)
            return FaultAction::Corrected;
        return (flipped_bits % 2) ? FaultAction::Detected
                                  : FaultAction::Undetected;
    }
    unsigned checkBits(unsigned) const override { return 1; }
};

/**
 * Single-error-correct, double-error-detect Hamming code. Faults of
 * three or more bits exceed the code distance and may be silently
 * miscorrected, so they are modeled as undetected (the conservative
 * reading the paper uses for its 6x1/7x1 miscorrection discussion).
 */
class SecDedScheme : public ProtectionScheme
{
  public:
    std::string name() const override { return "SEC-DED"; }
    FaultAction
    action(unsigned flipped_bits) const override
    {
        if (flipped_bits <= 1)
            return FaultAction::Corrected;
        if (flipped_bits == 2)
            return FaultAction::Detected;
        return FaultAction::Undetected;
    }
    unsigned checkBits(unsigned data_bits) const override;
};

/** Double-error-correct, triple-error-detect code. */
class DecTedScheme : public ProtectionScheme
{
  public:
    std::string name() const override { return "DEC-TED"; }
    FaultAction
    action(unsigned flipped_bits) const override
    {
        if (flipped_bits <= 2)
            return FaultAction::Corrected;
        if (flipped_bits == 3)
            return FaultAction::Detected;
        return FaultAction::Undetected;
    }
    unsigned checkBits(unsigned data_bits) const override;
};

/**
 * Idealized strong detection (e.g. a CRC over the domain): detects
 * every fault, corrects none. Useful as an upper bound for
 * detection-oriented designs (Section VIII discussion).
 */
class CrcDetectScheme : public ProtectionScheme
{
  public:
    std::string name() const override { return "CRC"; }
    FaultAction
    action(unsigned flipped_bits) const override
    {
        return flipped_bits == 0 ? FaultAction::Corrected
                                 : FaultAction::Detected;
    }
    unsigned checkBits(unsigned) const override { return 8; }
};

/** Factory by name: none | parity | secded | dected | crc. */
std::unique_ptr<ProtectionScheme>
makeScheme(const std::string &name);

} // namespace mbavf

#endif // MBAVF_CORE_PROTECTION_HH
