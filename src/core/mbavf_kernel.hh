/**
 * @file
 * Internals shared by the sweep-kernel translation units.
 *
 * The single-pass multi-mode kernel has two implementations: the
 * portable scalar kernel in core/mbavf.cc (the differential oracle
 * and non-x86 fallback) and the AVX2 lane-per-prefix kernel in
 * core/mbavf_kernel_avx2.cc, compiled with -mavx2 and selected at
 * runtime. Both emit into the same accumulator types, so the pieces
 * they share live here.
 *
 * This header is internal to src/core — not part of the public API.
 * The accumulator methods with loops are deliberately defined
 * out-of-line (core/mbavf_kernel.cc, compiled without -mavx2): if
 * they were inline, the linker could keep the AVX2-compiled copy of
 * a shared weak symbol and feed illegal instructions to the scalar
 * path on pre-AVX2 hardware.
 */

#ifndef MBAVF_CORE_MBAVF_KERNEL_HH
#define MBAVF_CORE_MBAVF_KERNEL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/ace_class.hh"
#include "core/layout.hh"
#include "core/protection.hh"

namespace mbavf
{

class LifetimeArena;

namespace detail
{

/** Largest fault-mode size the sweep kernel supports. */
constexpr unsigned maxModeBits = 64;

/**
 * Classify one region (bits of the group sharing a protection domain)
 * given the ACE classes present among its member bits and the action
 * the scheme takes on this region's flip count.
 */
inline Outcome
classifyRegion(FaultAction action, bool any_ace_live, bool any_read)
{
    switch (action) {
      case FaultAction::Corrected:
        return Outcome::Unace;
      case FaultAction::Detected:
        if (any_ace_live)
            return Outcome::TrueDue;
        if (any_read)
            return Outcome::FalseDue;
        return Outcome::Unace;
      case FaultAction::Undetected:
        if (any_ace_live)
            return Outcome::Sdc;
        return Outcome::Unace;
    }
    panic("unreachable fault action");
}

/**
 * Combine region outcomes into the group outcome. Default precedence
 * is SDC > trueDUE > falseDUE > unACE; with due_shields_sdc a
 * detected region converts would-be SDC into a true DUE.
 */
inline Outcome
combineOutcomes(bool has_sdc, bool has_true_due, bool has_false_due,
                bool due_shields_sdc)
{
    if (has_sdc && has_true_due && due_shields_sdc)
        return Outcome::TrueDue;
    if (has_sdc)
        return Outcome::Sdc;
    if (has_true_due)
        return Outcome::TrueDue;
    if (has_false_due)
        return Outcome::FalseDue;
    return Outcome::Unace;
}

/** Accumulates outcome time, whole-run and per-window. */
class OutcomeAccumulator
{
  public:
    OutcomeAccumulator(Cycle horizon, unsigned num_windows);

    /** Exact integer window boundary: window w covers
     *  [bound(w), bound(w+1)). */
    Cycle bound(unsigned w) const { return bounds_[w]; }

    void add(Outcome outcome, Cycle begin, Cycle end);

    /**
     * Raw deposits for kernels that accumulate class/window time in
     * flat local tensors and fold once at the end (the AVX2 kernel):
     * @p idx is a classIndex() value. Exactly additive with add() —
     * folding partial sums deposits the same integers.
     */
    void addRaw(unsigned idx, Cycle amount);
    void addWindowRaw(unsigned window, unsigned idx, Cycle amount);

    unsigned numWindows() const { return numWindows_; }

    const std::array<Cycle, 3> &totals() const { return totals_; }

    Cycle
    windowTotal(unsigned window, unsigned idx) const
    {
        return windows_[std::size_t(window) * 3 + idx];
    }

    /** Fold another accumulator's counts in (exact integer sums). */
    void mergeFrom(const OutcomeAccumulator &other);

    static unsigned
    classIndex(Outcome outcome)
    {
        switch (outcome) {
          case Outcome::Sdc: return 0;
          case Outcome::TrueDue: return 1;
          case Outcome::FalseDue: return 2;
          default: panic("no class index for unACE");
        }
    }

  private:
    Cycle horizon_;
    unsigned numWindows_;
    unsigned hint_ = 0; ///< window that absorbed the last add()
    std::array<Cycle, 3> totals_ = {0, 0, 0};
    std::vector<Cycle> windows_;
    std::vector<Cycle> bounds_;
};

/**
 * One change point of a single physical bit's lifetime: from @c at
 * onward the bit is ACE-live and/or read-shadowed, until the bit's
 * next event. Both zero is equivalent to a lifetime gap. Events at
 * or after the sweep horizon are never materialized — they cannot
 * open a slice, and a close at exactly the horizon would collide
 * with the kernels' no-pending-event sentinel when the horizon is
 * UINT64_MAX (open runs are flushed to the horizon instead).
 */
struct BitEvent
{
    Cycle at;
    std::uint8_t live;
    std::uint8_t read;
};

/** One OutcomeAccumulator per mode, merged pairwise in band order. */
struct ModeAccumulators
{
    std::vector<OutcomeAccumulator> modes;

    ModeAccumulators(Cycle horizon, unsigned num_windows,
                     unsigned max_mode);

    void mergeFrom(const ModeAccumulators &other);
};

/** Inputs of one multi-mode row-band sweep, shared by both kernels. */
struct SweepCtx
{
    const PhysicalArray *array = nullptr;
    const LifetimeArena *arena = nullptr;
    Cycle horizon = 0;
    bool dueShields = false;
    unsigned maxMode = 0;
    /** Memoized scheme.action(k), k in [0, maxModeBits]. */
    const FaultAction *actionOf = nullptr;
};

/** Work counters a band sweep reports back to the obs metrics. */
struct SweepTallies
{
    std::uint64_t groups = 0;
    std::uint64_t anchors = 0;
};

/**
 * True when the AVX2 kernel is compiled in (MBAVF_SIMD on x86-64)
 * and this CPU supports AVX2. Cheap enough to query per call.
 */
bool avx2KernelAvailable();

/**
 * AVX2 lane-per-prefix row-band sweep: process anchor rows
 * [row_begin, row_end), accumulating every mode 1x1..maxMode x1 into
 * @p out. Bit-identical to the scalar kernel in core/mbavf.cc —
 * same elementary slices, same run coalescing rule, same counters.
 * Must only be called when avx2KernelAvailable() is true.
 */
void sweepRowsAvx2(const SweepCtx &ctx, std::uint64_t row_begin,
                   std::uint64_t row_end, ModeAccumulators &out,
                   SweepTallies &tallies);

} // namespace detail
} // namespace mbavf

#endif // MBAVF_CORE_MBAVF_KERNEL_HH
