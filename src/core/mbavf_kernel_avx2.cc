/**
 * @file
 * AVX2 lane-per-prefix, row-major sweepline implementation of the
 * multi-mode sweep.
 *
 * The scalar kernel (core/mbavf.cc) grows each fault group one
 * member at a time and min-merges its members' event timelines — so
 * every column's events are re-merged by each of the maxMode anchors
 * whose window contains it, and each time slice pays an O(maxm)
 * branchy chain. This kernel removes both redundancies:
 *
 *  - Lane transposition: 32-bit lane j of block B computes the
 *    outcome of the prefix of length B*8 + j + 1 directly, so one
 *    vector op advances 8 modes at once. A region's ACE state for a
 *    prefix is a threshold function (the region is live for mode
 *    (i+1)x1 iff its first live member has index <= i), and the
 *    scheme action of a region depends only on how many members the
 *    prefix contains — fixed per anchor, so the per-lane action
 *    masks are memoized per domain-window pattern.
 *
 *  - Row-major time order: instead of per-anchor timeline merges,
 *    one sweepline walks the row's arena words in global time order
 *    (a small binary heap of per-word cursors), maintains per-column
 *    live/read bitsets, and updates exactly the anchors whose window
 *    contains a changed column. The number of anchor updates equals
 *    the scalar kernel's slice count; the per-update cost drops to
 *    two bitset window reads plus a handful of vector ops.
 *
 * Outcome runs are accumulated into flat per-(class, window, mode)
 * tensors local to the sweep and folded into the shared accumulators
 * once at the end. Interleaving word transitions that share a
 * timestamp can split one scalar-kernel run into adjacent pieces,
 * but run deposits are exactly additive over adjacent integer
 * intervals — per-class totals and per-window splits alike — so the
 * final sums are bit-identical to the scalar kernel (the
 * differential fuzz pins this on both builds).
 *
 * Rows are processed in small bands, two-phased: phase one resolves
 * the band's columns to arena words; phase two runs the sweepline
 * on each row while the resolved state is cache-resident.
 *
 * Built only when MBAVF_SIMD is on and the target is x86-64; the
 * translation unit is compiled with -mavx2, and callers must check
 * avx2KernelAvailable() (a runtime CPUID probe) first.
 */

#include "core/mbavf_kernel.hh"

#include "common/bits.hh"
#include "core/lifetime_arena.hh"

#if defined(MBAVF_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <utility>
#include <vector>

namespace mbavf
{
namespace detail
{

namespace
{

constexpr unsigned kLanes = 8; ///< u32 lanes per 256-bit vector
constexpr unsigned kMaxBlocks = maxModeBits / kLanes;
constexpr Cycle no_event = ~Cycle(0);

/**
 * Rows per cache block. A band's columns are resolved in phase one
 * and swept in phase two while the resolved state is still resident.
 */
constexpr std::uint64_t kRowBand = 4;

/** Direct-mapped window-lookup table size (log2). */
constexpr unsigned kWindowTableBits = 10;

/** Hash slots for the per-row setup cache (power of two). */
constexpr unsigned kSetupSlots = 64;

/** Resolved view of one physical column of the current row. */
struct ColBit
{
    std::uint32_t word = LifetimeArena::noWord;
    std::uint32_t bitInWord = 0;
    DomainId domain = invalidDomain;
};

/** The bits of one arena word touched by the current anchor row. */
struct WordGroup
{
    std::uint32_t word = LifetimeArena::noWord;
    std::uint64_t mask = 0;
    /** Owning anchor-row column of each present bit (mask guards). */
    std::array<std::uint32_t, 64> colOf;
};

/** One row's resolved columns, word groups, and live-column bits. */
struct RowState
{
    std::vector<ColBit> cols;
    std::vector<WordGroup> groups;
    std::size_t numGroups = 0;
    /** Bit c set when column c resolves to a live word. */
    std::vector<std::uint64_t> lifeBits;
};

/**
 * Sweepline cursor over one arena word's segments: the projected
 * (ace, read) masks currently in force and the segment walk state.
 */
struct WordCursor
{
    const WordGroup *wg = nullptr;
    std::uint32_t s = 0;  ///< next segment slot
    std::uint32_t hi = 0; ///< one past the word's last slot
    std::uint64_t ace = 0, read = 0;
    Cycle stateEnd = 0;
};

/** Heap entry: the time of a word's next transition. */
struct HeapItem
{
    Cycle t;
    std::uint32_t cursor;
};

struct HeapLater
{
    bool
    operator()(const HeapItem &a, const HeapItem &b) const
    {
        return a.t > b.t;
    }
};

/** Lane indices {B*8+0 .. B*8+7} of block @p blk. */
inline __m256i
laneIdx(unsigned blk)
{
    return _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(blk * kLanes)),
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
}

/**
 * Bits [c, c+width) of a column bitset, as a u64. The bitset carries
 * one padding word so the straddling read stays in bounds.
 */
inline std::uint64_t
windowBits(const std::uint64_t *bits, std::uint64_t c, unsigned width)
{
    const unsigned shift = static_cast<unsigned>(c & 63);
    std::uint64_t v = bits[c >> 6] >> shift;
    if (shift != 0)
        v |= bits[(c >> 6) + 1] << (64 - shift);
    return v & lowMask(width);
}

/** All scratch of one band sweep, allocated once per row band call. */
class Avx2Sweeper
{
  public:
    Avx2Sweeper(const SweepCtx &ctx, ModeAccumulators &out,
                SweepTallies &tallies)
        : ctx_(ctx), out_(out), tallies_(tallies),
          cols_(ctx.array->cols()), maxMode_(ctx.maxMode),
          blocksMax_((ctx.maxMode + kLanes - 1) / kLanes),
          segBegin_(ctx.arena->begins()), segEnd_(ctx.arena->ends()),
          segMasks_(ctx.arena->masks())
    {
        const std::size_t words = (cols_ >> 6) + 2;
        rows_.resize(kRowBand);
        for (RowState &row : rows_) {
            row.cols.resize(cols_);
            row.lifeBits.resize(words);
        }
        colLive_.resize(words);
        colRead_.resize(words);
        anchorTouch_.resize(words);
        anchorSetup_.resize(cols_);
        activeAnchors_.reserve(cols_);
        anchorOut_.resize(std::size_t(cols_) * blocksMax_ * kLanes);
        anchorSince_.resize(anchorOut_.size());
        anchorSigLive_.assign(cols_, ~std::uint64_t(0));
        anchorSigRead_.assign(cols_, ~std::uint64_t(0));
        // Both tensors carry one vector block of lane padding: the
        // block-granular deposit stores sweep lanes up to the next
        // multiple of kLanes past maxMode (those lanes add zero).
        totalsAcc_.assign(
            std::size_t(3) * maxMode_ + blocksMax_ * kLanes, 0);
        numWindows_ =
            out.modes.empty() ? 0 : out.modes[0].numWindows();
        if (numWindows_) {
            winAcc_.assign(std::size_t(numWindows_) * 3 * maxMode_ +
                               blocksMax_ * kLanes,
                           0);
            bounds_.resize(std::size_t(numWindows_) + 1);
            for (unsigned w = 0; w <= numWindows_; ++w)
                bounds_[w] = out.modes[0].bound(w);
            buildWindowTable();
        }
        setDepositBase();
    }

    void
    sweepRows(std::uint64_t row_begin, std::uint64_t row_end)
    {
        for (std::uint64_t band = row_begin; band < row_end;
             band += kRowBand) {
            const std::uint64_t band_end =
                std::min(band + kRowBand, row_end);
            // Phase one: resolve the band's columns to arena words.
            for (std::uint64_t r = band; r < band_end; ++r)
                buildRow(r, rows_[r - band]);
            // Phase two: sweep each row's merged transition stream.
            for (std::uint64_t r = band; r < band_end; ++r)
                sweepRow(rows_[r - band]);
        }
        fold();
    }

  private:
    /**
     * Direct-mapped first-guess table for window lookup: bucket
     * t >> winShift_ maps to the window of the bucket's first cycle;
     * the true window is at most a short walk forward from there.
     */
    void
    buildWindowTable(void)
    {
        const Cycle horizon = ctx_.horizon;
        if (horizon == 0)
            return;
        const unsigned width = static_cast<unsigned>(
            64 - std::countl_zero(horizon));
        winShift_ =
            width > kWindowTableBits ? width - kWindowTableBits : 0;
        winTable_.resize(
            static_cast<std::size_t>((horizon - 1) >> winShift_) + 1);
        unsigned w = 0;
        for (std::size_t i = 0; i < winTable_.size(); ++i) {
            const Cycle t = static_cast<Cycle>(i) << winShift_;
            while (bounds_[w + 1] <= t)
                ++w;
            winTable_[i] = w;
        }
    }

    /** Resolve row @p r: columns, live bits, word groups. */
    void
    buildRow(std::uint64_t r, RowState &row)
    {
        const LifetimeArena &arena = *ctx_.arena;
        const unsigned ww = arena.wordWidth();
        const unsigned wpc = arena.wordsPerContainer();

        std::fill(row.lifeBits.begin(), row.lifeBits.end(), 0);

        // Column resolution with a one-entry handle-block cache:
        // consecutive columns usually stay in one container.
        std::uint64_t last_container = 0;
        const std::uint32_t *block = nullptr;
        bool have_block = false;
        row.numGroups = 0;
        for (std::uint64_t c = 0; c < cols_; ++c) {
            const PhysBit pb = ctx_.array->at(r, c);
            if (!have_block || pb.container != last_container) {
                block = arena.handleBlock(pb.container);
                last_container = pb.container;
                have_block = true;
            }
            ColBit &b = row.cols[c];
            b.domain = pb.domain;
            b.word = LifetimeArena::noWord;
            b.bitInWord = 0;
            if (block && ww != 0) {
                const unsigned wi = pb.bitInContainer / ww;
                b.bitInWord = pb.bitInContainer % ww;
                if (wi < wpc)
                    b.word = block[wi];
            }
            if (b.word == LifetimeArena::noWord)
                continue;
            row.lifeBits[c >> 6] |= std::uint64_t(1) << (c & 63);
            // Group the row's bits by arena word; check the open
            // group first, consecutive columns usually share it.
            std::size_t g = row.numGroups;
            if (row.numGroups &&
                row.groups[row.numGroups - 1].word == b.word) {
                g = row.numGroups - 1;
            } else {
                for (g = 0; g < row.numGroups; ++g) {
                    if (row.groups[g].word == b.word)
                        break;
                }
            }
            if (g == row.numGroups) {
                if (row.groups.size() <= g)
                    row.groups.emplace_back();
                row.groups[g].word = b.word;
                row.groups[g].mask = 0;
                ++row.numGroups;
            }
            row.groups[g].mask |= std::uint64_t(1) << b.bitInWord;
            row.groups[g].colOf[b.bitInWord] =
                static_cast<std::uint32_t>(c);
        }
    }

    /**
     * Census, per-row: count the swept anchors, resolve each live
     * anchor's memoized region setup, and list them for the final
     * flush. Anchors with no live member are never updated (events
     * only come from live words), so they need no setup.
     */
    void
    census(const RowState &row)
    {
        // The cache carries per-row setup indices, so it resets
        // here; entries allocated in earlier rows are reused.
        numSetups_ = 0;
        setupSlots_.fill(~std::uint32_t(0));
        activeAnchors_.clear();
        for (std::uint64_t c = 0; c < cols_; ++c) {
            const unsigned maxm = static_cast<unsigned>(
                std::min<std::uint64_t>(maxMode_, cols_ - c));
            if (windowBits(row.lifeBits.data(), c, maxm) == 0)
                continue;
            ++tallies_.anchors;
            tallies_.groups += maxm;
            anchorSetup_[c] = regionSetup(row, c, maxm);
            activeAnchors_.push_back(static_cast<std::uint32_t>(c));
        }
    }

    /** Sweep one resolved row in global transition-time order. */
    void
    sweepRow(const RowState &row)
    {
        census(row);
        if (activeAnchors_.empty())
            return;

        const LifetimeArena &arena = *ctx_.arena;
        cursors_.clear();
        heap_.clear();
        for (std::size_t g = 0; g < row.numGroups; ++g) {
            WordCursor cur;
            cur.wg = &row.groups[g];
            cur.s = arena.offset(cur.wg->word);
            cur.hi = cur.s + arena.count(cur.wg->word);
            const Cycle t = nextTransition(cur);
            if (t == no_event)
                continue;
            heap_.push_back(
                {t, static_cast<std::uint32_t>(cursors_.size())});
            cursors_.push_back(cur);
        }
        std::make_heap(heap_.begin(), heap_.end(), HeapLater{});

        // Drain in time order, batching every cursor that fires at
        // the same timestamp into one anchor-update round: a cache
        // line fill or eviction transitions many words of a row at
        // one cycle, and their anchor windows overlap heavily.
        // Crossing a window boundary splits every open run at the
        // boundary first, so deposits always land whole in the
        // current window (the same partition the accumulator's
        // add() would make).
        while (!heap_.empty()) {
            const Cycle t = heap_.front().t;
            while (numWindows_ && t >= bounds_[curWin_ + 1])
                checkpointWindow();
            do {
                std::pop_heap(heap_.begin(), heap_.end(),
                              HeapLater{});
                const HeapItem item = heap_.back();
                heap_.pop_back();
                WordCursor &cur = cursors_[item.cursor];
                applyTransition(cur);
                const Cycle nt = nextTransition(cur);
                if (nt != no_event) {
                    heap_.push_back({nt, item.cursor});
                    std::push_heap(heap_.begin(), heap_.end(),
                                   HeapLater{});
                }
            } while (!heap_.empty() && heap_.front().t == t);
            if (touchLo_ <= touchHi_)
                updateTouched(t);
        }

        // Lifetimes still open when the transitions ran dry extend
        // to the horizon (closes at the horizon are never
        // materialized); flush the open runs and reset the slots.
        const Cycle horizon = ctx_.horizon;
        for (const std::uint32_t a : activeAnchors_) {
            const unsigned maxm = static_cast<unsigned>(
                std::min<std::uint64_t>(maxMode_, cols_ - a));
            const unsigned blocks = (maxm + kLanes - 1) / kLanes;
            std::uint32_t *outp =
                anchorOut_.data() +
                std::size_t(a) * blocksMax_ * kLanes;
            const Cycle *sincep =
                anchorSince_.data() +
                std::size_t(a) * blocksMax_ * kLanes;
            for (unsigned blk = 0; blk < blocks; ++blk) {
                const __m256i cur = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(outp +
                                                      blk * kLanes));
                unsigned open =
                    ~static_cast<unsigned>(_mm256_movemask_ps(
                        _mm256_castsi256_ps(_mm256_cmpeq_epi32(
                            cur, _mm256_setzero_si256())))) &
                    0xffu;
                if (!open)
                    continue;
                while (open) {
                    const unsigned j = static_cast<unsigned>(
                        std::countr_zero(open));
                    open &= open - 1;
                    const unsigned lane = blk * kLanes + j;
                    closeRun(lane, outp[lane], sincep[lane],
                             horizon);
                }
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(outp + blk * kLanes),
                    _mm256_setzero_si256());
            }
        }
        std::fill(colLive_.begin(), colLive_.end(), 0);
        std::fill(colRead_.begin(), colRead_.end(), 0);
        std::fill(anchorSigLive_.begin(), anchorSigLive_.end(),
                  ~std::uint64_t(0));
        std::fill(anchorSigRead_.begin(), anchorSigRead_.end(),
                  ~std::uint64_t(0));
        curWin_ = 0;
        setDepositBase();
    }

    /** Point the block deposits at the current window's cells. */
    void
    setDepositBase(void)
    {
        for (unsigned cls = 0; cls < 3; ++cls) {
            depositBase_[cls] =
                numWindows_
                    ? winAcc_.data() +
                          (std::size_t(curWin_) * 3 + cls) * maxMode_
                    : totalsAcc_.data() + std::size_t(cls) * maxMode_;
        }
    }

    /**
     * Advance to the next accumulation window: split every open run
     * at the boundary — deposit [since, boundary) into the closing
     * window and restart the run at the boundary. Subsequent
     * deposits land whole in the new window.
     */
    void
    checkpointWindow(void)
    {
        const Cycle bound = bounds_[curWin_ + 1];
        const __m256i bv = _mm256_set1_epi64x(
            static_cast<long long>(bound));
        for (const std::uint32_t a : activeAnchors_) {
            const unsigned maxm = static_cast<unsigned>(
                std::min<std::uint64_t>(maxMode_, cols_ - a));
            const unsigned blocks = (maxm + kLanes - 1) / kLanes;
            std::uint32_t *outp =
                anchorOut_.data() +
                std::size_t(a) * blocksMax_ * kLanes;
            Cycle *sincep =
                anchorSince_.data() +
                std::size_t(a) * blocksMax_ * kLanes;
            for (unsigned blk = 0; blk < blocks; ++blk) {
                const __m256i codes = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(outp +
                                                      blk * kLanes));
                if (_mm256_testz_si256(codes, codes))
                    continue;
                const __m256i open = _mm256_xor_si256(
                    _mm256_cmpeq_epi32(codes,
                                       _mm256_setzero_si256()),
                    _mm256_set1_epi32(-1));
                depositRuns(codes, open, bv, sincep + blk * kLanes,
                            blk);
            }
        }
        ++curWin_;
        setDepositBase();
    }

    /**
     * Vector run deposit for one block: lanes selected by @p mask
     * close their run [since, end) into the current window's cell
     * of their @p codes class and restart at @p endV; other lanes'
     * since and cells are untouched (their masked delta is zero,
     * and the lane-padded tensors absorb the block-width store).
     */
    void
    depositRuns(__m256i codes, __m256i mask, __m256i endV,
                Cycle *sincep, unsigned blk)
    {
        const __m256i mLo =
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(mask));
        const __m256i mHi = _mm256_cvtepi32_epi64(
            _mm256_extracti128_si256(mask, 1));
        const __m256i sLo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(sincep));
        const __m256i sHi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(sincep + 4));
        const __m256i dtLo = _mm256_and_si256(
            _mm256_sub_epi64(endV, sLo), mLo);
        const __m256i dtHi = _mm256_and_si256(
            _mm256_sub_epi64(endV, sHi), mHi);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(sincep),
            _mm256_blendv_epi8(sLo, endV, mLo));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(sincep + 4),
            _mm256_blendv_epi8(sHi, endV, mHi));
        for (unsigned cls = 0; cls < 3; ++cls) {
            const __m256i m = _mm256_and_si256(
                _mm256_cmpeq_epi32(
                    codes, _mm256_set1_epi32(static_cast<int>(
                               3 - cls))),
                mask);
            if (_mm256_testz_si256(m, m))
                continue;
            const __m256i cLo =
                _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m));
            const __m256i cHi = _mm256_cvtepi32_epi64(
                _mm256_extracti128_si256(m, 1));
            Cycle *base = depositBase_[cls] + blk * kLanes;
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(base),
                _mm256_add_epi64(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(base)),
                    _mm256_and_si256(dtLo, cLo)));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(base + 4),
                _mm256_add_epi64(
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(base + 4)),
                    _mm256_and_si256(dtHi, cHi)));
        }
    }

    /**
     * Time of @p cur's next transition, no_event when exhausted.
     * Mirrors the scalar kernel's per-word projection: a close is
     * pending when the projected state is non-zero and the next
     * segment starts after the current one ends (or the segments ran
     * out before the horizon); closes at or past the horizon are
     * never materialized (see BitEvent).
     */
    Cycle
    nextTransition(const WordCursor &cur) const
    {
        const Cycle horizon = ctx_.horizon;
        const bool open_state = (cur.ace | cur.read) != 0;
        if (cur.s < cur.hi && segBegin_[cur.s] < horizon) {
            if (open_state && segBegin_[cur.s] > cur.stateEnd)
                return cur.stateEnd;
            return segBegin_[cur.s];
        }
        return open_state && cur.stateEnd < horizon ? cur.stateEnd
                                                    : no_event;
    }

    /**
     * Apply @p cur's transition: move the projected masks to their
     * next value, update the column live/read bitsets, and mark
     * every anchor whose window contains a changed column (column c
     * affects anchors [c - maxMode + 1, c]) in the touch bitmap.
     */
    void
    applyTransition(WordCursor &cur)
    {
        const Cycle horizon = ctx_.horizon;
        std::uint64_t nace = 0, nread = 0;
        const bool more =
            cur.s < cur.hi && segBegin_[cur.s] < horizon;
        const bool is_close =
            !more || ((cur.ace | cur.read) != 0 &&
                      segBegin_[cur.s] > cur.stateEnd);
        if (!is_close) {
            nace = segMasks_[cur.s].ace & cur.wg->mask;
            nread = segMasks_[cur.s].read & cur.wg->mask;
            cur.stateEnd = std::min(segEnd_[cur.s], horizon);
            ++cur.s;
        }
        std::uint64_t diff =
            (cur.ace ^ nace) | (cur.read ^ nread);
        while (diff) {
            const unsigned b =
                static_cast<unsigned>(std::countr_zero(diff));
            diff &= diff - 1;
            const std::uint64_t col = cur.wg->colOf[b];
            const std::uint64_t cbit = std::uint64_t(1) << (col & 63);
            if ((nace >> b) & 1)
                colLive_[col >> 6] |= cbit;
            else
                colLive_[col >> 6] &= ~cbit;
            if ((nread >> b) & 1)
                colRead_[col >> 6] |= cbit;
            else
                colRead_[col >> 6] &= ~cbit;
            const std::uint64_t lo =
                col + 1 >= maxMode_ ? col + 1 - maxMode_ : 0;
            const unsigned span = static_cast<unsigned>(col - lo) + 1;
            const std::uint64_t mask = lowMask(span);
            const unsigned shift = static_cast<unsigned>(lo & 63);
            anchorTouch_[lo >> 6] |= mask << shift;
            if (shift + span > 64)
                anchorTouch_[(lo >> 6) + 1] |= mask >> (64 - shift);
            touchLo_ = std::min(touchLo_, lo >> 6);
            touchHi_ = std::max(touchHi_, col >> 6);
        }
        cur.ace = nace;
        cur.read = nread;
    }

    /**
     * Update the anchors accumulated in the touch bitmap — each
     * exactly once, however many same-timestamp words marked it —
     * and reset the bitmap.
     */
    void
    updateTouched(Cycle t)
    {
        for (std::uint64_t w = touchLo_; w <= touchHi_; ++w) {
            std::uint64_t bits = anchorTouch_[w];
            anchorTouch_[w] = 0;
            while (bits) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                updateAnchor((w << 6) + b, t);
            }
        }
        touchLo_ = ~std::uint64_t(0);
        touchHi_ = 0;
    }

    /**
     * Recompute anchor @p a's 8-lanes-per-block outcomes from the
     * current column state and emit runs for every changed lane. A
     * lifetime gap (no live-or-read member) falls out naturally:
     * zero active regions combine to Unace in every lane, and the
     * change detection closes whatever was open.
     */
    void
    updateAnchor(std::uint64_t a, Cycle t)
    {
        const unsigned maxm = static_cast<unsigned>(
            std::min<std::uint64_t>(maxMode_, cols_ - a));
        const unsigned blocks = (maxm + kLanes - 1) / kLanes;
        std::uint32_t *outp =
            anchorOut_.data() + std::size_t(a) * blocksMax_ * kLanes;
        Cycle *sincep =
            anchorSince_.data() +
            std::size_t(a) * blocksMax_ * kLanes;

        const std::uint64_t member_live =
            windowBits(colLive_.data(), a, maxm);
        const std::uint64_t member_read =
            windowBits(colRead_.data(), a, maxm);
        const std::uint64_t live_or_read = member_live | member_read;

        // Pass one, scalar: thresholds and action-table pointers of
        // the active regions. The region is ACE-live (read-shadowed)
        // for lane i iff its first live (live-or-read) member has
        // index <= i. The outcome vector is a pure function of the
        // thresholds, so when the setup has few enough regions to
        // pack them into two words, an update whose thresholds match
        // the anchor's previous ones is dropped before the vector
        // pass — a changed column behind a region's first live
        // member moves no threshold.
        unsigned num_active = 0;
        int liveThresh[maxModeBits];
        int readThresh[maxModeBits];
        const std::uint32_t *actBase[maxModeBits];
        std::uint64_t sig_live = 0, sig_read = 0;
        bool sig_exact = true;
        if (live_or_read != 0) {
            const SetupEntry &setup = setups_[anchorSetup_[a]];
            sig_exact = setup.numRegions <= 8;
            for (unsigned reg = 0; reg < setup.numRegions; ++reg) {
                const std::uint64_t rm =
                    live_or_read & setup.regionMembers[reg];
                if (rm == 0)
                    continue;
                const std::uint64_t lm =
                    member_live & setup.regionMembers[reg];
                const int t_read =
                    static_cast<int>(std::countr_zero(rm)) - 1;
                const int t_live =
                    lm ? static_cast<int>(std::countr_zero(lm)) - 1
                       : 64;
                // Bytes 2..66 per region slot; 0 stays "inactive"
                // and the all-ones reset value stays unmatchable.
                sig_live |= std::uint64_t(unsigned(t_live + 2))
                            << (8 * (reg & 7));
                sig_read |= std::uint64_t(unsigned(t_read + 2))
                            << (8 * (reg & 7));
                readThresh[num_active] = t_read;
                liveThresh[num_active] = t_live;
                actBase[num_active] =
                    setup.actDet.data() +
                    std::size_t(reg) * 2 * blocksMax_ * kLanes;
                ++num_active;
            }
        }
        if (sig_exact) {
            if (anchorSigLive_[a] == sig_live &&
                anchorSigRead_[a] == sig_read) {
                return;
            }
            anchorSigLive_[a] = sig_live;
            anchorSigRead_[a] = sig_read;
        } else {
            // With >8 regions the bytes alias and the signature is
            // lossy; park the cache at the unmatchable reset value so
            // a later exact-signature update (e.g. the anchor going
            // fully dead, signature 0,0) cannot match a stale entry
            // and skip closing the runs this update opens.
            anchorSigLive_[a] = ~std::uint64_t(0);
            anchorSigRead_[a] = ~std::uint64_t(0);
        }

        const bool due_shields = ctx_.dueShields;
        const __m256i vFdue =
            _mm256_set1_epi32(int(Outcome::FalseDue));
        const __m256i vTdue =
            _mm256_set1_epi32(int(Outcome::TrueDue));
        const __m256i vSdc = _mm256_set1_epi32(int(Outcome::Sdc));

        // Pass two, block-outer: the class accumulators stay in
        // registers across the region loop.
        for (unsigned blk = 0; blk < blocks; ++blk) {
            __m256i sdcV = _mm256_setzero_si256();
            __m256i tdueV = _mm256_setzero_si256();
            __m256i fdueV = _mm256_setzero_si256();
            const __m256i idx = laneIdx(blk);
            for (unsigned r = 0; r < num_active; ++r) {
                const __m256i live_mask = _mm256_cmpgt_epi32(
                    idx, _mm256_set1_epi32(liveThresh[r]));
                const __m256i read_mask = _mm256_cmpgt_epi32(
                    idx, _mm256_set1_epi32(readThresh[r]));
                const std::uint32_t *base = actBase[r];
                const __m256i det = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(base +
                                                      blk * kLanes));
                const __m256i undet = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        base + (blocksMax_ + blk) * kLanes));
                sdcV = _mm256_or_si256(
                    sdcV, _mm256_and_si256(undet, live_mask));
                tdueV = _mm256_or_si256(
                    tdueV, _mm256_and_si256(det, live_mask));
                fdueV = _mm256_or_si256(
                    fdueV,
                    _mm256_and_si256(
                        det,
                        _mm256_andnot_si256(live_mask, read_mask)));
            }

            // Combine with the scalar precedence (SDC > trueDUE >
            // falseDUE > unACE; shielding converts SDC-and-trueDUE
            // lanes to trueDUE), then emit runs on changed lanes.
            __m256i out = _mm256_and_si256(fdueV, vFdue);
            out = _mm256_blendv_epi8(out, vTdue, tdueV);
            const __m256i sdc_code =
                due_shields ? _mm256_blendv_epi8(vSdc, vTdue, tdueV)
                            : vSdc;
            out = _mm256_blendv_epi8(out, sdc_code, sdcV);

            const __m256i was = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(outp +
                                                  blk * kLanes));
            const __m256i eq = _mm256_cmpeq_epi32(out, was);
            if (static_cast<unsigned>(_mm256_movemask_epi8(eq)) ==
                0xffffffffu) {
                continue;
            }
            const __m256i chg =
                _mm256_xor_si256(eq, _mm256_set1_epi32(-1));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(outp + blk * kLanes),
                out);
            // Changed lanes that were open deposit their run (a
            // was-Unace lane matches no class and deposits zero);
            // every changed lane restarts its run at t.
            depositRuns(was, chg,
                        _mm256_set1_epi64x(static_cast<long long>(t)),
                        sincep + blk * kLanes, blk);
        }
    }

    /**
     * Deposit the closed run [begin, end) of mode lane @p lane into
     * the local tensors: whole-run total plus the exact per-window
     * split (identical partition to OutcomeAccumulator::add, so the
     * fold is bit-identical). Zero-length runs — equal-timestamp
     * transition interleaving — contribute nothing and are skipped.
     */
    void
    closeRun(unsigned lane, std::uint32_t code, Cycle begin,
             Cycle end)
    {
        if (end <= begin)
            return;
        // Outcome codes are FalseDue=1, TrueDue=2, Sdc=3; the class
        // index order is Sdc=0, TrueDue=1, FalseDue=2. With windows
        // on, deposits go to the window tensor only — the fold
        // derives the totals as the exact sum over windows.
        const unsigned cls = 3u - code;
        if (!numWindows_) {
            totalsAcc_[std::size_t(cls) * maxMode_ + lane] +=
                end - begin;
            return;
        }
        unsigned w = winTable_[begin >> winShift_];
        while (bounds_[w + 1] <= begin)
            ++w;
        Cycle lo = begin;
        for (;;) {
            const Cycle hi = std::min(end, bounds_[w + 1]);
            winAcc_[(std::size_t(w) * 3 + cls) * maxMode_ + lane] +=
                hi - lo;
            if (hi == end)
                return;
            lo = hi;
            ++w;
        }
    }

    /**
     * Fold the local tensors into the shared accumulators. With
     * windows on, a run's whole-run deposit is the sum of its
     * window deposits (the checkpoints split runs exactly at the
     * window boundaries), so the totals are derived here.
     */
    void
    fold(void)
    {
        for (unsigned lane = 0; lane < maxMode_; ++lane) {
            for (unsigned cls = 0; cls < 3; ++cls) {
                Cycle total =
                    totalsAcc_[std::size_t(cls) * maxMode_ + lane];
                for (unsigned w = 0; w < numWindows_; ++w) {
                    const Cycle amount =
                        winAcc_[(std::size_t(w) * 3 + cls) *
                                    maxMode_ +
                                lane];
                    total += amount;
                    if (amount)
                        out_.modes[lane].addWindowRaw(w, cls,
                                                      amount);
                }
                if (total)
                    out_.modes[lane].addRaw(cls, total);
            }
        }
    }

    /**
     * One memoized per-anchor setup: the region decomposition of a
     * domain window and the per-region per-lane action masks (lanes
     * past maxm zeroed, so their outcome is pinned at Unace). The
     * setup is a pure function of the window's domain tuple, and
     * interleaved layouts repeat a handful of tuples across a row —
     * so the census validates a hashed cache entry with one memcmp
     * instead of rediscovering regions and refilling tables.
     */
    struct SetupEntry
    {
        unsigned maxm = 0;
        unsigned numRegions = 0;
        std::array<DomainId, maxModeBits> domains{}; ///< the key
        std::array<std::uint64_t, maxModeBits> regionMembers{};
        /**
         * Per-region lane action masks, detected and undetected
         * planes adjacent per region so one base pointer serves
         * both: [reg][plane(det=0, undet=1)][block][lane].
         */
        std::vector<std::uint32_t> actDet;
    };

    /**
     * Resolve the setup index for the anchor at @p c. Entries are
     * appended per row (slot collisions orphan the old entry but
     * never invalidate its index, so the per-row anchorSetup_
     * references stay stable); the cache resets between rows.
     */
    std::uint32_t
    regionSetup(const RowState &row, std::uint64_t c, unsigned maxm)
    {
        for (unsigned i = 0; i < maxm; ++i)
            window_[i] = row.cols[c + i].domain;
        const std::size_t key_bytes = maxm * sizeof(DomainId);
        std::uint64_t h = 1469598103934665603ull ^ maxm;
        for (unsigned i = 0; i < maxm; ++i)
            h = (h ^ window_[i]) * 1099511628211ull;
        const unsigned slot =
            static_cast<unsigned>(h) & (kSetupSlots - 1);
        const std::uint32_t cached = setupSlots_[slot];
        if (cached != ~std::uint32_t(0)) {
            const SetupEntry &e = setups_[cached];
            if (e.maxm == maxm &&
                std::memcmp(e.domains.data(), window_.data(),
                            key_bytes) == 0) {
                return cached;
            }
        }
        const std::uint32_t idx =
            static_cast<std::uint32_t>(numSetups_++);
        if (setups_.size() <= idx)
            setups_.emplace_back();
        setupSlots_[slot] = idx;
        SetupEntry &e = setups_[idx];
        e.maxm = maxm;
        std::memcpy(e.domains.data(), window_.data(), key_bytes);
        e.numRegions = 0;
        for (unsigned i = 0; i < maxm; ++i) {
            unsigned reg = 0;
            for (; reg < e.numRegions; ++reg) {
                if (regionDomains_[reg] == window_[i])
                    break;
            }
            if (reg == e.numRegions) {
                regionDomains_[e.numRegions] = window_[i];
                e.regionMembers[e.numRegions] = 0;
                ++e.numRegions;
            }
            e.regionMembers[reg] |= std::uint64_t(1) << i;
        }
        const unsigned blocks = (maxm + kLanes - 1) / kLanes;
        e.actDet.assign(std::size_t(e.numRegions) * 2 * blocksMax_ *
                            kLanes,
                        0);
        for (unsigned reg = 0; reg < e.numRegions; ++reg) {
            std::uint32_t *det_plane =
                e.actDet.data() +
                std::size_t(reg) * 2 * blocksMax_ * kLanes;
            std::uint32_t *undet_plane =
                det_plane + std::size_t(blocksMax_) * kLanes;
            for (unsigned blk = 0; blk < blocks; ++blk) {
                for (unsigned j = 0; j < kLanes; ++j) {
                    const unsigned p = blk * kLanes + j + 1;
                    if (p > maxm)
                        continue;
                    const unsigned size = static_cast<unsigned>(
                        popCount(e.regionMembers[reg] & lowMask(p)));
                    const FaultAction action = ctx_.actionOf[size];
                    const std::size_t at = blk * kLanes + j;
                    det_plane[at] =
                        action == FaultAction::Detected ? ~0u : 0u;
                    undet_plane[at] =
                        action == FaultAction::Undetected ? ~0u : 0u;
                }
            }
        }
        return idx;
    }

    const SweepCtx &ctx_;
    ModeAccumulators &out_;
    SweepTallies &tallies_;
    const std::uint64_t cols_;
    const unsigned maxMode_;
    const unsigned blocksMax_;
    const Cycle *segBegin_;
    const Cycle *segEnd_;
    const SegMasks *segMasks_;

    std::vector<RowState> rows_;

    // Sweepline state: word cursors, the transition heap, and the
    // per-column live/read bitsets they maintain.
    std::vector<WordCursor> cursors_;
    std::vector<HeapItem> heap_;
    std::vector<std::uint64_t> colLive_;
    std::vector<std::uint64_t> colRead_;
    std::vector<std::uint64_t> anchorTouch_;
    /** Word range of the touch bitmap holding any set bit. */
    std::uint64_t touchLo_ = ~std::uint64_t(0);
    std::uint64_t touchHi_ = 0;

    // Per-anchor state for the current row: outcome codes, run
    // starts, setup indices, and the flush list.
    std::vector<std::uint32_t> anchorOut_;
    std::vector<Cycle> anchorSince_;
    std::vector<std::uint32_t> anchorSetup_;
    std::vector<std::uint32_t> activeAnchors_;
    /** Last packed region thresholds per anchor (update skipping). */
    std::vector<std::uint64_t> anchorSigLive_;
    std::vector<std::uint64_t> anchorSigRead_;

    // Setup cache (reset per row in census; see regionSetup).
    std::vector<SetupEntry> setups_;
    std::size_t numSetups_ = 0;
    std::array<std::uint32_t, kSetupSlots> setupSlots_;
    std::array<DomainId, maxModeBits> window_{};
    std::array<DomainId, maxModeBits> regionDomains_{};


    // Emission tensors, folded once at the end of the band sweep.
    unsigned numWindows_ = 0;
    unsigned winShift_ = 0;
    unsigned curWin_ = 0; ///< window the sweep time is inside
    std::array<Cycle *, 3> depositBase_{};
    std::vector<Cycle> totalsAcc_;
    std::vector<Cycle> winAcc_;
    std::vector<Cycle> bounds_;
    std::vector<std::uint32_t> winTable_;
};

} // namespace

bool
avx2KernelAvailable()
{
    return __builtin_cpu_supports("avx2");
}

void
sweepRowsAvx2(const SweepCtx &ctx, std::uint64_t row_begin,
              std::uint64_t row_end, ModeAccumulators &out,
              SweepTallies &tallies)
{
    Avx2Sweeper sweeper(ctx, out, tallies);
    sweeper.sweepRows(row_begin, row_end);
}

} // namespace detail
} // namespace mbavf

#else // !MBAVF_SIMD_AVX2

namespace mbavf
{
namespace detail
{

bool
avx2KernelAvailable()
{
    return false;
}

void
sweepRowsAvx2(const SweepCtx &, std::uint64_t, std::uint64_t,
              ModeAccumulators &, SweepTallies &)
{
    panic("AVX2 sweep kernel is not compiled into this build");
}

} // namespace detail
} // namespace mbavf

#endif // MBAVF_SIMD_AVX2
