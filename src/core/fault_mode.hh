/**
 * @file
 * Spatial multi-bit fault modes (paper Section IV-A).
 *
 * A fault mode is a specific multi-bit fault geometry: a set of
 * (row, col) offsets that flip together. A fault group is each
 * placement of the pattern on a physical array; groups whose pattern
 * would fall off the array edge do not exist.
 */

#ifndef MBAVF_CORE_FAULT_MODE_HH
#define MBAVF_CORE_FAULT_MODE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mbavf
{

/** One cell of a fault pattern, relative to the anchor position. */
struct PatternOffset
{
    std::int32_t dRow = 0;
    std::int32_t dCol = 0;

    bool operator==(const PatternOffset &other) const = default;
};

/** A spatial multi-bit fault geometry. */
class FaultMode
{
  public:
    FaultMode(std::string name, std::vector<PatternOffset> offsets);

    /** Contiguous m-by-1 fault along a wordline (the common mode). */
    static FaultMode mx1(unsigned m);

    /** Contiguous rows-by-cols rectangular fault. */
    static FaultMode rect(unsigned rows, unsigned cols);

    const std::string &name() const { return name_; }
    const std::vector<PatternOffset> &offsets() const { return offsets_; }

    /** Number of bits the mode flips. */
    unsigned size() const
    {
        return static_cast<unsigned>(offsets_.size());
    }

    std::int32_t maxDRow() const { return maxDRow_; }
    std::int32_t maxDCol() const { return maxDCol_; }

    /**
     * Number of fault groups of this mode in a rows x cols array
     * (anchor placements where the whole pattern fits).
     */
    std::uint64_t numGroups(std::uint64_t rows, std::uint64_t cols) const;

  private:
    std::string name_;
    std::vector<PatternOffset> offsets_;
    std::int32_t maxDRow_ = 0;
    std::int32_t maxDCol_ = 0;
};

} // namespace mbavf

#endif // MBAVF_CORE_FAULT_MODE_HH
