/**
 * @file
 * Binary serialization of LifetimeStores.
 *
 * ACE lifetimes are the expensive artifact of a run (simulation +
 * liveness + backward pass); MB-AVF queries over schemes, layouts,
 * and fault modes are cheap by comparison. Persisting the store lets
 * a design sweep re-analyze one simulation many times ("run once,
 * analyze many").
 */

#ifndef MBAVF_CORE_LIFETIME_IO_HH
#define MBAVF_CORE_LIFETIME_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "core/lifetime.hh"

namespace mbavf
{

/** Serialize @p store to a stream. */
void saveLifetimeStore(const LifetimeStore &store, std::ostream &os);

/** Deserialize a store from a stream; fatal on malformed input. */
LifetimeStore loadLifetimeStore(std::istream &is);

/**
 * Non-fatal deserialization for tools that must survive corrupt
 * input (mbavf_lint). Stream-format problems — bad magic, truncation,
 * header fields outside sane bounds — return nullopt and set
 * @p error. Structurally suspect *segments* (overlapping, backwards)
 * are loaded verbatim so the lifetime lint can diagnose them; run
 * lintLifetimeStore over the result before trusting it.
 */
std::optional<LifetimeStore> tryLoadLifetimeStore(std::istream &is,
                                                  std::string &error);

/** File convenience wrappers; fatal on I/O failure. */
void saveLifetimeStore(const LifetimeStore &store,
                       const std::string &path);
LifetimeStore loadLifetimeStore(const std::string &path);

} // namespace mbavf

#endif // MBAVF_CORE_LIFETIME_IO_HH
