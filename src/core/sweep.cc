#include "core/sweep.hh"

#include <algorithm>

#include "common/parallel.hh"
#include "core/lifetime_arena.hh"
#include "obs/phase.hh"

namespace mbavf
{

ModeSweep
sweepModes(const PhysicalArray &array, const LifetimeStore &store,
           const ProtectionScheme &scheme, const MbAvfOptions &opt,
           unsigned max_mode)
{
    obs::ObsPhase obs_phase("avf.sweep");

    if (!opt.referenceKernel) {
        // Default path: flatten the store once and emit every mode
        // in a single traversal (computeMbAvfModes), which row-band
        // parallelizes on the shared pool internally.
        LifetimeArena arena(store);
        ModeSweep sweep;
        sweep.results =
            computeMbAvfModes(array, arena, scheme, opt, max_mode);
        return sweep;
    }

    ModeSweep sweep;
    sweep.results.resize(max_mode);
    if (opt.numThreads == 1) {
        for (unsigned m = 1; m <= max_mode; ++m) {
            sweep.results[m - 1] = computeMbAvf(
                array, store, scheme, FaultMode::mx1(m), opt);
        }
        return sweep;
    }
    // Modes run concurrently on the shared pool; each mode task fans
    // out its own row-band tasks (nested submission is supported), so
    // the pool sees mode x band parallelism instead of an 8-step
    // serial sweep. Results land in fixed slots — no ordering effect.
    ensureParallelThreads(opt.numThreads);
    runTasks(max_mode, [&](std::size_t m) {
        sweep.results[m] = computeMbAvf(
            array, store, scheme,
            FaultMode::mx1(static_cast<unsigned>(m) + 1), opt);
    });
    return sweep;
}

ModeSweep
sweepModesArena(const PhysicalArray &array, const LifetimeArena &arena,
                const ProtectionScheme &scheme, const MbAvfOptions &opt,
                unsigned max_mode)
{
    obs::ObsPhase obs_phase("avf.sweep");
    ModeSweep sweep;
    sweep.results =
        computeMbAvfModes(array, arena, scheme, opt, max_mode);
    return sweep;
}

StructureSer
sweepSer(const ModeSweep &sweep, std::span<const double> fits)
{
    StructureSer ser{};
    std::size_t n = std::min(sweep.results.size(), fits.size());
    for (std::size_t m = 0; m < n; ++m) {
        const AvfFractions &avf = sweep.results[m].avf;
        ser.sdc += fits[m] * avf.sdc;
        ser.trueDue += fits[m] * avf.trueDue;
        ser.falseDue += fits[m] * avf.falseDue;
    }
    return ser;
}

StructureSer
computeStructureSer(const PhysicalArray &array,
                    const LifetimeStore &store,
                    const ProtectionScheme &scheme,
                    const MbAvfOptions &opt, double total_fit)
{
    ModeSweep sweep = sweepModes(array, store, scheme, opt);
    auto fits = caseStudyFaultRates(total_fit);
    return sweepSer(sweep, fits);
}

} // namespace mbavf
