/**
 * @file
 * The multi-bit AVF engine (paper Sections IV, V, VII).
 *
 * Given a physical array layout, the per-bit ACE lifetimes of the
 * structure, a protection scheme, and a fault mode, computeMbAvf()
 * enumerates every fault group of the mode, splits it into overlapped
 * regions by protection domain, classifies each region per cycle
 * (Eq. 5-6), combines regions into a group outcome (Eq. 7), and
 * integrates over groups and time (Eq. 2). Results are reported as
 * separate SDC / true-DUE / false-DUE AVF fractions, optionally
 * bucketed into time windows for AVF-over-time plots.
 */

#ifndef MBAVF_CORE_MBAVF_HH
#define MBAVF_CORE_MBAVF_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/fault_mode.hh"
#include "core/layout.hh"
#include "core/lifetime.hh"
#include "core/protection.hh"

namespace mbavf
{

/** AVF split by outcome class; each is a fraction of group-cycles. */
struct AvfFractions
{
    double sdc = 0.0;
    double trueDue = 0.0;
    double falseDue = 0.0;

    /** Total detected-uncorrected AVF (true + false DUE). */
    double due() const { return trueDue + falseDue; }

    /** Total AVF over all error classes. */
    double total() const { return sdc + trueDue + falseDue; }
};

/** Options controlling an MB-AVF computation. */
struct MbAvfOptions
{
    /** Measurement horizon N in cycles (must be nonzero). */
    Cycle horizon = 0;

    /**
     * When true, a group with both DUE-ACE and SDC-ACE regions counts
     * as DUE: the detection fires before the corrupted data reaches
     * program output. This models the paper's inter-thread VGPR
     * interleaving, where all regions of a group are read in the same
     * 16-thread operation (Section VIII). Default (false) is the
     * conservative cache rule: SDC takes precedence.
     */
    bool dueShieldsSdc = false;

    /** Number of equal time windows for AVF-over-time (0 = none). */
    unsigned numWindows = 0;

    /**
     * Worker threads for the group sweep. 1 = serial, inline.
     * Anything else runs row bands on the shared process-wide pool
     * (common/parallel.hh): 0 uses the pool as sized by
     * MBAVF_THREADS / the hardware, N > 1 first grows the pool to at
     * least N. Results are bit-identical at every setting — the band
     * partition is thread-count independent and partials merge in
     * band order.
     */
    unsigned numThreads = 1;

    /**
     * Force sweepModes() onto the original one-mode-at-a-time path
     * (computeMbAvf per mode) instead of the single-pass multi-mode
     * arena kernel. The two are bit-identical at any thread count;
     * the reference path exists for differential testing and for
     * bench/micro_sweep_kernel's before/after measurement.
     */
    bool referenceKernel = false;

    /**
     * Force the arena kernel's portable scalar implementation even
     * when the runtime-dispatched AVX2 kernel is available. The two
     * are bit-identical on every input; the flag exists for
     * differential testing and for benchmarking the SIMD speedup
     * against the scalar arena baseline.
     */
    bool scalarKernel = false;
};

/** Result of one MB-AVF computation. */
struct MbAvfResult
{
    /** Whole-run AVF fractions (Eq. 2, per outcome class). */
    AvfFractions avf;

    /** Per-window AVF fractions when numWindows > 0. */
    std::vector<AvfFractions> windows;

    /**
     * Raw integer group-cycle totals per outcome class
     * {SDC, TrueDue, FalseDue} before division by
     * numGroups * horizon. Exact: the attribution engine
     * (analyze/attribution.hh) conserves these sums bit-for-bit,
     * which a comparison of rounded fractions could not witness.
     */
    std::array<Cycle, 3> cycles = {0, 0, 0};

    /** Number of fault groups G of the mode in the array. */
    std::uint64_t numGroups = 0;

    /** Measurement horizon N. */
    Cycle horizon = 0;
};

/**
 * Compute the MB-AVF of @p mode on @p array protected by @p scheme,
 * using the ACE lifetimes in @p store.
 */
MbAvfResult computeMbAvf(const PhysicalArray &array,
                         const LifetimeStore &store,
                         const ProtectionScheme &scheme,
                         const FaultMode &mode,
                         const MbAvfOptions &opt);

class LifetimeArena;

/**
 * Single-pass multi-mode sweep kernel: compute the MB-AVF of every
 * contiguous wordline mode 1x1 .. (max_mode)x1 in one traversal of
 * the array.
 *
 * For each anchor position the kernel merges the member words'
 * segment boundaries once (reading the flat arena, not per-word
 * vectors) and, per elementary time slice, grows the fault group one
 * member at a time: after member m joins, the per-region flip
 * counts, ACE/read state, and region outcomes are updated
 * incrementally (only the region the new member lands in can
 * change), and the group outcome for mode (m)x1 is emitted into that
 * mode's accumulator. An M-mode sweep therefore costs O(M) region
 * updates per slice instead of the per-mode path's O(M^2), and one
 * boundary merge per anchor instead of M.
 *
 * results[m-1] is bit-identical to
 * computeMbAvf(array, store, scheme, mx1(m), opt) — AVF fractions,
 * window series, and group counts — at any thread count.
 */
std::vector<MbAvfResult> computeMbAvfModes(const PhysicalArray &array,
                                           const LifetimeArena &arena,
                                           const ProtectionScheme &scheme,
                                           const MbAvfOptions &opt,
                                           unsigned max_mode);

/**
 * Convenience: single-bit AVF of the structure (a 1x1 "multi-bit"
 * mode; Eq. 1 falls out of Eq. 2 at M = 1).
 */
MbAvfResult computeSbAvf(const PhysicalArray &array,
                         const LifetimeStore &store,
                         const ProtectionScheme &scheme,
                         const MbAvfOptions &opt);

} // namespace mbavf

#endif // MBAVF_CORE_MBAVF_HH
