/**
 * @file
 * Per-bit ACE lifetime representation.
 *
 * ACE analysis produces, for every bit of a hardware structure, a
 * timeline of labeled segments. Bits are organized into *containers*
 * (the unit whose contents share one event stream: a cache line, a
 * 32-bit vector register) subdivided into *words* of at most 64 bits
 * (a byte for caches, the full register for the VGPR). All bits of a
 * word share segment boundaries; per-bit classes are encoded as masks.
 */

#ifndef MBAVF_CORE_LIFETIME_HH
#define MBAVF_CORE_LIFETIME_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/ace_class.hh"

namespace mbavf
{

/**
 * One homogeneous stretch of a word's lifetime.
 *
 * For a fault arising at any cycle in [begin, end):
 * - bits set in aceMask are AceLive,
 * - bits set in readMask but not aceMask are ReadDead,
 * - all other bits are Unace.
 */
struct LifeSegment
{
    Cycle begin = 0;
    Cycle end = 0;
    std::uint64_t aceMask = 0;
    std::uint64_t readMask = 0;
    /**
     * Static instruction whose write most recently (re)defined the
     * word at this segment's start; noInstrTag when the data predates
     * tracking (pre-first-write garbage, fills from untracked
     * producers). The attribution passes charge this segment's MB-AVF
     * contribution to it.
     */
    InstrTag tag = noInstrTag;
};

/**
 * The full lifetime of one word (<= 64 bits): sorted, disjoint
 * segments. Cycles not covered by any segment are Unace for all bits.
 */
class WordLifetime
{
  public:
    /**
     * Append a segment; must start at or after the current end.
     * Backwards (end < begin) or overlapping segments are rejected
     * with panic() in every build type; empty segments are dropped.
     */
    void append(const LifeSegment &seg);

    /**
     * Append without precondition checks. Only for deserialization
     * and lint paths that must be able to materialize malformed
     * data for inspection; everything else uses append().
     */
    void appendUnchecked(const LifeSegment &seg)
    {
        segs_.push_back(seg);
    }

    const std::vector<LifeSegment> &segments() const { return segs_; }

    bool empty() const { return segs_.empty(); }

    /** Class of bit @p bit at cycle @p t (Unace outside segments). */
    AceClass classAt(unsigned bit, Cycle t) const;

    /** Total AceLive cycles of bit @p bit within [0, horizon). */
    Cycle aceCycles(unsigned bit, Cycle horizon) const;

    /** Total ReadDead cycles of bit @p bit within [0, horizon). */
    Cycle readDeadCycles(unsigned bit, Cycle horizon) const;

  private:
    std::vector<LifeSegment> segs_;
};

/** Lifetimes of all words of one container. */
struct ContainerLifetime
{
    std::vector<WordLifetime> words;
};

/**
 * Store of ACE lifetimes for a whole hardware structure, keyed by
 * container id. Containers never touched by the workload are simply
 * absent (all their bits are Unace for the full horizon).
 */
class LifetimeStore
{
  public:
    /**
     * @param word_width bits per word (8 for caches, 32 for VGPRs)
     * @param words_per_container words in each container
     */
    LifetimeStore(unsigned word_width, unsigned words_per_container);

    unsigned wordWidth() const { return wordWidth_; }
    unsigned wordsPerContainer() const { return wordsPerContainer_; }

    /** Bits in one container. */
    unsigned
    containerBits() const
    {
        return wordWidth_ * wordsPerContainer_;
    }

    /** Get or create the lifetime record of @p container. */
    ContainerLifetime &container(std::uint64_t container);

    /**
     * Lifetime of a word, or nullptr when the container or word was
     * never touched.
     */
    const WordLifetime *find(std::uint64_t container,
                             unsigned word) const;

    /**
     * Lifetime of a bit addressed within its container; @p bit_in_word
     * receives the bit index within the returned word.
     */
    const WordLifetime *findBit(std::uint64_t container,
                                unsigned bit_in_container,
                                unsigned &bit_in_word) const;

    std::size_t numContainers() const { return containers_.size(); }

    const std::unordered_map<std::uint64_t, ContainerLifetime> &
    containers() const
    {
        return containers_;
    }

  private:
    unsigned wordWidth_;
    unsigned wordsPerContainer_;
    std::unordered_map<std::uint64_t, ContainerLifetime> containers_;
};

} // namespace mbavf

#endif // MBAVF_CORE_LIFETIME_HH
