/**
 * @file
 * Physical SRAM array layouts and bit-interleaving styles.
 *
 * A layout maps a physical bit position (row = wordline, col = column)
 * to (a) the *container* + bit offset whose ACE lifetime describes the
 * cell, and (b) the *protection domain* the cell's data belongs to.
 * Spatial multi-bit fault modes are geometric patterns over physical
 * positions, so the layout is what determines which logical data a
 * given particle strike corrupts — the essence of interleaving.
 */

#ifndef MBAVF_CORE_LAYOUT_HH
#define MBAVF_CORE_LAYOUT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace mbavf
{

/** Resolution of one physical bit position. */
struct PhysBit
{
    /** Lifetime container (cache line id, physical register id). */
    std::uint64_t container = 0;
    /** Bit offset within the container. */
    std::uint32_t bitInContainer = 0;
    /** Protection word the bit's data belongs to. */
    DomainId domain = invalidDomain;
};

/**
 * Abstract physical bit array: a rows x cols grid of SRAM cells.
 * Fault groups are placements of a fault mode's pattern on this grid.
 */
class PhysicalArray
{
  public:
    virtual ~PhysicalArray() = default;

    virtual std::uint64_t rows() const = 0;
    virtual std::uint64_t cols() const = 0;
    virtual PhysBit at(std::uint64_t row, std::uint64_t col) const = 0;

    /** Total bits in the array. */
    std::uint64_t totalBits() const { return rows() * cols(); }
};

/** Interleaving style of a cache data array (paper Section VI-B). */
enum class CacheInterleave
{
    /**
     * Logical: each line is split into I check words; physically
     * adjacent bits belong to different check words of the *same*
     * line.
     */
    Logical,
    /**
     * Way-physical: physically adjacent bits belong to lines in
     * different ways of the same set.
     */
    WayPhysical,
    /**
     * Index-physical: physically adjacent bits belong to lines at
     * adjacent set indices (same way).
     */
    IndexPhysical,
};

/** Interleaving style of a vector register file (Section VIII). */
enum class RegInterleave
{
    /** Adjacent bits come from different registers of one thread. */
    IntraThread,
    /** Adjacent bits come from the same register of different threads. */
    InterThread,
};

/** Geometry of a cache data array. */
struct CacheGeometry
{
    unsigned sets = 64;
    unsigned ways = 4;
    unsigned lineBytes = 64;

    unsigned lineBits() const { return lineBytes * 8; }
    unsigned numLines() const { return sets * ways; }

    /** Container id of a line; containers are set-major. */
    std::uint64_t
    lineId(unsigned set, unsigned way) const
    {
        return std::uint64_t(set) * ways + way;
    }
};

/** Geometry of a vector register file. */
struct RegFileGeometry
{
    unsigned numRegs = 32;   ///< architectural registers per lane
    unsigned numLanes = 64;  ///< lanes (threads) per wavefront slot
    unsigned numSlots = 4;   ///< concurrent wavefront slots
    unsigned regBits = 32;

    std::uint64_t
    numContainers() const
    {
        return std::uint64_t(numSlots) * numRegs * numLanes;
    }

    /** Container id of one 32-bit register instance. */
    std::uint64_t
    regId(unsigned slot, unsigned reg, unsigned lane) const
    {
        return (std::uint64_t(slot) * numRegs + reg) * numLanes + lane;
    }
};

/**
 * Build the physical array of a cache data array under the given
 * interleaving style and factor. The protection domain is the cache
 * line (one parity/ECC word per line, matching the paper's overlap
 * arithmetic); under Logical interleaving each line carries
 * @p interleave check words, so domains are line sub-words.
 *
 * @param geom        cache geometry
 * @param style       interleaving style
 * @param interleave  interleave factor I (1 = none; way/index styles
 *                    require I to divide ways/sets respectively)
 */
std::unique_ptr<PhysicalArray>
makeCacheArray(const CacheGeometry &geom, CacheInterleave style,
               unsigned interleave);

/**
 * Build the physical array of a vector register file. Each 32-bit
 * register is its own protection domain (per the paper's case study).
 *
 * @param geom        register file geometry
 * @param style       intra- vs inter-thread interleaving
 * @param interleave  interleave factor I (1 = none)
 */
std::unique_ptr<PhysicalArray>
makeRegFileArray(const RegFileGeometry &geom, RegInterleave style,
                 unsigned interleave);

/** Parse "logical" | "way" | "index". */
CacheInterleave parseCacheInterleave(const std::string &name);

/** Short display name of a cache interleaving style. */
std::string cacheInterleaveName(CacheInterleave style);

} // namespace mbavf

#endif // MBAVF_CORE_LAYOUT_HH
