/**
 * @file
 * Convenience sweeps: evaluate a structure across the tabulated Mx1
 * fault modes and fold the results into soft error rates — the
 * common shape of every design-space query (paper Sections IV-E,
 * VIII).
 */

#ifndef MBAVF_CORE_SWEEP_HH
#define MBAVF_CORE_SWEEP_HH

#include <array>
#include <span>
#include <vector>

#include "core/fault_rates.hh"
#include "core/mbavf.hh"
#include "core/ser.hh"

namespace mbavf
{

/** MB-AVF results for modes 1x1 .. (max_mode)x1. */
struct ModeSweep
{
    /** results[m-1] = MB-AVF of mode (m)x1. */
    std::vector<MbAvfResult> results;

    const AvfFractions &
    avf(unsigned mode_bits) const
    {
        return results.at(mode_bits - 1).avf;
    }
};

/**
 * Compute MB-AVFs for 1x1 through (max_mode)x1 faults.
 *
 * By default the sweep flattens @p store into a LifetimeArena and
 * runs the single-pass multi-mode kernel (computeMbAvfModes): one
 * traversal of the array emits every mode, instead of max_mode
 * independent computeMbAvf() walks. Set
 * MbAvfOptions::referenceKernel to force the original per-mode path;
 * both produce bit-identical results at any thread count.
 */
ModeSweep sweepModes(const PhysicalArray &array,
                     const LifetimeStore &store,
                     const ProtectionScheme &scheme,
                     const MbAvfOptions &opt,
                     unsigned max_mode = maxTabulatedMode);

/**
 * Sweep a pre-built arena — the entry point for arenas mapped from
 * disk (core/arena_io.hh), which have no backing store to flatten.
 * Always runs the single-pass multi-mode kernel; results are
 * bit-identical to sweepModes() on the store the arena was built
 * from, at any thread count.
 */
ModeSweep sweepModesArena(const PhysicalArray &array,
                          const LifetimeArena &arena,
                          const ProtectionScheme &scheme,
                          const MbAvfOptions &opt,
                          unsigned max_mode = maxTabulatedMode);

/**
 * Fold a mode sweep with per-mode FIT rates into a structure SER
 * (Eq. 3). @p fits[m-1] is the raw rate of mode (m)x1; modes beyond
 * the sweep are ignored.
 */
StructureSer sweepSer(const ModeSweep &sweep,
                      std::span<const double> fits);

/**
 * One-call SER: sweep modes and fold with the 22nm case-study rates
 * scaled to @p total_fit.
 */
StructureSer computeStructureSer(const PhysicalArray &array,
                                 const LifetimeStore &store,
                                 const ProtectionScheme &scheme,
                                 const MbAvfOptions &opt,
                                 double total_fit = 100.0);

} // namespace mbavf

#endif // MBAVF_CORE_SWEEP_HH
