#include "core/lifetime_arena.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mbavf
{

LifetimeArena::LifetimeArena(const LifetimeStore &store)
    : wordWidth_(store.wordWidth()),
      wordsPerContainer_(store.wordsPerContainer())
{
    // Deterministic layout: containers in ascending id order, words
    // in index order within each container.
    std::vector<std::uint64_t> ids;
    ids.reserve(store.containers().size());
    for (const auto &[id, container] : store.containers())
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());

    std::size_t total_segments = 0;
    std::size_t total_words = 0;
    for (std::uint64_t id : ids) {
        const ContainerLifetime &container =
            store.containers().at(id);
        for (const WordLifetime &word : container.words) {
            if (word.empty())
                continue;
            ++total_words;
            total_segments += word.segments().size();
        }
    }
    if (total_words >= noWord)
        fatal("lifetime arena overflow: ", total_words, " words");

    auto owned = std::make_shared<Storage>();
    Storage &s = *owned;
    s.segBegin.reserve(total_segments);
    s.segEnd.reserve(total_segments);
    s.segMasks.reserve(total_segments);
    s.segTag.reserve(total_segments);
    s.wordOffset.reserve(total_words);
    s.wordCount.reserve(total_words);
    s.wordContainer.reserve(total_words);
    s.wordIndex.reserve(total_words);
    s.handles.reserve(ids.size() * wordsPerContainer_);
    containerBase_.reserve(ids.size());

    for (std::uint64_t id : ids) {
        const ContainerLifetime &container =
            store.containers().at(id);
        containerBase_.emplace(
            id, static_cast<std::uint32_t>(s.handles.size()));
        // Malformed (lint-path) stores may hold containers with a
        // word count differing from the store config; pad the handle
        // block so every container spans at least wordsPerContainer_
        // slots and findWord() stays in bounds.
        const std::size_t block = std::max<std::size_t>(
            container.words.size(), wordsPerContainer_);
        for (std::size_t w = 0; w < block; ++w) {
            if (w >= container.words.size()) {
                s.handles.push_back(noWord);
                continue;
            }
            const WordLifetime &word = container.words[w];
            if (word.empty()) {
                s.handles.push_back(noWord);
                continue;
            }
            s.handles.push_back(
                static_cast<std::uint32_t>(s.wordOffset.size()));
            s.wordOffset.push_back(
                static_cast<std::uint32_t>(s.segBegin.size()));
            s.wordCount.push_back(static_cast<std::uint32_t>(
                word.segments().size()));
            s.wordContainer.push_back(id);
            s.wordIndex.push_back(static_cast<std::uint32_t>(w));
            for (const LifeSegment &seg : word.segments()) {
                s.segBegin.push_back(seg.begin);
                s.segEnd.push_back(seg.end);
                s.segMasks.push_back({seg.aceMask, seg.readMask});
                s.segTag.push_back(seg.tag);
            }
        }
    }

    numWords_ = static_cast<std::uint32_t>(s.wordOffset.size());
    numSegments_ = s.segBegin.size();
    numHandles_ = s.handles.size();
    segBegin_ = s.segBegin.data();
    segEnd_ = s.segEnd.data();
    segMasks_ = s.segMasks.data();
    segTag_ = s.segTag.data();
    wordOffset_ = s.wordOffset.data();
    wordCount_ = s.wordCount.data();
    wordContainer_ = s.wordContainer.data();
    wordIndex_ = s.wordIndex.data();
    handles_ = s.handles.data();
    backing_ = std::move(owned);
}

std::uint32_t
LifetimeArena::findWord(std::uint64_t container, unsigned word) const
{
    auto it = containerBase_.find(container);
    if (it == containerBase_.end())
        return noWord;
    // Containers materialize all their words on first touch, so the
    // handle block always spans wordsPerContainer_ slots; an index
    // beyond that has no slot and no lifetime — answer noWord, as
    // for an untouched word (lint paths probe arbitrary indices).
    if (word >= wordsPerContainer_)
        return noWord;
    return handles_[it->second + word];
}

} // namespace mbavf
