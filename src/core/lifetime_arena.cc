#include "core/lifetime_arena.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mbavf
{

LifetimeArena::LifetimeArena(const LifetimeStore &store)
    : wordWidth_(store.wordWidth()),
      wordsPerContainer_(store.wordsPerContainer())
{
    // Deterministic layout: containers in ascending id order, words
    // in index order within each container.
    std::vector<std::uint64_t> ids;
    ids.reserve(store.containers().size());
    for (const auto &[id, container] : store.containers())
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());

    std::size_t total_segments = 0;
    std::size_t total_words = 0;
    for (std::uint64_t id : ids) {
        const ContainerLifetime &container =
            store.containers().at(id);
        for (const WordLifetime &word : container.words) {
            if (word.empty())
                continue;
            ++total_words;
            total_segments += word.segments().size();
        }
    }
    if (total_words >= noWord)
        fatal("lifetime arena overflow: ", total_words, " words");

    segBegin_.reserve(total_segments);
    segEnd_.reserve(total_segments);
    segMasks_.reserve(total_segments);
    wordOffset_.reserve(total_words);
    wordCount_.reserve(total_words);
    wordContainer_.reserve(total_words);
    wordIndex_.reserve(total_words);
    handles_.reserve(ids.size() * wordsPerContainer_);
    containerBase_.reserve(ids.size());

    for (std::uint64_t id : ids) {
        const ContainerLifetime &container =
            store.containers().at(id);
        containerBase_.emplace(
            id, static_cast<std::uint32_t>(handles_.size()));
        // Malformed (lint-path) stores may hold containers with a
        // word count differing from the store config; pad the handle
        // block so every container spans at least wordsPerContainer_
        // slots and findWord() stays in bounds.
        const std::size_t block = std::max<std::size_t>(
            container.words.size(), wordsPerContainer_);
        for (std::size_t w = 0; w < block; ++w) {
            if (w >= container.words.size()) {
                handles_.push_back(noWord);
                continue;
            }
            const WordLifetime &word = container.words[w];
            if (word.empty()) {
                handles_.push_back(noWord);
                continue;
            }
            handles_.push_back(
                static_cast<std::uint32_t>(wordOffset_.size()));
            wordOffset_.push_back(
                static_cast<std::uint32_t>(segBegin_.size()));
            wordCount_.push_back(static_cast<std::uint32_t>(
                word.segments().size()));
            wordContainer_.push_back(id);
            wordIndex_.push_back(static_cast<unsigned>(w));
            for (const LifeSegment &seg : word.segments()) {
                segBegin_.push_back(seg.begin);
                segEnd_.push_back(seg.end);
                segMasks_.push_back({seg.aceMask, seg.readMask});
            }
        }
    }
}

std::uint32_t
LifetimeArena::findWord(std::uint64_t container, unsigned word) const
{
    auto it = containerBase_.find(container);
    if (it == containerBase_.end())
        return noWord;
    // Containers materialize all their words on first touch, so the
    // handle block always spans wordsPerContainer_ slots; an index
    // beyond that is a caller bug, exactly as in LifetimeStore.
    if (word >= wordsPerContainer_)
        panic("LifetimeArena word index ", word, " out of range");
    return handles_[it->second + word];
}

} // namespace mbavf
