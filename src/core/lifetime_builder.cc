#include "core/lifetime_builder.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/check.hh"
#include "common/logging.hh"

namespace mbavf
{

WordLifetime
buildWordLifetime(const WordEventLog &log, Cycle end_time, unsigned width,
                  const LivenessResolver &live)
{
    WordLifetime out;
    const auto &events = log.events;
    if (events.empty())
        return out;

    const std::uint64_t all = lowMask(width);

    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i > 0 && events[i].time < events[i - 1].time)
            panic("WordEventLog out of time order");
        MBAVF_CHECK((events[i].mask & ~all) == 0, "event #", i,
                    " mask wider than the ", width, "-bit word");
    }

    // Forward tag prepass: tag_at[i] is the static instruction whose
    // write most recently defined the word among events[0..i]. The
    // segment emitted just after event i fires carries exactly that
    // producer; before the first write the cell holds untracked data
    // (noInstrTag).
    std::vector<InstrTag> tag_at(events.size());
    {
        InstrTag tag = noInstrTag;
        for (std::size_t i = 0; i < events.size(); ++i) {
            if (events[i].kind == WordEvent::Kind::Write)
                tag = events[i].tag;
            tag_at[i] = tag;
        }
    }

    // Backward pass. State masks describe the future as seen from just
    // before the segment being emitted: liveAhead(b) = a live
    // consumption of b happens before b is overwritten; readAhead(b) =
    // some read of the word happens before b is overwritten.
    std::uint64_t liveAhead = 0;
    std::uint64_t readAhead = 0;

    // Collect segments back-to-front, then reverse.
    std::vector<LifeSegment> rev;
    Cycle seg_end = std::max(end_time, events.back().time);

    for (std::size_t i = events.size(); i-- > 0;) {
        const WordEvent &e = events[i];
        if (e.time < seg_end) {
            rev.push_back({e.time, seg_end, liveAhead & all,
                           (liveAhead | readAhead) & all, tag_at[i]});
            seg_end = e.time;
        }
        switch (e.kind) {
          case WordEvent::Kind::Write:
            liveAhead &= ~e.mask;
            readAhead &= ~e.mask;
            break;
          case WordEvent::Kind::Read: {
            readAhead |= all;
            std::uint64_t consumed = e.mask;
            if (e.def != noDef) {
                std::uint64_t rel = live(e.def);
                if (e.exact)
                    consumed &= rel >> e.relShift;
                else if (!rel)
                    consumed = 0;
            }
            liveAhead |= consumed;
            break;
          }
        }
    }

    // Before the first event the cell holds the previous generation
    // (or garbage); a fault there is erased by the first write, so the
    // residual masks correctly describe it.
    if (events.front().time > 0) {
        rev.push_back({0, events.front().time, liveAhead & all,
                       (liveAhead | readAhead) & all});
    }

    for (std::size_t i = rev.size(); i-- > 0;)
        out.append(rev[i]);
    return out;
}

} // namespace mbavf
