#include "core/fault_rates.hh"

#include "common/logging.hh"

namespace mbavf
{

namespace
{

/*
 * Reconstruction of Table I (Ibe et al. [17]). The table in the
 * distributed paper text is garbled, so the per-width split is
 * rebuilt from the quantities the paper states in prose:
 *  - total multi-bit percent per node: 0.5% at 180nm rising to 3.9%
 *    at 22nm, with both rate and width increasing as features shrink;
 *  - at 22nm, 0.1% of all strikes affect more than 8 bits along a
 *    wordline (folded into the 8x1 row here so per-node percentages
 *    total 100).
 * Within the multi-bit total, the width distribution uses a decaying
 * split (66 / 14 / 10 / 3 / 2.5 / 1.2 / 0.8 / remainder percent of
 * the multi-bit faults for widths 2..8+), consistent with the
 * monotone width decay of the accelerated-testing data.
 */
NodeFaultRatios
makeNode(unsigned nm, double multi_bit_percent)
{
    static constexpr std::array<double, 7> widthShare = {
        0.66, 0.14, 0.10, 0.03, 0.025, 0.012, 0.008,
    };
    NodeFaultRatios node;
    node.designRuleNm = nm;
    double assigned = 0.0;
    for (unsigned m = 2; m <= maxTabulatedMode; ++m) {
        double share = widthShare[m - 2];
        if (m == maxTabulatedMode) {
            // Fold the tail (strikes wider than 8 bits) into 8x1.
            share = 1.0;
            for (double s : widthShare)
                share -= s;
            share += widthShare[m - 2];
        }
        node.percent[m - 1] = multi_bit_percent * share;
        assigned += node.percent[m - 1];
    }
    node.percent[0] = 100.0 - assigned;
    return node;
}

} // namespace

const std::vector<NodeFaultRatios> &
ibeFaultRatios()
{
    static const std::vector<NodeFaultRatios> table = {
        makeNode(180, 0.5), makeNode(130, 1.0), makeNode(90, 1.4),
        makeNode(65, 2.2),  makeNode(45, 2.9),  makeNode(32, 3.3),
        makeNode(22, 3.9),
    };
    return table;
}

const NodeFaultRatios &
ibeFaultRatiosFor(unsigned design_rule_nm)
{
    for (const NodeFaultRatios &node : ibeFaultRatios()) {
        if (node.designRuleNm == design_rule_nm)
            return node;
    }
    fatal("no Ibe fault ratios for ", design_rule_nm, "nm");
}

std::array<double, maxTabulatedMode>
caseStudyFaultRates(double total_fit)
{
    const NodeFaultRatios &node = ibeFaultRatiosFor(22);
    std::array<double, maxTabulatedMode> rates{};
    for (unsigned m = 0; m < maxTabulatedMode; ++m)
        rates[m] = total_fit * node.percent[m] / 100.0;
    return rates;
}

} // namespace mbavf
