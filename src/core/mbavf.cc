#include "core/mbavf.hh"

#include <algorithm>
#include <array>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/ace_class.hh"
#include "core/lifetime_arena.hh"
#include "core/mbavf_kernel.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"

namespace mbavf
{

// The classification helpers and accumulators are shared with the
// AVX2 kernel translation unit (core/mbavf_kernel.hh).
using detail::classifyRegion;
using detail::combineOutcomes;
using detail::maxModeBits;
using detail::ModeAccumulators;
using detail::OutcomeAccumulator;

namespace
{

/** Resolved view of one member bit of a fault group. */
struct MemberBit
{
    const WordLifetime *life = nullptr; ///< null = always Unace
    unsigned bitInWord = 0;
    DomainId domain = invalidDomain;
    std::size_t segCursor = 0; ///< sweep cursor into life->segments()
};

/** Per-group sweep state shared across anchors to avoid reallocation. */
struct SweepScratch
{
    std::vector<Cycle> boundaries;
};

/**
 * Sweep one fault group: merge the member bits' segment boundaries
 * and classify every elementary slice.
 *
 * Member bits of the same word share one WordLifetime; boundary
 * collection and cursor advancement are done once per unique word,
 * not once per bit (Mx1 groups over xI interleaving hit each word
 * M/I times).
 */
void
sweepGroup(std::vector<MemberBit> &members, const ProtectionScheme &scheme,
           Cycle horizon, bool due_shields_sdc, SweepScratch &scratch,
           OutcomeAccumulator &acc)
{
    // Group members into regions by domain. Members arrive sorted by
    // (dRow, dCol); domains of adjacent offsets alternate, so find
    // regions by scanning unique domains (mode sizes are tiny).
    std::array<DomainId, maxModeBits> domains;
    std::array<FaultAction, maxModeBits> actions;
    std::array<unsigned, maxModeBits> regionOf;
    unsigned num_regions = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        unsigned r = 0;
        for (; r < num_regions; ++r) {
            if (domains[r] == members[i].domain)
                break;
        }
        if (r == num_regions)
            domains[num_regions++] = members[i].domain;
        regionOf[i] = r;
    }
    std::array<unsigned, maxModeBits> region_size{};
    for (std::size_t i = 0; i < members.size(); ++i)
        ++region_size[regionOf[i]];
    for (unsigned r = 0; r < num_regions; ++r)
        actions[r] = scheme.action(region_size[r]);

    // Deduplicate member words: per unique WordLifetime keep one
    // cursor plus the member's (bit, region) pairs attached to it.
    std::array<const WordLifetime *, maxModeBits> words;
    std::array<std::size_t, maxModeBits> cursors{};
    std::array<unsigned, maxModeBits> wordOf;
    unsigned num_words = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (!members[i].life) {
            wordOf[i] = maxModeBits; // sentinel: always Unace
            continue;
        }
        unsigned w = 0;
        for (; w < num_words; ++w) {
            if (words[w] == members[i].life)
                break;
        }
        if (w == num_words)
            words[num_words++] = members[i].life;
        wordOf[i] = w;
    }
    if (num_words == 0)
        return; // every bit Unace for the whole horizon

    // Collect slice boundaries once per unique word.
    auto &bounds = scratch.boundaries;
    bounds.clear();
    for (unsigned w = 0; w < num_words; ++w) {
        for (const LifeSegment &s : words[w]->segments()) {
            if (s.begin >= horizon)
                break;
            bounds.push_back(s.begin);
            bounds.push_back(std::min(s.end, horizon));
        }
    }
    if (bounds.empty())
        return;
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    // Sweep slices. Between boundaries every bit's class is
    // constant. Scratch arrays are reset only over the entries in
    // use (value-initializing maxModeBits-sized arrays per slice is
    // measurably slow for small modes).
    std::array<const LifeSegment *, maxModeBits> active;
    std::array<bool, maxModeBits> region_live;
    std::array<bool, maxModeBits> region_read;
    Cycle prev = bounds.front();
    for (std::size_t bi = 1; bi < bounds.size(); ++bi) {
        Cycle next = bounds[bi];

        // Active segment per unique word (nullptr = Unace gap).
        for (unsigned w = 0; w < num_words; ++w) {
            const auto &segs = words[w]->segments();
            std::size_t &cur = cursors[w];
            while (cur < segs.size() && segs[cur].end <= prev)
                ++cur;
            active[w] = (cur < segs.size() && segs[cur].begin <= prev)
                ? &segs[cur]
                : nullptr;
        }

        for (unsigned r = 0; r < num_regions; ++r) {
            region_live[r] = false;
            region_read[r] = false;
        }
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (wordOf[i] == maxModeBits)
                continue;
            const LifeSegment *s = active[wordOf[i]];
            if (!s)
                continue;
            unsigned r = regionOf[i];
            if (bitAt(s->aceMask, members[i].bitInWord))
                region_live[r] = true;
            else if (bitAt(s->readMask, members[i].bitInWord))
                region_read[r] = true;
        }

        bool has_sdc = false, has_tdue = false, has_fdue = false;
        for (unsigned r = 0; r < num_regions; ++r) {
            Outcome o = classifyRegion(actions[r], region_live[r],
                                       region_live[r] || region_read[r]);
            has_sdc |= o == Outcome::Sdc;
            has_tdue |= o == Outcome::TrueDue;
            has_fdue |= o == Outcome::FalseDue;
        }
        acc.add(combineOutcomes(has_sdc, has_tdue, has_fdue,
                                due_shields_sdc),
                prev, next);
        prev = next;
    }
}

} // namespace

MbAvfResult
computeMbAvf(const PhysicalArray &array, const LifetimeStore &store,
             const ProtectionScheme &scheme, const FaultMode &mode,
             const MbAvfOptions &opt)
{
    if (opt.horizon == 0)
        fatal("MB-AVF horizon must be nonzero");
    if (mode.size() > maxModeBits)
        fatal("fault mode larger than ", maxModeBits, " bits");

    obs::ObsPhase obs_phase("avf.mode");
    static const obs::Counter groups_counter =
        obs::MetricsRegistry::global().counter("avf.groups_swept");

    const std::uint64_t rows = array.rows();
    const std::uint64_t cols = array.cols();
    const std::uint64_t span_r =
        static_cast<std::uint64_t>(mode.maxDRow()) + 1;
    const std::uint64_t span_c =
        static_cast<std::uint64_t>(mode.maxDCol()) + 1;

    MbAvfResult result;
    result.horizon = opt.horizon;
    result.numGroups = mode.numGroups(rows, cols);
    // A footprint taller or wider than the array admits no anchor
    // position at all; bail out before `rows - span_r + 1` below can
    // underflow. (numGroups is 0 in exactly this case, but guard on
    // the spans explicitly rather than relying on that coincidence.)
    if (span_r > rows || span_c > cols) {
        if (result.numGroups != 0)
            panic("fault mode exceeds array but numGroups != 0");
        return result;
    }
    if (result.numGroups == 0)
        return result;

    OutcomeAccumulator acc(opt.horizon, opt.numWindows);

    // Sweep anchor rows [row_begin, row_end) into one accumulator.
    // Physical bits are resolved row-band by row-band: the span_r
    // rows the pattern touches are cached so each array position is
    // resolved exactly once per band.
    auto sweep_rows = [&](std::uint64_t row_begin,
                          std::uint64_t row_end,
                          OutcomeAccumulator &out) {
        SweepScratch scratch;
        std::vector<MemberBit> row_cache;
        std::vector<MemberBit> members(mode.size());
        std::uint64_t groups_swept = 0;

        for (std::uint64_t r = row_begin; r < row_end; ++r) {
            row_cache.assign(std::size_t(span_r) * cols, MemberBit{});
            for (std::uint64_t dr = 0; dr < span_r; ++dr) {
                for (std::uint64_t c = 0; c < cols; ++c) {
                    PhysBit pb = array.at(r + dr, c);
                    MemberBit &m = row_cache[dr * cols + c];
                    m.domain = pb.domain;
                    m.life = store.findBit(pb.container,
                                           pb.bitInContainer,
                                           m.bitInWord);
                }
            }

            for (std::uint64_t c = 0; c + span_c <= cols; ++c) {
                bool any_life = false;
                for (unsigned i = 0; i < mode.size(); ++i) {
                    const PatternOffset &o = mode.offsets()[i];
                    members[i] =
                        row_cache[std::size_t(o.dRow) * cols + c +
                                  static_cast<std::uint64_t>(o.dCol)];
                    any_life |= members[i].life != nullptr;
                }
                if (!any_life)
                    continue;
                ++groups_swept;
                sweepGroup(members, scheme, opt.horizon,
                           opt.dueShieldsSdc, scratch, out);
            }
        }
        // One add per band, not per group: the counter stays off the
        // innermost loop even when metrics are enabled.
        groups_counter.add(groups_swept);
    };

    const std::uint64_t anchor_rows = rows - span_r + 1;

    if (opt.numThreads == 1) {
        sweep_rows(0, anchor_rows, acc);
    } else {
        // Shared-pool path. Band granularity depends only on the
        // range (not the thread count), and mapReduce() merges the
        // per-band accumulators in band order, so results are
        // bit-identical at any pool width — doubly so here, since
        // cycle counts are exact integers.
        ensureParallelThreads(opt.numThreads);
        const std::uint64_t grain =
            std::max<std::uint64_t>(1, anchor_rows / 64);
        acc = mapReduce(
            std::uint64_t(0), anchor_rows, grain,
            OutcomeAccumulator(opt.horizon, opt.numWindows),
            [&](std::uint64_t lo, std::uint64_t hi) {
                OutcomeAccumulator part(opt.horizon, opt.numWindows);
                sweep_rows(lo, hi, part);
                return part;
            },
            [](OutcomeAccumulator &into, OutcomeAccumulator &&part) {
                into.mergeFrom(part);
            });
    }

    const double denom =
        static_cast<double>(result.numGroups) *
        static_cast<double>(opt.horizon);
    result.cycles = acc.totals();
    result.avf.sdc = acc.totals()[0] / denom;
    result.avf.trueDue = acc.totals()[1] / denom;
    result.avf.falseDue = acc.totals()[2] / denom;

    if (opt.numWindows) {
        result.windows.resize(opt.numWindows);
        auto bound = [&](unsigned w) {
            return static_cast<Cycle>(
                static_cast<unsigned __int128>(opt.horizon) * w /
                opt.numWindows);
        };
        for (unsigned w = 0; w < opt.numWindows; ++w) {
            double wd =
                static_cast<double>(bound(w + 1) - bound(w)) *
                static_cast<double>(result.numGroups);
            result.windows[w].sdc = acc.windowTotal(w, 0) / wd;
            result.windows[w].trueDue = acc.windowTotal(w, 1) / wd;
            result.windows[w].falseDue = acc.windowTotal(w, 2) / wd;
        }
    }
    return result;
}

MbAvfResult
computeSbAvf(const PhysicalArray &array, const LifetimeStore &store,
             const ProtectionScheme &scheme, const MbAvfOptions &opt)
{
    return computeMbAvf(array, store, scheme, FaultMode::mx1(1), opt);
}

namespace
{

using detail::BitEvent;

/** The bits of one arena word touched by the current anchor row. */
struct WordGroup
{
    std::uint32_t word = LifetimeArena::noWord;
    std::uint64_t mask = 0;
    /** (bit position in word, anchor-row column) pairs. */
    std::vector<std::pair<unsigned, std::uint32_t>> bits;
};

struct ArenaBit
{
    std::uint32_t word = LifetimeArena::noWord;
    std::uint32_t bitInWord = 0;
    DomainId domain = invalidDomain;
};

} // namespace

std::vector<MbAvfResult>
computeMbAvfModes(const PhysicalArray &array, const LifetimeArena &arena,
                  const ProtectionScheme &scheme, const MbAvfOptions &opt,
                  unsigned max_mode)
{
    if (opt.horizon == 0)
        fatal("MB-AVF horizon must be nonzero");
    if (max_mode == 0 || max_mode > maxModeBits)
        fatal("multi-mode sweep needs 1..", maxModeBits, " modes");

    obs::ObsPhase obs_phase("avf.multi");
    static const obs::Counter groups_counter =
        obs::MetricsRegistry::global().counter("avf.groups_swept");
    static const obs::Counter anchors_counter =
        obs::MetricsRegistry::global().counter(
            "avf.multi.anchors_swept");

    const std::uint64_t rows = array.rows();
    const std::uint64_t cols = array.cols();
    const Cycle horizon = opt.horizon;
    const bool due_shields = opt.dueShieldsSdc;

    std::vector<MbAvfResult> results(max_mode);
    for (unsigned m = 1; m <= max_mode; ++m) {
        results[m - 1].horizon = horizon;
        results[m - 1].numGroups =
            m <= cols ? rows * (cols - m + 1) : 0;
    }
    if (rows == 0 || cols == 0)
        return results;

    // The protection action of a region depends only on its member
    // count; memoize the virtual calls once for the whole sweep.
    std::array<FaultAction, maxModeBits + 1> action_of{};
    for (unsigned k = 1; k <= max_mode; ++k)
        action_of[k] = scheme.action(k);

    // Kernel selection: the AVX2 lane-per-prefix kernel when it is
    // compiled in and the CPU supports it, else the scalar kernel
    // below. Both are bit-identical; scalarKernel pins the scalar
    // path for differential testing and benchmarking. A single-mode
    // sweep stays scalar — one useful lane cannot amortize the
    // vector bookkeeping.
    const bool use_simd = !opt.scalarKernel && max_mode > 1 &&
                          detail::avx2KernelAvailable();

    // Sweep anchor rows [row_begin, row_end) into per-mode
    // accumulators. Every anchor column grows the group from 1 to
    // min(max_mode, cols - c) members; modes wider than the
    // remaining columns have no group at this anchor (and none at
    // all when wider than the array).
    auto sweep_rows = [&](std::uint64_t row_begin,
                          std::uint64_t row_end,
                          ModeAccumulators &out) {
        if (use_simd) {
            detail::SweepCtx ctx;
            ctx.array = &array;
            ctx.arena = &arena;
            ctx.horizon = horizon;
            ctx.dueShields = due_shields;
            ctx.maxMode = max_mode;
            ctx.actionOf = action_of.data();
            detail::SweepTallies tallies;
            detail::sweepRowsAvx2(ctx, row_begin, row_end, out,
                                  tallies);
            groups_counter.add(tallies.groups);
            anchors_counter.add(tallies.anchors);
            return;
        }
        const Cycle *seg_begin = arena.begins();
        const Cycle *seg_end = arena.ends();
        const SegMasks *seg_masks = arena.masks();

        std::vector<ArenaBit> row(cols);
        // col_events[c] is the change timeline of column c's bit,
        // rebuilt once per row with a single scan of each unique
        // word's flat segments. Anchors then merge their members'
        // (short) per-bit lists instead of re-walking raw segment
        // lists whose boundaries mostly belong to other bits.
        std::vector<std::vector<BitEvent>> col_events(cols);
        std::vector<WordGroup> groups;
        std::array<std::uint32_t, 64> col_of{};

        // Per-anchor scratch: member sweep cursors and states, the
        // member -> region map, and the per-slice region state. All
        // bounded by maxModeBits.
        std::array<std::uint32_t, maxModeBits> cursor;
        std::array<std::uint8_t, maxModeBits> member_live;
        std::array<std::uint8_t, maxModeBits> member_read;
        std::array<unsigned, maxModeBits> memberRegion;
        std::array<FaultAction, maxModeBits> memberAction;
        std::array<DomainId, maxModeBits> domains;
        std::array<unsigned, maxModeBits> region_size;
        std::array<bool, maxModeBits> region_live;
        std::array<bool, maxModeBits> region_read;
        std::array<Outcome, maxModeBits> region_out;
        std::array<Outcome, maxModeBits> mode_out;
        std::array<Cycle, maxModeBits> mode_since;

        std::uint64_t groups_swept = 0;
        std::uint64_t anchors_swept = 0;

        for (std::uint64_t r = row_begin; r < row_end; ++r) {
            // Resolve the row once for all modes and anchors, and
            // group its bits by arena word.
            std::size_t num_groups = 0;
            for (std::uint64_t c = 0; c < cols; ++c) {
                PhysBit pb = array.at(r, c);
                ArenaBit &b = row[c];
                unsigned bit = 0;
                b.word = arena.findBit(pb.container,
                                       pb.bitInContainer, bit);
                b.bitInWord = bit;
                b.domain = pb.domain;
                col_events[c].clear();
                if (b.word == LifetimeArena::noWord)
                    continue;
                // Consecutive columns usually share a word; check
                // the open group before scanning the rest.
                std::size_t g = num_groups;
                if (num_groups &&
                    groups[num_groups - 1].word == b.word) {
                    g = num_groups - 1;
                } else {
                    for (g = 0; g < num_groups; ++g) {
                        if (groups[g].word == b.word)
                            break;
                    }
                }
                if (g == num_groups) {
                    if (groups.size() <= g)
                        groups.emplace_back();
                    groups[g].word = b.word;
                    groups[g].mask = 0;
                    groups[g].bits.clear();
                    ++num_groups;
                }
                groups[g].mask |= std::uint64_t(1) << b.bitInWord;
                groups[g].bits.emplace_back(
                    b.bitInWord, static_cast<std::uint32_t>(c));
            }

            // One pass over each word's segments: project onto the
            // row's bits and append a BitEvent to the owning column
            // wherever that bit's (live, read) state changes. Spans
            // between a bit's events classify identically, and a
            // zero state is the same as a lifetime gap.
            for (std::size_t g = 0; g < num_groups; ++g) {
                const WordGroup &wg = groups[g];
                for (const auto &[bit, col] : wg.bits)
                    col_of[bit] = col;
                std::uint64_t prev_ace = 0, prev_read = 0;
                Cycle state_end = 0;
                auto emit = [&](Cycle at, std::uint64_t ace,
                                std::uint64_t read) {
                    std::uint64_t diff =
                        (prev_ace ^ ace) | (prev_read ^ read);
                    while (diff) {
                        const unsigned b = static_cast<unsigned>(
                            std::countr_zero(diff));
                        diff &= diff - 1;
                        col_events[col_of[b]].push_back(
                            {at,
                             static_cast<std::uint8_t>((ace >> b) & 1),
                             static_cast<std::uint8_t>((read >> b) &
                                                       1)});
                    }
                    prev_ace = ace;
                    prev_read = read;
                };
                const std::uint32_t lo = arena.offset(wg.word);
                const std::uint32_t hi = lo + arena.count(wg.word);
                for (std::uint32_t s = lo; s < hi; ++s) {
                    if (seg_begin[s] >= horizon)
                        break;
                    if ((prev_ace | prev_read) &&
                        seg_begin[s] > state_end) {
                        emit(state_end, 0, 0);
                    }
                    emit(seg_begin[s], seg_masks[s].ace & wg.mask,
                         seg_masks[s].read & wg.mask);
                    state_end = std::min(seg_end[s], horizon);
                }
                // A close at exactly the horizon is never
                // materialized: it cannot open a slice, and at
                // horizon UINT64_MAX its timestamp would collide
                // with the no_event sentinel below, silently
                // dropping the final run. Open runs are flushed to
                // the horizon at the end of the anchor instead.
                if ((prev_ace | prev_read) && state_end < horizon)
                    emit(state_end, 0, 0);
            }

            for (std::uint64_t c = 0; c < cols; ++c) {
                const unsigned maxm = static_cast<unsigned>(
                    std::min<std::uint64_t>(max_mode, cols - c));

                // Member resolution: discover regions in member
                // order (same order the per-mode path uses) and
                // precompute the action each region takes right
                // after member i joins it.
                unsigned num_regions = 0;
                bool any_life = false;
                for (unsigned i = 0; i < maxm; ++i) {
                    const ArenaBit &b = row[c + i];
                    any_life |= b.word != LifetimeArena::noWord;
                    unsigned reg = 0;
                    for (; reg < num_regions; ++reg) {
                        if (domains[reg] == b.domain)
                            break;
                    }
                    if (reg == num_regions) {
                        domains[num_regions++] = b.domain;
                        region_size[reg] = 0;
                    }
                    memberRegion[i] = reg;
                    memberAction[i] = action_of[++region_size[reg]];
                }
                if (!any_life)
                    continue;
                ++anchors_swept;
                groups_swept += maxm;

                // The anchor's merged timeline is the union of its
                // members' change points; the member event lists are
                // sorted, so walk them with an on-the-fly min-merge
                // instead of materializing and sorting the union.
                //
                // Per-mode outcome runs: accumulator adds happen only
                // when a mode's outcome changes (or the anchor ends),
                // not per elementary slice. add() is exactly additive
                // over subdivisions, so coalescing adjacent
                // same-outcome slices is bit-identical.
                constexpr Cycle no_event = ~Cycle(0);
                Cycle prev = no_event;
                for (unsigned i = 0; i < maxm; ++i) {
                    mode_out[i] = Outcome::Unace;
                    cursor[i] = 0;
                    member_live[i] = 0;
                    member_read[i] = 0;
                    const std::vector<BitEvent> &ev =
                        col_events[c + i];
                    if (!ev.empty())
                        prev = std::min(prev, ev.front().at);
                }
                if (prev == no_event)
                    continue;

                while (true) {
                    // Apply the events firing at this slice's start
                    // (a member's state holds until its next event)
                    // and find the earliest pending change point.
                    Cycle next = no_event;
                    unsigned any_bits = 0;
                    for (unsigned i = 0; i < maxm; ++i) {
                        const std::vector<BitEvent> &ev =
                            col_events[c + i];
                        std::uint32_t &cur = cursor[i];
                        while (cur < ev.size() &&
                               ev[cur].at <= prev) {
                            member_live[i] = ev[cur].live;
                            member_read[i] = ev[cur].read;
                            ++cur;
                        }
                        if (cur < ev.size())
                            next = std::min(next, ev[cur].at);
                        any_bits |= member_live[i] | member_read[i];
                    }
                    if (!any_bits) {
                        // Gap in the merged timeline (or the end of
                        // all member activity): every bit Unace —
                        // close any open runs at the gap's start.
                        for (unsigned i = 0; i < maxm; ++i) {
                            if (mode_out[i] != Outcome::Unace) {
                                out.modes[i].add(mode_out[i],
                                                 mode_since[i], prev);
                                mode_out[i] = Outcome::Unace;
                            }
                        }
                        if (next == no_event)
                            break;
                        prev = next;
                        continue;
                    }

                    for (unsigned reg = 0; reg < num_regions;
                         ++reg) {
                        region_live[reg] = false;
                        region_read[reg] = false;
                        region_out[reg] = Outcome::Unace;
                    }

                    // Grow the group one member at a time. Member i
                    // only changes its own region, so the region
                    // outcome tallies update in O(1) and mode (i+1)
                    // is emitted immediately.
                    unsigned n_sdc = 0, n_tdue = 0, n_fdue = 0;
                    for (unsigned i = 0; i < maxm; ++i) {
                        const unsigned reg = memberRegion[i];
                        if (member_live[i])
                            region_live[reg] = true;
                        else if (member_read[i])
                            region_read[reg] = true;
                        const Outcome was = region_out[reg];
                        const Outcome now = classifyRegion(
                            memberAction[i], region_live[reg],
                            region_live[reg] || region_read[reg]);
                        if (was != now) {
                            n_sdc -= was == Outcome::Sdc;
                            n_tdue -= was == Outcome::TrueDue;
                            n_fdue -= was == Outcome::FalseDue;
                            n_sdc += now == Outcome::Sdc;
                            n_tdue += now == Outcome::TrueDue;
                            n_fdue += now == Outcome::FalseDue;
                            region_out[reg] = now;
                        }
                        const Outcome o =
                            combineOutcomes(n_sdc > 0, n_tdue > 0,
                                            n_fdue > 0, due_shields);
                        if (o != mode_out[i]) {
                            if (mode_out[i] != Outcome::Unace)
                                out.modes[i].add(mode_out[i],
                                                 mode_since[i], prev);
                            mode_out[i] = o;
                            mode_since[i] = prev;
                        }
                    }
                    // Lifetimes that stop before the horizon close
                    // through the gap branch above; ones still open
                    // when the events run dry extend to the horizon
                    // and are flushed below.
                    if (next == no_event)
                        break;
                    prev = next;
                }
                for (unsigned i = 0; i < maxm; ++i) {
                    if (mode_out[i] != Outcome::Unace)
                        out.modes[i].add(mode_out[i], mode_since[i],
                                         horizon);
                }
            }
        }
        groups_counter.add(groups_swept);
        anchors_counter.add(anchors_swept);
    };

    ModeAccumulators acc(horizon, opt.numWindows, max_mode);
    if (opt.numThreads == 1) {
        sweep_rows(0, rows, acc);
    } else {
        // Same row-band decomposition and ordered merge as the
        // per-mode path: chunking depends only on the range, partials
        // fold in band order, sums are exact integers.
        ensureParallelThreads(opt.numThreads);
        const std::uint64_t grain =
            std::max<std::uint64_t>(1, rows / 64);
        acc = mapReduce(
            std::uint64_t(0), rows, grain,
            ModeAccumulators(horizon, opt.numWindows, max_mode),
            [&](std::uint64_t lo, std::uint64_t hi) {
                ModeAccumulators part(horizon, opt.numWindows,
                                      max_mode);
                sweep_rows(lo, hi, part);
                return part;
            },
            [](ModeAccumulators &into, ModeAccumulators &&part) {
                into.mergeFrom(part);
            });
    }

    for (unsigned m = 1; m <= max_mode; ++m) {
        MbAvfResult &result = results[m - 1];
        // A mode wider than the array has no groups; leave the
        // zeroed result (and no window series), exactly like the
        // per-mode path's early return.
        if (result.numGroups == 0)
            continue;
        const OutcomeAccumulator &mode_acc = acc.modes[m - 1];
        const double denom =
            static_cast<double>(result.numGroups) *
            static_cast<double>(horizon);
        result.cycles = mode_acc.totals();
        result.avf.sdc = mode_acc.totals()[0] / denom;
        result.avf.trueDue = mode_acc.totals()[1] / denom;
        result.avf.falseDue = mode_acc.totals()[2] / denom;
        if (opt.numWindows) {
            result.windows.resize(opt.numWindows);
            for (unsigned w = 0; w < opt.numWindows; ++w) {
                const double wd =
                    static_cast<double>(mode_acc.bound(w + 1) -
                                        mode_acc.bound(w)) *
                    static_cast<double>(result.numGroups);
                result.windows[w].sdc =
                    mode_acc.windowTotal(w, 0) / wd;
                result.windows[w].trueDue =
                    mode_acc.windowTotal(w, 1) / wd;
                result.windows[w].falseDue =
                    mode_acc.windowTotal(w, 2) / wd;
            }
        }
    }
    return results;
}

} // namespace mbavf
