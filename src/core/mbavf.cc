#include "core/mbavf.hh"

#include <algorithm>
#include <array>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/ace_class.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"

namespace mbavf
{

namespace
{

/** Largest fault-mode size the sweep kernel supports. */
constexpr unsigned maxModeBits = 64;

/** Resolved view of one member bit of a fault group. */
struct MemberBit
{
    const WordLifetime *life = nullptr; ///< null = always Unace
    unsigned bitInWord = 0;
    DomainId domain = invalidDomain;
    std::size_t segCursor = 0; ///< sweep cursor into life->segments()
};

/** Per-group sweep state shared across anchors to avoid reallocation. */
struct SweepScratch
{
    std::vector<Cycle> boundaries;
};

/**
 * Classify one region (bits of the group sharing a protection domain)
 * given the ACE classes present among its member bits and the action
 * the scheme takes on this region's flip count.
 */
Outcome
classifyRegion(FaultAction action, bool any_ace_live, bool any_read)
{
    switch (action) {
      case FaultAction::Corrected:
        return Outcome::Unace;
      case FaultAction::Detected:
        if (any_ace_live)
            return Outcome::TrueDue;
        if (any_read)
            return Outcome::FalseDue;
        return Outcome::Unace;
      case FaultAction::Undetected:
        if (any_ace_live)
            return Outcome::Sdc;
        return Outcome::Unace;
    }
    panic("unreachable fault action");
}

/**
 * Combine region outcomes into the group outcome. Default precedence
 * is SDC > trueDUE > falseDUE > unACE; with due_shields_sdc a
 * detected region converts would-be SDC into a true DUE.
 */
Outcome
combineOutcomes(bool has_sdc, bool has_true_due, bool has_false_due,
                bool due_shields_sdc)
{
    if (has_sdc && has_true_due && due_shields_sdc)
        return Outcome::TrueDue;
    if (has_sdc)
        return Outcome::Sdc;
    if (has_true_due)
        return Outcome::TrueDue;
    if (has_false_due)
        return Outcome::FalseDue;
    return Outcome::Unace;
}

/** Accumulates outcome time, whole-run and per-window. */
class OutcomeAccumulator
{
  public:
    OutcomeAccumulator(Cycle horizon, unsigned num_windows)
        : horizon_(horizon), numWindows_(num_windows)
    {
        if (num_windows)
            windows_.resize(std::size_t(num_windows) * 3, 0);
    }

    /** Exact integer window boundary: window w covers
     *  [bound(w), bound(w+1)). */
    Cycle
    bound(unsigned w) const
    {
        return static_cast<Cycle>(
            static_cast<unsigned __int128>(horizon_) * w /
            numWindows_);
    }

    void
    add(Outcome outcome, Cycle begin, Cycle end)
    {
        if (outcome == Outcome::Unace || end <= begin)
            return;
        unsigned idx = classIndex(outcome);
        totals_[idx] += end - begin;
        if (!numWindows_)
            return;
        // Split the slice across windows; self-correct the initial
        // estimate against the exact integer boundaries.
        auto window_of = [this](Cycle t) {
            auto w = static_cast<unsigned>(
                static_cast<unsigned __int128>(t) * numWindows_ /
                horizon_);
            w = std::min(w, numWindows_ - 1);
            while (bound(w) > t)
                --w;
            while (w + 1 < numWindows_ && bound(w + 1) <= t)
                ++w;
            return w;
        };
        unsigned w0 = window_of(begin);
        unsigned w1 = window_of(end - 1);
        for (unsigned w = w0; w <= w1; ++w) {
            Cycle lo = std::max(begin, bound(w));
            Cycle hi = std::min(end, bound(w + 1));
            if (lo < hi)
                windows_[std::size_t(w) * 3 + idx] += hi - lo;
        }
    }

    const std::array<Cycle, 3> &totals() const { return totals_; }

    Cycle
    windowTotal(unsigned window, unsigned idx) const
    {
        return windows_[std::size_t(window) * 3 + idx];
    }

    /** Fold another accumulator's counts in (exact integer sums). */
    void
    mergeFrom(const OutcomeAccumulator &other)
    {
        for (unsigned i = 0; i < 3; ++i)
            totals_[i] += other.totals_[i];
        for (std::size_t i = 0; i < windows_.size(); ++i)
            windows_[i] += other.windows_[i];
    }

    static unsigned
    classIndex(Outcome outcome)
    {
        switch (outcome) {
          case Outcome::Sdc: return 0;
          case Outcome::TrueDue: return 1;
          case Outcome::FalseDue: return 2;
          default: panic("no class index for unACE");
        }
    }

  private:
    Cycle horizon_;
    unsigned numWindows_;
    std::array<Cycle, 3> totals_ = {0, 0, 0};
    std::vector<Cycle> windows_;
};

/**
 * Sweep one fault group: merge the member bits' segment boundaries
 * and classify every elementary slice.
 *
 * Member bits of the same word share one WordLifetime; boundary
 * collection and cursor advancement are done once per unique word,
 * not once per bit (Mx1 groups over xI interleaving hit each word
 * M/I times).
 */
void
sweepGroup(std::vector<MemberBit> &members, const ProtectionScheme &scheme,
           Cycle horizon, bool due_shields_sdc, SweepScratch &scratch,
           OutcomeAccumulator &acc)
{
    // Group members into regions by domain. Members arrive sorted by
    // (dRow, dCol); domains of adjacent offsets alternate, so find
    // regions by scanning unique domains (mode sizes are tiny).
    std::array<DomainId, maxModeBits> domains;
    std::array<FaultAction, maxModeBits> actions;
    std::array<unsigned, maxModeBits> regionOf;
    unsigned num_regions = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        unsigned r = 0;
        for (; r < num_regions; ++r) {
            if (domains[r] == members[i].domain)
                break;
        }
        if (r == num_regions)
            domains[num_regions++] = members[i].domain;
        regionOf[i] = r;
    }
    std::array<unsigned, maxModeBits> region_size{};
    for (std::size_t i = 0; i < members.size(); ++i)
        ++region_size[regionOf[i]];
    for (unsigned r = 0; r < num_regions; ++r)
        actions[r] = scheme.action(region_size[r]);

    // Deduplicate member words: per unique WordLifetime keep one
    // cursor plus the member's (bit, region) pairs attached to it.
    std::array<const WordLifetime *, maxModeBits> words;
    std::array<std::size_t, maxModeBits> cursors{};
    std::array<unsigned, maxModeBits> wordOf;
    unsigned num_words = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (!members[i].life) {
            wordOf[i] = maxModeBits; // sentinel: always Unace
            continue;
        }
        unsigned w = 0;
        for (; w < num_words; ++w) {
            if (words[w] == members[i].life)
                break;
        }
        if (w == num_words)
            words[num_words++] = members[i].life;
        wordOf[i] = w;
    }
    if (num_words == 0)
        return; // every bit Unace for the whole horizon

    // Collect slice boundaries once per unique word.
    auto &bounds = scratch.boundaries;
    bounds.clear();
    for (unsigned w = 0; w < num_words; ++w) {
        for (const LifeSegment &s : words[w]->segments()) {
            if (s.begin >= horizon)
                break;
            bounds.push_back(s.begin);
            bounds.push_back(std::min(s.end, horizon));
        }
    }
    if (bounds.empty())
        return;
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    // Sweep slices. Between boundaries every bit's class is
    // constant. Scratch arrays are reset only over the entries in
    // use (value-initializing maxModeBits-sized arrays per slice is
    // measurably slow for small modes).
    std::array<const LifeSegment *, maxModeBits> active;
    std::array<bool, maxModeBits> region_live;
    std::array<bool, maxModeBits> region_read;
    Cycle prev = bounds.front();
    for (std::size_t bi = 1; bi < bounds.size(); ++bi) {
        Cycle next = bounds[bi];

        // Active segment per unique word (nullptr = Unace gap).
        for (unsigned w = 0; w < num_words; ++w) {
            const auto &segs = words[w]->segments();
            std::size_t &cur = cursors[w];
            while (cur < segs.size() && segs[cur].end <= prev)
                ++cur;
            active[w] = (cur < segs.size() && segs[cur].begin <= prev)
                ? &segs[cur]
                : nullptr;
        }

        for (unsigned r = 0; r < num_regions; ++r) {
            region_live[r] = false;
            region_read[r] = false;
        }
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (wordOf[i] == maxModeBits)
                continue;
            const LifeSegment *s = active[wordOf[i]];
            if (!s)
                continue;
            unsigned r = regionOf[i];
            if (bitAt(s->aceMask, members[i].bitInWord))
                region_live[r] = true;
            else if (bitAt(s->readMask, members[i].bitInWord))
                region_read[r] = true;
        }

        bool has_sdc = false, has_tdue = false, has_fdue = false;
        for (unsigned r = 0; r < num_regions; ++r) {
            Outcome o = classifyRegion(actions[r], region_live[r],
                                       region_live[r] || region_read[r]);
            has_sdc |= o == Outcome::Sdc;
            has_tdue |= o == Outcome::TrueDue;
            has_fdue |= o == Outcome::FalseDue;
        }
        acc.add(combineOutcomes(has_sdc, has_tdue, has_fdue,
                                due_shields_sdc),
                prev, next);
        prev = next;
    }
}

} // namespace

MbAvfResult
computeMbAvf(const PhysicalArray &array, const LifetimeStore &store,
             const ProtectionScheme &scheme, const FaultMode &mode,
             const MbAvfOptions &opt)
{
    if (opt.horizon == 0)
        fatal("MB-AVF horizon must be nonzero");
    if (mode.size() > maxModeBits)
        fatal("fault mode larger than ", maxModeBits, " bits");

    obs::ObsPhase obs_phase("avf.mode");
    static const obs::Counter groups_counter =
        obs::MetricsRegistry::global().counter("avf.groups_swept");

    const std::uint64_t rows = array.rows();
    const std::uint64_t cols = array.cols();
    const std::uint64_t span_r =
        static_cast<std::uint64_t>(mode.maxDRow()) + 1;
    const std::uint64_t span_c =
        static_cast<std::uint64_t>(mode.maxDCol()) + 1;

    MbAvfResult result;
    result.horizon = opt.horizon;
    result.numGroups = mode.numGroups(rows, cols);
    // A footprint taller or wider than the array admits no anchor
    // position at all; bail out before `rows - span_r + 1` below can
    // underflow. (numGroups is 0 in exactly this case, but guard on
    // the spans explicitly rather than relying on that coincidence.)
    if (span_r > rows || span_c > cols) {
        if (result.numGroups != 0)
            panic("fault mode exceeds array but numGroups != 0");
        return result;
    }
    if (result.numGroups == 0)
        return result;

    OutcomeAccumulator acc(opt.horizon, opt.numWindows);

    // Sweep anchor rows [row_begin, row_end) into one accumulator.
    // Physical bits are resolved row-band by row-band: the span_r
    // rows the pattern touches are cached so each array position is
    // resolved exactly once per band.
    auto sweep_rows = [&](std::uint64_t row_begin,
                          std::uint64_t row_end,
                          OutcomeAccumulator &out) {
        SweepScratch scratch;
        std::vector<MemberBit> row_cache;
        std::vector<MemberBit> members(mode.size());
        std::uint64_t groups_swept = 0;

        for (std::uint64_t r = row_begin; r < row_end; ++r) {
            row_cache.assign(std::size_t(span_r) * cols, MemberBit{});
            for (std::uint64_t dr = 0; dr < span_r; ++dr) {
                for (std::uint64_t c = 0; c < cols; ++c) {
                    PhysBit pb = array.at(r + dr, c);
                    MemberBit &m = row_cache[dr * cols + c];
                    m.domain = pb.domain;
                    m.life = store.findBit(pb.container,
                                           pb.bitInContainer,
                                           m.bitInWord);
                }
            }

            for (std::uint64_t c = 0; c + span_c <= cols; ++c) {
                bool any_life = false;
                for (unsigned i = 0; i < mode.size(); ++i) {
                    const PatternOffset &o = mode.offsets()[i];
                    members[i] =
                        row_cache[std::size_t(o.dRow) * cols + c +
                                  static_cast<std::uint64_t>(o.dCol)];
                    any_life |= members[i].life != nullptr;
                }
                if (!any_life)
                    continue;
                ++groups_swept;
                sweepGroup(members, scheme, opt.horizon,
                           opt.dueShieldsSdc, scratch, out);
            }
        }
        // One add per band, not per group: the counter stays off the
        // innermost loop even when metrics are enabled.
        groups_counter.add(groups_swept);
    };

    const std::uint64_t anchor_rows = rows - span_r + 1;

    if (opt.numThreads == 1) {
        sweep_rows(0, anchor_rows, acc);
    } else {
        // Shared-pool path. Band granularity depends only on the
        // range (not the thread count), and mapReduce() merges the
        // per-band accumulators in band order, so results are
        // bit-identical at any pool width — doubly so here, since
        // cycle counts are exact integers.
        ensureParallelThreads(opt.numThreads);
        const std::uint64_t grain =
            std::max<std::uint64_t>(1, anchor_rows / 64);
        acc = mapReduce(
            std::uint64_t(0), anchor_rows, grain,
            OutcomeAccumulator(opt.horizon, opt.numWindows),
            [&](std::uint64_t lo, std::uint64_t hi) {
                OutcomeAccumulator part(opt.horizon, opt.numWindows);
                sweep_rows(lo, hi, part);
                return part;
            },
            [](OutcomeAccumulator &into, OutcomeAccumulator &&part) {
                into.mergeFrom(part);
            });
    }

    const double denom =
        static_cast<double>(result.numGroups) *
        static_cast<double>(opt.horizon);
    result.avf.sdc = acc.totals()[0] / denom;
    result.avf.trueDue = acc.totals()[1] / denom;
    result.avf.falseDue = acc.totals()[2] / denom;

    if (opt.numWindows) {
        result.windows.resize(opt.numWindows);
        auto bound = [&](unsigned w) {
            return static_cast<Cycle>(
                static_cast<unsigned __int128>(opt.horizon) * w /
                opt.numWindows);
        };
        for (unsigned w = 0; w < opt.numWindows; ++w) {
            double wd =
                static_cast<double>(bound(w + 1) - bound(w)) *
                static_cast<double>(result.numGroups);
            result.windows[w].sdc = acc.windowTotal(w, 0) / wd;
            result.windows[w].trueDue = acc.windowTotal(w, 1) / wd;
            result.windows[w].falseDue = acc.windowTotal(w, 2) / wd;
        }
    }
    return result;
}

MbAvfResult
computeSbAvf(const PhysicalArray &array, const LifetimeStore &store,
             const ProtectionScheme &scheme, const MbAvfOptions &opt)
{
    return computeMbAvf(array, store, scheme, FaultMode::mx1(1), opt);
}

} // namespace mbavf
