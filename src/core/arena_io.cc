#include "core/arena_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/bits.hh"
#include "common/logging.hh"

namespace mbavf
{

namespace
{

constexpr char arenaMagic[8] = {'M', 'B', 'A', 'V', 'F', 'A',
                                'R', '1'};
/**
 * Version history:
 *  1 — original three segment columns (begin / end / masks).
 *  2 — appends a per-segment InstrTag attribution column after the
 *      handle table; all version-1 sections keep their offsets.
 * Writers emit version 2; the loader accepts both, leaving the tag
 * column null for version-1 files (an "untagged" arena).
 */
constexpr std::uint32_t arenaVersion = 2;
constexpr std::uint32_t arenaVersionUntagged = 1;
constexpr std::uint32_t nativeByteOrder = 0x01020304u;

/** Same untrusted-input cap as the lifetime store format. */
constexpr std::uint32_t maxWordsPerContainer = 1u << 20;

/**
 * On-disk header, 128 bytes, little-endian, all members naturally
 * aligned (no implicit padding). The trailing reserve keeps the
 * first section 64-byte aligned and leaves room for future fields
 * without a version bump.
 */
struct FileHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t byteOrder;
    std::uint32_t wordWidth;
    std::uint32_t wordsPerContainer;
    std::uint64_t numWords;
    std::uint64_t numSegments;
    std::uint64_t numContainers;
    std::uint64_t numHandles;
    std::uint64_t horizon;
    std::uint64_t fileSize;
    char reserved[56];
};
static_assert(sizeof(FileHeader) == 128,
              "arena header must stay exactly 128 bytes");

/**
 * Byte offset of every section. Sections follow the header in fixed
 * order, each aligned up to 64 bytes so the mapped columns start
 * cache-line aligned. Computed with saturating arithmetic: a
 * corrupt header whose counts overflow saturates `total` to
 * UINT64_MAX, which can never match a real file size.
 */
struct Layout
{
    std::uint64_t segBegin, segEnd, segMasks;
    std::uint64_t wordOffset, wordCount, wordContainer, wordIndex;
    std::uint64_t containerIds, containerBase;
    std::uint64_t handles;
    std::uint64_t segTag; ///< version >= 2 only
    std::uint64_t total;
};

Layout
computeLayout(const FileHeader &h)
{
    auto align64 = [](std::uint64_t x) {
        return satAdd(x, 63) & ~std::uint64_t(63);
    };
    std::uint64_t off = sizeof(FileHeader);
    auto section = [&](std::uint64_t count, std::uint64_t elem) {
        off = align64(off);
        const std::uint64_t at = off;
        off = satAdd(off, satMul(count, elem));
        return at;
    };
    Layout l;
    l.segBegin = section(h.numSegments, sizeof(Cycle));
    l.segEnd = section(h.numSegments, sizeof(Cycle));
    l.segMasks = section(h.numSegments, sizeof(SegMasks));
    l.wordOffset = section(h.numWords, sizeof(std::uint32_t));
    l.wordCount = section(h.numWords, sizeof(std::uint32_t));
    l.wordContainer = section(h.numWords, sizeof(std::uint64_t));
    l.wordIndex = section(h.numWords, sizeof(std::uint32_t));
    l.containerIds = section(h.numContainers, sizeof(std::uint64_t));
    l.containerBase = section(h.numContainers, sizeof(std::uint32_t));
    l.handles = section(h.numHandles, sizeof(std::uint32_t));
    l.segTag = h.version >= 2
                   ? section(h.numSegments, sizeof(InstrTag))
                   : 0;
    l.total = off;
    return l;
}

/** Position-tracking raw writes with zero-fill up to an offset. */
struct FileSink
{
    std::ofstream os;
    std::uint64_t pos = 0;

    void
    raw(const void *p, std::uint64_t n)
    {
        if (n == 0)
            return; // empty sections pass a null pointer
        os.write(static_cast<const char *>(p),
                 static_cast<std::streamsize>(n));
        pos += n;
    }

    void
    padTo(std::uint64_t to)
    {
        static const char zeros[64] = {};
        while (pos < to)
            raw(zeros, std::min<std::uint64_t>(sizeof(zeros),
                                               to - pos));
    }
};

/** Sorted (container id, handle base) pairs of an arena. */
std::vector<std::pair<std::uint64_t, std::uint32_t>>
sortedContainers(
    const std::unordered_map<std::uint64_t, std::uint32_t> &bases)
{
    std::vector<std::pair<std::uint64_t, std::uint32_t>> sorted(
        bases.begin(), bases.end());
    std::sort(sorted.begin(), sorted.end());
    return sorted;
}

void
renameInto(const std::string &tmp, const std::string &path)
{
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal("arena file: cannot rename '", tmp, "' to '", path,
              "'");
    }
}

} // namespace

/**
 * Befriended by LifetimeArena: assembles arenas around mapped file
 * images and reads the private columns back out for saving.
 */
class ArenaIo
{
  public:
    static void
    save(const LifetimeArena &a, const std::string &path,
         Cycle horizon)
    {
        if (a.numSegments_ >= 0xffffffffull)
            fatal("arena file: segment count overflows the format");
        FileHeader h{};
        std::memcpy(h.magic, arenaMagic, sizeof(h.magic));
        h.version = arenaVersion;
        h.byteOrder = nativeByteOrder;
        h.wordWidth = a.wordWidth_;
        h.wordsPerContainer = a.wordsPerContainer_;
        h.numWords = a.numWords_;
        h.numSegments = a.numSegments_;
        h.numContainers = a.containerBase_.size();
        h.numHandles = a.numHandles_;
        h.horizon = horizon;
        const Layout l = computeLayout(h);
        h.fileSize = l.total;

        const auto containers = sortedContainers(a.containerBase_);
        std::vector<std::uint64_t> ids(containers.size());
        std::vector<std::uint32_t> bases(containers.size());
        for (std::size_t i = 0; i < containers.size(); ++i) {
            ids[i] = containers[i].first;
            bases[i] = containers[i].second;
        }

        const std::string tmp = path + ".tmp";
        FileSink sink;
        sink.os.open(tmp, std::ios::binary | std::ios::trunc);
        if (!sink.os)
            fatal("cannot open '", tmp, "' for writing");
        sink.raw(&h, sizeof(h));
        auto section = [&](std::uint64_t at, const void *p,
                           std::uint64_t count,
                           std::uint64_t elem) {
            sink.padTo(at);
            sink.raw(p, count * elem);
        };
        section(l.segBegin, a.segBegin_, h.numSegments,
                sizeof(Cycle));
        section(l.segEnd, a.segEnd_, h.numSegments, sizeof(Cycle));
        section(l.segMasks, a.segMasks_, h.numSegments,
                sizeof(SegMasks));
        section(l.wordOffset, a.wordOffset_, h.numWords,
                sizeof(std::uint32_t));
        section(l.wordCount, a.wordCount_, h.numWords,
                sizeof(std::uint32_t));
        section(l.wordContainer, a.wordContainer_, h.numWords,
                sizeof(std::uint64_t));
        section(l.wordIndex, a.wordIndex_, h.numWords,
                sizeof(std::uint32_t));
        section(l.containerIds, ids.data(), h.numContainers,
                sizeof(std::uint64_t));
        section(l.containerBase, bases.data(), h.numContainers,
                sizeof(std::uint32_t));
        section(l.handles, a.handles_, h.numHandles,
                sizeof(std::uint32_t));
        if (a.segTag_) {
            section(l.segTag, a.segTag_, h.numSegments,
                    sizeof(InstrTag));
        } else {
            // Re-saving an untagged (version-1) arena: the format
            // always carries the column, so fill it with noInstrTag.
            const std::vector<InstrTag> none(h.numSegments,
                                             noInstrTag);
            section(l.segTag, none.data(), h.numSegments,
                    sizeof(InstrTag));
        }
        sink.os.flush();
        if (!sink.os || sink.pos != l.total)
            fatal("arena file: write to '", tmp, "' failed");
        sink.os.close();
        renameInto(tmp, path);
    }

    static std::optional<LifetimeArena>
    tryLoad(const std::string &path, std::string &error,
            Cycle *horizon)
    {
        // Map (or, failing that, read) the whole file.
        std::shared_ptr<const void> backing;
        std::uint64_t size = 0;
        {
            const int fd = ::open(path.c_str(), O_RDONLY);
            if (fd < 0) {
                error = "cannot open '" + path + "'";
                return std::nullopt;
            }
            struct stat st{};
            if (::fstat(fd, &st) != 0 || st.st_size < 0) {
                ::close(fd);
                error = "cannot stat '" + path + "'";
                return std::nullopt;
            }
            size = static_cast<std::uint64_t>(st.st_size);
            if (size < sizeof(FileHeader)) {
                ::close(fd);
                error = "file smaller than the arena header";
                return std::nullopt;
            }
            void *map = ::mmap(nullptr, size, PROT_READ,
                               MAP_PRIVATE, fd, 0);
            if (map != MAP_FAILED) {
                backing = std::shared_ptr<const void>(
                    map, [size](const void *p) {
                        ::munmap(const_cast<void *>(p), size);
                    });
                ::close(fd);
            } else {
                // Filesystems without mmap: plain read fallback.
                void *buf = std::malloc(size);
                if (!buf) {
                    ::close(fd);
                    error = "out of memory reading '" + path + "'";
                    return std::nullopt;
                }
                std::uint64_t got = 0;
                while (got < size) {
                    const ssize_t n = ::read(
                        fd, static_cast<char *>(buf) + got,
                        size - got);
                    if (n <= 0)
                        break;
                    got += static_cast<std::uint64_t>(n);
                }
                ::close(fd);
                if (got != size) {
                    std::free(buf);
                    error = "short read from '" + path + "'";
                    return std::nullopt;
                }
                backing = std::shared_ptr<const void>(
                    buf, [](const void *p) {
                        std::free(const_cast<void *>(p));
                    });
            }
        }
        const char *base = static_cast<const char *>(backing.get());

        FileHeader h{};
        std::memcpy(&h, base, sizeof(h));
        if (std::memcmp(h.magic, arenaMagic, sizeof(h.magic)) != 0) {
            error = "bad magic";
            return std::nullopt;
        }
        if (h.version != arenaVersion &&
            h.version != arenaVersionUntagged) {
            error = "unsupported version " +
                    std::to_string(h.version);
            return std::nullopt;
        }
        if (h.byteOrder != nativeByteOrder) {
            error = "foreign byte order";
            return std::nullopt;
        }
        const bool empty = h.numWords == 0 && h.numSegments == 0 &&
                           h.numContainers == 0 && h.numHandles == 0;
        if (h.wordWidth > 64 || (h.wordWidth == 0 && !empty)) {
            error = "word width " + std::to_string(h.wordWidth) +
                    " outside [1, 64]";
            return std::nullopt;
        }
        if (h.wordsPerContainer > maxWordsPerContainer ||
            (h.wordsPerContainer == 0 && h.numContainers != 0)) {
            error = "implausible words-per-container " +
                    std::to_string(h.wordsPerContainer);
            return std::nullopt;
        }
        if (h.numWords >= LifetimeArena::noWord) {
            error = "word count overflows the handle space";
            return std::nullopt;
        }
        if (h.numSegments >= 0xffffffffull) {
            error = "segment count overflows the offset space";
            return std::nullopt;
        }
        if (h.numHandles > 0xffffffffull) {
            error = "handle count overflows the base space";
            return std::nullopt;
        }
        if (h.numContainers == 0 && h.numHandles != 0) {
            error = "handles without containers";
            return std::nullopt;
        }
        const Layout l = computeLayout(h);
        if (l.total != h.fileSize || l.total != size) {
            error = "section layout disagrees with the file size";
            return std::nullopt;
        }

        const auto *word_offset =
            reinterpret_cast<const std::uint32_t *>(base +
                                                    l.wordOffset);
        const auto *word_count =
            reinterpret_cast<const std::uint32_t *>(base +
                                                    l.wordCount);
        const auto *ids = reinterpret_cast<const std::uint64_t *>(
            base + l.containerIds);
        const auto *bases = reinterpret_cast<const std::uint32_t *>(
            base + l.containerBase);
        const auto *handles = reinterpret_cast<const std::uint32_t *>(
            base + l.handles);

        // Cross-array indices: every word's segment range inside the
        // segment columns, every handle a real word or noWord, and
        // container blocks ordered, disjoint, and at least a full
        // container wide. Segment chains must also be non-empty and
        // sorted per word — the sweep kernels subtract end - begin
        // unchecked, so a backwards or overlapping chain would sweep
        // memory-safely but deposit wrapped run lengths and report
        // garbage AVF with no diagnostic.
        const auto *seg_begin =
            reinterpret_cast<const Cycle *>(base + l.segBegin);
        const auto *seg_end =
            reinterpret_cast<const Cycle *>(base + l.segEnd);
        const auto *word_index =
            reinterpret_cast<const std::uint32_t *>(base +
                                                    l.wordIndex);
        for (std::uint64_t w = 0; w < h.numWords; ++w) {
            if (word_offset[w] > h.numSegments ||
                word_count[w] >
                    h.numSegments - word_offset[w]) {
                error = "word " + std::to_string(w) +
                        " points outside the segment columns";
                return std::nullopt;
            }
            if (word_index[w] >= h.wordsPerContainer) {
                error = "word " + std::to_string(w) +
                        " claims index " +
                        std::to_string(word_index[w]) +
                        " outside its container";
                return std::nullopt;
            }
            const std::uint64_t lo = word_offset[w];
            const std::uint64_t hi = lo + word_count[w];
            for (std::uint64_t s = lo; s < hi; ++s) {
                if (seg_end[s] <= seg_begin[s] ||
                    (s > lo && seg_begin[s] < seg_end[s - 1])) {
                    error = "word " + std::to_string(w) +
                            " segment " + std::to_string(s - lo) +
                            " empty, backwards, or unsorted";
                    return std::nullopt;
                }
            }
        }
        for (std::uint64_t c = 0; c < h.numContainers; ++c) {
            if (c > 0 && ids[c] <= ids[c - 1]) {
                error = "container ids not strictly ascending";
                return std::nullopt;
            }
            const std::uint64_t begin = bases[c];
            const std::uint64_t end = c + 1 < h.numContainers
                                          ? bases[c + 1]
                                          : h.numHandles;
            if ((c == 0 && begin != 0) || end < begin ||
                end > h.numHandles ||
                end - begin < h.wordsPerContainer) {
                error = "container handle blocks malformed";
                return std::nullopt;
            }
        }
        for (std::uint64_t i = 0; i < h.numHandles; ++i) {
            if (handles[i] != LifetimeArena::noWord &&
                handles[i] >= h.numWords) {
                error = "handle " + std::to_string(i) +
                        " points outside the word tables";
                return std::nullopt;
            }
        }

        LifetimeArena a;
        a.wordWidth_ = h.wordWidth;
        a.wordsPerContainer_ = h.wordsPerContainer;
        a.numWords_ = static_cast<std::uint32_t>(h.numWords);
        a.numSegments_ = h.numSegments;
        a.numHandles_ = h.numHandles;
        a.segBegin_ =
            reinterpret_cast<const Cycle *>(base + l.segBegin);
        a.segEnd_ = reinterpret_cast<const Cycle *>(base + l.segEnd);
        a.segMasks_ =
            reinterpret_cast<const SegMasks *>(base + l.segMasks);
        a.segTag_ = h.version >= 2
                        ? reinterpret_cast<const InstrTag *>(
                              base + l.segTag)
                        : nullptr;
        a.wordOffset_ = word_offset;
        a.wordCount_ = word_count;
        a.wordContainer_ = reinterpret_cast<const std::uint64_t *>(
            base + l.wordContainer);
        a.wordIndex_ = reinterpret_cast<const std::uint32_t *>(
            base + l.wordIndex);
        a.handles_ = handles;
        a.containerBase_.reserve(h.numContainers);
        for (std::uint64_t c = 0; c < h.numContainers; ++c)
            a.containerBase_.emplace(ids[c], bases[c]);
        a.backing_ = std::move(backing);
        if (horizon)
            *horizon = h.horizon;
        return a;
    }
};

void
saveArena(const LifetimeArena &arena, const std::string &path,
          Cycle horizon)
{
    ArenaIo::save(arena, path, horizon);
}

std::optional<LifetimeArena>
tryLoadArena(const std::string &path, std::string &error,
             Cycle *horizon)
{
    return ArenaIo::tryLoad(path, error, horizon);
}

LifetimeArena
loadArena(const std::string &path, Cycle *horizon)
{
    std::string error;
    std::optional<LifetimeArena> arena =
        tryLoadArena(path, error, horizon);
    if (!arena)
        fatal("arena file '", path, "': ", error);
    return std::move(*arena);
}

ArenaStreamWriter::ArenaStreamWriter(std::string path,
                                     unsigned word_width,
                                     unsigned words_per_container,
                                     Cycle horizon)
    : path_(std::move(path)), wordWidth_(word_width),
      wordsPerContainer_(words_per_container), horizon_(horizon)
{
    static const char *const suffix[4] = {".segb.tmp", ".sege.tmp",
                                          ".segm.tmp", ".segt.tmp"};
    for (int i = 0; i < 4; ++i) {
        spill_[i].open(path_ + suffix[i],
                       std::ios::binary | std::ios::trunc);
        if (!spill_[i])
            fatal("cannot open '", path_ + suffix[i],
                  "' for writing");
    }
}

ArenaStreamWriter::~ArenaStreamWriter()
{
    if (finished_)
        return;
    // Abandoned mid-stream: drop the spill files (and any partial
    // final image); the destination is untouched.
    for (const char *s :
         {".segb.tmp", ".sege.tmp", ".segm.tmp", ".segt.tmp"}) {
        std::remove((path_ + s).c_str());
    }
    std::remove((path_ + ".tmp").c_str());
}

void
ArenaStreamWriter::beginContainer(std::uint64_t id)
{
    if (haveContainer_ && id <= lastContainer_)
        fatal("arena stream: container ids must strictly ascend");
    if (handles_.size() + wordsPerContainer_ > 0xffffffffull)
        fatal("arena stream: handle table overflow");
    base_ = static_cast<std::uint32_t>(handles_.size());
    handles_.insert(handles_.end(), wordsPerContainer_,
                    LifetimeArena::noWord);
    containerIds_.push_back(id);
    containerBase_.push_back(base_);
    lastContainer_ = id;
    haveContainer_ = true;
    nextIndex_ = 0;
}

void
ArenaStreamWriter::addWord(unsigned index,
                           const LifeSegment *segments,
                           std::size_t num_segments)
{
    if (num_segments == 0)
        return;
    if (!haveContainer_)
        fatal("arena stream: addWord before beginContainer");
    if (index >= wordsPerContainer_)
        fatal("arena stream: word index ", index,
              " outside the container (malformed stores must use "
              "the in-memory snapshot)");
    if (index < nextIndex_)
        fatal("arena stream: word indices must strictly ascend");
    nextIndex_ = index + 1;
    if (wordOffset_.size() + 1 >= LifetimeArena::noWord)
        fatal("lifetime arena overflow: ", wordOffset_.size() + 1,
              " words");
    if (satAdd(numSegments_, num_segments) >= 0xffffffffull)
        fatal("arena stream: segment count overflows the format");

    handles_[base_ + index] =
        static_cast<std::uint32_t>(wordOffset_.size());
    wordOffset_.push_back(static_cast<std::uint32_t>(numSegments_));
    wordCount_.push_back(static_cast<std::uint32_t>(num_segments));
    wordContainer_.push_back(lastContainer_);
    wordIndex_.push_back(index);
    for (std::size_t s = 0; s < num_segments; ++s) {
        const LifeSegment &seg = segments[s];
        const SegMasks masks{seg.aceMask, seg.readMask};
        spill_[0].write(reinterpret_cast<const char *>(&seg.begin),
                        sizeof(seg.begin));
        spill_[1].write(reinterpret_cast<const char *>(&seg.end),
                        sizeof(seg.end));
        spill_[2].write(reinterpret_cast<const char *>(&masks),
                        sizeof(masks));
        spill_[3].write(reinterpret_cast<const char *>(&seg.tag),
                        sizeof(seg.tag));
    }
    numSegments_ += num_segments;
}

void
ArenaStreamWriter::finish()
{
    if (finished_)
        fatal("arena stream: finish() called twice");
    static const char *const suffix[4] = {".segb.tmp", ".sege.tmp",
                                          ".segm.tmp", ".segt.tmp"};
    for (int i = 0; i < 4; ++i) {
        spill_[i].flush();
        if (!spill_[i])
            fatal("arena stream: spill write to '",
                  path_ + suffix[i], "' failed");
        spill_[i].close();
    }

    FileHeader h{};
    std::memcpy(h.magic, arenaMagic, sizeof(h.magic));
    h.version = arenaVersion;
    h.byteOrder = nativeByteOrder;
    h.wordWidth = wordWidth_;
    h.wordsPerContainer = wordsPerContainer_;
    h.numWords = wordOffset_.size();
    h.numSegments = numSegments_;
    h.numContainers = containerIds_.size();
    h.numHandles = handles_.size();
    h.horizon = horizon_;
    const Layout l = computeLayout(h);
    h.fileSize = l.total;

    const std::string tmp = path_ + ".tmp";
    FileSink sink;
    sink.os.open(tmp, std::ios::binary | std::ios::trunc);
    if (!sink.os)
        fatal("cannot open '", tmp, "' for writing");
    sink.raw(&h, sizeof(h));
    auto spill_section = [&](std::uint64_t at, int which) {
        sink.padTo(at);
        std::ifstream is(path_ + suffix[which], std::ios::binary);
        if (!is)
            fatal("arena stream: cannot reopen spill '",
                  path_ + suffix[which], "'");
        std::vector<char> buf(1u << 20);
        while (is) {
            is.read(buf.data(),
                    static_cast<std::streamsize>(buf.size()));
            if (is.gcount() > 0)
                sink.raw(buf.data(),
                         static_cast<std::uint64_t>(is.gcount()));
        }
    };
    auto section = [&](std::uint64_t at, const void *p,
                       std::uint64_t bytes) {
        sink.padTo(at);
        sink.raw(p, bytes);
    };
    spill_section(l.segBegin, 0);
    spill_section(l.segEnd, 1);
    spill_section(l.segMasks, 2);
    section(l.wordOffset, wordOffset_.data(),
            h.numWords * sizeof(std::uint32_t));
    section(l.wordCount, wordCount_.data(),
            h.numWords * sizeof(std::uint32_t));
    section(l.wordContainer, wordContainer_.data(),
            h.numWords * sizeof(std::uint64_t));
    section(l.wordIndex, wordIndex_.data(),
            h.numWords * sizeof(std::uint32_t));
    section(l.containerIds, containerIds_.data(),
            h.numContainers * sizeof(std::uint64_t));
    section(l.containerBase, containerBase_.data(),
            h.numContainers * sizeof(std::uint32_t));
    section(l.handles, handles_.data(),
            h.numHandles * sizeof(std::uint32_t));
    spill_section(l.segTag, 3);
    sink.os.flush();
    if (!sink.os || sink.pos != l.total)
        fatal("arena stream: write to '", tmp, "' failed");
    sink.os.close();
    for (int i = 0; i < 4; ++i)
        std::remove((path_ + suffix[i]).c_str());
    renameInto(tmp, path_);
    finished_ = true;
}

void
streamArenaFromStore(const LifetimeStore &store,
                     const std::string &path, Cycle horizon)
{
    ArenaStreamWriter writer(path, store.wordWidth(),
                             store.wordsPerContainer(), horizon);
    std::vector<std::uint64_t> ids;
    ids.reserve(store.containers().size());
    for (const auto &[id, container] : store.containers())
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) {
        const ContainerLifetime &container =
            store.containers().at(id);
        writer.beginContainer(id);
        for (std::size_t w = 0; w < container.words.size(); ++w) {
            const auto &segments = container.words[w].segments();
            writer.addWord(static_cast<unsigned>(w),
                           segments.data(), segments.size());
        }
    }
    writer.finish();
}

} // namespace mbavf
