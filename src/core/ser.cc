#include "core/ser.hh"

namespace mbavf
{

StructureSer
sumSer(const std::vector<ModeSer> &modes)
{
    StructureSer out;
    for (const ModeSer &m : modes) {
        out.sdc += m.sdcSer();
        out.trueDue += m.trueDueSer();
        out.falseDue += m.falseDueSer();
    }
    return out;
}

} // namespace mbavf
