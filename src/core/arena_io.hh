/**
 * @file
 * Persistent binary format for LifetimeArenas ("build once, sweep
 * many").
 *
 * Snapshotting a large LifetimeStore into the flat arena is itself a
 * memory-bound pass; a design sweep that re-analyzes one simulation
 * under many schemes and layouts pays it on every run. saveArena()
 * writes the arena's columns verbatim into a versioned, 64-byte
 * aligned, little-endian file (format: DESIGN.md Section 13) and
 * loadArena() maps it back read-only — the loaded arena aliases the
 * mapping, so load time and memory are O(1) in the segment count and
 * a mapped arena is indistinguishable from a built one to the sweep
 * kernels (bit-identical results at any thread count).
 *
 * Writes are atomic: the image is assembled at <path>.tmp and
 * renamed over the destination, so readers never observe a torn
 * file. Loading validates the header, the section layout (with
 * overflow-checked arithmetic against the actual file size), and
 * every cross-array index before the arena is handed out; anything
 * suspect is rejected whole. Deeper semantic checks — segment
 * ordering, arena-vs-store staleness — remain the job of
 * `mbavf_lint --arena`.
 *
 * ArenaStreamWriter produces the identical bytes without ever
 * holding the segment columns in memory, for stores too large to
 * snapshot: segments stream through temporary spill files and only
 * the per-word and per-container tables stay resident.
 *
 * Format version 2 appends a per-segment InstrTag attribution column
 * after the handle table; version-1 files still load, yielding an
 * untagged arena (LifetimeArena::tags() == nullptr). All version-1
 * section offsets are unchanged.
 */

#ifndef MBAVF_CORE_ARENA_IO_HH
#define MBAVF_CORE_ARENA_IO_HH

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/lifetime.hh"
#include "core/lifetime_arena.hh"

namespace mbavf
{

/**
 * Write @p arena to @p path atomically. @p horizon records the
 * measurement horizon the producer was configured with (0 = none);
 * consumers may use it as their default sweep horizon.
 */
void saveArena(const LifetimeArena &arena, const std::string &path,
               Cycle horizon = 0);

/**
 * Map the arena file at @p path read-only. Returns nullopt and sets
 * @p error on any structural problem — bad magic or version, foreign
 * byte order, a section layout that disagrees with the file size, or
 * an out-of-range cross-array index. When @p horizon is non-null it
 * receives the stored producer horizon.
 *
 * The returned arena aliases the file mapping (malloc fallback when
 * mmap is unavailable); copies share it refcounted.
 */
std::optional<LifetimeArena> tryLoadArena(const std::string &path,
                                          std::string &error,
                                          Cycle *horizon = nullptr);

/** Loading convenience for trusting callers; fatal on any problem. */
LifetimeArena loadArena(const std::string &path,
                        Cycle *horizon = nullptr);

/**
 * Streaming writer producing byte-identical output to
 * saveArena(LifetimeArena(store), path, horizon) while keeping only
 * O(words) state in memory: segment columns spill to three
 * temporary files next to @p path and are concatenated on finish().
 *
 * Feed containers in strictly ascending id order and words in
 * strictly ascending index order within each container; empty words
 * are simply not added. The writer enforces the well-formed-store
 * shape (word index < wordsPerContainer) and is fatal on violations
 * — malformed stores must go through the in-memory snapshot path.
 */
class ArenaStreamWriter
{
  public:
    ArenaStreamWriter(std::string path, unsigned word_width,
                      unsigned words_per_container, Cycle horizon);

    /** Not copyable: owns spill files keyed to the target path. */
    ArenaStreamWriter(const ArenaStreamWriter &) = delete;
    ArenaStreamWriter &operator=(const ArenaStreamWriter &) = delete;

    ~ArenaStreamWriter();

    /** Open container @p id; ids must strictly ascend. */
    void beginContainer(std::uint64_t id);

    /**
     * Add the non-empty word @p index of the open container with
     * @p num_segments segments; indices must strictly ascend within
     * the container. Adding zero segments is a no-op (the word stays
     * empty, handle noWord).
     */
    void addWord(unsigned index, const LifeSegment *segments,
                 std::size_t num_segments);

    /** Assemble the final file and rename it into place. */
    void finish();

  private:
    std::string path_;
    unsigned wordWidth_;
    unsigned wordsPerContainer_;
    Cycle horizon_;
    bool finished_ = false;

    std::ofstream spill_[4]; ///< segment begin/end/masks/tag columns
    std::uint64_t numSegments_ = 0;

    bool haveContainer_ = false;
    std::uint64_t lastContainer_ = 0;
    std::uint32_t base_ = 0;   ///< open container's handle base
    std::uint32_t nextIndex_ = 0;

    std::vector<std::uint32_t> wordOffset_;
    std::vector<std::uint32_t> wordCount_;
    std::vector<std::uint64_t> wordContainer_;
    std::vector<std::uint32_t> wordIndex_;
    std::vector<std::uint64_t> containerIds_;
    std::vector<std::uint32_t> containerBase_;
    std::vector<std::uint32_t> handles_;
};

/**
 * Stream @p store straight to an arena file without materializing
 * the arena. Byte-identical to saveArena(LifetimeArena(store), ...);
 * fatal if the store is malformed (see ArenaStreamWriter).
 */
void streamArenaFromStore(const LifetimeStore &store,
                          const std::string &path, Cycle horizon = 0);

} // namespace mbavf

#endif // MBAVF_CORE_ARENA_IO_HH
