/**
 * @file
 * ACE classification enums for bits, overlapped regions, and fault
 * groups (paper Sections IV-V, VII).
 */

#ifndef MBAVF_CORE_ACE_CLASS_HH
#define MBAVF_CORE_ACE_CLASS_HH

#include <cstdint>
#include <string>

namespace mbavf
{

/**
 * Per-bit ACE class at a point in time: the consequence of this bit
 * holding a wrong value at that cycle, before considering protection.
 *
 * - AceLive: the value will be consumed by a use that reaches program
 *   output (SDC if the fault goes undetected; true DUE if detected).
 * - ReadDead: the protection word will still be read out of the array
 *   (dead load, unused bits of a consumed word, or a dirty write-back)
 *   but the bit cannot affect program output (false DUE if detected;
 *   masked otherwise).
 * - Unace: never read again before being overwritten or dropped.
 */
enum class AceClass : std::uint8_t
{
    Unace = 0,
    ReadDead = 1,
    AceLive = 2,
};

/**
 * Outcome class of a fault in an overlapped region or fault group
 * after protection is applied. Ordering encodes the paper's
 * worst-case precedence: Sdc > TrueDue > FalseDue > Unace.
 */
enum class Outcome : std::uint8_t
{
    Unace = 0,
    FalseDue = 1,
    TrueDue = 2,
    Sdc = 3,
};

/** Human-readable name of an Outcome. */
inline std::string
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Unace: return "unACE";
      case Outcome::FalseDue: return "falseDUE";
      case Outcome::TrueDue: return "trueDUE";
      case Outcome::Sdc: return "SDC";
    }
    return "?";
}

} // namespace mbavf

#endif // MBAVF_CORE_ACE_CLASS_HH
