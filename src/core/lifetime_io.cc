#include "core/lifetime_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace mbavf
{

namespace
{

constexpr char magic[8] = {'M', 'B', 'A', 'V', 'F', 'L', 'T', '1'};

template <typename T>
void
writeScalar(std::ostream &os, T value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
T
readScalar(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!is)
        fatal("lifetime store: truncated input");
    return value;
}

/** Non-fatal scalar read; false = truncated. */
template <typename T>
bool
tryReadScalar(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    return static_cast<bool>(is);
}

/**
 * Cap on words per container accepted from untrusted input: real
 * stores use 64 (cache lines) or 1 (registers); a corrupt header
 * must not be able to demand a multi-gigabyte allocation.
 */
constexpr std::uint32_t maxWordsPerContainer = 1u << 20;

} // namespace

void
saveLifetimeStore(const LifetimeStore &store, std::ostream &os)
{
    os.write(magic, sizeof(magic));
    writeScalar<std::uint32_t>(os, store.wordWidth());
    writeScalar<std::uint32_t>(os, store.wordsPerContainer());
    writeScalar<std::uint64_t>(os, store.numContainers());

    for (const auto &[id, container] : store.containers()) {
        writeScalar<std::uint64_t>(os, id);
        for (const WordLifetime &word : container.words) {
            writeScalar<std::uint32_t>(
                os,
                static_cast<std::uint32_t>(word.segments().size()));
            for (const LifeSegment &seg : word.segments()) {
                writeScalar<std::uint64_t>(os, seg.begin);
                writeScalar<std::uint64_t>(os, seg.end);
                writeScalar<std::uint64_t>(os, seg.aceMask);
                writeScalar<std::uint64_t>(os, seg.readMask);
            }
        }
    }
    if (!os)
        fatal("lifetime store: write failed");
}

std::optional<LifetimeStore>
tryLoadLifetimeStore(std::istream &is, std::string &error)
{
    char header[8];
    is.read(header, sizeof(header));
    if (!is || std::memcmp(header, magic, sizeof(magic)) != 0) {
        error = "bad magic";
        return std::nullopt;
    }

    std::uint32_t word_width = 0;
    std::uint32_t words_per = 0;
    std::uint64_t num_containers = 0;
    if (!tryReadScalar(is, word_width) ||
        !tryReadScalar(is, words_per) ||
        !tryReadScalar(is, num_containers)) {
        error = "truncated header";
        return std::nullopt;
    }
    if (word_width == 0 || word_width > 64) {
        error = "word width " + std::to_string(word_width) +
                " outside [1, 64]";
        return std::nullopt;
    }
    if (words_per == 0 || words_per > maxWordsPerContainer) {
        error = "implausible words-per-container " +
                std::to_string(words_per);
        return std::nullopt;
    }

    LifetimeStore store(word_width, words_per);
    for (std::uint64_t c = 0; c < num_containers; ++c) {
        std::uint64_t id = 0;
        if (!tryReadScalar(is, id)) {
            error = "truncated at container " + std::to_string(c) +
                    " of " + std::to_string(num_containers);
            return std::nullopt;
        }
        ContainerLifetime &container = store.container(id);
        for (std::uint32_t w = 0; w < words_per; ++w) {
            std::uint32_t num_segs = 0;
            if (!tryReadScalar(is, num_segs)) {
                error = "truncated in container " + std::to_string(id);
                return std::nullopt;
            }
            for (std::uint32_t s = 0; s < num_segs; ++s) {
                LifeSegment seg;
                if (!tryReadScalar(is, seg.begin) ||
                    !tryReadScalar(is, seg.end) ||
                    !tryReadScalar(is, seg.aceMask) ||
                    !tryReadScalar(is, seg.readMask)) {
                    error = "truncated in container " +
                            std::to_string(id) + " word " +
                            std::to_string(w);
                    return std::nullopt;
                }
                // Keep malformed segments verbatim: the lifetime
                // lint diagnoses them; trusting callers go through
                // loadLifetimeStore, which rejects them.
                container.words[w].appendUnchecked(seg);
            }
        }
    }
    return store;
}

LifetimeStore
loadLifetimeStore(std::istream &is)
{
    std::string error;
    std::optional<LifetimeStore> store = tryLoadLifetimeStore(is, error);
    if (!store)
        fatal("lifetime store: ", error);

    // Trusting callers get the append() guarantees back: reject any
    // store whose segments are empty, backwards, or overlapping.
    for (const auto &[id, container] : store->containers()) {
        for (std::size_t w = 0; w < container.words.size(); ++w) {
            Cycle prev_end = 0;
            for (const LifeSegment &seg :
                 container.words[w].segments()) {
                if (seg.end <= seg.begin || seg.begin < prev_end) {
                    fatal("lifetime store: corrupt segments in "
                          "container ", id, " word ", w,
                          " (run mbavf_lint for details)");
                }
                prev_end = seg.end;
            }
        }
    }
    return std::move(*store);
}

void
saveLifetimeStore(const LifetimeStore &store, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    saveLifetimeStore(store, os);
}

LifetimeStore
loadLifetimeStore(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open '", path, "' for reading");
    return loadLifetimeStore(is);
}

} // namespace mbavf
