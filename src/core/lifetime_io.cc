#include "core/lifetime_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace mbavf
{

namespace
{

constexpr char magic[8] = {'M', 'B', 'A', 'V', 'F', 'L', 'T', '1'};

template <typename T>
void
writeScalar(std::ostream &os, T value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
T
readScalar(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(value));
    if (!is)
        fatal("lifetime store: truncated input");
    return value;
}

} // namespace

void
saveLifetimeStore(const LifetimeStore &store, std::ostream &os)
{
    os.write(magic, sizeof(magic));
    writeScalar<std::uint32_t>(os, store.wordWidth());
    writeScalar<std::uint32_t>(os, store.wordsPerContainer());
    writeScalar<std::uint64_t>(os, store.numContainers());

    for (const auto &[id, container] : store.containers()) {
        writeScalar<std::uint64_t>(os, id);
        for (const WordLifetime &word : container.words) {
            writeScalar<std::uint32_t>(
                os,
                static_cast<std::uint32_t>(word.segments().size()));
            for (const LifeSegment &seg : word.segments()) {
                writeScalar<std::uint64_t>(os, seg.begin);
                writeScalar<std::uint64_t>(os, seg.end);
                writeScalar<std::uint64_t>(os, seg.aceMask);
                writeScalar<std::uint64_t>(os, seg.readMask);
            }
        }
    }
    if (!os)
        fatal("lifetime store: write failed");
}

LifetimeStore
loadLifetimeStore(std::istream &is)
{
    char header[8];
    is.read(header, sizeof(header));
    if (!is || std::memcmp(header, magic, sizeof(magic)) != 0)
        fatal("lifetime store: bad magic");

    auto word_width = readScalar<std::uint32_t>(is);
    auto words_per = readScalar<std::uint32_t>(is);
    auto num_containers = readScalar<std::uint64_t>(is);

    LifetimeStore store(word_width, words_per);
    for (std::uint64_t c = 0; c < num_containers; ++c) {
        auto id = readScalar<std::uint64_t>(is);
        ContainerLifetime &container = store.container(id);
        for (std::uint32_t w = 0; w < words_per; ++w) {
            auto num_segs = readScalar<std::uint32_t>(is);
            for (std::uint32_t s = 0; s < num_segs; ++s) {
                LifeSegment seg;
                seg.begin = readScalar<std::uint64_t>(is);
                seg.end = readScalar<std::uint64_t>(is);
                seg.aceMask = readScalar<std::uint64_t>(is);
                seg.readMask = readScalar<std::uint64_t>(is);
                container.words[w].append(seg);
            }
        }
    }
    return store;
}

void
saveLifetimeStore(const LifetimeStore &store, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    saveLifetimeStore(store, os);
}

LifetimeStore
loadLifetimeStore(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open '", path, "' for reading");
    return loadLifetimeStore(is);
}

} // namespace mbavf
