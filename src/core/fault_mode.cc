#include "core/fault_mode.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mbavf
{

FaultMode::FaultMode(std::string name, std::vector<PatternOffset> offsets)
    : name_(std::move(name)), offsets_(std::move(offsets))
{
    if (offsets_.empty())
        fatal("fault mode '", name_, "' has no offsets");

    // Normalize: sort, dedup, and shift so min offsets are zero.
    std::sort(offsets_.begin(), offsets_.end(),
              [](const PatternOffset &a, const PatternOffset &b) {
                  return a.dRow != b.dRow ? a.dRow < b.dRow
                                          : a.dCol < b.dCol;
              });
    offsets_.erase(std::unique(offsets_.begin(), offsets_.end()),
                   offsets_.end());

    std::int32_t min_r = offsets_.front().dRow;
    std::int32_t min_c = offsets_.front().dCol;
    for (const PatternOffset &o : offsets_) {
        min_r = std::min(min_r, o.dRow);
        min_c = std::min(min_c, o.dCol);
    }
    for (PatternOffset &o : offsets_) {
        o.dRow -= min_r;
        o.dCol -= min_c;
        maxDRow_ = std::max(maxDRow_, o.dRow);
        maxDCol_ = std::max(maxDCol_, o.dCol);
    }
}

FaultMode
FaultMode::mx1(unsigned m)
{
    if (m == 0)
        fatal("mx1 fault mode requires m >= 1");
    std::vector<PatternOffset> offs;
    offs.reserve(m);
    for (unsigned i = 0; i < m; ++i)
        offs.push_back({0, static_cast<std::int32_t>(i)});
    return FaultMode(std::to_string(m) + "x1", std::move(offs));
}

FaultMode
FaultMode::rect(unsigned rows, unsigned cols)
{
    if (rows == 0 || cols == 0)
        fatal("rect fault mode requires nonzero dimensions");
    std::vector<PatternOffset> offs;
    offs.reserve(std::size_t(rows) * cols);
    for (unsigned r = 0; r < rows; ++r) {
        for (unsigned c = 0; c < cols; ++c) {
            offs.push_back({static_cast<std::int32_t>(r),
                            static_cast<std::int32_t>(c)});
        }
    }
    return FaultMode(std::to_string(cols) + "x" + std::to_string(rows),
                     std::move(offs));
}

std::uint64_t
FaultMode::numGroups(std::uint64_t rows, std::uint64_t cols) const
{
    std::uint64_t span_r = static_cast<std::uint64_t>(maxDRow_) + 1;
    std::uint64_t span_c = static_cast<std::uint64_t>(maxDCol_) + 1;
    if (span_r > rows || span_c > cols)
        return 0;
    return (rows - span_r + 1) * (cols - span_c + 1);
}

} // namespace mbavf
