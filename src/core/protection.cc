#include "core/protection.hh"

#include "common/logging.hh"

namespace mbavf
{

namespace
{

/**
 * Minimum Hamming check bits r for single-error correction over k
 * data bits: smallest r with 2^r >= k + r + 1.
 */
unsigned
hammingCheckBits(unsigned data_bits)
{
    unsigned r = 1;
    while ((1ull << r) < data_bits + r + 1)
        ++r;
    return r;
}

} // namespace

unsigned
SecDedScheme::checkBits(unsigned data_bits) const
{
    // Hamming + one extra overall parity bit (Hsiao-equivalent cost):
    // 32 -> 7, 64 -> 8, 128 -> 9 check bits.
    return hammingCheckBits(data_bits) + 1;
}

unsigned
DecTedScheme::checkBits(unsigned data_bits) const
{
    // BCH DEC-TED cost: 2 * ceil(log2(n)) + 1; 128 data bits -> 17
    // check bits as quoted in the paper's introduction.
    unsigned r = 2 * hammingCheckBits(data_bits) + 1;
    return r;
}

std::unique_ptr<ProtectionScheme>
makeScheme(const std::string &name)
{
    if (name == "none")
        return std::make_unique<NoProtection>();
    if (name == "parity")
        return std::make_unique<ParityScheme>();
    if (name == "secded")
        return std::make_unique<SecDedScheme>();
    if (name == "dected")
        return std::make_unique<DecTedScheme>();
    if (name == "crc")
        return std::make_unique<CrcDetectScheme>();
    fatal("unknown protection scheme '", name, "'");
}

} // namespace mbavf
