/**
 * @file
 * Out-of-line accumulator machinery shared by the sweep kernels.
 *
 * Compiled without SIMD flags on purpose: these methods are called
 * from both the scalar and the AVX2 translation units, so their one
 * definition must stay portable (see the note in mbavf_kernel.hh).
 */

#include "core/mbavf_kernel.hh"

#include <algorithm>

namespace mbavf
{
namespace detail
{

OutcomeAccumulator::OutcomeAccumulator(Cycle horizon,
                                       unsigned num_windows)
    : horizon_(horizon), numWindows_(num_windows)
{
    if (num_windows) {
        windows_.resize(std::size_t(num_windows) * 3, 0);
        // Cache the exact integer boundaries: the 128-bit
        // division is far too hot to repeat inside add().
        bounds_.resize(std::size_t(num_windows) + 1);
        for (unsigned w = 0; w <= num_windows; ++w) {
            bounds_[w] = static_cast<Cycle>(
                static_cast<unsigned __int128>(horizon_) * w /
                num_windows);
        }
    }
}

void
OutcomeAccumulator::add(Outcome outcome, Cycle begin, Cycle end)
{
    if (outcome == Outcome::Unace || end <= begin)
        return;
    unsigned idx = classIndex(outcome);
    totals_[idx] += end - begin;
    if (!numWindows_)
        return;
    // Runs cluster in time, so the window that absorbed the last
    // run usually contains this one whole — check it before the
    // binary searches.
    if (bounds_[hint_] <= begin && end <= bounds_[hint_ + 1]) {
        windows_[std::size_t(hint_) * 3 + idx] += end - begin;
        return;
    }
    // Split the slice across windows (binary search over the
    // cached exact boundaries).
    auto window_of = [this](Cycle t) {
        const auto it = std::upper_bound(bounds_.begin() + 1,
                                         bounds_.end(), t);
        return static_cast<unsigned>(it - bounds_.begin()) - 1;
    };
    unsigned w0 = window_of(begin);
    unsigned w1 = window_of(end - 1);
    w1 = std::min(w1, numWindows_ - 1);
    for (unsigned w = w0; w <= w1; ++w) {
        Cycle lo = std::max(begin, bound(w));
        Cycle hi = std::min(end, bound(w + 1));
        if (lo < hi)
            windows_[std::size_t(w) * 3 + idx] += hi - lo;
    }
    hint_ = w1;
}

void
OutcomeAccumulator::addRaw(unsigned idx, Cycle amount)
{
    totals_[idx] += amount;
}

void
OutcomeAccumulator::addWindowRaw(unsigned window, unsigned idx,
                                 Cycle amount)
{
    windows_[std::size_t(window) * 3 + idx] += amount;
}

void
OutcomeAccumulator::mergeFrom(const OutcomeAccumulator &other)
{
    for (unsigned i = 0; i < 3; ++i)
        totals_[i] += other.totals_[i];
    for (std::size_t i = 0; i < windows_.size(); ++i)
        windows_[i] += other.windows_[i];
}

ModeAccumulators::ModeAccumulators(Cycle horizon, unsigned num_windows,
                                   unsigned max_mode)
{
    modes.reserve(max_mode);
    for (unsigned m = 0; m < max_mode; ++m)
        modes.emplace_back(horizon, num_windows);
}

void
ModeAccumulators::mergeFrom(const ModeAccumulators &other)
{
    for (std::size_t m = 0; m < modes.size(); ++m)
        modes[m].mergeFrom(other.modes[m]);
}

} // namespace detail
} // namespace mbavf
