/**
 * @file
 * Two-phase ACE analysis: an event-tracking phase appends raw word
 * events during simulation; the analysis phase resolves liveness and
 * runs a backward pass that turns each word's event list into labeled
 * LifeSegments (Section V of the paper).
 *
 * Event semantics per word:
 * - Write(mask): the masked bits are overwritten; prior faults in
 *   them vanish.
 * - Read(consumeMask, def, ...): the *whole word* is read out of the
 *   array (so a resident fault anywhere in the word would be observed
 *   by the protection scheme); bits in consumeMask are additionally
 *   consumed by dynamic definition @c def. Whether that consumption
 *   reaches program output — and which bits of it matter, per the
 *   logic-masking analysis — is resolved after the run via the
 *   LivenessResolver. Dirty write-backs are Reads whose consumption
 *   reflects the post-eviction future use of the data.
 * - The lifetime window closes at end_time (eviction / end of run).
 *
 * The backward pass computes, for every inter-event gap and bit b:
 * - willBeConsumedLive(b): a live consumption of b occurs before b is
 *   next overwritten  -> AceLive
 * - willBeRead(b): some read of the word occurs before b is next
 *   overwritten       -> ReadDead (when not AceLive)
 * - otherwise         -> Unace
 */

#ifndef MBAVF_CORE_LIFETIME_BUILDER_HH
#define MBAVF_CORE_LIFETIME_BUILDER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "core/lifetime.hh"

namespace mbavf
{

/** One raw event on a word, recorded during simulation. */
struct WordEvent
{
    enum class Kind : std::uint8_t { Write, Read };

    Cycle time = 0;
    Kind kind = Kind::Write;

    /** Write: overwritten bits. Read: consumed bits (pre-liveness). */
    std::uint64_t mask = 0;

    /**
     * Read only: dynamic definition consuming the value; liveness and
     * bit relevance are resolved during the analysis phase. noDef
     * means unconditionally fully live (e.g. an output store / DMA).
     */
    DefId def = noDef;

    /**
     * Read only: when true, the consuming operation propagates bits
     * positionally (a move/load chain), so the consumer's resolved
     * relevance mask — shifted right by relShift bits to align the
     * consumer's value coordinates with this word — refines which
     * consumed bits matter. When false, the consumption is
     * all-or-nothing: every consumed bit matters iff the consumer is
     * live at all (arithmetic, compares, addresses).
     */
    bool exact = false;

    /** Read only (exact): consumer-value bit offset of word bit 0. */
    std::uint8_t relShift = 0;

    /** Write only: static instruction producing the written data. */
    InstrTag tag = noInstrTag;
};

/** Event list of one word (append-only, time-ordered). */
struct WordEventLog
{
    std::vector<WordEvent> events;

    void
    write(Cycle t, std::uint64_t mask, InstrTag tag = noInstrTag)
    {
        events.push_back({t, WordEvent::Kind::Write, mask, noDef,
                          false, 0, tag});
    }

    /** All-or-nothing read: consumed bits matter iff @p def is live. */
    void
    read(Cycle t, std::uint64_t consume_mask, DefId def)
    {
        events.push_back({t, WordEvent::Kind::Read, consume_mask, def,
                          false, 0});
    }

    /** Bit-exact read: consumer relevance refines the consumed bits. */
    void
    readExact(Cycle t, std::uint64_t consume_mask, DefId def,
              std::uint8_t rel_shift)
    {
        events.push_back({t, WordEvent::Kind::Read, consume_mask, def,
                          true, rel_shift});
    }
};

/**
 * Resolves a consuming definition to its relevance mask: 0 when the
 * definition is dynamically dead (never reaches program output),
 * otherwise the mask of its value bits that can still affect output.
 */
using LivenessResolver = std::function<std::uint64_t(DefId)>;

/**
 * Analysis-phase backward pass over one word's events.
 *
 * @param log       time-ordered events of the word
 * @param end_time  close of the lifetime window (eviction or horizon)
 * @param width     word width in bits (<= 64)
 * @param live      relevance resolver for read events
 */
WordLifetime buildWordLifetime(const WordEventLog &log, Cycle end_time,
                               unsigned width,
                               const LivenessResolver &live);

} // namespace mbavf

#endif // MBAVF_CORE_LIFETIME_BUILDER_HH
