/**
 * @file
 * Soft-error-rate calculation (paper Section IV-E, Eq. 3): the SER of
 * a structure is the sum over fault modes of the mode's raw FIT rate
 * times the structure's MB-AVF for that mode.
 */

#ifndef MBAVF_CORE_SER_HH
#define MBAVF_CORE_SER_HH

#include <vector>

#include "core/mbavf.hh"

namespace mbavf
{

/** One fault mode's contribution to a structure's error rates. */
struct ModeSer
{
    /** Fault mode width (bits); 1 = single-bit. */
    unsigned modeBits = 1;
    /** Raw fault rate of this mode, in FIT. */
    double fit = 0.0;
    /** Measured AVF fractions for this mode. */
    AvfFractions avf;

    double sdcSer() const { return fit * avf.sdc; }
    double trueDueSer() const { return fit * avf.trueDue; }
    double falseDueSer() const { return fit * avf.falseDue; }
    double dueSer() const { return fit * avf.due(); }
    double totalSer() const { return fit * avf.total(); }
};

/** Per-class SER totals for a structure (FIT). */
struct StructureSer
{
    double sdc = 0.0;
    double trueDue = 0.0;
    double falseDue = 0.0;

    double due() const { return trueDue + falseDue; }
    double total() const { return sdc + trueDue + falseDue; }
};

/** Sum per-mode contributions into structure totals (Eq. 3). */
StructureSer sumSer(const std::vector<ModeSer> &modes);

} // namespace mbavf

#endif // MBAVF_CORE_SER_HH
