#include "core/layout.hh"

#include "common/logging.hh"

namespace mbavf
{

namespace
{

/**
 * Cache data array, logical interleaving: one physical row per cache
 * line; column c belongs to check word (c mod I) of that line.
 */
class LogicalCacheArray : public PhysicalArray
{
  public:
    LogicalCacheArray(const CacheGeometry &geom, unsigned interleave)
        : geom_(geom), ileave_(interleave)
    {}

    std::uint64_t rows() const override { return geom_.numLines(); }
    std::uint64_t cols() const override { return geom_.lineBits(); }

    PhysBit
    at(std::uint64_t row, std::uint64_t col) const override
    {
        PhysBit b;
        b.container = row;
        b.bitInContainer = static_cast<std::uint32_t>(col);
        b.domain = row * ileave_ + (col % ileave_);
        return b;
    }

  private:
    CacheGeometry geom_;
    unsigned ileave_;
};

/**
 * Cache data array, way-physical interleaving: a physical row holds I
 * lines from different ways of the same set, bit-interleaved.
 */
class WayPhysicalCacheArray : public PhysicalArray
{
  public:
    WayPhysicalCacheArray(const CacheGeometry &geom, unsigned interleave)
        : geom_(geom), ileave_(interleave)
    {
        if (geom.ways % interleave != 0) {
            fatal("way-physical interleave ", interleave,
                  " must divide ways ", geom.ways);
        }
    }

    std::uint64_t
    rows() const override
    {
        return std::uint64_t(geom_.sets) * (geom_.ways / ileave_);
    }

    std::uint64_t
    cols() const override
    {
        return std::uint64_t(geom_.lineBits()) * ileave_;
    }

    PhysBit
    at(std::uint64_t row, std::uint64_t col) const override
    {
        unsigned way_groups = geom_.ways / ileave_;
        unsigned set = static_cast<unsigned>(row / way_groups);
        unsigned group = static_cast<unsigned>(row % way_groups);
        unsigned way = group * ileave_ +
            static_cast<unsigned>(col % ileave_);
        PhysBit b;
        b.container = geom_.lineId(set, way);
        b.bitInContainer = static_cast<std::uint32_t>(col / ileave_);
        b.domain = b.container;
        return b;
    }

  private:
    CacheGeometry geom_;
    unsigned ileave_;
};

/**
 * Cache data array, index-physical interleaving: a physical row holds
 * I lines at adjacent set indices (same way), bit-interleaved.
 */
class IndexPhysicalCacheArray : public PhysicalArray
{
  public:
    IndexPhysicalCacheArray(const CacheGeometry &geom,
                            unsigned interleave)
        : geom_(geom), ileave_(interleave)
    {
        if (geom.sets % interleave != 0) {
            fatal("index-physical interleave ", interleave,
                  " must divide sets ", geom.sets);
        }
    }

    std::uint64_t
    rows() const override
    {
        return std::uint64_t(geom_.sets / ileave_) * geom_.ways;
    }

    std::uint64_t
    cols() const override
    {
        return std::uint64_t(geom_.lineBits()) * ileave_;
    }

    PhysBit
    at(std::uint64_t row, std::uint64_t col) const override
    {
        unsigned set_group = static_cast<unsigned>(row / geom_.ways);
        unsigned way = static_cast<unsigned>(row % geom_.ways);
        unsigned set = set_group * ileave_ +
            static_cast<unsigned>(col % ileave_);
        PhysBit b;
        b.container = geom_.lineId(set, way);
        b.bitInContainer = static_cast<std::uint32_t>(col / ileave_);
        b.domain = b.container;
        return b;
    }

  private:
    CacheGeometry geom_;
    unsigned ileave_;
};

/** Vector register file array for both interleaving styles. */
class RegFileArray : public PhysicalArray
{
  public:
    RegFileArray(const RegFileGeometry &geom, RegInterleave style,
                 unsigned interleave)
        : geom_(geom), style_(style), ileave_(interleave)
    {
        if (style == RegInterleave::IntraThread &&
            geom.numRegs % interleave != 0) {
            fatal("intra-thread interleave ", interleave,
                  " must divide registers ", geom.numRegs);
        }
        if (style == RegInterleave::InterThread &&
            geom.numLanes % interleave != 0) {
            fatal("inter-thread interleave ", interleave,
                  " must divide lanes ", geom.numLanes);
        }
    }

    std::uint64_t
    rows() const override
    {
        return geom_.numContainers() / ileave_;
    }

    std::uint64_t
    cols() const override
    {
        return std::uint64_t(geom_.regBits) * ileave_;
    }

    PhysBit
    at(std::uint64_t row, std::uint64_t col) const override
    {
        unsigned slot, reg, lane;
        unsigned pick = static_cast<unsigned>(col % ileave_);
        if (style_ == RegInterleave::IntraThread) {
            // Row order: slot-major, then lane, then register group.
            unsigned reg_groups = geom_.numRegs / ileave_;
            std::uint64_t per_slot =
                std::uint64_t(geom_.numLanes) * reg_groups;
            slot = static_cast<unsigned>(row / per_slot);
            std::uint64_t rem = row % per_slot;
            lane = static_cast<unsigned>(rem / reg_groups);
            unsigned group = static_cast<unsigned>(rem % reg_groups);
            reg = group * ileave_ + pick;
        } else {
            // Row order: slot-major, then register, then lane group.
            unsigned lane_groups = geom_.numLanes / ileave_;
            std::uint64_t per_slot =
                std::uint64_t(geom_.numRegs) * lane_groups;
            slot = static_cast<unsigned>(row / per_slot);
            std::uint64_t rem = row % per_slot;
            reg = static_cast<unsigned>(rem / lane_groups);
            unsigned group = static_cast<unsigned>(rem % lane_groups);
            lane = group * ileave_ + pick;
        }
        PhysBit b;
        b.container = geom_.regId(slot, reg, lane);
        b.bitInContainer = static_cast<std::uint32_t>(col / ileave_);
        b.domain = b.container;
        return b;
    }

  private:
    RegFileGeometry geom_;
    RegInterleave style_;
    unsigned ileave_;
};

} // namespace

std::unique_ptr<PhysicalArray>
makeCacheArray(const CacheGeometry &geom, CacheInterleave style,
               unsigned interleave)
{
    if (interleave == 0)
        fatal("interleave factor must be >= 1");
    switch (style) {
      case CacheInterleave::Logical:
        return std::make_unique<LogicalCacheArray>(geom, interleave);
      case CacheInterleave::WayPhysical:
        if (interleave == 1)
            return std::make_unique<LogicalCacheArray>(geom, 1);
        return std::make_unique<WayPhysicalCacheArray>(geom, interleave);
      case CacheInterleave::IndexPhysical:
        if (interleave == 1)
            return std::make_unique<LogicalCacheArray>(geom, 1);
        return std::make_unique<IndexPhysicalCacheArray>(geom,
                                                         interleave);
    }
    panic("unreachable cache interleave style");
}

std::unique_ptr<PhysicalArray>
makeRegFileArray(const RegFileGeometry &geom, RegInterleave style,
                 unsigned interleave)
{
    if (interleave == 0)
        fatal("interleave factor must be >= 1");
    return std::make_unique<RegFileArray>(geom, style, interleave);
}

CacheInterleave
parseCacheInterleave(const std::string &name)
{
    if (name == "logical")
        return CacheInterleave::Logical;
    if (name == "way")
        return CacheInterleave::WayPhysical;
    if (name == "index")
        return CacheInterleave::IndexPhysical;
    fatal("unknown cache interleave style '", name, "'");
}

std::string
cacheInterleaveName(CacheInterleave style)
{
    switch (style) {
      case CacheInterleave::Logical: return "logical";
      case CacheInterleave::WayPhysical: return "way-phys";
      case CacheInterleave::IndexPhysical: return "index-phys";
    }
    return "?";
}

} // namespace mbavf
