#include "core/lifetime.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/check.hh"
#include "common/logging.hh"

namespace mbavf
{

void
WordLifetime::append(const LifeSegment &seg)
{
    // A backwards segment is always a caller bug: before this was
    // rejected it slipped through as a silent no-op in release
    // builds and corrupted aceCycles() totals when callers relied on
    // it being kept.
    MBAVF_CHECK(seg.end >= seg.begin, "backwards segment [", seg.begin,
                ", ", seg.end, ")");
    if (seg.end < seg.begin) {
        panic("WordLifetime::append backwards segment [", seg.begin,
              ", ", seg.end, ")");
    }
    if (seg.end == seg.begin)
        return;
    MBAVF_CHECK(segs_.empty() || seg.begin >= segs_.back().end,
                "segment [", seg.begin, ", ", seg.end,
                ") overlaps current end ", segs_.back().end);
    if (!segs_.empty() && seg.begin < segs_.back().end)
        panic("WordLifetime::append out of order");
    // Coalesce identical adjacent segments.
    if (!segs_.empty() && segs_.back().end == seg.begin &&
        segs_.back().aceMask == seg.aceMask &&
        segs_.back().readMask == seg.readMask) {
        segs_.back().end = seg.end;
        return;
    }
    segs_.push_back(seg);
}

AceClass
WordLifetime::classAt(unsigned bit, Cycle t) const
{
    auto it = std::upper_bound(
        segs_.begin(), segs_.end(), t,
        [](Cycle c, const LifeSegment &s) { return c < s.begin; });
    if (it == segs_.begin())
        return AceClass::Unace;
    --it;
    if (t >= it->end)
        return AceClass::Unace;
    if (bitAt(it->aceMask, bit))
        return AceClass::AceLive;
    if (bitAt(it->readMask, bit))
        return AceClass::ReadDead;
    return AceClass::Unace;
}

Cycle
WordLifetime::aceCycles(unsigned bit, Cycle horizon) const
{
    Cycle total = 0;
    for (const LifeSegment &s : segs_) {
        if (s.begin >= horizon)
            break;
        if (bitAt(s.aceMask, bit))
            total += std::min(s.end, horizon) - s.begin;
    }
    return total;
}

Cycle
WordLifetime::readDeadCycles(unsigned bit, Cycle horizon) const
{
    Cycle total = 0;
    for (const LifeSegment &s : segs_) {
        if (s.begin >= horizon)
            break;
        if (!bitAt(s.aceMask, bit) && bitAt(s.readMask, bit))
            total += std::min(s.end, horizon) - s.begin;
    }
    return total;
}

LifetimeStore::LifetimeStore(unsigned word_width,
                             unsigned words_per_container)
    : wordWidth_(word_width), wordsPerContainer_(words_per_container)
{
    if (word_width == 0 || word_width > 64)
        panic("LifetimeStore word width must be in [1, 64]");
    if (words_per_container == 0)
        panic("LifetimeStore needs at least one word per container");
}

ContainerLifetime &
LifetimeStore::container(std::uint64_t container)
{
    ContainerLifetime &c = containers_[container];
    if (c.words.empty())
        c.words.resize(wordsPerContainer_);
    return c;
}

const WordLifetime *
LifetimeStore::find(std::uint64_t container, unsigned word) const
{
    auto it = containers_.find(container);
    if (it == containers_.end())
        return nullptr;
    if (word >= it->second.words.size())
        panic("LifetimeStore word index ", word, " out of range");
    const WordLifetime &w = it->second.words[word];
    return w.empty() ? nullptr : &w;
}

const WordLifetime *
LifetimeStore::findBit(std::uint64_t container, unsigned bit_in_container,
                       unsigned &bit_in_word) const
{
    bit_in_word = bit_in_container % wordWidth_;
    return find(container, bit_in_container / wordWidth_);
}

} // namespace mbavf
