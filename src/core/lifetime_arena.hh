/**
 * @file
 * Flat structure-of-arrays view of a LifetimeStore.
 *
 * The MB-AVF sweep is bound by memory traffic: the per-mode engine
 * chases one std::vector<LifeSegment> per word, so consecutive
 * anchors touch scattered heap blocks. A LifetimeArena is built once
 * per store and lays every segment of every non-empty word out in
 * three contiguous arrays (begin cycles, end cycles, packed
 * ace/read masks), with a per-word (offset, count) pair on top, so
 * the sweep kernel reads sequential memory and words are addressed
 * by a dense 32-bit handle instead of a pointer.
 *
 * The arena is a read-only snapshot: mutating the source store after
 * construction is not reflected (and is what `mbavf_lint --arena`
 * exists to catch). Word handles are assigned in ascending
 * (container id, word index) order, so the layout is deterministic
 * for any given store content.
 *
 * All array accessors read through raw pointers into a refcounted
 * backing. The backing is either the vectors the snapshot
 * constructor filled, or a byte-for-byte image of the arena file
 * format mapped by core/arena_io — a loaded arena and a freshly
 * built one are indistinguishable to the kernel.
 */

#ifndef MBAVF_CORE_LIFETIME_ARENA_HH
#define MBAVF_CORE_LIFETIME_ARENA_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/lifetime.hh"

namespace mbavf
{

/** Packed per-segment classification masks (one load per slice). */
struct SegMasks
{
    std::uint64_t ace = 0;
    std::uint64_t read = 0;
};

class LifetimeArena
{
  public:
    /** Sentinel word handle: no lifetime (bit Unace forever). */
    static constexpr std::uint32_t noWord = 0xffffffffu;

    /**
     * Empty arena: zero words, zero containers, word width 0. Every
     * findBit()/findWord() answers noWord. This is the state an
     * arena_io loader fills in, and the degenerate snapshot of a
     * store that was never written.
     */
    LifetimeArena() = default;

    /** Snapshot @p store into flat arrays. */
    explicit LifetimeArena(const LifetimeStore &store);

    unsigned wordWidth() const { return wordWidth_; }
    unsigned wordsPerContainer() const { return wordsPerContainer_; }

    /** Number of non-empty words in the arena. */
    std::uint32_t numWords() const { return numWords_; }

    /** Total segments across all words. */
    std::size_t numSegments() const { return numSegments_; }

    /** Number of distinct containers holding at least one word. */
    std::size_t numContainers() const { return containerBase_.size(); }

    /**
     * Handle of a word, or noWord when the container or word was
     * never touched — or when @p word is at or beyond the configured
     * container width (such indices have no handle slot; answering
     * noWord mirrors "no lifetime" instead of reading out of
     * bounds). Mirrors LifetimeStore::find() for in-range queries.
     */
    std::uint32_t findWord(std::uint64_t container,
                           unsigned word) const;

    /**
     * Handle of the word holding a bit addressed within its
     * container; @p bit_in_word receives the bit index within the
     * word. Mirrors LifetimeStore::findBit(). On an empty arena
     * (word width 0) and for bits beyond the configured container
     * width, answers noWord instead of dividing by zero or indexing
     * out of range.
     */
    std::uint32_t
    findBit(std::uint64_t container, unsigned bit_in_container,
            unsigned &bit_in_word) const
    {
        if (wordWidth_ == 0) {
            bit_in_word = 0;
            return noWord;
        }
        bit_in_word = bit_in_container % wordWidth_;
        return findWord(container, bit_in_container / wordWidth_);
    }

    /**
     * Handle block of @p container: at least wordsPerContainer()
     * slots, slot w holding word w's handle (noWord when empty).
     * nullptr when the container was never touched. Row-resolution
     * loops use this to pay one hash lookup per container instead of
     * one per bit.
     */
    const std::uint32_t *
    handleBlock(std::uint64_t container) const
    {
        auto it = containerBase_.find(container);
        return it == containerBase_.end() ? nullptr
                                          : handles_ + it->second;
    }

    /** First segment slot of word @p w. */
    std::uint32_t offset(std::uint32_t w) const
    {
        return wordOffset_[w];
    }

    /** Segment count of word @p w. */
    std::uint32_t count(std::uint32_t w) const { return wordCount_[w]; }

    /** SoA segment columns, indexed by absolute segment slot. */
    const Cycle *begins() const { return segBegin_; }
    const Cycle *ends() const { return segEnd_; }
    const SegMasks *masks() const { return segMasks_; }

    /**
     * Per-segment producing-instruction column, or nullptr for an
     * untagged arena (one loaded from a version-1 file). Attribution
     * is the only consumer; the sweep kernels never read it.
     */
    const InstrTag *tags() const { return segTag_; }

    /** True when the per-segment attribution column is present. */
    bool tagged() const { return segTag_ != nullptr; }

    /** Source container id of word @p w (lint / diagnostics). */
    std::uint64_t wordContainer(std::uint32_t w) const
    {
        return wordContainer_[w];
    }

    /** Word index within its container of word @p w. */
    unsigned wordIndex(std::uint32_t w) const { return wordIndex_[w]; }

  private:
    /** core/arena_io: maps files into place of the owned vectors. */
    friend class ArenaIo;

    /** Owned backing for the built-from-store case. */
    struct Storage
    {
        std::vector<Cycle> segBegin;
        std::vector<Cycle> segEnd;
        std::vector<SegMasks> segMasks;
        std::vector<InstrTag> segTag;
        std::vector<std::uint32_t> wordOffset;
        std::vector<std::uint32_t> wordCount;
        std::vector<std::uint64_t> wordContainer;
        std::vector<std::uint32_t> wordIndex;
        std::vector<std::uint32_t> handles;
    };

    unsigned wordWidth_ = 0;
    unsigned wordsPerContainer_ = 0;
    std::uint32_t numWords_ = 0;
    std::size_t numSegments_ = 0;
    std::size_t numHandles_ = 0;

    /** Views into storage_ or into an arena_io file mapping. */
    const Cycle *segBegin_ = nullptr;
    const Cycle *segEnd_ = nullptr;
    const SegMasks *segMasks_ = nullptr;
    const InstrTag *segTag_ = nullptr;
    const std::uint32_t *wordOffset_ = nullptr;
    const std::uint32_t *wordCount_ = nullptr;
    const std::uint64_t *wordContainer_ = nullptr;
    const std::uint32_t *wordIndex_ = nullptr;
    const std::uint32_t *handles_ = nullptr;

    /**
     * container id -> base slot into handles_; the handle of word w
     * of the container is handles_[base + w] (noWord when empty).
     */
    std::unordered_map<std::uint64_t, std::uint32_t> containerBase_;

    /**
     * Backing keeping the views alive: Storage for snapshots, an
     * arena_io file mapping for loaded arenas. Shared so copies of
     * the arena alias one backing instead of re-fixing pointers.
     */
    std::shared_ptr<const void> backing_;
};

} // namespace mbavf

#endif // MBAVF_CORE_LIFETIME_ARENA_HH
