/**
 * @file
 * Flat structure-of-arrays view of a LifetimeStore.
 *
 * The MB-AVF sweep is bound by memory traffic: the per-mode engine
 * chases one std::vector<LifeSegment> per word, so consecutive
 * anchors touch scattered heap blocks. A LifetimeArena is built once
 * per store and lays every segment of every non-empty word out in
 * three contiguous arrays (begin cycles, end cycles, packed
 * ace/read masks), with a per-word (offset, count) pair on top, so
 * the sweep kernel reads sequential memory and words are addressed
 * by a dense 32-bit handle instead of a pointer.
 *
 * The arena is a read-only snapshot: mutating the source store after
 * construction is not reflected (and is what `mbavf_lint --arena`
 * exists to catch). Word handles are assigned in ascending
 * (container id, word index) order, so the layout is deterministic
 * for any given store content.
 */

#ifndef MBAVF_CORE_LIFETIME_ARENA_HH
#define MBAVF_CORE_LIFETIME_ARENA_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/lifetime.hh"

namespace mbavf
{

/** Packed per-segment classification masks (one load per slice). */
struct SegMasks
{
    std::uint64_t ace = 0;
    std::uint64_t read = 0;
};

class LifetimeArena
{
  public:
    /** Sentinel word handle: no lifetime (bit Unace forever). */
    static constexpr std::uint32_t noWord = 0xffffffffu;

    /** Snapshot @p store into flat arrays. */
    explicit LifetimeArena(const LifetimeStore &store);

    unsigned wordWidth() const { return wordWidth_; }
    unsigned wordsPerContainer() const { return wordsPerContainer_; }

    /** Number of non-empty words in the arena. */
    std::uint32_t
    numWords() const
    {
        return static_cast<std::uint32_t>(wordCount_.size());
    }

    /** Total segments across all words. */
    std::size_t numSegments() const { return segBegin_.size(); }

    /**
     * Handle of a word, or noWord when the container or word was
     * never touched. Mirrors LifetimeStore::find().
     */
    std::uint32_t findWord(std::uint64_t container,
                           unsigned word) const;

    /**
     * Handle of the word holding a bit addressed within its
     * container; @p bit_in_word receives the bit index within the
     * word. Mirrors LifetimeStore::findBit().
     */
    std::uint32_t
    findBit(std::uint64_t container, unsigned bit_in_container,
            unsigned &bit_in_word) const
    {
        bit_in_word = bit_in_container % wordWidth_;
        return findWord(container, bit_in_container / wordWidth_);
    }

    /** First segment slot of word @p w. */
    std::uint32_t offset(std::uint32_t w) const
    {
        return wordOffset_[w];
    }

    /** Segment count of word @p w. */
    std::uint32_t count(std::uint32_t w) const { return wordCount_[w]; }

    /** SoA segment columns, indexed by absolute segment slot. */
    const Cycle *begins() const { return segBegin_.data(); }
    const Cycle *ends() const { return segEnd_.data(); }
    const SegMasks *masks() const { return segMasks_.data(); }

    /** Source container id of word @p w (lint / diagnostics). */
    std::uint64_t wordContainer(std::uint32_t w) const
    {
        return wordContainer_[w];
    }

    /** Word index within its container of word @p w. */
    unsigned wordIndex(std::uint32_t w) const { return wordIndex_[w]; }

  private:
    unsigned wordWidth_;
    unsigned wordsPerContainer_;

    std::vector<Cycle> segBegin_;
    std::vector<Cycle> segEnd_;
    std::vector<SegMasks> segMasks_;

    std::vector<std::uint32_t> wordOffset_;
    std::vector<std::uint32_t> wordCount_;
    std::vector<std::uint64_t> wordContainer_;
    std::vector<unsigned> wordIndex_;

    /**
     * container id -> base slot into handles_; the handle of word w
     * of the container is handles_[base + w] (noWord when empty).
     */
    std::unordered_map<std::uint64_t, std::uint32_t> containerBase_;
    std::vector<std::uint32_t> handles_;
};

} // namespace mbavf

#endif // MBAVF_CORE_LIFETIME_ARENA_HH
