/**
 * @file
 * Raw fault-rate data: the per-technology-node multi-bit fault ratios
 * of Ibe et al. (paper Table I) and the per-mode FIT rates used in the
 * case study (paper Table III).
 */

#ifndef MBAVF_CORE_FAULT_RATES_HH
#define MBAVF_CORE_FAULT_RATES_HH

#include <array>
#include <cstdint>
#include <vector>

namespace mbavf
{

/** Maximum Mx1 fault-mode width tabulated (1x1 through 8x1). */
constexpr unsigned maxTabulatedMode = 8;

/**
 * Percent of all SRAM faults that are multi-bit faults of each width
 * along a wordline, for one technology node (Ibe et al., Table I).
 */
struct NodeFaultRatios
{
    unsigned designRuleNm = 0;
    /** percent[m-1] = percent of faults that are (m)x1, m = 1..8. */
    std::array<double, maxTabulatedMode> percent{};

    /** Percent of faults affecting more than one bit. */
    double
    multiBitPercent() const
    {
        double sum = 0;
        for (unsigned m = 1; m < maxTabulatedMode; ++m)
            sum += percent[m];
        return sum;
    }
};

/** Table I: fault-width ratios for 180nm through 22nm. */
const std::vector<NodeFaultRatios> &ibeFaultRatios();

/** Ratios for a given design rule; fatal when not tabulated. */
const NodeFaultRatios &ibeFaultRatiosFor(unsigned design_rule_nm);

/**
 * Table III: per-mode FIT rates for the case study. The paper sets a
 * total structure fault rate of 100 FIT and splits it across 1x1..8x1
 * modes using the 22nm ratios of Ibe et al.
 *
 * @param total_fit total structure fault rate (paper uses 100)
 * @return rates[m-1] = FIT of mode (m)x1
 */
std::array<double, maxTabulatedMode>
caseStudyFaultRates(double total_fit = 100.0);

} // namespace mbavf

#endif // MBAVF_CORE_FAULT_RATES_HH
