/**
 * @file
 * Streaming statistics accumulators (mean, geomean, min/max).
 */

#ifndef MBAVF_COMMON_STATS_HH
#define MBAVF_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace mbavf
{

/** A binomial proportion with its confidence bounds. */
struct WilsonInterval
{
    double point = 0.0;
    double low = 0.0;
    double high = 0.0;
};

/**
 * Wilson score interval for @p k successes in @p n Bernoulli trials
 * at critical value @p z (1.96 ~ 95%). Unlike the normal
 * approximation it stays inside [0, 1] and behaves at k = 0 / k = n,
 * which is exactly the regime of rare campaign outcomes (a handful
 * of Hangs in 100k trials).
 *
 * Total over its whole domain: n = 0 (the zero-trial tally a
 * freshly-resumed or fully-degraded campaign can print) yields the
 * vacuous [0, 1] rather than 0/0 NaN, and k > n (conceivable only
 * from a corrupt merge) clamps to k = n — the result is always three
 * finite numbers inside [0, 1], so a tally can never leak NaN/inf
 * into a manifest.
 */
inline WilsonInterval
wilsonInterval(std::uint64_t k, std::uint64_t n, double z = 1.96)
{
    if (n == 0)
        return {0.0, 0.0, 1.0};
    if (k > n)
        k = n; // p > 1 would put a negative under the sqrt below
    const double nn = static_cast<double>(n);
    const double p = static_cast<double>(k) / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    const double center = (p + z2 / (2.0 * nn)) / denom;
    const double half = (z / denom) *
        std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
    WilsonInterval w;
    w.point = p;
    w.low = std::max(0.0, center - half);
    w.high = std::min(1.0, center + half);
    return w;
}

/** Streaming arithmetic summary of a sample set. */
class RunningStats
{
  public:
    void
    add(double x)
    {
        ++n_;
        sum_ += x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        if (x > 0)
            logSum_ += std::log(x);
        else
            hasNonPositive_ = true;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /**
     * Geometric mean; 0 when any sample was non-positive (geomean is
     * undefined there, and AVF ratios of zero should read as zero).
     */
    double
    geomean() const
    {
        if (!n_ || hasNonPositive_)
            return 0.0;
        return std::exp(logSum_ / n_);
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double logSum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    bool hasNonPositive_ = false;
};

} // namespace mbavf

#endif // MBAVF_COMMON_STATS_HH
