/**
 * @file
 * Streaming statistics accumulators (mean, geomean, min/max).
 */

#ifndef MBAVF_COMMON_STATS_HH
#define MBAVF_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace mbavf
{

/** Streaming arithmetic summary of a sample set. */
class RunningStats
{
  public:
    void
    add(double x)
    {
        ++n_;
        sum_ += x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        if (x > 0)
            logSum_ += std::log(x);
        else
            hasNonPositive_ = true;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /**
     * Geometric mean; 0 when any sample was non-positive (geomean is
     * undefined there, and AVF ratios of zero should read as zero).
     */
    double
    geomean() const
    {
        if (!n_ || hasNonPositive_)
            return 0.0;
        return std::exp(logSum_ / n_);
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double logSum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    bool hasNonPositive_ = false;
};

} // namespace mbavf

#endif // MBAVF_COMMON_STATS_HH
