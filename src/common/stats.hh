/**
 * @file
 * Streaming statistics accumulators (mean, geomean, min/max).
 */

#ifndef MBAVF_COMMON_STATS_HH
#define MBAVF_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace mbavf
{

/** A binomial proportion with its confidence bounds. */
struct WilsonInterval
{
    double point = 0.0;
    double low = 0.0;
    double high = 0.0;
};

/**
 * Wilson score interval for @p k successes in @p n Bernoulli trials
 * at critical value @p z (1.96 ~ 95%). Unlike the normal
 * approximation it stays inside [0, 1] and behaves at k = 0 / k = n,
 * which is exactly the regime of rare campaign outcomes (a handful
 * of Hangs in 100k trials).
 *
 * Total over its whole domain: n = 0 (the zero-trial tally a
 * freshly-resumed or fully-degraded campaign can print) yields the
 * vacuous [0, 1] rather than 0/0 NaN, and k > n (conceivable only
 * from a corrupt merge) clamps to k = n — the result is always three
 * finite numbers inside [0, 1], so a tally can never leak NaN/inf
 * into a manifest.
 */
inline WilsonInterval
wilsonInterval(std::uint64_t k, std::uint64_t n, double z = 1.96)
{
    if (n == 0)
        return {0.0, 0.0, 1.0};
    if (k > n)
        k = n; // p > 1 would put a negative under the sqrt below
    const double nn = static_cast<double>(n);
    const double p = static_cast<double>(k) / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    const double center = (p + z2 / (2.0 * nn)) / denom;
    const double half = (z / denom) *
        std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
    WilsonInterval w;
    w.point = p;
    w.low = std::max(0.0, center - half);
    w.high = std::min(1.0, center + half);
    return w;
}

/**
 * One stratum's contribution to a stratified binomial estimate
 * (DESIGN.md Section 16). Either the stratum was sampled (@p trials
 * Bernoulli draws with @p successes hits) or level-one analysis
 * proved its rate exactly (@p certain, e.g. a provably-Unace stratum
 * whose Masked rate is exactly 1 and whose SDC rate is exactly 0).
 */
struct StratumStat
{
    /** Share of the whole fault space this stratum covers. */
    double weight = 0.0;
    std::uint64_t successes = 0;
    std::uint64_t trials = 0;
    /** Rate known exactly without sampling (skipped stratum). */
    bool certain = false;
    /** The exact rate when @p certain. */
    double certainRate = 0.0;
};

/**
 * Stratified combined estimate: per-stratum Wilson intervals folded
 * into one weighted interval.
 *
 *   point = sum_h w_h p_h
 *   half  = sqrt(sum_h (w_h (high_h - low_h) / 2)^2)
 *
 * centered on the point estimate — independent strata, so
 * half-widths add in quadrature, which is where the trial reduction
 * comes from: a certain stratum contributes its exact rate with zero
 * width, and a sampled stratum's width scales by its (small) weight.
 *
 * Deliberately centered on the point, not on the weighted Wilson
 * centers: a Wilson center sits at (p + z^2/2n) / (1 + z^2/n), which
 * for a small-n stratum is pulled far toward 1/2, and summing that
 * bias across hundreds of lightly-sampled strata would shift (and so
 * widen) the combined interval by many times its actual half-width.
 * The per-stratum Wilson *half-widths* keep the small-n uncertainty;
 * only the center bias is dropped.
 *
 * Degenerate strata are total: a certain stratum is a zero-width
 * point regardless of trials; an unskipped stratum with zero trials
 * contributes the vacuous [0, 1] Wilson interval scaled by its
 * weight; an empty stratum list yields the vacuous {0, 0, 1}. The
 * result is clamped so low <= point <= high and stays inside [0, 1]
 * — no NaN/inf can reach a manifest.
 */
inline WilsonInterval
stratifiedInterval(const std::vector<StratumStat> &strata,
                   double z = 1.96)
{
    if (strata.empty())
        return {0.0, 0.0, 1.0};
    double point = 0.0;
    double var = 0.0;
    for (const StratumStat &s : strata) {
        if (s.weight <= 0.0)
            continue;
        if (s.certain) {
            point += s.weight * s.certainRate;
            continue;
        }
        const WilsonInterval w =
            wilsonInterval(s.successes, s.trials, z);
        point += s.weight * w.point;
        const double half = s.weight * 0.5 * (w.high - w.low);
        var += half * half;
    }
    const double half = std::sqrt(var);
    WilsonInterval out;
    out.point = std::min(1.0, std::max(0.0, point));
    out.low = std::max(0.0, out.point - half);
    out.high = std::min(1.0, out.point + half);
    return out;
}

/**
 * The effective-trials multiplier's numerator: the smallest uniform
 * (unstratified) trial count whose Wilson interval at observed rate
 * @p rate is no wider than @p width. A stratified campaign that
 * injected n trials and achieved width W therefore did the work of
 * effectiveUniformTrials(W, p) uniform trials. Capped at @p cap
 * (width 0 — e.g. a pure-Unace campaign — would otherwise be
 * unbounded).
 */
inline std::uint64_t
effectiveUniformTrials(double width, double rate, double z = 1.96,
                       std::uint64_t cap = std::uint64_t(1) << 40)
{
    if (!(width > 0.0))
        return cap;
    const auto wide_enough = [&](std::uint64_t n) {
        const std::uint64_t k = static_cast<std::uint64_t>(
            rate * static_cast<double>(n) + 0.5);
        const WilsonInterval w = wilsonInterval(k, n, z);
        return w.high - w.low <= width;
    };
    std::uint64_t lo = 1;
    std::uint64_t hi = cap;
    if (wide_enough(lo))
        return lo;
    if (!wide_enough(hi))
        return cap;
    // Wilson width shrinks ~1/sqrt(n); the k-rounding jitter is far
    // smaller than the factor-2 bracket a bisection step keeps.
    while (lo + 1 < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        (wide_enough(mid) ? hi : lo) = mid;
    }
    return hi;
}

/** Streaming arithmetic summary of a sample set. */
class RunningStats
{
  public:
    void
    add(double x)
    {
        ++n_;
        sum_ += x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        if (x > 0)
            logSum_ += std::log(x);
        else
            hasNonPositive_ = true;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /**
     * Geometric mean; 0 when any sample was non-positive (geomean is
     * undefined there, and AVF ratios of zero should read as zero).
     */
    double
    geomean() const
    {
        if (!n_ || hasNonPositive_)
            return 0.0;
        return std::exp(logSum_ / n_);
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double logSum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    bool hasNonPositive_ = false;
};

} // namespace mbavf

#endif // MBAVF_COMMON_STATS_HH
