/**
 * @file
 * Small bit-manipulation helpers used throughout mbavf.
 */

#ifndef MBAVF_COMMON_BITS_HH
#define MBAVF_COMMON_BITS_HH

#include <bit>
#include <cstdint>

namespace mbavf
{

/** Number of set bits. */
inline int
popCount(std::uint64_t value)
{
    return std::popcount(value);
}

/** True when @p value is a power of two (and nonzero). */
inline bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2; @p value must be nonzero. */
inline unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/** Extract bit @p pos of @p value. */
inline bool
bitAt(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/** Mask with the low @p n bits set (n in [0, 64]). */
inline std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t(0) : ((std::uint64_t(1) << n) - 1);
}

/**
 * Saturating unsigned add: @p a + @p b, clamped to UINT64_MAX on
 * overflow. Cycle arithmetic near the top of the range (horizons at
 * or near UINT64_MAX, file-offset math on untrusted headers) must
 * clamp instead of wrapping past the value it is compared against.
 */
inline std::uint64_t
satAdd(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t sum = 0;
    if (__builtin_add_overflow(a, b, &sum))
        return ~std::uint64_t(0);
    return sum;
}

/** Saturating unsigned multiply: clamps to UINT64_MAX on overflow. */
inline std::uint64_t
satMul(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t product = 0;
    if (__builtin_mul_overflow(a, b, &product))
        return ~std::uint64_t(0);
    return product;
}

} // namespace mbavf

#endif // MBAVF_COMMON_BITS_HH
