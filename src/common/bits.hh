/**
 * @file
 * Small bit-manipulation helpers used throughout mbavf.
 */

#ifndef MBAVF_COMMON_BITS_HH
#define MBAVF_COMMON_BITS_HH

#include <bit>
#include <cstdint>

namespace mbavf
{

/** Number of set bits. */
inline int
popCount(std::uint64_t value)
{
    return std::popcount(value);
}

/** True when @p value is a power of two (and nonzero). */
inline bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2; @p value must be nonzero. */
inline unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/** Extract bit @p pos of @p value. */
inline bool
bitAt(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/** Mask with the low @p n bits set (n in [0, 64]). */
inline std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t(0) : ((std::uint64_t(1) << n) - 1);
}

} // namespace mbavf

#endif // MBAVF_COMMON_BITS_HH
