/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic components (workload inputs, fault injection sites)
 * draw from Rng seeded explicitly, so every experiment is exactly
 * reproducible from its configuration.
 */

#ifndef MBAVF_COMMON_RNG_HH
#define MBAVF_COMMON_RNG_HH

#include <cstdint>

namespace mbavf
{

/**
 * One SplitMix64 mixing step: a bijective avalanche of @p x. Used to
 * derive independent per-trial RNG seeds from (base seed, index) —
 * see splitMix64(base, index) — and internally by Rng seeding.
 */
inline std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Deterministic per-index seed stream: the seed of trial @p index
 * under campaign base seed @p base. Any single trial is reproducible
 * in isolation from (base, index) alone, independent of how many
 * trials run or in what order.
 */
inline std::uint64_t
splitMix64(std::uint64_t base, std::uint64_t index)
{
    return splitMix64(base + index * 0x9e3779b97f4a7c15ull);
}

/**
 * xorshift128+ generator: fast, simple, and adequate for workload
 * synthesis and injection-site sampling.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 expansion of the seed into two nonzero words.
        std::uint64_t z = seed;
        s0_ = splitMix(z);
        s1_ = splitMix(z);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    splitMix(std::uint64_t &state)
    {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace mbavf

#endif // MBAVF_COMMON_RNG_HH
