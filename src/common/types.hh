/**
 * @file
 * Fundamental scalar types shared across the mbavf library.
 */

#ifndef MBAVF_COMMON_TYPES_HH
#define MBAVF_COMMON_TYPES_HH

#include <cstdint>

namespace mbavf
{

/** Simulation time in cycles. */
using Cycle = std::uint64_t;

/** Byte address in the simulated flat memory. */
using Addr = std::uint64_t;

/** Identifier of a protection domain (ECC/parity word). */
using DomainId = std::uint64_t;

/** Invalid/absent domain marker. */
constexpr DomainId invalidDomain = ~DomainId(0);

/** Identifier of a dynamic value definition in the dataflow trace. */
using DefId = std::uint64_t;

/** Marker for "no producing definition" (e.g., constants). */
constexpr DefId noDef = ~DefId(0);

/**
 * Packed identity of the static instruction that produced a value:
 * kernel launch id in the high 16 bits, wave-local program counter in
 * the low 16 bits. The attribution passes (src/analyze) use it to
 * walk MB-AVF contributions back to program locations.
 */
using InstrTag = std::uint32_t;

/** Marker for "no producing instruction" (fills, pre-run garbage). */
constexpr InstrTag noInstrTag = ~InstrTag(0);

/**
 * Pack (kernel launch id, wave-local pc) into an InstrTag. Both
 * fields saturate; the pc saturates one short of full so a saturated
 * tag can never collide with noInstrTag.
 */
constexpr InstrTag
makeInstrTag(unsigned kernel, unsigned pc)
{
    const InstrTag k = kernel < 0xFFFFu ? kernel : 0xFFFFu;
    const InstrTag p = pc < 0xFFFEu ? pc : 0xFFFEu;
    return (k << 16) | p;
}

/** Kernel launch id of @p tag. */
constexpr unsigned tagKernel(InstrTag tag) { return tag >> 16; }

/** Wave-local program counter of @p tag. */
constexpr unsigned tagPc(InstrTag tag) { return tag & 0xFFFFu; }

} // namespace mbavf

#endif // MBAVF_COMMON_TYPES_HH
