/**
 * @file
 * Fundamental scalar types shared across the mbavf library.
 */

#ifndef MBAVF_COMMON_TYPES_HH
#define MBAVF_COMMON_TYPES_HH

#include <cstdint>

namespace mbavf
{

/** Simulation time in cycles. */
using Cycle = std::uint64_t;

/** Byte address in the simulated flat memory. */
using Addr = std::uint64_t;

/** Identifier of a protection domain (ECC/parity word). */
using DomainId = std::uint64_t;

/** Invalid/absent domain marker. */
constexpr DomainId invalidDomain = ~DomainId(0);

/** Identifier of a dynamic value definition in the dataflow trace. */
using DefId = std::uint64_t;

/** Marker for "no producing definition" (e.g., constants). */
constexpr DefId noDef = ~DefId(0);

} // namespace mbavf

#endif // MBAVF_COMMON_TYPES_HH
