/**
 * @file
 * Error and status reporting helpers, following the gem5 fatal/panic
 * convention: panic() for internal invariant violations, fatal() for
 * user-caused conditions that prevent continuing.
 */

#ifndef MBAVF_COMMON_LOGGING_HH
#define MBAVF_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mbavf
{

namespace detail
{

/** Stream-compose a message from variadic pieces. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    // The void cast keeps the empty-pack instantiation (fold
    // collapses to plain `os`) from tripping -Wunused-value.
    (void)(os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Abort on an internal error (a bug in mbavf itself).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::composeMessage(args...).c_str());
    std::abort();
}

/**
 * Exit on a user-caused error (bad configuration or arguments).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::composeMessage(args...).c_str());
    std::exit(1);
}

/** Alert the user to questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::composeMessage(args...).c_str());
}

/** Status message with no connotation of incorrect behavior. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::fprintf(stderr, "info: %s\n",
                 detail::composeMessage(args...).c_str());
}

} // namespace mbavf

#endif // MBAVF_COMMON_LOGGING_HH
