/**
 * @file
 * Shared primitives for crash-consistent plain-text journals.
 *
 * Two subsystems keep append-style progress journals: the injection
 * campaign journal (inject/journal.hh) and the analysis-service
 * queue journal (serve/queue.hh). Both follow the same discipline:
 *
 * - a file is only ever replaced via write-to-temporary + fsync +
 *   atomic rename, so a reader observes either the previous or the
 *   new complete snapshot, never a torn one;
 * - on load, a final line missing its newline is a truncated
 *   in-flight record and is silently dropped; any other malformation
 *   is rejected outright;
 * - header fields are space-separated key=value tokens and integers
 *   parse strictly (no sign, no trailing garbage, no overflow).
 *
 * This header is the one implementation of that discipline so the
 * two journals cannot drift apart in crash semantics.
 */

#ifndef MBAVF_COMMON_JOURNAL_IO_HH
#define MBAVF_COMMON_JOURNAL_IO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mbavf
{

/**
 * Strict decimal std::uint64_t parse: nonempty, digits only (no
 * sign, no hex, no trailing garbage), no overflow. Returns false on
 * anything else; @p value is valid only on true.
 */
bool parseJournalU64(const std::string &token, std::uint64_t &value);

/** Split @p line on whitespace into tokens. */
std::vector<std::string> splitJournalTokens(const std::string &line);

/**
 * Strip "key=" from @p token into @p value; false when the token
 * does not start with exactly that key and '='.
 */
bool journalKeyValue(const std::string &token, const char *key,
                     std::string &value);

/**
 * Read @p path into newline-terminated lines. A final line missing
 * its newline is a truncated in-flight record: it is dropped so the
 * prefix before it replays safely. False + @p error when the file
 * cannot be opened.
 */
bool readCompleteLines(const std::string &path,
                       std::vector<std::string> &lines,
                       std::string &error);

/**
 * Atomically replace @p path with @p text: write to "<path>.tmp",
 * fsync (the rename must never become durable before the bytes it
 * points at), then rename over @p path. False + @p error on I/O
 * failure; the temporary is cleaned up on any failure path.
 */
bool atomicWriteFile(const std::string &path, const std::string &text,
                     std::string &error);

/**
 * FNV-1a 64-bit hash of @p bytes — the content hash used for
 * cache keys and spec identity. Stable across platforms and runs.
 */
std::uint64_t fnv1a64(const void *bytes, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/** fnv1a64 over a string. */
std::uint64_t fnv1a64(const std::string &text,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/**
 * FNV-1a 64-bit hash of @p path's contents. False + @p error when
 * the file cannot be read; @p out is valid only on true.
 */
bool hashFileContents(const std::string &path, std::uint64_t &out,
                      std::string &error);

/** Lowercase 16-digit hex rendering of @p value (cache file names). */
std::string hex64(std::uint64_t value);

} // namespace mbavf

#endif // MBAVF_COMMON_JOURNAL_IO_HH
