#include "common/args.hh"

#include <cstdlib>
#include <string_view>

#include "common/logging.hh"

namespace mbavf
{

Args::Args(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg.substr(0, 2) != "--") {
            warn("ignoring positional argument '", std::string(arg), "'");
            continue;
        }
        arg.remove_prefix(2);
        auto eq = arg.find('=');
        if (eq == std::string_view::npos) {
            values_[std::string(arg)] = "1";
        } else {
            values_[std::string(arg.substr(0, eq))] =
                std::string(arg.substr(eq + 1));
        }
    }
}

bool
Args::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Args::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Args::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values_.find(key);
    return it == values_.end()
        ? fallback
        : std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Args::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    return it == values_.end()
        ? fallback
        : std::strtod(it->second.c_str(), nullptr);
}

bool
Args::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    return it->second != "0" && it->second != "false";
}

} // namespace mbavf
