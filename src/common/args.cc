#include "common/args.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/logging.hh"

namespace mbavf
{

namespace
{

/** Classic two-row Levenshtein edit distance. */
std::size_t
editDistance(std::string_view a, std::string_view b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

Args::Args(int argc, char **argv, Positional positional)
{
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg.substr(0, 2) != "--") {
            if (positional == Positional::Allow) {
                positional_.emplace_back(arg);
                continue;
            }
            fatal("positional argument '", std::string(arg),
                  "' (options are --key=value; did you mean --",
                  std::string(arg), "=... ?)");
        }
        arg.remove_prefix(2);
        const auto eq = arg.find('=');
        const bool has_value = eq != std::string_view::npos;
        std::string key(has_value ? arg.substr(0, eq) : arg);
        std::string value(has_value ? arg.substr(eq + 1)
                                    : std::string_view("1"));
        if (key.empty())
            fatal("malformed option '", std::string(argv[i]), "'");
        if (!values_.emplace(key, std::move(value)).second)
            fatal("option --", key, " given more than once");
    }
}

void
Args::requireKnown(std::initializer_list<const char *> known) const
{
    for (const auto &[key, value] : values_) {
        bool found = false;
        for (const char *candidate : known)
            found = found || key == candidate;
        if (found)
            continue;
        const char *best = nullptr;
        std::size_t best_dist = 3; // suggest only within distance 2
        for (const char *candidate : known) {
            const std::size_t d = editDistance(key, candidate);
            if (d < best_dist) {
                best_dist = d;
                best = candidate;
            }
        }
        if (best)
            fatal("unknown option --", key, " (did you mean --", best,
                  "?)");
        fatal("unknown option --", key, " (see --help)");
    }
}

bool
Args::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Args::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Args::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &value = it->second;
    errno = 0;
    char *end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 0);
    if (value.empty() || end != value.c_str() + value.size()) {
        fatal("option --", key, "=", value,
              " is not an integer (digits only; did you mistype a "
              "digit?)");
    }
    if (errno == ERANGE) {
        fatal("option --", key, "=", value,
              " is out of range for a 64-bit integer");
    }
    return parsed;
}

std::int64_t
Args::getIntInRange(const std::string &key, std::int64_t fallback,
                    std::int64_t min, std::int64_t max) const
{
    const std::int64_t value = getInt(key, fallback);
    if (value < min || value > max) {
        fatal("option --", key, "=", value, " is outside [", min,
              ", ", max, "]");
    }
    return value;
}

double
Args::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &value = it->second;
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size()) {
        fatal("option --", key, "=", value,
              " is not a number (did you mistype a digit?)");
    }
    if (errno == ERANGE) {
        fatal("option --", key, "=", value,
              " is out of range for a double");
    }
    return parsed;
}

bool
Args::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    return it->second != "0" && it->second != "false";
}

} // namespace mbavf
