#include "common/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace mbavf
{

namespace
{

/**
 * One runTasks() invocation: a counted range of task indices claimed
 * with an atomic cursor. The batch stays in the pool's queue until
 * every index is claimed; completion is tracked separately so the
 * submitter can wait for in-flight tasks after the queue entry is
 * gone.
 */
struct Batch
{
    std::size_t numTasks = 0;
    const std::function<void(std::size_t)> *task = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
};

class Pool
{
  public:
    /**
     * MBAVF_THREADS is read (and validated) here rather than in
     * ensureStartedLocked(): a fatal() there would std::exit() with
     * mutex_ held and self-deadlock in this static object's
     * destructor. During construction no destructor is registered
     * yet, so the fatal exits cleanly.
     */
    Pool() : envThreads_(envThreads()) {}

    ~Pool() { stopWorkers(); }

    unsigned
    width()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ensureStartedLocked();
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    void
    resize(unsigned n)
    {
        stopWorkers();
        std::lock_guard<std::mutex> lock(mutex_);
        requested_ = n;
        started_ = false;
    }

    unsigned
    ensureAtLeast(unsigned n)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ensureStartedLocked();
            if (workers_.size() + 1 >= n)
                return static_cast<unsigned>(workers_.size()) + 1;
        }
        resize(n);
        return width();
    }

    void
    run(std::size_t num_tasks,
        const std::function<void(std::size_t)> &task)
    {
        if (num_tasks == 0)
            return;
        auto batch = std::make_shared<Batch>();
        batch->numTasks = num_tasks;
        batch->task = &task;
        batch->remaining.store(num_tasks, std::memory_order_relaxed);

        bool serial;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ensureStartedLocked();
            serial = workers_.empty();
            if (!serial)
                queue_.push_back(batch);
        }
        if (serial) {
            // No workers: execute inline, no queue round-trip.
            for (std::size_t i = 0; i < num_tasks; ++i) {
                (*batch->task)(i);
                batch->remaining.fetch_sub(
                    1, std::memory_order_acq_rel);
            }
            return;
        }
        cv_.notify_all();

        // The submitter participates: drain its own batch first,
        // then help whatever else is queued (a nested batch waiting
        // here must keep the pool moving), then sleep until done.
        while (batch->remaining.load(std::memory_order_acquire) > 0) {
            if (claimAndRun(*batch))
                continue;
            if (helpAny())
                continue;
            std::unique_lock<std::mutex> lock(mutex_);
            if (batch->remaining.load(std::memory_order_acquire) ==
                    0 ||
                !queue_.empty()) {
                continue;
            }
            doneCv_.wait(lock, [&] {
                return batch->remaining.load(
                           std::memory_order_acquire) == 0 ||
                    !queue_.empty();
            });
        }
    }

  private:
    void
    ensureStartedLocked()
    {
        if (started_)
            return;
        started_ = true;
        unsigned n = requested_;
        if (n == 0)
            n = envThreads_;
        if (n == 0)
            n = std::max(1u, std::thread::hardware_concurrency());
        stop_ = false;
        for (unsigned t = 0; t + 1 < n; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }

    static unsigned
    envThreads()
    {
        const char *env = std::getenv("MBAVF_THREADS");
        if (!env || !*env)
            return 0;
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || v < 0)
            fatal("MBAVF_THREADS must be a nonnegative integer, got '",
                  env, "'");
        return static_cast<unsigned>(v);
    }

    /** Claim one task of @p batch; false when none are unclaimed. */
    bool
    claimAndRun(Batch &batch)
    {
        std::size_t i =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.numTasks)
            return false;
        if (i + 1 == batch.numTasks)
            dropFromQueue(&batch);
        (*batch.task)(i);
        if (batch.remaining.fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mutex_);
            doneCv_.notify_all();
        }
        return true;
    }

    /** Run one task from any queued batch; false if queue is idle. */
    bool
    helpAny()
    {
        std::shared_ptr<Batch> batch;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const auto &b : queue_) {
                if (b->next.load(std::memory_order_relaxed) <
                    b->numTasks) {
                    batch = b;
                    break;
                }
            }
        }
        if (!batch)
            return false;
        return claimAndRun(*batch);
    }

    void
    dropFromQueue(const Batch *batch)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->get() == batch) {
                queue_.erase(it);
                break;
            }
        }
    }

    void
    workerLoop()
    {
        for (;;) {
            std::shared_ptr<Batch> batch;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return stop_ || !queue_.empty();
                });
                if (stop_)
                    return;
                for (const auto &b : queue_) {
                    if (b->next.load(std::memory_order_relaxed) <
                        b->numTasks) {
                        batch = b;
                        break;
                    }
                }
                if (!batch) {
                    // Queued batches are fully claimed but not yet
                    // retired by their last runner; yield the lock
                    // and re-check.
                    lock.unlock();
                    std::this_thread::yield();
                    continue;
                }
            }
            while (claimAndRun(*batch)) {
            }
        }
    }

    void
    stopWorkers()
    {
        std::vector<std::thread> workers;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
            workers.swap(workers_);
        }
        cv_.notify_all();
        for (std::thread &w : workers)
            w.join();
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = false;
    }

    std::mutex mutex_;
    std::condition_variable cv_;     ///< wakes idle workers
    std::condition_variable doneCv_; ///< wakes waiting submitters
    std::deque<std::shared_ptr<Batch>> queue_;
    std::vector<std::thread> workers_;
    const unsigned envThreads_; ///< MBAVF_THREADS (0 = unset)
    unsigned requested_ = 0; ///< setParallelThreads value (0 = auto)
    bool started_ = false;
    bool stop_ = false;
};

Pool &
pool()
{
    static Pool instance;
    return instance;
}

} // namespace

unsigned
parallelThreads()
{
    return pool().width();
}

unsigned
parallelWorkerId()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
setParallelThreads(unsigned n)
{
    pool().resize(n);
}

unsigned
ensureParallelThreads(unsigned n)
{
    if (n == 0)
        return pool().width();
    return pool().ensureAtLeast(n);
}

void
runTasks(std::size_t num_tasks,
         const std::function<void(std::size_t)> &task)
{
    pool().run(num_tasks, task);
}

void
parallelFor(std::uint64_t begin, std::uint64_t end,
            std::uint64_t grain,
            const std::function<void(std::uint64_t, std::uint64_t)>
                &body)
{
    if (begin >= end)
        return;
    if (grain == 0)
        grain = 1;
    const std::uint64_t range = end - begin;
    const std::size_t chunks =
        static_cast<std::size_t>((range + grain - 1) / grain);
    runTasks(chunks, [&](std::size_t c) {
        std::uint64_t lo = begin + grain * c;
        std::uint64_t hi = std::min(end, lo + grain);
        body(lo, hi);
    });
}

} // namespace mbavf
