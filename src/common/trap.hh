/**
 * @file
 * SimTrap: the recoverable error channel for fault-reachable
 * validity checks.
 *
 * panic() (common/logging.hh) aborts the process and is reserved for
 * genuine host invariants — conditions no simulated program, however
 * corrupted, can cause. Checks that injected faults *can* reach (an
 * out-of-range or unaligned memory access from a flipped address
 * register, a divergence-stack underflow from corrupted control
 * flow, a watchdog budget blown by a runaway loop) raise a SimTrap
 * instead. The injection campaign catches SimTrap at the trial
 * boundary and classifies the trial Crash (or Hang for watchdog
 * codes), so one corrupted trial never takes down its batch.
 *
 * Every trap carries a stable dotted code (the same style as the
 * src/check report codes), so tests and the journal lint can assert
 * on the exact event class without string-matching prose.
 */

#ifndef MBAVF_COMMON_TRAP_HH
#define MBAVF_COMMON_TRAP_HH

#include <exception>
#include <string>
#include <string_view>

#include "common/logging.hh"

namespace mbavf
{

/** Stable trap codes. Extend here and in knownTrapCodes(). */
namespace trapcode
{

inline constexpr const char *memOob = "trap.mem.oob";
inline constexpr const char *memAlign = "trap.mem.align";
inline constexpr const char *gpuBadReg = "trap.gpu.badreg";
inline constexpr const char *gpuDivStack = "trap.gpu.divstack";
inline constexpr const char *cacheSize = "trap.cache.size";
inline constexpr const char *cacheStraddle = "trap.cache.straddle";
inline constexpr const char *watchdogInstrs = "trap.watchdog.instrs";
inline constexpr const char *watchdogCycles = "trap.watchdog.cycles";
/** A std::exception other than SimTrap escaped a trial. */
inline constexpr const char *hostException = "trap.host.exception";
/** A non-std::exception object escaped a trial. */
inline constexpr const char *hostUnknown = "trap.host.unknown";

} // namespace trapcode

/** All codes a SimTrap (or trial containment) can carry. */
inline const char *const *
knownTrapCodes(std::size_t &count)
{
    static const char *const codes[] = {
        trapcode::memOob,         trapcode::memAlign,
        trapcode::gpuBadReg,      trapcode::gpuDivStack,
        trapcode::cacheSize,      trapcode::cacheStraddle,
        trapcode::watchdogInstrs, trapcode::watchdogCycles,
        trapcode::hostException,  trapcode::hostUnknown,
    };
    count = sizeof(codes) / sizeof(codes[0]);
    return codes;
}

/** True when @p code is one of the stable trap codes. */
inline bool
isKnownTrapCode(std::string_view code)
{
    std::size_t n = 0;
    const char *const *codes = knownTrapCodes(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (code == codes[i])
            return true;
    }
    return false;
}

/** True for the codes the campaign classifies Hang rather than Crash. */
inline bool
isWatchdogTrapCode(std::string_view code)
{
    return code == trapcode::watchdogInstrs ||
           code == trapcode::watchdogCycles;
}

/**
 * Recoverable simulation trap. Thrown by fault-reachable validity
 * checks; caught at the injection-trial boundary. Uncaught (outside
 * a campaign) it terminates like any exception, which preserves the
 * old fail-loudly behavior for non-injection callers.
 */
class SimTrap : public std::exception
{
  public:
    SimTrap(std::string code, std::string message)
        : code_(std::move(code)), message_(std::move(message))
    {
        what_ = code_ + ": " + message_;
    }

    /** Stable dotted identifier, e.g. "trap.mem.oob". */
    const std::string &code() const { return code_; }

    /** Human-readable detail (addresses, indices, budgets). */
    const std::string &message() const { return message_; }

    const char *what() const noexcept override { return what_.c_str(); }

  private:
    std::string code_;
    std::string message_;
    std::string what_;
};

/** Raise a SimTrap with @p code and a stream-composed message. */
template <typename... Args>
[[noreturn]] void
simTrap(const char *code, Args &&...args)
{
    throw SimTrap(code, detail::composeMessage(args...));
}

} // namespace mbavf

#endif // MBAVF_COMMON_TRAP_HH
