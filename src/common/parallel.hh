/**
 * @file
 * Shared parallel execution layer: one lazily-initialized persistent
 * worker pool for the whole process.
 *
 * Every embarrassingly parallel site in mbavf (the MB-AVF row sweep,
 * mode sweeps, injection campaigns) submits work here instead of
 * spawning its own std::thread vector, so an 8-mode sweep reuses the
 * same workers across all modes with no thread churn.
 *
 * Sizing: the pool holds max(1, N) - 1 worker threads (the calling
 * thread always participates), where N is, in order of precedence,
 * the value passed to setParallelThreads(), the MBAVF_THREADS
 * environment variable, or std::thread::hardware_concurrency().
 *
 * Determinism: parallelFor() partitions [begin, end) into chunks of
 * @p grain indices; the chunking depends only on the range and grain,
 * never on the worker count or scheduling. mapReduce() builds on that
 * and merges per-chunk partials in ascending chunk order, so its
 * result is bit-identical at any thread count even when the merge is
 * not associative-commutative in floating point.
 *
 * Nesting is safe: a pool worker may itself call parallelFor() (the
 * mode sweep does — each mode task fans out row-band tasks). Waiting
 * threads help drain the queue instead of blocking, so nested batches
 * always make progress.
 */

#ifndef MBAVF_COMMON_PARALLEL_HH
#define MBAVF_COMMON_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace mbavf
{

/**
 * Total parallelism of the pool (workers + the calling thread).
 * Triggers lazy initialization from MBAVF_THREADS / the hardware.
 */
unsigned parallelThreads();

/**
 * Small dense id of the calling thread, for per-thread sharding and
 * per-track trace attribution (src/obs). The first thread to ask
 * (normally main) gets 0; every later thread gets the next integer.
 * Stable for the thread's lifetime; never reused while the process
 * runs, so a resized pool's fresh workers get fresh ids.
 */
unsigned parallelWorkerId();

/**
 * Resize the pool to @p n total threads (0 = the MBAVF_THREADS /
 * hardware default). Existing workers are joined first; do not call
 * concurrently with running parallel work.
 */
void setParallelThreads(unsigned n);

/**
 * Grow the pool so at least @p n threads are available (never
 * shrinks; 0 is a no-op). Returns the resulting pool width.
 */
unsigned ensureParallelThreads(unsigned n);

/**
 * Run @p task(i) for every i in [0, num_tasks) on the pool; returns
 * when all have finished. The calling thread participates, claiming
 * tasks in ascending index order. Exceptions in tasks are fatal (the
 * engine's compute kernels never throw).
 */
void runTasks(std::size_t num_tasks,
              const std::function<void(std::size_t)> &task);

/**
 * Parallel loop over [begin, end): the range is cut into chunks of
 * @p grain indices (the last chunk may be short) and
 * @p body(chunk_begin, chunk_end) runs once per chunk. Chunking is a
 * pure function of (begin, end, grain) — thread count never changes
 * which chunks exist.
 */
void parallelFor(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t)> &body);

/**
 * Deterministic ordered reduction. Cuts [begin, end) into grain-sized
 * chunks like parallelFor(), computes
 * partial[i] = map(chunk_begin, chunk_end) concurrently, then folds
 * merge(result, partial[i]) serially in ascending chunk order.
 * Bit-identical at any thread count.
 *
 * @p map  (std::uint64_t begin, std::uint64_t end) -> T
 * @p merge (T &into, T &&partial) -> void
 */
template <typename T, typename Map, typename Merge>
T
mapReduce(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
          T init, Map &&map, Merge &&merge)
{
    if (begin >= end)
        return init;
    if (grain == 0)
        grain = 1;
    const std::uint64_t range = end - begin;
    const std::size_t chunks =
        static_cast<std::size_t>((range + grain - 1) / grain);
    std::vector<T> partials;
    partials.resize(chunks, init);
    runTasks(chunks, [&](std::size_t c) {
        std::uint64_t lo = begin + grain * c;
        std::uint64_t hi = std::min(end, lo + grain);
        partials[c] = map(lo, hi);
    });
    T result = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c)
        merge(result, std::move(partials[c]));
    return result;
}

} // namespace mbavf

#endif // MBAVF_COMMON_PARALLEL_HH
