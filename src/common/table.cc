#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace mbavf
{

std::string
formatFixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        panic("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        panic("Table row width ", row.size(), " does not match header ",
              header_.size());
    }
    rows_.push_back(std::move(row));
}

Table &
Table::beginRow()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    if (rows_.empty())
        panic("Table::cell before beginRow");
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

void
Table::printText(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < header_.size(); ++c) {
            const std::string &text = c < row.size() ? row[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << text;
        }
        os << '\n';
    };

    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace mbavf
