#include "common/interval_set.hh"

#include <algorithm>

namespace mbavf
{

IntervalSet::IntervalSet(std::vector<Interval> intervals)
{
    std::erase_if(intervals, [](const Interval &i) { return i.empty(); });
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.begin < b.begin;
              });
    for (const Interval &i : intervals) {
        if (!ivals_.empty() && i.begin <= ivals_.back().end) {
            ivals_.back().end = std::max(ivals_.back().end, i.end);
        } else {
            ivals_.push_back(i);
        }
    }
}

void
IntervalSet::add(Cycle begin, Cycle end)
{
    if (end <= begin)
        return;

    // Common fast path: appending at or after the tail.
    if (ivals_.empty() || begin > ivals_.back().end) {
        ivals_.push_back({begin, end});
        return;
    }
    if (begin >= ivals_.back().begin) {
        ivals_.back().begin = std::min(ivals_.back().begin, begin);
        ivals_.back().end = std::max(ivals_.back().end, end);
        return;
    }

    // General path: find insertion point and coalesce neighbours.
    auto it = std::lower_bound(
        ivals_.begin(), ivals_.end(), begin,
        [](const Interval &i, Cycle b) { return i.end < b; });
    if (it == ivals_.end() || it->begin > end) {
        ivals_.insert(it, {begin, end});
        return;
    }
    it->begin = std::min(it->begin, begin);
    it->end = std::max(it->end, end);
    auto next = it + 1;
    while (next != ivals_.end() && next->begin <= it->end) {
        it->end = std::max(it->end, next->end);
        next = ivals_.erase(next);
    }
}

Cycle
IntervalSet::totalLength() const
{
    Cycle total = 0;
    for (const Interval &i : ivals_)
        total += i.length();
    return total;
}

bool
IntervalSet::contains(Cycle cycle) const
{
    auto it = std::upper_bound(
        ivals_.begin(), ivals_.end(), cycle,
        [](Cycle c, const Interval &i) { return c < i.begin; });
    if (it == ivals_.begin())
        return false;
    --it;
    return cycle >= it->begin && cycle < it->end;
}

IntervalSet
IntervalSet::unionWith(const IntervalSet &other) const
{
    IntervalSet out;
    std::size_t a = 0, b = 0;
    while (a < ivals_.size() || b < other.ivals_.size()) {
        const Interval *next = nullptr;
        if (a < ivals_.size() &&
            (b >= other.ivals_.size() ||
             ivals_[a].begin <= other.ivals_[b].begin)) {
            next = &ivals_[a++];
        } else {
            next = &other.ivals_[b++];
        }
        out.add(*next);
    }
    return out;
}

IntervalSet
IntervalSet::intersect(const IntervalSet &other) const
{
    IntervalSet out;
    std::size_t a = 0, b = 0;
    while (a < ivals_.size() && b < other.ivals_.size()) {
        const Interval &x = ivals_[a];
        const Interval &y = other.ivals_[b];
        Cycle lo = std::max(x.begin, y.begin);
        Cycle hi = std::min(x.end, y.end);
        if (lo < hi)
            out.add(lo, hi);
        if (x.end < y.end) {
            ++a;
        } else {
            ++b;
        }
    }
    return out;
}

IntervalSet
IntervalSet::subtract(const IntervalSet &other) const
{
    IntervalSet out;
    std::size_t b = 0;
    for (const Interval &x : ivals_) {
        Cycle cursor = x.begin;
        while (b < other.ivals_.size() &&
               other.ivals_[b].end <= cursor) {
            ++b;
        }
        std::size_t bb = b;
        while (cursor < x.end) {
            if (bb >= other.ivals_.size() ||
                other.ivals_[bb].begin >= x.end) {
                out.add(cursor, x.end);
                break;
            }
            const Interval &y = other.ivals_[bb];
            if (y.begin > cursor)
                out.add(cursor, y.begin);
            cursor = std::max(cursor, y.end);
            ++bb;
        }
    }
    return out;
}

IntervalSet
IntervalSet::clamp(Cycle begin, Cycle end) const
{
    IntervalSet window;
    window.add(begin, end);
    return intersect(window);
}

Cycle
IntervalSet::overlapLength(Cycle begin, Cycle end) const
{
    if (end <= begin)
        return 0;
    Cycle total = 0;
    auto it = std::lower_bound(
        ivals_.begin(), ivals_.end(), begin,
        [](const Interval &i, Cycle b) { return i.end <= b; });
    for (; it != ivals_.end() && it->begin < end; ++it) {
        Cycle lo = std::max(it->begin, begin);
        Cycle hi = std::min(it->end, end);
        if (lo < hi)
            total += hi - lo;
    }
    return total;
}

} // namespace mbavf
