#include "common/journal_io.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace mbavf
{

bool
parseJournalU64(const std::string &token, std::uint64_t &value)
{
    if (token.empty())
        return false;
    // strtoull accepts a leading sign (wrapping negatives) and
    // leading whitespace; a journal integer is digits only.
    for (char c : token) {
        if (c < '0' || c > '9')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (errno != 0 || end != token.c_str() + token.size())
        return false;
    value = v;
    return true;
}

std::vector<std::string>
splitJournalTokens(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token)
        tokens.push_back(token);
    return tokens;
}

bool
journalKeyValue(const std::string &token, const char *key,
                std::string &value)
{
    const std::size_t len = std::strlen(key);
    if (token.size() < len + 1 || token.compare(0, len, key) != 0 ||
        token[len] != '=') {
        return false;
    }
    value = token.substr(len + 1);
    return true;
}

bool
readCompleteLines(const std::string &path,
                  std::vector<std::string> &lines, std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos)
            break; // truncated final line: drop it
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return true;
}

bool
atomicWriteFile(const std::string &path, const std::string &text,
                std::string &error)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        error = "cannot create '" + tmp + "': " +
                std::strerror(errno);
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
              text.size();
    ok = std::fflush(f) == 0 && ok;
    // fsync before rename: the rename must never become durable
    // before the bytes it points at.
    ok = ::fsync(::fileno(f)) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        error = "cannot write '" + tmp + "': " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "cannot rename '" + tmp + "' to '" + path + "': " +
                std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::uint64_t
fnv1a64(const void *bytes, std::size_t size, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(bytes);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv1a64(const std::string &text, std::uint64_t seed)
{
    return fnv1a64(text.data(), text.size(), seed);
}

bool
hashFileContents(const std::string &path, std::uint64_t &out,
                 std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::uint64_t h = 0xcbf29ce484222325ull;
    char buffer[1 << 16];
    while (is) {
        is.read(buffer, sizeof(buffer));
        const std::streamsize got = is.gcount();
        if (got > 0)
            h = fnv1a64(buffer, static_cast<std::size_t>(got), h);
    }
    if (!is.eof()) {
        error = "read error on '" + path + "'";
        return false;
    }
    out = h;
    return true;
}

std::string
hex64(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace mbavf
