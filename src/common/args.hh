/**
 * @file
 * Minimal --key=value command-line parser for tools and examples.
 */

#ifndef MBAVF_COMMON_ARGS_HH
#define MBAVF_COMMON_ARGS_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace mbavf
{

/**
 * Parses arguments of the form --key=value or bare --flag.
 *
 * Malformed invocations are hard errors, not warnings: a positional
 * argument or a repeated option exits immediately (a typo like
 * "--trials 5000" or a duplicated --seed would otherwise silently
 * run a different experiment than the one the user asked for).
 * Callers that know their full option set call requireKnown() to
 * reject unknown options with a nearest-match suggestion.
 *
 * Tools that genuinely take file operands (mbavf_report FILE)
 * construct with Positional::Allow; everything else keeps the
 * hard-error default.
 */
class Args
{
  public:
    enum class Positional
    {
        Reject,
        Allow,
    };

    Args(int argc, char **argv,
         Positional positional = Positional::Reject);

    /**
     * Exit with an error (and a "did you mean" hint when an option
     * in @p known is within edit distance 2) for any parsed option
     * not listed in @p known.
     */
    void requireKnown(std::initializer_list<const char *> known) const;

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /**
     * Integer option value. The whole value must parse: trailing
     * garbage ("--workers=4x"), out-of-range magnitudes, and empty
     * values are fatal with the offending option named — a typo like
     * "--checkpoint-every=1O0" must never silently run a different
     * experiment. Accepts decimal, 0x hex, and a leading '-'.
     */
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;

    /**
     * getInt() restricted to [@p min, @p max]; values outside the
     * range are fatal with the allowed range in the message.
     */
    std::int64_t getIntInRange(const std::string &key,
                               std::int64_t fallback,
                               std::int64_t min,
                               std::int64_t max) const;

    /**
     * Floating-point option value; trailing garbage, overflow, and
     * empty values are fatal, as with getInt().
     */
    double getDouble(const std::string &key, double fallback) const;

    bool getBool(const std::string &key, bool fallback = false) const;

    /** Non-option operands, in order (Positional::Allow only). */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace mbavf

#endif // MBAVF_COMMON_ARGS_HH
