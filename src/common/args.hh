/**
 * @file
 * Minimal --key=value command-line parser for benches and examples.
 */

#ifndef MBAVF_COMMON_ARGS_HH
#define MBAVF_COMMON_ARGS_HH

#include <cstdint>
#include <map>
#include <string>

namespace mbavf
{

/**
 * Parses arguments of the form --key=value or bare --flag.
 * Unknown keys are retained; callers query with typed accessors.
 */
class Args
{
  public:
    Args(int argc, char **argv);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;

    double getDouble(const std::string &key, double fallback) const;

    bool getBool(const std::string &key, bool fallback = false) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace mbavf

#endif // MBAVF_COMMON_ARGS_HH
