/**
 * @file
 * Sorted, disjoint half-open interval sets over cycles.
 *
 * IntervalSet is the workhorse of ACE analysis: per-bit ACE time is a
 * set of [begin, end) cycle intervals, and MB-AVF computation unions
 * and intersects these sets across the bits of a fault group.
 */

#ifndef MBAVF_COMMON_INTERVAL_SET_HH
#define MBAVF_COMMON_INTERVAL_SET_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace mbavf
{

/** A half-open interval of cycles [begin, end). */
struct Interval
{
    Cycle begin = 0;
    Cycle end = 0;

    /** Number of cycles covered. */
    Cycle length() const { return end - begin; }

    /** True for a degenerate (zero-length or inverted) interval. */
    bool empty() const { return end <= begin; }

    bool operator==(const Interval &other) const = default;
};

/**
 * A set of cycles represented as sorted, disjoint, non-adjacent
 * half-open intervals.
 *
 * Insertion via add() tolerates arbitrary overlap and ordering;
 * adjacent and overlapping intervals are coalesced.
 */
class IntervalSet
{
  public:
    IntervalSet() = default;

    /** Construct from a list of intervals (any order, may overlap). */
    explicit IntervalSet(std::vector<Interval> intervals);

    /** Insert [begin, end); no-op when empty. */
    void add(Cycle begin, Cycle end);

    /** Insert an interval; no-op when empty. */
    void add(const Interval &ival) { add(ival.begin, ival.end); }

    /** Remove all intervals. */
    void clear() { ivals_.clear(); }

    /** Total number of cycles covered. */
    Cycle totalLength() const;

    /** Number of disjoint intervals. */
    std::size_t size() const { return ivals_.size(); }

    bool empty() const { return ivals_.empty(); }

    /** True when @p cycle is a member of the set. */
    bool contains(Cycle cycle) const;

    /** Set union. */
    IntervalSet unionWith(const IntervalSet &other) const;

    /** Set intersection. */
    IntervalSet intersect(const IntervalSet &other) const;

    /** Set difference (cycles in this set but not in @p other). */
    IntervalSet subtract(const IntervalSet &other) const;

    /** Keep only cycles inside [begin, end). */
    IntervalSet clamp(Cycle begin, Cycle end) const;

    /** Length of intersection with [begin, end) without allocating. */
    Cycle overlapLength(Cycle begin, Cycle end) const;

    const std::vector<Interval> &intervals() const { return ivals_; }

    bool operator==(const IntervalSet &other) const = default;

  private:
    /** Sorted disjoint non-adjacent intervals. */
    std::vector<Interval> ivals_;
};

} // namespace mbavf

#endif // MBAVF_COMMON_INTERVAL_SET_HH
