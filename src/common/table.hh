/**
 * @file
 * Aligned text-table and CSV emitter used by the benchmark harnesses
 * to print paper-style tables and figure series.
 */

#ifndef MBAVF_COMMON_TABLE_HH
#define MBAVF_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mbavf
{

/**
 * A rectangular table of strings with a header row; renders either as
 * an aligned text table or as CSV.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a fully formed row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Start a new row built cell-by-cell via cell(). */
    Table &beginRow();

    /** Append one cell to the row opened by beginRow(). */
    Table &cell(const std::string &text);

    /** Append a numeric cell with fixed @p precision. */
    Table &cell(double value, int precision = 3);

    /** Append an integer cell. */
    Table &cell(std::uint64_t value);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return header_.size(); }

    const std::vector<std::string> &header() const { return header_; }

    const std::vector<std::string> &row(std::size_t i) const
    {
        return rows_[i];
    }

    /** Render as an aligned, pipe-free text table. */
    void printText(std::ostream &os) const;

    /** Render as CSV (no quoting; cells must not contain commas). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatFixed(double value, int precision);

} // namespace mbavf

#endif // MBAVF_COMMON_TABLE_HH
