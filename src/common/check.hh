/**
 * @file
 * MBAVF_CHECK: cheap, compile-time-gated runtime invariant checks.
 *
 * The static lint passes in src/check validate the simulator's
 * intermediate artifacts after the fact; MBAVF_CHECK guards the same
 * invariants at the call sites that produce them (lifetime builder,
 * cache event emission, injection sampling). The checks compile away
 * entirely unless the build sets -DMBAVF_CHECKS=ON (which defines
 * MBAVF_RUNTIME_CHECKS), so hot paths pay nothing in release builds.
 *
 * A failed check is an internal invariant violation and aborts via
 * panic(), naming the expression and source location.
 */

#ifndef MBAVF_COMMON_CHECK_HH
#define MBAVF_COMMON_CHECK_HH

#include "common/logging.hh"

namespace mbavf
{

/** True in builds compiled with -DMBAVF_CHECKS=ON. */
constexpr bool
runtimeChecksEnabled()
{
#ifdef MBAVF_RUNTIME_CHECKS
    return true;
#else
    return false;
#endif
}

namespace detail
{

template <typename... Args>
[[noreturn]] void
checkFailed(const char *file, int line, const char *expr,
            Args &&...args)
{
    panic("MBAVF_CHECK failed at ", file, ":", line, ": (", expr, ") ",
          detail::composeMessage(args...));
}

} // namespace detail

} // namespace mbavf

#ifdef MBAVF_RUNTIME_CHECKS
#define MBAVF_CHECK(cond, ...)                                        \
    do {                                                              \
        if (!(cond)) {                                                \
            ::mbavf::detail::checkFailed(                             \
                __FILE__, __LINE__, #cond __VA_OPT__(, ) __VA_ARGS__); \
        }                                                             \
    } while (0)
#else
// Unevaluated operand: no code is generated, but names in the
// condition still count as used (no -Wunused warnings in release).
#define MBAVF_CHECK(cond, ...) ((void)sizeof(!(cond)))
#endif

#endif // MBAVF_COMMON_CHECK_HH
