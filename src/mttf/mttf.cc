#include "mttf/mttf.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mbavf
{

double
tmbfMttfHours(const MttfParams &p)
{
    if (p.fitPerBit <= 0 || p.structureBits <= 0 || p.wordBits <= 0)
        fatal("tmbfMttfHours: non-positive parameter");
    const double lambda = p.fitPerBit / hoursPerFitUnit; // per hour
    const double words = p.structureBits / p.wordBits;
    const double word_rate = p.wordBits * lambda;
    // Probability that a second strike lands in the same word within
    // the first fault's residence; clamp for extreme inputs.
    const double p_second = std::min(1.0, word_rate * p.lifetimeHours);
    const double rate = words * word_rate * p_second;
    return 1.0 / rate;
}

double
tmbfMttfInfiniteHours(const MttfParams &p)
{
    if (p.fitPerBit <= 0 || p.structureBits <= 0 || p.wordBits <= 0)
        fatal("tmbfMttfInfiniteHours: non-positive parameter");
    const double lambda = p.fitPerBit / hoursPerFitUnit;
    const double words = p.structureBits / p.wordBits;
    const double word_rate = p.wordBits * lambda;
    // Solve words * (word_rate * T)^2 / 2 = 1 for T.
    return std::sqrt(2.0 / words) / word_rate;
}

double
smbfMttfHours(const MttfParams &p)
{
    if (p.fitPerBit <= 0 || p.structureBits <= 0 || p.smbfFraction <= 0)
        fatal("smbfMttfHours: non-positive parameter");
    const double lambda = p.fitPerBit / hoursPerFitUnit;
    const double rate = p.structureBits * lambda * p.smbfFraction;
    return 1.0 / rate;
}

} // namespace mbavf
