/**
 * @file
 * Analytic mean-time-to-failure models for temporal and spatial
 * multi-bit faults (paper Section IV-B, Figure 2), following the
 * methodology of Saleh et al. for temporal MBFs.
 *
 * Temporal double-bit faults require two independent strikes to land
 * in the same protection word while the first fault is still
 * resident. With per-bit fault rate lambda (FIT = failures per 1e9
 * device-hours), a structure of W words of k bits, and average data
 * lifetime L hours, the rate of temporal double-bit faults is
 * approximately
 *
 *     rate_tmbf = W * (k * lambda') * (k * lambda' * L)
 *
 * with lambda' = lambda * 1e-9 failures/hour: the first strike
 * arrives at rate W*k*lambda', and the probability a second strike
 * hits the same word within the remaining lifetime is ~ k*lambda'*L
 * (k*lambda'*L << 1 for any realistic rate).
 *
 * Spatial multi-bit faults need only one strike: a fraction p_smbf of
 * all strikes corrupts multiple bits at once, so
 *
 *     rate_smbf = W * k * lambda' * p_smbf
 *
 * The ratio MTTF_tmbf / MTTF_smbf = p_smbf / (k * lambda' * L) is
 * 6-8 orders of magnitude for realistic parameters, which is the
 * paper's justification for focusing on spatial MBFs.
 */

#ifndef MBAVF_MTTF_MTTF_HH
#define MBAVF_MTTF_MTTF_HH

#include <cstdint>

namespace mbavf
{

/** Parameters of the MTTF comparison. */
struct MttfParams
{
    /** Structure size in bits (default: 32 MB cache). */
    double structureBits = 32.0 * 1024 * 1024 * 8;
    /** Protection word size in bits (per-word ECC granularity). */
    double wordBits = 64;
    /** Raw per-bit fault rate in FIT (failures per 1e9 hours). */
    double fitPerBit = 1e-4;
    /** Average residence lifetime of data, in hours. */
    double lifetimeHours = 100.0 * 24 * 365;
    /** Fraction of strikes that are spatial MBFs defeating the word. */
    double smbfFraction = 0.001;
};

/** Hours per FIT-rate unit. */
constexpr double hoursPerFitUnit = 1e9;

/** MTTF (hours) from temporal double-bit faults, finite lifetime. */
double tmbfMttfHours(const MttfParams &p);

/**
 * MTTF (hours) from temporal double-bit faults with infinite data
 * lifetime (data lasts forever, never replaced): the expected time T
 * until two strikes land in the same word, from the birthday bound
 * W * (k*lambda'*T)^2 / 2 = 1.
 */
double tmbfMttfInfiniteHours(const MttfParams &p);

/** MTTF (hours) from spatial multi-bit faults. */
double smbfMttfHours(const MttfParams &p);

} // namespace mbavf

#endif // MBAVF_MTTF_MTTF_HH
