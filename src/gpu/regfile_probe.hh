/**
 * @file
 * RegFileAvfProbe: event tracking + lifetime construction for the
 * VGPR. Each 32-bit register is one container and one word, so the
 * probe simply accumulates a WordEventLog per register and runs the
 * backward builder at finalization.
 */

#ifndef MBAVF_GPU_REGFILE_PROBE_HH
#define MBAVF_GPU_REGFILE_PROBE_HH

#include <unordered_map>

#include "common/bits.hh"
#include "common/check.hh"
#include "core/lifetime.hh"
#include "core/lifetime_builder.hh"
#include "gpu/regfile.hh"

namespace mbavf
{

/** ACE event tracker for one compute unit's VGPR. */
class RegFileAvfProbe : public RegFileListener
{
  public:
    explicit RegFileAvfProbe(const RegFileGeometry &geom)
        : geom_(geom)
    {}

    void
    onRegWrite(std::uint64_t container, Cycle t, InstrTag tag) override
    {
        logs_[container].write(t, 0xFFFFFFFFull, tag);
    }

    void
    onRegRead(std::uint64_t container, Cycle t,
              std::uint32_t consume_mask, DefId def, bool exact) override
    {
        MBAVF_CHECK((consume_mask & ~lowMask(geom_.regBits)) == 0,
                    "consume mask wider than the ", geom_.regBits,
                    "-bit register");
        if (exact)
            logs_[container].readExact(t, consume_mask, def, 0);
        else
            logs_[container].read(t, consume_mask, def);
    }

    /** Analysis phase: build per-bit lifetimes over [0, horizon). */
    LifetimeStore
    finalize(Cycle horizon, const LivenessResolver &live) const
    {
        LifetimeStore store(geom_.regBits, 1);
        for (const auto &[container, log] : logs_) {
            store.container(container).words[0] =
                buildWordLifetime(log, horizon, geom_.regBits, live);
        }
        return store;
    }

    const RegFileGeometry &geometry() const { return geom_; }

    /**
     * Raw per-register event logs (container id -> time-ordered
     * events). The program-analysis passes read these directly to
     * find overwritten-before-read and uninitialized-read patterns.
     */
    const std::unordered_map<std::uint64_t, WordEventLog> &
    logs() const
    {
        return logs_;
    }

  private:
    RegFileGeometry geom_;
    std::unordered_map<std::uint64_t, WordEventLog> logs_;
};

} // namespace mbavf

#endif // MBAVF_GPU_REGFILE_PROBE_HH
