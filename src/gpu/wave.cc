#include "gpu/wave.hh"

#include <algorithm>
#include <array>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/trap.hh"
#include "gpu/gpu.hh"

namespace mbavf
{

namespace
{

constexpr std::uint32_t allBits = ~std::uint32_t(0);

std::uint32_t
relAll(std::uint32_t, std::uint32_t)
{
    return allBits;
}

/** AND: a bit of one operand matters only where the other is 1. */
std::uint32_t
relAnd(std::uint32_t, std::uint32_t other)
{
    return other;
}

/** OR: a bit of one operand matters only where the other is 0. */
std::uint32_t
relOr(std::uint32_t, std::uint32_t other)
{
    return ~other;
}

/** MUL: if the other operand is zero, no bit matters. */
std::uint32_t
relMul(std::uint32_t, std::uint32_t other)
{
    return other == 0 ? 0 : allBits;
}

} // namespace

Wave::Wave(Gpu &gpu, unsigned cu, unsigned slot, unsigned wave_id)
    : gpu_(gpu), cu_(cu), slot_(slot), waveId_(wave_id),
      time_(gpu.clock().now())
{
    execStack_.push_back(lowMask(gpu.config().wavefrontSize));
}

unsigned
Wave::laneCount() const
{
    return gpu_.config().wavefrontSize;
}

bool
Wave::laneActive(unsigned lane) const
{
    return bitAt(activeMask(), lane);
}

Cycle
Wave::laneTime(unsigned lane) const
{
    return time_ + lane / gpu_.config().quarterWave;
}

void
Wave::beginInstr()
{
    gpu_.preInstruction(time_);
    ++pc_;
}

InstrTag
Wave::currentTag() const
{
    // pc_ counts issued operations, so the op in flight is pc_ - 1;
    // identical kernels give every wave the same pc sequence, making
    // (kernel, pc) a *static* instruction identity.
    if (!gpu_.tagging())
        return noInstrTag;
    return makeInstrTag(gpu_.kernelId(), pc_ - 1);
}

Addr
Wave::dataAddr(std::uint64_t ea) const
{
    // Golden-run addresses are in range and 4-aligned by
    // construction (word-indexed buffers off 64-aligned
    // allocations), so these checks only ever fire when injected
    // faults corrupt an address register. They trap — the memory
    // protection of a real device — instead of silently wrapping,
    // so the campaign can classify the trial Crash.
    if ((ea & 3) != 0)
        simTrap(trapcode::memAlign, "unaligned 32-bit access at ", ea);
    if (ea + 4 > gpu_.config().memBytes)
        simTrap(trapcode::memOob, "wave access out of range: ", ea,
                " of ", gpu_.config().memBytes);
    return ea;
}

void
Wave::checkReg(unsigned reg) const
{
    if (reg >= gpu_.config().regs.numRegs)
        simTrap(trapcode::gpuBadReg, "register ", reg,
                " out of range (", gpu_.config().regs.numRegs, ")");
}

Value
Wave::readReg(unsigned lane, unsigned reg, std::uint32_t consume,
              DefId def, bool exact)
{
    VectorRegFile &rf = gpu_.regFile(cu_);
    if (gpu_.tracking())
        rf.noteRead(slot_, reg, lane, laneTime(lane), consume, def,
                    exact);
    return rf.get(slot_, reg, lane);
}

void
Wave::writeReg(unsigned lane, unsigned reg, const Value &value)
{
    gpu_.regFile(cu_).set(slot_, reg, lane, value, laneTime(lane),
                          currentTag());
}

void
Wave::binaryOp(unsigned dst, unsigned a, unsigned b, bool bitwise,
               BinFn fn, RelFn rel_a, RelFn rel_b)
{
    checkReg(dst);
    checkReg(a);
    checkReg(b);
    beginInstr();
    VectorRegFile &rf = gpu_.regFile(cu_);
    const bool tracking = gpu_.tracking();
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        const Value va = rf.get(slot_, a, lane);
        const Value vb = rf.get(slot_, b, lane);
        const std::uint32_t ra = rel_a(va.bits, vb.bits);
        const std::uint32_t rb = rel_b(vb.bits, va.bits);
        Value out;
        out.bits = fn(va.bits, vb.bits);
        if (tracking) {
            std::array<SrcUse, 2> srcs{
                SrcUse{va.def, ra, bitwise},
                SrcUse{vb.def, rb, bitwise}};
            out.def = gpu_.dataflow().record(srcs, currentTag());
        }
        // The register file reads both operands regardless of
        // relevance; zero-relevance reads are pure array reads.
        readReg(lane, a, ra, out.def, bitwise);
        readReg(lane, b, rb, out.def, bitwise);
        writeReg(lane, dst, out);
    }
    time_ += gpu_.config().aluCycles;
}

void
Wave::immOp(unsigned dst, unsigned a, std::uint32_t imm, bool bitwise,
            BinFn fn, std::uint32_t relevance)
{
    checkReg(dst);
    checkReg(a);
    beginInstr();
    VectorRegFile &rf = gpu_.regFile(cu_);
    const bool tracking = gpu_.tracking();
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        const Value va = rf.get(slot_, a, lane);
        Value out;
        out.bits = fn(va.bits, imm);
        if (tracking) {
            std::array<SrcUse, 1> srcs{
                SrcUse{va.def, relevance, bitwise}};
            out.def = gpu_.dataflow().record(srcs, currentTag());
        }
        readReg(lane, a, relevance, out.def, bitwise);
        writeReg(lane, dst, out);
    }
    time_ += gpu_.config().aluCycles;
}

void
Wave::movi(unsigned dst, std::uint32_t imm)
{
    checkReg(dst);
    beginInstr();
    const bool tracking = gpu_.tracking();
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        Value out{imm, noDef};
        if (tracking)
            out.def = gpu_.dataflow().record({}, currentTag());
        writeReg(lane, dst, out);
    }
    time_ += gpu_.config().aluCycles;
}

void
Wave::globalId(unsigned dst)
{
    checkReg(dst);
    beginInstr();
    const bool tracking = gpu_.tracking();
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        Value out{waveId_ * laneCount() + lane, noDef};
        if (tracking)
            out.def = gpu_.dataflow().record({}, currentTag());
        writeReg(lane, dst, out);
    }
    time_ += gpu_.config().aluCycles;
}

void
Wave::laneIdx(unsigned dst)
{
    checkReg(dst);
    beginInstr();
    const bool tracking = gpu_.tracking();
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        Value out{lane, noDef};
        if (tracking)
            out.def = gpu_.dataflow().record({}, currentTag());
        writeReg(lane, dst, out);
    }
    time_ += gpu_.config().aluCycles;
}

void
Wave::mov(unsigned dst, unsigned src)
{
    immOp(dst, src, 0, true,
          [](std::uint32_t a, std::uint32_t) { return a; }, allBits);
}

void
Wave::add(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, false,
             [](std::uint32_t x, std::uint32_t y) { return x + y; },
             relAll, relAll);
}

void
Wave::sub(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, false,
             [](std::uint32_t x, std::uint32_t y) { return x - y; },
             relAll, relAll);
}

void
Wave::mul(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, false,
             [](std::uint32_t x, std::uint32_t y) { return x * y; },
             relMul, relMul);
}

void
Wave::mad(unsigned dst, unsigned a, unsigned b, unsigned c)
{
    checkReg(dst);
    checkReg(a);
    checkReg(b);
    checkReg(c);
    beginInstr();
    VectorRegFile &rf = gpu_.regFile(cu_);
    const bool tracking = gpu_.tracking();
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        const Value va = rf.get(slot_, a, lane);
        const Value vb = rf.get(slot_, b, lane);
        const Value vc = rf.get(slot_, c, lane);
        const std::uint32_t ra = relMul(va.bits, vb.bits);
        const std::uint32_t rb = relMul(vb.bits, va.bits);
        Value out;
        out.bits = va.bits * vb.bits + vc.bits;
        if (tracking) {
            std::array<SrcUse, 3> srcs{
                SrcUse{va.def, ra, false}, SrcUse{vb.def, rb, false},
                SrcUse{vc.def, allBits, false}};
            out.def = gpu_.dataflow().record(srcs, currentTag());
        }
        readReg(lane, a, ra, out.def, false);
        readReg(lane, b, rb, out.def, false);
        readReg(lane, c, allBits, out.def, false);
        writeReg(lane, dst, out);
    }
    time_ += gpu_.config().aluCycles;
}

void
Wave::addi(unsigned dst, unsigned a, std::uint32_t imm)
{
    immOp(dst, a, imm, false,
          [](std::uint32_t x, std::uint32_t y) { return x + y; },
          allBits);
}

void
Wave::subi(unsigned dst, unsigned a, std::uint32_t imm)
{
    immOp(dst, a, imm, false,
          [](std::uint32_t x, std::uint32_t y) { return x - y; },
          allBits);
}

void
Wave::muli(unsigned dst, unsigned a, std::uint32_t imm)
{
    immOp(dst, a, imm, false,
          [](std::uint32_t x, std::uint32_t y) { return x * y; },
          imm == 0 ? 0 : allBits);
}

void
Wave::mini(unsigned dst, unsigned a, std::uint32_t imm)
{
    immOp(dst, a, imm, false,
          [](std::uint32_t x, std::uint32_t y) {
              return x < y ? x : y;
          },
          allBits);
}

void
Wave::minu(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, false,
             [](std::uint32_t x, std::uint32_t y) {
                 return x < y ? x : y;
             },
             relAll, relAll);
}

void
Wave::maxu(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, false,
             [](std::uint32_t x, std::uint32_t y) {
                 return x > y ? x : y;
             },
             relAll, relAll);
}

void
Wave::divu(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, false,
             [](std::uint32_t x, std::uint32_t y) {
                 return y ? x / y : 0;
             },
             relAll, relAll);
}

void
Wave::and_(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, true,
             [](std::uint32_t x, std::uint32_t y) { return x & y; },
             relAnd, relAnd);
}

void
Wave::or_(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, true,
             [](std::uint32_t x, std::uint32_t y) { return x | y; },
             relOr, relOr);
}

void
Wave::xor_(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, true,
             [](std::uint32_t x, std::uint32_t y) { return x ^ y; },
             relAll, relAll);
}

void
Wave::andi(unsigned dst, unsigned a, std::uint32_t imm)
{
    immOp(dst, a, imm, true,
          [](std::uint32_t x, std::uint32_t y) { return x & y; }, imm);
}

void
Wave::ori(unsigned dst, unsigned a, std::uint32_t imm)
{
    immOp(dst, a, imm, true,
          [](std::uint32_t x, std::uint32_t y) { return x | y; }, ~imm);
}

void
Wave::xori(unsigned dst, unsigned a, std::uint32_t imm)
{
    immOp(dst, a, imm, true,
          [](std::uint32_t x, std::uint32_t y) { return x ^ y; },
          allBits);
}

void
Wave::shli(unsigned dst, unsigned a, unsigned amount)
{
    // Shifts move bits between positions, so positional relevance
    // composition does not apply; record the surviving range.
    immOp(dst, a, amount, false,
          [](std::uint32_t x, std::uint32_t y) { return x << y; },
          static_cast<std::uint32_t>(lowMask(32 - amount)));
}

void
Wave::shri(unsigned dst, unsigned a, unsigned amount)
{
    immOp(dst, a, amount, false,
          [](std::uint32_t x, std::uint32_t y) { return x >> y; },
          static_cast<std::uint32_t>(lowMask(32 - amount)) << amount);
}

void
Wave::cmpLtu(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, false,
             [](std::uint32_t x, std::uint32_t y) {
                 return std::uint32_t(x < y);
             },
             relAll, relAll);
}

void
Wave::cmpLtui(unsigned dst, unsigned a, std::uint32_t imm)
{
    immOp(dst, a, imm, false,
          [](std::uint32_t x, std::uint32_t y) {
              return std::uint32_t(x < y);
          },
          allBits);
}

void
Wave::cmpEq(unsigned dst, unsigned a, unsigned b)
{
    binaryOp(dst, a, b, false,
             [](std::uint32_t x, std::uint32_t y) {
                 return std::uint32_t(x == y);
             },
             relAll, relAll);
}

void
Wave::cmpEqi(unsigned dst, unsigned a, std::uint32_t imm)
{
    immOp(dst, a, imm, false,
          [](std::uint32_t x, std::uint32_t y) {
              return std::uint32_t(x == y);
          },
          allBits);
}

void
Wave::select(unsigned dst, unsigned pred, unsigned a, unsigned b)
{
    checkReg(dst);
    checkReg(pred);
    checkReg(a);
    checkReg(b);
    beginInstr();
    VectorRegFile &rf = gpu_.regFile(cu_);
    const bool tracking = gpu_.tracking();
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        const Value vp = rf.get(slot_, pred, lane);
        const bool taken_a = vp.bits != 0;
        const Value vt = rf.get(slot_, taken_a ? a : b, lane);
        Value out{vt.bits, noDef};
        if (tracking) {
            std::array<SrcUse, 2> srcs{
                SrcUse{vp.def, allBits, false},
                SrcUse{vt.def, allBits, false}};
            out.def = gpu_.dataflow().record(srcs, currentTag());
        }
        readReg(lane, pred, allBits, out.def, false);
        // The taken operand is consumed; the untaken one is still
        // read out of the array (a pure read — logic masking).
        readReg(lane, taken_a ? a : b, allBits, out.def, false);
        readReg(lane, taken_a ? b : a, 0, noDef, false);
        writeReg(lane, dst, out);
    }
    time_ += gpu_.config().aluCycles;
}

void
Wave::load(unsigned dst, unsigned addr, std::uint32_t offset)
{
    checkReg(dst);
    checkReg(addr);
    beginInstr();
    VectorRegFile &rf = gpu_.regFile(cu_);
    MainMemory &mem = gpu_.mem();
    Cache &l1 = gpu_.l1(cu_);
    const bool tracking = gpu_.tracking();
    Cycle done = time_ + gpu_.config().aluCycles;

    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        const Value va = rf.get(slot_, addr, lane);
        const Addr ea = dataAddr(va.bits + offset);

        Value out;
        out.bits = mem.read32(ea);
        if (tracking) {
            // Sources: the producing defs of the four bytes, with
            // positional relevance; bit-exact only when fully aligned
            // with the producing value's byte lanes.
            std::array<SrcUse, DataflowLog::maxSrcs> srcs;
            unsigned nsrcs = 0;
            bool aligned = true;
            for (unsigned i = 0; i < 4; ++i) {
                ByteOrigin origin = mem.origin(ea + i);
                if (origin.def == noDef)
                    continue;
                if (origin.byteIdx != i)
                    aligned = false;
                std::uint32_t rel = 0xFFu << (8 * origin.byteIdx);
                unsigned s = 0;
                for (; s < nsrcs; ++s) {
                    if (srcs[s].def == origin.def) {
                        srcs[s].relevance |= rel;
                        break;
                    }
                }
                if (s == nsrcs && nsrcs < DataflowLog::maxSrcs)
                    srcs[nsrcs++] = {origin.def, rel, true};
            }
            if (!aligned) {
                for (unsigned s = 0; s < nsrcs; ++s)
                    srcs[s].positional = false;
            }
            // The address chain is live iff the load itself is.
            if (nsrcs < DataflowLog::maxSrcs)
                srcs[nsrcs++] = {va.def, allBits, false};
            out.def = gpu_.dataflow().record(
                std::span<const SrcUse>(srcs.data(), nsrcs),
                currentTag());
            gpu_.refIndex().addLoad(ea, 4, laneTime(lane), out.def);
        }

        // Address consumption: dead iff the load itself is dead.
        readReg(lane, addr, allBits, out.def, false);

        MemRequest req{ea, 4, MemCmd::Read, out.def};
        done = std::max(done, l1.access(req, laneTime(lane)));
        writeReg(lane, dst, out);
    }
    time_ = done;
}

void
Wave::store(unsigned addr, unsigned src, std::uint32_t offset)
{
    checkReg(addr);
    checkReg(src);
    beginInstr();
    VectorRegFile &rf = gpu_.regFile(cu_);
    MainMemory &mem = gpu_.mem();
    Cache &l1 = gpu_.l1(cu_);
    const bool tracking = gpu_.tracking();
    Cycle done = time_ + gpu_.config().aluCycles;

    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        const Value va = rf.get(slot_, addr, lane);
        const Value vs = rf.get(slot_, src, lane);
        const Addr ea = dataAddr(va.bits + offset);

        DefId store_def = noDef;
        if (tracking) {
            std::array<SrcUse, 1> srcs{SrcUse{vs.def, allBits, true}};
            store_def = gpu_.dataflow().record(srcs, currentTag());
            gpu_.refIndex().addStore(ea, 4, laneTime(lane));
            // A corrupt store address clobbers arbitrary state: the
            // whole address chain is conservatively live.
            std::array<SrcUse, 1> asrc{SrcUse{va.def, allBits, false}};
            DefId anchor = gpu_.dataflow().record(asrc);
            gpu_.dataflow().markOutput(anchor);
        }

        readReg(lane, addr, allBits, noDef, false);
        readReg(lane, src, allBits, store_def, true);

        MemRequest req{ea, 4, MemCmd::Write, noDef, currentTag()};
        done = std::max(done, l1.access(req, laneTime(lane)));
        mem.write32(ea, vs.bits);
        mem.setOrigin(ea, 4, store_def);
    }
    time_ = done;
}

void
Wave::storeOut(unsigned addr, unsigned src, std::uint32_t offset)
{
    checkReg(addr);
    checkReg(src);
    beginInstr();
    VectorRegFile &rf = gpu_.regFile(cu_);
    MainMemory &mem = gpu_.mem();
    Cache &l1 = gpu_.l1(cu_);
    const bool tracking = gpu_.tracking();
    Cycle done = time_ + gpu_.config().aluCycles;

    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        const Value va = rf.get(slot_, addr, lane);
        const Value vs = rf.get(slot_, src, lane);
        const Addr ea = dataAddr(va.bits + offset);

        DefId store_def = noDef;
        if (tracking) {
            std::array<SrcUse, 1> srcs{SrcUse{vs.def, allBits, true}};
            store_def = gpu_.dataflow().record(srcs, currentTag());
            gpu_.dataflow().markOutput(store_def);
            gpu_.refIndex().addStore(ea, 4, laneTime(lane));
            std::array<SrcUse, 1> asrc{SrcUse{va.def, allBits, false}};
            DefId anchor = gpu_.dataflow().record(asrc);
            gpu_.dataflow().markOutput(anchor);
        }

        readReg(lane, addr, allBits, noDef, false);
        readReg(lane, src, allBits, store_def, true);

        MemRequest req{ea, 4, MemCmd::Write, noDef, currentTag()};
        done = std::max(done, l1.access(req, laneTime(lane)));
        mem.write32(ea, vs.bits);
        mem.setOrigin(ea, 4, store_def);
    }
    time_ = done;
}

void
Wave::pushExecNonzero(unsigned cond)
{
    checkReg(cond);
    beginInstr();
    VectorRegFile &rf = gpu_.regFile(cu_);
    std::uint64_t mask = 0;
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        const Value vc = rf.get(slot_, cond, lane);
        // Control consumption is conservatively always live: anchor
        // the condition's whole producing chain.
        if (gpu_.tracking()) {
            std::array<SrcUse, 1> csrc{SrcUse{vc.def, allBits, false}};
            DefId anchor = gpu_.dataflow().record(csrc);
            gpu_.dataflow().markOutput(anchor);
        }
        readReg(lane, cond, allBits, noDef, false);
        if (vc.bits != 0)
            mask |= std::uint64_t(1) << lane;
    }
    execStack_.push_back(mask);
    time_ += gpu_.config().aluCycles;
}

void
Wave::pushExecZero(unsigned cond)
{
    checkReg(cond);
    beginInstr();
    VectorRegFile &rf = gpu_.regFile(cu_);
    std::uint64_t mask = 0;
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        if (!laneActive(lane))
            continue;
        const Value vc = rf.get(slot_, cond, lane);
        if (gpu_.tracking()) {
            std::array<SrcUse, 1> csrc{SrcUse{vc.def, allBits, false}};
            DefId anchor = gpu_.dataflow().record(csrc);
            gpu_.dataflow().markOutput(anchor);
        }
        readReg(lane, cond, allBits, noDef, false);
        if (vc.bits == 0)
            mask |= std::uint64_t(1) << lane;
    }
    execStack_.push_back(mask);
    time_ += gpu_.config().aluCycles;
}

void
Wave::popExec()
{
    if (execStack_.size() <= 1)
        simTrap(trapcode::gpuDivStack,
                "popExec with empty divergence stack");
    execStack_.pop_back();
}

bool
Wave::anyActive() const
{
    return activeMask() != 0;
}

std::uint32_t
Wave::peek(unsigned reg, unsigned lane) const
{
    return gpu_.regFile(cu_).get(slot_, reg, lane).bits;
}

} // namespace mbavf
