/**
 * @file
 * A tracked 32-bit value: data bits plus dataflow provenance.
 */

#ifndef MBAVF_GPU_VALUE_HH
#define MBAVF_GPU_VALUE_HH

#include <cstdint>

#include "common/types.hh"

namespace mbavf
{

/** One 32-bit register value with the definition that produced it. */
struct Value
{
    std::uint32_t bits = 0;
    DefId def = noDef;
};

} // namespace mbavf

#endif // MBAVF_GPU_VALUE_HH
