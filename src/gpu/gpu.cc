#include "gpu/gpu.hh"

#include <ostream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/trap.hh"
#include "gpu/wave.hh"

namespace mbavf
{

Gpu::Gpu(const GpuConfig &config)
    : config_(config)
{
    if (config.wavefrontSize == 0 || config.wavefrontSize > 64)
        fatal("wavefront size must be in [1, 64]");
    if (config.quarterWave == 0 ||
        config.wavefrontSize % config.quarterWave != 0) {
        fatal("quarter-wave width must divide the wavefront size");
    }
    if (config.regs.numLanes != config.wavefrontSize)
        fatal("register file lanes must match the wavefront size");
    if (!isPowerOfTwo(config.memBytes))
        fatal("memory size must be a power of two");

    mem_ = std::make_unique<MainMemory>(config.memBytes);
    dram_ = std::make_unique<Dram>(config.dramLatency);
    l2_ = std::make_unique<Cache>(config.l2, *dram_);
    for (unsigned cu = 0; cu < config.numCus; ++cu) {
        l1s_.push_back(std::make_unique<Cache>(config.l1, *l2_));
        regFiles_.push_back(
            std::make_unique<VectorRegFile>(config.regs));
    }
    cuWaveCount_.assign(config.numCus, 0);
}

Gpu::~Gpu() = default;

void
Gpu::launch(const std::function<void(Wave &)> &kernel,
            unsigned num_waves)
{
    if (finished_)
        panic("launch after finish()");
    if (launchedOnce_)
        ++kernelId_;
    launchedOnce_ = true;
    for (unsigned w = 0; w < num_waves; ++w) {
        unsigned cu = w % config_.numCus;
        unsigned slot = cuWaveCount_[cu] % config_.regs.numSlots;
        ++cuWaveCount_[cu];
        Wave wave(*this, cu, slot, w);
        kernel(wave);
        clock_.advanceTo(wave.endTime());
    }
}

void
Gpu::finish()
{
    if (finished_)
        return;
    finished_ = true;
    horizon_ = clock_.now() + 1;

    if (tracking_) {
        // Output buffers are consumed (fully live) at the horizon.
        for (const OutputRange &range : outputRanges_) {
            refIndex_.addLoad(range.addr,
                              static_cast<unsigned>(range.bytes),
                              horizon_, noDef);
        }
    }
    // Kernel-completion flush: write back all dirty state.
    for (auto &l1 : l1s_)
        l1->flush(horizon_);
    l2_->flush(horizon_);
}

unsigned
Gpu::cusWithWaves() const
{
    unsigned used = 0;
    for (unsigned count : cuWaveCount_)
        used += count > 0;
    return used;
}

void
Gpu::addOutputRange(Addr addr, std::uint64_t bytes)
{
    outputRanges_.push_back({addr, bytes});
}

void
Gpu::armInjections(std::vector<RegInjection> injections)
{
    injections_ = std::move(injections);
}

void
Gpu::printStats(std::ostream &os) const
{
    os << "---------- stats ----------\n";
    os << "sim.cycles            " << clock_.now() << "\n";
    os << "sim.instructions      " << instrCount_ << "\n";
    for (unsigned cu = 0; cu < config_.numCus; ++cu) {
        const CacheStats &s = l1s_[cu]->stats();
        os << "l1[" << cu << "].hits            " << s.hits << "\n";
        os << "l1[" << cu << "].misses          " << s.misses << "\n";
        os << "l1[" << cu << "].missRate        " << s.missRate()
           << "\n";
        os << "l1[" << cu << "].writebacks      " << s.writebacks
           << "\n";
        os << "vgpr[" << cu << "].reads          "
           << regFiles_[cu]->reads() << "\n";
        os << "vgpr[" << cu << "].writes         "
           << regFiles_[cu]->writes() << "\n";
    }
    const CacheStats &l2s = l2_->stats();
    os << "l2.hits               " << l2s.hits << "\n";
    os << "l2.misses             " << l2s.misses << "\n";
    os << "l2.missRate           " << l2s.missRate() << "\n";
    os << "dram.accesses         " << dram_->accesses() << "\n";
    os << "trace.defs            " << dataflow_.size() << "\n";
    os << "trace.bytes           " << dataflow_.memoryBytes() << "\n";
    os << "mem.footprint         " << mem_->allocatedBytes() << "\n";
    os << "---------------------------\n";
}

void
Gpu::armMemInjections(std::vector<MemInjection> injections)
{
    memInjections_ = std::move(injections);
}

void
Gpu::sampleCyclesAt(std::vector<std::uint64_t> instr_indices)
{
    for (std::size_t i = 1; i < instr_indices.size(); ++i) {
        if (instr_indices[i] < instr_indices[i - 1])
            fatal("cycle sample points must be sorted ascending");
    }
    samplePoints_ = std::move(instr_indices);
    sampledCycles_.clear();
    sampledCycles_.reserve(samplePoints_.size());
    nextSample_ = 0;
}

void
Gpu::preInstruction(Cycle wave_now)
{
    // Same fire point as an injection with this triggerInstr: just
    // before the instruction executes. One predictable compare when
    // no sampling is armed.
    while (nextSample_ < samplePoints_.size() &&
           instrCount_ == samplePoints_[nextSample_]) {
        sampledCycles_.push_back(wave_now);
        ++nextSample_;
    }
    for (RegInjection &inj : injections_) {
        if (!inj.fired && instrCount_ == inj.triggerInstr) {
            regFiles_[inj.cu]->flipBits(inj.slot, inj.reg, inj.lane,
                                        inj.bitMask);
            inj.fired = true;
        }
    }
    for (MemInjection &inj : memInjections_) {
        if (!inj.fired && instrCount_ == inj.triggerInstr) {
            mem_->write8(inj.addr,
                         mem_->read8(inj.addr) ^ inj.bitMask);
            inj.fired = true;
        }
    }
    ++instrCount_;
    // Two predictable compares on the hot path; the disabled (0)
    // case short-circuits. bench/micro_trap_overhead pins the cost.
    if (watchdogInstrs_ != 0 && instrCount_ > watchdogInstrs_)
        simTrap(trapcode::watchdogInstrs, "instruction budget ",
                watchdogInstrs_, " exhausted");
    // The shared clock only advances when a wave retires, so a
    // runaway inside one wave is visible only through the wave-local
    // time the caller passes in.
    if (watchdogCycles_ != 0 && wave_now > watchdogCycles_)
        simTrap(trapcode::watchdogCycles, "cycle budget ",
                watchdogCycles_, " exhausted at ", wave_now);
}

} // namespace mbavf
