/**
 * @file
 * Wavefront execution context and operation DSL.
 *
 * Kernels are C++ functions that receive a Wave and issue SIMT
 * operations on explicit vector registers (indices into the CU's
 * VGPR). Every operation executes functionally across the active
 * lanes, records the register/memory/dataflow events the ACE analysis
 * consumes, and advances the timing model (one wave instruction = 4
 * cycles, 16 lanes per cycle; memory operations coalesce per
 * quarter-wave into line requests against the CU's L1).
 *
 * Logic masking is value-aware where it is cheap and sound: AND/OR
 * record the other operand's current bits as the use's relevance,
 * shifts record the surviving bit range, and select() records only
 * the taken operand. Divergence uses an explicit structured exec-mask
 * stack (pushExecNonzero / pushExecZero / popExec), so injected
 * faults in condition registers genuinely change control flow.
 */

#ifndef MBAVF_GPU_WAVE_HH
#define MBAVF_GPU_WAVE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "gpu/value.hh"

namespace mbavf
{

class Gpu;

/** One executing wavefront. */
class Wave
{
  public:
    /**
     * @param gpu     owning device
     * @param cu      compute unit index
     * @param slot    wave slot within the CU (VGPR window)
     * @param wave_id global wavefront index
     */
    Wave(Gpu &gpu, unsigned cu, unsigned slot, unsigned wave_id);

    unsigned laneCount() const;
    unsigned waveId() const { return waveId_; }
    unsigned cu() const { return cu_; }
    unsigned slot() const { return slot_; }

    /** Completion time of everything issued so far. */
    Cycle endTime() const { return time_; }

    /// @name Immediate / identity moves
    /// @{
    /** dst = imm in every active lane. */
    void movi(unsigned dst, std::uint32_t imm);
    /** dst = global work-item id (waveId * laneCount + lane). */
    void globalId(unsigned dst);
    /** dst = lane index within the wavefront. */
    void laneIdx(unsigned dst);
    /** dst = src. */
    void mov(unsigned dst, unsigned src);
    /// @}

    /// @name Integer arithmetic (two-register and immediate forms)
    /// @{
    void add(unsigned dst, unsigned a, unsigned b);
    void sub(unsigned dst, unsigned a, unsigned b);
    void mul(unsigned dst, unsigned a, unsigned b);
    /** dst = a * b + c (multiply-accumulate). */
    void mad(unsigned dst, unsigned a, unsigned b, unsigned c);
    void addi(unsigned dst, unsigned a, std::uint32_t imm);
    void subi(unsigned dst, unsigned a, std::uint32_t imm);
    void muli(unsigned dst, unsigned a, std::uint32_t imm);
    void mini(unsigned dst, unsigned a, std::uint32_t imm);
    void minu(unsigned dst, unsigned a, unsigned b);
    void maxu(unsigned dst, unsigned a, unsigned b);
    /** dst = b ? a / b : 0 (unsigned). */
    void divu(unsigned dst, unsigned a, unsigned b);
    /// @}

    /// @name Bitwise logic and shifts
    /// @{
    void and_(unsigned dst, unsigned a, unsigned b);
    void or_(unsigned dst, unsigned a, unsigned b);
    void xor_(unsigned dst, unsigned a, unsigned b);
    void andi(unsigned dst, unsigned a, std::uint32_t imm);
    void ori(unsigned dst, unsigned a, std::uint32_t imm);
    void xori(unsigned dst, unsigned a, std::uint32_t imm);
    void shli(unsigned dst, unsigned a, unsigned amount);
    void shri(unsigned dst, unsigned a, unsigned amount);
    /// @}

    /// @name Comparisons and selection
    /// @{
    /** dst = (a < b) ? 1 : 0, unsigned compare. */
    void cmpLtu(unsigned dst, unsigned a, unsigned b);
    void cmpLtui(unsigned dst, unsigned a, std::uint32_t imm);
    void cmpEq(unsigned dst, unsigned a, unsigned b);
    void cmpEqi(unsigned dst, unsigned a, std::uint32_t imm);
    /** dst = pred != 0 ? a : b; only the taken operand is consumed. */
    void select(unsigned dst, unsigned pred, unsigned a, unsigned b);
    /// @}

    /// @name Memory (4-byte, addresses in registers)
    /// @{
    /** dst = mem[a + offset] per lane (gather). */
    void load(unsigned dst, unsigned addr, std::uint32_t offset = 0);
    /** mem[a + offset] = src per lane (scatter). */
    void store(unsigned addr, unsigned src, std::uint32_t offset = 0);
    /**
     * Store that is program output: the stored value is marked as
     * reaching output in the dataflow trace.
     */
    void storeOut(unsigned addr, unsigned src, std::uint32_t offset = 0);
    /// @}

    /// @name Structured divergence
    /// @{
    /** Push exec &= (cond != 0). */
    void pushExecNonzero(unsigned cond);
    /** Push exec &= (cond == 0). */
    void pushExecZero(unsigned cond);
    void popExec();
    /** True when any lane is active. */
    bool anyActive() const;
    /// @}

    /// @name Host-visible helpers (no events, for kernel control)
    /// @{
    /** Raw bits of a register in one lane (no read event). */
    std::uint32_t peek(unsigned reg, unsigned lane) const;
    /// @}

  private:
    /** value = fn(a, b). */
    using BinFn = std::uint32_t (*)(std::uint32_t, std::uint32_t);
    /** relevance of one operand = rel(own bits, other operand bits). */
    using RelFn = std::uint32_t (*)(std::uint32_t, std::uint32_t);

    std::uint64_t activeMask() const { return execStack_.back(); }
    bool laneActive(unsigned lane) const;
    Cycle laneTime(unsigned lane) const;

    /** Charge one ALU instruction and bump the instruction counter. */
    void beginInstr();

    /**
     * Attribution tag of the instruction currently executing: the
     * launch's kernel id paired with the wave-local program counter
     * (operation issue index, identical across the waves of one
     * launch). noInstrTag when tagging is disabled on the device.
     */
    InstrTag currentTag() const;

    /** Generic two-register ALU op. */
    void binaryOp(unsigned dst, unsigned a, unsigned b, bool bitwise,
                  BinFn fn, RelFn rel_a, RelFn rel_b);

    /** Generic register-immediate ALU op. */
    void immOp(unsigned dst, unsigned a, std::uint32_t imm,
               bool bitwise, BinFn fn, std::uint32_t relevance);

    /**
     * Clamp an effective address into simulated memory (word
     * aligned). Golden addresses are always in range; this keeps
     * fault-injection runs with corrupted address registers
     * deterministic instead of out-of-bounds.
     */
    Addr dataAddr(std::uint64_t ea) const;

    /** Read a register in a lane, recording the read event. */
    Value readReg(unsigned lane, unsigned reg, std::uint32_t consume,
                  DefId def, bool exact);

    void writeReg(unsigned lane, unsigned reg, const Value &value);

    void checkReg(unsigned reg) const;

    Gpu &gpu_;
    unsigned cu_;
    unsigned slot_;
    unsigned waveId_;
    std::vector<std::uint64_t> execStack_;
    Cycle time_; ///< wave-local time on the shared clock
    unsigned pc_ = 0; ///< wave-local operation issue index
};

} // namespace mbavf

#endif // MBAVF_GPU_WAVE_HH
