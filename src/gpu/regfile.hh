/**
 * @file
 * Vector general-purpose register file (VGPR) of one compute unit.
 *
 * Stores tracked values per (wave slot, register, lane) and notifies
 * a listener of every read and write with cycle timestamps — the
 * event stream the VGPR ACE analysis is built from. Fault injection
 * flips bits directly in the backing store.
 */

#ifndef MBAVF_GPU_REGFILE_HH
#define MBAVF_GPU_REGFILE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/layout.hh"
#include "gpu/value.hh"

namespace mbavf
{

/** Observer of register-file events. */
class RegFileListener
{
  public:
    virtual ~RegFileListener() = default;

    /**
     * Full 32-bit write of @p container at cycle @p t. @p tag is the
     * static instruction performing the write (noInstrTag when the
     * producer is untracked).
     */
    virtual void onRegWrite(std::uint64_t container, Cycle t,
                            InstrTag tag) = 0;

    /**
     * Read of @p container at cycle @p t by definition @p def.
     * @p consume_mask holds the value bits the use can propagate;
     * @p exact selects bit-positional refinement by the consumer's
     * resolved relevance (see WordEvent::exact).
     */
    virtual void onRegRead(std::uint64_t container, Cycle t,
                           std::uint32_t consume_mask, DefId def,
                           bool exact) = 0;
};

/** The VGPR of one compute unit. */
class VectorRegFile
{
  public:
    explicit VectorRegFile(const RegFileGeometry &geom);

    const RegFileGeometry &geometry() const { return geom_; }

    const Value &
    get(unsigned slot, unsigned reg, unsigned lane) const
    {
        return values_[geom_.regId(slot, reg, lane)];
    }

    /** Write a register and notify the listener. */
    void set(unsigned slot, unsigned reg, unsigned lane,
             const Value &value, Cycle t, InstrTag tag = noInstrTag);

    /** Record a read (the caller fetched the value via get()). */
    void noteRead(unsigned slot, unsigned reg, unsigned lane, Cycle t,
                  std::uint32_t consume_mask, DefId def, bool exact);

    /** Fault injection: flip @p mask bits; no event is recorded. */
    void flipBits(unsigned slot, unsigned reg, unsigned lane,
                  std::uint32_t mask);

    void setListener(RegFileListener *listener) { listener_ = listener; }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

  private:
    RegFileGeometry geom_;
    std::vector<Value> values_;
    RegFileListener *listener_ = nullptr;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace mbavf

#endif // MBAVF_GPU_REGFILE_HH
