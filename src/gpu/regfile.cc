#include "gpu/regfile.hh"

namespace mbavf
{

VectorRegFile::VectorRegFile(const RegFileGeometry &geom)
    : geom_(geom), values_(geom.numContainers())
{
}

void
VectorRegFile::set(unsigned slot, unsigned reg, unsigned lane,
                   const Value &value, Cycle t, InstrTag tag)
{
    std::uint64_t id = geom_.regId(slot, reg, lane);
    values_[id] = value;
    ++writes_;
    if (listener_)
        listener_->onRegWrite(id, t, tag);
}

void
VectorRegFile::noteRead(unsigned slot, unsigned reg, unsigned lane,
                        Cycle t, std::uint32_t consume_mask, DefId def,
                        bool exact)
{
    ++reads_;
    if (listener_) {
        listener_->onRegRead(geom_.regId(slot, reg, lane), t,
                             consume_mask, def, exact);
    }
}

void
VectorRegFile::flipBits(unsigned slot, unsigned reg, unsigned lane,
                        std::uint32_t mask)
{
    values_[geom_.regId(slot, reg, lane)].bits ^= mask;
}

} // namespace mbavf
