/**
 * @file
 * The APU/GPU device model: compute units with private L1 caches and
 * vector register files, a shared L2, DRAM, and a kernel launcher.
 *
 * This is the paper's gem5-APU stand-in (Section VI-A): 4 compute
 * units, 16 KB L1 per CU, a 256 KB shared L2, 64-byte lines,
 * wavefronts of 64 lanes executed 16 lanes per cycle. Kernels are C++
 * functions driving the Wave operation DSL (wave.hh); execution is
 * functional (real values and control flow) with an in-order timing
 * model, which is what the ACE analysis needs: event order and
 * residency, not deep pipeline behavior. Wavefronts execute
 * sequentially on the shared clock (see DESIGN.md).
 */

#ifndef MBAVF_GPU_GPU_HH
#define MBAVF_GPU_GPU_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "core/layout.hh"
#include "gpu/regfile.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "mem/ref_index.hh"
#include "sim/clock.hh"
#include "trace/dataflow.hh"

namespace mbavf
{

class Wave;

/** Device configuration. */
struct GpuConfig
{
    unsigned numCus = 4;
    unsigned wavefrontSize = 64;
    unsigned quarterWave = 16;
    RegFileGeometry regs{32, 64, 4, 32};
    CacheParams l1{"l1", 64, 4, 64, 4};    ///< 16 KB per CU
    CacheParams l2{"l2", 1024, 4, 64, 20}; ///< 256 KB shared
    Cycle dramLatency = 200;
    std::uint64_t memBytes = std::uint64_t(4) << 20;
    /** ALU cycles per wave instruction (wavefrontSize/quarterWave). */
    Cycle aluCycles = 4;
};

/** One planned register-file bit flip (fault injection). */
struct RegInjection
{
    unsigned cu = 0;
    unsigned slot = 0;
    unsigned reg = 0;
    unsigned lane = 0;
    std::uint32_t bitMask = 0;
    /** Flip fires just before dynamic instruction this many. */
    std::uint64_t triggerInstr = 0;
    bool fired = false;
};

/**
 * One planned memory bit flip (fault injection into DRAM or, since
 * data contents live in flat memory, into whatever cached copy the
 * program observes next).
 */
struct MemInjection
{
    Addr addr = 0;
    std::uint8_t bitMask = 0;
    /** Flip fires just before dynamic instruction this many. */
    std::uint64_t triggerInstr = 0;
    bool fired = false;
};

/** The device. */
class Gpu
{
  public:
    explicit Gpu(const GpuConfig &config);
    ~Gpu();

    const GpuConfig &config() const { return config_; }

    MainMemory &mem() { return *mem_; }
    MemRefIndex &refIndex() { return refIndex_; }
    DataflowLog &dataflow() { return dataflow_; }
    Clock &clock() { return clock_; }

    Cache &l1(unsigned cu) { return *l1s_[cu]; }
    Cache &l2() { return *l2_; }
    VectorRegFile &regFile(unsigned cu) { return *regFiles_[cu]; }

    /**
     * Dataflow/reference tracking toggle. Injection campaigns turn it
     * off: outcomes come from output comparison, not ACE analysis.
     */
    void setTracking(bool on) { tracking_ = on; }
    bool tracking() const { return tracking_; }

    /**
     * Attribution-tag toggle: when on (the default), every register
     * and memory write carries the static instruction identity
     * (kernel launch id, wave-local pc) that produced its data, and
     * the ACE lifetimes it feeds become attributable per instruction.
     * Turning it off makes all writes carry noInstrTag; lifetimes and
     * MB-AVF totals are unaffected.
     */
    void setTagging(bool on) { tagging_ = on; }
    bool tagging() const { return tagging_; }

    /**
     * Id of the kernel launch currently executing (0-based, bumped
     * per launch()); pairs with a wave-local pc to form an InstrTag.
     */
    unsigned kernelId() const { return kernelId_; }

    /**
     * Launch @p num_waves wavefronts of @p kernel. Waves are assigned
     * to CUs round-robin and to wave slots round-robin within a CU;
     * wave w covers global work-items [w*64, (w+1)*64).
     */
    void launch(const std::function<void(Wave &)> &kernel,
                unsigned num_waves);

    /**
     * End of the workload: flush all caches (kernel-completion
     * flush), register output ranges as final live consumers, and
     * freeze the horizon.
     */
    void finish();

    /** Measurement horizon; valid after finish(). */
    Cycle horizon() const { return horizon_; }

    /** Declare [addr, addr+bytes) as program output. */
    void addOutputRange(Addr addr, std::uint64_t bytes);

    /** Dynamic wave-instruction counter. */
    std::uint64_t instrCount() const { return instrCount_; }

    /**
     * Number of CUs that actually received at least one wave. With
     * round-robin assignment these are CUs [0, cusWithWaves()); a
     * short launch leaves the tail of the device idle.
     */
    unsigned cusWithWaves() const;

    /**
     * Record the wave-local cycle at which each listed dynamic
     * instruction index begins, exactly where an armed injection with
     * that triggerInstr would fire. @p instr_indices must be sorted
     * ascending (duplicates allowed). Because waves execute
     * sequentially on the shared clock, the recorded cycles are
     * monotone, which is what lets the stratifier map instruction
     * windows onto cycle windows soundly (inject/stratified.hh).
     * Indices never reached (at or beyond the run's instruction
     * count) record no cycle; sampledCycles() is then shorter than
     * the request and the caller pads with the horizon.
     */
    void sampleCyclesAt(std::vector<std::uint64_t> instr_indices);

    /** Cycles recorded for sampleCyclesAt(), in request order. */
    const std::vector<Cycle> &sampledCycles() const
    {
        return sampledCycles_;
    }

    /** Arm one or more register bit flips. */
    void armInjections(std::vector<RegInjection> injections);

    /** Arm one or more memory bit flips. */
    void armMemInjections(std::vector<MemInjection> injections);

    /**
     * Arm the execution watchdog: raise trap.watchdog.instrs once
     * more than @p max_instrs dynamic instructions execute, and
     * trap.watchdog.cycles once the shared clock passes
     * @p max_cycles. Either budget may be 0 (disabled). Injection
     * campaigns derive the budgets from the golden run so corrupted
     * control flow that spins forever classifies Hang instead of
     * wedging a pool thread.
     */
    void
    setWatchdog(std::uint64_t max_instrs, Cycle max_cycles)
    {
        watchdogInstrs_ = max_instrs;
        watchdogCycles_ = max_cycles;
    }

    /** Host-side convenience buffer allocation. */
    Addr alloc(std::uint64_t bytes) { return mem_->alloc(bytes); }

    /** gem5-style statistics dump: caches, VGPR traffic, trace. */
    void printStats(std::ostream &os) const;

  private:
    friend class Wave;

    /** Called by Wave before each instruction. @p wave_now is the
     *  wave-local time, which runs ahead of the shared clock. */
    void preInstruction(Cycle wave_now);

    struct OutputRange
    {
        Addr addr;
        std::uint64_t bytes;
    };

    GpuConfig config_;
    Clock clock_;
    std::unique_ptr<MainMemory> mem_;
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<Cache> l2_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::vector<std::unique_ptr<VectorRegFile>> regFiles_;
    MemRefIndex refIndex_;
    DataflowLog dataflow_;
    bool tracking_ = true;
    bool tagging_ = true;
    unsigned kernelId_ = 0;
    bool launchedOnce_ = false;
    std::uint64_t instrCount_ = 0;
    std::uint64_t watchdogInstrs_ = 0;
    Cycle watchdogCycles_ = 0;
    std::vector<RegInjection> injections_;
    std::vector<MemInjection> memInjections_;
    std::vector<std::uint64_t> samplePoints_; ///< sorted ascending
    std::vector<Cycle> sampledCycles_;
    std::size_t nextSample_ = 0;
    std::vector<OutputRange> outputRanges_;
    std::vector<unsigned> cuWaveCount_; ///< waves launched per CU
    Cycle horizon_ = 0;
    bool finished_ = false;
};

} // namespace mbavf

#endif // MBAVF_GPU_GPU_HH
