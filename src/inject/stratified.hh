/**
 * @file
 * Two-level SDC estimation: importance-sampled, stratified injection
 * campaigns (DESIGN.md Section 16).
 *
 * Level one runs the ACE analysis (workloads/ace_runner.hh) with a
 * per-CU VGPR probe and partitions the single-bit register fault
 * space — every (cu, slot, reg, lane, bit) site crossed with every
 * dynamic-instruction trigger window — into strata keyed by
 * (site class, time window). A site class groups sites with the same
 * windowed ACE signature (which windows the bit is ever ACE in) and
 * the same coarse ACE-mass band; the signature is computed over the
 * cycle spans the windows' instruction boundaries actually occupy,
 * sampled during the ACE run at the exact point an injection trigger
 * would fire, and padded conservatively for intra-wave lane skew.
 *
 * The partition supports two claims:
 *
 *   soundness  a stratum whose class has no ACE overlap with its
 *              window is provably Masked — a flip lands on a bit
 *              that is dead until its next overwrite (or forever) —
 *              so the stratum is skipped with its exact rate
 *              bookkept, never sampled;
 *   variance   sampled strata receive trials in proportion to
 *              weight x predicted spread via a deterministic
 *              Sainte-Lague pick sequence, so high-AVF strata are
 *              sampled densely and the folded interval
 *              (common/stats.hh stratifiedInterval) reaches a target
 *              width with far fewer injections than uniform
 *              sampling.
 *
 * Everything here is a pure function of (workload, scale, config,
 * options): the strata, the pick sequence, and every pick's trial
 * spec are bit-identical at any thread count, any shard split, and
 * any resume point. Pick j of stratum h draws its site and trigger
 * from Rng(splitMix64(stratumSeed(h), occurrence)), so a single pick
 * reproduces in isolation just like a uniform campaign trial.
 */

#ifndef MBAVF_INJECT_STRATIFIED_HH
#define MBAVF_INJECT_STRATIFIED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "inject/campaign.hh"

namespace mbavf
{

/** Level-one partition knobs. */
struct StratifyOptions
{
    /** Trigger windows over the golden instruction count (<= 16). */
    unsigned windows = 8;
    /**
     * Site-class cap: the most populous (signature, band) keys keep
     * their own class; the rest merge into a mixed class that is
     * never skipped (merging may only lose skip opportunity, never
     * soundness).
     */
    unsigned maxClasses = 64;
    /**
     * Floor on a sampled stratum's predicted spread, so level-one
     * confidence can concentrate but never zero out sampling of a
     * stratum the analysis cannot prove Masked.
     */
    double predictedFloor = 0.02;
};

/** One (site class, window) stratum. */
struct Stratum
{
    std::uint32_t siteClass = 0;
    std::uint32_t window = 0;
    /** Exact share of the (site x trigger) fault space. */
    double weight = 0.0;
    /** Level-one ACE density of the class in the window, in [0,1]. */
    double predicted = 0.0;
    /** Provably Masked: never sampled, bookkept exactly. */
    bool skipped = false;
};

/** Per-stratum outcome counts for the combined estimator. */
struct StratumTally
{
    std::uint64_t trials = 0;
    std::array<std::uint64_t, numInjectOutcomes> counts{};
};

/**
 * Fold per-stratum tallies into the combined interval for
 * @p outcome: sampled strata contribute Wilson intervals, skipped
 * strata their exact rate (Masked 1, everything else 0). Free so the
 * serve merge can fold shard tallies from a stratum table alone,
 * without rebuilding the partition.
 */
WilsonInterval
combinedStratifiedInterval(const std::vector<Stratum> &strata,
                           const std::vector<StratumTally> &tallies,
                           InjectOutcome outcome, double z = 1.96);

class Stratification
{
  public:
    /** One pick of the deterministic allocation sequence. */
    struct Pick
    {
        std::uint32_t stratum = 0;
        /** 0-based occurrence index within the stratum. */
        std::uint64_t occurrence = 0;
    };

    /**
     * Build the level-one partition for @p campaign's fault space.
     * Runs the ACE analysis once (the expensive step); register kind
     * only. Fatal when the ACE run disagrees with the campaign's
     * golden run on the instruction count — the trigger mapping
     * would be meaningless.
     */
    static Stratification build(const Campaign &campaign,
                                const StratifyOptions &options);

    const std::vector<Stratum> &strata() const { return strata_; }
    unsigned numWindows() const { return windows_; }
    std::uint32_t numClasses() const { return numClasses_; }

    /** Total weight of the provably-Masked (skipped) strata. */
    double skippedWeight() const { return skippedWeight_; }

    /**
     * Identity of the partition: workload, scale, windows, classes,
     * window boundaries, and every class's site membership. Shards
     * and resumed journals must agree on it before their per-stratum
     * counts may merge.
     */
    std::uint64_t hash() const { return hash_; }

    /**
     * Picks [first, first + n) of the allocation sequence. The
     * sequence is prefix-monotone (pick j never depends on the
     * budget), which is what makes contiguous-range sharding and
     * resume merge bit-identically.
     */
    std::vector<Pick> picks(std::uint64_t first, std::uint64_t n) const;

    /** Per-stratum trial counts of the first @p budget picks. */
    std::vector<std::uint64_t> allocation(std::uint64_t budget) const;

    /**
     * Smallest budget whose *predicted* combined SDC width is at
     * most @p target_width, capped at @p max_budget. Deterministic —
     * it uses level-one predictions, never observed outcomes, so
     * every shard and resume derives the same budget.
     */
    std::uint64_t budgetForTargetCi(double target_width,
                                    std::uint64_t max_budget) const;

    /** Sub-seed stream of stratum @p h under @p base_seed. */
    std::uint64_t stratumSeed(std::uint32_t h,
                              std::uint64_t base_seed) const;

    /** The seed pick @p pick's trial draws from. */
    std::uint64_t pickSeed(const Pick &pick,
                           std::uint64_t base_seed) const;

    /** The single-flip trial spec @p pick draws. */
    TrialSpec trialSpec(const Pick &pick,
                        std::uint64_t base_seed) const;

    /** combinedStratifiedInterval() over this partition's strata. */
    WilsonInterval
    combinedInterval(const std::vector<StratumTally> &tallies,
                     InjectOutcome outcome, double z = 1.96) const
    {
        return combinedStratifiedInterval(strata_, tallies, outcome,
                                          z);
    }

    /** Trigger-window instruction boundaries (numWindows()+1). */
    const std::vector<std::uint64_t> &windowBounds() const
    {
        return windowBounds_;
    }

    /** Sites in class @p c (diagnostics / tests). */
    std::uint64_t classSiteCount(std::uint32_t c) const
    {
        return classOffset_[c + 1] - classOffset_[c];
    }

  private:
    unsigned windows_ = 0;
    std::uint32_t numClasses_ = 0;
    double predictedFloor_ = 0.02;
    double skippedWeight_ = 0.0;
    std::uint64_t hash_ = 0;
    std::uint64_t goldenInstrs_ = 0;
    unsigned cusUsed_ = 1;
    RegFileGeometry geom_{};
    std::vector<std::uint64_t> windowBounds_; ///< windows_+1 entries
    std::vector<Stratum> strata_;             ///< class-major
    /** Site codes of every class, concatenated; sorted per class. */
    std::vector<std::uint32_t> classSites_;
    std::vector<std::uint64_t> classOffset_;  ///< numClasses_+1
    /** Per-stratum Sainte-Lague scores (0 for skipped strata). */
    std::vector<double> scores_;
};

} // namespace mbavf

#endif // MBAVF_INJECT_STRATIFIED_HH
