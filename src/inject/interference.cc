#include "inject/interference.hh"

#include <vector>

#include "common/rng.hh"
#include "inject/campaign.hh"

namespace mbavf
{

InterferenceStats
runInterferenceStudy(const std::string &workload, unsigned scale,
                     const GpuConfig &config, unsigned num_injections,
                     std::uint64_t seed)
{
    InterferenceStats stats;
    stats.workload = workload;
    stats.singleInjections = num_injections;

    Campaign campaign(workload, scale, config);
    Rng rng(seed);

    // Phase 1: find SDC ACE bits with random single-bit injections.
    // Sites are drawn serially from one RNG (so the study is the
    // same experiment at any thread count), then executed as one
    // concurrent batch.
    std::vector<RegInjection> sites(num_injections);
    std::vector<TrialSpec> specs(num_injections);
    for (unsigned i = 0; i < num_injections; ++i) {
        sites[i] = campaign.sampleSingleBit(rng);
        specs[i].regFlips.push_back(sites[i]);
    }
    std::vector<InjectOutcome> outcomes = campaign.runBatch(specs);

    std::vector<RegInjection> sdc_sites;
    for (unsigned i = 0; i < num_injections; ++i) {
        if (outcomes[i] == InjectOutcome::Sdc)
            sdc_sites.push_back(sites[i]);
    }
    stats.sdcAceBits = static_cast<unsigned>(sdc_sites.size());

    // Phase 2: for each SDC site, inject 2x1/3x1/4x1 groups of
    // adjacent bits in the same register at the same trigger. The
    // group is predicted SDC (it contains a known SDC ACE bit);
    // interference is a non-SDC outcome.
    std::vector<TrialSpec> group_specs;
    group_specs.reserve(sdc_sites.size() * 3);
    for (const RegInjection &site : sdc_sites) {
        unsigned bit = 0;
        while (!(site.bitMask >> bit & 1))
            ++bit;
        for (unsigned m = 2; m <= 4; ++m) {
            unsigned start =
                std::min(bit, config.regs.regBits - m);
            RegInjection multi = site;
            multi.bitMask = static_cast<std::uint32_t>(
                ((std::uint64_t(1) << m) - 1) << start);
            group_specs.push_back(TrialSpec{{multi}, {}});
        }
    }
    std::vector<InjectOutcome> group_outcomes =
        campaign.runBatch(group_specs);
    for (std::size_t g = 0; g < group_outcomes.size(); ++g) {
        unsigned m = static_cast<unsigned>(g % 3);
        ++stats.groupsTested[m];
        if (group_outcomes[g] != InjectOutcome::Sdc)
            ++stats.interference[m];
    }
    return stats;
}

} // namespace mbavf
