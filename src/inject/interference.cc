#include "inject/interference.hh"

#include <vector>

#include "common/rng.hh"
#include "inject/campaign.hh"

namespace mbavf
{

InterferenceStats
runInterferenceStudy(const std::string &workload, unsigned scale,
                     const GpuConfig &config, unsigned num_injections,
                     std::uint64_t seed)
{
    InterferenceStats stats;
    stats.workload = workload;
    stats.singleInjections = num_injections;

    Campaign campaign(workload, scale, config);
    Rng rng(seed);

    // Phase 1: find SDC ACE bits with random single-bit injections.
    std::vector<RegInjection> sdc_sites;
    for (unsigned i = 0; i < num_injections; ++i) {
        RegInjection inj = campaign.sampleSingleBit(rng);
        if (campaign.inject(inj) == InjectOutcome::Sdc)
            sdc_sites.push_back(inj);
    }
    stats.sdcAceBits = static_cast<unsigned>(sdc_sites.size());

    // Phase 2: for each SDC site, inject 2x1/3x1/4x1 groups of
    // adjacent bits in the same register at the same trigger. The
    // group is predicted SDC (it contains a known SDC ACE bit);
    // interference is a non-SDC outcome.
    for (const RegInjection &site : sdc_sites) {
        unsigned bit = 0;
        while (!(site.bitMask >> bit & 1))
            ++bit;
        for (unsigned m = 2; m <= 4; ++m) {
            unsigned start =
                std::min(bit, config.regs.regBits - m);
            RegInjection multi = site;
            multi.bitMask = static_cast<std::uint32_t>(
                ((std::uint64_t(1) << m) - 1) << start);
            ++stats.groupsTested[m - 2];
            if (campaign.inject(multi) == InjectOutcome::Masked)
                ++stats.interference[m - 2];
        }
    }
    return stats;
}

} // namespace mbavf
