#include "inject/stratified.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "common/journal_io.hh"
#include "common/logging.hh"
#include "core/lifetime_arena.hh"
#include "workloads/ace_runner.hh"

namespace mbavf
{

namespace
{

/** Seed-domain tag separating stratum streams from uniform trials. */
constexpr std::uint64_t stratumSeedTag = 0x737472617466ull; // "stratf"

/** Coarse log2 band of a site's total ACE cycles (3 bits). */
unsigned
massBand(std::uint64_t ace_cycles)
{
    if (ace_cycles == 0)
        return 0;
    const unsigned lg = 63u - std::countl_zero(ace_cycles);
    return 1 + std::min(6u, lg / 5);
}

/**
 * Generous cycle-overlap test: errs toward "overlaps" at the window
 * edges, which can only demote a skippable stratum to sampled —
 * never the unsound direction.
 */
bool
overlaps(Cycle begin, Cycle end, Cycle win_start, Cycle win_end)
{
    return begin <= win_end && end >= win_start;
}

double
clampSpread(double p, double floor_p)
{
    return std::min(std::max(p, floor_p), 1.0 - floor_p);
}

/** Predicted Wilson-ish half-width of a stratum at n trials. */
double
predictedHalf(double p, double floor_p, std::uint64_t n, double z)
{
    if (n == 0)
        return 0.5; // vacuous [0,1] before the first trial
    const double q = clampSpread(p, floor_p);
    return z * std::sqrt(q * (1.0 - q) / static_cast<double>(n));
}

/** Max-heap entry of the Sainte-Lague pick replay. */
struct HeapEntry
{
    double value;
    std::uint32_t stratum;
    std::uint64_t count; ///< picks already taken from the stratum
};

struct HeapLess
{
    bool
    operator()(const HeapEntry &a, const HeapEntry &b) const
    {
        if (a.value != b.value)
            return a.value < b.value;
        return a.stratum > b.stratum; // ties: lowest index on top
    }
};

using PickHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess>;

PickHeap
seedHeap(const std::vector<double> &scores)
{
    std::vector<HeapEntry> entries;
    for (std::uint32_t h = 0; h < scores.size(); ++h) {
        if (scores[h] > 0.0)
            entries.push_back({scores[h], h, 0});
    }
    return PickHeap(HeapLess{}, std::move(entries));
}

/** Pop the next pick and re-insert the stratum with its new score. */
HeapEntry
takePick(PickHeap &heap, const std::vector<double> &scores)
{
    HeapEntry top = heap.top();
    heap.pop();
    const std::uint64_t next = top.count + 1;
    heap.push({scores[top.stratum] /
                   static_cast<double>(2 * next + 1),
               top.stratum, next});
    return top;
}

} // namespace

Stratification
Stratification::build(const Campaign &campaign,
                      const StratifyOptions &options)
{
    if (options.windows == 0 || options.windows > 16)
        fatal("stratify windows must be in [1, 16]");
    if (options.maxClasses < 2)
        fatal("stratify class cap must be at least 2");
    if (campaign.goldenInstrs() == 0)
        fatal("cannot stratify a workload with no instructions");

    Stratification strat;
    strat.windows_ = options.windows;
    strat.predictedFloor_ = options.predictedFloor;
    strat.goldenInstrs_ = campaign.goldenInstrs();
    strat.cusUsed_ = campaign.cusUsed();
    strat.geom_ = campaign.config().regs;

    const unsigned W = options.windows;
    strat.windowBounds_.resize(W + 1);
    for (unsigned w = 0; w <= W; ++w) {
        strat.windowBounds_[w] =
            strat.goldenInstrs_ * w / W;
    }

    // Level one: the instrumented run. Sampling the window
    // boundaries' begin cycles at the injection fire point maps the
    // instruction-indexed trigger windows onto the cycle-indexed
    // lifetime segments; the final boundary never fires (trigger
    // indices stop at goldenInstrs-1) and pads to the horizon, which
    // bounds every lifetime.
    AceRunOptions ace;
    ace.scale = campaign.scale();
    ace.config = campaign.config();
    ace.probeAllVgprs = true;
    ace.sampleCyclesAt = strat.windowBounds_;
    const AceRun run = runAceAnalysis(campaign.workloadName(), ace);
    if (run.instrs != strat.goldenInstrs_) {
        fatal("stratifier ACE run executed ", run.instrs,
              " instructions but the golden run executed ",
              strat.goldenInstrs_,
              "; the trigger-window mapping would be unsound");
    }
    if (run.vgprPerCu.size() < strat.cusUsed_)
        fatal("ACE run probed fewer CUs than the golden run used");

    // Pad each window's upper cycle bound for intra-wave lane skew:
    // the boundary instruction's lanes retire up to aluCycles after
    // its begin cycle, and a flip at the last trigger of the window
    // can land anywhere in that span.
    const Cycle pad = campaign.config().aluCycles;
    std::vector<Cycle> cycleBounds(W + 1);
    for (unsigned w = 0; w <= W; ++w)
        cycleBounds[w] = run.sampledCycles[w];

    const RegFileGeometry &geom = strat.geom_;
    const std::uint64_t containers_per_cu = geom.numContainers();
    const std::uint64_t bits_per_container = geom.regBits;
    const std::uint64_t total_sites =
        strat.cusUsed_ * containers_per_cu * bits_per_container;

    // Pass 1: per-site windowed ACE signature and mass band. An
    // untouched site keeps key 0 (no signature, no mass) — the
    // provably-dead class that makes skipping pay.
    std::vector<std::uint32_t> site_key(total_sites, 0);
    std::vector<LifetimeArena> arenas;
    arenas.reserve(strat.cusUsed_);
    for (unsigned cu = 0; cu < strat.cusUsed_; ++cu)
        arenas.emplace_back(run.vgprPerCu[cu]);

    for (unsigned cu = 0; cu < strat.cusUsed_; ++cu) {
        const LifetimeArena &arena = arenas[cu];
        const unsigned width = arena.wordWidth();
        for (std::uint32_t w = 0; w < arena.numWords(); ++w) {
            const std::uint64_t container = arena.wordContainer(w);
            const unsigned word_base = arena.wordIndex(w) * width;
            std::uint32_t sig[64] = {};
            std::uint64_t ace_cycles[64] = {};
            const std::uint32_t off = arena.offset(w);
            const std::uint32_t cnt = arena.count(w);
            for (std::uint32_t s = off; s < off + cnt; ++s) {
                std::uint64_t ace = arena.masks()[s].ace;
                if (ace == 0)
                    continue;
                const Cycle begin = arena.begins()[s];
                const Cycle end = arena.ends()[s];
                std::uint32_t winmask = 0;
                for (unsigned v = 0; v < W; ++v) {
                    if (overlaps(begin, end, cycleBounds[v],
                                 cycleBounds[v + 1] + pad))
                        winmask |= std::uint32_t(1) << v;
                }
                while (ace != 0) {
                    const unsigned bit = std::countr_zero(ace);
                    ace &= ace - 1;
                    sig[bit] |= winmask;
                    ace_cycles[bit] += end - begin;
                }
            }
            for (unsigned bit = 0; bit < width; ++bit) {
                const std::uint64_t site =
                    (cu * containers_per_cu + container) *
                        bits_per_container +
                    word_base + bit;
                site_key[site] =
                    (sig[bit] << 3) | massBand(ace_cycles[bit]);
            }
        }
    }

    // Class formation: the most populous keys keep their own class,
    // the tail merges into a mixed class that is never skipped.
    std::unordered_map<std::uint32_t, std::uint64_t> key_count;
    for (std::uint32_t key : site_key)
        ++key_count[key];
    std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked(
        key_count.begin(), key_count.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    const bool mixed = ranked.size() > options.maxClasses - 1;
    const std::size_t kept =
        mixed ? options.maxClasses - 1 : ranked.size();
    std::vector<std::uint32_t> kept_keys;
    for (std::size_t i = 0; i < kept; ++i)
        kept_keys.push_back(ranked[i].first);
    std::sort(kept_keys.begin(), kept_keys.end());
    strat.numClasses_ =
        static_cast<std::uint32_t>(kept + (mixed ? 1 : 0));
    const std::uint32_t mixed_class = strat.numClasses_ - 1;

    std::unordered_map<std::uint32_t, std::uint32_t> class_of_key;
    for (std::uint32_t c = 0; c < kept_keys.size(); ++c)
        class_of_key[kept_keys[c]] = c;

    std::vector<std::uint32_t> site_class(total_sites);
    std::vector<std::uint64_t> class_count(strat.numClasses_, 0);
    for (std::uint64_t site = 0; site < total_sites; ++site) {
        auto it = class_of_key.find(site_key[site]);
        const std::uint32_t c =
            it != class_of_key.end() ? it->second : mixed_class;
        site_class[site] = c;
        ++class_count[c];
    }

    // Counting-sort the site codes per class (ascending site order
    // within each class, which makes the membership lists — and the
    // hash over them — canonical).
    strat.classOffset_.assign(strat.numClasses_ + 1, 0);
    for (std::uint32_t c = 0; c < strat.numClasses_; ++c)
        strat.classOffset_[c + 1] =
            strat.classOffset_[c] + class_count[c];
    strat.classSites_.resize(total_sites);
    std::vector<std::uint64_t> fill(strat.classOffset_.begin(),
                                    strat.classOffset_.end() - 1);
    for (std::uint64_t site = 0; site < total_sites; ++site) {
        strat.classSites_[fill[site_class[site]]++] =
            static_cast<std::uint32_t>(site);
    }

    // Pass 2: per-(class, window) ACE mass for the level-one density
    // predictions that drive the allocation.
    std::vector<double> ace_win(
        std::uint64_t(strat.numClasses_) * W, 0.0);
    for (unsigned cu = 0; cu < strat.cusUsed_; ++cu) {
        const LifetimeArena &arena = arenas[cu];
        const unsigned width = arena.wordWidth();
        for (std::uint32_t w = 0; w < arena.numWords(); ++w) {
            const std::uint64_t container = arena.wordContainer(w);
            const unsigned word_base = arena.wordIndex(w) * width;
            const std::uint64_t site_base =
                (cu * containers_per_cu + container) *
                    bits_per_container +
                word_base;
            const std::uint32_t off = arena.offset(w);
            const std::uint32_t cnt = arena.count(w);
            for (std::uint32_t s = off; s < off + cnt; ++s) {
                std::uint64_t ace = arena.masks()[s].ace;
                if (ace == 0)
                    continue;
                const Cycle begin = arena.begins()[s];
                const Cycle end = arena.ends()[s];
                while (ace != 0) {
                    const unsigned bit = std::countr_zero(ace);
                    ace &= ace - 1;
                    const std::uint32_t c =
                        site_class[site_base + bit];
                    for (unsigned v = 0; v < W; ++v) {
                        const Cycle lo = std::max(
                            begin, cycleBounds[v]);
                        const Cycle hi = std::min(
                            end, cycleBounds[v + 1] + pad);
                        if (hi > lo) {
                            ace_win[std::uint64_t(c) * W + v] +=
                                static_cast<double>(hi - lo);
                        }
                    }
                }
            }
        }
    }

    // Assemble the strata (class-major) with exact weights, density
    // predictions, and the soundness-gated skip flags.
    strat.strata_.resize(std::uint64_t(strat.numClasses_) * W);
    strat.scores_.assign(strat.strata_.size(), 0.0);
    for (std::uint32_t c = 0; c < strat.numClasses_; ++c) {
        // Every site of a non-mixed class shares one signature, so
        // one representative decides the class's window overlap.
        std::uint32_t class_sig = 0;
        if (class_count[c] > 0) {
            const std::uint32_t rep =
                strat.classSites_[strat.classOffset_[c]];
            class_sig = site_key[rep] >> 3;
        }
        const bool is_mixed = mixed && c == mixed_class;
        for (unsigned v = 0; v < W; ++v) {
            Stratum &st = strat.strata_[std::uint64_t(c) * W + v];
            st.siteClass = c;
            st.window = v;
            const std::uint64_t span = strat.windowBounds_[v + 1] -
                                       strat.windowBounds_[v];
            st.weight =
                (static_cast<double>(class_count[c]) /
                 static_cast<double>(total_sites)) *
                (static_cast<double>(span) /
                 static_cast<double>(strat.goldenInstrs_));
            const Cycle cyc_span = cycleBounds[v + 1] + pad -
                                   cycleBounds[v];
            const double mass =
                ace_win[std::uint64_t(c) * W + v];
            st.predicted =
                class_count[c] == 0 || cyc_span == 0
                    ? 0.0
                    : std::min(
                          1.0,
                          mass /
                              (static_cast<double>(class_count[c]) *
                               static_cast<double>(cyc_span)));
            // Skip only what the analysis proves Masked: a zero-span
            // window holds no trigger, and a class whose signature
            // clears window v has no ACE overlap anywhere in the
            // (padded) window — the flip lands on a dead bit. The
            // mixed class pools different signatures and is never
            // skipped.
            st.skipped =
                span == 0 ||
                (!is_mixed && ((class_sig >> v) & 1u) == 0);
            if (st.skipped) {
                strat.skippedWeight_ += span == 0 ? 0.0 : st.weight;
            } else {
                const double q = clampSpread(
                    st.predicted, strat.predictedFloor_);
                strat.scores_[std::uint64_t(c) * W + v] =
                    st.weight * std::sqrt(q * (1.0 - q));
            }
        }
    }

    // Partition identity: everything a merge must agree on before
    // per-stratum counts may be summed.
    std::string head =
        "mbavf-strata v1 workload=" + campaign.workloadName() +
        " scale=" + std::to_string(campaign.scale()) +
        " windows=" + std::to_string(W) +
        " classes=" + std::to_string(strat.numClasses_) +
        " cus=" + std::to_string(strat.cusUsed_) +
        " instrs=" + std::to_string(strat.goldenInstrs_);
    std::uint64_t h = fnv1a64(head);
    h = fnv1a64(strat.windowBounds_.data(),
                strat.windowBounds_.size() *
                    sizeof(strat.windowBounds_[0]),
                h);
    h = fnv1a64(cycleBounds.data(),
                cycleBounds.size() * sizeof(cycleBounds[0]), h);
    h = fnv1a64(strat.classOffset_.data(),
                strat.classOffset_.size() *
                    sizeof(strat.classOffset_[0]),
                h);
    h = fnv1a64(strat.classSites_.data(),
                strat.classSites_.size() *
                    sizeof(strat.classSites_[0]),
                h);
    std::string flags(strat.strata_.size(), '0');
    for (std::size_t i = 0; i < strat.strata_.size(); ++i)
        flags[i] = strat.strata_[i].skipped ? '1' : '0';
    strat.hash_ = fnv1a64(flags, h);
    return strat;
}

std::vector<Stratification::Pick>
Stratification::picks(std::uint64_t first, std::uint64_t n) const
{
    std::vector<Pick> out;
    if (n == 0)
        return out;
    PickHeap heap = seedHeap(scores_);
    if (heap.empty()) {
        fatal("no sampleable strata: every stratum is provably "
              "Masked, so the campaign needs no trials");
    }
    out.reserve(n);
    for (std::uint64_t j = 0; j < first + n; ++j) {
        const HeapEntry pick = takePick(heap, scores_);
        if (j >= first)
            out.push_back({pick.stratum, pick.count});
    }
    return out;
}

std::vector<std::uint64_t>
Stratification::allocation(std::uint64_t budget) const
{
    std::vector<std::uint64_t> counts(strata_.size(), 0);
    for (const Pick &pick : picks(0, budget))
        ++counts[pick.stratum];
    return counts;
}

std::uint64_t
Stratification::budgetForTargetCi(double target_width,
                                  std::uint64_t max_budget) const
{
    if (target_width <= 0.0)
        return max_budget;
    PickHeap heap = seedHeap(scores_);
    if (heap.empty())
        return 0;
    constexpr double z = 1.96;
    std::vector<std::uint64_t> counts(strata_.size(), 0);
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < strata_.size(); ++i) {
        if (strata_[i].skipped || scores_[i] <= 0.0)
            continue;
        const double term = strata_[i].weight *
                            predictedHalf(strata_[i].predicted,
                                          predictedFloor_, 0, z);
        sum_sq += term * term;
    }
    for (std::uint64_t budget = 1; budget <= max_budget; ++budget) {
        const HeapEntry pick = takePick(heap, scores_);
        const Stratum &st = strata_[pick.stratum];
        const std::uint64_t n = ++counts[pick.stratum];
        const double before =
            st.weight * predictedHalf(st.predicted, predictedFloor_,
                                      n - 1, z);
        const double after =
            st.weight * predictedHalf(st.predicted, predictedFloor_,
                                      n, z);
        sum_sq += after * after - before * before;
        if (2.0 * std::sqrt(std::max(sum_sq, 0.0)) <= target_width)
            return budget;
    }
    return max_budget;
}

std::uint64_t
Stratification::stratumSeed(std::uint32_t h,
                            std::uint64_t base_seed) const
{
    return splitMix64(base_seed ^ stratumSeedTag, h);
}

std::uint64_t
Stratification::pickSeed(const Pick &pick,
                         std::uint64_t base_seed) const
{
    return splitMix64(stratumSeed(pick.stratum, base_seed),
                      pick.occurrence);
}

TrialSpec
Stratification::trialSpec(const Pick &pick,
                          std::uint64_t base_seed) const
{
    const Stratum &st = strata_.at(pick.stratum);
    if (st.skipped)
        fatal("drew a trial from a skipped stratum");
    const std::uint64_t n_sites = classSiteCount(st.siteClass);
    const std::uint64_t span = windowBounds_[st.window + 1] -
                               windowBounds_[st.window];
    if (n_sites == 0 || span == 0)
        fatal("drew a trial from an empty stratum");

    Rng rng(pickSeed(pick, base_seed));
    const std::uint32_t site =
        classSites_[classOffset_[st.siteClass] + rng.below(n_sites)];
    const std::uint64_t trigger =
        windowBounds_[st.window] + rng.below(span);

    const std::uint64_t bits = geom_.regBits;
    const std::uint64_t containers = geom_.numContainers();
    const std::uint64_t bit = site % bits;
    const std::uint64_t container = (site / bits) % containers;
    const std::uint64_t cu = site / bits / containers;
    RegInjection inj;
    inj.cu = static_cast<unsigned>(cu);
    inj.lane = static_cast<unsigned>(container % geom_.numLanes);
    inj.reg = static_cast<unsigned>(container / geom_.numLanes %
                                    geom_.numRegs);
    inj.slot = static_cast<unsigned>(container / geom_.numLanes /
                                     geom_.numRegs);
    inj.bitMask = std::uint32_t(1) << bit;
    inj.triggerInstr = trigger;
    TrialSpec spec;
    spec.regFlips.push_back(inj);
    return spec;
}

WilsonInterval
combinedStratifiedInterval(const std::vector<Stratum> &strata,
                           const std::vector<StratumTally> &tallies,
                           InjectOutcome outcome, double z)
{
    if (tallies.size() != strata.size())
        fatal("stratum tally count does not match the partition");
    std::vector<StratumStat> stats(strata.size());
    for (std::size_t i = 0; i < strata.size(); ++i) {
        StratumStat &stat = stats[i];
        stat.weight = strata[i].weight;
        if (strata[i].skipped) {
            stat.certain = true;
            stat.certainRate =
                outcome == InjectOutcome::Masked ? 1.0 : 0.0;
        } else {
            stat.trials = tallies[i].trials;
            stat.successes =
                tallies[i].counts[static_cast<std::size_t>(outcome)];
        }
    }
    return stratifiedInterval(stats, z);
}

} // namespace mbavf
