/**
 * @file
 * Campaign checkpoint journal: crash-consistent progress for long
 * injection campaigns.
 *
 * A journal is a plain-text file with one header line and one record
 * per completed trial:
 *
 *   mbavf-journal v1 workload=<name> scale=<n> kind=<register|memory>
 *       seed=<base> trials=<n>                          (one line)
 *   <index> <seed> <outcome> <code>
 *   ...
 *
 * Records are contiguous and ascending from index 0; <seed> is
 * splitMix64(base, index), <outcome> an injectOutcomeName(), and
 * <code> the trial's diagnostic code or "-" when it has none. Because
 * trial specs are pure functions of (base seed, index), a journal
 * plus its header is sufficient to resume a campaign bit-identically
 * at any thread count: completed trials are replayed from the file
 * and the remainder re-derive their sites from their seeds.
 *
 * Version 2 journals checkpoint stratified campaigns
 * (inject/stratified.hh). The header gains a trailing
 * strata=<hash> field carrying the partition identity, records gain
 * a stratum column —
 *
 *   <index> <seed> <stratum> <outcome> <code>
 *
 * — and <seed> is the pick's stratum-stream seed
 * (Stratification::pickSeed) rather than splitMix64(base, index).
 * Resume refuses a journal whose strata hash disagrees with the
 * partition rebuilt from the campaign configuration, exactly like a
 * workload mismatch: the pick sequence would attribute trials to the
 * wrong strata.
 *
 * Crash consistency: the journal is only ever replaced via
 * write-to-temporary + fsync + atomic rename, so a reader observes
 * either the previous or the new complete snapshot. The loader
 * additionally tolerates a file whose final line lost its newline
 * (e.g. a copy truncated mid-write by an imperfect transport): that
 * trailing partial record is dropped and its trial re-runs. Any
 * other malformation is rejected outright — resuming from a
 * corrupted journal would silently misattribute outcomes.
 */

#ifndef MBAVF_INJECT_JOURNAL_HH
#define MBAVF_INJECT_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "check/report.hh"
#include "inject/campaign.hh"

namespace mbavf
{

/** Campaign identity; resume refuses a journal that doesn't match. */
struct JournalHeader
{
    std::string workload;
    unsigned scale = 1;
    TrialKind kind = TrialKind::Register;
    std::uint64_t baseSeed = 0;
    std::uint64_t trials = 0;
    /** Journal format version: 1 = uniform, 2 = stratified. */
    unsigned version = 1;
    /** Stratification::hash() of the partition (version 2 only). */
    std::uint64_t strataHash = 0;

    bool
    operator==(const JournalHeader &other) const
    {
        return workload == other.workload && scale == other.scale &&
               kind == other.kind && baseSeed == other.baseSeed &&
               trials == other.trials && version == other.version &&
               strataHash == other.strataHash;
    }
};

/** One completed trial as recorded in a journal. */
struct JournalRecord
{
    std::uint64_t index = 0;
    std::uint64_t seed = 0;
    /** Stratum the pick belongs to (version 2 journals only). */
    std::uint32_t stratum = 0;
    TrialResult result;

    bool
    operator==(const JournalRecord &other) const
    {
        return index == other.index && seed == other.seed &&
               stratum == other.stratum && result == other.result;
    }
};

/** An in-memory journal snapshot. */
struct CampaignJournal
{
    JournalHeader header;
    /** Completed trials, contiguous and ascending from index 0. */
    std::vector<JournalRecord> records;

    /** Outcome/code tallies over the recorded trials. */
    CampaignTally tally() const;

    /**
     * Parse @p path. Returns false with a diagnostic in @p error for
     * anything malformed; a final line missing its newline is dropped
     * silently (see the file comment). @p out is valid only on true.
     */
    static bool load(const std::string &path, CampaignJournal &out,
                     std::string &error);

    /**
     * Atomically replace @p path with this snapshot
     * (write-temporary, fsync, rename). Returns false with a
     * diagnostic in @p error on I/O failure.
     */
    bool save(const std::string &path, std::string &error) const;
};

/**
 * Thread-safe incremental journal writer for a running campaign.
 *
 * Workers deposit results in any order via record(); the writer
 * tracks the longest contiguous completed prefix and atomically
 * rewrites the journal file whenever the prefix has grown by at
 * least the flush interval. Out-of-order completions are buffered —
 * the on-disk journal only ever contains a contiguous prefix, which
 * is what makes resume trivially correct.
 */
class JournalWriter
{
  public:
    /**
     * @param path        journal file to maintain
     * @param header      campaign identity written on every flush
     * @param flush_every rewrite the file when the contiguous prefix
     *                    has grown by this many records (>= 1)
     * @param completed   records already on disk (resume); must be a
     *                    contiguous prefix
     */
    JournalWriter(std::string path, JournalHeader header,
                  std::uint64_t flush_every,
                  std::vector<JournalRecord> completed = {});

    /** Deposit trial @p index's result; may flush. Thread-safe. */
    void record(std::uint64_t index, const TrialResult &result);

    /**
     * Stratified (version 2) deposit: the caller supplies the pick's
     * seed and stratum instead of the splitMix64(base, index) stream.
     */
    void record(std::uint64_t index, std::uint64_t seed,
                std::uint32_t stratum, const TrialResult &result);

    /** Flush everything contiguous to disk (end of campaign). */
    void finish();

    /** The journal as of the last flush/finish. */
    const CampaignJournal &journal() const { return journal_; }

  private:
    /** Rewrite the file with the current prefix. Caller holds the lock. */
    void flushLocked();

    std::string path_;
    std::uint64_t flushEvery_;
    std::mutex mutex_;
    CampaignJournal journal_;   ///< contiguous prefix (records)
    std::vector<JournalRecord> pending_; ///< out-of-order buffer
    std::uint64_t flushedAt_ = 0; ///< prefix length at last flush
};

/**
 * Validate a journal file for mbavf_lint --journal. Structural
 * problems (unreadable file, bad header, malformed records,
 * non-contiguous indices) and semantic ones (unknown outcome names,
 * invalid diagnostic codes for the outcome, seeds that disagree with
 * splitMix64(base, index)) report under stable "journal.*" codes.
 */
void lintCampaignJournal(const std::string &path, CheckReport &report);

} // namespace mbavf

#endif // MBAVF_INJECT_JOURNAL_HH
