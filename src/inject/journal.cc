#include "inject/journal.hh"

#include "common/journal_io.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/trap.hh"

namespace mbavf
{

namespace
{

constexpr const char *journalMagic = "mbavf-journal";
constexpr const char *journalVersionV1 = "v1";
constexpr const char *journalVersionV2 = "v2";

// The parsing/atomic-write discipline is shared with the serve queue
// journal (common/journal_io.hh); local aliases keep the call sites
// below readable.
constexpr auto parseU64 = parseJournalU64;
constexpr auto splitTokens = splitJournalTokens;
constexpr auto keyValue = journalKeyValue;

bool
parseHeaderLine(const std::string &line, JournalHeader &header,
                std::string &error)
{
    const std::vector<std::string> tokens = splitTokens(line);
    if (tokens.size() >= 2 && tokens[0] == journalMagic &&
        tokens[1] == journalVersionV1 && tokens.size() == 7) {
        header.version = 1;
    } else if (tokens.size() >= 2 && tokens[0] == journalMagic &&
               tokens[1] == journalVersionV2 && tokens.size() == 8) {
        header.version = 2;
    } else {
        error = "not a " + std::string(journalMagic) + " " +
                journalVersionV1 + "/" + journalVersionV2 + " header";
        return false;
    }
    std::string value;
    if (!keyValue(tokens[2], "workload", value) || value.empty()) {
        error = "bad workload field '" + tokens[2] + "'";
        return false;
    }
    header.workload = value;
    std::uint64_t scale = 0;
    if (!keyValue(tokens[3], "scale", value) ||
        !parseU64(value, scale) || scale == 0) {
        error = "bad scale field '" + tokens[3] + "'";
        return false;
    }
    header.scale = static_cast<unsigned>(scale);
    if (!keyValue(tokens[4], "kind", value) ||
        !parseTrialKind(value, header.kind)) {
        error = "bad kind field '" + tokens[4] + "'";
        return false;
    }
    if (!keyValue(tokens[5], "seed", value) ||
        !parseU64(value, header.baseSeed)) {
        error = "bad seed field '" + tokens[5] + "'";
        return false;
    }
    if (!keyValue(tokens[6], "trials", value) ||
        !parseU64(value, header.trials)) {
        error = "bad trials field '" + tokens[6] + "'";
        return false;
    }
    if (header.version == 2) {
        if (!keyValue(tokens[7], "strata", value) ||
            !parseU64(value, header.strataHash)) {
            error = "bad strata field '" + tokens[7] + "'";
            return false;
        }
    }
    return true;
}

bool
parseRecordLine(const std::string &line, unsigned version,
                JournalRecord &record, std::string &error)
{
    const std::vector<std::string> tokens = splitTokens(line);
    const std::size_t want = version == 2 ? 5 : 4;
    if (tokens.size() != want) {
        error = version == 2
                    ? "expected '<index> <seed> <stratum> <outcome> "
                      "<code>'"
                    : "expected '<index> <seed> <outcome> <code>'";
        return false;
    }
    if (!parseU64(tokens[0], record.index)) {
        error = "bad trial index '" + tokens[0] + "'";
        return false;
    }
    if (!parseU64(tokens[1], record.seed)) {
        error = "bad seed '" + tokens[1] + "'";
        return false;
    }
    std::size_t at = 2;
    if (version == 2) {
        std::uint64_t stratum = 0;
        if (!parseU64(tokens[at], stratum) ||
            stratum > 0xffffffffull) {
            error = "bad stratum '" + tokens[at] + "'";
            return false;
        }
        record.stratum = static_cast<std::uint32_t>(stratum);
        ++at;
    }
    if (!parseInjectOutcome(tokens[at], record.result.outcome)) {
        error = "unknown outcome '" + tokens[at] + "'";
        return false;
    }
    record.result.code =
        tokens[at + 1] == "-" ? "" : tokens[at + 1];
    return true;
}

void
formatHeader(std::string &out, const JournalHeader &header)
{
    out += journalMagic;
    out += ' ';
    out += header.version == 2 ? journalVersionV2 : journalVersionV1;
    out += " workload=" + header.workload;
    out += " scale=" + std::to_string(header.scale);
    out += " kind=";
    out += trialKindName(header.kind);
    out += " seed=" + std::to_string(header.baseSeed);
    out += " trials=" + std::to_string(header.trials);
    if (header.version == 2)
        out += " strata=" + std::to_string(header.strataHash);
    out += '\n';
}

void
formatRecord(std::string &out, unsigned version,
             const JournalRecord &record)
{
    out += std::to_string(record.index);
    out += ' ';
    out += std::to_string(record.seed);
    if (version == 2) {
        out += ' ';
        out += std::to_string(record.stratum);
    }
    out += ' ';
    out += injectOutcomeName(record.result.outcome);
    out += ' ';
    out += record.result.code.empty() ? "-" : record.result.code;
    out += '\n';
}

} // namespace

CampaignTally
CampaignJournal::tally() const
{
    CampaignTally tally;
    for (const JournalRecord &record : records)
        tally.add(record.result);
    return tally;
}

bool
CampaignJournal::load(const std::string &path, CampaignJournal &out,
                      std::string &error)
{
    std::vector<std::string> lines;
    if (!readCompleteLines(path, lines, error))
        return false;
    if (lines.empty()) {
        error = "'" + path + "' has no complete header line";
        return false;
    }
    CampaignJournal journal;
    if (!parseHeaderLine(lines[0], journal.header, error)) {
        error = path + ":1: " + error;
        return false;
    }
    journal.records.reserve(lines.size() - 1);
    for (std::size_t i = 1; i < lines.size(); ++i) {
        JournalRecord record;
        if (!parseRecordLine(lines[i], journal.header.version,
                             record, error)) {
            error = path + ":" + std::to_string(i + 1) + ": " + error;
            return false;
        }
        if (record.index != journal.records.size()) {
            error = path + ":" + std::to_string(i + 1) +
                    ": trial index " + std::to_string(record.index) +
                    " breaks the contiguous sequence (expected " +
                    std::to_string(journal.records.size()) + ")";
            return false;
        }
        if (record.index >= journal.header.trials) {
            error = path + ":" + std::to_string(i + 1) +
                    ": trial index " + std::to_string(record.index) +
                    " outside the campaign's " +
                    std::to_string(journal.header.trials) + " trials";
            return false;
        }
        journal.records.push_back(std::move(record));
    }
    out = std::move(journal);
    return true;
}

bool
CampaignJournal::save(const std::string &path,
                      std::string &error) const
{
    std::string text;
    formatHeader(text, header);
    for (const JournalRecord &record : records)
        formatRecord(text, header.version, record);
    return atomicWriteFile(path, text, error);
}

JournalWriter::JournalWriter(std::string path, JournalHeader header,
                             std::uint64_t flush_every,
                             std::vector<JournalRecord> completed)
    : path_(std::move(path)),
      flushEvery_(flush_every == 0 ? 1 : flush_every)
{
    journal_.header = std::move(header);
    journal_.records = std::move(completed);
    for (std::size_t i = 0; i < journal_.records.size(); ++i) {
        if (journal_.records[i].index != i)
            panic("journal resume records are not a contiguous "
                  "prefix");
    }
    flushedAt_ = journal_.records.size();
}

void
JournalWriter::record(std::uint64_t index, const TrialResult &result)
{
    record(index, splitMix64(journal_.header.baseSeed, index), 0,
           result);
}

void
JournalWriter::record(std::uint64_t index, std::uint64_t seed,
                      std::uint32_t stratum,
                      const TrialResult &result)
{
    std::lock_guard<std::mutex> guard(mutex_);
    JournalRecord rec;
    rec.index = index;
    rec.seed = seed;
    rec.stratum = stratum;
    rec.result = result;
    if (index < journal_.records.size())
        panic("trial ", index, " recorded twice");
    pending_.push_back(std::move(rec));

    // Fold everything contiguous into the prefix.
    bool grew = true;
    while (grew) {
        grew = false;
        const std::uint64_t next = journal_.records.size();
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            if (pending_[i].index == next) {
                journal_.records.push_back(std::move(pending_[i]));
                pending_.erase(pending_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                grew = true;
                break;
            }
        }
    }
    if (journal_.records.size() >= flushedAt_ + flushEvery_)
        flushLocked();
}

void
JournalWriter::finish()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!pending_.empty())
        panic("journal finished with ", pending_.size(),
              " non-contiguous trial results");
    flushLocked();
}

void
JournalWriter::flushLocked()
{
    std::string error;
    if (!journal_.save(path_, error))
        fatal("campaign checkpoint failed: ", error);
    flushedAt_ = journal_.records.size();
}

void
lintCampaignJournal(const std::string &path, CheckReport &report)
{
    std::vector<std::string> lines;
    std::string error;
    if (!readCompleteLines(path, lines, error)) {
        report.error("journal.io", path, error);
        return;
    }
    if (lines.empty()) {
        report.error("journal.header", path + ":1",
                     "no complete header line");
        return;
    }
    JournalHeader header;
    if (!parseHeaderLine(lines[0], header, error)) {
        report.error("journal.header", path + ":1", error);
        return;
    }
    std::uint64_t expected = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const std::string where = path + ":" + std::to_string(i + 1);
        JournalRecord record;
        if (!parseRecordLine(lines[i], header.version, record,
                             error)) {
            report.error("journal.record", where, error);
            continue;
        }
        if (record.index != expected) {
            report.error("journal.index", where,
                         "trial index " +
                             std::to_string(record.index) +
                             " breaks the contiguous sequence "
                             "(expected " +
                             std::to_string(expected) + ")");
            // Re-sync on the recorded index so one gap doesn't
            // cascade into a finding per remaining line.
            expected = record.index;
        }
        if (record.index >= header.trials) {
            report.error("journal.index", where,
                         "trial index " +
                             std::to_string(record.index) +
                             " outside the campaign's " +
                             std::to_string(header.trials) +
                             " trials");
        }
        // Version 2 seeds come from the stratum pick streams; only
        // the partition (not the journal alone) can validate them.
        if (header.version == 1) {
            const std::uint64_t want =
                splitMix64(header.baseSeed, record.index);
            if (record.seed != want) {
                report.error(
                    "journal.seed", where,
                    "seed " + std::to_string(record.seed) +
                        " does not match splitMix64(base, " +
                        std::to_string(record.index) + ") = " +
                        std::to_string(want));
            }
        }
        const std::string &code = record.result.code;
        switch (record.result.outcome) {
          case InjectOutcome::Masked:
          case InjectOutcome::Sdc:
            if (!code.empty()) {
                report.error(
                    "journal.code", where,
                    std::string(
                        injectOutcomeName(record.result.outcome)) +
                        " trial carries diagnostic code '" + code +
                        "'");
            }
            break;
          case InjectOutcome::Due:
            if (code.compare(0, 4, "due.") != 0) {
                report.error("journal.code", where,
                             "due trial code '" + code +
                                 "' lacks the due. scheme prefix");
            }
            break;
          case InjectOutcome::Crash:
            if (!isKnownTrapCode(code) || isWatchdogTrapCode(code)) {
                report.error("journal.code", where,
                             "crash trial code '" + code +
                                 "' is not a known non-watchdog "
                                 "trap code");
            }
            break;
          case InjectOutcome::Hang:
            if (!isWatchdogTrapCode(code)) {
                report.error("journal.code", where,
                             "hang trial code '" + code +
                                 "' is not a watchdog trap code");
            }
            break;
        }
        ++expected;
    }
}

} // namespace mbavf
