#include "inject/campaign.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mbavf
{

Campaign::Campaign(std::string workload, unsigned scale,
                   GpuConfig config)
    : workload_(std::move(workload)), scale_(scale), config_(config)
{
    goldenOutput_ = execute({}, {}, &goldenInstrs_);
    if (goldenInstrs_ == 0)
        fatal("golden run of '", workload_, "' executed nothing");
}

std::vector<std::uint8_t>
Campaign::execute(const std::vector<RegInjection> &flips,
                  const std::vector<MemInjection> &mem_flips,
                  std::uint64_t *instrs)
{
    Gpu gpu(config_);
    gpu.setTracking(false);
    if (!flips.empty())
        gpu.armInjections(flips);
    if (!mem_flips.empty())
        gpu.armMemInjections(mem_flips);

    auto workload = makeWorkload(workload_, scale_);
    workload->run(gpu);
    gpu.finish();

    if (instrs)
        *instrs = gpu.instrCount();

    std::vector<std::uint8_t> bytes;
    for (const Workload::Range &range : workload->outputs()) {
        for (std::uint64_t i = 0; i < range.bytes; ++i)
            bytes.push_back(gpu.mem().read8(range.addr + i));
    }
    // Remember how many CUs actually received waves and the memory
    // footprint so the samplers target state that can matter.
    cusUsed_ = config_.numCus;
    footprint_ = gpu.mem().allocatedBytes();
    return bytes;
}

InjectOutcome
Campaign::inject(const std::vector<RegInjection> &flips)
{
    std::vector<std::uint8_t> out = execute(flips, {}, nullptr);
    return out == goldenOutput_ ? InjectOutcome::Masked
                                : InjectOutcome::Sdc;
}

InjectOutcome
Campaign::injectMem(const std::vector<MemInjection> &flips)
{
    std::vector<std::uint8_t> out = execute({}, flips, nullptr);
    return out == goldenOutput_ ? InjectOutcome::Masked
                                : InjectOutcome::Sdc;
}

RegInjection
Campaign::sampleSingleBit(Rng &rng) const
{
    RegInjection inj;
    inj.cu = static_cast<unsigned>(rng.below(cusUsed_));
    inj.slot =
        static_cast<unsigned>(rng.below(config_.regs.numSlots));
    inj.reg = static_cast<unsigned>(rng.below(config_.regs.numRegs));
    inj.lane = static_cast<unsigned>(rng.below(config_.regs.numLanes));
    inj.bitMask = std::uint32_t(1)
        << rng.below(config_.regs.regBits);
    inj.triggerInstr = rng.below(goldenInstrs_);
    return inj;
}

MemInjection
Campaign::sampleMemBit(Rng &rng) const
{
    MemInjection inj;
    inj.addr = rng.below(std::max<Addr>(footprint_, 1));
    inj.bitMask = static_cast<std::uint8_t>(1u << rng.below(8));
    inj.triggerInstr = rng.below(goldenInstrs_);
    return inj;
}

} // namespace mbavf
