#include "inject/campaign.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/check.hh"
#include "common/logging.hh"
#include "common/parallel.hh"

namespace mbavf
{

Campaign::Campaign(std::string workload, unsigned scale,
                   GpuConfig config)
    : workload_(std::move(workload)), scale_(scale), config_(config)
{
    ExecResult golden = execute({}, {});
    if (golden.instrs == 0)
        fatal("golden run of '", workload_, "' executed nothing");
    goldenOutput_ = std::move(golden.output);
    goldenInstrs_ = golden.instrs;
    // Remember how many CUs actually received waves and the memory
    // footprint so the samplers target state that can matter. A
    // launch shorter than the device leaves tail CUs with untouched
    // register files; sampling those would silently deflate the
    // measured SDC probability.
    cusUsed_ = std::max(1u, golden.cusUsed);
    footprint_ = golden.footprint;
}

Campaign::ExecResult
Campaign::execute(const std::vector<RegInjection> &flips,
                  const std::vector<MemInjection> &mem_flips) const
{
    // An injection outside the device geometry would either hit a
    // register that no wave can ever touch (silently deflating the
    // measured SDC rate) or index out of the register file. The
    // samplers below construct in-range sites; this guards externally
    // supplied flips in checked builds.
    for (const RegInjection &inj : flips) {
        MBAVF_CHECK(inj.cu < config_.numCus, "cu ", inj.cu);
        MBAVF_CHECK(inj.slot < config_.regs.numSlots, "slot ",
                    inj.slot);
        MBAVF_CHECK(inj.reg < config_.regs.numRegs, "reg ", inj.reg);
        MBAVF_CHECK(inj.lane < config_.regs.numLanes, "lane ",
                    inj.lane);
        MBAVF_CHECK((inj.bitMask &
                     ~lowMask(config_.regs.regBits)) == 0,
                    "bit mask wider than the register");
    }
    for (const MemInjection &inj : mem_flips)
        MBAVF_CHECK(inj.addr < config_.memBytes, "addr ", inj.addr);

    Gpu gpu(config_);
    gpu.setTracking(false);
    if (!flips.empty())
        gpu.armInjections(flips);
    if (!mem_flips.empty())
        gpu.armMemInjections(mem_flips);

    auto workload = makeWorkload(workload_, scale_);
    workload->run(gpu);
    gpu.finish();

    ExecResult result;
    result.instrs = gpu.instrCount();
    result.cusUsed = gpu.cusWithWaves();
    result.footprint = gpu.mem().allocatedBytes();

    std::uint64_t total = 0;
    for (const Workload::Range &range : workload->outputs())
        total += range.bytes;
    result.output.reserve(total);
    for (const Workload::Range &range : workload->outputs())
        gpu.mem().readBlock(range.addr, range.bytes, result.output);
    return result;
}

std::vector<InjectOutcome>
Campaign::runBatch(const std::vector<TrialSpec> &specs) const
{
    std::vector<InjectOutcome> outcomes(specs.size(),
                                        InjectOutcome::Masked);
    runTasks(specs.size(), [&](std::size_t i) {
        ExecResult r = execute(specs[i].regFlips, specs[i].memFlips);
        outcomes[i] = r.output == goldenOutput_ ? InjectOutcome::Masked
                                                : InjectOutcome::Sdc;
    });
    return outcomes;
}

std::vector<InjectOutcome>
Campaign::runTrials(std::size_t n, std::uint64_t base_seed,
                    TrialKind kind) const
{
    // Sites are sampled up front — one private Rng per trial index —
    // so the specs (and therefore the outcomes) are a pure function
    // of (base_seed, n), not of scheduling.
    std::vector<TrialSpec> specs(n);
    for (std::size_t t = 0; t < n; ++t) {
        Rng rng(splitMix64(base_seed, t));
        if (kind == TrialKind::Register)
            specs[t].regFlips.push_back(sampleSingleBit(rng));
        else
            specs[t].memFlips.push_back(sampleMemBit(rng));
    }
    return runBatch(specs);
}

InjectOutcome
Campaign::inject(const std::vector<RegInjection> &flips) const
{
    return runBatch({TrialSpec{flips, {}}}).front();
}

InjectOutcome
Campaign::injectMem(const std::vector<MemInjection> &flips) const
{
    return runBatch({TrialSpec{{}, flips}}).front();
}

RegInjection
Campaign::sampleSingleBit(Rng &rng) const
{
    RegInjection inj;
    inj.cu = static_cast<unsigned>(rng.below(cusUsed_));
    inj.slot =
        static_cast<unsigned>(rng.below(config_.regs.numSlots));
    inj.reg = static_cast<unsigned>(rng.below(config_.regs.numRegs));
    inj.lane = static_cast<unsigned>(rng.below(config_.regs.numLanes));
    inj.bitMask = std::uint32_t(1)
        << rng.below(config_.regs.regBits);
    inj.triggerInstr = rng.below(goldenInstrs_);
    return inj;
}

MemInjection
Campaign::sampleMemBit(Rng &rng) const
{
    MemInjection inj;
    inj.addr = rng.below(std::max<Addr>(footprint_, 1));
    inj.bitMask = static_cast<std::uint8_t>(1u << rng.below(8));
    inj.triggerInstr = rng.below(goldenInstrs_);
    return inj;
}

} // namespace mbavf
