#include "inject/campaign.hh"

#include <algorithm>
#include <array>

#include "common/bits.hh"
#include "common/check.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/trap.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"

namespace mbavf
{

const char *
injectOutcomeName(InjectOutcome outcome)
{
    switch (outcome) {
      case InjectOutcome::Masked: return "masked";
      case InjectOutcome::Sdc: return "sdc";
      case InjectOutcome::Due: return "due";
      case InjectOutcome::Crash: return "crash";
      case InjectOutcome::Hang: return "hang";
    }
    return "?";
}

bool
parseInjectOutcome(const std::string &name, InjectOutcome &outcome)
{
    for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
        InjectOutcome o = static_cast<InjectOutcome>(i);
        if (name == injectOutcomeName(o)) {
            outcome = o;
            return true;
        }
    }
    return false;
}

const char *
trialKindName(TrialKind kind)
{
    return kind == TrialKind::Register ? "register" : "memory";
}

bool
parseTrialKind(const std::string &name, TrialKind &kind)
{
    if (name == "register") {
        kind = TrialKind::Register;
        return true;
    }
    if (name == "memory") {
        kind = TrialKind::Memory;
        return true;
    }
    return false;
}

void
CampaignTally::add(const TrialResult &result)
{
    ++counts[static_cast<std::size_t>(result.outcome)];
    if (!result.code.empty())
        ++codeCounts[result.code];
}

std::uint64_t
CampaignTally::total() const
{
    std::uint64_t n = 0;
    for (std::uint64_t c : counts)
        n += c;
    return n;
}

namespace
{

/** Default watchdog headroom over the golden run. */
constexpr double defaultWatchdogMultiplier = 8.0;

std::uint64_t
scaleBudget(std::uint64_t golden, double multiple)
{
    if (multiple <= 0.0)
        return 0;
    double budget = static_cast<double>(golden) * multiple;
    return budget < 1.0 ? 1 : static_cast<std::uint64_t>(budget);
}

/** Per-outcome trial counters, registered once. */
const obs::Counter &
outcomeCounter(InjectOutcome outcome)
{
    static const auto counters = [] {
        std::array<obs::Counter, numInjectOutcomes> c;
        for (std::size_t i = 0; i < numInjectOutcomes; ++i) {
            c[i] = obs::MetricsRegistry::global().counter(
                std::string("campaign.outcome.") +
                injectOutcomeName(static_cast<InjectOutcome>(i)));
        }
        return c;
    }();
    return counters[static_cast<std::size_t>(outcome)];
}

} // namespace

Campaign::Campaign(std::string workload, unsigned scale,
                   GpuConfig config)
    : workload_(std::move(workload)), scale_(scale), config_(config)
{
    obs::ObsPhase obs_phase("campaign.golden");
    ExecResult golden = execute({}, {}, false);
    if (golden.instrs == 0)
        fatal("golden run of '", workload_, "' executed nothing");
    goldenOutput_ = std::move(golden.output);
    goldenInstrs_ = golden.instrs;
    goldenCycles_ = golden.cycles;
    // Remember how many CUs actually received waves and the memory
    // footprint so the samplers target state that can matter. A
    // launch shorter than the device leaves tail CUs with untouched
    // register files; sampling those would silently deflate the
    // measured SDC probability.
    cusUsed_ = std::max(1u, golden.cusUsed);
    footprint_ = golden.footprint;
    setWatchdogMultiplier(defaultWatchdogMultiplier);
}

void
Campaign::setWatchdogMultiplier(double multiple)
{
    watchdogInstrs_ = scaleBudget(goldenInstrs_, multiple);
    watchdogCycles_ = scaleBudget(goldenCycles_, multiple);
}

void
Campaign::setProtection(const std::string &scheme_name,
                        unsigned domain_bits)
{
    if (scheme_name == "none") {
        scheme_.reset();
        schemeCode_.clear();
        protectionDomainBits_ = 0;
        return;
    }
    if (domain_bits == 0)
        fatal("protection domain must be at least one bit wide");
    scheme_ = makeScheme(scheme_name);
    schemeCode_ = "due." + scheme_name;
    protectionDomainBits_ = domain_bits;
}

Campaign::ExecResult
Campaign::execute(const std::vector<RegInjection> &flips,
                  const std::vector<MemInjection> &mem_flips,
                  bool watchdog) const
{
    // An injection outside the device geometry would either hit a
    // register that no wave can ever touch (silently deflating the
    // measured SDC rate) or index out of the register file. The
    // samplers below construct in-range sites; this guards externally
    // supplied flips in checked builds.
    for (const RegInjection &inj : flips) {
        MBAVF_CHECK(inj.cu < config_.numCus, "cu ", inj.cu);
        MBAVF_CHECK(inj.slot < config_.regs.numSlots, "slot ",
                    inj.slot);
        MBAVF_CHECK(inj.reg < config_.regs.numRegs, "reg ", inj.reg);
        MBAVF_CHECK(inj.lane < config_.regs.numLanes, "lane ",
                    inj.lane);
        MBAVF_CHECK((inj.bitMask &
                     ~lowMask(config_.regs.regBits)) == 0,
                    "bit mask wider than the register");
    }
    for (const MemInjection &inj : mem_flips)
        MBAVF_CHECK(inj.addr < config_.memBytes, "addr ", inj.addr);

    Gpu gpu(config_);
    gpu.setTracking(false);
    if (watchdog)
        gpu.setWatchdog(watchdogInstrs_, watchdogCycles_);
    if (!flips.empty())
        gpu.armInjections(flips);
    if (!mem_flips.empty())
        gpu.armMemInjections(mem_flips);

    auto workload = makeWorkload(workload_, scale_);
    workload->run(gpu);
    gpu.finish();

    ExecResult result;
    result.instrs = gpu.instrCount();
    result.cycles = gpu.clock().now();
    result.cusUsed = gpu.cusWithWaves();
    result.footprint = gpu.mem().allocatedBytes();

    std::uint64_t total = 0;
    for (const Workload::Range &range : workload->outputs())
        total += range.bytes;
    result.output.reserve(total);
    for (const Workload::Range &range : workload->outputs())
        gpu.mem().readBlock(range.addr, range.bytes, result.output);
    return result;
}

bool
Campaign::applyProtection(TrialSpec &spec) const
{
    const unsigned domain = protectionDomainBits_;
    bool detected = false;
    auto scrub = [&](auto &flip, unsigned word_bits) {
        std::uint64_t mask = flip.bitMask;
        for (unsigned lo = 0; lo < word_bits && !detected;
             lo += domain) {
            std::uint64_t window =
                (mask >> lo) & lowMask(std::min(domain,
                                                word_bits - lo));
            unsigned flipped =
                static_cast<unsigned>(popCount(window));
            switch (scheme_->action(flipped)) {
              case FaultAction::Corrected:
                // The scheme corrects the domain before any consumer
                // observes it: scrub the flips.
                mask &= ~(window << lo);
                break;
              case FaultAction::Detected:
                detected = true;
                break;
              case FaultAction::Undetected:
                break;
            }
        }
        flip.bitMask = static_cast<decltype(flip.bitMask)>(mask);
    };
    for (RegInjection &flip : spec.regFlips)
        scrub(flip, config_.regs.regBits);
    for (MemInjection &flip : spec.memFlips)
        scrub(flip, 8);
    if (detected)
        return true;
    auto dead = [](const auto &flip) { return flip.bitMask == 0; };
    std::erase_if(spec.regFlips, dead);
    std::erase_if(spec.memFlips, dead);
    return false;
}

TrialResult
Campaign::runOne(const TrialSpec &spec) const
{
    // One slice per trial on the worker's trace track.
    obs::TraceScope trace("trial");
    TrialResult result;
    TrialSpec armed = spec;
    if (scheme_ && applyProtection(armed)) {
        result.outcome = InjectOutcome::Due;
        result.code = schemeCode_;
        outcomeCounter(result.outcome).add();
        return result;
    }
    // The trial boundary: nothing a corrupted execution throws may
    // escape into the pool or abort sibling trials.
    try {
        ExecResult r = execute(armed.regFlips, armed.memFlips, true);
        result.outcome = r.output == goldenOutput_
            ? InjectOutcome::Masked
            : InjectOutcome::Sdc;
    } catch (const SimTrap &t) {
        result.outcome = isWatchdogTrapCode(t.code())
            ? InjectOutcome::Hang
            : InjectOutcome::Crash;
        result.code = t.code();
    } catch (const std::exception &) {
        result.outcome = InjectOutcome::Crash;
        result.code = trapcode::hostException;
    } catch (...) {
        result.outcome = InjectOutcome::Crash;
        result.code = trapcode::hostUnknown;
    }
    outcomeCounter(result.outcome).add();
    return result;
}

std::vector<TrialResult>
Campaign::runBatchDetailed(const std::vector<TrialSpec> &specs) const
{
    std::vector<TrialResult> results(specs.size());
    runTasks(specs.size(),
             [&](std::size_t i) { results[i] = runOne(specs[i]); });
    return results;
}

std::vector<InjectOutcome>
Campaign::runBatch(const std::vector<TrialSpec> &specs) const
{
    std::vector<TrialResult> detailed = runBatchDetailed(specs);
    std::vector<InjectOutcome> outcomes(detailed.size());
    for (std::size_t i = 0; i < detailed.size(); ++i)
        outcomes[i] = detailed[i].outcome;
    return outcomes;
}

TrialSpec
Campaign::trialSpec(std::uint64_t t, std::uint64_t base_seed,
                    TrialKind kind) const
{
    // One private Rng per trial index, so the spec is a pure
    // function of (base_seed, t) — never of scheduling, batch size,
    // or resume position.
    Rng rng(splitMix64(base_seed, t));
    TrialSpec spec;
    if (kind == TrialKind::Register)
        spec.regFlips.push_back(sampleSingleBit(rng));
    else
        spec.memFlips.push_back(sampleMemBit(rng));
    return spec;
}

std::vector<TrialResult>
Campaign::runTrialsDetailed(
    std::size_t first, std::size_t n, std::uint64_t base_seed,
    TrialKind kind,
    const std::function<void(std::size_t, const TrialResult &)>
        &on_trial) const
{
    std::vector<TrialResult> results(n);
    runTasks(n, [&](std::size_t i) {
        const std::uint64_t t = first + i;
        results[i] = runOne(trialSpec(t, base_seed, kind));
        if (on_trial)
            on_trial(t, results[i]);
    });
    return results;
}

std::vector<InjectOutcome>
Campaign::runTrials(std::size_t n, std::uint64_t base_seed,
                    TrialKind kind) const
{
    std::vector<TrialResult> detailed =
        runTrialsDetailed(0, n, base_seed, kind);
    std::vector<InjectOutcome> outcomes(detailed.size());
    for (std::size_t i = 0; i < detailed.size(); ++i)
        outcomes[i] = detailed[i].outcome;
    return outcomes;
}

InjectOutcome
Campaign::inject(const std::vector<RegInjection> &flips) const
{
    return runBatch({TrialSpec{flips, {}}}).front();
}

InjectOutcome
Campaign::injectMem(const std::vector<MemInjection> &flips) const
{
    return runBatch({TrialSpec{{}, flips}}).front();
}

RegInjection
Campaign::sampleSingleBit(Rng &rng) const
{
    RegInjection inj;
    inj.cu = static_cast<unsigned>(rng.below(cusUsed_));
    inj.slot =
        static_cast<unsigned>(rng.below(config_.regs.numSlots));
    inj.reg = static_cast<unsigned>(rng.below(config_.regs.numRegs));
    inj.lane = static_cast<unsigned>(rng.below(config_.regs.numLanes));
    inj.bitMask = std::uint32_t(1)
        << rng.below(config_.regs.regBits);
    inj.triggerInstr = rng.below(goldenInstrs_);
    return inj;
}

MemInjection
Campaign::sampleMemBit(Rng &rng) const
{
    MemInjection inj;
    inj.addr = rng.below(std::max<Addr>(footprint_, 1));
    inj.bitMask = static_cast<std::uint8_t>(1u << rng.below(8));
    inj.triggerInstr = rng.below(goldenInstrs_);
    return inj;
}

} // namespace mbavf
