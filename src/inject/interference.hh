/**
 * @file
 * The ACE-interference study (paper Section VII-A, Table II).
 *
 * Single-bit ACE analysis assumes a bit's ACEness is independent of
 * faults in other bits. ACE interference is the exception: a
 * multi-bit fault whose members individually cause SDC can mask
 * itself (the paper's PrefixSum control-flow reconvergence example).
 * The study measures how often this happens: identify SDC ACE bits
 * by random single-bit injection, build multi-bit fault groups from
 * each SDC bit and its adjacent bits, inject the group, and count
 * groups whose outcome is not SDC.
 */

#ifndef MBAVF_INJECT_INTERFERENCE_HH
#define MBAVF_INJECT_INTERFERENCE_HH

#include <array>
#include <cstdint>
#include <string>

#include "gpu/gpu.hh"

namespace mbavf
{

/** Results of the study for one workload. */
struct InterferenceStats
{
    std::string workload;
    unsigned singleInjections = 0;
    /** Distinct single-bit SDC ACE sites found. */
    unsigned sdcAceBits = 0;
    /** Multi-bit groups tested per mode (index 0 = 2x1). */
    std::array<unsigned, 3> groupsTested{};
    /** Groups whose multi-bit outcome was not SDC (interference). */
    std::array<unsigned, 3> interference{};
};

/**
 * Run the ACE-interference study on one workload.
 *
 * @param workload       registry name
 * @param scale          problem-size multiplier
 * @param config         device configuration
 * @param num_injections single-bit injections to identify SDC bits
 * @param seed           RNG seed
 */
InterferenceStats runInterferenceStudy(const std::string &workload,
                                       unsigned scale,
                                       const GpuConfig &config,
                                       unsigned num_injections,
                                       std::uint64_t seed);

} // namespace mbavf

#endif // MBAVF_INJECT_INTERFERENCE_HH
