/**
 * @file
 * Fault-injection campaign driver (paper Section VII-A).
 *
 * A Campaign runs one workload to completion once (the golden run,
 * with all ACE tracking disabled) and snapshots its declared output
 * ranges. Each injection then re-executes the workload from scratch
 * with one or more register-file bit flips armed at a dynamic
 * instruction trigger, and the trial is classified with the standard
 * injection-study taxonomy:
 *
 *   Masked  final output bytes equal the golden snapshot
 *   Sdc     output differs (silent data corruption)
 *   Due     the flips land in a protected domain whose scheme
 *           detects but cannot correct them (detected unrecoverable
 *           error; the trial never executes)
 *   Crash   execution raised a SimTrap (common/trap.hh): the fault
 *           corrupted state a validity check guards, e.g. an
 *           out-of-range address
 *   Hang    the per-trial watchdog budget (derived from the golden
 *           run) expired before the workload finished
 *
 * Trial isolation: every trial is contained at its boundary — a
 * trapped, hung, or otherwise throwing trial records its outcome and
 * never aborts its runTrials()/runBatch() siblings.
 *
 * Trials are independent — each builds its own Gpu — so batches run
 * concurrently on the shared pool (common/parallel.hh) via
 * runTrials() / runBatch(). Trial t of a runTrials() batch draws its
 * injection site from an Rng seeded with splitMix64(base_seed, t),
 * so any single trial reproduces in isolation regardless of batch
 * size, thread count, or scheduling — and a checkpointed campaign
 * resumes bit-identically (see inject/journal.hh).
 */

#ifndef MBAVF_INJECT_CAMPAIGN_HH
#define MBAVF_INJECT_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/protection.hh"
#include "gpu/gpu.hh"
#include "workloads/workload.hh"

namespace mbavf
{

/** Outcome of one injection (see file comment for the taxonomy). */
enum class InjectOutcome : std::uint8_t
{
    Masked,
    Sdc,
    Due,
    Crash,
    Hang,
};

/** Number of InjectOutcome values. */
inline constexpr std::size_t numInjectOutcomes = 5;

/** Stable lowercase outcome name ("masked", "sdc", ...). */
const char *injectOutcomeName(InjectOutcome outcome);

/** Inverse of injectOutcomeName(); false when @p name is unknown. */
bool parseInjectOutcome(const std::string &name,
                        InjectOutcome &outcome);

/** One trial's classification plus its diagnostic code. */
struct TrialResult
{
    InjectOutcome outcome = InjectOutcome::Masked;
    /**
     * For Crash/Hang: the SimTrap code (e.g. "trap.mem.oob"). For
     * Due: "due.<scheme>". Empty for Masked/Sdc.
     */
    std::string code;

    bool
    operator==(const TrialResult &other) const
    {
        return outcome == other.outcome && code == other.code;
    }
};

/** Outcome and trap-code counts over a set of trials. */
struct CampaignTally
{
    std::array<std::uint64_t, numInjectOutcomes> counts{};
    /** Crash/Hang trap codes and Due scheme codes, by count. */
    std::map<std::string, std::uint64_t> codeCounts;

    void add(const TrialResult &result);

    std::uint64_t
    count(InjectOutcome outcome) const
    {
        return counts[static_cast<std::size_t>(outcome)];
    }

    std::uint64_t total() const;

    /** Wilson 95% interval of @p outcome's rate over the tally. */
    WilsonInterval
    rate(InjectOutcome outcome) const
    {
        return wilsonInterval(count(outcome), total());
    }
};

/** Which state runTrials() samples injection sites from. */
enum class TrialKind : std::uint8_t
{
    Register, ///< uniform single-bit VGPR flips (sampleSingleBit)
    Memory,   ///< uniform single-bit memory flips (sampleMemBit)
};

/** Stable kind name ("register" / "memory"). */
const char *trialKindName(TrialKind kind);

/** Inverse of trialKindName(); false when @p name is unknown. */
bool parseTrialKind(const std::string &name, TrialKind &kind);

/** One independent trial: the flips to arm in a fresh execution. */
struct TrialSpec
{
    std::vector<RegInjection> regFlips;
    std::vector<MemInjection> memFlips;
};

/** Injection campaign over one workload configuration. */
class Campaign
{
  public:
    /**
     * Runs the golden execution immediately and derives the default
     * watchdog budgets (watchdogMultiplier x the golden run's
     * instruction and cycle counts).
     *
     * @param workload registry name
     * @param scale    problem-size multiplier
     * @param config   device configuration
     */
    Campaign(std::string workload, unsigned scale, GpuConfig config);

    /** Dynamic instructions executed by the golden run. */
    std::uint64_t goldenInstrs() const { return goldenInstrs_; }

    /** Cycles consumed by the golden run. */
    Cycle goldenCycles() const { return goldenCycles_; }

    /**
     * Rescale the watchdog budgets to @p multiple x the golden run
     * (default 8). 0 disables the watchdog entirely.
     */
    void setWatchdogMultiplier(double multiple);

    /**
     * Pin the watchdog budgets directly (tests use a sub-golden
     * budget to provoke a deterministic Hang). 0 disables a budget.
     */
    void
    setWatchdogBudgets(std::uint64_t instrs, Cycle cycles)
    {
        watchdogInstrs_ = instrs;
        watchdogCycles_ = cycles;
    }

    /**
     * Classify trials against a protected structure: flips are
     * grouped into @p domain_bits-wide protection domains of the
     * injected word, and the scheme's per-domain action applies
     * before execution — Corrected flips are scrubbed, a Detected
     * domain makes the whole trial Due (the machine halts on the
     * detected error), Undetected flips execute as armed.
     * @p scheme_name follows makeScheme(); "none" (the default)
     * disables Due classification.
     */
    void setProtection(const std::string &scheme_name,
                       unsigned domain_bits);

    /** Inject the given flips and classify the outcome. */
    InjectOutcome inject(const std::vector<RegInjection> &flips) const;

    /** Inject memory bit flips and classify the outcome. */
    InjectOutcome
    injectMem(const std::vector<MemInjection> &flips) const;

    /** Single-flip convenience. */
    InjectOutcome
    inject(const RegInjection &flip) const
    {
        return inject(std::vector<RegInjection>{flip});
    }

    InjectOutcome
    injectMem(const MemInjection &flip) const
    {
        return injectMem(std::vector<MemInjection>{flip});
    }

    /**
     * Run one trial with full containment: traps classify
     * Crash/Hang, protection classifies Due, and any other exception
     * escaping the execution is recorded as Crash
     * (trap.host.exception) rather than propagated.
     */
    TrialResult runOne(const TrialSpec &spec) const;

    /**
     * Execute the given trials concurrently on the shared pool (each
     * with its own Gpu) and classify each against the golden output.
     * results[i] corresponds to specs[i]; ordering of results never
     * depends on scheduling. A trapped or hung trial is contained —
     * it records its own outcome and its siblings run to completion.
     */
    std::vector<TrialResult>
    runBatchDetailed(const std::vector<TrialSpec> &specs) const;

    /** runBatchDetailed() reduced to outcomes only. */
    std::vector<InjectOutcome>
    runBatch(const std::vector<TrialSpec> &specs) const;

    /**
     * Run trials [first, first + n) of the campaign keyed by
     * @p base_seed: trial t samples its single-bit site from
     * Rng(splitMix64(base_seed, t)). results[i] is trial first + i,
     * bit-identical at any thread count and any resume split.
     * @p on_trial (optional) observes each completed trial — called
     * concurrently from pool workers with the absolute trial index.
     */
    std::vector<TrialResult> runTrialsDetailed(
        std::size_t first, std::size_t n, std::uint64_t base_seed,
        TrialKind kind,
        const std::function<void(std::size_t, const TrialResult &)>
            &on_trial = {}) const;

    /**
     * Run @p n statistically independent single-bit trials of
     * @p kind concurrently. Trial t samples its site from
     * Rng(splitMix64(base_seed, t)); results[t] is that trial's
     * outcome, bit-identical at any thread count.
     */
    std::vector<InjectOutcome> runTrials(std::size_t n,
                                         std::uint64_t base_seed,
                                         TrialKind kind) const;

    /** The single-bit spec trial @p t of @p kind draws. */
    TrialSpec trialSpec(std::uint64_t t, std::uint64_t base_seed,
                        TrialKind kind) const;

    /**
     * Sample a uniform single-bit VGPR injection site: a (cu, slot,
     * register, lane, bit) coordinate and a dynamic-instruction
     * trigger. Only CUs that executed waves in the golden run are
     * targeted.
     */
    RegInjection sampleSingleBit(Rng &rng) const;

    /**
     * Sample a uniform single-bit memory injection site over the
     * workload's allocated footprint.
     */
    MemInjection sampleMemBit(Rng &rng) const;

    /** CUs that received waves in the golden run. */
    unsigned cusUsed() const { return cusUsed_; }

    const std::string &workloadName() const { return workload_; }

    /** Problem-size multiplier the campaign was built with. */
    unsigned scale() const { return scale_; }

    /** Device configuration the campaign executes trials on. */
    const GpuConfig &config() const { return config_; }

  private:
    /** One fresh execution's observable results. */
    struct ExecResult
    {
        std::vector<std::uint8_t> output;
        std::uint64_t instrs = 0;
        Cycle cycles = 0;
        unsigned cusUsed = 0;
        Addr footprint = 0;
    };

    /**
     * Run the workload from scratch with the given flips armed.
     * Touches no Campaign state, so concurrent calls are safe.
     * @p watchdog arms the trial budgets (the golden run passes
     * false). Throws SimTrap when corrupted state hits a validity
     * check or a budget.
     */
    ExecResult execute(const std::vector<RegInjection> &flips,
                       const std::vector<MemInjection> &mem_flips,
                       bool watchdog) const;

    /**
     * Apply the armed protection scheme to @p spec before
     * execution. Returns true when a domain detects the fault (the
     * trial is Due); Corrected flips are removed from @p spec.
     */
    bool applyProtection(TrialSpec &spec) const;

    std::string workload_;
    unsigned scale_;
    GpuConfig config_;
    unsigned cusUsed_ = 1;
    std::uint64_t goldenInstrs_ = 0;
    Cycle goldenCycles_ = 0;
    Addr footprint_ = 0;
    std::uint64_t watchdogInstrs_ = 0;
    Cycle watchdogCycles_ = 0;
    std::unique_ptr<ProtectionScheme> scheme_;
    std::string schemeCode_;
    unsigned protectionDomainBits_ = 0;
    std::vector<std::uint8_t> goldenOutput_;
};

} // namespace mbavf

#endif // MBAVF_INJECT_CAMPAIGN_HH
