/**
 * @file
 * Fault-injection campaign driver (paper Section VII-A).
 *
 * A Campaign runs one workload to completion once (the golden run,
 * with all ACE tracking disabled) and snapshots its declared output
 * ranges. Each injection then re-executes the workload from scratch
 * with one or more register-file bit flips armed at a dynamic
 * instruction trigger; the outcome is SDC when the final output
 * bytes differ from the golden snapshot, masked otherwise.
 */

#ifndef MBAVF_INJECT_CAMPAIGN_HH
#define MBAVF_INJECT_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "gpu/gpu.hh"
#include "workloads/workload.hh"

namespace mbavf
{

/** Outcome of one injection. */
enum class InjectOutcome : std::uint8_t
{
    Masked,
    Sdc,
};

/** Injection campaign over one workload configuration. */
class Campaign
{
  public:
    /**
     * Runs the golden execution immediately.
     *
     * @param workload registry name
     * @param scale    problem-size multiplier
     * @param config   device configuration
     */
    Campaign(std::string workload, unsigned scale, GpuConfig config);

    /** Dynamic instructions executed by the golden run. */
    std::uint64_t goldenInstrs() const { return goldenInstrs_; }

    /** Inject the given flips and classify the outcome. */
    InjectOutcome inject(const std::vector<RegInjection> &flips);

    /** Inject memory bit flips and classify the outcome. */
    InjectOutcome injectMem(const std::vector<MemInjection> &flips);

    /** Single-flip convenience. */
    InjectOutcome
    inject(const RegInjection &flip)
    {
        return inject(std::vector<RegInjection>{flip});
    }

    InjectOutcome
    injectMem(const MemInjection &flip)
    {
        return injectMem(std::vector<MemInjection>{flip});
    }

    /**
     * Sample a uniform single-bit VGPR injection site: a (cu, slot,
     * register, lane, bit) coordinate and a dynamic-instruction
     * trigger.
     */
    RegInjection sampleSingleBit(Rng &rng) const;

    /**
     * Sample a uniform single-bit memory injection site over the
     * workload's allocated footprint.
     */
    MemInjection sampleMemBit(Rng &rng) const;

    const std::string &workloadName() const { return workload_; }

  private:
    /** Run the workload; returns the concatenated output bytes. */
    std::vector<std::uint8_t>
    execute(const std::vector<RegInjection> &flips,
            const std::vector<MemInjection> &mem_flips,
            std::uint64_t *instrs);

    std::string workload_;
    unsigned scale_;
    GpuConfig config_;
    unsigned cusUsed_ = 1;
    std::uint64_t goldenInstrs_ = 0;
    Addr footprint_ = 0;
    std::vector<std::uint8_t> goldenOutput_;
};

} // namespace mbavf

#endif // MBAVF_INJECT_CAMPAIGN_HH
