/**
 * @file
 * Fault-injection campaign driver (paper Section VII-A).
 *
 * A Campaign runs one workload to completion once (the golden run,
 * with all ACE tracking disabled) and snapshots its declared output
 * ranges. Each injection then re-executes the workload from scratch
 * with one or more register-file bit flips armed at a dynamic
 * instruction trigger; the outcome is SDC when the final output
 * bytes differ from the golden snapshot, masked otherwise.
 *
 * Trials are independent — each builds its own Gpu — so batches run
 * concurrently on the shared pool (common/parallel.hh) via
 * runTrials() / runBatch(). Trial t of a runTrials() batch draws its
 * injection site from an Rng seeded with splitMix64(base_seed, t),
 * so any single trial reproduces in isolation regardless of batch
 * size, thread count, or scheduling.
 */

#ifndef MBAVF_INJECT_CAMPAIGN_HH
#define MBAVF_INJECT_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "gpu/gpu.hh"
#include "workloads/workload.hh"

namespace mbavf
{

/** Outcome of one injection. */
enum class InjectOutcome : std::uint8_t
{
    Masked,
    Sdc,
};

/** Which state runTrials() samples injection sites from. */
enum class TrialKind : std::uint8_t
{
    Register, ///< uniform single-bit VGPR flips (sampleSingleBit)
    Memory,   ///< uniform single-bit memory flips (sampleMemBit)
};

/** One independent trial: the flips to arm in a fresh execution. */
struct TrialSpec
{
    std::vector<RegInjection> regFlips;
    std::vector<MemInjection> memFlips;
};

/** Injection campaign over one workload configuration. */
class Campaign
{
  public:
    /**
     * Runs the golden execution immediately.
     *
     * @param workload registry name
     * @param scale    problem-size multiplier
     * @param config   device configuration
     */
    Campaign(std::string workload, unsigned scale, GpuConfig config);

    /** Dynamic instructions executed by the golden run. */
    std::uint64_t goldenInstrs() const { return goldenInstrs_; }

    /** Inject the given flips and classify the outcome. */
    InjectOutcome inject(const std::vector<RegInjection> &flips) const;

    /** Inject memory bit flips and classify the outcome. */
    InjectOutcome
    injectMem(const std::vector<MemInjection> &flips) const;

    /** Single-flip convenience. */
    InjectOutcome
    inject(const RegInjection &flip) const
    {
        return inject(std::vector<RegInjection>{flip});
    }

    InjectOutcome
    injectMem(const MemInjection &flip) const
    {
        return injectMem(std::vector<MemInjection>{flip});
    }

    /**
     * Execute the given trials concurrently on the shared pool (each
     * with its own Gpu) and classify each against the golden output.
     * results[i] corresponds to specs[i]; ordering of results never
     * depends on scheduling.
     */
    std::vector<InjectOutcome>
    runBatch(const std::vector<TrialSpec> &specs) const;

    /**
     * Run @p n statistically independent single-bit trials of
     * @p kind concurrently. Trial t samples its site from
     * Rng(splitMix64(base_seed, t)); results[t] is that trial's
     * outcome, bit-identical at any thread count.
     */
    std::vector<InjectOutcome> runTrials(std::size_t n,
                                         std::uint64_t base_seed,
                                         TrialKind kind) const;

    /**
     * Sample a uniform single-bit VGPR injection site: a (cu, slot,
     * register, lane, bit) coordinate and a dynamic-instruction
     * trigger. Only CUs that executed waves in the golden run are
     * targeted.
     */
    RegInjection sampleSingleBit(Rng &rng) const;

    /**
     * Sample a uniform single-bit memory injection site over the
     * workload's allocated footprint.
     */
    MemInjection sampleMemBit(Rng &rng) const;

    /** CUs that received waves in the golden run. */
    unsigned cusUsed() const { return cusUsed_; }

    const std::string &workloadName() const { return workload_; }

  private:
    /** One fresh execution's observable results. */
    struct ExecResult
    {
        std::vector<std::uint8_t> output;
        std::uint64_t instrs = 0;
        unsigned cusUsed = 0;
        Addr footprint = 0;
    };

    /**
     * Run the workload from scratch with the given flips armed.
     * Touches no Campaign state, so concurrent calls are safe.
     */
    ExecResult execute(const std::vector<RegInjection> &flips,
                       const std::vector<MemInjection> &mem_flips) const;

    std::string workload_;
    unsigned scale_;
    GpuConfig config_;
    unsigned cusUsed_ = 1;
    std::uint64_t goldenInstrs_ = 0;
    Addr footprint_ = 0;
    std::vector<std::uint8_t> goldenOutput_;
};

} // namespace mbavf

#endif // MBAVF_INJECT_CAMPAIGN_HH
