/**
 * @file
 * AMD APP SDK stand-ins built on scan/butterfly patterns:
 * ScanLargeArrays, PrefixSum, DwtHaar1D, FastWalshTransform.
 */

#include <string>

#include "common/bits.hh"
#include "common/rng.hh"
#include "gpu/wave.hh"
#include "workloads/factories.hh"
#include "workloads/util.hh"

namespace mbavf
{

namespace
{

/**
 * ScanLargeArrays stand-in: Hillis-Steele inclusive scan over a large
 * array, one kernel launch per log2 step, ping-pong buffers. Lanes
 * below the offset copy their value through (no divergence — the
 * copy-vs-add choice uses select, like the SDK's predicated form).
 */
class ScanLargeArraysWorkload : public Workload
{
  public:
    explicit ScanLargeArraysWorkload(unsigned scale)
        : n_(2048 * scale)
    {}

    std::string name() const override { return "scan_large_arrays"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = n_;
        Rng rng(0x5CA17u);
        Addr a = gpu.alloc(std::uint64_t(n) * 4);
        Addr b = gpu.alloc(std::uint64_t(n) * 4);
        fillRandom(gpu, a, n, rng, 0xFF);
        fillConst(gpu, b, n, 0);

        const unsigned waves = wavesFor(gpu, n);
        Addr src = a, dst = b;
        for (unsigned offset = 1; offset < n; offset <<= 1) {
            bool last = (offset << 1) >= n;
            gpu.launch(
                [&](Wave &w) { step(w, src, dst, n, offset, last); },
                waves);
            std::swap(src, dst);
        }
        declareOutput(gpu, src, std::uint64_t(n) * 4);
    }

  private:
    void
    step(Wave &w, Addr src, Addr dst, unsigned n, unsigned offset,
         bool is_output)
    {
        enum { rId = 0, rIn = 1, rV = 2, rP = 3, rHas = 4, rSum = 5,
               rTmp = 6 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        loadIdx(w, rV, rId, src, rTmp);
        // Partner value: clamp the index so every lane loads; the
        // select discards the partner when id < offset (dead load).
        w.cmpLtui(rHas, rId, offset);
        w.subi(rTmp, rId, offset);
        w.select(rTmp, rHas, rId, rTmp);
        loadIdx(w, rP, rTmp, src, rP);
        w.add(rSum, rV, rP);
        w.select(rV, rHas, rV, rSum);
        storeIdx(w, rId, rV, dst, rTmp, is_output);
        w.popExec();
    }

    unsigned n_;
};

/**
 * PrefixSum stand-in: the same scan recurrence, but with genuine
 * divergent control flow (the paper's ACE-interference example came
 * from this benchmark): lanes with id >= offset take the add path,
 * the rest take a copy path.
 */
class PrefixSumWorkload : public Workload
{
  public:
    explicit PrefixSumWorkload(unsigned scale)
        : n_(1024 * scale)
    {}

    std::string name() const override { return "prefix_sum"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = n_;
        Rng rng(0x9AEFu);
        Addr a = gpu.alloc(std::uint64_t(n) * 4);
        Addr b = gpu.alloc(std::uint64_t(n) * 4);
        fillRandom(gpu, a, n, rng, 0xFF);
        fillConst(gpu, b, n, 0);

        const unsigned waves = wavesFor(gpu, n);
        Addr src = a, dst = b;
        for (unsigned offset = 1; offset < n; offset <<= 1) {
            bool last = (offset << 1) >= n;
            gpu.launch(
                [&](Wave &w) { step(w, src, dst, n, offset, last); },
                waves);
            std::swap(src, dst);
        }
        declareOutput(gpu, src, std::uint64_t(n) * 4);
    }

  private:
    void
    step(Wave &w, Addr src, Addr dst, unsigned n, unsigned offset,
         bool is_output)
    {
        enum { rId = 0, rIn = 1, rV = 2, rP = 3, rCond = 4, rTmp = 5 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        loadIdx(w, rV, rId, src, rTmp);
        w.cmpLtui(rCond, rId, offset); // 1 = copy path

        w.pushExecZero(rCond); // add path: id >= offset
        if (w.anyActive()) {
            w.subi(rTmp, rId, offset);
            loadIdx(w, rP, rTmp, src, rP);
            w.add(rV, rV, rP);
        }
        w.popExec();

        storeIdx(w, rId, rV, dst, rTmp, is_output);
        w.popExec();
    }

    unsigned n_;
};

/**
 * DwtHaar1D stand-in: log2(n) Haar wavelet passes producing the
 * pyramid layout — pass at length len reads 2*len averages, writes
 * len new averages to a working buffer and len detail coefficients
 * straight into the output at [len, 2*len); the final average lands
 * at output[0].
 */
class DwtHaar1dWorkload : public Workload
{
  public:
    explicit DwtHaar1dWorkload(unsigned scale)
        : n_(2048 * scale)
    {}

    std::string name() const override { return "dwt_haar1d"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = n_;
        Rng rng(0xD417u);
        Addr in = gpu.alloc(std::uint64_t(n) * 4);
        Addr avg0 = gpu.alloc(std::uint64_t(n) * 2);
        Addr avg1 = gpu.alloc(std::uint64_t(n) * 2);
        Addr out = gpu.alloc(std::uint64_t(n) * 4);
        fillRandom(gpu, in, n, rng, 0xFFFF);
        fillConst(gpu, avg0, n / 2, 0);
        fillConst(gpu, avg1, n / 2, 0);
        fillConst(gpu, out, n, 0);

        Addr src = in, dst = avg0, spare = avg1;
        for (unsigned len = n / 2; len >= 1; len /= 2) {
            gpu.launch(
                [&](Wave &w) { pass(w, src, dst, out, len); },
                wavesFor(gpu, len));
            src = dst;
            std::swap(dst, spare);
        }
        declareOutput(gpu, out, std::uint64_t(n) * 4);
    }

  private:
    void
    pass(Wave &w, Addr src, Addr dst_avg, Addr out, unsigned len)
    {
        enum { rId = 0, rIn = 1, rA = 2, rB = 3, rAvg = 4, rDet = 5,
               rTmp = 6 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, len);
        w.pushExecNonzero(rIn);
        w.shli(rTmp, rId, 1);
        loadIdx(w, rA, rTmp, src, rA);
        w.shli(rTmp, rId, 1);
        w.addi(rTmp, rTmp, 1);
        loadIdx(w, rB, rTmp, src, rB);
        w.add(rAvg, rA, rB);
        w.shri(rAvg, rAvg, 1);
        w.sub(rDet, rA, rB);
        storeIdx(w, rId, rAvg, dst_avg, rTmp);
        w.addi(rTmp, rId, len);
        storeIdx(w, rTmp, rDet, out, rTmp, true);
        if (len == 1)
            storeIdx(w, rId, rAvg, out, rTmp, true);
        w.popExec();
    }

    unsigned n_;
};

/**
 * FastWalshTransform stand-in: XOR-indexed butterfly network; lane i
 * pairs with i^step and produces a sum or difference depending on
 * which side of the butterfly it is on.
 */
class FastWalshWorkload : public Workload
{
  public:
    explicit FastWalshWorkload(unsigned scale)
        : n_(2048 * scale)
    {}

    std::string name() const override { return "fast_walsh"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = n_;
        Rng rng(0xFA57u);
        Addr a = gpu.alloc(std::uint64_t(n) * 4);
        Addr b = gpu.alloc(std::uint64_t(n) * 4);
        fillRandom(gpu, a, n, rng, 0xFFF);
        fillConst(gpu, b, n, 0);

        const unsigned waves = wavesFor(gpu, n);
        Addr src = a, dst = b;
        for (unsigned step = 1; step < n; step <<= 1) {
            bool last = (step << 1) >= n;
            gpu.launch(
                [&](Wave &w) {
                    butterfly(w, src, dst, n, step, last);
                },
                waves);
            std::swap(src, dst);
        }
        declareOutput(gpu, src, std::uint64_t(n) * 4);
    }

  private:
    void
    butterfly(Wave &w, Addr src, Addr dst, unsigned n, unsigned step,
              bool is_output)
    {
        enum { rId = 0, rIn = 1, rV = 2, rP = 3, rLow = 4, rSum = 5,
               rDif = 6, rTmp = 7 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        loadIdx(w, rV, rId, src, rTmp);
        w.xori(rTmp, rId, step);
        loadIdx(w, rP, rTmp, src, rP);
        // low half (id & step == 0): sum; high half: partner - self
        w.andi(rLow, rId, step);
        w.add(rSum, rV, rP);
        w.sub(rDif, rP, rV);
        w.select(rV, rLow, rDif, rSum);
        storeIdx(w, rId, rV, dst, rTmp, is_output);
        w.popExec();
    }

    unsigned n_;
};

} // namespace

std::unique_ptr<Workload>
makeScanLargeArrays(unsigned scale)
{
    return std::make_unique<ScanLargeArraysWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makePrefixSum(unsigned scale)
{
    return std::make_unique<PrefixSumWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeDwtHaar1d(unsigned scale)
{
    return std::make_unique<DwtHaar1dWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeFastWalsh(unsigned scale)
{
    return std::make_unique<FastWalshWorkload>(scale ? scale : 1);
}

} // namespace mbavf
