/**
 * @file
 * End-to-end ACE analysis driver: run a workload on the GPU model
 * with probes attached, resolve liveness, and return the per-bit
 * lifetime stores that the MB-AVF engine consumes.
 */

#ifndef MBAVF_WORKLOADS_ACE_RUNNER_HH
#define MBAVF_WORKLOADS_ACE_RUNNER_HH

#include <memory>
#include <string>

#include "core/lifetime.hh"
#include "gpu/gpu.hh"
#include "mem/cache.hh"
#include "workloads/workload.hh"

namespace mbavf
{

/** Everything the AVF benches need from one instrumented run. */
struct AceRun
{
    std::string workload;
    GpuConfig config;
    Cycle horizon = 0;

    /** Per-bit lifetimes of CU0's L1 data array. */
    LifetimeStore l1;
    /** Per-bit lifetimes of CU0's vector register file. */
    LifetimeStore vgpr;
    /** Per-bit lifetimes of the shared L2 (when measure_l2). */
    LifetimeStore l2;

    CacheStats l1Stats;
    CacheStats l2Stats;
    std::uint64_t numDefs = 0;
    std::uint64_t numDeadDefs = 0;

    AceRun() : l1(8, 64), vgpr(32, 1), l2(8, 64) {}
};

/**
 * Run @p workload_name with ACE instrumentation on CU0's L1 and
 * VGPR (and optionally the shared L2).
 *
 * @param workload_name registry name
 * @param scale         problem-size multiplier (0/1 = default)
 * @param config        device configuration
 * @param measure_l2    also probe the shared L2 (fill consumption
 *                      resolved through the reference index)
 */
AceRun runAceAnalysis(const std::string &workload_name,
                      unsigned scale = 1, GpuConfig config = {},
                      bool measure_l2 = false);

} // namespace mbavf

#endif // MBAVF_WORKLOADS_ACE_RUNNER_HH
