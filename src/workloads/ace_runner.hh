/**
 * @file
 * End-to-end ACE analysis driver: run a workload on the GPU model
 * with probes attached, resolve liveness, and return the per-bit
 * lifetime stores that the MB-AVF engine consumes.
 */

#ifndef MBAVF_WORKLOADS_ACE_RUNNER_HH
#define MBAVF_WORKLOADS_ACE_RUNNER_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/lifetime.hh"
#include "core/lifetime_builder.hh"
#include "gpu/gpu.hh"
#include "mem/cache.hh"
#include "trace/dataflow.hh"
#include "workloads/workload.hh"

namespace mbavf
{

/**
 * Program-level artifacts of one instrumented run, captured for the
 * static-analysis passes (analyze/passes.hh): the full dataflow trace
 * and the raw per-register event logs. Both are copies taken after
 * the run — the Gpu and probes they came from are long gone by the
 * time the passes read them.
 */
struct ProgramCapture
{
    DataflowLog dataflow;
    std::unordered_map<std::uint64_t, WordEventLog> vgprEvents;
};

/** Everything the AVF benches need from one instrumented run. */
struct AceRun
{
    std::string workload;
    GpuConfig config;
    Cycle horizon = 0;

    /** Per-bit lifetimes of CU0's L1 data array. */
    LifetimeStore l1;
    /** Per-bit lifetimes of CU0's vector register file. */
    LifetimeStore vgpr;
    /** Per-bit lifetimes of the shared L2 (when measure_l2). */
    LifetimeStore l2;

    CacheStats l1Stats;
    CacheStats l2Stats;
    std::uint64_t numDefs = 0;
    std::uint64_t numDeadDefs = 0;
    /** Dynamic instructions the run executed. */
    std::uint64_t instrs = 0;

    /**
     * Per-CU VGPR lifetimes (when probe_all_vgprs), indexed by CU.
     * Container ids are CU-local regId()s, exactly like vgpr.
     */
    std::vector<LifetimeStore> vgprPerCu;

    /**
     * Cycles sampled at AceRunOptions::sampleCyclesAt instruction
     * indices, padded with the horizon for indices the run never
     * reached, so sampledCycles.size() == sampleCyclesAt.size().
     */
    std::vector<Cycle> sampledCycles;

    AceRun() : l1(8, 64), vgpr(32, 1), l2(8, 64) {}
};

/** Optional knobs for runAceAnalysis. */
struct AceRunOptions
{
    /** Problem-size multiplier (0/1 = default). */
    unsigned scale = 1;
    GpuConfig config = {};
    /**
     * Also probe the shared L2 (fill consumption resolved through
     * the reference index).
     */
    bool measureL2 = false;
    /**
     * Extra listeners tee'd with the ACE probes on CU0's L1 / the
     * shared L2; mbavf_lint hangs its event recorders here. May be
     * null. The L2 tap observes events even when measureL2 is off.
     */
    CacheListener *l1Tap = nullptr;
    CacheListener *l2Tap = nullptr;
    /**
     * When non-null, receives the run's dataflow trace and raw VGPR
     * event logs for the program-analysis passes. May be null (the
     * copies are not free for large traces).
     */
    ProgramCapture *capture = nullptr;
    /**
     * Probe every CU's VGPR (not just CU0's) and fill
     * AceRun::vgprPerCu. The stratifier needs per-CU lifetimes:
     * waves round-robin across CUs, so proving a site Unace on CU0
     * says nothing about the same register on CU1.
     */
    bool probeAllVgprs = false;
    /**
     * Dynamic-instruction indices (sorted ascending) whose begin
     * cycles to record into AceRun::sampledCycles.
     */
    std::vector<std::uint64_t> sampleCyclesAt;
};

/**
 * Run @p workload_name with ACE instrumentation on CU0's L1 and
 * VGPR (and optionally the shared L2).
 */
AceRun runAceAnalysis(const std::string &workload_name,
                      const AceRunOptions &options);

/** Convenience overload matching the historical signature. */
AceRun runAceAnalysis(const std::string &workload_name,
                      unsigned scale = 1, GpuConfig config = {},
                      bool measure_l2 = false);

} // namespace mbavf

#endif // MBAVF_WORKLOADS_ACE_RUNNER_HH
