#include "workloads/ace_runner.hh"

#include <optional>

#include "gpu/regfile_probe.hh"
#include "mem/cache_probe.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "trace/dataflow.hh"

namespace mbavf
{

AceRun
runAceAnalysis(const std::string &workload_name,
               const AceRunOptions &options)
{
    const GpuConfig &config = options.config;
    const bool measure_l2 = options.measureL2;

    AceRun out;
    out.workload = workload_name;
    out.config = config;

    Gpu gpu(config);

    CacheGeometry l1_geom{config.l1.sets, config.l1.ways,
                          config.l1.lineBytes};
    CacheAvfProbe l1_probe(l1_geom, gpu.refIndex());
    CacheListenerTee l1_tee(&l1_probe, options.l1Tap);
    gpu.l1(0).setListener(&l1_tee);

    CacheGeometry l2_geom{config.l2.sets, config.l2.ways,
                          config.l2.lineBytes};
    CacheAvfProbe l2_probe(l2_geom, gpu.refIndex());
    l2_probe.setResolveReadsViaRefIndex(true);
    CacheListenerTee l2_tee(measure_l2 ? &l2_probe : nullptr,
                            options.l2Tap);
    if (measure_l2 || options.l2Tap)
        gpu.l2().setListener(&l2_tee);

    RegFileAvfProbe vgpr_probe(config.regs);
    gpu.regFile(0).setListener(&vgpr_probe);

    // Per-CU probes for the stratifier; CU0 reuses vgpr_probe so the
    // historical vgpr store and vgprPerCu[0] come from one recording.
    std::vector<std::unique_ptr<RegFileAvfProbe>> cu_probes;
    if (options.probeAllVgprs) {
        for (unsigned cu = 1; cu < config.numCus; ++cu) {
            cu_probes.push_back(
                std::make_unique<RegFileAvfProbe>(config.regs));
            gpu.regFile(cu).setListener(cu_probes.back().get());
        }
    }

    if (!options.sampleCyclesAt.empty())
        gpu.sampleCyclesAt(options.sampleCyclesAt);

    {
        obs::ObsPhase phase("ace.sim");
        auto workload = makeWorkload(workload_name, options.scale);
        workload->run(gpu);
        gpu.finish();
    }

    out.horizon = gpu.horizon();
    out.instrs = gpu.instrCount();
    out.l1Stats = gpu.l1(0).stats();
    out.l2Stats = gpu.l2().stats();
    if (!options.sampleCyclesAt.empty()) {
        out.sampledCycles = gpu.sampledCycles();
        // Indices at or beyond the instruction count never fired;
        // the horizon bounds every lifetime, so it is the sound pad.
        out.sampledCycles.resize(options.sampleCyclesAt.size(),
                                 out.horizon);
    }

    // The backward pass: liveness over the dataflow graph, then each
    // probe resolves its recorded lifetimes against it.
    std::optional<Liveness> liveness;
    {
        obs::ObsPhase phase("ace.liveness");
        liveness.emplace(gpu.dataflow());
    }
    out.numDefs = liveness->numDefs();
    out.numDeadDefs = liveness->numDead();

    static const obs::Counter defs_counter =
        obs::MetricsRegistry::global().counter("ace.defs");
    static const obs::Counter dead_counter =
        obs::MetricsRegistry::global().counter("ace.dead_defs");
    defs_counter.add(out.numDefs);
    dead_counter.add(out.numDeadDefs);

    {
        obs::ObsPhase phase("ace.backward");
        LivenessResolver resolver = [&liveness](DefId def) {
            return static_cast<std::uint64_t>(
                liveness->relevance(def));
        };
        out.l1 = l1_probe.finalize(out.horizon, resolver);
        out.vgpr = vgpr_probe.finalize(out.horizon, resolver);
        if (measure_l2)
            out.l2 = l2_probe.finalize(out.horizon, resolver);
        if (options.probeAllVgprs) {
            out.vgprPerCu.reserve(config.numCus);
            out.vgprPerCu.push_back(
                vgpr_probe.finalize(out.horizon, resolver));
            for (auto &probe : cu_probes) {
                out.vgprPerCu.push_back(
                    probe->finalize(out.horizon, resolver));
            }
        }
    }
    if (options.capture) {
        options.capture->dataflow = gpu.dataflow();
        options.capture->vgprEvents = vgpr_probe.logs();
    }
    return out;
}

AceRun
runAceAnalysis(const std::string &workload_name, unsigned scale,
               GpuConfig config, bool measure_l2)
{
    AceRunOptions options;
    options.scale = scale;
    options.config = config;
    options.measureL2 = measure_l2;
    return runAceAnalysis(workload_name, options);
}

} // namespace mbavf
