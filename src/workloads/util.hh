/**
 * @file
 * Host-side helpers shared by the workload implementations.
 */

#ifndef MBAVF_WORKLOADS_UTIL_HH
#define MBAVF_WORKLOADS_UTIL_HH

#include <cstdint>

#include "common/rng.hh"
#include "gpu/gpu.hh"

namespace mbavf
{

/** Fill @p n 32-bit words at @p addr with masked random values. */
inline void
fillRandom(Gpu &gpu, Addr addr, unsigned n, Rng &rng,
           std::uint32_t mask = 0xFFFF)
{
    for (unsigned i = 0; i < n; ++i) {
        gpu.mem().hostWrite32(
            addr + Addr(i) * 4,
            static_cast<std::uint32_t>(rng.next()) & mask);
    }
}

/** Fill @p n 32-bit words with @p value. */
inline void
fillConst(Gpu &gpu, Addr addr, unsigned n, std::uint32_t value)
{
    for (unsigned i = 0; i < n; ++i)
        gpu.mem().hostWrite32(addr + Addr(i) * 4, value);
}

/** Fill @p n 32-bit words with start + i * step. */
inline void
fillIota(Gpu &gpu, Addr addr, unsigned n, std::uint32_t start = 0,
         std::uint32_t step = 1)
{
    for (unsigned i = 0; i < n; ++i)
        gpu.mem().hostWrite32(addr + Addr(i) * 4, start + i * step);
}

/** Waves needed to cover @p items work-items. */
inline unsigned
wavesFor(const Gpu &gpu, unsigned items)
{
    unsigned lanes = gpu.config().wavefrontSize;
    return (items + lanes - 1) / lanes;
}

/** dst = base + idx * 4 (word-indexed address computation). */
inline void
addrOf(Wave &w, unsigned dst, unsigned idx, Addr base)
{
    w.muli(dst, idx, 4);
    w.addi(dst, dst, static_cast<std::uint32_t>(base));
}

/** dst = base[idx]; clobbers @p tmp with the address. */
inline void
loadIdx(Wave &w, unsigned dst, unsigned idx, Addr base, unsigned tmp)
{
    addrOf(w, tmp, idx, base);
    w.load(dst, tmp);
}

/** base[idx] = src; clobbers @p tmp with the address. */
inline void
storeIdx(Wave &w, unsigned idx, unsigned src, Addr base, unsigned tmp,
         bool is_output = false)
{
    addrOf(w, tmp, idx, base);
    if (is_output)
        w.storeOut(tmp, src);
    else
        w.store(tmp, src);
}

} // namespace mbavf

#endif // MBAVF_WORKLOADS_UTIL_HH
