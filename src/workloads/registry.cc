#include "workloads/workload.hh"

#include <functional>
#include <map>

#include "common/logging.hh"
#include "workloads/factories.hh"

namespace mbavf
{

namespace
{

using Factory = std::function<std::unique_ptr<Workload>(unsigned)>;

const std::map<std::string, Factory> &
factories()
{
    static const std::map<std::string, Factory> table = {
        {"minife", makeMinife},
        {"comd", makeComd},
        {"srad", makeSrad},
        {"hotspot", makeHotspot},
        {"pathfinder", makePathfinder},
        {"scan_large_arrays", makeScanLargeArrays},
        {"prefix_sum", makePrefixSum},
        {"dwt_haar1d", makeDwtHaar1d},
        {"fast_walsh", makeFastWalsh},
        {"dct", makeDct},
        {"histogram", makeHistogram},
        {"matrix_transpose", makeMatrixTranspose},
        {"recursive_gaussian", makeRecursiveGaussian},
        {"matmul", makeMatmul},
        {"bfs", makeBfs},
        {"kmeans", makeKmeans},
        {"nw", makeNw},
        {"lud", makeLud},
        {"backprop", makeBackprop},
    };
    return table;
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, unsigned scale)
{
    auto it = factories().find(name);
    if (it == factories().end())
        fatal("unknown workload '", name, "'");
    return it->second(scale);
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "minife", "comd", "srad", "hotspot", "pathfinder",
        "bfs", "kmeans", "nw", "lud", "backprop",
        "scan_large_arrays", "prefix_sum", "dwt_haar1d", "fast_walsh",
        "dct", "histogram", "matrix_transpose", "recursive_gaussian",
        "matmul",
    };
    return names;
}

const std::vector<std::string> &
appSdkWorkloadNames()
{
    static const std::vector<std::string> names = {
        "scan_large_arrays", "dct", "dwt_haar1d", "fast_walsh",
        "histogram", "matrix_transpose", "prefix_sum",
        "recursive_gaussian", "matmul",
    };
    return names;
}

} // namespace mbavf
