/**
 * @file
 * AMD APP SDK stand-ins with dense/blocked access patterns: DCT,
 * Histogram, MatrixTranspose, RecursiveGaussian, MatrixMultiplication.
 */

#include <cmath>
#include <string>

#include "common/bits.hh"
#include "common/rng.hh"
#include "gpu/wave.hh"
#include "workloads/factories.hh"
#include "workloads/util.hh"

namespace mbavf
{

namespace
{

/**
 * DCT stand-in: 8-point 1-D transform of every 8-sample row using a
 * constant coefficient table; each lane transforms one row.
 */
class DctWorkload : public Workload
{
  public:
    explicit DctWorkload(unsigned scale)
        : nRows_(448 * scale)
    {}

    std::string name() const override { return "dct"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned rows = nRows_;
        Rng rng(0xDC7u);
        Addr in = gpu.alloc(std::uint64_t(rows) * 8 * 4);
        Addr coef = gpu.alloc(64 * 4);
        Addr out = gpu.alloc(std::uint64_t(rows) * 8 * 4);
        fillRandom(gpu, in, rows * 8, rng, 0xFF);
        // Integer DCT-II coefficient table, scaled by 64.
        for (unsigned u = 0; u < 8; ++u) {
            for (unsigned x = 0; x < 8; ++x) {
                double c = std::cos((2 * x + 1) * u * 3.14159265 / 16);
                gpu.mem().hostWrite32(
                    coef + (Addr(u) * 8 + x) * 4,
                    static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(c * 64) & 0xFFFF));
            }
        }
        fillConst(gpu, out, rows * 8, 0);

        gpu.launch(
            [&](Wave &w) { dctRow(w, in, coef, out, rows); },
            wavesFor(gpu, rows));
        declareOutput(gpu, out, std::uint64_t(rows) * 8 * 4);
    }

  private:
    void
    dctRow(Wave &w, Addr in, Addr coef, Addr out, unsigned rows)
    {
        // r8..r15 hold the row samples; r16 accumulates.
        enum { rId = 0, rIn = 1, rBase = 2, rC = 3, rAcc = 4,
               rTmp = 5, rSample = 8 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, rows);
        w.pushExecNonzero(rIn);
        w.shli(rBase, rId, 3);
        for (unsigned x = 0; x < 8; ++x) {
            w.addi(rTmp, rBase, x);
            loadIdx(w, rSample + x, rTmp, in, rTmp);
        }
        for (unsigned u = 0; u < 8; ++u) {
            w.movi(rAcc, 0);
            for (unsigned x = 0; x < 8; ++x) {
                w.movi(rTmp, u * 8 + x);
                loadIdx(w, rC, rTmp, coef, rTmp);
                w.mad(rAcc, rC, rSample + x, rAcc);
            }
            w.shri(rAcc, rAcc, 6);
            w.addi(rTmp, rBase, u);
            storeIdx(w, rTmp, rAcc, out, rTmp, true);
        }
        w.popExec();
    }

    unsigned nRows_;
};

/**
 * Histogram stand-in: data-dependent scatter increments into a
 * 64-bin count array (lanes execute sequentially in this model, so
 * read-modify-write updates are race-free).
 */
class HistogramWorkload : public Workload
{
  public:
    explicit HistogramWorkload(unsigned scale)
        : n_(4096 * scale)
    {}

    std::string name() const override { return "histogram"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = n_;
        Rng rng(0x4157u);
        Addr data = gpu.alloc(std::uint64_t(n) * 4);
        Addr bins = gpu.alloc(64 * 4);
        fillRandom(gpu, data, n, rng, 0xFFFF);
        fillConst(gpu, bins, 64, 0);

        gpu.launch(
            [&](Wave &w) { count(w, data, bins, n); },
            wavesFor(gpu, n));
        declareOutput(gpu, bins, 64 * 4);
    }

  private:
    void
    count(Wave &w, Addr data, Addr bins, unsigned n)
    {
        enum { rId = 0, rIn = 1, rV = 2, rBin = 3, rCnt = 4,
               rTmp = 5 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        loadIdx(w, rV, rId, data, rTmp);
        w.shri(rBin, rV, 4);
        w.andi(rBin, rBin, 63);
        loadIdx(w, rCnt, rBin, bins, rTmp);
        w.addi(rCnt, rCnt, 1);
        storeIdx(w, rBin, rCnt, bins, rTmp, true);
        w.popExec();
    }

    unsigned n_;
};

/**
 * MatrixTranspose stand-in: out[j][i] = in[i][j]; column-strided
 * reads against row-contiguous writes.
 */
class MatrixTransposeWorkload : public Workload
{
  public:
    explicit MatrixTransposeWorkload(unsigned scale)
        : dim_(64 * scale)
    {}

    std::string name() const override { return "matrix_transpose"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned dim = dim_;
        const unsigned n = dim * dim;
        Rng rng(0x7125u);
        Addr in = gpu.alloc(std::uint64_t(n) * 4);
        Addr out = gpu.alloc(std::uint64_t(n) * 4);
        fillRandom(gpu, in, n, rng, 0xFFFF);
        fillConst(gpu, out, n, 0);

        gpu.launch(
            [&](Wave &w) { transpose(w, in, out, dim); },
            wavesFor(gpu, n));
        declareOutput(gpu, out, std::uint64_t(n) * 4);
    }

  private:
    void
    transpose(Wave &w, Addr in, Addr out, unsigned dim)
    {
        enum { rId = 0, rIn = 1, rRow = 2, rCol = 3, rSrc = 4,
               rV = 5, rTmp = 6 };
        const unsigned n = dim * dim;
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        // id enumerates the output row-major: row = id / dim (dim is
        // a power of two), col = id % dim; read in[col][row].
        w.shri(rRow, rId, floorLog2(dim));
        w.andi(rCol, rId, dim - 1);
        w.muli(rSrc, rCol, dim);
        w.add(rSrc, rSrc, rRow);
        loadIdx(w, rV, rSrc, in, rTmp);
        storeIdx(w, rId, rV, out, rTmp, true);
        w.popExec();
    }

    unsigned dim_;
};

/**
 * RecursiveGaussian stand-in: first-order IIR filter along rows; one
 * lane owns one row and carries the recurrence in a register.
 */
class RecursiveGaussianWorkload : public Workload
{
  public:
    explicit RecursiveGaussianWorkload(unsigned scale)
        : rows_(192 * scale)
    {}

    std::string name() const override { return "recursive_gaussian"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned rows = rows_;
        const unsigned n = rows * rowLen;
        Rng rng(0x6A55u);
        Addr in = gpu.alloc(std::uint64_t(n) * 4);
        Addr out = gpu.alloc(std::uint64_t(n) * 4);
        fillRandom(gpu, in, n, rng, 0xFFF);
        fillConst(gpu, out, n, 0);

        gpu.launch(
            [&](Wave &w) { filter(w, in, out, rows); },
            wavesFor(gpu, rows));
        declareOutput(gpu, out, std::uint64_t(n) * 4);
    }

  private:
    static constexpr unsigned rowLen = 32;

    void
    filter(Wave &w, Addr in, Addr out, unsigned rows)
    {
        enum { rId = 0, rIn = 1, rBase = 2, rY = 3, rX = 4, rTmp = 5 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, rows);
        w.pushExecNonzero(rIn);
        w.muli(rBase, rId, rowLen);
        w.movi(rY, 0);
        for (unsigned i = 0; i < rowLen; ++i) {
            w.addi(rTmp, rBase, i);
            loadIdx(w, rX, rTmp, in, rTmp);
            // y = (3*x + 5*y) >> 3
            w.muli(rX, rX, 3);
            w.muli(rY, rY, 5);
            w.add(rY, rY, rX);
            w.shri(rY, rY, 3);
            w.addi(rTmp, rBase, i);
            storeIdx(w, rTmp, rY, out, rTmp, true);
        }
        w.popExec();
    }

    unsigned rows_;
};

/**
 * MatrixMultiplication stand-in: C = A * B with a register-blocked
 * inner-product kernel; one lane computes one C element.
 */
class MatmulWorkload : public Workload
{
  public:
    explicit MatmulWorkload(unsigned scale)
        : dim_(32 * scale)
    {}

    std::string name() const override { return "matmul"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned dim = dim_;
        const unsigned n = dim * dim;
        Rng rng(0x3A7Au);
        Addr a = gpu.alloc(std::uint64_t(n) * 4);
        Addr b = gpu.alloc(std::uint64_t(n) * 4);
        Addr c = gpu.alloc(std::uint64_t(n) * 4);
        fillRandom(gpu, a, n, rng, 0xFF);
        fillRandom(gpu, b, n, rng, 0xFF);
        fillConst(gpu, c, n, 0);

        gpu.launch(
            [&](Wave &w) { gemm(w, a, b, c, dim); }, wavesFor(gpu, n));
        declareOutput(gpu, c, std::uint64_t(n) * 4);
    }

  private:
    void
    gemm(Wave &w, Addr a, Addr b, Addr c, unsigned dim)
    {
        enum { rId = 0, rIn = 1, rRow = 2, rCol = 3, rAcc = 4,
               rA = 5, rB = 6, rTmp = 7 };
        const unsigned n = dim * dim;
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        w.shri(rRow, rId, floorLog2(dim));
        w.andi(rCol, rId, dim - 1);
        w.movi(rAcc, 0);
        w.muli(rRow, rRow, dim); // row base in A
        for (unsigned k = 0; k < dim; ++k) {
            w.addi(rTmp, rRow, k);
            loadIdx(w, rA, rTmp, a, rTmp);
            w.movi(rTmp, k * dim);
            w.add(rTmp, rTmp, rCol);
            loadIdx(w, rB, rTmp, b, rTmp);
            w.mad(rAcc, rA, rB, rAcc);
        }
        storeIdx(w, rId, rAcc, c, rTmp, true);
        w.popExec();
    }

    unsigned dim_;
};

} // namespace

std::unique_ptr<Workload>
makeDct(unsigned scale)
{
    return std::make_unique<DctWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeHistogram(unsigned scale)
{
    return std::make_unique<HistogramWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeMatrixTranspose(unsigned scale)
{
    return std::make_unique<MatrixTransposeWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeRecursiveGaussian(unsigned scale)
{
    return std::make_unique<RecursiveGaussianWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeMatmul(unsigned scale)
{
    return std::make_unique<MatmulWorkload>(scale ? scale : 1);
}

} // namespace mbavf
