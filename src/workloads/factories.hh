/**
 * @file
 * Internal per-workload factory declarations (used by the registry).
 */

#ifndef MBAVF_WORKLOADS_FACTORIES_HH
#define MBAVF_WORKLOADS_FACTORIES_HH

#include <memory>

#include "workloads/workload.hh"

namespace mbavf
{

std::unique_ptr<Workload> makeMinife(unsigned scale);
std::unique_ptr<Workload> makeComd(unsigned scale);
std::unique_ptr<Workload> makeSrad(unsigned scale);
std::unique_ptr<Workload> makeHotspot(unsigned scale);
std::unique_ptr<Workload> makePathfinder(unsigned scale);
std::unique_ptr<Workload> makeScanLargeArrays(unsigned scale);
std::unique_ptr<Workload> makePrefixSum(unsigned scale);
std::unique_ptr<Workload> makeDwtHaar1d(unsigned scale);
std::unique_ptr<Workload> makeFastWalsh(unsigned scale);
std::unique_ptr<Workload> makeDct(unsigned scale);
std::unique_ptr<Workload> makeHistogram(unsigned scale);
std::unique_ptr<Workload> makeMatrixTranspose(unsigned scale);
std::unique_ptr<Workload> makeRecursiveGaussian(unsigned scale);
std::unique_ptr<Workload> makeMatmul(unsigned scale);
std::unique_ptr<Workload> makeBfs(unsigned scale);
std::unique_ptr<Workload> makeKmeans(unsigned scale);
std::unique_ptr<Workload> makeNw(unsigned scale);
std::unique_ptr<Workload> makeLud(unsigned scale);
std::unique_ptr<Workload> makeBackprop(unsigned scale);

} // namespace mbavf

#endif // MBAVF_WORKLOADS_FACTORIES_HH
