/**
 * @file
 * Mantevo mini-app stand-ins: MiniFE and CoMD.
 */

#include <string>

#include "common/rng.hh"
#include "gpu/wave.hh"
#include "workloads/factories.hh"
#include "workloads/util.hh"

namespace mbavf
{

namespace
{

/**
 * MiniFE stand-in: finite-element assembly followed by a CG-style
 * solve (sparse matrix-vector products interleaved with vector
 * updates). The two phases have very different cache behaviour,
 * producing the AVF phase changes of paper Figure 5.
 */
class MinifeWorkload : public Workload
{
  public:
    explicit MinifeWorkload(unsigned scale)
        : nRows_(384 * scale)
    {}

    std::string name() const override { return "minife"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = nRows_;
        Rng rng(0x51e5u);
        Addr cols = gpu.alloc(std::uint64_t(n) * nnzPerRow * 4);
        Addr vals = gpu.alloc(std::uint64_t(n) * nnzPerRow * 4);
        Addr x = gpu.alloc(std::uint64_t(n) * 4);
        Addr y = gpu.alloc(std::uint64_t(n) * 4);

        // Banded sparsity: neighbours of row i cluster around i.
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned k = 0; k < nnzPerRow; ++k) {
                std::uint32_t col =
                    (i + n + static_cast<std::uint32_t>(
                                 rng.range(-3, 3))) % n;
                gpu.mem().hostWrite32(
                    cols + (Addr(i) * nnzPerRow + k) * 4, col);
            }
        }
        fillConst(gpu, x, n, 1);
        fillConst(gpu, y, n, 0);

        const unsigned waves = wavesFor(gpu, n);

        // Phase 1: element assembly (writes the value array).
        gpu.launch(
            [&](Wave &w) { assembly(w, vals, n); }, waves);

        // Phase 2: CG-style iterations: y = A*x; x = x + (y >> 4).
        for (unsigned iter = 0; iter < 3; ++iter) {
            bool last = iter == 2;
            gpu.launch(
                [&](Wave &w) { spmv(w, cols, vals, x, y, n); }, waves);
            gpu.launch(
                [&](Wave &w) { axpy(w, x, y, n, last); }, waves);
        }
        declareOutput(gpu, x, std::uint64_t(n) * 4);
    }

  private:
    static constexpr unsigned nnzPerRow = 8;

    void
    assembly(Wave &w, Addr vals, unsigned n)
    {
        enum { rId = 0, rIn = 1, rV = 2, rK = 3, rTmp = 4 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        // Element stiffness values derived from the row id.
        w.muli(rV, rId, 2654435761u);
        w.shri(rV, rV, 20);
        for (unsigned k = 0; k < nnzPerRow; ++k) {
            w.addi(rK, rV, k * 3 + 1);
            w.andi(rK, rK, 0xFFF);
            w.muli(rTmp, rId, nnzPerRow);
            w.addi(rTmp, rTmp, k);
            storeIdx(w, rTmp, rK, vals, rTmp);
        }
        w.popExec();
    }

    void
    spmv(Wave &w, Addr cols, Addr vals, Addr x, Addr y, unsigned n)
    {
        enum { rId = 0, rIn = 1, rAcc = 2, rBase = 3, rCol = 4,
               rVal = 5, rX = 6, rTmp = 7 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        w.movi(rAcc, 0);
        w.muli(rBase, rId, nnzPerRow);
        for (unsigned k = 0; k < nnzPerRow; ++k) {
            w.addi(rTmp, rBase, k);
            loadIdx(w, rCol, rTmp, cols, rCol);
            w.addi(rTmp, rBase, k);
            loadIdx(w, rVal, rTmp, vals, rTmp);
            loadIdx(w, rX, rCol, x, rTmp);
            w.mad(rAcc, rVal, rX, rAcc);
        }
        storeIdx(w, rId, rAcc, y, rTmp);
        w.popExec();
    }

    void
    axpy(Wave &w, Addr x, Addr y, unsigned n, bool is_output)
    {
        enum { rId = 0, rIn = 1, rX = 2, rY = 3, rTmp = 4 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        loadIdx(w, rX, rId, x, rTmp);
        loadIdx(w, rY, rId, y, rTmp);
        w.shri(rY, rY, 4);
        w.add(rX, rX, rY);
        storeIdx(w, rId, rX, x, rTmp, is_output);
        w.popExec();
    }

    unsigned nRows_;
};

/**
 * CoMD stand-in: a molecular-dynamics force loop over neighbour
 * lists. Neighbours outside the cutoff contribute nothing (their
 * loaded positions are dynamically dead), which makes this the
 * workload with the paper's high false-DUE rate (Figure 10).
 */
class ComdWorkload : public Workload
{
  public:
    explicit ComdWorkload(unsigned scale)
        : nAtoms_(320 * scale)
    {}

    std::string name() const override { return "comd"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = nAtoms_;
        Rng rng(0xc0DDu);
        Addr pos = gpu.alloc(std::uint64_t(n) * 4);
        Addr neigh = gpu.alloc(std::uint64_t(n) * neighbors * 4);
        Addr force = gpu.alloc(std::uint64_t(n) * 4);

        fillRandom(gpu, pos, n, rng, 0x3FF);
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned k = 0; k < neighbors; ++k) {
                // Spatially local neighbour lists with a few far
                // entries that fail the cutoff test.
                std::uint32_t j = (i + n + static_cast<std::uint32_t>(
                                               rng.range(-6, 6))) % n;
                if (k % 5 == 4)
                    j = static_cast<std::uint32_t>(rng.below(n));
                gpu.mem().hostWrite32(
                    neigh + (Addr(i) * neighbors + k) * 4, j);
            }
        }
        fillConst(gpu, force, n, 0);

        const unsigned waves = wavesFor(gpu, n);
        for (unsigned step = 0; step < 2; ++step) {
            bool last = step == 1;
            gpu.launch(
                [&](Wave &w) {
                    forceKernel(w, pos, neigh, force, n, last);
                },
                waves);
        }
        declareOutput(gpu, force, std::uint64_t(n) * 4);
    }

  private:
    static constexpr unsigned neighbors = 10;
    static constexpr std::uint32_t cutoff = 96;

    void
    forceKernel(Wave &w, Addr pos, Addr neigh, Addr force, unsigned n,
                bool is_output)
    {
        enum { rId = 0, rIn = 1, rMyPos = 2, rAcc = 3, rBase = 4,
               rJ = 5, rJPos = 6, rD = 7, rD2 = 8, rNear = 9,
               rZero = 10, rTmp = 11 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        loadIdx(w, rMyPos, rId, pos, rTmp);
        loadIdx(w, rAcc, rId, force, rTmp);
        w.movi(rZero, 0);
        w.muli(rBase, rId, neighbors);
        for (unsigned k = 0; k < neighbors; ++k) {
            w.addi(rTmp, rBase, k);
            loadIdx(w, rJ, rTmp, neigh, rTmp);
            loadIdx(w, rJPos, rJ, pos, rTmp);
            // d = |pi - pj| via max(a-b, b-a); d2 = d*d >> 4.
            w.sub(rD, rMyPos, rJPos);
            w.sub(rTmp, rJPos, rMyPos);
            w.maxu(rD, rD, rTmp);
            w.cmpLtui(rNear, rD, cutoff);
            w.mul(rD2, rD, rD);
            w.shri(rD2, rD2, 4);
            // Outside the cutoff the contribution is zero: the
            // loaded neighbour position becomes dead data.
            w.select(rD2, rNear, rD2, rZero);
            w.add(rAcc, rAcc, rD2);
        }
        storeIdx(w, rId, rAcc, force, rTmp, is_output);
        w.popExec();
    }

    unsigned nAtoms_;
};

} // namespace

std::unique_ptr<Workload>
makeMinife(unsigned scale)
{
    return std::make_unique<MinifeWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeComd(unsigned scale)
{
    return std::make_unique<ComdWorkload>(scale ? scale : 1);
}

} // namespace mbavf
