/**
 * @file
 * Additional Rodinia stand-ins: bfs, kmeans, nw, lud, backprop.
 */

#include <string>

#include "common/bits.hh"
#include "common/rng.hh"
#include "gpu/wave.hh"
#include "workloads/factories.hh"
#include "workloads/util.hh"

namespace mbavf
{

namespace
{

/**
 * bfs stand-in: frontier-driven breadth-first search over a random
 * CSR graph; only lanes whose node sits on the current frontier do
 * work (heavy data-dependent divergence, irregular gathers).
 */
class BfsWorkload : public Workload
{
  public:
    explicit BfsWorkload(unsigned scale)
        : nNodes_(448 * scale)
    {}

    std::string name() const override { return "bfs"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = nNodes_;
        Rng rng(0xBF5u);
        Addr edges = gpu.alloc(std::uint64_t(n) * degree * 4);
        Addr level = gpu.alloc(std::uint64_t(n) * 4);

        // Mostly-local random graph so the frontier grows over a few
        // iterations rather than exploding at once.
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned k = 0; k < degree; ++k) {
                std::uint32_t j = (i + n + static_cast<std::uint32_t>(
                                               rng.range(-9, 9))) % n;
                gpu.mem().hostWrite32(
                    edges + (Addr(i) * degree + k) * 4, j);
            }
        }
        fillConst(gpu, level, n, inf);
        gpu.mem().hostWrite32(level, 0); // source node 0

        const unsigned waves = wavesFor(gpu, n);
        for (unsigned iter = 0; iter < 6; ++iter) {
            bool last = iter == 5;
            gpu.launch(
                [&](Wave &w) {
                    step(w, edges, level, n, iter, last);
                },
                waves);
        }
        declareOutput(gpu, level, std::uint64_t(n) * 4);
    }

  private:
    static constexpr unsigned degree = 6;
    static constexpr std::uint32_t inf = 0xFFFF;

    void
    step(Wave &w, Addr edges, Addr level, unsigned n, unsigned iter,
         bool is_output)
    {
        enum { rId = 0, rIn = 1, rLvl = 2, rOn = 3, rBase = 4,
               rNbr = 5, rNLvl = 6, rIsInf = 7, rNew = 8, rTmp = 9 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        loadIdx(w, rLvl, rId, level, rTmp);
        // Frontier test: my level == iter.
        w.cmpEqi(rOn, rLvl, iter);
        w.pushExecNonzero(rOn);
        w.muli(rBase, rId, degree);
        for (unsigned k = 0; k < degree; ++k) {
            w.addi(rTmp, rBase, k);
            loadIdx(w, rNbr, rTmp, edges, rTmp);
            loadIdx(w, rNLvl, rNbr, level, rTmp);
            w.cmpEqi(rIsInf, rNLvl, inf);
            w.movi(rNew, iter + 1);
            w.select(rNew, rIsInf, rNew, rNLvl);
            w.muli(rTmp, rNbr, 4);
            w.addi(rTmp, rTmp,
                   static_cast<std::uint32_t>(level));
            if (is_output)
                w.storeOut(rTmp, rNew);
            else
                w.store(rTmp, rNew);
        }
        w.popExec();
        w.popExec();
    }

    unsigned nNodes_;
};

/**
 * kmeans stand-in: assignment of 1-D points to the nearest of k
 * centroids, centroid recomputation on the device (scatter
 * accumulate + divide), two iterations.
 */
class KmeansWorkload : public Workload
{
  public:
    explicit KmeansWorkload(unsigned scale)
        : nPoints_(1536 * scale)
    {}

    std::string name() const override { return "kmeans"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = nPoints_;
        Rng rng(0x4EA5u);
        Addr points = gpu.alloc(std::uint64_t(n) * 4);
        Addr centroids = gpu.alloc(k * 4);
        Addr assign = gpu.alloc(std::uint64_t(n) * 4);
        Addr sums = gpu.alloc(k * 4);
        Addr counts = gpu.alloc(k * 4);

        fillRandom(gpu, points, n, rng, 0x3FF);
        for (unsigned c = 0; c < k; ++c) {
            gpu.mem().hostWrite32(centroids + Addr(c) * 4,
                                  c * (0x400 / k) + 17);
        }
        fillConst(gpu, assign, n, 0);

        const unsigned waves = wavesFor(gpu, n);
        for (unsigned iter = 0; iter < 2; ++iter) {
            bool last = iter == 1;
            fillConst(gpu, sums, k, 0);
            fillConst(gpu, counts, k, 0);
            gpu.launch(
                [&](Wave &w) {
                    assignKernel(w, points, centroids, assign, sums,
                                 counts, n, last);
                },
                waves);
            if (!last) {
                gpu.launch(
                    [&](Wave &w) {
                        updateKernel(w, centroids, sums, counts);
                    },
                    1);
            }
        }
        declareOutput(gpu, assign, std::uint64_t(n) * 4);
    }

  private:
    static constexpr unsigned k = 8;

    void
    assignKernel(Wave &w, Addr points, Addr centroids, Addr assign,
                 Addr sums, Addr counts, unsigned n, bool is_output)
    {
        enum { rId = 0, rIn = 1, rP = 2, rBest = 3, rBestD = 4,
               rC = 5, rD = 6, rD2 = 7, rCloser = 8, rTmp = 9,
               rCnt = 10 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, n);
        w.pushExecNonzero(rIn);
        loadIdx(w, rP, rId, points, rTmp);
        w.movi(rBest, 0);
        w.movi(rBestD, 0xFFFFFF);
        for (unsigned c = 0; c < k; ++c) {
            w.movi(rTmp, c);
            loadIdx(w, rC, rTmp, centroids, rTmp);
            w.sub(rD, rP, rC);
            w.sub(rD2, rC, rP);
            w.maxu(rD, rD, rD2);
            w.cmpLtu(rCloser, rD, rBestD);
            w.movi(rTmp, c);
            w.select(rBest, rCloser, rTmp, rBest);
            w.select(rBestD, rCloser, rD, rBestD);
        }
        storeIdx(w, rId, rBest, assign, rTmp, is_output);
        // Scatter-accumulate for the centroid update (races between
        // lanes lose updates deterministically, like histogram).
        loadIdx(w, rD, rBest, sums, rTmp);
        w.add(rD, rD, rP);
        storeIdx(w, rBest, rD, sums, rTmp);
        loadIdx(w, rCnt, rBest, counts, rTmp);
        w.addi(rCnt, rCnt, 1);
        storeIdx(w, rBest, rCnt, counts, rTmp);
        w.popExec();
    }

    void
    updateKernel(Wave &w, Addr centroids, Addr sums, Addr counts)
    {
        enum { rId = 0, rIn = 1, rSum = 2, rCnt = 3, rNew = 4,
               rTmp = 5 };
        w.laneIdx(rId);
        w.cmpLtui(rIn, rId, k);
        w.pushExecNonzero(rIn);
        loadIdx(w, rSum, rId, sums, rTmp);
        loadIdx(w, rCnt, rId, counts, rTmp);
        w.divu(rNew, rSum, rCnt);
        storeIdx(w, rId, rNew, centroids, rTmp);
        w.popExec();
    }

    unsigned nPoints_;
};

/**
 * nw stand-in: Needleman-Wunsch dynamic programming, one kernel per
 * anti-diagonal; each active lane computes one cell from its three
 * neighbours plus a similarity term.
 */
class NwWorkload : public Workload
{
  public:
    explicit NwWorkload(unsigned scale)
        : dim_(56 * scale)
    {}

    std::string name() const override { return "nw"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned dim = dim_;
        Rng rng(0x2121u);
        Addr sim = gpu.alloc(std::uint64_t(dim) * dim * 4);
        Addr score = gpu.alloc(std::uint64_t(dim + 1) * (dim + 1) * 4);
        fillRandom(gpu, sim, dim * dim, rng, 0xF);
        // Boundary conditions: gap penalties along row/col 0.
        for (unsigned i = 0; i <= dim; ++i) {
            gpu.mem().hostWrite32(score + Addr(i) * 4, i * gap);
            gpu.mem().hostWrite32(score + Addr(i) * (dim + 1) * 4,
                                  i * gap);
        }

        for (unsigned d = 2; d <= 2 * dim; ++d) {
            bool last = d == 2 * dim;
            gpu.launch(
                [&](Wave &w) { diagonal(w, sim, score, dim, d, last); },
                wavesFor(gpu, dim));
        }
        declareOutput(gpu, score,
                      std::uint64_t(dim + 1) * (dim + 1) * 4);
    }

  private:
    static constexpr std::uint32_t gap = 1;

    void
    diagonal(Wave &w, Addr sim, Addr score, unsigned dim, unsigned d,
             bool is_output)
    {
        enum { rI = 0, rJ = 1, rIn = 2, rUp = 3, rLeft = 4,
               rDiag = 5, rS = 6, rIdx = 7, rTmp = 8, rT2 = 9 };
        const unsigned stride = dim + 1;
        // Lane l computes cell (i, j) = (l+1, d-l-1) when valid.
        w.laneIdx(rI);
        w.addi(rI, rI, 1);
        w.movi(rJ, d);
        w.sub(rJ, rJ, rI);
        // Valid: 1 <= i <= dim and 1 <= j <= dim.
        w.cmpLtui(rIn, rI, dim + 1);
        w.subi(rTmp, rJ, 1);
        w.cmpLtui(rTmp, rTmp, dim);
        w.and_(rIn, rIn, rTmp);
        w.pushExecNonzero(rIn);

        // score indices: cur = i*stride + j
        w.muli(rIdx, rI, stride);
        w.add(rIdx, rIdx, rJ);
        w.subi(rTmp, rIdx, stride);
        loadIdx(w, rUp, rTmp, score, rT2);
        w.subi(rTmp, rIdx, 1);
        loadIdx(w, rLeft, rTmp, score, rT2);
        w.subi(rTmp, rIdx, stride + 1);
        loadIdx(w, rDiag, rTmp, score, rT2);

        // sim[i-1][j-1]
        w.subi(rTmp, rI, 1);
        w.muli(rTmp, rTmp, dim);
        w.add(rTmp, rTmp, rJ);
        w.subi(rTmp, rTmp, 1);
        loadIdx(w, rS, rTmp, sim, rT2);

        w.add(rDiag, rDiag, rS);
        w.addi(rUp, rUp, gap);
        w.addi(rLeft, rLeft, gap);
        w.minu(rDiag, rDiag, rUp);
        w.minu(rDiag, rDiag, rLeft);
        storeIdx(w, rIdx, rDiag, score, rTmp, is_output);
        w.popExec();
    }

    unsigned dim_;
};

/**
 * lud stand-in: in-place LU factorization by row reduction, one
 * kernel launch per pivot; each lane owns one row below the pivot.
 */
class LudWorkload : public Workload
{
  public:
    explicit LudWorkload(unsigned scale)
        : dim_(28 * scale)
    {}

    std::string name() const override { return "lud"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned dim = dim_;
        Rng rng(0x10Du);
        Addr a = gpu.alloc(std::uint64_t(dim) * dim * 4);
        // Diagonally dominant matrix keeps pivots nonzero.
        for (unsigned i = 0; i < dim; ++i) {
            for (unsigned j = 0; j < dim; ++j) {
                std::uint32_t v = static_cast<std::uint32_t>(
                    rng.below(64) + (i == j ? 4096 : 16));
                gpu.mem().hostWrite32(a + (Addr(i) * dim + j) * 4, v);
            }
        }

        for (unsigned piv = 0; piv + 1 < dim; ++piv) {
            bool last = piv + 2 == dim;
            gpu.launch(
                [&](Wave &w) { reduce(w, a, dim, piv, last); },
                wavesFor(gpu, dim));
        }
        declareOutput(gpu, a, std::uint64_t(dim) * dim * 4);
    }

  private:
    void
    reduce(Wave &w, Addr a, unsigned dim, unsigned piv, bool is_output)
    {
        enum { rRow = 0, rIn = 1, rPivV = 2, rMyV = 3, rFac = 4,
               rPV = 5, rMine = 6, rTmp = 7, rT2 = 8 };
        // Lane l owns row piv+1+l.
        w.laneIdx(rRow);
        w.addi(rRow, rRow, piv + 1);
        w.cmpLtui(rIn, rRow, dim);
        w.pushExecNonzero(rIn);

        // factor = (A[row][piv] << 8) / A[piv][piv]
        w.movi(rTmp, piv * dim + piv);
        loadIdx(w, rPivV, rTmp, a, rT2);
        w.muli(rTmp, rRow, dim);
        w.addi(rTmp, rTmp, piv);
        loadIdx(w, rMyV, rTmp, a, rT2);
        w.shli(rFac, rMyV, 8);
        w.divu(rFac, rFac, rPivV);

        for (unsigned j = piv; j < dim; ++j) {
            w.movi(rTmp, piv * dim + j);
            loadIdx(w, rPV, rTmp, a, rT2);
            w.mul(rPV, rPV, rFac);
            w.shri(rPV, rPV, 8);
            w.muli(rTmp, rRow, dim);
            w.addi(rTmp, rTmp, j);
            loadIdx(w, rMine, rTmp, a, rT2);
            w.sub(rMine, rMine, rPV);
            w.muli(rTmp, rRow, dim);
            w.addi(rTmp, rTmp, j);
            storeIdx(w, rTmp, rMine, a, rT2, is_output);
        }
        w.popExec();
    }

    unsigned dim_;
};

/**
 * backprop stand-in: one forward + backward pass of a small
 * fully-connected layer in fixed point; lanes own hidden units for
 * the forward pass and weights for the update.
 */
class BackpropWorkload : public Workload
{
  public:
    explicit BackpropWorkload(unsigned scale)
        : nInputs_(256 * scale)
    {}

    std::string name() const override { return "backprop"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned in_n = nInputs_;
        Rng rng(0xBAC2u);
        Addr input = gpu.alloc(std::uint64_t(in_n) * 4);
        Addr weights = gpu.alloc(std::uint64_t(in_n) * hidden * 4);
        Addr hid = gpu.alloc(hidden * 4);
        Addr target = gpu.alloc(hidden * 4);
        Addr delta = gpu.alloc(hidden * 4);

        fillRandom(gpu, input, in_n, rng, 0xFF);
        fillRandom(gpu, weights, in_n * hidden, rng, 0x3F);
        fillRandom(gpu, target, hidden, rng, 0xFFF);
        fillConst(gpu, hid, hidden, 0);
        fillConst(gpu, delta, hidden, 0);

        // Forward: hid[h] = sum_i input[i] * W[i][h] >> 8.
        gpu.launch(
            [&](Wave &w) { forward(w, input, weights, hid, in_n); },
            1);
        // Error: delta[h] = target[h] - hid[h].
        gpu.launch(
            [&](Wave &w) { error(w, hid, target, delta); }, 1);
        // Update: W[i][h] += (input[i] * delta[h]) >> 12.
        gpu.launch(
            [&](Wave &w) { update(w, input, weights, delta, in_n); },
            wavesFor(gpu, in_n));
        declareOutput(gpu, weights,
                      std::uint64_t(in_n) * hidden * 4);
        declareOutput(gpu, delta, hidden * 4);
    }

  private:
    static constexpr unsigned hidden = 16;

    void
    forward(Wave &w, Addr input, Addr weights, Addr hid,
            unsigned in_n)
    {
        enum { rH = 0, rIn = 1, rAcc = 2, rX = 3, rW = 4, rTmp = 5,
               rT2 = 6 };
        w.laneIdx(rH);
        w.cmpLtui(rIn, rH, hidden);
        w.pushExecNonzero(rIn);
        w.movi(rAcc, 0);
        for (unsigned i = 0; i < in_n; i += 4) {
            // Sample every 4th input to bound trace size.
            w.movi(rTmp, i);
            loadIdx(w, rX, rTmp, input, rT2);
            w.muli(rTmp, rH, 1);
            w.addi(rTmp, rTmp, i * hidden);
            loadIdx(w, rW, rTmp, weights, rT2);
            w.mad(rAcc, rX, rW, rAcc);
        }
        w.shri(rAcc, rAcc, 8);
        storeIdx(w, rH, rAcc, hid, rTmp);
        w.popExec();
    }

    void
    error(Wave &w, Addr hid, Addr target, Addr delta)
    {
        enum { rH = 0, rIn = 1, rO = 2, rT = 3, rD = 4, rTmp = 5 };
        w.laneIdx(rH);
        w.cmpLtui(rIn, rH, hidden);
        w.pushExecNonzero(rIn);
        loadIdx(w, rO, rH, hid, rTmp);
        loadIdx(w, rT, rH, target, rTmp);
        w.sub(rD, rT, rO);
        w.andi(rD, rD, 0xFFFF);
        storeIdx(w, rH, rD, delta, rTmp, true);
        w.popExec();
    }

    void
    update(Wave &w, Addr input, Addr weights, Addr delta,
           unsigned in_n)
    {
        enum { rI = 0, rIn = 1, rX = 2, rD = 3, rW = 4, rTmp = 5,
               rT2 = 6 };
        w.globalId(rI);
        w.cmpLtui(rIn, rI, in_n);
        w.pushExecNonzero(rIn);
        loadIdx(w, rX, rI, input, rTmp);
        for (unsigned h = 0; h < hidden; h += 2) {
            w.movi(rTmp, h);
            loadIdx(w, rD, rTmp, delta, rT2);
            w.mul(rD, rD, rX);
            w.shri(rD, rD, 12);
            w.muli(rTmp, rI, hidden);
            w.addi(rTmp, rTmp, h);
            loadIdx(w, rW, rTmp, weights, rT2);
            w.add(rW, rW, rD);
            w.muli(rTmp, rI, hidden);
            w.addi(rTmp, rTmp, h);
            storeIdx(w, rTmp, rW, weights, rT2, true);
        }
        w.popExec();
    }

    unsigned nInputs_;
};

} // namespace

std::unique_ptr<Workload>
makeBfs(unsigned scale)
{
    return std::make_unique<BfsWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeKmeans(unsigned scale)
{
    return std::make_unique<KmeansWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeNw(unsigned scale)
{
    return std::make_unique<NwWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeLud(unsigned scale)
{
    return std::make_unique<LudWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeBackprop(unsigned scale)
{
    return std::make_unique<BackpropWorkload>(scale ? scale : 1);
}

} // namespace mbavf
