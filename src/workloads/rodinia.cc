/**
 * @file
 * Rodinia stand-ins: srad, hotspot, pathfinder.
 */

#include <string>

#include "common/rng.hh"
#include "gpu/wave.hh"
#include "workloads/factories.hh"
#include "workloads/util.hh"

namespace mbavf
{

namespace
{

/** Shared 2-D stencil geometry: W is a power of two. */
constexpr unsigned gridW = 64;

/**
 * srad stand-in: anisotropic-diffusion 2-D stencil with a
 * data-dependent threshold that discards small updates (dead loads).
 */
class SradWorkload : public Workload
{
  public:
    explicit SradWorkload(unsigned scale)
        : gridH_(40 * scale)
    {}

    std::string name() const override { return "srad"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = gridH_ * gridW;
        Rng rng(0x5Adu);
        Addr a = gpu.alloc(std::uint64_t(n) * 4);
        Addr b = gpu.alloc(std::uint64_t(n) * 4);
        fillRandom(gpu, a, n, rng, 0xFFF);
        // Borders are never rewritten; keep the buffers consistent.
        for (unsigned i = 0; i < n; ++i) {
            gpu.mem().hostWrite32(b + Addr(i) * 4,
                                  gpu.mem().read32(a + Addr(i) * 4));
        }

        const unsigned waves = wavesFor(gpu, n);
        Addr src = a, dst = b;
        for (unsigned iter = 0; iter < 2; ++iter) {
            bool last = iter == 1;
            gpu.launch(
                [&](Wave &w) { stencil(w, src, dst, n, last); }, waves);
            std::swap(src, dst);
        }
        declareOutput(gpu, src, std::uint64_t(n) * 4);
    }

  private:
    void
    stencil(Wave &w, Addr src, Addr dst, unsigned n, bool is_output)
    {
        enum { rId = 0, rIn = 1, rRow = 2, rCol = 3, rC = 4, rN = 5,
               rS = 6, rE = 7, rW = 8, rD = 9, rBig = 10, rTmp = 11,
               rT2 = 12 };
        const unsigned h = n / gridW;
        w.globalId(rId);
        // Interior guard: 1 <= row <= h-2 and 1 <= col <= W-2.
        w.shri(rRow, rId, 6);
        w.andi(rCol, rId, gridW - 1);
        w.subi(rTmp, rRow, 1);
        w.cmpLtui(rIn, rTmp, h - 2);
        w.subi(rTmp, rCol, 1);
        w.cmpLtui(rTmp, rTmp, gridW - 2);
        w.and_(rIn, rIn, rTmp);
        w.pushExecNonzero(rIn);

        loadIdx(w, rC, rId, src, rTmp);
        w.subi(rTmp, rId, gridW);
        loadIdx(w, rN, rTmp, src, rT2);
        w.addi(rTmp, rId, gridW);
        loadIdx(w, rS, rTmp, src, rT2);
        w.addi(rTmp, rId, 1);
        loadIdx(w, rE, rTmp, src, rT2);
        w.subi(rTmp, rId, 1);
        loadIdx(w, rW, rTmp, src, rT2);

        // divergence d = n + s + e + w - 4c
        w.add(rD, rN, rS);
        w.add(rD, rD, rE);
        w.add(rD, rD, rW);
        w.muli(rTmp, rC, 4);
        w.sub(rD, rD, rTmp);
        // Threshold: only apply large updates (small |d| is noise).
        w.shri(rTmp, rD, 3);
        w.add(rTmp, rC, rTmp);
        w.andi(rTmp, rTmp, 0xFFFF);
        w.andi(rT2, rD, 0xFF80); // |d| >= 128 in magnitude bits?
        w.select(rD, rT2, rTmp, rC);
        storeIdx(w, rId, rD, dst, rTmp, is_output);
        w.popExec();
    }

    unsigned gridH_;
};

/**
 * hotspot stand-in: thermal 2-D stencil with a per-cell power input
 * and double buffering.
 */
class HotspotWorkload : public Workload
{
  public:
    explicit HotspotWorkload(unsigned scale)
        : gridH_(40 * scale)
    {}

    std::string name() const override { return "hotspot"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned n = gridH_ * gridW;
        Rng rng(0x407u);
        Addr temp0 = gpu.alloc(std::uint64_t(n) * 4);
        Addr temp1 = gpu.alloc(std::uint64_t(n) * 4);
        Addr power = gpu.alloc(std::uint64_t(n) * 4);
        fillRandom(gpu, temp0, n, rng, 0x3FF);
        fillRandom(gpu, power, n, rng, 0xFF);
        for (unsigned i = 0; i < n; ++i) {
            gpu.mem().hostWrite32(
                temp1 + Addr(i) * 4,
                gpu.mem().read32(temp0 + Addr(i) * 4));
        }

        const unsigned waves = wavesFor(gpu, n);
        Addr src = temp0, dst = temp1;
        for (unsigned iter = 0; iter < 3; ++iter) {
            bool last = iter == 2;
            gpu.launch(
                [&](Wave &w) { step(w, src, dst, power, n, last); },
                waves);
            std::swap(src, dst);
        }
        declareOutput(gpu, src, std::uint64_t(n) * 4);
    }

  private:
    void
    step(Wave &w, Addr src, Addr dst, Addr power, unsigned n,
         bool is_output)
    {
        enum { rId = 0, rIn = 1, rC = 2, rAcc = 3, rP = 4, rTmp = 5,
               rT2 = 6 };
        const unsigned h = n / gridW;
        w.globalId(rId);
        w.shri(rTmp, rId, 6);
        w.subi(rTmp, rTmp, 1);
        w.cmpLtui(rIn, rTmp, h - 2);
        w.andi(rTmp, rId, gridW - 1);
        w.subi(rTmp, rTmp, 1);
        w.cmpLtui(rTmp, rTmp, gridW - 2);
        w.and_(rIn, rIn, rTmp);
        w.pushExecNonzero(rIn);

        loadIdx(w, rC, rId, src, rTmp);
        w.subi(rTmp, rId, gridW);
        loadIdx(w, rAcc, rTmp, src, rT2);
        w.addi(rTmp, rId, gridW);
        loadIdx(w, rT2, rTmp, src, rTmp);
        w.add(rAcc, rAcc, rT2);
        w.addi(rTmp, rId, 1);
        loadIdx(w, rT2, rTmp, src, rTmp);
        w.add(rAcc, rAcc, rT2);
        w.subi(rTmp, rId, 1);
        loadIdx(w, rT2, rTmp, src, rTmp);
        w.add(rAcc, rAcc, rT2);
        // t' = t + ((sum - 4t) >> 2) + (p >> 3)
        w.muli(rTmp, rC, 4);
        w.sub(rAcc, rAcc, rTmp);
        w.shri(rAcc, rAcc, 2);
        loadIdx(w, rP, rId, power, rTmp);
        w.shri(rP, rP, 3);
        w.add(rAcc, rAcc, rP);
        w.add(rAcc, rAcc, rC);
        w.andi(rAcc, rAcc, 0xFFFF);
        storeIdx(w, rId, rAcc, dst, rTmp, is_output);
        w.popExec();
    }

    unsigned gridH_;
};

/**
 * pathfinder stand-in: row-by-row dynamic programming over a cost
 * grid; each step reads three adjacent entries of the previous row.
 */
class PathfinderWorkload : public Workload
{
  public:
    explicit PathfinderWorkload(unsigned scale)
        : cols_(448 * scale)
    {}

    std::string name() const override { return "pathfinder"; }

    void
    run(Gpu &gpu) override
    {
        const unsigned cols = cols_;
        Rng rng(0xBADu);
        Addr wall = gpu.alloc(std::uint64_t(rows) * cols * 4);
        Addr cur = gpu.alloc(std::uint64_t(cols) * 4);
        Addr next = gpu.alloc(std::uint64_t(cols) * 4);
        fillRandom(gpu, wall, rows * cols, rng, 0xFF);
        fillRandom(gpu, cur, cols, rng, 0xFF);
        fillConst(gpu, next, cols, 0);

        const unsigned waves = wavesFor(gpu, cols);
        Addr src = cur, dst = next;
        for (unsigned row = 0; row < rows; ++row) {
            bool last = row == rows - 1;
            gpu.launch(
                [&](Wave &w) {
                    step(w, src, dst, wall, row, cols, last);
                },
                waves);
            std::swap(src, dst);
        }
        declareOutput(gpu, src, std::uint64_t(cols) * 4);
    }

  private:
    static constexpr unsigned rows = 16;

    void
    step(Wave &w, Addr src, Addr dst, Addr wall, unsigned row,
         unsigned cols, bool is_output)
    {
        enum { rId = 0, rIn = 1, rL = 2, rC = 3, rR = 4, rW = 5,
               rTmp = 6, rT2 = 7 };
        w.globalId(rId);
        w.cmpLtui(rIn, rId, cols);
        w.pushExecNonzero(rIn);
        loadIdx(w, rC, rId, src, rTmp);
        // left neighbour, clamped at column 0
        w.cmpEqi(rT2, rId, 0);
        w.subi(rTmp, rId, 1);
        w.select(rTmp, rT2, rId, rTmp);
        loadIdx(w, rL, rTmp, src, rL);
        // right neighbour, clamped at column cols-1
        w.cmpEqi(rT2, rId, cols - 1);
        w.addi(rTmp, rId, 1);
        w.select(rTmp, rT2, rId, rTmp);
        loadIdx(w, rR, rTmp, src, rR);

        w.minu(rC, rC, rL);
        w.minu(rC, rC, rR);
        w.muli(rTmp, rId, 0); // rTmp = 0 (keeps reg pressure low)
        w.addi(rTmp, rTmp, row * cols);
        w.add(rTmp, rTmp, rId);
        loadIdx(w, rW, rTmp, wall, rT2);
        w.add(rC, rC, rW);
        storeIdx(w, rId, rC, dst, rTmp, is_output);
        w.popExec();
    }

    unsigned cols_;
};

} // namespace

std::unique_ptr<Workload>
makeSrad(unsigned scale)
{
    return std::make_unique<SradWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makeHotspot(unsigned scale)
{
    return std::make_unique<HotspotWorkload>(scale ? scale : 1);
}

std::unique_ptr<Workload>
makePathfinder(unsigned scale)
{
    return std::make_unique<PathfinderWorkload>(scale ? scale : 1);
}

} // namespace mbavf
