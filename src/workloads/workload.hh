/**
 * @file
 * Workload abstraction and registry.
 *
 * Each workload is a synthetic stand-in for one of the paper's
 * Rodinia / AMD APP SDK / Mantevo benchmarks (see DESIGN.md §3): it
 * allocates buffers, initializes inputs deterministically, launches
 * kernels on the GPU model, and registers its output ranges. The
 * caller drives gpu.finish() and the ACE analysis.
 */

#ifndef MBAVF_WORKLOADS_WORKLOAD_HH
#define MBAVF_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hh"

namespace mbavf
{

/** A runnable benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /**
     * Execute to completion on @p gpu (allocate, launch all kernels,
     * register output ranges). Does not call gpu.finish().
     */
    virtual void run(Gpu &gpu) = 0;

    /**
     * Output buffer ranges for golden-output comparison in fault
     * injection campaigns; valid after run().
     */
    struct Range
    {
        Addr addr;
        std::uint64_t bytes;
    };

    const std::vector<Range> &outputs() const { return outputs_; }

  protected:
    /** Register an output range with both this record and the GPU. */
    void
    declareOutput(Gpu &gpu, Addr addr, std::uint64_t bytes)
    {
        outputs_.push_back({addr, bytes});
        gpu.addOutputRange(addr, bytes);
    }

    std::vector<Range> outputs_;
};

/**
 * Construct a workload by name. @p scale multiplies the default
 * problem size; 0 or 1 selects the default.
 *
 * Names: minife comd srad hotspot pathfinder scan_large_arrays dct
 * dwt_haar1d fast_walsh histogram matrix_transpose prefix_sum
 * recursive_gaussian matmul
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       unsigned scale = 1);

/** All registered workload names, in canonical order. */
const std::vector<std::string> &workloadNames();

/** The nine AMD APP SDK workloads used in the injection study. */
const std::vector<std::string> &appSdkWorkloadNames();

} // namespace mbavf

#endif // MBAVF_WORKLOADS_WORKLOAD_HH
