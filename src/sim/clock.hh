/**
 * @file
 * Global simulation clock shared by the timing models.
 */

#ifndef MBAVF_SIM_CLOCK_HH
#define MBAVF_SIM_CLOCK_HH

#include "common/types.hh"

namespace mbavf
{

/**
 * A monotonically advancing cycle counter. The GPU timing model
 * advances it; probes read it to timestamp events.
 */
class Clock
{
  public:
    Cycle now() const { return now_; }

    /** Advance by @p cycles. */
    void advance(Cycle cycles) { now_ += cycles; }

    /** Advance to an absolute time not before the current one. */
    void
    advanceTo(Cycle t)
    {
        if (t > now_)
            now_ = t;
    }

    void reset() { now_ = 0; }

  private:
    Cycle now_ = 0;
};

} // namespace mbavf

#endif // MBAVF_SIM_CLOCK_HH
