/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled at the same cycle fire in scheduling order
 * (a stable FIFO within a cycle), which keeps all experiments exactly
 * reproducible.
 */

#ifndef MBAVF_SIM_EVENT_QUEUE_HH
#define MBAVF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace mbavf
{

/** A deterministic time-ordered event queue. */
class EventQueue
{
  public:
    using Action = std::function<void(Cycle)>;

    /** Schedule @p action at absolute cycle @p when. */
    void
    schedule(Cycle when, Action action)
    {
        queue_.push({when, seq_++, std::move(action)});
    }

    bool empty() const { return queue_.empty(); }

    /** Time of the next pending event; queue must not be empty. */
    Cycle nextTime() const { return queue_.top().when; }

    /**
     * Pop and run the next event; returns the cycle it fired at.
     * Queue must not be empty.
     */
    Cycle
    runNext()
    {
        // std::priority_queue::top is const; move out via const_cast
        // is unnecessary — copy the small handle instead.
        Event ev = queue_.top();
        queue_.pop();
        ev.action(ev.when);
        return ev.when;
    }

    /** Run all events scheduled strictly before @p until. */
    void
    runUntil(Cycle until)
    {
        while (!queue_.empty() && queue_.top().when < until)
            runNext();
    }

    /** Run everything. */
    void
    runAll()
    {
        while (!queue_.empty())
            runNext();
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Action action;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::uint64_t seq_ = 0;
};

} // namespace mbavf

#endif // MBAVF_SIM_EVENT_QUEUE_HH
