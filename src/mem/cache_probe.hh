/**
 * @file
 * CacheAvfProbe: the event-tracking half of cache ACE analysis.
 *
 * Listens to one cache's fills/reads/writes/evictions during
 * simulation, then, in the analysis phase, combines them with the
 * program-level memory reference index and the dataflow liveness
 * results to produce per-bit ACE lifetimes (a core LifetimeStore)
 * for the cache's data array.
 *
 * Containers are physical line slots (set * ways + way); the slot
 * hosts different memory lines over time and its event stream simply
 * continues across generations. Because a parity/ECC word here is the
 * whole line, any access to a line is a read of the full protection
 * domain: per-slot line-read times are kept once and merged into
 * every byte's event stream during finalization.
 */

#ifndef MBAVF_MEM_CACHE_PROBE_HH
#define MBAVF_MEM_CACHE_PROBE_HH

#include <cstdint>
#include <vector>

#include "core/layout.hh"
#include "core/lifetime.hh"
#include "core/lifetime_builder.hh"
#include "mem/cache.hh"
#include "mem/ref_index.hh"

namespace mbavf
{

/** ACE event tracker for one cache. */
class CacheAvfProbe : public CacheListener
{
  public:
    /**
     * @param geom       geometry matching the observed cache
     * @param ref_index  program-order reference index for resolving
     *                   the fate of written-back data
     */
    CacheAvfProbe(const CacheGeometry &geom,
                  const MemRefIndex &ref_index);

    /**
     * Lower-level-cache mode: reads arriving with no consuming
     * definition are fills issued by the level above, not program
     * loads. Their consumption is resolved per byte against the
     * program-order reference index (the filled data matters iff the
     * program performs a live load of it before overwriting it),
     * exactly like written-back data. Enable when probing an L2
     * whose reads are L1 fills.
     */
    void
    setResolveReadsViaRefIndex(bool on)
    {
        resolveReadsViaRefIndex_ = on;
    }

    void onFill(unsigned set, unsigned way, Addr line_addr,
                Cycle t) override;
    void onRead(unsigned set, unsigned way, Addr addr, unsigned size,
                Cycle t, DefId def) override;
    void onWrite(unsigned set, unsigned way, Addr addr, unsigned size,
                 Cycle t, InstrTag tag) override;
    void onEvict(unsigned set, unsigned way, Addr line_addr,
                 std::uint64_t dirty_bytes, Cycle t) override;

    /**
     * Analysis phase: build per-bit lifetimes over [0, horizon).
     *
     * @param horizon  end of the measurement window
     * @param live     relevance resolver from the Liveness analysis
     */
    LifetimeStore finalize(Cycle horizon,
                           const LivenessResolver &live) const;

    const CacheGeometry &geometry() const { return geom_; }

  private:
    /** Sub-cycle ordering of merged events. */
    enum class Prio : std::uint8_t { EvictRead = 0, Fill = 1, Access = 2 };

    struct Evict
    {
        Cycle time;
        Addr lineAddr;
        std::uint64_t dirtyBytes;
    };

    struct ByteAccess
    {
        Cycle time;
        bool isWrite;
        DefId def;         ///< loads: consuming definition
        std::uint8_t relShift; ///< loads: bit offset in loaded value
        /** Resolve consumption from the reference index (L2 mode). */
        bool resolveFuture = false;
        Addr addr = 0;     ///< absolute byte address (L2 mode)
        InstrTag tag = noInstrTag; ///< writes: producing instruction
    };

    struct SlotLog
    {
        std::vector<Cycle> fills;
        std::vector<Cycle> lineReads;
        std::vector<Evict> evicts;
        std::vector<std::vector<ByteAccess>> bytes; ///< per line byte
        bool touched = false;
    };

    SlotLog &slot(unsigned set, unsigned way);

    CacheGeometry geom_;
    const MemRefIndex &refIndex_;
    std::vector<SlotLog> slots_;
    bool resolveReadsViaRefIndex_ = false;
};

} // namespace mbavf

#endif // MBAVF_MEM_CACHE_PROBE_HH
