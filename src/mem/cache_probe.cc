#include "mem/cache_probe.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/check.hh"
#include "common/logging.hh"

namespace mbavf
{

CacheAvfProbe::CacheAvfProbe(const CacheGeometry &geom,
                             const MemRefIndex &ref_index)
    : geom_(geom), refIndex_(ref_index),
      slots_(std::size_t(geom.sets) * geom.ways)
{
}

CacheAvfProbe::SlotLog &
CacheAvfProbe::slot(unsigned set, unsigned way)
{
    MBAVF_CHECK(set < geom_.sets && way < geom_.ways, "slot (", set,
                ", ", way, ") outside the probe geometry");
    SlotLog &s = slots_[std::size_t(set) * geom_.ways + way];
    if (!s.touched) {
        s.bytes.resize(geom_.lineBytes);
        s.touched = true;
    }
    return s;
}

void
CacheAvfProbe::onFill(unsigned set, unsigned way, Addr, Cycle t)
{
    slot(set, way).fills.push_back(t);
}

void
CacheAvfProbe::onRead(unsigned set, unsigned way, Addr addr,
                      unsigned size, Cycle t, DefId def)
{
    SlotLog &s = slot(set, way);
    s.lineReads.push_back(t);
    unsigned offset = static_cast<unsigned>(addr % geom_.lineBytes);
    MBAVF_CHECK(size > 0 && offset + size <= geom_.lineBytes,
                "read of ", size, " byte(s) at line offset ", offset,
                " spills past the line");
    for (unsigned i = 0; i < size; ++i) {
        ByteAccess access{t, false, def,
                          static_cast<std::uint8_t>(8 * i), false, 0};
        if (def == noDef && resolveReadsViaRefIndex_) {
            // A fill from the level above: the data's consumption is
            // the program's next reference to the byte.
            access.resolveFuture = true;
            access.addr = addr + i;
        }
        s.bytes[offset + i].push_back(access);
    }
}

void
CacheAvfProbe::onWrite(unsigned set, unsigned way, Addr addr,
                       unsigned size, Cycle t, InstrTag tag)
{
    SlotLog &s = slot(set, way);
    // A write into the array is also an access that reads the line
    // out for the read-modify-write of its check bits; model it as a
    // pure overwrite of the written bytes (see DESIGN.md).
    unsigned offset = static_cast<unsigned>(addr % geom_.lineBytes);
    MBAVF_CHECK(size > 0 && offset + size <= geom_.lineBytes,
                "write of ", size, " byte(s) at line offset ", offset,
                " spills past the line");
    for (unsigned i = 0; i < size; ++i)
        s.bytes[offset + i].push_back({t, true, noDef, 0, false, 0,
                                       tag});
}

void
CacheAvfProbe::onEvict(unsigned set, unsigned way, Addr line_addr,
                       std::uint64_t dirty_bytes, Cycle t)
{
    slot(set, way).evicts.push_back({t, line_addr, dirty_bytes});
}

LifetimeStore
CacheAvfProbe::finalize(Cycle horizon, const LivenessResolver &live) const
{
    LifetimeStore store(8, geom_.lineBytes);

    struct Tagged
    {
        Cycle time;
        Prio prio;
        WordEvent event;
    };
    std::vector<Tagged> merged;

    for (std::size_t idx = 0; idx < slots_.size(); ++idx) {
        const SlotLog &s = slots_[idx];
        if (!s.touched)
            continue;
        ContainerLifetime &life = store.container(idx);

        for (unsigned b = 0; b < geom_.lineBytes; ++b) {
            merged.clear();

            for (Cycle t : s.fills) {
                merged.push_back(
                    {t, Prio::Fill,
                     {t, WordEvent::Kind::Write, 0xFF, noDef, false,
                      0}});
            }
            for (Cycle t : s.lineReads) {
                merged.push_back(
                    {t, Prio::Access,
                     {t, WordEvent::Kind::Read, 0, noDef, false, 0}});
            }
            for (const Evict &e : s.evicts) {
                if (!e.dirtyBytes)
                    continue; // clean: data dropped, never read out
                // Write-back reads the whole line; the fate of byte b
                // is its next program-level reference.
                WordEvent ev{e.time, WordEvent::Kind::Read, 0, noDef,
                             false, 0};
                const ByteRef *ref =
                    refIndex_.firstAfter(e.lineAddr + b, e.time);
                if (ref && ref->isLoad) {
                    ev.mask = 0xFF;
                    ev.def = ref->def;
                    ev.exact = true;
                    ev.relShift = ref->relShift;
                }
                merged.push_back({e.time, Prio::EvictRead, ev});
            }
            for (const ByteAccess &a : s.bytes[b]) {
                WordEvent ev;
                if (a.isWrite) {
                    ev = {a.time, WordEvent::Kind::Write, 0xFF, noDef,
                          false, 0, a.tag};
                } else if (a.resolveFuture) {
                    ev = {a.time, WordEvent::Kind::Read, 0, noDef,
                          false, 0};
                    const ByteRef *ref =
                        refIndex_.firstAfter(a.addr, a.time);
                    if (ref && ref->isLoad) {
                        ev.mask = 0xFF;
                        ev.def = ref->def;
                        ev.exact = true;
                        ev.relShift = ref->relShift;
                    }
                } else {
                    ev = {a.time, WordEvent::Kind::Read, 0xFF, a.def,
                          true, a.relShift};
                }
                merged.push_back({a.time, Prio::Access, ev});
            }

            std::stable_sort(
                merged.begin(), merged.end(),
                [](const Tagged &a, const Tagged &b) {
                    return a.time != b.time ? a.time < b.time
                                            : a.prio < b.prio;
                });

            WordEventLog log;
            log.events.reserve(merged.size());
            for (const Tagged &t : merged)
                log.events.push_back(t.event);
            life.words[b] = buildWordLifetime(log, horizon, 8, live);
        }
    }
    return store;
}

} // namespace mbavf
