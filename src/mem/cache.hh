/**
 * @file
 * Set-associative write-back, write-allocate cache timing model.
 *
 * Caches here track tags, LRU state, and per-byte dirty masks; data
 * contents live in MainMemory (see memory.hh). A CacheListener
 * observes fills, reads, writes, and evictions with cycle timestamps
 * — the event stream the ACE analysis is built from.
 */

#ifndef MBAVF_MEM_CACHE_HH
#define MBAVF_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mbavf
{

/** Command of a memory request. */
enum class MemCmd : std::uint8_t { Read, Write };

/** One memory request, at most one cache line. */
struct MemRequest
{
    Addr addr = 0;
    unsigned size = 0;
    MemCmd cmd = MemCmd::Read;
    /** For reads: the dynamic definition the loaded value becomes. */
    DefId def = noDef;
    /** For writes: the static instruction producing the data. */
    InstrTag tag = noInstrTag;
};

/** Anything that can serve memory requests with a completion time. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /** Serve @p req issued at @p now; returns completion cycle. */
    virtual Cycle access(const MemRequest &req, Cycle now) = 0;
};

/** Fixed-latency DRAM endpoint. */
class Dram : public MemLevel
{
  public:
    explicit Dram(Cycle latency) : latency_(latency) {}

    Cycle
    access(const MemRequest &, Cycle now) override
    {
        ++accesses_;
        return now + latency_;
    }

    std::uint64_t accesses() const { return accesses_; }

  private:
    Cycle latency_;
    std::uint64_t accesses_ = 0;
};

/** Observer of one cache's microarchitectural events. */
class CacheListener
{
  public:
    virtual ~CacheListener() = default;

    /** A line was installed into (set, way) at cycle @p t. */
    virtual void onFill(unsigned set, unsigned way, Addr line_addr,
                        Cycle t) = 0;

    /** @p size bytes at @p addr were read from (set, way). */
    virtual void onRead(unsigned set, unsigned way, Addr addr,
                        unsigned size, Cycle t, DefId def) = 0;

    /**
     * @p size bytes at @p addr were written into (set, way). @p tag
     * is the static instruction that produced the written data
     * (noInstrTag when untracked).
     */
    virtual void onWrite(unsigned set, unsigned way, Addr addr,
                         unsigned size, Cycle t, InstrTag tag) = 0;

    /**
     * The line in (set, way) was evicted at @p t. @p dirty_bytes is a
     * per-byte mask (bit i = byte i of the line was dirty); nonzero
     * means the line was written back.
     */
    virtual void onEvict(unsigned set, unsigned way, Addr line_addr,
                         std::uint64_t dirty_bytes, Cycle t) = 0;
};

/**
 * Fan-out listener: forwards every event to two listeners (either
 * may be null). Lets a diagnostic recorder observe the same stream
 * an ACE probe consumes without the cache knowing about either.
 */
class CacheListenerTee : public CacheListener
{
  public:
    CacheListenerTee(CacheListener *first, CacheListener *second)
        : first_(first), second_(second)
    {}

    void
    onFill(unsigned set, unsigned way, Addr line_addr, Cycle t) override
    {
        if (first_)
            first_->onFill(set, way, line_addr, t);
        if (second_)
            second_->onFill(set, way, line_addr, t);
    }

    void
    onRead(unsigned set, unsigned way, Addr addr, unsigned size,
           Cycle t, DefId def) override
    {
        if (first_)
            first_->onRead(set, way, addr, size, t, def);
        if (second_)
            second_->onRead(set, way, addr, size, t, def);
    }

    void
    onWrite(unsigned set, unsigned way, Addr addr, unsigned size,
            Cycle t, InstrTag tag) override
    {
        if (first_)
            first_->onWrite(set, way, addr, size, t, tag);
        if (second_)
            second_->onWrite(set, way, addr, size, t, tag);
    }

    void
    onEvict(unsigned set, unsigned way, Addr line_addr,
            std::uint64_t dirty_bytes, Cycle t) override
    {
        if (first_)
            first_->onEvict(set, way, line_addr, dirty_bytes, t);
        if (second_)
            second_->onEvict(set, way, line_addr, dirty_bytes, t);
    }

  private:
    CacheListener *first_;
    CacheListener *second_;
};

/** Cache configuration. */
struct CacheParams
{
    std::string name = "cache";
    unsigned sets = 64;
    unsigned ways = 4;
    unsigned lineBytes = 64;
    Cycle hitLatency = 4;
};

/** Aggregate cache statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) / total : 0.0;
    }
};

/**
 * Blocking set-associative cache with true-LRU replacement,
 * write-back write-allocate policy, and byte-granular dirty tracking.
 */
class Cache : public MemLevel
{
  public:
    Cache(const CacheParams &params, MemLevel &next);

    /** Requests must not cross a line boundary. */
    Cycle access(const MemRequest &req, Cycle now) override;

    /** Write back and invalidate every line (kernel-end flush). */
    void flush(Cycle now);

    void setListener(CacheListener *listener) { listener_ = listener; }

    const CacheParams &params() const { return params_; }
    const CacheStats &stats() const { return stats_; }

    /** True when @p addr currently hits (no state change). */
    bool probe(Addr addr) const;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t dirtyBytes = 0;
        std::uint64_t lruStamp = 0;
    };

    Line &line(unsigned set, unsigned way)
    {
        return lines_[std::size_t(set) * params_.ways + way];
    }

    const Line &line(unsigned set, unsigned way) const
    {
        return lines_[std::size_t(set) * params_.ways + way];
    }

    unsigned setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddrOf(Addr addr) const;

    /** Find the hit way, or -1. */
    int findWay(unsigned set, Addr tag) const;

    /** Choose the LRU victim way in @p set. */
    unsigned victimWay(unsigned set) const;

    CacheParams params_;
    MemLevel &next_;
    CacheListener *listener_ = nullptr;
    std::vector<Line> lines_;
    CacheStats stats_;
    std::uint64_t lruCounter_ = 0;
};

} // namespace mbavf

#endif // MBAVF_MEM_CACHE_HH
