/**
 * @file
 * Program-order memory reference index.
 *
 * Records every kernel-level load and store per byte address, in time
 * order. The cache AVF probe queries it during the analysis phase to
 * resolve the fate of dirty-evicted data: whether the written-back
 * value is later consumed (and by which definition), overwritten, or
 * never touched again.
 */

#ifndef MBAVF_MEM_REF_INDEX_HH
#define MBAVF_MEM_REF_INDEX_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace mbavf
{

/** One program-level reference to a byte. */
struct ByteRef
{
    Cycle time = 0;
    bool isLoad = false;
    DefId def = noDef;
    /** For loads: bit offset of this byte in the loaded value. */
    std::uint8_t relShift = 0;
};

/** Per-byte time-ordered reference lists. */
class MemRefIndex
{
  public:
    /** Record a load of @p size bytes completing at @p t. */
    void addLoad(Addr addr, unsigned size, Cycle t, DefId def);

    /** Record a store of @p size bytes at @p t. */
    void addStore(Addr addr, unsigned size, Cycle t);

    /**
     * First reference to @p addr at or after @p t, or nullptr when
     * the byte is never referenced again.
     */
    const ByteRef *firstAfter(Addr addr, Cycle t) const;

    std::uint64_t numBytesTracked() const { return refs_.size(); }

  private:
    std::unordered_map<Addr, std::vector<ByteRef>> refs_;
};

} // namespace mbavf

#endif // MBAVF_MEM_REF_INDEX_HH
